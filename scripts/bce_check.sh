#!/usr/bin/env bash
# bce_check.sh — fail if a bounds check reappears in a guarded kernel file.
#
# The hot column kernels are written so the compiler's prove pass
# eliminates every per-element bounds check. That property is easy to
# lose silently: an innocent-looking refactor (a slice that becomes a
# phi node, a guard the prover can't chain) reintroduces a check and
# costs a branch per element in the hottest loops. This script builds
# the kernel packages with `-d=ssa/check_bce` and fails if any guarded
# file reports a per-element `Found IsInBounds`.
#
# Only `Found IsInBounds` (anchored) counts: `Found IsSliceInBounds` is
# the once-per-block/round reslice header the kernels deliberately keep,
# and a bare substring grep for IsInBounds would also match it.
set -euo pipefail
cd "$(dirname "$0")/.."

# Files under the zero-per-element-check contract. Gather paths with
# data-dependent indices live in sibling files on purpose — they are
# inherently bounds-checked and must not be added here.
GUARDED='internal/(cell/kernels|cell/tile_kernels|sched/ema_kernel|sched/rtma_kernel)\.go'

out=$(go build -gcflags='-d=ssa/check_bce' ./internal/cell/ ./internal/sched/ 2>&1 || true)

bad=$(printf '%s\n' "$out" | grep -E "${GUARDED}.*Found IsInBounds\$" || true)
if [[ -n "$bad" ]]; then
    echo "bce-check: per-element bounds checks reappeared in guarded kernels:" >&2
    printf '%s\n' "$bad" >&2
    exit 1
fi

# Sanity: the build must have produced check_bce output at all, or a
# flag/typo change could turn this gate into a silent no-op.
if ! printf '%s\n' "$out" | grep -q 'Found Is.*InBounds$'; then
    echo "bce-check: no check_bce diagnostics seen — gate is not observing the build" >&2
    printf '%s\n' "$out" >&2
    exit 1
fi

echo "bce-check: guarded kernels are free of per-element bounds checks"
