// Command jstream-gateway runs the paper's Fig. 1 framework as a live TCP
// gateway on localhost: simulated mobile clients connect, continuously
// report their RSSI and required bit-rate, and receive scheduled video
// bytes slot by slot. The wire protocol lives in internal/gateway (tcp.go).
//
// Run the demo end to end with the built-in clients:
//
//	jstream-gateway -clients 4 -sched rtma -slot 100ms
//
// Run the chaos scenario (fault injection against the hardened serving
// path) and print the per-fault-class report:
//
//	jstream-gateway -chaos
//
// Run it as a long-lived open-system service — no built-in clients,
// admission control on, drained gracefully on SIGTERM/SIGINT:
//
//	jstream-gateway -serve -max-sessions 64 -headroom 0.8 -http 127.0.0.1:8080
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	ossignal "os/signal"
	"sync"
	"syscall"
	"time"

	"jointstream/internal/experiments"
	"jointstream/internal/gateway"
	"jointstream/internal/radio"
	"jointstream/internal/rng"
	"jointstream/internal/rrc"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
)

func main() {
	var (
		schedName = flag.String("sched", "rtma", "scheduler: default|rtma|ema|propfair")
		clients   = flag.Int("clients", 4, "number of simulated clients to spawn")
		videoKB   = flag.Float64("video", 2000, "video size per client (KB)")
		slotDur   = flag.Duration("slot", 100*time.Millisecond, "wall-clock slot length")
		addr      = flag.String("addr", "127.0.0.1:0", "listen address")
		budget    = flag.Float64("budget", 950, "RTMA energy budget (mJ)")
		v         = flag.Float64("v", 0.2, "EMA Lyapunov weight")
		httpAddr  = flag.String("http", "", "serve the monitoring API (healthz/stats/summary/diag) on this address")
		ioTimeout = flag.Duration("iotimeout", 30*time.Second, "per-operation read/write deadline on client connections (0 disables)")
		chaos     = flag.Bool("chaos", false, "run the fault-injection chaos scenario and print the report")
		chaosSeed = flag.Uint64("chaos-seed", 42, "fault plan seed for -chaos")
		serve     = flag.Bool("serve", false, "open-system service mode: no built-in clients, run until SIGTERM then drain")
		maxSess   = flag.Int("max-sessions", 0, "admission control: concurrent session cap (0 disables)")
		headroom  = flag.Float64("headroom", 0, "admission control: demand headroom as a fraction of capacity (0 disables)")
		shedMax   = flag.Int("shed-max", 0, "overload shedding: max sessions shed per slot (0 disables)")
	)
	flag.Parse()
	if *chaos {
		if err := runChaos(*chaosSeed); err != nil {
			fmt.Fprintln(os.Stderr, "jstream-gateway:", err)
			os.Exit(1)
		}
		return
	}
	opts := runOptions{
		schedName: *schedName, clients: *clients, videoKB: *videoKB,
		slotDur: *slotDur, addr: *addr, budget: *budget, v: *v,
		httpAddr: *httpAddr, ioTimeout: *ioTimeout,
		serve: *serve, maxSessions: *maxSess, headroom: *headroom, shedMax: *shedMax,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "jstream-gateway:", err)
		os.Exit(1)
	}
}

// runChaos executes the chaos scenario and prints its table.
func runChaos(seed uint64) error {
	opts := experiments.DefaultChaosOptions()
	opts.Seed = seed
	rep, err := experiments.RunChaos(opts)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	return nil
}

func buildScheduler(name string, budget, v float64) (sched.Scheduler, error) {
	switch name {
	case "default":
		return sched.NewDefault(), nil
	case "rtma":
		return sched.NewRTMA(sched.RTMAConfig{
			Budget: units.MJ(budget), Radio: radio.Paper3G(), RRC: rrc.Paper3G(),
		})
	case "ema":
		return sched.NewEMA(sched.EMAConfig{V: v, RRC: rrc.Paper3G()})
	case "propfair":
		return sched.NewProportionalFair(100)
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

type runOptions struct {
	schedName   string
	clients     int
	videoKB     float64
	slotDur     time.Duration
	addr        string
	budget, v   float64
	httpAddr    string
	ioTimeout   time.Duration
	serve       bool
	maxSessions int
	headroom    float64
	shedMax     int
}

func run(o runOptions) error {
	if !o.serve && o.clients <= 0 {
		return fmt.Errorf("need at least one client")
	}
	s, err := buildScheduler(o.schedName, o.budget, o.v)
	if err != nil {
		return err
	}
	// Scale the allocation unit with the slot so short slots don't floor
	// per-slot link budgets to zero units: a 200 KB/s link always earns
	// at least one unit per slot.
	unit := units.KB(200 * o.slotDur.Seconds())
	if unit > 25 {
		unit = 25
	}
	gw, err := gateway.New(gateway.Config{
		Tau:               units.Seconds(o.slotDur.Seconds()),
		Unit:              unit,
		Capacity:          20000,
		Radio:             radio.Paper3G(),
		RRC:               rrc.Paper3G(),
		QueueCap:          units.KB(o.videoKB),
		MaxSessions:       o.maxSessions,
		AdmitHeadroomFrac: o.headroom,
		Policy:            gateway.Policy{ShedMaxPerSlot: o.shedMax},
	}, s)
	if err != nil {
		return err
	}
	defer gw.Close()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("gateway listening on %s, scheduler=%s, slot=%v\n", ln.Addr(), s.Name(), o.slotDur)

	if o.httpAddr != "" {
		mln, err := net.Listen("tcp", o.httpAddr)
		if err != nil {
			return fmt.Errorf("monitoring listener: %w", err)
		}
		defer mln.Close()
		fmt.Printf("monitoring API on http://%s (healthz, stats, summary, diag)\n", mln.Addr())
		go func() {
			server := &http.Server{Handler: gateway.Handler(gw)}
			server.Serve(mln)
		}()
	}

	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if _, err := gateway.AttachConnWith(gw, conn, gateway.ConnOptions{
				InitialSig: -80, IOTimeout: o.ioTimeout,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "attach:", err)
				conn.Close()
			}
		}
	}()

	// SIGTERM/SIGINT begin the graceful drain: admission closes (new
	// handshakes get BUSY draining), sessions already in service keep
	// being served, and the gateway exits when the last one ends.
	sigCh := make(chan os.Signal, 1)
	ossignal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer ossignal.Stop(sigCh)

	type clientResult struct {
		id      int
		bytes   int64
		elapsed time.Duration
		err     error
	}
	clients := o.clients
	if o.serve {
		clients = 0
	}
	done := make(chan clientResult, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			start := time.Now()
			res := clientResult{id: id}
			res.bytes, res.err = runClient(ln.Addr().String(), uint64(id)+1, units.KB(o.videoKB))
			res.elapsed = time.Since(start)
			done <- res
		}(i)
	}

	ticker := time.NewTicker(o.slotDur)
	defer ticker.Stop()
	var deadline <-chan time.Time
	if !o.serve {
		deadline = time.After(5 * time.Minute)
	}
	finished := func() bool {
		if gw.Draining() {
			return gw.Drained()
		}
		// Service mode without a drain request runs forever; the demo
		// exits once its built-in clients are served.
		return !o.serve && gw.AllDone() && gw.Slot() > 0
	}
	for !finished() {
		select {
		case <-ticker.C:
			if _, err := gw.Step(); err != nil {
				return err
			}
		case <-sigCh:
			gw.BeginDrain()
			fmt.Println("drain: admission closed, serving remaining sessions")
		case <-deadline:
			return fmt.Errorf("demo did not complete within 5 minutes")
		}
	}
	ln.Close() // stop accepting before the final report

	wg.Wait()
	close(done)
	for res := range done {
		status := "ok"
		if res.err != nil {
			status = res.err.Error()
		}
		fmt.Printf("client %d: received %d bytes in %v [%s]\n",
			res.id, res.bytes, res.elapsed.Round(time.Millisecond), status)
	}
	for i := 0; i < clients; i++ {
		if st, err := gw.StatsFor(i); err == nil {
			fmt.Printf("user %d: sent=%v energy=%v (tail %v)\n", i, st.SentKB, st.Energy(), st.TailEnergy)
		}
	}
	d := gw.Diagnostics()
	fmt.Printf("gateway: %d slots, admitted=%d rejected=%d shed=%d drained=%d, tick p50=%.2fms p99=%.2fms\n",
		gw.Slot(), d.Admitted, d.Rejected, d.Shed, d.Drained,
		gw.TickQuantileMs(0.50), gw.TickQuantileMs(0.99))
	return nil
}

// runClient connects, reports a drifting random-walk signal, and reads
// its whole video.
func runClient(addr string, seed uint64, videoKB units.KB) (int64, error) {
	c, err := gateway.DialClient(addr, videoKB, 400)
	if err != nil {
		return 0, err
	}
	defer c.Close()

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tr, err := signal.NewRandomWalk(signal.RandomWalkConfig{
			Bounds: signal.DefaultBounds, Start: -70, StepStd: 4,
		}, rng.New(seed))
		if err != nil {
			return
		}
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			case <-time.After(300 * time.Millisecond):
				if err := c.ReportSignal(tr.At(n)); err != nil {
					return
				}
			}
		}
	}()

	for !c.Done() {
		if _, err := c.ReadFrame(); err != nil {
			if err == io.EOF && c.Done() {
				break
			}
			return c.ReceivedBytes(), err
		}
	}
	return c.ReceivedBytes(), nil
}
