// Command jstream-gateway runs the paper's Fig. 1 framework as a live TCP
// gateway on localhost: simulated mobile clients connect, continuously
// report their RSSI and required bit-rate, and receive scheduled video
// bytes slot by slot. The wire protocol lives in internal/gateway (tcp.go).
//
// Run the demo end to end with the built-in clients:
//
//	jstream-gateway -clients 4 -sched rtma -slot 100ms
//
// Run the chaos scenario (fault injection against the hardened serving
// path) and print the per-fault-class report:
//
//	jstream-gateway -chaos
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"jointstream/internal/experiments"
	"jointstream/internal/gateway"
	"jointstream/internal/radio"
	"jointstream/internal/rng"
	"jointstream/internal/rrc"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
)

func main() {
	var (
		schedName = flag.String("sched", "rtma", "scheduler: default|rtma|ema|propfair")
		clients   = flag.Int("clients", 4, "number of simulated clients to spawn")
		videoKB   = flag.Float64("video", 2000, "video size per client (KB)")
		slotDur   = flag.Duration("slot", 100*time.Millisecond, "wall-clock slot length")
		addr      = flag.String("addr", "127.0.0.1:0", "listen address")
		budget    = flag.Float64("budget", 950, "RTMA energy budget (mJ)")
		v         = flag.Float64("v", 0.2, "EMA Lyapunov weight")
		httpAddr  = flag.String("http", "", "serve the monitoring API (healthz/stats/summary) on this address")
		ioTimeout = flag.Duration("iotimeout", 30*time.Second, "per-operation read/write deadline on client connections (0 disables)")
		chaos     = flag.Bool("chaos", false, "run the fault-injection chaos scenario and print the report")
		chaosSeed = flag.Uint64("chaos-seed", 42, "fault plan seed for -chaos")
	)
	flag.Parse()
	if *chaos {
		if err := runChaos(*chaosSeed); err != nil {
			fmt.Fprintln(os.Stderr, "jstream-gateway:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*schedName, *clients, *videoKB, *slotDur, *addr, *budget, *v, *httpAddr, *ioTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "jstream-gateway:", err)
		os.Exit(1)
	}
}

// runChaos executes the chaos scenario and prints its table.
func runChaos(seed uint64) error {
	opts := experiments.DefaultChaosOptions()
	opts.Seed = seed
	rep, err := experiments.RunChaos(opts)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	return nil
}

func buildScheduler(name string, budget, v float64) (sched.Scheduler, error) {
	switch name {
	case "default":
		return sched.NewDefault(), nil
	case "rtma":
		return sched.NewRTMA(sched.RTMAConfig{
			Budget: units.MJ(budget), Radio: radio.Paper3G(), RRC: rrc.Paper3G(),
		})
	case "ema":
		return sched.NewEMA(sched.EMAConfig{V: v, RRC: rrc.Paper3G()})
	case "propfair":
		return sched.NewProportionalFair(100)
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

func run(schedName string, clients int, videoKB float64, slotDur time.Duration, addr string, budget, v float64, httpAddr string, ioTimeout time.Duration) error {
	if clients <= 0 {
		return fmt.Errorf("need at least one client")
	}
	s, err := buildScheduler(schedName, budget, v)
	if err != nil {
		return err
	}
	gw, err := gateway.New(gateway.Config{
		Tau:      units.Seconds(slotDur.Seconds()),
		Unit:     25,
		Capacity: 20000,
		Radio:    radio.Paper3G(),
		RRC:      rrc.Paper3G(),
		QueueCap: units.KB(videoKB),
	}, s)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("gateway listening on %s, scheduler=%s, slot=%v\n", ln.Addr(), s.Name(), slotDur)

	if httpAddr != "" {
		mln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return fmt.Errorf("monitoring listener: %w", err)
		}
		defer mln.Close()
		fmt.Printf("monitoring API on http://%s (healthz, stats, summary)\n", mln.Addr())
		go func() {
			server := &http.Server{Handler: gateway.Handler(gw)}
			server.Serve(mln)
		}()
	}

	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if _, err := gateway.AttachConnWith(gw, conn, gateway.ConnOptions{
				InitialSig: -80, IOTimeout: ioTimeout,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "attach:", err)
				conn.Close()
			}
		}
	}()

	type clientResult struct {
		id      int
		bytes   int64
		elapsed time.Duration
		err     error
	}
	done := make(chan clientResult, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			start := time.Now()
			res := clientResult{id: id}
			res.bytes, res.err = runClient(ln.Addr().String(), uint64(id)+1, units.KB(videoKB))
			res.elapsed = time.Since(start)
			done <- res
		}(i)
	}

	ticker := time.NewTicker(slotDur)
	defer ticker.Stop()
	deadline := time.After(5 * time.Minute)
	for !gw.AllDone() || gw.Slot() == 0 {
		select {
		case <-ticker.C:
			if _, err := gw.Step(); err != nil {
				return err
			}
		case <-deadline:
			return fmt.Errorf("demo did not complete within 5 minutes")
		}
	}
	wg.Wait()
	close(done)
	for res := range done {
		status := "ok"
		if res.err != nil {
			status = res.err.Error()
		}
		fmt.Printf("client %d: received %d bytes in %v [%s]\n",
			res.id, res.bytes, res.elapsed.Round(time.Millisecond), status)
	}
	for i := 0; i < clients; i++ {
		if st, err := gw.StatsFor(i); err == nil {
			fmt.Printf("user %d: sent=%v energy=%v (tail %v)\n", i, st.SentKB, st.Energy(), st.TailEnergy)
		}
	}
	fmt.Printf("gateway: %d slots\n", gw.Slot())
	return nil
}

// runClient connects, reports a drifting random-walk signal, and reads
// its whole video.
func runClient(addr string, seed uint64, videoKB units.KB) (int64, error) {
	c, err := gateway.DialClient(addr, videoKB, 400)
	if err != nil {
		return 0, err
	}
	defer c.Close()

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tr, err := signal.NewRandomWalk(signal.RandomWalkConfig{
			Bounds: signal.DefaultBounds, Start: -70, StepStd: 4,
		}, rng.New(seed))
		if err != nil {
			return
		}
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			case <-time.After(300 * time.Millisecond):
				if err := c.ReportSignal(tr.At(n)); err != nil {
					return
				}
			}
		}
	}()

	for !c.Done() {
		if _, err := c.ReadFrame(); err != nil {
			if err == io.EOF && c.Done() {
				break
			}
			return c.ReceivedBytes(), err
		}
	}
	return c.ReceivedBytes(), nil
}
