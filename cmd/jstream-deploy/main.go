// Command jstream-deploy simulates the framework across a multi-cell
// deployment: K sites with configurable capacities and path-loss offsets,
// users attached by a selectable policy, and all cells simulated
// concurrently.
//
// Usage:
//
//	jstream-deploy -sites 3 -users 30 -policy strongest -sched ema
//	jstream-deploy -sites 2 -policy leastloaded -offsets=-0,-8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"jointstream/internal/cell"
	"jointstream/internal/deploy"
	"jointstream/internal/rng"
	"jointstream/internal/rrc"
	"jointstream/internal/sched"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

func main() {
	var (
		sites     = flag.Int("sites", 3, "number of base stations")
		users     = flag.Int("users", 24, "number of streaming users")
		avgSizeMB = flag.Float64("size", 100, "average video size in MB")
		policy    = flag.String("policy", "strongest", "attachment policy: strongest|roundrobin|leastloaded")
		schedName = flag.String("sched", "ema", "per-site scheduler: default|ema|rtma|propfair")
		capacity  = flag.Float64("capacity", 8000, "per-site capacity in KB/s")
		offsets   = flag.String("offsets", "", "comma-separated per-site dBm offsets (default 0,-3,-6,...)")
		shadow    = flag.Float64("shadow", 4, "per-site shadowing stddev (dB)")
		seed      = flag.Uint64("seed", 1, "workload seed")
		v         = flag.Float64("v", 0.2, "EMA Lyapunov weight")
		budget    = flag.Float64("budget", 950, "RTMA energy budget (mJ)")
	)
	flag.Parse()
	if err := run(*sites, *users, *avgSizeMB, *policy, *schedName, *capacity, *offsets, *shadow, *seed, *v, *budget); err != nil {
		fmt.Fprintln(os.Stderr, "jstream-deploy:", err)
		os.Exit(1)
	}
}

func parsePolicy(s string) (deploy.Policy, error) {
	switch strings.ToLower(s) {
	case "strongest", "strongest-signal":
		return deploy.StrongestSignal, nil
	case "roundrobin", "round-robin":
		return deploy.RoundRobin, nil
	case "leastloaded", "least-loaded":
		return deploy.LeastLoaded, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func parseOffsets(s string, sites int) ([]float64, error) {
	out := make([]float64, sites)
	if s == "" {
		for i := range out {
			out[i] = float64(-3 * i)
		}
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != sites {
		return nil, fmt.Errorf("%d offsets for %d sites", len(parts), sites)
	}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad offset %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func run(sites, users int, avgSizeMB float64, policyName, schedName string, capacity float64, offsetSpec string, shadow float64, seed uint64, v, budget float64) error {
	if sites <= 0 {
		return fmt.Errorf("need at least one site")
	}
	policy, err := parsePolicy(policyName)
	if err != nil {
		return err
	}
	offs, err := parseOffsets(offsetSpec, sites)
	if err != nil {
		return err
	}

	siteCell := cell.PaperConfig()
	siteCell.Capacity = units.KBps(capacity)
	cfg := deploy.Config{Policy: policy}
	for i := 0; i < sites; i++ {
		cfg.Sites = append(cfg.Sites, deploy.Site{
			Name:         fmt.Sprintf("site-%d", i),
			Cell:         siteCell,
			SignalOffset: units.DBm(offs[i]),
			ShadowStd:    shadow,
		})
	}

	newSched := func() (sched.Scheduler, error) {
		switch schedName {
		case "default":
			return sched.NewDefault(), nil
		case "ema":
			return sched.NewEMA(sched.EMAConfig{V: v, RRC: rrc.Paper3G()})
		case "rtma":
			return sched.NewRTMA(sched.RTMAConfig{
				Budget: units.MJ(budget), Radio: siteCell.Radio, RRC: siteCell.RRC,
			})
		case "propfair":
			return sched.NewProportionalFair(100)
		default:
			return nil, fmt.Errorf("unknown scheduler %q", schedName)
		}
	}

	wl := workload.PaperDefaults(users).WithAvgSize(units.KB(avgSizeMB * 1000))
	sessions, err := workload.Generate(wl, rng.New(seed))
	if err != nil {
		return err
	}
	res, err := deploy.Run(context.Background(), cfg, sessions, newSched)
	if err != nil {
		return err
	}

	counts := make([]int, sites)
	for _, pl := range res.Placements {
		counts[pl.Site]++
	}
	fmt.Printf("policy=%s scheduler=%s sites=%d users=%d\n", policy, schedName, sites, users)
	for i, site := range cfg.Sites {
		line := fmt.Sprintf("%-8s users=%-3d offset=%v", site.Name, counts[i], site.SignalOffset)
		if r := res.PerSite[i]; r != nil {
			line += fmt.Sprintf("  slots=%-5d rebuffer=%v energy=%v",
				r.Slots, r.TotalRebuffer(), r.TotalEnergy())
		} else {
			line += "  (no users)"
		}
		fmt.Println(line)
	}
	fmt.Printf("fleet: rebuffer=%v energy=%v handover-pressure=%.1f%%\n",
		res.TotalRebuffer(), res.TotalEnergy(),
		100*float64(res.MisassignedSlots)/float64(max(res.TotalSlots, 1)))
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
