// Command jstream-sim runs one multi-user streaming simulation and prints
// per-user and aggregate results.
//
// Usage:
//
//	jstream-sim -sched rtma -users 20 -alpha 1.0
//	jstream-sim -sched ema -users 40 -beta 0.8 -size 350
//	jstream-sim -sched onoff -users 30 -seed 7 -verbose
//
// Schedulers: default, rtma, ema, throttling, onoff, salsa, estreamer,
// propfair, predictive. RTMA derives its energy budget Φ from a Default
// reference run scaled by -alpha; EMA calibrates its Lyapunov weight V
// against -beta times the Default rebuffering unless -v is given
// (-adaptive switches to the online controller). The predictive
// scheduler compiles the run's link table up front and reads a
// -lookahead-slot forecast window from it, corrupted by -forecast-err
// relative noise (0 = omniscient table reads, ≥1 = no information,
// degenerating to the Default baseline). -spec replays explicit
// sessions from a JSON workload file.
package main

import (
	"flag"
	"fmt"
	"os"

	"jointstream/internal/cell"
	"jointstream/internal/core"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

func main() {
	var (
		schedName = flag.String("sched", "rtma", "scheduler: default|rtma|ema|throttling|onoff|salsa|estreamer|propfair|predictive")
		users     = flag.Int("users", 20, "number of streaming users")
		avgSizeMB = flag.Float64("size", 375, "average video size in MB")
		alpha     = flag.Float64("alpha", 1.0, "RTMA energy budget factor (x Default energy)")
		beta      = flag.Float64("beta", 1.0, "EMA rebuffering bound factor (x Default rebuffering)")
		vFlag     = flag.Float64("v", 0, "EMA Lyapunov weight (0 = calibrate from -beta)")
		adaptive  = flag.Bool("adaptive", false, "use the online AdaptiveEMA instead of offline V calibration (ema only)")
		seed      = flag.Uint64("seed", 1, "workload random seed")
		capacity  = flag.Float64("capacity", 20000, "base-station capacity in KB/s")
		slots     = flag.Int("slots", 10000, "maximum slots")
		verbose   = flag.Bool("verbose", false, "print per-user breakdown")
		specPath  = flag.String("spec", "", "load explicit sessions from a JSON workload spec instead of generating them")
		lookahead = flag.Int("lookahead", 8, "predictive forecast window K in slots (predictive only)")
		fcErr     = flag.Float64("forecast-err", 0, "predictive forecast relative error level (predictive only)")
	)
	flag.Parse()
	if err := run(*schedName, *users, *avgSizeMB, *alpha, *beta, *vFlag, *adaptive, *seed, *capacity, *slots, *verbose, *specPath, *lookahead, *fcErr); err != nil {
		fmt.Fprintln(os.Stderr, "jstream-sim:", err)
		os.Exit(1)
	}
}

func run(schedName string, users int, avgSizeMB, alpha, beta, vFlag float64, adaptive bool, seed uint64, capacity float64, slots int, verbose bool, specPath string, lookahead int, fcErr float64) error {
	cfg := cell.PaperConfig()
	cfg.Capacity = units.KBps(capacity)
	cfg.MaxSlots = slots
	wl := workload.PaperDefaults(users).WithAvgSize(units.KB(avgSizeMB * 1000))

	// The two framework modes go through the core facade so the derived
	// parameters (Φ, V) are reported alongside the results. (Spec-driven
	// sessions run baselines directly; the facade generates its own.)
	if specPath == "" {
		switch schedName {
		case "rtma", "ema":
			mode := core.ModeRTM
			if schedName == "ema" {
				mode = core.ModeEM
			}
			rep, err := core.Run(core.Config{
				Mode: mode, Alpha: alpha, Beta: beta, V: vFlag, Adaptive: adaptive,
				Cell: cfg, Workload: wl, Seed: seed,
			})
			if err != nil {
				return err
			}
			printReport(rep)
			return nil
		}
	}

	var sessions []*workload.Session
	var err error
	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			return err
		}
		spec, err := workload.ReadSpec(f)
		f.Close()
		if err != nil {
			return err
		}
		sessions, err = spec.Sessions()
		if err != nil {
			return err
		}
	} else {
		sessions, err = workload.Generate(wl, rng.New(seed))
		if err != nil {
			return err
		}
	}
	var s sched.Scheduler
	if schedName == "predictive" {
		// The forecast reads the run's own compiled link table, which is
		// also handed to the engine so the tick path replays the exact
		// columns the prediction was drawn from.
		lt, err := cell.CompileLink(cfg, sessions)
		if err != nil {
			return err
		}
		cfg.Link = lt
		var fc sched.Forecast
		if fcErr == 0 {
			fc = lt.Forecast()
		} else {
			nf, err := cell.NewNoisyForecast(lt, seed, fcErr)
			if err != nil {
				return err
			}
			fc = nf
		}
		s, err = sched.NewPredictive(sched.PredictiveConfig{Lookahead: lookahead, Forecast: fc})
		if err != nil {
			return err
		}
	} else {
		s, err = buildScheduler(schedName, cfg, vFlag)
		if err != nil {
			return err
		}
	}
	sim, err := cell.New(cfg, sessions, s)
	if err != nil {
		return err
	}
	res, err := sim.Run()
	if err != nil {
		return err
	}
	printResult(res, verbose)
	return nil
}

func buildScheduler(name string, cfg cell.Config, v float64) (sched.Scheduler, error) {
	switch name {
	case "default":
		return sched.NewDefault(), nil
	case "throttling":
		return sched.NewThrottling(1.25)
	case "onoff":
		return sched.NewOnOff(10, 40)
	case "salsa":
		return sched.NewSALSA(15, 0.3)
	case "estreamer":
		return sched.NewEStreamer(30, 5)
	case "propfair":
		return sched.NewProportionalFair(100)
	case "ema":
		if v == 0 {
			v = 0.2
		}
		return sched.NewEMA(sched.EMAConfig{V: v, RRC: cfg.RRC})
	case "rtma":
		return sched.NewRTMA(sched.RTMAConfig{Budget: 950, Radio: cfg.Radio, RRC: cfg.RRC})
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

func printReport(rep *core.Report) {
	fmt.Printf("mode: %s\n", rep.Mode)
	if rep.Mode == core.ModeRTM {
		fmt.Printf("derived budget Phi: %v, admission threshold: %v\n", rep.Phi, rep.Threshold)
	} else {
		fmt.Printf("rebuffering bound Omega: %v, Lyapunov V: %.4g\n", rep.Omega, rep.V)
	}
	rows := []struct {
		name string
		r    core.ModeResult
	}{{"reference (Default)", rep.Reference}, {rep.Result.Scheduler, rep.Result}}
	for _, row := range rows {
		fmt.Printf("%-20s slots=%-5d rebuffer/user=%-10v energy/user=%-10v tail/user=%v\n",
			row.name, row.r.Slots, row.r.MeanRebufferPerUser, row.r.MeanEnergyPerUser, row.r.TailEnergyPerUser)
	}
	fmt.Printf("rebuffer reduction vs Default: %.1f%%\n", rep.RebufferReduction*100)
	fmt.Printf("energy reduction vs Default:   %.1f%%\n", rep.EnergyReduction*100)
}

func printResult(res *cell.Result, verbose bool) {
	fmt.Printf("scheduler: %s\n", res.SchedulerName)
	fmt.Printf("slots: %d\n", res.Slots)
	fmt.Printf("rebuffer/user: %v\n", res.MeanRebufferPerUser())
	fmt.Printf("energy/user: %v (tail %v)\n",
		res.MeanEnergyPerUser(),
		res.TotalTailEnergy()/units.MJ(len(res.Users)))
	fmt.Printf("PC=%v PE=%v\n", res.PC(), res.PE())
	if verbose {
		for i, u := range res.Users {
			fmt.Printf("  user %2d: delivered=%v rebuffer=%v energy=%v done@%d\n",
				i, u.DeliveredKB, u.Rebuffer, u.Energy(), u.CompletionSlot)
		}
	}
}
