package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"jointstream/internal/experiments"
)

// This file implements -sweep: time one full parallel figure sweep and
// write a machine-readable report. Unlike -tick (which isolates the
// engine's per-slot cost), -sweep measures the end-to-end harness —
// workload cache, link tables, figure fan-out — so its numbers reflect
// what a user of jstream-bench actually waits for. CI uploads the
// quick-scale report as an artifact to make harness-level regressions
// visible across runs.

// sweepReport is the JSON document -sweep writes.
type sweepReport struct {
	Cores               int     `json:"cores"`
	GoMaxProcs          int     `json:"gomaxprocs"`
	GoVersion           string  `json:"go_version"`
	Scale               string  `json:"scale"` // "paper" or "quick"
	Seconds             float64 `json:"seconds"`
	Figures             int     `json:"figures"`
	WorkloadCacheHits   int64   `json:"workload_cache_hits"`
	WorkloadCacheMisses int64   `json:"workload_cache_misses"`
	// WorkloadCacheHitRate is hits/(hits+misses): the fraction of
	// simulations that reused an already-built scenario workload.
	WorkloadCacheHitRate float64 `json:"workload_cache_hit_rate"`
	// ArmGroups counts the lockstep cell.RunArms groups the sweep
	// dispatched; GroupedRuns the simulations executed inside them;
	// ArmsPerGroup their ratio (mean scheduler arms ticked per shared
	// workload pass).
	ArmGroups    int64   `json:"arm_groups"`
	GroupedRuns  int64   `json:"grouped_runs"`
	ArmsPerGroup float64 `json:"arms_per_group"`
}

// runSweep regenerates every figure with AllParallel, times the sweep,
// and writes the report.
func runSweep(outPath string, quick bool, seed uint64) error {
	opts := experiments.PaperOptions()
	scale := "paper"
	if quick {
		opts = experiments.QuickOptions()
		scale = "quick"
	}
	if seed != 0 {
		opts.Seed = seed
	}
	r, err := experiments.NewRunner(opts)
	if err != nil {
		return err
	}
	start := time.Now()
	figs, err := r.AllParallel(context.Background(), 0)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	hits, misses := r.WorkloadCacheStats()
	groups, grouped := r.MultiArmStats()

	rep := sweepReport{
		Cores:               runtime.NumCPU(),
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		GoVersion:           runtime.Version(),
		Scale:               scale,
		Seconds:             elapsed.Seconds(),
		Figures:             len(figs),
		WorkloadCacheHits:   hits,
		WorkloadCacheMisses: misses,
		ArmGroups:           groups,
		GroupedRuns:         grouped,
	}
	if total := hits + misses; total > 0 {
		rep.WorkloadCacheHitRate = float64(hits) / float64(total)
	}
	if groups > 0 {
		rep.ArmsPerGroup = float64(grouped) / float64(groups)
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("sweep: %d figures in %.2fs (%s scale, %d cores)\n",
		rep.Figures, rep.Seconds, rep.Scale, rep.Cores)
	logWorkloadCache(r)
	fmt.Printf("multi-arm: %d lockstep groups covering %d runs (%.1f arms/group)\n",
		rep.ArmGroups, rep.GroupedRuns, rep.ArmsPerGroup)
	fmt.Printf("report written to %s\n", outPath)
	return nil
}
