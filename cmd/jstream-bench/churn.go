package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"jointstream/internal/cell"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// This file implements the churn benchmark mode: -churn drives an
// unbounded open-system engine at steady per-slot churn (depart oldest,
// admit fresh, advance) across many tile-window rollovers and writes a
// JSON report (results/BENCH_churn.json is the checked-in baseline).
// Beyond the ns/slot throughput the report splits per-slot tick times
// into rollover slots — the first slot of each tile window, which paid a
// synchronous full users×window recompile before window compilation was
// pipelined — and steady slots, recording the medians, the rollover p99
// and the rollover/steady median ratio the ISSUE-10 acceptance bound
// (≤ 2×) is stated against.

// churnEntry is one measured (sessions, workers) configuration.
type churnEntry struct {
	Sessions  int     `json:"sessions"`
	Arm       string  `json:"arm"`     // "serial" (workers=1) or "parallel" (workers=GOMAXPROCS)
	Workers   int     `json:"workers"` // resolved count actually used
	TileSlots int     `json:"tile_slots"`
	Slots     int     `json:"slots"` // measured slots per rep
	NsPerSlot float64 `json:"ns_per_slot"`
	// SteadyMedianNs and RolloverMedianNs are the per-slot tick medians of
	// the two slot classes; RolloverX is their ratio (the spike factor a
	// synchronous rollover recompile would inflate).
	SteadyMedianNs   float64 `json:"steady_median_ns"`
	RolloverMedianNs float64 `json:"rollover_median_ns"`
	RolloverP99Ns    float64 `json:"rollover_p99_ns"`
	RolloverX        float64 `json:"rollover_x"`
}

// churnReport is the JSON document -churn writes.
type churnReport struct {
	Cores      int          `json:"cores"`
	GoMaxProcs int          `json:"gomaxprocs"`
	GoVersion  string       `json:"go_version"`
	Scheduler  string       `json:"scheduler"`
	Reps       int          `json:"reps"`
	Entries    []churnEntry `json:"entries"`
}

// churnSlotsFor keeps every tier at the same wall-ish budget: at least
// 8 tile windows, capped so the 10k tier stays in seconds.
func churnSlotsFor(tile, override int) int {
	if override > 0 {
		return override
	}
	return 8 * tile
}

// measureChurnOnce runs one churn configuration and returns its entry.
// The engine is torn down inside so reps don't accumulate goroutines.
func measureChurnOnce(n, tile, slots, workers int) (churnEntry, error) {
	e := churnEntry{Sessions: n, Workers: workers, TileSlots: tile, Slots: slots}
	cfg := cell.PaperConfig()
	cfg.RunFullHorizon = true
	cfg.Workers = workers
	src := rng.New(7)
	mk := func(id int) *workload.Session {
		return &workload.Session{
			ID:       id,
			Size:     1 << 30, // never completes; churn is depart-driven
			BaseRate: units.KBps(src.Uniform(300, 600)),
			Signal:   signal.Constant(units.DBm(src.Uniform(-95, -55)), signal.DefaultBounds),
		}
	}
	initial := make([]*workload.Session, n)
	for i := range initial {
		initial[i] = mk(i)
	}
	o, err := cell.NewOpen(cell.OpenConfig{
		Cell: cfg, Unbounded: true, MaxSessions: n,
		TileSlots: tile, WindowSlots: 2 * tile, Windows: 2,
	}, initial, sched.NewDefault())
	if err != nil {
		return e, err
	}
	defer o.Stop()
	if err := o.Start(context.Background()); err != nil {
		return e, err
	}
	type live struct {
		idx int
		ser uint64
	}
	fifo := make([]live, 0, n+1)
	for i := 0; i < n; i++ {
		ser, ok := o.Serial(i)
		if !ok {
			return e, fmt.Errorf("churn: no serial for initial session %d", i)
		}
		fifo = append(fifo, live{i, ser})
	}
	tmpl := mk(0)
	var roll, steady []float64
	warmup := 2 * tile
	total := 0.0
	for slot := 0; slot < warmup+slots; slot++ {
		old := fifo[0]
		fifo = fifo[:copy(fifo, fifo[1:])]
		if ok, err := o.DepartSerial(old.idx, old.ser); err != nil || !ok {
			return e, fmt.Errorf("churn: depart idx=%d ser=%d: ok=%v err=%v", old.idx, old.ser, ok, err)
		}
		idx, err := o.Admit(tmpl)
		if err != nil {
			return e, err
		}
		ser, _ := o.Serial(idx)
		fifo = append(fifo, live{idx, ser})
		start := time.Now()
		if _, err := o.AdvanceTo(slot + 1); err != nil {
			return e, err
		}
		d := float64(time.Since(start).Nanoseconds())
		if slot < warmup {
			continue
		}
		total += d
		if slot%tile == 0 {
			roll = append(roll, d)
		} else {
			steady = append(steady, d)
		}
	}
	e.NsPerSlot = total / float64(slots)
	e.SteadyMedianNs = quantileOf(steady, 0.5)
	e.RolloverMedianNs = quantileOf(roll, 0.5)
	e.RolloverP99Ns = quantileOf(roll, 0.99)
	if e.SteadyMedianNs > 0 {
		e.RolloverX = e.RolloverMedianNs / e.SteadyMedianNs
	}
	return e, nil
}

// quantileOf returns the q-th empirical quantile of xs without mutating it.
func quantileOf(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// measureChurn runs every tier × arm, keeping the best rep by ns/slot
// (the rollover stats follow the kept rep so the ratio stays coherent).
func measureChurn(tiers []int, tile, slotOverride, reps int) (*churnReport, error) {
	rep := &churnReport{
		Cores:      runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Scheduler:  "Default",
		Reps:       reps,
	}
	slots := churnSlotsFor(tile, slotOverride)
	for _, n := range tiers {
		for _, arm := range []struct {
			name    string
			workers int
		}{{"serial", 1}, {"parallel", runtime.GOMAXPROCS(0)}} {
			var best churnEntry
			for r := 0; r < reps; r++ {
				e, err := measureChurnOnce(n, tile, slots, arm.workers)
				if err != nil {
					return nil, err
				}
				if r == 0 || e.NsPerSlot < best.NsPerSlot {
					best = e
				}
			}
			best.Arm = arm.name
			rep.Entries = append(rep.Entries, best)
		}
	}
	return rep, nil
}

// runChurn measures and writes the report, echoing a table to stdout.
func runChurn(outPath, tiersCSV string, tile, slotOverride, reps int) error {
	tiers, err := parseTickUsers(tiersCSV)
	if err != nil {
		return err
	}
	rep, err := measureChurn(tiers, tile, slotOverride, reps)
	if err != nil {
		return err
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("churn benchmark (%d cores, GOMAXPROCS=%d, best of %d):\n",
		rep.Cores, rep.GoMaxProcs, rep.Reps)
	for _, e := range rep.Entries {
		fmt.Printf("  N=%-7d %-8s workers=%-2d tile=%-3d slots=%-4d %12.0f ns/slot  rollover %.2fx (p99 %.0f ns)\n",
			e.Sessions, e.Arm, e.Workers, e.TileSlots, e.Slots, e.NsPerSlot, e.RolloverX, e.RolloverP99Ns)
	}
	fmt.Printf("report written to %s\n", outPath)
	return nil
}
