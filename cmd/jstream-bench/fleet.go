package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"jointstream/internal/cell"
	"jointstream/internal/deploy"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// This file implements the fleet benchmark mode: -fleet runs the
// epoch-clocked streaming multi-cell runner at configurable scale
// (results/BENCH_fleet.json is the checked-in 1M-user × 256-cell
// baseline) and writes a JSON report with per-epoch wall time and the
// heap high-water mark. The high-water mark is the headline number: the
// tiled link tables bound resident link-row memory by
// cells × users/cell × tile × 36 B instead of the monolithic
// cells × users/cell × slots × 36 B, so the report shows fleet horizons
// that would not fit in memory at all without tiling.
//
// -fleetcheck additionally re-runs the same deployment in retained mode
// and asserts the streaming totals match exactly — the differential the
// CI fleet-smoke job executes at reduced scale on every push.

// fleetReport is the JSON document -fleet writes.
type fleetReport struct {
	Users      int    `json:"users"`
	Cells      int    `json:"cells"`
	Slots      int    `json:"slots"`
	EpochSlots int    `json:"epoch_slots"`
	TileSlots  int    `json:"tile_slots"`
	Cores      int    `json:"cores"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Scheduler  string `json:"scheduler"`

	Epochs        int     `json:"epochs"`
	WallSec       float64 `json:"wall_sec"`
	MsPerEpochAvg float64 `json:"ms_per_epoch_avg"`
	MsPerEpochMax float64 `json:"ms_per_epoch_max"`
	// HeapHighWaterMB is the largest live-heap sample observed at an
	// epoch barrier (runtime.ReadMemStats HeapAlloc), the bounded-memory
	// evidence the issue's acceptance criterion asks for.
	HeapHighWaterMB float64 `json:"heap_high_water_mb"`

	TotalEnergyMJ      float64 `json:"total_energy_mj"`
	TotalRebufferSec   float64 `json:"total_rebuffer_sec"`
	DegradedSlots      int     `json:"degraded_slots"`
	RebufferP50Sec     float64 `json:"rebuffer_p50_sec"`
	RebufferP95Sec     float64 `json:"rebuffer_p95_sec"`
	RebufferP99Sec     float64 `json:"rebuffer_p99_sec"`
	EnergyP50MJ        float64 `json:"energy_p50_mj"`
	EnergyP95MJ        float64 `json:"energy_p95_mj"`
	EnergyP99MJ        float64 `json:"energy_p99_mj"`
	CheckedVsRetained  bool    `json:"checked_vs_retained,omitempty"`
	RetainedAgreeExact bool    `json:"retained_agree_exact,omitempty"`
}

// fleetDeployConfig assembles the streaming deployment: identical cells
// with tiled link tables, serial per-cell engines (the site fan-out owns
// the parallelism budget), round-robin attachment (assessment-window
// signal averaging at fleet scale would dominate setup time).
func fleetDeployConfig(cells, slots, epochSlots, tile int) deploy.Config {
	cfg := deploy.Config{
		Policy:     deploy.RoundRobin,
		Stream:     true,
		EpochSlots: epochSlots,
	}
	for i := 0; i < cells; i++ {
		c := cell.PaperConfig()
		c.MaxSlots = slots
		c.RunFullHorizon = true
		c.Workers = 1
		c.LinkTileSlots = tile
		cfg.Sites = append(cfg.Sites, deploy.Site{
			Name:         fmt.Sprintf("cell-%03d", i),
			Cell:         c,
			SignalOffset: units.DBm(-float64(i%8) * 1.5),
		})
	}
	return cfg
}

// fleetSessions draws the fleet workload. Stateless signal traces are
// what make million-user fleets possible at all: the default memoizing
// traces would grow O(users × horizon) during the run, the exact
// allocation profile this mode exists to avoid.
func fleetSessions(users int) ([]*workload.Session, error) {
	cfg := workload.PaperDefaults(users)
	cfg.StatelessSignal = true
	return workload.Generate(cfg, rng.New(42))
}

// runFleet executes the benchmark and writes the report.
func runFleet(outPath string, users, cells, slots, epochSlots, tile int, check bool) error {
	if users < cells {
		return fmt.Errorf("fleet: %d users cannot populate %d cells", users, cells)
	}
	if epochSlots == 0 {
		epochSlots = deploy.DefaultEpochSlots
	}
	sessions, err := fleetSessions(users)
	if err != nil {
		return fmt.Errorf("fleet: workload: %w", err)
	}
	cfg := fleetDeployConfig(cells, slots, epochSlots, tile)

	rep := &fleetReport{
		Users: users, Cells: cells, Slots: slots,
		EpochSlots: epochSlots, TileSlots: tile,
		Cores:      runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Scheduler:  "Default",
	}

	var ms runtime.MemStats
	lastBarrier := time.Now()
	var epochMs []float64
	cfg.OnEpoch = func(deploy.EpochInfo) {
		now := time.Now()
		epochMs = append(epochMs, float64(now.Sub(lastBarrier).Nanoseconds())/1e6)
		runtime.ReadMemStats(&ms)
		if hw := float64(ms.HeapAlloc) / (1 << 20); hw > rep.HeapHighWaterMB {
			rep.HeapHighWaterMB = hw
		}
		lastBarrier = now
	}

	start := time.Now()
	res, err := deploy.Run(context.Background(), cfg, sessions, func() (sched.Scheduler, error) {
		return sched.NewDefault(), nil
	})
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	rep.WallSec = time.Since(start).Seconds()

	fl := res.Fleet
	rep.Epochs = fl.Epochs
	for _, m := range epochMs {
		rep.MsPerEpochAvg += m
		if m > rep.MsPerEpochMax {
			rep.MsPerEpochMax = m
		}
	}
	if len(epochMs) > 0 {
		rep.MsPerEpochAvg /= float64(len(epochMs))
	}
	rep.TotalEnergyMJ = float64(fl.Energy)
	rep.TotalRebufferSec = float64(fl.Rebuffer)
	rep.DegradedSlots = fl.DegradedSlots
	rep.RebufferP50Sec = fl.RebufferPerUser.Quantile(0.50)
	rep.RebufferP95Sec = fl.RebufferPerUser.Quantile(0.95)
	rep.RebufferP99Sec = fl.RebufferPerUser.Quantile(0.99)
	rep.EnergyP50MJ = fl.EnergyPerUser.Quantile(0.50)
	rep.EnergyP95MJ = fl.EnergyPerUser.Quantile(0.95)
	rep.EnergyP99MJ = fl.EnergyPerUser.Quantile(0.99)

	if check {
		rep.CheckedVsRetained = true
		retCfg := cfg
		retCfg.Stream = false
		retCfg.OnEpoch = nil
		ret, err := deploy.Run(context.Background(), retCfg, sessions, func() (sched.Scheduler, error) {
			return sched.NewDefault(), nil
		})
		if err != nil {
			return fmt.Errorf("fleet: retained check run: %w", err)
		}
		if ret.TotalEnergy() != res.TotalEnergy() ||
			ret.TotalRebuffer() != res.TotalRebuffer() ||
			ret.DegradedSlots() != res.DegradedSlots() {
			return fmt.Errorf("fleet: streaming disagrees with retained: energy %v vs %v, rebuffer %v vs %v, degraded %d vs %d",
				res.TotalEnergy(), ret.TotalEnergy(), res.TotalRebuffer(), ret.TotalRebuffer(),
				res.DegradedSlots(), ret.DegradedSlots())
		}
		rep.RetainedAgreeExact = true
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}

	fmt.Printf("fleet benchmark: %d users × %d cells × %d slots (epoch %d, tile %d)\n",
		users, cells, slots, epochSlots, tile)
	fmt.Printf("  %d epochs in %.1f s  (%.1f ms/epoch avg, %.1f max)\n",
		rep.Epochs, rep.WallSec, rep.MsPerEpochAvg, rep.MsPerEpochMax)
	fmt.Printf("  heap high-water %.0f MB\n", rep.HeapHighWaterMB)
	fmt.Printf("  energy %.3e mJ, rebuffer %.3e s, rebuffer p50/p95/p99 = %.1f/%.1f/%.1f s\n",
		rep.TotalEnergyMJ, rep.TotalRebufferSec, rep.RebufferP50Sec, rep.RebufferP95Sec, rep.RebufferP99Sec)
	if rep.CheckedVsRetained {
		fmt.Println("  retained-mode check: exact agreement")
	}
	fmt.Printf("report written to %s\n", outPath)
	return nil
}
