// Command jstream-bench regenerates the paper's evaluation figures
// (Figs. 2–10) and checks the headline claims.
//
// Usage:
//
//	jstream-bench                 # every figure + claims at paper scale
//	jstream-bench -fig 5a         # one figure
//	jstream-bench -claims         # claims table only
//	jstream-bench -quick          # miniature workload (seconds, CI)
//
// Output is a set of aligned ASCII tables, one per figure, in the same
// units the paper plots.
//
// The figures depend on the EMA scheduler's fast monotone-deque DP; its
// correctness harness lives in internal/simtest. Before trusting numbers
// from a modified scheduler, run the 30-second fuzz smoke alongside the
// deterministic suite:
//
//	go test ./...
//	go test -fuzz=FuzzEMAAllocate -fuzztime=30s ./internal/simtest
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"jointstream/internal/experiments"
	"jointstream/internal/report"
)

func main() {
	os.Exit(realMain())
}

// realMain parses flags, wraps the dispatched mode in the optional
// pprof collectors, and funnels every mode through one exit path so
// deferred profile writers always run (os.Exit skips defers).
func realMain() int {
	var (
		figID      = flag.String("fig", "all", "figure to regenerate: all|2|3|4a|4b|5a|5b|6|7|8a|8b|9a|9b|10")
		quick      = flag.Bool("quick", false, "use the miniature CI workload")
		claimsOnly = flag.Bool("claims", false, "print only the headline-claims table")
		seed       = flag.Uint64("seed", 0, "override workload seed (0 keeps the default)")
		ext        = flag.String("ext", "", "extension experiment: lte|vbr|arrivals|dormancy|oracle|abr|adaptive|predictive|seeds")
		seeds      = flag.Int("seeds", 3, "seed count for -ext seeds")
		jsonOut    = flag.String("json", "", "also export the regenerated figures as JSON to this file")
		parallel   = flag.Bool("parallel", false, "regenerate all figures concurrently on all CPUs")
		htmlOut    = flag.String("html", "", "also render the regenerated figures as an HTML report to this file")
		diffBase   = flag.String("diff", "", "compare a fresh run against this baseline JSON export and report drift")
		diffTol    = flag.Float64("tol", 0.001, "relative tolerance for -diff")
		tickOut    = flag.String("tick", "", "benchmark the tick path at large N and write a JSON report to this file")
		tickDiff   = flag.String("tickdiff", "", "re-measure the tick path and gate on this baseline JSON report")
		tickTol    = flag.Float64("ticktol", 0.25, "relative tolerance on normalized tick ratios for -tickdiff")
		tickUsers  = flag.String("tickusers", "1000,10000", "comma-separated cell sizes N for -tick/-tickdiff")
		tickSlots  = flag.Int("tickslots", 0, "override the per-tier slot horizon for -tick/-tickdiff (0 scales with N)")
		tickReps   = flag.Int("tickreps", 3, "repetitions per tick configuration (best is kept)")
		sweepOut   = flag.String("sweep", "", "time the full parallel figure sweep and write a JSON report to this file")
		churnOut   = flag.String("churn", "", "benchmark the open-system churn path and write a JSON report to this file")
		churnTiers = flag.String("churnsessions", "2000,10000", "comma-separated in-service session tiers for -churn")
		churnTile  = flag.Int("churntile", 32, "open tile window in slots for -churn")
		churnSlots = flag.Int("churnslots", 0, "measured slots per rep for -churn (0 = 8 tile windows)")
		churnReps  = flag.Int("churnreps", 3, "repetitions per churn configuration (best is kept)")
		fleetOut   = flag.String("fleet", "", "run the epoch-clocked streaming fleet benchmark and write a JSON report to this file")
		fleetUsers = flag.Int("fleetusers", 1_000_000, "total fleet session count for -fleet")
		fleetCells = flag.Int("fleetcells", 256, "cell count for -fleet")
		fleetSlots = flag.Int("fleetslots", 512, "per-cell slot horizon for -fleet")
		fleetEpoch = flag.Int("fleetepoch", 0, "lockstep epoch size in slots for -fleet (0 = deploy default)")
		fleetTile  = flag.Int("fleettile", 64, "link-table tile window in slots for -fleet (0 = monolithic tables)")
		fleetCheck = flag.Bool("fleetcheck", false, "also run -fleet in retained mode and assert exact agreement")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the selected mode to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the selected mode to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jstream-bench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "jstream-bench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	err := dispatch(dispatchArgs{
		figID: *figID, quick: *quick, claimsOnly: *claimsOnly, seed: *seed,
		ext: *ext, seeds: *seeds, jsonOut: *jsonOut, parallel: *parallel,
		htmlOut: *htmlOut, diffBase: *diffBase, diffTol: *diffTol,
		tickOut: *tickOut, tickDiff: *tickDiff, tickTol: *tickTol,
		tickUsers: *tickUsers, tickSlots: *tickSlots, tickReps: *tickReps,
		sweepOut: *sweepOut,
		churnOut: *churnOut, churnTiers: *churnTiers, churnTile: *churnTile,
		churnSlots: *churnSlots, churnReps: *churnReps,
		fleetOut: *fleetOut, fleetUsers: *fleetUsers, fleetCells: *fleetCells,
		fleetSlots: *fleetSlots, fleetEpoch: *fleetEpoch, fleetTile: *fleetTile,
		fleetCheck: *fleetCheck,
	})

	if *memProfile != "" {
		f, perr := os.Create(*memProfile)
		if perr == nil {
			runtime.GC() // settle allocations so the heap profile reflects retention
			perr = pprof.WriteHeapProfile(f)
			f.Close()
		}
		if perr != nil {
			fmt.Fprintln(os.Stderr, "jstream-bench: memprofile:", perr)
			if err == nil {
				err = perr
			}
		}
	}

	if err != nil {
		fmt.Fprintln(os.Stderr, "jstream-bench:", err)
		return 1
	}
	return 0
}

type dispatchArgs struct {
	figID      string
	quick      bool
	claimsOnly bool
	seed       uint64
	ext        string
	seeds      int
	jsonOut    string
	parallel   bool
	htmlOut    string
	diffBase   string
	diffTol    float64
	tickOut    string
	tickDiff   string
	tickTol    float64
	tickUsers  string
	tickSlots  int
	tickReps   int
	sweepOut   string
	churnOut   string
	churnTiers string
	churnTile  int
	churnSlots int
	churnReps  int
	fleetOut   string
	fleetUsers int
	fleetCells int
	fleetSlots int
	fleetEpoch int
	fleetTile  int
	fleetCheck bool
}

// dispatch picks the first requested mode, mirroring the historical
// flag precedence.
func dispatch(a dispatchArgs) error {
	switch {
	case a.tickOut != "":
		return runTick(a.tickOut, a.tickUsers, a.tickSlots, a.tickReps)
	case a.tickDiff != "":
		return runTickDiff(a.tickDiff, a.tickUsers, a.tickSlots, a.tickReps, a.tickTol)
	case a.fleetOut != "":
		return runFleet(a.fleetOut, a.fleetUsers, a.fleetCells, a.fleetSlots, a.fleetEpoch, a.fleetTile, a.fleetCheck)
	case a.churnOut != "":
		return runChurn(a.churnOut, a.churnTiers, a.churnTile, a.churnSlots, a.churnReps)
	case a.sweepOut != "":
		return runSweep(a.sweepOut, a.quick, a.seed)
	case a.ext != "":
		return runExt(a.ext, a.quick, a.seed, a.seeds)
	case a.diffBase != "":
		return runDiff(a.diffBase, a.quick, a.seed, a.diffTol)
	default:
		return run(a.figID, a.quick, a.claimsOnly, a.seed, a.jsonOut, a.htmlOut, a.parallel)
	}
}

func runExt(name string, quick bool, seed uint64, seeds int) error {
	opts := experiments.PaperOptions()
	if quick {
		opts = experiments.QuickOptions()
	}
	if seed != 0 {
		opts.Seed = seed
	}
	r, err := experiments.NewRunner(opts)
	if err != nil {
		return err
	}
	switch name {
	case "lte":
		return renderOne(r.ExtLTE)
	case "vbr":
		return renderOne(r.ExtVBR)
	case "arrivals":
		return renderOne(r.ExtArrivals)
	case "dormancy":
		return renderOne(r.ExtFastDormancy)
	case "oracle":
		return renderOne(r.ExtOracleGap)
	case "abr":
		return renderOne(r.ExtABR)
	case "adaptive":
		return renderOne(r.ExtAdaptive)
	case "predictive":
		return renderOne(r.ExtPredictive)
	case "seeds":
		stats, err := r.ExtMultiSeed(seeds)
		if err != nil {
			return err
		}
		fmt.Printf("Multi-seed robustness (%d seeds):\n", seeds)
		return experiments.RenderSeedStats(os.Stdout, stats)
	default:
		return fmt.Errorf("unknown extension %q", name)
	}
}

func renderOne(f func() (*experiments.Figure, error)) error {
	fig, err := f()
	if err != nil {
		return err
	}
	return experiments.Render(os.Stdout, fig)
}

// runDiff regenerates all figures and compares them to a baseline export.
func runDiff(baseline string, quick bool, seed uint64, tol float64) error {
	f, err := os.Open(baseline)
	if err != nil {
		return err
	}
	defer f.Close()
	want, err := experiments.ReadJSON(f)
	if err != nil {
		return err
	}
	opts := experiments.PaperOptions()
	if quick {
		opts = experiments.QuickOptions()
	}
	if seed != 0 {
		opts.Seed = seed
	}
	r, err := experiments.NewRunner(opts)
	if err != nil {
		return err
	}
	got, err := r.AllParallel(context.Background(), 0)
	if err != nil {
		return err
	}
	logWorkloadCache(r)
	diffs, err := experiments.Diff(got, want, tol)
	if err != nil {
		return err
	}
	if len(diffs) == 0 {
		fmt.Printf("all %d figures match %s (tolerance %.2g)\n", len(got), baseline, tol)
		return nil
	}
	for _, d := range diffs {
		fmt.Println(d)
	}
	return fmt.Errorf("%d differences against %s", len(diffs), baseline)
}

func exportOutputs(rendered []*experiments.Figure, jsonOut, htmlOut string) error {
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteJSON(f, rendered); err != nil {
			return err
		}
		fmt.Printf("figures exported to %s\n", jsonOut)
	}
	if htmlOut != "" {
		f, err := os.Create(htmlOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WriteHTML(f, "jointstream reproduction report", rendered); err != nil {
			return err
		}
		fmt.Printf("HTML report written to %s\n", htmlOut)
	}
	return nil
}

func run(figID string, quick, claimsOnly bool, seed uint64, jsonOut, htmlOut string, parallel bool) error {
	opts := experiments.PaperOptions()
	if quick {
		opts = experiments.QuickOptions()
	}
	if seed != 0 {
		opts.Seed = seed
	}
	r, err := experiments.NewRunner(opts)
	if err != nil {
		return err
	}

	if claimsOnly {
		return printClaims(r)
	}

	if parallel && strings.ToLower(figID) == "all" {
		rendered, err := r.AllParallel(context.Background(), 0)
		if err != nil {
			return err
		}
		logWorkloadCache(r)
		for _, figure := range rendered {
			if err := experiments.Render(os.Stdout, figure); err != nil {
				return err
			}
			fmt.Println()
		}
		if err := exportOutputs(rendered, jsonOut, htmlOut); err != nil {
			return err
		}
		return printClaims(r)
	}

	type fig struct {
		id string
		f  func() (*experiments.Figure, error)
	}
	figs := []fig{
		{"2", r.Fig2}, {"3", r.Fig3},
		{"4a", r.Fig4a}, {"4b", r.Fig4b},
		{"5a", r.Fig5a}, {"5b", r.Fig5b},
		{"6", r.Fig6}, {"7", r.Fig7},
		{"8a", r.Fig8a}, {"8b", r.Fig8b},
		{"9a", r.Fig9a}, {"9b", r.Fig9b},
		{"10", r.Fig10},
	}
	want := strings.ToLower(figID)
	matched := false
	var rendered []*experiments.Figure
	for _, f := range figs {
		if want != "all" && want != f.id {
			continue
		}
		matched = true
		figure, err := f.f()
		if err != nil {
			return fmt.Errorf("figure %s: %w", f.id, err)
		}
		rendered = append(rendered, figure)
		if err := experiments.Render(os.Stdout, figure); err != nil {
			return err
		}
		fmt.Println()
	}
	if !matched {
		return fmt.Errorf("unknown figure %q", figID)
	}
	if err := exportOutputs(rendered, jsonOut, htmlOut); err != nil {
		return err
	}
	if want == "all" {
		return printClaims(r)
	}
	return nil
}

// logWorkloadCache echoes how many simulations reused a shared
// scenario workload (generation + link-table compilation amortized).
func logWorkloadCache(r *experiments.Runner) {
	hits, misses := r.WorkloadCacheStats()
	fmt.Printf("workload cache: %d hits, %d misses (%d scenarios compiled once, reused %d times)\n",
		hits, misses, misses, hits)
}

func printClaims(r *experiments.Runner) error {
	claims, err := r.Claims()
	if err != nil {
		return err
	}
	fmt.Println("Headline claims (paper vs this reproduction):")
	return experiments.RenderClaims(os.Stdout, claims)
}
