// Command jstream-bench regenerates the paper's evaluation figures
// (Figs. 2–10) and checks the headline claims.
//
// Usage:
//
//	jstream-bench                 # every figure + claims at paper scale
//	jstream-bench -fig 5a         # one figure
//	jstream-bench -claims         # claims table only
//	jstream-bench -quick          # miniature workload (seconds, CI)
//
// Output is a set of aligned ASCII tables, one per figure, in the same
// units the paper plots.
//
// The figures depend on the EMA scheduler's fast monotone-deque DP; its
// correctness harness lives in internal/simtest. Before trusting numbers
// from a modified scheduler, run the 30-second fuzz smoke alongside the
// deterministic suite:
//
//	go test ./...
//	go test -fuzz=FuzzEMAAllocate -fuzztime=30s ./internal/simtest
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"jointstream/internal/experiments"
	"jointstream/internal/report"
)

func main() {
	var (
		figID      = flag.String("fig", "all", "figure to regenerate: all|2|3|4a|4b|5a|5b|6|7|8a|8b|9a|9b|10")
		quick      = flag.Bool("quick", false, "use the miniature CI workload")
		claimsOnly = flag.Bool("claims", false, "print only the headline-claims table")
		seed       = flag.Uint64("seed", 0, "override workload seed (0 keeps the default)")
		ext        = flag.String("ext", "", "extension experiment: lte|vbr|arrivals|dormancy|oracle|abr|adaptive|seeds")
		seeds      = flag.Int("seeds", 3, "seed count for -ext seeds")
		jsonOut    = flag.String("json", "", "also export the regenerated figures as JSON to this file")
		parallel   = flag.Bool("parallel", false, "regenerate all figures concurrently on all CPUs")
		htmlOut    = flag.String("html", "", "also render the regenerated figures as an HTML report to this file")
		diffBase   = flag.String("diff", "", "compare a fresh run against this baseline JSON export and report drift")
		diffTol    = flag.Float64("tol", 0.001, "relative tolerance for -diff")
		tickOut    = flag.String("tick", "", "benchmark the tick path at large N and write a JSON report to this file")
		tickDiff   = flag.String("tickdiff", "", "re-measure the tick path and gate on this baseline JSON report")
		tickTol    = flag.Float64("ticktol", 0.25, "relative tolerance on normalized tick ratios for -tickdiff")
		tickUsers  = flag.String("tickusers", "1000,10000", "comma-separated cell sizes N for -tick/-tickdiff")
		tickSlots  = flag.Int("tickslots", 0, "override the per-tier slot horizon for -tick/-tickdiff (0 scales with N)")
		tickReps   = flag.Int("tickreps", 3, "repetitions per tick configuration (best is kept)")
	)
	flag.Parse()
	if *tickOut != "" {
		if err := runTick(*tickOut, *tickUsers, *tickSlots, *tickReps); err != nil {
			fmt.Fprintln(os.Stderr, "jstream-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *tickDiff != "" {
		if err := runTickDiff(*tickDiff, *tickUsers, *tickSlots, *tickReps, *tickTol); err != nil {
			fmt.Fprintln(os.Stderr, "jstream-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *ext != "" {
		if err := runExt(*ext, *quick, *seed, *seeds); err != nil {
			fmt.Fprintln(os.Stderr, "jstream-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *diffBase != "" {
		if err := runDiff(*diffBase, *quick, *seed, *diffTol); err != nil {
			fmt.Fprintln(os.Stderr, "jstream-bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*figID, *quick, *claimsOnly, *seed, *jsonOut, *htmlOut, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "jstream-bench:", err)
		os.Exit(1)
	}
}

func runExt(name string, quick bool, seed uint64, seeds int) error {
	opts := experiments.PaperOptions()
	if quick {
		opts = experiments.QuickOptions()
	}
	if seed != 0 {
		opts.Seed = seed
	}
	r, err := experiments.NewRunner(opts)
	if err != nil {
		return err
	}
	switch name {
	case "lte":
		return renderOne(r.ExtLTE)
	case "vbr":
		return renderOne(r.ExtVBR)
	case "arrivals":
		return renderOne(r.ExtArrivals)
	case "dormancy":
		return renderOne(r.ExtFastDormancy)
	case "oracle":
		return renderOne(r.ExtOracleGap)
	case "abr":
		return renderOne(r.ExtABR)
	case "adaptive":
		return renderOne(r.ExtAdaptive)
	case "seeds":
		stats, err := r.ExtMultiSeed(seeds)
		if err != nil {
			return err
		}
		fmt.Printf("Multi-seed robustness (%d seeds):\n", seeds)
		return experiments.RenderSeedStats(os.Stdout, stats)
	default:
		return fmt.Errorf("unknown extension %q", name)
	}
}

func renderOne(f func() (*experiments.Figure, error)) error {
	fig, err := f()
	if err != nil {
		return err
	}
	return experiments.Render(os.Stdout, fig)
}

// runDiff regenerates all figures and compares them to a baseline export.
func runDiff(baseline string, quick bool, seed uint64, tol float64) error {
	f, err := os.Open(baseline)
	if err != nil {
		return err
	}
	defer f.Close()
	want, err := experiments.ReadJSON(f)
	if err != nil {
		return err
	}
	opts := experiments.PaperOptions()
	if quick {
		opts = experiments.QuickOptions()
	}
	if seed != 0 {
		opts.Seed = seed
	}
	r, err := experiments.NewRunner(opts)
	if err != nil {
		return err
	}
	got, err := r.AllParallel(context.Background(), 0)
	if err != nil {
		return err
	}
	diffs, err := experiments.Diff(got, want, tol)
	if err != nil {
		return err
	}
	if len(diffs) == 0 {
		fmt.Printf("all %d figures match %s (tolerance %.2g)\n", len(got), baseline, tol)
		return nil
	}
	for _, d := range diffs {
		fmt.Println(d)
	}
	return fmt.Errorf("%d differences against %s", len(diffs), baseline)
}

func exportOutputs(rendered []*experiments.Figure, jsonOut, htmlOut string) error {
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteJSON(f, rendered); err != nil {
			return err
		}
		fmt.Printf("figures exported to %s\n", jsonOut)
	}
	if htmlOut != "" {
		f, err := os.Create(htmlOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WriteHTML(f, "jointstream reproduction report", rendered); err != nil {
			return err
		}
		fmt.Printf("HTML report written to %s\n", htmlOut)
	}
	return nil
}

func run(figID string, quick, claimsOnly bool, seed uint64, jsonOut, htmlOut string, parallel bool) error {
	opts := experiments.PaperOptions()
	if quick {
		opts = experiments.QuickOptions()
	}
	if seed != 0 {
		opts.Seed = seed
	}
	r, err := experiments.NewRunner(opts)
	if err != nil {
		return err
	}

	if claimsOnly {
		return printClaims(r)
	}

	if parallel && strings.ToLower(figID) == "all" {
		rendered, err := r.AllParallel(context.Background(), 0)
		if err != nil {
			return err
		}
		for _, figure := range rendered {
			if err := experiments.Render(os.Stdout, figure); err != nil {
				return err
			}
			fmt.Println()
		}
		if err := exportOutputs(rendered, jsonOut, htmlOut); err != nil {
			return err
		}
		return printClaims(r)
	}

	type fig struct {
		id string
		f  func() (*experiments.Figure, error)
	}
	figs := []fig{
		{"2", r.Fig2}, {"3", r.Fig3},
		{"4a", r.Fig4a}, {"4b", r.Fig4b},
		{"5a", r.Fig5a}, {"5b", r.Fig5b},
		{"6", r.Fig6}, {"7", r.Fig7},
		{"8a", r.Fig8a}, {"8b", r.Fig8b},
		{"9a", r.Fig9a}, {"9b", r.Fig9b},
		{"10", r.Fig10},
	}
	want := strings.ToLower(figID)
	matched := false
	var rendered []*experiments.Figure
	for _, f := range figs {
		if want != "all" && want != f.id {
			continue
		}
		matched = true
		figure, err := f.f()
		if err != nil {
			return fmt.Errorf("figure %s: %w", f.id, err)
		}
		rendered = append(rendered, figure)
		if err := experiments.Render(os.Stdout, figure); err != nil {
			return err
		}
		fmt.Println()
	}
	if !matched {
		return fmt.Errorf("unknown figure %q", figID)
	}
	if err := exportOutputs(rendered, jsonOut, htmlOut); err != nil {
		return err
	}
	if want == "all" {
		return printClaims(r)
	}
	return nil
}

func printClaims(r *experiments.Runner) error {
	claims, err := r.Claims()
	if err != nil {
		return err
	}
	fmt.Println("Headline claims (paper vs this reproduction):")
	return experiments.RenderClaims(os.Stdout, claims)
}
