package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"jointstream/internal/cell"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/workload"
)

// This file implements the tick-path benchmark mode: -tick measures the
// sharded engine's per-slot cost at large N and writes a JSON report
// (results/BENCH_tick.json is the checked-in baseline), -tickdiff
// compares a fresh measurement against such a baseline.
//
// Raw ns/slot numbers are machine-bound, so the diff normalizes every
// entry by its own report's serial smallest-N entry before comparing:
// the ratios say "how much more expensive is tier X than the serial 1k
// tier on this machine", which transfers across hardware. A code change
// that slows the tick path inflates the fresh ratios and fails the gate.

// tickEntry is one measured (users, workers) configuration. Arm tags
// the configuration independently of the resolved worker count, which
// collapses to 1 on single-core machines.
type tickEntry struct {
	Users     int     `json:"users"`
	Arm       string  `json:"arm"`     // "serial" (workers=1) or "parallel" (workers=GOMAXPROCS)
	Workers   int     `json:"workers"` // resolved count actually used
	Slots     int     `json:"slots"`
	NsPerSlot float64 `json:"ns_per_slot"`
	// Speedup is serial ns/slot over this entry's, for the same N. It is
	// only written when the parallel arm actually resolved to more than
	// one worker: on GOMAXPROCS=1 machines both arms run the same serial
	// configuration and a "speedup" would just be measurement noise
	// masquerading as a parallel result.
	Speedup float64 `json:"speedup,omitempty"`
}

// tickReport is the JSON document -tick writes.
type tickReport struct {
	Cores      int    `json:"cores"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Scheduler  string `json:"scheduler"`
	Reps       int    `json:"reps"`
	// Note records measurement caveats, e.g. that speedups were omitted
	// because the run had only one scheduling core.
	Note    string      `json:"note,omitempty"`
	Entries []tickEntry `json:"entries"`
}

// tickSlotsFor scales the horizon down as N grows so every tier costs
// roughly the same wall time: 1k → 256 slots, 10k → 64, 100k → 16.
func tickSlotsFor(users, override int) int {
	if override > 0 {
		return override
	}
	s := 640_000 / users
	if s < 16 {
		s = 16
	}
	if s > 256 {
		s = 256
	}
	return s
}

// measureTick builds and runs one simulator per rep and keeps the best
// (smallest) ns/slot, the standard way to strip scheduler jitter from a
// throughput measurement.
func measureTick(userTiers []int, slotOverride, reps int) (*tickReport, error) {
	rep := &tickReport{
		Cores:      runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Scheduler:  "Default",
		Reps:       reps,
	}
	if rep.GoMaxProcs == 1 {
		rep.Note = "GOMAXPROCS=1: both arms ran serially, speedups omitted"
	}
	for _, users := range userTiers {
		sessions, err := workload.Generate(workload.PaperDefaults(users), rng.New(42))
		if err != nil {
			return nil, fmt.Errorf("tick: N=%d workload: %w", users, err)
		}
		slots := tickSlotsFor(users, slotOverride)
		// Compile the link table once per tier, outside the timed reps —
		// the sweep harness amortizes it the same way across scheduler
		// runs, so the measurement is the pure tick path.
		linkCfg := cell.PaperConfig()
		linkCfg.MaxSlots = slots
		linkCfg.RunFullHorizon = true
		link, err := cell.CompileLink(linkCfg, sessions)
		if err != nil {
			return nil, fmt.Errorf("tick: N=%d link table: %w", users, err)
		}
		var serial float64
		for _, arm := range []struct {
			name    string
			workers int
		}{{"serial", 1}, {"parallel", runtime.GOMAXPROCS(0)}} {
			best, err := bestNsPerSlot(sessions, link, slots, arm.workers, reps)
			if err != nil {
				return nil, err
			}
			e := tickEntry{Users: users, Arm: arm.name, Workers: arm.workers, Slots: slots, NsPerSlot: best}
			if arm.name == "serial" {
				serial = best
			} else if best > 0 && arm.workers > 1 {
				e.Speedup = serial / best
			}
			rep.Entries = append(rep.Entries, e)
		}
	}
	return rep, nil
}

func bestNsPerSlot(sessions []*workload.Session, link *cell.LinkTable, slots, workers, reps int) (float64, error) {
	cfg := cell.PaperConfig()
	cfg.MaxSlots = slots
	cfg.RunFullHorizon = true // paper-sized videos: every slot pays full N
	cfg.Workers = workers
	cfg.Link = link
	best := 0.0
	for r := 0; r < reps; r++ {
		sim, err := cell.New(cfg, sessions, sched.NewDefault())
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := sim.Run(); err != nil {
			return 0, err
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(slots)
		if r == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// parseTickUsers parses the -tickusers CSV.
func parseTickUsers(csv string) ([]int, error) {
	var tiers []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("tick: bad user tier %q", f)
		}
		tiers = append(tiers, n)
	}
	sort.Ints(tiers)
	return tiers, nil
}

// runTick measures and writes the report, echoing a table to stdout.
func runTick(outPath, usersCSV string, slotOverride, reps int) error {
	tiers, err := parseTickUsers(usersCSV)
	if err != nil {
		return err
	}
	rep, err := measureTick(tiers, slotOverride, reps)
	if err != nil {
		return err
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("tick benchmark (%d cores, GOMAXPROCS=%d, best of %d):\n",
		rep.Cores, rep.GoMaxProcs, rep.Reps)
	if rep.Note != "" {
		fmt.Printf("  note: %s\n", rep.Note)
	}
	for _, e := range rep.Entries {
		line := fmt.Sprintf("  N=%-7d %-8s workers=%-2d slots=%-4d %12.0f ns/slot", e.Users, e.Arm, e.Workers, e.Slots, e.NsPerSlot)
		if e.Speedup > 0 {
			line += fmt.Sprintf("  (%.2fx vs serial)", e.Speedup)
		}
		fmt.Println(line)
	}
	fmt.Printf("report written to %s\n", outPath)
	return nil
}

// runTickDiff re-measures and gates on the normalized ratios.
func runTickDiff(basePath, usersCSV string, slotOverride, reps int, tol float64) error {
	f, err := os.Open(basePath)
	if err != nil {
		return err
	}
	defer f.Close()
	var base tickReport
	if err := json.NewDecoder(f).Decode(&base); err != nil {
		return fmt.Errorf("tick: baseline %s: %w", basePath, err)
	}
	baseNorm, err := normalizeTick(&base)
	if err != nil {
		return fmt.Errorf("tick: baseline %s: %w", basePath, err)
	}

	tiers, err := parseTickUsers(usersCSV)
	if err != nil {
		return err
	}
	fresh, err := measureTick(tiers, slotOverride, reps)
	if err != nil {
		return err
	}
	freshNorm, err := normalizeTick(fresh)
	if err != nil {
		return err
	}

	var regressions []string
	for key, got := range freshNorm {
		want, ok := baseNorm[key]
		if !ok {
			continue // tier not in the baseline; nothing to gate on
		}
		fmt.Printf("  %-22s ratio %.3f (baseline %.3f)\n", key, got, want)
		if got > want*(1+tol) {
			regressions = append(regressions,
				fmt.Sprintf("%s: normalized cost %.3f exceeds baseline %.3f by more than %.0f%%",
					key, got, want, tol*100))
		}
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Println("REGRESSION:", r)
		}
		return fmt.Errorf("%d tick regressions against %s", len(regressions), basePath)
	}
	fmt.Printf("tick path within %.0f%% of %s\n", tol*100, basePath)
	return nil
}

// normalizeTick divides every entry's ns/slot by the report's serial
// smallest-N entry, keyed "N=<users>/<arm>" (the resolved parallel
// worker count differs across machines, so the key only distinguishes
// the arms).
func normalizeTick(rep *tickReport) (map[string]float64, error) {
	ref := 0.0
	minUsers := 0
	for _, e := range rep.Entries {
		if e.Arm != "serial" && e.Workers != 1 {
			continue
		}
		if minUsers == 0 || e.Users < minUsers {
			minUsers, ref = e.Users, e.NsPerSlot
		}
	}
	if ref <= 0 {
		return nil, fmt.Errorf("no serial reference entry")
	}
	norm := make(map[string]float64, len(rep.Entries))
	for _, e := range rep.Entries {
		arm := e.Arm
		if arm == "" { // pre-arm baseline files
			arm = "parallel"
			if e.Workers == 1 {
				arm = "serial"
			}
		}
		norm[fmt.Sprintf("N=%d/%s", e.Users, arm)] = e.NsPerSlot / ref
	}
	return norm, nil
}
