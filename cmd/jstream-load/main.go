// Command jstream-load drives churn against a jstream-gateway: a Poisson
// stream of short-lived TCP streaming sessions with a configurable
// concurrency ceiling and fault mix (mid-stream drops, stalled readers,
// signal flappers). It reports the client-side session ledger —
// completed / refused-at-admission / dropped / failed — and, in spawn
// mode, the gateway's own diagnostics: admission, shed and drain
// counters, tick-duration p50/p99, and leaked goroutines.
//
// Against a running gateway:
//
//	jstream-load -addr 127.0.0.1:5600 -clients 100000 -concurrency 2000
//
// Self-contained (spawns an in-process gateway, drains it at the end,
// verifies nothing leaked) — the CI smoke configuration:
//
//	jstream-load -spawn -clients 1000 -concurrency 200 -max-sessions 64 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"jointstream/internal/gateway"
	"jointstream/internal/radio"
	"jointstream/internal/rng"
	"jointstream/internal/rrc"
	"jointstream/internal/sched"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

type options struct {
	addr        string
	clients     int
	concurrency int
	arrival     time.Duration
	videoKB     float64
	videoSpread float64
	rate        float64
	faultDrop   float64
	faultStall  float64
	faultFlap   float64
	stallDur    time.Duration
	trace       string
	seed        uint64
	timeout     time.Duration
	jsonOut     bool
	verbose     bool
	maxTickP99  float64

	spawn        bool
	slotDur      time.Duration
	maxSessions  int
	headroom     float64
	shedMax      int
	slotDeadline time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "", "gateway address (required unless -spawn)")
	flag.IntVar(&o.clients, "clients", 1000, "total sessions to run")
	flag.IntVar(&o.concurrency, "concurrency", 256, "max concurrent sessions")
	flag.DurationVar(&o.arrival, "arrival", 2*time.Millisecond, "mean session interarrival time (Poisson)")
	flag.Float64Var(&o.videoKB, "video", 300, "mean video size per session (KB)")
	flag.Float64Var(&o.videoSpread, "video-spread", 0.5, "video size spread as a fraction of the mean")
	flag.Float64Var(&o.rate, "rate", 400, "required playback rate (KB/s)")
	flag.Float64Var(&o.faultDrop, "fault-drop", 0.05, "fraction of sessions that hang up mid-stream")
	flag.Float64Var(&o.faultStall, "fault-stall", 0.05, "fraction of sessions that stop reading for -stall")
	flag.Float64Var(&o.faultFlap, "fault-flap", 0.05, "fraction of sessions that flap their reported signal")
	flag.DurationVar(&o.stallDur, "stall", 200*time.Millisecond, "stall length for fault-stall sessions")
	flag.StringVar(&o.trace, "trace", "", "CSV arrival trace (timestamp,rate,duration rows, seconds); replaces Poisson pacing, -clients caps the session count")
	flag.Uint64Var(&o.seed, "seed", 1, "load plan seed")
	flag.DurationVar(&o.timeout, "timeout", 5*time.Minute, "overall run deadline")
	flag.BoolVar(&o.jsonOut, "json", false, "print the report as JSON")
	flag.BoolVar(&o.verbose, "v", false, "log each failed session's error")
	flag.Float64Var(&o.maxTickP99, "max-tick-p99", 0, "fail if gateway tick p99 exceeds this many ms (spawn mode; 0 disables)")
	flag.BoolVar(&o.spawn, "spawn", false, "spawn an in-process gateway and drive it (self-test / CI mode)")
	flag.DurationVar(&o.slotDur, "slot", 5*time.Millisecond, "spawned gateway slot length")
	flag.IntVar(&o.maxSessions, "max-sessions", 0, "spawned gateway session cap (0 disables)")
	flag.Float64Var(&o.headroom, "headroom", 0, "spawned gateway admission headroom fraction (0 disables)")
	flag.IntVar(&o.shedMax, "shed-max", 1, "spawned gateway shed budget per slot (0 disables)")
	flag.DurationVar(&o.slotDeadline, "slot-deadline", 20*time.Millisecond, "spawned gateway async delivery deadline")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "jstream-load:", err)
		os.Exit(1)
	}
}

// report is the run's final ledger, JSON-shaped for CI gating.
type report struct {
	Sessions  int     `json:"sessions"`
	Completed int64   `json:"completed"`
	Busy      int64   `json:"busy"`
	Dropped   int64   `json:"dropped"`
	Failed    int64   `json:"failed"`
	Bytes     int64   `json:"bytes"`
	ElapsedMs float64 `json:"elapsed_ms"`

	// Spawn-mode gateway-side observations.
	Slots            int     `json:"slots,omitempty"`
	Admitted         int     `json:"admitted,omitempty"`
	Rejected         int     `json:"rejected,omitempty"`
	Shed             int     `json:"shed,omitempty"`
	Drained          int     `json:"drained,omitempty"`
	TickP50Ms        float64 `json:"tick_p50_ms,omitempty"`
	TickP99Ms        float64 `json:"tick_p99_ms,omitempty"`
	LeakedGoroutines int     `json:"leaked_goroutines"`
}

func run(o options) error {
	if o.clients <= 0 || o.concurrency <= 0 {
		return fmt.Errorf("need positive -clients and -concurrency")
	}
	if !o.spawn && o.addr == "" {
		return fmt.Errorf("need -addr (or -spawn)")
	}

	schedule, err := loadTrace(o)
	if err != nil {
		return err
	}

	baseGoroutines := runtime.NumGoroutine()
	var gw *gateway.Gateway
	var ln net.Listener
	var stopStepping func()
	addr := o.addr
	if o.spawn {
		var err error
		gw, ln, stopStepping, err = spawnGateway(o)
		if err != nil {
			return err
		}
		defer ln.Close()
		addr = ln.Addr().String()
	}

	rep := driveClients(o, addr, schedule)

	if o.spawn {
		// Graceful drain: accepting stops, admission closes, in-service
		// sessions finish, the stepper exits once the gateway reports
		// Drained. The listener must die before the leak check — its
		// accept loop is a goroutine of ours.
		ln.Close()
		gw.BeginDrain()
		drainDeadline := time.Now().Add(30 * time.Second)
		for !gw.Drained() && time.Now().Before(drainDeadline) {
			time.Sleep(o.slotDur)
		}
		stopStepping()
		gw.Close()
		// Workers unwind asynchronously; give them a bounded window.
		leakDeadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > baseGoroutines && time.Now().Before(leakDeadline) {
			runtime.GC()
			time.Sleep(10 * time.Millisecond)
		}
		rep.LeakedGoroutines = runtime.NumGoroutine() - baseGoroutines
		if rep.LeakedGoroutines < 0 {
			rep.LeakedGoroutines = 0
		}
		d := gw.Diagnostics()
		if o.verbose {
			fmt.Fprintf(os.Stderr, "diag: %+v\n", d)
		}
		rep.Slots = gw.Slot()
		rep.Admitted, rep.Rejected, rep.Shed, rep.Drained = d.Admitted, d.Rejected, d.Shed, d.Drained
		rep.TickP50Ms = gw.TickQuantileMs(0.50)
		rep.TickP99Ms = gw.TickQuantileMs(0.99)
	}

	if o.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Printf("sessions=%d completed=%d busy=%d dropped=%d failed=%d bytes=%d elapsed=%.0fms\n",
			rep.Sessions, rep.Completed, rep.Busy, rep.Dropped, rep.Failed, rep.Bytes, rep.ElapsedMs)
		if o.spawn {
			fmt.Printf("gateway: slots=%d admitted=%d rejected=%d shed=%d drained=%d tick p50=%.2fms p99=%.2fms leaked=%d\n",
				rep.Slots, rep.Admitted, rep.Rejected, rep.Shed, rep.Drained,
				rep.TickP50Ms, rep.TickP99Ms, rep.LeakedGoroutines)
		}
	}

	if rep.Failed > 0 {
		return fmt.Errorf("%d sessions failed unexpectedly", rep.Failed)
	}
	if o.spawn && rep.LeakedGoroutines > 0 {
		return fmt.Errorf("%d goroutines leaked", rep.LeakedGoroutines)
	}
	if o.maxTickP99 > 0 && rep.TickP99Ms > o.maxTickP99 {
		return fmt.Errorf("tick p99 %.2fms exceeds budget %.2fms", rep.TickP99Ms, o.maxTickP99)
	}
	return nil
}

// spawnGateway builds the in-process gateway, its accept loop and its
// wall-clock stepper.
func spawnGateway(o options) (*gateway.Gateway, net.Listener, func(), error) {
	// The allocation unit must fit the slot: with short wall-clock slots a
	// coarse unit floors per-slot link budgets to zero units and starves
	// weak-signal users. Size it so even a 200 KB/s link earns one unit
	// per slot.
	const capacity = 50000
	unit := units.KB(200 * o.slotDur.Seconds())
	gw, err := gateway.New(gateway.Config{
		Tau:               units.Seconds(o.slotDur.Seconds()),
		Unit:              unit,
		Capacity:          capacity,
		Radio:             radio.Paper3G(),
		RRC:               rrc.Paper3G(),
		QueueCap:          units.KB(o.videoKB * (1 + o.videoSpread) * 2),
		MaxSessions:       o.maxSessions,
		AdmitHeadroomFrac: o.headroom,
		Policy: gateway.Policy{
			AsyncDelivery:  true,
			SlotDeadline:   o.slotDeadline,
			ShedMaxPerSlot: o.shedMax,
		},
	}, sched.NewDefault())
	if err != nil {
		return nil, nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if _, err := gateway.AttachConnWith(gw, conn, gateway.ConnOptions{
				InitialSig: -70, IOTimeout: 30 * time.Second,
			}); err != nil {
				conn.Close()
			}
		}
	}()
	stop := make(chan struct{})
	var stepWG sync.WaitGroup
	stepWG.Add(1)
	go func() {
		defer stepWG.Done()
		ticker := time.NewTicker(o.slotDur)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				gw.Step()
			}
		}
	}()
	return gw, ln, func() { close(stop); stepWG.Wait() }, nil
}

// fault classes drawn per session.
const (
	faultNone = iota
	faultDrop
	faultStall
	faultFlap
)

// loadTrace expands -trace into absolute wall-clock arrival offsets
// (millisecond resolution), or returns nil when Poisson pacing applies.
func loadTrace(o options) ([]time.Duration, error) {
	if o.trace == "" {
		return nil, nil
	}
	f, err := os.Open(o.trace)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := workload.ParseArrivalTrace(f, units.Seconds(0.001))
	if err != nil {
		return nil, err
	}
	schedule := make([]time.Duration, len(tr.StartSlots))
	for i, s := range tr.StartSlots {
		schedule[i] = time.Duration(s) * time.Millisecond
	}
	return schedule, nil
}

// driveClients paces the arrival process — the recorded trace schedule
// when one was given, Poisson otherwise — and fans sessions out under
// the concurrency ceiling.
func driveClients(o options, addr string, schedule []time.Duration) *report {
	n := o.clients
	if schedule != nil && len(schedule) < n {
		n = len(schedule)
	}
	rep := &report{Sessions: n}
	start := time.Now()
	deadline := start.Add(o.timeout)
	sem := make(chan struct{}, o.concurrency)
	var wg sync.WaitGroup
	arrSrc := rng.New(o.seed)
	for i := 0; i < n; i++ {
		if schedule != nil {
			// Replay the recorded arrival time; a full semaphore still
			// converts trace bursts into instantaneous concurrency.
			if wait := schedule[i] - time.Since(start); wait > 0 {
				time.Sleep(wait)
			}
		} else {
			// Poisson pacing; a full semaphore converts arrival pressure
			// into instantaneous concurrency, which is the point.
			gap := time.Duration(arrSrc.Exp(1.0 / max(float64(o.arrival), 1)))
			time.Sleep(gap)
		}
		if time.Now().After(deadline) {
			rep.Sessions = i
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() { <-sem }()
			runSession(o, addr, uint64(id), rep)
		}(i)
	}
	wg.Wait()
	rep.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	return rep
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// runSession executes one client session with its drawn fault behavior
// and files the outcome.
func runSession(o options, addr string, id uint64, rep *report) {
	src := rng.New(rng.Hash3(o.seed, id, 0x10ad))
	size := o.videoKB * (1 + o.videoSpread*(2*src.Float64()-1))
	if size < 1 {
		size = 1
	}
	fault := faultNone
	switch p := src.Float64(); {
	case p < o.faultDrop:
		fault = faultDrop
	case p < o.faultDrop+o.faultStall:
		fault = faultStall
	case p < o.faultDrop+o.faultStall+o.faultFlap:
		fault = faultFlap
	}

	c, err := gateway.DialClient(addr, units.KB(size), units.KBps(o.rate))
	if err != nil {
		atomic.AddInt64(&rep.Failed, 1)
		return
	}
	defer c.Close()

	want := int64(size * 1000)
	dropAt := int64(-1)
	if fault == faultDrop {
		dropAt = int64(src.Uniform(0.2, 0.8) * float64(want))
	}
	stalled := false
	lastSig := time.Now()
	flapHigh := false
	for !c.Done() {
		if _, err := c.ReadFrame(); err != nil {
			switch {
			case err == gateway.ErrBusy:
				atomic.AddInt64(&rep.Busy, 1)
			case err == io.EOF && c.Done():
			case fault != faultNone:
				// A faulted session ending early was detached by the
				// gateway's policy — expected, file it under its fault.
				atomic.AddInt64(&rep.Dropped, 1)
			default:
				atomic.AddInt64(&rep.Failed, 1)
				if o.verbose {
					fmt.Fprintf(os.Stderr, "session %d: %v after %d bytes\n", id, err, c.ReceivedBytes())
				}
			}
			atomic.AddInt64(&rep.Bytes, c.ReceivedBytes())
			return
		}
		if dropAt >= 0 && c.ReceivedBytes() >= dropAt {
			atomic.AddInt64(&rep.Dropped, 1)
			atomic.AddInt64(&rep.Bytes, c.ReceivedBytes())
			return
		}
		if fault == faultStall && !stalled && c.ReceivedBytes() > want/4 {
			stalled = true
			time.Sleep(o.stallDur)
		}
		switch {
		case fault == faultFlap:
			flapHigh = !flapHigh
			sig := units.DBm(-110)
			if flapHigh {
				sig = -50
			}
			c.ReportSignal(sig)
		case time.Since(lastSig) > 200*time.Millisecond:
			lastSig = time.Now()
			c.ReportSignal(units.DBm(-60 - 20*src.Float64()))
		}
	}
	atomic.AddInt64(&rep.Completed, 1)
	atomic.AddInt64(&rep.Bytes, c.ReceivedBytes())
}
