// Command jstream-trace generates and inspects signal-strength traces,
// along with the throughput and per-byte energy each sample implies under
// the paper's Eq. (24) radio model.
//
// Usage:
//
//	jstream-trace -model sine -slots 20
//	jstream-trace -model walk -step 5 -slots 100 -stats
//	jstream-trace -model ge -slots 50 -seed 9
package main

import (
	"flag"
	"fmt"
	"os"

	"jointstream/internal/metrics"
	"jointstream/internal/radio"
	"jointstream/internal/rng"
	"jointstream/internal/signal"
	"jointstream/internal/units"
)

func main() {
	var (
		model  = flag.String("model", "sine", "trace model: sine|walk|ge|const")
		slots  = flag.Int("slots", 30, "number of slots to emit")
		seed   = flag.Uint64("seed", 1, "random seed")
		period = flag.Int("period", 600, "sine period in slots")
		noise  = flag.Float64("noise", 30, "sine noise stddev (dBm)")
		step   = flag.Float64("step", 3, "random-walk step stddev (dBm)")
		level  = flag.Float64("level", -80, "constant level (dBm)")
		stats  = flag.Bool("stats", false, "print summary statistics instead of samples")
		out    = flag.String("out", "", "export the trace to this file (slot,dBm CSV)")
		in     = flag.String("in", "", "replay a trace from this file instead of generating one")
	)
	flag.Parse()
	if err := run(*model, *slots, *seed, *period, *noise, *step, *level, *stats, *out, *in); err != nil {
		fmt.Fprintln(os.Stderr, "jstream-trace:", err)
		os.Exit(1)
	}
}

func run(model string, slots int, seed uint64, period int, noise, step, level float64, stats bool, out, in string) error {
	if slots <= 0 {
		return fmt.Errorf("non-positive slot count %d", slots)
	}
	src := rng.New(seed)
	var (
		tr  signal.Trace
		err error
	)
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = signal.ReadTrace(f, signal.DefaultBounds)
		if err != nil {
			return err
		}
		return emit(tr, slots, stats, out, "file:"+in)
	}
	switch model {
	case "sine":
		tr, err = signal.NewSine(signal.SineConfig{
			Bounds: signal.DefaultBounds, PeriodSlots: period, NoiseStdDBm: noise,
		}, src)
	case "walk":
		tr, err = signal.NewRandomWalk(signal.RandomWalkConfig{
			Bounds: signal.DefaultBounds, Start: -80, StepStd: step,
		}, src)
	case "ge":
		tr, err = signal.NewGilbertElliott(signal.GilbertElliottConfig{
			Bounds: signal.DefaultBounds, Good: -60, Bad: -100,
			PGoodToBad: 0.05, PBadToGood: 0.1, JitterStd: 3,
		}, src)
	case "const":
		tr = signal.Constant(units.DBm(level), signal.DefaultBounds)
	default:
		return fmt.Errorf("unknown model %q", model)
	}
	if err != nil {
		return err
	}
	return emit(tr, slots, stats, out, model)
}

// emit prints or exports the trace.
func emit(tr signal.Trace, slots int, stats bool, out, label string) error {
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := signal.WriteTrace(f, tr, slots); err != nil {
			return err
		}
		fmt.Printf("wrote %d samples of %s to %s\n", slots, label, out)
		return nil
	}
	rm := radio.Paper3G()
	if stats {
		sample := make([]float64, slots)
		for n := 0; n < slots; n++ {
			sample[n] = float64(tr.At(n))
		}
		s, err := metrics.Summarize(sample)
		if err != nil {
			return err
		}
		fmt.Printf("model=%s slots=%d\n", label, slots)
		fmt.Printf("mean=%.1f dBm  std=%.1f  min=%.1f  p50=%.1f  p90=%.1f  max=%.1f\n",
			s.Mean, s.Std, s.Min, s.P50, s.P90, s.Max)
		return nil
	}
	fmt.Printf("%5s  %8s  %10s  %10s\n", "slot", "dBm", "KB/s", "mJ/KB")
	for n := 0; n < slots; n++ {
		sig := tr.At(n)
		fmt.Printf("%5d  %8.1f  %10.1f  %10.3f\n",
			n, float64(sig),
			float64(rm.Throughput.Throughput(sig)),
			float64(rm.Power.EnergyPerKB(sig)))
	}
	return nil
}
