// Energy-budget example: an operator wants maximum battery savings while
// bounding how much extra stalling users may suffer. It sweeps the EM
// mode's β knob (Ω = β × Default rebuffering) and prints the resulting
// energy/rebuffering frontier, illustrating the Theorem-1 trade-off that
// the Lyapunov weight V controls.
//
//	go run ./examples/energy-budget
package main

import (
	"fmt"
	"log"

	"jointstream/internal/cell"
	"jointstream/internal/core"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

func main() {
	cellCfg := cell.PaperConfig()
	cellCfg.Capacity = 8000
	wl := workload.PaperDefaults(16)
	wl.SizeMin = 20 * units.Megabyte
	wl.SizeMax = 40 * units.Megabyte

	fmt.Println("beta   V        rebuffer/user  energy/user  saving")
	for _, beta := range []float64{0.6, 0.8, 1.0, 1.5, 2.0} {
		rep, err := core.Run(core.Config{
			Mode:     core.ModeEM,
			Beta:     beta,
			Cell:     cellCfg,
			Workload: wl,
			Seed:     7,
		})
		if err != nil {
			log.Fatalf("beta=%v: %v", beta, err)
		}
		fmt.Printf("%-5.1f  %-7.3g  %-13v  %-11v  %.1f%%\n",
			beta, rep.V,
			rep.Result.MeanRebufferPerUser,
			rep.Result.MeanEnergyPerUser,
			rep.EnergyReduction*100)
	}
	fmt.Println("\nLarger beta loosens the stall bound, letting EMA defer more")
	fmt.Println("bytes to strong-signal slots and avoid RRC tail energy.")
}
