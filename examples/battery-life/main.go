// Battery-life example: translate the EM mode's energy savings into the
// terms the paper motivates — battery endurance. It runs Default and EMA
// on the same workload, then projects the per-video battery cost and the
// continuous-streaming hours a 2015-class phone gets under each.
//
//	go run ./examples/battery-life
package main

import (
	"fmt"
	"log"

	"jointstream/internal/battery"
	"jointstream/internal/cell"
	"jointstream/internal/core"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

func main() {
	cellCfg := cell.PaperConfig()
	cellCfg.Capacity = 8000
	wl := workload.PaperDefaults(16)
	wl.SizeMin = 30 * units.Megabyte
	wl.SizeMax = 50 * units.Megabyte

	rep, err := core.Run(core.Config{
		Mode:     core.ModeEM,
		Beta:     1.5, // allow some extra stalling headroom for max savings
		Cell:     cellCfg,
		Workload: wl,
		Seed:     21,
	})
	if err != nil {
		log.Fatal(err)
	}

	pack := battery.Typical2015Phone()
	sessionSec := units.Seconds(rep.Reference.Slots) // whole-run horizon

	defCost, err := pack.Session(rep.Reference.MeanEnergyPerUser, sessionSec)
	if err != nil {
		log.Fatal(err)
	}
	emaCost, err := pack.Session(rep.Result.MeanEnergyPerUser, units.Seconds(rep.Result.Slots))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("device: %.0f mAh @ %.1f V (%.1f kJ), baseline draw %v\n",
		pack.CapacitymAh, pack.Voltage, float64(pack.TotalMJ())/1e6, pack.BaselineMW)
	fmt.Printf("\nper-video battery cost (radio + screen/decode):\n")
	fmt.Printf("  Default: %.2f%% of a charge (radio %v)\n", defCost.Percent, defCost.RadioMJ)
	fmt.Printf("  EMA:     %.2f%% of a charge (radio %v)\n", emaCost.Percent, emaCost.RadioMJ)

	extra, err := pack.ExtraSessions(defCost, emaCost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -> %.1f extra videos per charge\n", extra)

	// Continuous-streaming projection from average radio power.
	defPower := units.MW(float64(rep.Reference.PE)) // mJ per user-slot at tau=1s == mW
	emaPower := units.MW(float64(rep.Result.PE))
	defHours, err := pack.StreamingHours(defPower)
	if err != nil {
		log.Fatal(err)
	}
	emaHours, err := pack.StreamingHours(emaPower)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontinuous streaming on one charge:\n")
	fmt.Printf("  Default: %.1f h (avg radio power %v)\n", defHours, defPower)
	fmt.Printf("  EMA:     %.1f h (avg radio power %v)\n", emaHours, emaPower)
	fmt.Printf("\n(EMA stall cost: %v vs Default %v per user)\n",
		rep.Result.MeanRebufferPerUser, rep.Reference.MeanRebufferPerUser)
}
