// Quickstart: run the two-mode framework on a small multi-user scenario
// and print the achieved rebuffering/energy trade-off against the Default
// greedy strategy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"jointstream/internal/cell"
	"jointstream/internal/core"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

func main() {
	// A 10-user cell with ~35 MB videos keeps the demo under a second;
	// drop these overrides to simulate the paper's full 250-500 MB
	// workload.
	cellCfg := cell.PaperConfig()
	cellCfg.Capacity = 5000 // 5 MB/s shared downlink
	wl := workload.PaperDefaults(10)
	wl.SizeMin = 25 * units.Megabyte
	wl.SizeMax = 45 * units.Megabyte

	for _, mode := range []core.Mode{core.ModeRTM, core.ModeEM} {
		rep, err := core.Run(core.Config{
			Mode:     mode,
			Cell:     cellCfg,
			Workload: wl,
			Seed:     42,
		})
		if err != nil {
			log.Fatalf("run %v: %v", mode, err)
		}
		fmt.Printf("== %s mode (%s) ==\n", mode, rep.Result.Scheduler)
		switch mode {
		case core.ModeRTM:
			fmt.Printf("energy budget Phi=%v -> admission threshold %v\n", rep.Phi, rep.Threshold)
		case core.ModeEM:
			fmt.Printf("rebuffering bound Omega=%v -> Lyapunov V=%.3g\n", rep.Omega, rep.V)
		}
		fmt.Printf("%-18s rebuffer/user=%-8v energy/user=%v\n",
			"Default:", rep.Reference.MeanRebufferPerUser, rep.Reference.MeanEnergyPerUser)
		fmt.Printf("%-18s rebuffer/user=%-8v energy/user=%v\n",
			rep.Result.Scheduler+":", rep.Result.MeanRebufferPerUser, rep.Result.MeanEnergyPerUser)
		fmt.Printf("rebuffering %+.1f%%, energy %+.1f%% vs Default\n\n",
			-rep.RebufferReduction*100, -rep.EnergyReduction*100)
	}
}
