// Live-gateway example: run the Fig. 1 framework as an in-process
// pipeline (Data Receiver → Information Collector → Scheduler → Data
// Transmitter) with the EM-mode scheduler, three attached devices on
// different channels, and end-to-end payload verification.
//
//	go run ./examples/live-gateway
package main

import (
	"fmt"
	"log"

	"jointstream/internal/core"
	"jointstream/internal/gateway"
	"jointstream/internal/radio"
	"jointstream/internal/rng"
	"jointstream/internal/signal"
	"jointstream/internal/units"
)

func main() {
	// EM-mode scheduler with an explicit Lyapunov weight, embedded in a
	// live pipeline instead of the simulator.
	s, err := core.NewScheduler(core.Config{Mode: core.ModeEM, V: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	gw, err := gateway.New(gateway.Config{
		Tau:      1,
		Unit:     100,
		Capacity: 4000,
		Radio:    radio.Paper3G(),
		QueueCap: 20000,
	}, s)
	if err != nil {
		log.Fatal(err)
	}

	// Three devices: steady, fading, and bursty channels.
	src := rng.New(11)
	sine, err := signal.NewSine(signal.SineConfig{
		Bounds: signal.DefaultBounds, PeriodSlots: 60, NoiseStdDBm: 10,
	}, src)
	if err != nil {
		log.Fatal(err)
	}
	ge, err := signal.NewGilbertElliott(signal.GilbertElliottConfig{
		Bounds: signal.DefaultBounds, Good: -60, Bad: -100,
		PGoodToBad: 0.1, PBadToGood: 0.3, JitterStd: 5,
	}, src)
	if err != nil {
		log.Fatal(err)
	}
	traces := []signal.Trace{
		signal.Constant(-65, signal.DefaultBounds),
		sine,
		ge,
	}
	names := []string{"steady(-65dBm)", "sine-fading", "gilbert-elliott"}

	endpoints := make([]*gateway.LocalEndpoint, len(traces))
	for i, tr := range traces {
		ep, err := gateway.NewLocalEndpoint(tr, 400, true)
		if err != nil {
			log.Fatal(err)
		}
		srcData, err := gateway.NewPatternSource(3000) // 3 MB video each
		if err != nil {
			log.Fatal(err)
		}
		if _, err := gw.Attach(ep, srcData); err != nil {
			log.Fatal(err)
		}
		endpoints[i] = ep
	}

	for slot := 0; slot < 200 && !gw.AllDone(); slot++ {
		if _, err := gw.Step(); err != nil {
			log.Fatal(err)
		}
		for _, ep := range endpoints {
			ep.Advance()
		}
		if slot%10 == 9 {
			fmt.Printf("slot %3d:", slot+1)
			for i := range endpoints {
				st, err := gw.StatsFor(i)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %s %v/%v", names[i], st.SentKB, units.KB(3000))
			}
			fmt.Println()
		}
	}

	fmt.Println()
	for i, ep := range endpoints {
		payload := ep.Payload()
		if err := gateway.Verify(payload); err != nil {
			log.Fatalf("%s: corrupt payload: %v", names[i], err)
		}
		fmt.Printf("%-18s received %7d bytes, payload verified\n", names[i], len(payload))
	}
	fmt.Printf("gateway finished in %d slots\n", gw.Slot())
}
