// Multicell example: run the framework across a three-site deployment.
// Each base station is scheduled independently by its own EMA instance
// (the paper's gateway "manages the resources of each BS independently"),
// the cells are simulated concurrently, and the example compares the
// attachment policies: strongest-signal, round-robin and least-loaded.
//
//	go run ./examples/multicell
package main

import (
	"context"
	"fmt"
	"log"

	"jointstream/internal/cell"
	"jointstream/internal/deploy"
	"jointstream/internal/rng"
	"jointstream/internal/rrc"
	"jointstream/internal/sched"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

func main() {
	siteCell := cell.PaperConfig()
	siteCell.Capacity = 4000 // each site carries ~1/3 of the fleet demand

	cfg := deploy.Config{
		Sites: []deploy.Site{
			{Name: "center", Cell: siteCell, SignalOffset: 0, ShadowStd: 4},
			{Name: "east", Cell: siteCell, SignalOffset: -6, ShadowStd: 4},
			{Name: "west", Cell: siteCell, SignalOffset: -9, ShadowStd: 4},
		},
	}

	wlCfg := workload.PaperDefaults(18)
	wlCfg.SizeMin = 30 * units.Megabyte
	wlCfg.SizeMax = 60 * units.Megabyte

	newEMA := func() (sched.Scheduler, error) {
		return sched.NewEMA(sched.EMAConfig{V: 0.2, RRC: rrc.Paper3G()})
	}

	fmt.Println("policy            users/site      rebuffer(total)  energy(total)  handover-pressure")
	for _, policy := range []deploy.Policy{deploy.StrongestSignal, deploy.RoundRobin, deploy.LeastLoaded} {
		cfg.Policy = policy
		sessions, err := workload.Generate(wlCfg, rng.New(99))
		if err != nil {
			log.Fatal(err)
		}
		res, err := deploy.Run(context.Background(), cfg, sessions, newEMA)
		if err != nil {
			log.Fatal(err)
		}
		counts := make([]int, len(cfg.Sites))
		for _, pl := range res.Placements {
			counts[pl.Site]++
		}
		pressure := float64(res.MisassignedSlots) / float64(res.TotalSlots)
		fmt.Printf("%-16s  %-14s  %-15v  %-13v  %.1f%%\n",
			policy, fmt.Sprintf("%v", counts), res.TotalRebuffer(), res.TotalEnergy(), pressure*100)
	}
	fmt.Println("\nStrongest-signal piles users onto the best site (cheap bytes but")
	fmt.Println("contention); least-loaded spreads demand; handover pressure is the")
	fmt.Println("share of slots where another site was >=3 dB stronger.")
}
