// Rebuffer-SLA example: a video service has a playback-smoothness SLA and
// a device energy budget. It sweeps the RTM mode's α knob (Φ = α × Default
// energy) and reports, for each budget, the rebuffering RTMA achieves and
// the signal-strength admission threshold φ it derives from Eq. (12).
//
//	go run ./examples/rebuffer-sla
package main

import (
	"fmt"
	"log"

	"jointstream/internal/cell"
	"jointstream/internal/core"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

func main() {
	cellCfg := cell.PaperConfig()
	cellCfg.Capacity = 8000
	wl := workload.PaperDefaults(16)
	wl.SizeMin = 20 * units.Megabyte
	wl.SizeMax = 40 * units.Megabyte

	fmt.Println("alpha  Phi(mJ)  threshold  rebuffer/user  vs Default")
	for _, alpha := range []float64{0.8, 0.9, 1.0, 1.1, 1.2} {
		rep, err := core.Run(core.Config{
			Mode:     core.ModeRTM,
			Alpha:    alpha,
			Cell:     cellCfg,
			Workload: wl,
			Seed:     7,
		})
		if err != nil {
			log.Fatalf("alpha=%v: %v", alpha, err)
		}
		fmt.Printf("%-5.1f  %-7.0f  %-9v  %-13v  %+.1f%%\n",
			alpha, float64(rep.Phi), rep.Threshold,
			rep.Result.MeanRebufferPerUser,
			-rep.RebufferReduction*100)
	}
	fmt.Println("\nTighter budgets (smaller alpha) raise the admission threshold:")
	fmt.Println("weak-signal slots are skipped to save energy, at some stall cost.")
}
