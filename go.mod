module jointstream

go 1.22
