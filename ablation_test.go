package jointstream

import (
	"fmt"
	"testing"

	"jointstream/internal/cell"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// Ablation benchmarks for the design choices called out in DESIGN.md that
// the paper leaves unspecified: the channel-noise intensity, the sine fade
// period, the ON-OFF player watermarks, and the EStreamer burst size. Each
// runs a small scenario end to end so `-benchmem` also tracks allocation
// behaviour of the full simulation path.

// ablationWorkload builds a small deterministic scenario.
func ablationWorkload(b *testing.B, mutate func(*workload.Config)) []*workload.Session {
	b.Helper()
	cfg := workload.PaperDefaults(8)
	cfg.SizeMin = 20 * units.Megabyte
	cfg.SizeMax = 30 * units.Megabyte
	cfg.Signal.PeriodSlots = 120
	if mutate != nil {
		mutate(&cfg)
	}
	wl, err := workload.Generate(cfg, rng.New(17))
	if err != nil {
		b.Fatal(err)
	}
	return wl
}

func runAblation(b *testing.B, wl []*workload.Session, s sched.Scheduler) *cell.Result {
	b.Helper()
	cfg := cell.PaperConfig()
	cfg.Capacity = 5000
	cfg.MaxSlots = 1500
	sim, err := cell.New(cfg, wl, s)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationNoiseIntensity sweeps the WGN sigma of the paper's
// "30 dBm noise intensity", the parameter with the strongest influence on
// how often RTMA's admission threshold is crossed.
func BenchmarkAblationNoiseIntensity(b *testing.B) {
	for _, sigma := range []float64{0, 10, 30} {
		b.Run(fmt.Sprintf("sigma=%g", sigma), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wl := ablationWorkload(b, func(c *workload.Config) { c.Signal.NoiseStdDBm = sigma })
				res := runAblation(b, wl, sched.NewDefault())
				if res.Slots == 0 {
					b.Fatal("empty run")
				}
			}
		})
	}
}

// BenchmarkAblationFadePeriod sweeps the sine period (unpublished in the
// paper), which sets how long a weak-signal drought lasts.
func BenchmarkAblationFadePeriod(b *testing.B) {
	for _, period := range []int{60, 240, 600} {
		b.Run(fmt.Sprintf("period=%d", period), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wl := ablationWorkload(b, func(c *workload.Config) { c.Signal.PeriodSlots = period })
				em, err := sched.NewEMA(sched.EMAConfig{V: 0.2, RRC: cell.PaperConfig().RRC})
				if err != nil {
					b.Fatal(err)
				}
				res := runAblation(b, wl, em)
				if res.Slots == 0 {
					b.Fatal("empty run")
				}
			}
		})
	}
}

// BenchmarkAblationOnOffWatermarks sweeps the ON-OFF player's buffer
// hysteresis band, the main unknown in reproducing the [14] baseline.
func BenchmarkAblationOnOffWatermarks(b *testing.B) {
	for _, wm := range []struct{ low, high units.Seconds }{
		{5, 20}, {10, 40}, {20, 80},
	} {
		b.Run(fmt.Sprintf("low=%v,high=%v", float64(wm.low), float64(wm.high)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				oo, err := sched.NewOnOff(wm.low, wm.high)
				if err != nil {
					b.Fatal(err)
				}
				res := runAblation(b, ablationWorkload(b, nil), oo)
				if res.Slots == 0 {
					b.Fatal("empty run")
				}
			}
		})
	}
}

// BenchmarkAblationEStreamerBurst sweeps the EStreamer burst watermark,
// trading tail count against buffer bloat.
func BenchmarkAblationEStreamerBurst(b *testing.B) {
	for _, burst := range []units.Seconds{15, 30, 60} {
		b.Run(fmt.Sprintf("burst=%v", float64(burst)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				es, err := sched.NewEStreamer(burst, 5)
				if err != nil {
					b.Fatal(err)
				}
				res := runAblation(b, ablationWorkload(b, nil), es)
				if res.Slots == 0 {
					b.Fatal("empty run")
				}
			}
		})
	}
}
