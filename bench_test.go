// Package jointstream's top-level benchmarks regenerate every figure of
// the paper's evaluation (one benchmark per figure) plus micro-benchmarks
// of the two scheduling algorithms.
//
// By default the figure benchmarks run the miniature CI workload so that
// `go test -bench=.` completes in seconds. Set JOINTSTREAM_PAPER_SCALE=1
// to benchmark the full §VI workload (N up to 40, 250–500 MB videos);
// cmd/jstream-bench prints the corresponding figure tables.
package jointstream

import (
	"context"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"jointstream/internal/cell"
	"jointstream/internal/deploy"
	"jointstream/internal/experiments"
	"jointstream/internal/rng"
	"jointstream/internal/rrc"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// benchOptions picks the experiment scale.
func benchOptions() experiments.Options {
	if os.Getenv("JOINTSTREAM_PAPER_SCALE") != "" {
		return experiments.PaperOptions()
	}
	return experiments.QuickOptions()
}

// benchFigure runs one figure end to end per iteration and sanity-checks
// the output so a silently empty figure fails the benchmark.
func benchFigure(b *testing.B, f func(*experiments.Runner) (*experiments.Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiments.NewRunner(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		fig, err := f(r)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 {
			b.Fatalf("%s: empty figure", fig.ID)
		}
		for _, s := range fig.Series {
			if len(s.X) == 0 || len(s.X) != len(s.Y) {
				b.Fatalf("%s/%s: malformed series", fig.ID, s.Label)
			}
		}
	}
}

func BenchmarkFig02Fairness(b *testing.B) {
	benchFigure(b, (*experiments.Runner).Fig2)
}

func BenchmarkFig03RebufferCDF(b *testing.B) {
	benchFigure(b, (*experiments.Runner).Fig3)
}

func BenchmarkFig04aAlphaUsers(b *testing.B) {
	benchFigure(b, (*experiments.Runner).Fig4a)
}

func BenchmarkFig04bAlphaData(b *testing.B) {
	benchFigure(b, (*experiments.Runner).Fig4b)
}

func BenchmarkFig05aRebufferCompare(b *testing.B) {
	benchFigure(b, (*experiments.Runner).Fig5a)
}

func BenchmarkFig05bEnergyCompare(b *testing.B) {
	benchFigure(b, (*experiments.Runner).Fig5b)
}

func BenchmarkFig06FairnessEMA(b *testing.B) {
	benchFigure(b, (*experiments.Runner).Fig6)
}

func BenchmarkFig07PowerCDF(b *testing.B) {
	benchFigure(b, (*experiments.Runner).Fig7)
}

func BenchmarkFig08aBetaUsers(b *testing.B) {
	benchFigure(b, (*experiments.Runner).Fig8a)
}

func BenchmarkFig08bBetaData(b *testing.B) {
	benchFigure(b, (*experiments.Runner).Fig8b)
}

func BenchmarkFig09aEnergyCompare(b *testing.B) {
	benchFigure(b, (*experiments.Runner).Fig9a)
}

func BenchmarkFig09bRebufferCompare(b *testing.B) {
	benchFigure(b, (*experiments.Runner).Fig9b)
}

func BenchmarkFig10TradeoffPanel(b *testing.B) {
	benchFigure(b, (*experiments.Runner).Fig10)
}

// BenchmarkSweepPaperScale is the end-to-end number the perf gate
// tracks in ms/sweep: one full parallel figure sweep through the
// multi-arm batched Runner — workload cache, compiled link tables,
// lockstep RunArms groups and all. It honors JOINTSTREAM_PAPER_SCALE
// like the figure benchmarks (CI runs the quick scale; the recorded
// results/BENCH_sweep.json numbers come from the paper scale via
// jstream-bench -sweep). A sanity check on the figure count keeps a
// silently truncated sweep from benchmarking as a speedup.
func BenchmarkSweepPaperScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.NewRunner(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		figs, err := r.AllParallel(context.Background(), 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(figs) != 13 {
			b.Fatalf("got %d figures, want 13", len(figs))
		}
	}
	b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "ms/sweep")
}

// BenchmarkClaims regenerates the headline-claims table.
func BenchmarkClaims(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.NewRunner(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		claims, err := r.Claims()
		if err != nil {
			b.Fatal(err)
		}
		if len(claims) != 6 {
			b.Fatalf("got %d claims", len(claims))
		}
	}
}

// --- algorithm micro-benchmarks -------------------------------------

// benchSlot builds a representative 40-user slot.
func benchSlot(users, capacityUnits int) (*sched.Slot, []int) {
	src := rng.New(9)
	slot := &sched.Slot{
		Tau: 1, Unit: 100, CapacityUnits: capacityUnits,
		Users: make([]sched.User, users),
	}
	for i := range slot.Users {
		sig := units.DBm(src.Uniform(-110, -50))
		link := units.KBps(65.8*float64(sig) + 7567)
		slot.Users[i] = sched.User{
			Index: i, Active: true, Sig: sig, LinkRate: link,
			EnergyPerKB: units.MJ(-0.167 + 1560/float64(link)),
			Rate:        units.KBps(src.Uniform(300, 600)),
			RemainingKB: 1e9,
			MaxUnits:    int(float64(link) / 100),
		}
	}
	return slot, make([]int, users)
}

func BenchmarkRTMAAllocate40Users(b *testing.B) {
	rt, err := sched.NewRTMA(sched.RTMAConfig{
		Budget: 950, Radio: cell.PaperConfig().Radio, RRC: rrc.Paper3G(),
	})
	if err != nil {
		b.Fatal(err)
	}
	slot, alloc := benchSlot(40, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range alloc {
			alloc[j] = 0
		}
		rt.Allocate(slot, alloc)
	}
}

// BenchmarkEMAAllocate40Users measures the monotone-deque DP at the
// paper's capacity (⌊τS/δ⌋ = 205 units); BenchmarkEMAAllocateRef40Users
// is the paper-literal quadratic DP on the same slot, so the speedup is
// visible from one `-bench 'EMAAllocate'` run.
func BenchmarkEMAAllocate40Users(b *testing.B) {
	em, err := sched.NewEMA(sched.EMAConfig{V: 0.2, RRC: rrc.Paper3G()})
	if err != nil {
		b.Fatal(err)
	}
	slot, alloc := benchSlot(40, 205)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range alloc {
			alloc[j] = 0
		}
		em.Allocate(slot, alloc)
	}
}

func BenchmarkEMAAllocateRef40Users(b *testing.B) {
	em, err := sched.NewEMA(sched.EMAConfig{V: 0.2, RRC: rrc.Paper3G()})
	if err != nil {
		b.Fatal(err)
	}
	slot, alloc := benchSlot(40, 205)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range alloc {
			alloc[j] = 0
		}
		em.AllocateRef(slot, alloc)
	}
}

// BenchmarkSimulatorSlotThroughput measures raw simulator slots/second at
// N=20 with the Default scheduler.
func BenchmarkSimulatorSlotThroughput(b *testing.B) {
	cfg := cell.PaperConfig()
	cfg.MaxSlots = b.N
	cfg.RunFullHorizon = true
	wl, err := workload.Generate(workload.PaperDefaults(20), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	sim, err := cell.New(cfg, wl, sched.NewDefault())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := sim.Run(); err != nil {
		b.Fatal(err)
	}
}

// --- large-N tick benchmarks (sharded engine) ------------------------

// benchTickSessions caches workloads per user count so sub-benchmarks
// and reruns don't regenerate 100k sine traces; sessions are immutable
// demand descriptors, so sharing them across simulators is safe.
var benchTickSessions = map[int][]*workload.Session{}

// benchTickLinks caches compiled link tables per (users, slots) tier so
// the timed region is the pure tick path — the production sweep harness
// compiles one table per scenario and reuses it across scheduler runs,
// and the benchmark mirrors that shape.
var benchTickLinks = map[[2]int]*cell.LinkTable{}

func tickSessions(b *testing.B, users int) []*workload.Session {
	b.Helper()
	if wl, ok := benchTickSessions[users]; ok {
		return wl
	}
	wl, err := workload.Generate(workload.PaperDefaults(users), rng.New(42))
	if err != nil {
		b.Fatal(err)
	}
	benchTickSessions[users] = wl
	return wl
}

func tickLink(b *testing.B, cfg cell.Config, users int) *cell.LinkTable {
	b.Helper()
	key := [2]int{users, cfg.MaxSlots}
	if lt, ok := benchTickLinks[key]; ok {
		return lt
	}
	lt, err := cell.CompileLink(cfg, tickSessions(b, users))
	if err != nil {
		b.Fatal(err)
	}
	benchTickLinks[key] = lt
	return lt
}

// benchTick measures the tick path at cell scale N: paper-sized videos
// never complete within the horizon, so every slot pays the full
// prepare/schedule/commit cost over N live users. Workers=1 is the
// serial engine; Workers=0 lets the engine use every core. The extra
// "ns/slot" metric divides out the horizon so the N tiers compare
// directly despite their different MaxSlots.
func benchTick(b *testing.B, users, slots, workers int) {
	wl := tickSessions(b, users)
	cfg := cell.PaperConfig()
	cfg.MaxSlots = slots
	cfg.RunFullHorizon = true
	cfg.Workers = workers
	cfg.Link = tickLink(b, cfg, users)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := cell.New(cfg, wl, sched.NewDefault())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(slots), "ns/slot")
}

func BenchmarkTickN1k(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchTick(b, 1_000, 256, 1) })
	b.Run("sharded", func(b *testing.B) { benchTick(b, 1_000, 256, 0) })
}

func BenchmarkTickN10k(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchTick(b, 10_000, 64, 1) })
	b.Run("sharded", func(b *testing.B) { benchTick(b, 10_000, 64, 0) })
}

func BenchmarkTickN100k(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchTick(b, 100_000, 16, 1) })
	b.Run("sharded", func(b *testing.B) { benchTick(b, 100_000, 16, 0) })
}

// benchAllocLargeN measures one scheduler's Allocate at large N with the
// active list the engine would hand it (everyone active).
func benchAllocLargeN(b *testing.B, s sched.Scheduler, n int) {
	b.Helper()
	slot, alloc := benchSlot(n, 5*n)
	act := make([]int, n)
	for i := range act {
		act[i] = i
	}
	slot.ActiveList = act
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range alloc {
			alloc[j] = 0
		}
		s.Allocate(slot, alloc)
	}
}

func BenchmarkDefaultAllocate10kUsers(b *testing.B) {
	benchAllocLargeN(b, sched.NewDefault(), 10_000)
}

// BenchmarkRTMAAllocate10kUsers exercises the precomputed-key sort and
// the compacting water-filling rounds at two hundred fifty times the
// paper's N.
func BenchmarkRTMAAllocate10kUsers(b *testing.B) {
	rt, err := sched.NewRTMA(sched.RTMAConfig{
		Budget: 950, Radio: cell.PaperConfig().Radio, RRC: rrc.Paper3G(),
	})
	if err != nil {
		b.Fatal(err)
	}
	benchAllocLargeN(b, rt, 10_000)
}

// --- fleet benchmarks (streaming multi-cell runner) ------------------

// benchFleet runs the epoch-clocked streaming deployment: tiled link
// tables, stateless signal traces, per-cell serial engines under the
// site fan-out. The "ms/epoch" metric is what the perf gate tracks —
// wall time per lockstep barrier across the whole fleet.
func benchFleet(b *testing.B, users, cells, slots, tile int) {
	cfg := workload.PaperDefaults(users)
	cfg.StatelessSignal = true
	wl, err := workload.Generate(cfg, rng.New(42))
	if err != nil {
		b.Fatal(err)
	}
	dep := deploy.Config{Policy: deploy.RoundRobin, Stream: true, EpochSlots: 64}
	for i := 0; i < cells; i++ {
		c := cell.PaperConfig()
		c.MaxSlots = slots
		c.RunFullHorizon = true
		c.Workers = 1
		c.LinkTileSlots = tile
		dep.Sites = append(dep.Sites, deploy.Site{Name: "cell", Cell: c})
	}
	epochs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := deploy.Run(context.Background(), dep, wl, func() (sched.Scheduler, error) {
			return sched.NewDefault(), nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Fleet == nil || res.Fleet.Users != users {
			b.Fatalf("fleet run folded %d users, want %d", res.Fleet.Users, users)
		}
		epochs += res.Fleet.Epochs
	}
	b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(epochs), "ms/epoch")
}

// BenchmarkFleet measures the streaming fleet runner. The gated tier is
// small enough for CI; the big tiers reproduce results/BENCH_fleet.json
// territory and only run when JOINTSTREAM_FLEET_SCALE is set.
func BenchmarkFleet(b *testing.B) {
	b.Run("u50000_c16", func(b *testing.B) { benchFleet(b, 50_000, 16, 128, 32) })
	if os.Getenv("JOINTSTREAM_FLEET_SCALE") == "" {
		return
	}
	b.Run("u200000_c64", func(b *testing.B) { benchFleet(b, 200_000, 64, 256, 64) })
	b.Run("u1000000_c256", func(b *testing.B) { benchFleet(b, 1_000_000, 256, 512, 64) })
}

// --- churn benchmarks (open-system serving path) ---------------------

// benchChurn drives an unbounded open-system engine at steady per-slot
// churn — every slot departs the oldest session and admits a fresh one —
// across many tile-window rollovers. Per-slot timings are split into
// rollover slots (the first slot of each tile window, which used to pay
// a synchronous full users×window recompile inside the tick) and steady
// slots; with pipelined window compilation the rollover-x ratio of the
// two medians stays near 1 (the gate's acceptance bound is 2×). The
// ns/slot metric is what the benchstat perf gate tracks.
func benchChurn(b *testing.B, n, tile, workers int) {
	const tilesPerIter = 4
	slotsPerIter := tilesPerIter * tile
	cfg := cell.PaperConfig()
	cfg.RunFullHorizon = true
	cfg.Workers = workers
	src := rng.New(7)
	mk := func(id int) *workload.Session {
		return &workload.Session{
			ID:       id,
			Size:     1 << 30, // never completes; churn is depart-driven
			BaseRate: units.KBps(src.Uniform(300, 600)),
			Signal:   signal.Constant(units.DBm(src.Uniform(-95, -55)), signal.DefaultBounds),
		}
	}
	initial := make([]*workload.Session, n)
	for i := range initial {
		initial[i] = mk(i)
	}
	o, err := cell.NewOpen(cell.OpenConfig{
		Cell: cfg, Unbounded: true, MaxSessions: n,
		TileSlots: tile, WindowSlots: 2 * tile, Windows: 2,
	}, initial, sched.NewDefault())
	if err != nil {
		b.Fatal(err)
	}
	defer o.Stop()
	if err := o.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	type live struct {
		idx int
		ser uint64
	}
	fifo := make([]live, 0, n+1)
	for i := 0; i < n; i++ {
		ser, ok := o.Serial(i)
		if !ok {
			b.Fatalf("no serial for initial session %d", i)
		}
		fifo = append(fifo, live{i, ser})
	}
	tmpl := mk(0)
	slot := 0
	var roll, steady []float64
	advance := func(record bool) {
		for k := 0; k < slotsPerIter; k++ {
			old := fifo[0]
			fifo = fifo[:copy(fifo, fifo[1:])]
			if ok, err := o.DepartSerial(old.idx, old.ser); err != nil || !ok {
				b.Fatalf("depart idx=%d ser=%d: ok=%v err=%v", old.idx, old.ser, ok, err)
			}
			idx, err := o.Admit(tmpl)
			if err != nil {
				b.Fatal(err)
			}
			ser, _ := o.Serial(idx)
			fifo = append(fifo, live{idx, ser})
			start := time.Now()
			if _, err := o.AdvanceTo(slot + 1); err != nil {
				b.Fatal(err)
			}
			d := float64(time.Since(start).Nanoseconds())
			if record {
				if slot%tile == 0 {
					roll = append(roll, d)
				} else {
					steady = append(steady, d)
				}
			}
			slot++
		}
	}
	advance(false) // warm the tile pipeline and the session pool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		advance(true)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*slotsPerIter), "ns/slot")
	b.ReportMetric(medianOf(roll)/medianOf(steady), "rollover-x")
}

// medianOf returns the median of xs without mutating it.
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// BenchmarkChurn is the open-system counterpart of BenchmarkTickN: the
// serial tier sits under the engine's small-N serial cutoff, the sharded
// tier exercises the parallel tile fill and shard barriers under churn.
func BenchmarkChurn(b *testing.B) {
	b.Run("n2000_t32_serial", func(b *testing.B) { benchChurn(b, 2_000, 32, 1) })
	b.Run("n10000_t32_sharded", func(b *testing.B) { benchChurn(b, 10_000, 32, 0) })
}

// --- ablation benches (DESIGN.md, Design choices) --------------------

// BenchmarkAblationUnitSize sweeps the data-unit size δ, the main knob of
// the EMA DP's state space.
func BenchmarkAblationUnitSize(b *testing.B) {
	for _, unit := range []units.KB{50, 100, 200, 400} {
		b.Run(unit.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := cell.PaperConfig()
				cfg.Unit = unit
				cfg.MaxSlots = 400
				cfg.RunFullHorizon = true
				wl, err := workload.Generate(workload.PaperDefaults(10), rng.New(3))
				if err != nil {
					b.Fatal(err)
				}
				for _, s := range wl {
					s.Size = 50 * units.Megabyte
				}
				em, err := sched.NewEMA(sched.EMAConfig{V: 0.2, RRC: cfg.RRC})
				if err != nil {
					b.Fatal(err)
				}
				sim, err := cell.New(cfg, wl, em)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationVSweep exercises the Lyapunov V trade-off directly.
func BenchmarkAblationVSweep(b *testing.B) {
	for _, v := range []float64{0.01, 0.1, 1} {
		b.Run(fmt.Sprintf("V=%g", v), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := cell.PaperConfig()
				cfg.MaxSlots = 400
				wl, err := workload.Generate(workload.PaperDefaults(10), rng.New(3))
				if err != nil {
					b.Fatal(err)
				}
				for _, s := range wl {
					s.Size = 50 * units.Megabyte
				}
				em, err := sched.NewEMA(sched.EMAConfig{V: v, RRC: cfg.RRC})
				if err != nil {
					b.Fatal(err)
				}
				sim, err := cell.New(cfg, wl, em)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
