// Package deploy runs the paper's framework across a multi-cell
// deployment. The gateway "works between the base station and Internet to
// manage the resources of each BS independently" (§III-A): each cell has
// its own capacity, scheduler instance and slotted simulation, and the
// cells run concurrently on the worker pool. The package adds what a
// deployment needs on top of the single-cell simulator: per-(user, site)
// signal derivation, user-to-cell attachment policies, and aggregation of
// per-cell results into fleet-wide metrics.
//
// Attachment is decided once per session at admission (the paper's model;
// mid-session handover is out of scope and surfaced instead as the
// MisassignedSlots diagnostic — slots in which a user's strongest site
// differed from its serving site).
package deploy

import (
	"context"
	"fmt"

	"jointstream/internal/cell"
	"jointstream/internal/pool"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// Site is one base station of the deployment.
type Site struct {
	// Name labels the site in results.
	Name string
	// Cell is the site's simulator configuration (capacity may differ
	// per site; radio/RRC models are usually shared).
	Cell cell.Config
	// SignalOffset shifts every user's base signal trace toward this
	// site, modeling the path-loss difference of its location.
	SignalOffset units.DBm
	// ShadowStd adds independent per-site log-normal shadowing (dB) on
	// top of the shared base trace, decorrelating the sites the way
	// distinct propagation paths do. Zero disables it.
	ShadowStd float64
}

// Policy selects how sessions are attached to sites.
type Policy int

// Attachment policies.
const (
	// StrongestSignal attaches each user to the site with the best mean
	// signal over the assessment window — the standard cell-selection
	// rule.
	StrongestSignal Policy = iota
	// RoundRobin attaches users to sites in order, ignoring radio state.
	RoundRobin
	// LeastLoaded attaches each user to the site with the least total
	// attached demand (sum of required rates) so far, breaking ties by
	// site order.
	LeastLoaded
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case StrongestSignal:
		return "strongest-signal"
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes a deployment run.
type Config struct {
	Sites  []Site
	Policy Policy
	// AssessSlots is the signal-averaging window used by StrongestSignal
	// (default 10).
	AssessSlots int
	// Workers bounds the number of concurrently simulated cells
	// (0 = GOMAXPROCS).
	Workers int
	// Outages schedules site-level outages: each window zeroes the named
	// site's serving capacity for slots [From, To). The site's sessions
	// stay attached and resume when the window closes; Result.
	// DegradedSlots aggregates how many slots the fleet spent degraded.
	Outages []SiteOutage
}

// SiteOutage is one site-scoped capacity-zero window over [From, To).
type SiteOutage struct {
	// Site indexes Config.Sites.
	Site     int
	From, To int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Sites) == 0 {
		return fmt.Errorf("deploy: no sites")
	}
	for i, s := range c.Sites {
		if err := s.Cell.Validate(); err != nil {
			return fmt.Errorf("deploy: site %d (%s): %w", i, s.Name, err)
		}
	}
	switch c.Policy {
	case StrongestSignal, RoundRobin, LeastLoaded:
	default:
		return fmt.Errorf("deploy: unknown policy %d", int(c.Policy))
	}
	if c.AssessSlots < 0 {
		return fmt.Errorf("deploy: negative assessment window %d", c.AssessSlots)
	}
	for i, o := range c.Outages {
		if o.Site < 0 || o.Site >= len(c.Sites) {
			return fmt.Errorf("deploy: outage %d names unknown site %d", i, o.Site)
		}
		if o.From < 0 || o.To < o.From {
			return fmt.Errorf("deploy: outage %d has invalid window [%d, %d)", i, o.From, o.To)
		}
	}
	return nil
}

// Placement records where one session was attached.
type Placement struct {
	User int
	Site int
}

// Result aggregates a deployment run.
type Result struct {
	// PerSite holds each cell's simulation result; entries are nil for
	// sites that received no users.
	PerSite []*cell.Result
	// Placements maps each input session to its serving site.
	Placements []Placement
	// MisassignedSlots counts (user, slot) pairs in which a different
	// site's signal was ≥ HandoverMarginDB stronger than the serving
	// site's — an upper bound on the handovers a mobility-aware
	// deployment would perform.
	MisassignedSlots int
	// TotalSlots is Σ per-user simulated slots, the denominator for
	// MisassignedSlots.
	TotalSlots int
}

// HandoverMarginDB is the hysteresis margin used for the misassignment
// diagnostic, matching typical A3-event offsets.
const HandoverMarginDB = 3

// TotalEnergy sums energy across sites (mJ).
func (r *Result) TotalEnergy() units.MJ {
	var sum units.MJ
	for _, res := range r.PerSite {
		if res != nil {
			sum += res.TotalEnergy()
		}
	}
	return sum
}

// TotalRebuffer sums stall time across sites.
func (r *Result) TotalRebuffer() units.Seconds {
	var sum units.Seconds
	for _, res := range r.PerSite {
		if res != nil {
			sum += res.TotalRebuffer()
		}
	}
	return sum
}

// Users counts sessions across sites.
func (r *Result) Users() int { return len(r.Placements) }

// DegradedSlots sums the slots every site spent inside an outage window.
func (r *Result) DegradedSlots() int {
	sum := 0
	for _, res := range r.PerSite {
		if res != nil {
			sum += res.DegradedSlots
		}
	}
	return sum
}

// offsetTrace shifts a base trace by a fixed dBm offset plus optional
// independent per-slot shadowing, clamped to the physical bounds. The
// shadowing is a pure function of (seed, slot), so the trace stays
// repeatable in any query order.
type offsetTrace struct {
	base      signal.Trace
	offset    units.DBm
	shadowStd float64
	seed      uint64
	bounds    signal.Bounds
}

func (t offsetTrace) At(n int) units.DBm {
	v := float64(t.base.At(n) + t.offset)
	if t.shadowStd > 0 {
		// Derive a deterministic standard normal for this (seed, slot).
		v += t.shadowStd * rng.New(t.seed^(uint64(n)*0x9E3779B97F4A7C15)).Norm()
	}
	if v < float64(t.bounds.Min) {
		return t.bounds.Min
	}
	if v > float64(t.bounds.Max) {
		return t.bounds.Max
	}
	return units.DBm(v)
}

// SiteTrace returns the session's signal trace toward the given site.
// siteIdx decorrelates the per-site shadowing across sites and users.
func SiteTrace(s *workload.Session, site Site, siteIdx int) signal.Trace {
	return offsetTrace{
		base:      s.Signal,
		offset:    site.SignalOffset,
		shadowStd: site.ShadowStd,
		seed:      uint64(s.ID+1)*0xD1B54A32D192ED03 + uint64(siteIdx+1)*0x2545F4914F6CDD1D,
		bounds:    signal.DefaultBounds,
	}
}

// Run attaches the sessions to sites under the configured policy and
// simulates every cell concurrently. newSched must return a fresh
// scheduler per call (one per site).
func Run(ctx context.Context, cfg Config, sessions []*workload.Session, newSched func() (sched.Scheduler, error)) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sessions) == 0 {
		return nil, fmt.Errorf("deploy: no sessions")
	}
	if newSched == nil {
		return nil, fmt.Errorf("deploy: nil scheduler factory")
	}
	assess := cfg.AssessSlots
	if assess == 0 {
		assess = 10
	}

	placements := assign(cfg, sessions, assess)

	// Group sessions per site, cloning with dense IDs and site-shifted
	// signal traces.
	perSite := make([][]*workload.Session, len(cfg.Sites))
	backRef := make([][]int, len(cfg.Sites)) // site-local index -> global user
	for _, pl := range placements {
		s := sessions[pl.User]
		clone := *s
		clone.ID = len(perSite[pl.Site])
		clone.Signal = SiteTrace(s, cfg.Sites[pl.Site], pl.Site)
		perSite[pl.Site] = append(perSite[pl.Site], &clone)
		backRef[pl.Site] = append(backRef[pl.Site], pl.User)
	}

	type job struct {
		site int
	}
	jobs := make([]job, 0, len(cfg.Sites))
	for i := range cfg.Sites {
		jobs = append(jobs, job{site: i})
	}
	results, err := pool.Map(ctx, cfg.Workers, jobs, func(ctx context.Context, j job) (*cell.Result, error) {
		if len(perSite[j.site]) == 0 {
			return nil, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s, err := newSched()
		if err != nil {
			return nil, err
		}
		cellCfg := cfg.Sites[j.site].Cell
		// Map this site's deploy-level outage windows onto the cell config
		// (appending to a copy: the caller's per-site config and any
		// windows it already carries stay untouched).
		for _, o := range cfg.Outages {
			if o.Site == j.site {
				cellCfg.Outages = append(cellCfg.Outages[:len(cellCfg.Outages):len(cellCfg.Outages)],
					cell.Outage{From: o.From, To: o.To})
			}
		}
		sim, err := cell.New(cellCfg, perSite[j.site], s)
		if err != nil {
			return nil, fmt.Errorf("site %d (%s): %w", j.site, cfg.Sites[j.site].Name, err)
		}
		return sim.RunCtx(ctx)
	})
	if err != nil {
		return nil, err
	}

	res := &Result{PerSite: results, Placements: placements}
	res.MisassignedSlots, res.TotalSlots = misassignment(cfg, sessions, placements, results, backRef)
	return res, nil
}

// assign applies the attachment policy.
func assign(cfg Config, sessions []*workload.Session, assess int) []Placement {
	placements := make([]Placement, len(sessions))
	demand := make([]units.KBps, len(cfg.Sites))
	for ui, s := range sessions {
		site := 0
		switch cfg.Policy {
		case RoundRobin:
			site = ui % len(cfg.Sites)
		case LeastLoaded:
			for si := 1; si < len(cfg.Sites); si++ {
				if demand[si] < demand[site] {
					site = si
				}
			}
		case StrongestSignal:
			best := meanSignal(SiteTrace(s, cfg.Sites[0], 0), s.StartSlot, assess)
			for si := 1; si < len(cfg.Sites); si++ {
				m := meanSignal(SiteTrace(s, cfg.Sites[si], si), s.StartSlot, assess)
				if m > best {
					best, site = m, si
				}
			}
		}
		demand[site] += s.BaseRate
		placements[ui] = Placement{User: ui, Site: site}
	}
	return placements
}

func meanSignal(tr signal.Trace, start, window int) float64 {
	var sum float64
	for n := start; n < start+window; n++ {
		sum += float64(tr.At(n))
	}
	return sum / float64(window)
}

// misassignment counts slots where some other site beat the serving site
// by the handover margin.
func misassignment(cfg Config, sessions []*workload.Session, placements []Placement, results []*cell.Result, backRef [][]int) (int, int) {
	mis, total := 0, 0
	for si, res := range results {
		if res == nil {
			continue
		}
		for localIdx, globalID := range backRef[si] {
			s := sessions[globalID]
			_ = localIdx
			serving := SiteTrace(s, cfg.Sites[si], si)
			for n := s.StartSlot; n < res.Slots; n++ {
				total++
				sv := float64(serving.At(n))
				for oi := range cfg.Sites {
					if oi == si {
						continue
					}
					if float64(SiteTrace(s, cfg.Sites[oi], oi).At(n)) >= sv+HandoverMarginDB {
						mis++
						break
					}
				}
			}
		}
	}
	return mis, total
}
