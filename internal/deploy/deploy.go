// Package deploy runs the paper's framework across a multi-cell
// deployment. The gateway "works between the base station and Internet to
// manage the resources of each BS independently" (§III-A): each cell has
// its own capacity, scheduler instance and slotted simulation, and the
// cells run concurrently on the worker pool. The package adds what a
// deployment needs on top of the single-cell simulator: per-(user, site)
// signal derivation, user-to-cell attachment policies, and aggregation of
// per-cell results into fleet-wide metrics.
//
// Attachment is decided once per session at admission (the paper's model;
// mid-session handover is out of scope and surfaced instead as the
// MisassignedSlots diagnostic — slots in which a user's strongest site
// differed from its serving site).
package deploy

import (
	"context"
	"fmt"
	"time"

	"jointstream/internal/cell"
	"jointstream/internal/metrics"
	"jointstream/internal/pool"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// Site is one base station of the deployment.
type Site struct {
	// Name labels the site in results.
	Name string
	// Cell is the site's simulator configuration (capacity may differ
	// per site; radio/RRC models are usually shared).
	Cell cell.Config
	// SignalOffset shifts every user's base signal trace toward this
	// site, modeling the path-loss difference of its location.
	SignalOffset units.DBm
	// ShadowStd adds independent per-site log-normal shadowing (dB) on
	// top of the shared base trace, decorrelating the sites the way
	// distinct propagation paths do. Zero disables it.
	ShadowStd float64
}

// Policy selects how sessions are attached to sites.
type Policy int

// Attachment policies.
const (
	// StrongestSignal attaches each user to the site with the best mean
	// signal over the assessment window — the standard cell-selection
	// rule.
	StrongestSignal Policy = iota
	// RoundRobin attaches users to sites in order, ignoring radio state.
	RoundRobin
	// LeastLoaded attaches each user to the site with the least total
	// attached demand (sum of required rates) so far, breaking ties by
	// site order.
	LeastLoaded
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case StrongestSignal:
		return "strongest-signal"
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes a deployment run.
type Config struct {
	Sites  []Site
	Policy Policy
	// AssessSlots is the signal-averaging window used by StrongestSignal
	// (default 10).
	AssessSlots int
	// Workers bounds the number of concurrently simulated cells
	// (0 = GOMAXPROCS).
	Workers int
	// Outages schedules site-level outages: each window zeroes the named
	// site's serving capacity for slots [From, To). The site's sessions
	// stay attached and resume when the window closes; Result.
	// DegradedSlots aggregates how many slots the fleet spent degraded.
	Outages []SiteOutage
	// Stream selects the epoch-clocked streaming runner: cells advance in
	// lockstep EpochSlots-sized batches and each finished cell's result is
	// folded into Result.Fleet and freed immediately, so the resident
	// footprint is O(active cells) rather than O(all cells' results). The
	// folded totals are byte-identical to the retained mode's accessors on
	// every overlapping metric (the fleet tests assert this with ==); what
	// streaming gives up is the per-site Result slice and the
	// MisassignedSlots diagnostic, whose O(users × slots × sites) signal
	// replay would dwarf the simulation itself at fleet scale.
	Stream bool
	// EpochSlots is the streaming runner's lockstep batch size (0 =
	// DefaultEpochSlots). Smaller epochs tighten the progress callback
	// cadence; results are byte-identical for any value (the stepped
	// engine contract) — only scheduling granularity changes.
	EpochSlots int
	// OnEpoch, when set, is called serially on the caller's goroutine
	// after every streaming epoch barrier — the hook the fleet benchmark
	// uses to sample wall time and heap high-water per epoch.
	OnEpoch func(EpochInfo)
	// EpochTimeout arms the epoch watchdog: a streaming (or open-fleet)
	// epoch that has not reached its barrier within this wall-clock bound
	// aborts the run with a typed *EpochStalledError instead of hanging
	// forever on a wedged scheduler. The run's context is cancelled so
	// cooperative workers exit; a worker stuck inside a non-cooperative
	// call is abandoned. Zero disables the watchdog.
	EpochTimeout time.Duration
}

// DefaultEpochSlots is the streaming runner's batch size when
// Config.EpochSlots is zero.
const DefaultEpochSlots = 256

// EpochInfo describes one completed streaming epoch.
type EpochInfo struct {
	// Epoch is the zero-based epoch index.
	Epoch int
	// UptoSlot is the exclusive slot bound every active cell reached.
	UptoSlot int
	// ActiveSites counts cells still running after this epoch.
	ActiveSites int
	// CompletedSites counts cells finished and folded so far.
	CompletedSites int
}

// SiteOutage is one site-scoped capacity-zero window over [From, To).
type SiteOutage struct {
	// Site indexes Config.Sites.
	Site     int
	From, To int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Sites) == 0 {
		return fmt.Errorf("deploy: no sites")
	}
	for i, s := range c.Sites {
		if err := s.Cell.Validate(); err != nil {
			return fmt.Errorf("deploy: site %d (%s): %w", i, s.Name, err)
		}
	}
	switch c.Policy {
	case StrongestSignal, RoundRobin, LeastLoaded:
	default:
		return fmt.Errorf("deploy: unknown policy %d", int(c.Policy))
	}
	if c.AssessSlots < 0 {
		return fmt.Errorf("deploy: negative assessment window %d", c.AssessSlots)
	}
	for i, o := range c.Outages {
		if o.Site < 0 || o.Site >= len(c.Sites) {
			return fmt.Errorf("deploy: outage %d names unknown site %d", i, o.Site)
		}
		if o.From < 0 || o.To < o.From {
			return fmt.Errorf("deploy: outage %d has invalid window [%d, %d)", i, o.From, o.To)
		}
	}
	if c.EpochSlots < 0 {
		return fmt.Errorf("deploy: negative epoch size %d", c.EpochSlots)
	}
	if c.EpochTimeout < 0 {
		return fmt.Errorf("deploy: negative epoch timeout %v", c.EpochTimeout)
	}
	return nil
}

// EpochStalledError reports an epoch that missed the watchdog deadline.
type EpochStalledError struct {
	// Epoch is the zero-based index of the stalled epoch; UptoSlot the
	// barrier it failed to reach.
	Epoch, UptoSlot int
	// Timeout is the configured bound it exceeded.
	Timeout time.Duration
}

func (e *EpochStalledError) Error() string {
	return fmt.Sprintf("deploy: epoch %d stalled: barrier %d not reached within %v", e.Epoch, e.UptoSlot, e.Timeout)
}

// watchEpoch runs one epoch's advance under the watchdog. With no
// timeout it degenerates to a plain call. On a stall it cancels the
// run's context — releasing every worker that checks it — and returns
// the typed error immediately, abandoning any wedged worker rather than
// joining it.
func watchEpoch(cancel context.CancelFunc, timeout time.Duration, epoch, upto int, run func() error) error {
	if timeout <= 0 {
		return run()
	}
	done := make(chan error, 1)
	go func() { done <- run() }()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		cancel()
		return &EpochStalledError{Epoch: epoch, UptoSlot: upto, Timeout: timeout}
	}
}

// Placement records where one session was attached.
type Placement struct {
	User int
	Site int
}

// Result aggregates a deployment run.
type Result struct {
	// PerSite holds each cell's simulation result; entries are nil for
	// sites that received no users. Nil entirely in streaming mode, where
	// per-cell results are folded into Fleet and freed as cells finish.
	PerSite []*cell.Result
	// Placements maps each input session to its serving site.
	Placements []Placement
	// MisassignedSlots counts (user, slot) pairs in which a different
	// site's signal was ≥ HandoverMarginDB stronger than the serving
	// site's — an upper bound on the handovers a mobility-aware
	// deployment would perform. Always 0 in streaming mode: the
	// diagnostic replays every user's signal toward every site and its
	// O(users × slots × sites) cost is the antithesis of a bounded-memory
	// fleet pass.
	MisassignedSlots int
	// TotalSlots is Σ per-user simulated slots, the denominator for
	// MisassignedSlots.
	TotalSlots int
	// Fleet holds the streaming runner's folded aggregates; nil in
	// retained mode.
	Fleet *FleetMetrics
}

// FleetMetrics is the streaming runner's windowed aggregation of every
// per-cell result. Scalar totals are folded per site and then merged in
// site index order — the same float-addition sequence the retained
// Result accessors perform over PerSite — so the two modes agree
// bit-for-bit, not just approximately.
type FleetMetrics struct {
	// Sites and EmptySites count configured cells and cells that received
	// no users.
	Sites, EmptySites int
	// Users counts simulated sessions across the fleet.
	Users int
	// Slots is the fleet horizon: the largest per-cell slot count.
	Slots int
	// Epochs counts streaming epochs executed.
	Epochs int
	// DegradedSlots sums the slots each cell spent inside an outage
	// window; ClampEvents sums scheduler outputs clamped by Eq. (1)/(2).
	DegradedSlots, ClampEvents int
	// Energy and TailEnergy are fleet-total energies (mJ); Rebuffer is
	// the fleet-total stall time.
	Energy, TailEnergy units.MJ
	Rebuffer           units.Seconds
	// PerEpoch holds fleet-wide per-epoch energy/rebuffer totals, the
	// streaming replacement for retaining every cell's PerSlot series.
	PerEpoch []EpochTotals
	// RebufferPerUser and EnergyPerUser sketch the per-user total
	// distributions (seconds and mJ): fixed-memory streaming histograms
	// whose quantiles are within half a bin width of the exact sample
	// quantiles (see metrics.StreamingHist).
	RebufferPerUser *metrics.StreamingHist
	EnergyPerUser   *metrics.StreamingHist
}

// EpochTotals aggregates one streaming epoch across the fleet.
type EpochTotals struct {
	Energy   units.MJ
	Rebuffer units.Seconds
}

// HandoverMarginDB is the hysteresis margin used for the misassignment
// diagnostic, matching typical A3-event offsets.
const HandoverMarginDB = 3

// TotalEnergy sums energy across sites (mJ). Streaming results serve the
// folded fleet total, which matches the retained sum bit-for-bit.
func (r *Result) TotalEnergy() units.MJ {
	if r.Fleet != nil {
		return r.Fleet.Energy
	}
	var sum units.MJ
	for _, res := range r.PerSite {
		if res != nil {
			sum += res.TotalEnergy()
		}
	}
	return sum
}

// TotalRebuffer sums stall time across sites.
func (r *Result) TotalRebuffer() units.Seconds {
	if r.Fleet != nil {
		return r.Fleet.Rebuffer
	}
	var sum units.Seconds
	for _, res := range r.PerSite {
		if res != nil {
			sum += res.TotalRebuffer()
		}
	}
	return sum
}

// Users counts sessions across sites.
func (r *Result) Users() int { return len(r.Placements) }

// DegradedSlots sums the slots every site spent inside an outage window.
func (r *Result) DegradedSlots() int {
	if r.Fleet != nil {
		return r.Fleet.DegradedSlots
	}
	sum := 0
	for _, res := range r.PerSite {
		if res != nil {
			sum += res.DegradedSlots
		}
	}
	return sum
}

// offsetTrace shifts a base trace by a fixed dBm offset plus optional
// independent per-slot shadowing, clamped to the physical bounds. The
// shadowing is a pure function of (seed, slot), so the trace stays
// repeatable in any query order.
type offsetTrace struct {
	base      signal.Trace
	offset    units.DBm
	shadowStd float64
	seed      uint64
	bounds    signal.Bounds
}

func (t offsetTrace) At(n int) units.DBm {
	v := float64(t.base.At(n) + t.offset)
	if t.shadowStd > 0 {
		// Derive a deterministic standard normal for this (seed, slot).
		v += t.shadowStd * rng.New(t.seed^(uint64(n)*0x9E3779B97F4A7C15)).Norm()
	}
	if v < float64(t.bounds.Min) {
		return t.bounds.Min
	}
	if v > float64(t.bounds.Max) {
		return t.bounds.Max
	}
	return units.DBm(v)
}

// SiteTrace returns the session's signal trace toward the given site.
// siteIdx decorrelates the per-site shadowing across sites and users.
func SiteTrace(s *workload.Session, site Site, siteIdx int) signal.Trace {
	return offsetTrace{
		base:      s.Signal,
		offset:    site.SignalOffset,
		shadowStd: site.ShadowStd,
		seed:      uint64(s.ID+1)*0xD1B54A32D192ED03 + uint64(siteIdx+1)*0x2545F4914F6CDD1D,
		bounds:    signal.DefaultBounds,
	}
}

// Run attaches the sessions to sites under the configured policy and
// simulates every cell concurrently. newSched must return a fresh
// scheduler per call (one per site).
func Run(ctx context.Context, cfg Config, sessions []*workload.Session, newSched func() (sched.Scheduler, error)) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sessions) == 0 {
		return nil, fmt.Errorf("deploy: no sessions")
	}
	if newSched == nil {
		return nil, fmt.Errorf("deploy: nil scheduler factory")
	}
	assess := cfg.AssessSlots
	if assess == 0 {
		assess = 10
	}

	placements := assign(cfg, sessions, assess)

	// Group sessions per site, cloning with dense IDs and site-shifted
	// signal traces.
	perSite := make([][]*workload.Session, len(cfg.Sites))
	backRef := make([][]int, len(cfg.Sites)) // site-local index -> global user
	for _, pl := range placements {
		s := sessions[pl.User]
		clone := *s
		clone.ID = len(perSite[pl.Site])
		clone.Signal = SiteTrace(s, cfg.Sites[pl.Site], pl.Site)
		perSite[pl.Site] = append(perSite[pl.Site], &clone)
		backRef[pl.Site] = append(backRef[pl.Site], pl.User)
	}

	if cfg.Stream {
		fleet, err := runStream(ctx, cfg, perSite, newSched)
		if err != nil {
			return nil, err
		}
		return &Result{Placements: placements, Fleet: fleet}, nil
	}

	type job struct {
		site int
	}
	jobs := make([]job, 0, len(cfg.Sites))
	for i := range cfg.Sites {
		jobs = append(jobs, job{site: i})
	}
	results, err := pool.Map(ctx, cfg.Workers, jobs, func(ctx context.Context, j job) (*cell.Result, error) {
		if len(perSite[j.site]) == 0 {
			return nil, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sim, err := newSiteSim(cfg, j.site, perSite[j.site], newSched)
		if err != nil {
			return nil, err
		}
		return sim.RunCtx(ctx)
	})
	if err != nil {
		return nil, err
	}

	res := &Result{PerSite: results, Placements: placements}
	res.MisassignedSlots, res.TotalSlots = misassignment(cfg, sessions, placements, results, backRef)
	return res, nil
}

// newSiteSim builds one site's simulator: fresh scheduler, the site's
// cell config with this site's deploy-level outage windows appended to a
// copy (the caller's per-site config and any windows it already carries
// stay untouched).
func newSiteSim(cfg Config, site int, sessions []*workload.Session, newSched func() (sched.Scheduler, error)) (*cell.Simulator, error) {
	s, err := newSched()
	if err != nil {
		return nil, err
	}
	cellCfg := cfg.Sites[site].Cell
	for _, o := range cfg.Outages {
		if o.Site == site {
			cellCfg.Outages = append(cellCfg.Outages[:len(cellCfg.Outages):len(cellCfg.Outages)],
				cell.Outage{From: o.From, To: o.To})
		}
	}
	sim, err := cell.New(cellCfg, sessions, s)
	if err != nil {
		return nil, fmt.Errorf("site %d (%s): %w", site, cfg.Sites[site].Name, err)
	}
	return sim, nil
}

// Streaming-histogram shapes for the per-user distributions: 128 bins
// with sub-second / sub-mJ initial resolution; auto-widening covers any
// scale while keeping the quantile error at half the final bin width.
const (
	fleetHistBins          = 128
	fleetRebufferBinSec    = 0.25
	fleetEnergyBinMJ       = 1.0
	fleetEpochTotalsBudget = 1 << 16 // PerEpoch entries before truncation
)

// siteAgg is the per-site fold of one finished cell result. Scalars are
// kept per site and merged in site index order afterwards so the final
// totals reproduce the retained accessors' float-addition sequence
// exactly.
type siteAgg struct {
	users         int
	slots         int
	energy        units.MJ
	tailEnergy    units.MJ
	rebuffer      units.Seconds
	degradedSlots int
	clampEvents   int
	perEpoch      []EpochTotals
	// Per-site histograms, merged fleet-wide in site index order after
	// the run: folding straight into shared fleet histograms would order
	// the float accumulation by *finish epoch*, making the sketch's sum
	// depend on EpochSlots; per-site sketches cost O(sites × bins) and
	// keep every fleet metric byte-identical across epoch sizes too.
	rebufHist  *metrics.StreamingHist
	energyHist *metrics.StreamingHist
}

// runStream is the epoch-clocked fleet runner: every populated site gets
// a stepped simulator, all active sites advance to the same slot bound
// each epoch under the shared worker budget, and a site that finishes is
// folded into its siteAgg and freed before the next epoch — peak memory
// holds active simulators plus O(sites + epochs) aggregates, never the
// full fleet's results.
func runStream(ctx context.Context, cfg Config, perSite [][]*workload.Session, newSched func() (sched.Scheduler, error)) (*FleetMetrics, error) {
	epoch := cfg.EpochSlots
	if epoch == 0 {
		epoch = DefaultEpochSlots
	}
	// The watchdog cancels this context on a stall, so every cooperative
	// worker in the fleet unwinds together.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	fleet := &FleetMetrics{Sites: len(cfg.Sites)}
	var err error
	if fleet.RebufferPerUser, err = metrics.NewStreamingHist(fleetHistBins, fleetRebufferBinSec); err != nil {
		return nil, err
	}
	if fleet.EnergyPerUser, err = metrics.NewStreamingHist(fleetHistBins, fleetEnergyBinMJ); err != nil {
		return nil, err
	}

	sims := make([]*cell.Simulator, len(cfg.Sites))
	aggs := make([]siteAgg, len(cfg.Sites))
	active := make([]int, 0, len(cfg.Sites))
	for si := range cfg.Sites {
		if len(perSite[si]) == 0 {
			fleet.EmptySites++
			continue
		}
		sim, err := newSiteSim(cfg, si, perSite[si], newSched)
		if err != nil {
			return nil, err
		}
		if err := sim.Start(ctx); err != nil {
			return nil, err
		}
		sims[si] = sim
		active = append(active, si)
	}

	done := make([]bool, len(cfg.Sites))
	completed := 0
	upto := 0
	for len(active) > 0 {
		upto += epoch
		err := watchEpoch(cancel, cfg.EpochTimeout, fleet.Epochs, upto, func() error {
			return pool.ForEachN(ctx, cfg.Workers, len(active), func(ctx context.Context, k int) error {
				d, err := sims[active[k]].Advance(upto)
				done[active[k]] = d
				return err
			})
		})
		if err != nil {
			return nil, err
		}
		// Retire finished sites serially on this goroutine; folds are
		// per-site, so retire order cannot affect the final metrics.
		still := active[:0]
		for _, si := range active {
			if !done[si] {
				still = append(still, si)
				continue
			}
			if err := foldSite(&aggs[si], sims[si].Finish(), epoch); err != nil {
				return nil, err
			}
			sims[si] = nil
			completed++
		}
		active = still
		fleet.Epochs++
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(EpochInfo{
				Epoch:          fleet.Epochs - 1,
				UptoSlot:       upto,
				ActiveSites:    len(active),
				CompletedSites: completed,
			})
		}
	}

	// Merge per-site aggregates in site index order — for the scalars,
	// the retained mode's exact summation sequence over PerSite; for the
	// histograms, an order independent of epoch size and worker count.
	for si := range aggs {
		a := &aggs[si]
		fleet.Users += a.users
		fleet.Energy += a.energy
		fleet.TailEnergy += a.tailEnergy
		fleet.Rebuffer += a.rebuffer
		fleet.DegradedSlots += a.degradedSlots
		fleet.ClampEvents += a.clampEvents
		if a.slots > fleet.Slots {
			fleet.Slots = a.slots
		}
		for e, t := range a.perEpoch {
			if e >= len(fleet.PerEpoch) {
				fleet.PerEpoch = append(fleet.PerEpoch, EpochTotals{})
			}
			fleet.PerEpoch[e].Energy += t.Energy
			fleet.PerEpoch[e].Rebuffer += t.Rebuffer
		}
		if a.rebufHist != nil {
			if err := fleet.RebufferPerUser.Merge(a.rebufHist); err != nil {
				return nil, err
			}
			if err := fleet.EnergyPerUser.Merge(a.energyHist); err != nil {
				return nil, err
			}
		}
	}
	return fleet, nil
}

// foldSite reduces one finished cell result into its per-site aggregate,
// after which the result is garbage.
func foldSite(a *siteAgg, res *cell.Result, epoch int) error {
	a.users = len(res.Users)
	a.slots = res.Slots
	a.energy = res.TotalEnergy()
	a.tailEnergy = res.TotalTailEnergy()
	a.rebuffer = res.TotalRebuffer()
	a.degradedSlots = res.DegradedSlots
	a.clampEvents = res.ClampEvents
	nEpochs := (res.Slots + epoch - 1) / epoch
	if nEpochs > fleetEpochTotalsBudget {
		nEpochs = fleetEpochTotalsBudget
	}
	a.perEpoch = make([]EpochTotals, nEpochs)
	for n, st := range res.PerSlot {
		e := n / epoch
		if e >= nEpochs {
			break
		}
		a.perEpoch[e].Energy += st.Energy
		a.perEpoch[e].Rebuffer += st.Rebuffer
	}
	var err error
	if a.rebufHist, err = metrics.NewStreamingHist(fleetHistBins, fleetRebufferBinSec); err != nil {
		return err
	}
	if a.energyHist, err = metrics.NewStreamingHist(fleetHistBins, fleetEnergyBinMJ); err != nil {
		return err
	}
	for _, u := range res.Users {
		a.rebufHist.Observe(float64(u.Rebuffer))
		a.energyHist.Observe(float64(u.Energy()))
	}
	return nil
}

// assign applies the attachment policy.
func assign(cfg Config, sessions []*workload.Session, assess int) []Placement {
	placements := make([]Placement, len(sessions))
	demand := make([]units.KBps, len(cfg.Sites))
	for ui, s := range sessions {
		site := 0
		switch cfg.Policy {
		case RoundRobin:
			site = ui % len(cfg.Sites)
		case LeastLoaded:
			for si := 1; si < len(cfg.Sites); si++ {
				if demand[si] < demand[site] {
					site = si
				}
			}
		case StrongestSignal:
			best := meanSignal(SiteTrace(s, cfg.Sites[0], 0), s.StartSlot, assess)
			for si := 1; si < len(cfg.Sites); si++ {
				m := meanSignal(SiteTrace(s, cfg.Sites[si], si), s.StartSlot, assess)
				if m > best {
					best, site = m, si
				}
			}
		}
		demand[site] += s.BaseRate
		placements[ui] = Placement{User: ui, Site: site}
	}
	return placements
}

func meanSignal(tr signal.Trace, start, window int) float64 {
	var sum float64
	for n := start; n < start+window; n++ {
		sum += float64(tr.At(n))
	}
	return sum / float64(window)
}

// misassignment counts slots where some other site beat the serving site
// by the handover margin.
func misassignment(cfg Config, sessions []*workload.Session, placements []Placement, results []*cell.Result, backRef [][]int) (int, int) {
	mis, total := 0, 0
	for si, res := range results {
		if res == nil {
			continue
		}
		for localIdx, globalID := range backRef[si] {
			s := sessions[globalID]
			_ = localIdx
			serving := SiteTrace(s, cfg.Sites[si], si)
			for n := s.StartSlot; n < res.Slots; n++ {
				total++
				sv := float64(serving.At(n))
				for oi := range cfg.Sites {
					if oi == si {
						continue
					}
					if float64(SiteTrace(s, cfg.Sites[oi], oi).At(n)) >= sv+HandoverMarginDB {
						mis++
						break
					}
				}
			}
		}
	}
	return mis, total
}
