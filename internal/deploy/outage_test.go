package deploy

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

func TestSiteOutageValidation(t *testing.T) {
	cfg := twoSites()
	cfg.Outages = []SiteOutage{{Site: 5, From: 0, To: 10}}
	if err := cfg.Validate(); err == nil {
		t.Error("outage naming unknown site accepted")
	}
	cfg.Outages = []SiteOutage{{Site: 0, From: 10, To: 5}}
	if err := cfg.Validate(); err == nil {
		t.Error("inverted outage window accepted")
	}
	cfg.Outages = []SiteOutage{{Site: 1, From: 3, To: 9}}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid outage rejected: %v", err)
	}
}

// TestSiteOutageSurvival: a mid-run outage of one site must degrade only
// that site, cost it rebuffering, and still let every session finish —
// attachment survives the window.
func TestSiteOutageSurvival(t *testing.T) {
	cfg := twoSites()
	cfg.Policy = RoundRobin // both sites populated
	cfg.Outages = []SiteOutage{{Site: 0, From: 5, To: 25}}
	sessions := smallSessions(t, 6)
	res, err := Run(context.Background(), cfg, sessions, defaultFactory)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.DegradedSlots(); got != 20 {
		t.Errorf("fleet degraded slots = %d, want 20", got)
	}
	if res.PerSite[0] == nil || res.PerSite[0].DegradedSlots != 20 {
		t.Errorf("site 0 degraded slots = %+v, want 20", res.PerSite[0])
	}
	if res.PerSite[1] == nil || res.PerSite[1].DegradedSlots != 0 {
		t.Error("outage leaked onto site 1")
	}
	for si, site := range res.PerSite {
		for ui, u := range site.Users {
			if u.CompletionSlot < 0 {
				t.Errorf("site %d user %d never completed after the outage", si, ui)
			}
		}
	}
	// The same fleet without the outage must rebuffer strictly less.
	base, err := Run(context.Background(), func() Config {
		c := twoSites()
		c.Policy = RoundRobin
		return c
	}(), smallSessions(t, 6), defaultFactory)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRebuffer() <= base.TotalRebuffer() {
		t.Errorf("outage rebuffer %v not worse than baseline %v", res.TotalRebuffer(), base.TotalRebuffer())
	}
}

// TestRunCancellationNoGoroutineLeak: cancelling mid-run must return
// promptly and leave no worker goroutines behind.
func TestRunCancellationNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, twoSites(), smallSessions(t, 6), defaultFactory)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled deploy.Run did not return")
	}
	// Give the pool's workers a moment to unwind, then compare counts.
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("goroutines leaked: before %d, after %d", before, runtime.NumGoroutine())
		case <-time.After(10 * time.Millisecond):
		}
	}
}
