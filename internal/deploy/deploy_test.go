package deploy

import (
	"context"
	"errors"
	"testing"

	"jointstream/internal/cell"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

func siteConfig() cell.Config {
	cfg := cell.PaperConfig()
	cfg.Capacity = 3000
	cfg.MaxSlots = 800
	return cfg
}

func twoSites() Config {
	return Config{
		Sites: []Site{
			{Name: "north", Cell: siteConfig(), SignalOffset: 0},
			{Name: "south", Cell: siteConfig(), SignalOffset: -15},
		},
		Policy: StrongestSignal,
	}
}

func smallSessions(t *testing.T, n int) []*workload.Session {
	t.Helper()
	cfg := workload.PaperDefaults(n)
	cfg.SizeMin = 5 * units.Megabyte
	cfg.SizeMax = 10 * units.Megabyte
	cfg.Signal.PeriodSlots = 24
	wl, err := workload.Generate(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

func defaultFactory() (sched.Scheduler, error) { return sched.NewDefault(), nil }

func TestConfigValidate(t *testing.T) {
	good := twoSites()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (Config{}).Validate(); err == nil {
		t.Error("empty sites accepted")
	}
	bad := twoSites()
	bad.Sites[0].Cell.Tau = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid site cell config accepted")
	}
	bad2 := twoSites()
	bad2.Policy = Policy(99)
	if err := bad2.Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
	bad3 := twoSites()
	bad3.AssessSlots = -1
	if err := bad3.Validate(); err == nil {
		t.Error("negative assessment window accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if StrongestSignal.String() != "strongest-signal" ||
		RoundRobin.String() != "round-robin" ||
		LeastLoaded.String() != "least-loaded" {
		t.Error("policy strings wrong")
	}
	if Policy(7).String() != "Policy(7)" {
		t.Error("unknown policy string wrong")
	}
}

func TestRunValidation(t *testing.T) {
	sessions := smallSessions(t, 4)
	if _, err := Run(context.Background(), Config{}, sessions, defaultFactory); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := Run(context.Background(), twoSites(), nil, defaultFactory); err == nil {
		t.Error("no sessions accepted")
	}
	if _, err := Run(context.Background(), twoSites(), sessions, nil); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestStrongestSignalPrefersUnattenuatedSite(t *testing.T) {
	// Site "south" is 15 dB weaker for everyone: strongest-signal must
	// put every user on "north".
	res, err := Run(context.Background(), twoSites(), smallSessions(t, 6), defaultFactory)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range res.Placements {
		if pl.Site != 0 {
			t.Errorf("user %d attached to attenuated site", pl.User)
		}
	}
	if res.PerSite[0] == nil {
		t.Fatal("north site has no result")
	}
	if res.PerSite[1] != nil {
		t.Error("empty south site has a result")
	}
}

func TestRoundRobinSplitsUsers(t *testing.T) {
	cfg := twoSites()
	cfg.Policy = RoundRobin
	res, err := Run(context.Background(), cfg, smallSessions(t, 6), defaultFactory)
	if err != nil {
		t.Fatal(err)
	}
	counts := [2]int{}
	for _, pl := range res.Placements {
		counts[pl.Site]++
	}
	if counts[0] != 3 || counts[1] != 3 {
		t.Errorf("round robin split = %v", counts)
	}
	if res.PerSite[0] == nil || res.PerSite[1] == nil {
		t.Error("missing per-site results")
	}
}

func TestLeastLoadedBalancesDemand(t *testing.T) {
	cfg := twoSites()
	cfg.Policy = LeastLoaded
	sessions := smallSessions(t, 8)
	res, err := Run(context.Background(), cfg, sessions, defaultFactory)
	if err != nil {
		t.Fatal(err)
	}
	var demand [2]units.KBps
	for _, pl := range res.Placements {
		demand[pl.Site] += sessions[pl.User].BaseRate
	}
	// Demands should be within one max-rate of each other.
	diff := float64(demand[0] - demand[1])
	if diff < 0 {
		diff = -diff
	}
	if diff > 600 {
		t.Errorf("least-loaded imbalance: %v vs %v", demand[0], demand[1])
	}
}

func TestAggregatesMatchPerSite(t *testing.T) {
	cfg := twoSites()
	cfg.Policy = RoundRobin
	res, err := Run(context.Background(), cfg, smallSessions(t, 6), defaultFactory)
	if err != nil {
		t.Fatal(err)
	}
	var energy units.MJ
	var reb units.Seconds
	for _, r := range res.PerSite {
		if r != nil {
			energy += r.TotalEnergy()
			reb += r.TotalRebuffer()
		}
	}
	if res.TotalEnergy() != energy || res.TotalRebuffer() != reb {
		t.Error("aggregate mismatch")
	}
	if res.Users() != 6 {
		t.Errorf("Users = %d", res.Users())
	}
}

func TestOffloadingReducesContention(t *testing.T) {
	// One congested site versus two sites sharing the same users: the
	// two-site deployment must strictly cut total rebuffering.
	sessions := smallSessions(t, 10)

	single := Config{
		Sites:  []Site{{Name: "only", Cell: siteConfig()}},
		Policy: RoundRobin,
	}
	resSingle, err := Run(context.Background(), single, smallSessions(t, 10), defaultFactory)
	if err != nil {
		t.Fatal(err)
	}
	dual := Config{
		Sites: []Site{
			{Name: "a", Cell: siteConfig()},
			{Name: "b", Cell: siteConfig()},
		},
		Policy: RoundRobin,
	}
	resDual, err := Run(context.Background(), dual, sessions, defaultFactory)
	if err != nil {
		t.Fatal(err)
	}
	if resDual.TotalRebuffer() >= resSingle.TotalRebuffer() {
		t.Errorf("offloading did not help: single %v, dual %v",
			resSingle.TotalRebuffer(), resDual.TotalRebuffer())
	}
}

func TestMisassignmentDiagnostic(t *testing.T) {
	// With equal offsets the strongest site is ambiguous and noise makes
	// the other site win some slots: the diagnostic must be positive but
	// bounded by the total.
	cfg := Config{
		Sites: []Site{
			{Name: "a", Cell: siteConfig(), ShadowStd: 6},
			{Name: "b", Cell: siteConfig(), ShadowStd: 6},
		},
		Policy: StrongestSignal,
	}
	res, err := Run(context.Background(), cfg, smallSessions(t, 6), defaultFactory)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSlots <= 0 {
		t.Fatal("no slots accounted")
	}
	if res.MisassignedSlots < 0 || res.MisassignedSlots > res.TotalSlots {
		t.Errorf("misassigned %d of %d", res.MisassignedSlots, res.TotalSlots)
	}
	// Co-located sites with independent 6 dB shadowing: the other site
	// should beat the serving one by >=3 dB in a nontrivial share of slots.
	if res.MisassignedSlots == 0 {
		t.Error("expected some misassigned slots with co-located sites")
	}
}

func TestSiteTraceClamps(t *testing.T) {
	s := &workload.Session{Signal: signal.Constant(-105, signal.DefaultBounds)}
	tr := SiteTrace(s, Site{SignalOffset: -20}, 0)
	if got := tr.At(0); got != -110 {
		t.Errorf("offset trace = %v, want clamped -110", got)
	}
	tr2 := SiteTrace(s, Site{SignalOffset: +100}, 0)
	if got := tr2.At(0); got != -50 {
		t.Errorf("offset trace = %v, want clamped -50", got)
	}
}

func TestSiteTraceShadowingDeterministic(t *testing.T) {
	s := &workload.Session{ID: 3, Signal: signal.Constant(-80, signal.DefaultBounds)}
	site := Site{ShadowStd: 6}
	a := SiteTrace(s, site, 1)
	b := SiteTrace(s, site, 1)
	for n := 0; n < 50; n++ {
		if a.At(n) != b.At(n) {
			t.Fatal("shadowed trace not deterministic")
		}
	}
	// Different sites (or users) decorrelate.
	c := SiteTrace(s, site, 2)
	same := 0
	for n := 0; n < 50; n++ {
		if a.At(n) == c.At(n) {
			same++
		}
	}
	if same > 5 {
		t.Errorf("site shadowing correlated: %d/50 identical", same)
	}
}

func TestSchedulerFactoryErrorPropagates(t *testing.T) {
	boom := errors.New("no scheduler")
	_, err := Run(context.Background(), twoSites(), smallSessions(t, 4), func() (sched.Scheduler, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("factory error lost: %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, twoSites(), smallSessions(t, 4), defaultFactory)
	if err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := twoSites()
	cfg.Policy = RoundRobin
	run := func(workers int) (*Result, error) {
		c := cfg
		c.Workers = workers
		return Run(context.Background(), c, smallSessions(t, 6), defaultFactory)
	}
	a, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := run(4)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalEnergy() != b.TotalEnergy() || a.TotalRebuffer() != b.TotalRebuffer() {
		t.Error("results depend on worker count")
	}
}
