package deploy

import (
	"context"
	"math"
	"reflect"
	"testing"

	"jointstream/internal/rng"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// fleetConfig builds a deployment whose sites differ (capacity, offsets,
// an outage) so the streaming fold has real structure to preserve, with
// tiled link tables and stateless traces — the fleet-scale setup.
func fleetConfig(sites int) Config {
	cfg := Config{Policy: RoundRobin, Stream: true, EpochSlots: 64}
	for i := 0; i < sites; i++ {
		c := siteConfig()
		c.MaxSlots = 400 + 50*(i%3) // ragged horizons exercise staggered completion
		c.LinkTileSlots = 32
		cfg.Sites = append(cfg.Sites, Site{
			Name:         "site",
			Cell:         c,
			SignalOffset: units.DBm(-2 * i),
		})
	}
	cfg.Outages = []SiteOutage{{Site: 0, From: 100, To: 140}}
	return cfg
}

func fleetSessions(t *testing.T, n int) []*workload.Session {
	t.Helper()
	cfg := workload.PaperDefaults(n)
	cfg.SizeMin = 4 * units.Megabyte
	cfg.SizeMax = 8 * units.Megabyte
	cfg.Signal.PeriodSlots = 24
	cfg.StatelessSignal = true
	wl, err := workload.Generate(cfg, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

// TestStreamMatchesRetained is the streaming keystone: on every metric
// the two modes share, the folded fleet aggregates equal the retained
// mode's accessors exactly (==, not a tolerance) — same sums in the same
// order — and the per-epoch series re-adds to the same totals.
func TestStreamMatchesRetained(t *testing.T) {
	sessions := fleetSessions(t, 40)
	cfg := fleetConfig(5)

	cfg.Stream = false
	retained, err := Run(context.Background(), cfg, sessions, defaultFactory)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stream = true
	streamed, err := Run(context.Background(), cfg, sessions, defaultFactory)
	if err != nil {
		t.Fatal(err)
	}

	if streamed.Fleet == nil || streamed.PerSite != nil {
		t.Fatal("streaming result shape wrong")
	}
	if retained.Fleet != nil {
		t.Fatal("retained result carries fleet metrics")
	}
	if streamed.TotalEnergy() != retained.TotalEnergy() {
		t.Fatalf("energy: stream %v != retained %v", streamed.TotalEnergy(), retained.TotalEnergy())
	}
	if streamed.TotalRebuffer() != retained.TotalRebuffer() {
		t.Fatalf("rebuffer: stream %v != retained %v", streamed.TotalRebuffer(), retained.TotalRebuffer())
	}
	if streamed.DegradedSlots() != retained.DegradedSlots() {
		t.Fatalf("degraded: stream %d != retained %d", streamed.DegradedSlots(), retained.DegradedSlots())
	}
	if streamed.Users() != retained.Users() {
		t.Fatalf("users: stream %d != retained %d", streamed.Users(), retained.Users())
	}
	fl := streamed.Fleet
	if fl.Users != len(sessions) || fl.Sites != len(cfg.Sites) || fl.EmptySites != 0 {
		t.Fatalf("fleet shape: %+v", fl)
	}

	// Cross-check the folded tail energy and slot horizon against the
	// retained per-site results.
	var tail units.MJ
	maxSlots, clamps := 0, 0
	for _, res := range retained.PerSite {
		if res == nil {
			continue
		}
		tail += res.TotalTailEnergy()
		clamps += res.ClampEvents
		if res.Slots > maxSlots {
			maxSlots = res.Slots
		}
	}
	if fl.TailEnergy != tail || fl.Slots != maxSlots || fl.ClampEvents != clamps {
		t.Fatalf("tail/slots/clamps: (%v,%d,%d) != (%v,%d,%d)",
			fl.TailEnergy, fl.Slots, fl.ClampEvents, tail, maxSlots, clamps)
	}

	// The per-epoch series is a partition of the run: re-summing it must
	// reproduce the totals to float tolerance (different addition order).
	var epochEnergy, epochRebuf float64
	for _, e := range fl.PerEpoch {
		epochEnergy += float64(e.Energy)
		epochRebuf += float64(e.Rebuffer)
	}
	if math.Abs(epochEnergy-float64(fl.Energy)) > 1e-6*math.Max(1, float64(fl.Energy)) {
		t.Fatalf("per-epoch energy %v != total %v", epochEnergy, fl.Energy)
	}
	if math.Abs(epochRebuf-float64(fl.Rebuffer)) > 1e-6*math.Max(1, float64(fl.Rebuffer)) {
		t.Fatalf("per-epoch rebuffer %v != total %v", epochRebuf, fl.Rebuffer)
	}
	wantEpochs := (maxSlots + cfg.EpochSlots - 1) / cfg.EpochSlots
	if fl.Epochs != wantEpochs || len(fl.PerEpoch) != wantEpochs {
		t.Fatalf("epochs %d (series %d), want %d", fl.Epochs, len(fl.PerEpoch), wantEpochs)
	}

	// Histograms saw every user exactly once, with exact extremes/sums.
	if fl.RebufferPerUser.Count() != uint64(len(sessions)) || fl.EnergyPerUser.Count() != uint64(len(sessions)) {
		t.Fatalf("hist counts %d/%d", fl.RebufferPerUser.Count(), fl.EnergyPerUser.Count())
	}
	if units.MJ(fl.EnergyPerUser.Sum()) != fl.Energy {
		// Per-user energy folds in retire order; allow only float
		// reassociation, nothing more.
		if math.Abs(fl.EnergyPerUser.Sum()-float64(fl.Energy)) > 1e-6*float64(fl.Energy) {
			t.Fatalf("hist energy sum %v != %v", fl.EnergyPerUser.Sum(), fl.Energy)
		}
	}
}

// TestStreamDeterministicAcrossWorkersAndEpochs: the streamed fleet
// metrics are byte-identical for any worker count and for any epoch
// size — concurrency and batching are scheduling detail, never physics.
func TestStreamDeterministicAcrossWorkersAndEpochs(t *testing.T) {
	sessions := fleetSessions(t, 30)
	base := fleetConfig(4)
	run := func(workers, epochSlots int) *FleetMetrics {
		t.Helper()
		cfg := base
		cfg.Workers = workers
		if epochSlots != 0 {
			cfg.EpochSlots = epochSlots
		}
		res, err := Run(context.Background(), cfg, sessions, defaultFactory)
		if err != nil {
			t.Fatal(err)
		}
		return res.Fleet
	}
	want := run(1, 0)
	for _, workers := range []int{2, 7, 0} {
		if got := run(workers, 0); !reflect.DeepEqual(want, got) {
			t.Fatalf("fleet metrics differ at workers=%d", workers)
		}
	}
	// Epoch size changes only the epoch series granularity; scalar totals
	// and histograms stay identical.
	odd := run(3, 17)
	if odd.Energy != want.Energy || odd.Rebuffer != want.Rebuffer ||
		odd.TailEnergy != want.TailEnergy || odd.DegradedSlots != want.DegradedSlots {
		t.Fatal("totals differ across epoch sizes")
	}
	if !reflect.DeepEqual(odd.RebufferPerUser, want.RebufferPerUser) ||
		!reflect.DeepEqual(odd.EnergyPerUser, want.EnergyPerUser) {
		t.Fatal("histograms differ across epoch sizes")
	}
}

// TestEmptySitesEveryAccessor: sites that receive no users stay nil in
// PerSite (retained) or count as EmptySites (streamed), and every Result
// accessor tolerates them.
func TestEmptySitesEveryAccessor(t *testing.T) {
	sessions := fleetSessions(t, 6)
	cfg := fleetConfig(4)
	// RoundRobin over 4 sites with 6 users fills all; starve sites
	// instead by attaching everyone to site 0.
	cfg.Policy = StrongestSignal
	for i := range cfg.Sites {
		cfg.Sites[i].SignalOffset = units.DBm(-30 * i)
		cfg.Sites[i].ShadowStd = 0
	}

	cfg.Stream = false
	retained, err := Run(context.Background(), cfg, sessions, defaultFactory)
	if err != nil {
		t.Fatal(err)
	}
	empties := 0
	for si, res := range retained.PerSite {
		if res == nil {
			empties++
		} else if si != 0 {
			t.Fatalf("site %d unexpectedly populated", si)
		}
	}
	if empties != len(cfg.Sites)-1 {
		t.Fatalf("%d empty sites, want %d", empties, len(cfg.Sites)-1)
	}
	// Every accessor must walk the nil entries without panicking.
	_ = retained.TotalEnergy()
	_ = retained.TotalRebuffer()
	_ = retained.DegradedSlots()
	if retained.Users() != len(sessions) {
		t.Fatalf("Users() = %d", retained.Users())
	}

	cfg.Stream = true
	streamed, err := Run(context.Background(), cfg, sessions, defaultFactory)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Fleet.EmptySites != empties {
		t.Fatalf("EmptySites = %d, want %d", streamed.Fleet.EmptySites, empties)
	}
	if streamed.TotalEnergy() != retained.TotalEnergy() || streamed.TotalRebuffer() != retained.TotalRebuffer() {
		t.Fatal("stream != retained with empty sites")
	}
	if streamed.Fleet.Users != len(sessions) {
		t.Fatalf("fleet Users = %d", streamed.Fleet.Users)
	}
}

// TestLeastLoadedTieBreakDeterministic: equal demand must always break
// to the lowest site index, so identical configs place identically —
// with uniform rates the policy degenerates to exact round-robin.
func TestLeastLoadedTieBreakDeterministic(t *testing.T) {
	const users, sites = 12, 4
	cfg := fleetConfig(sites)
	cfg.Policy = LeastLoaded
	wlCfg := workload.PaperDefaults(users)
	wlCfg.RateMin, wlCfg.RateMax = 400, 400 // uniform demand: every step ties
	wlCfg.SizeMin, wlCfg.SizeMax = 4*units.Megabyte, 4*units.Megabyte
	wlCfg.StatelessSignal = true
	sessions, err := workload.Generate(wlCfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	want := assign(cfg, sessions, 10)
	for trial := 0; trial < 3; trial++ {
		got := assign(cfg, sessions, 10)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: placements differ", trial)
		}
	}
	for ui, pl := range want {
		if pl.Site != ui%sites {
			t.Fatalf("user %d placed at site %d; uniform-rate LeastLoaded must round-robin (lowest index wins ties)", ui, pl.Site)
		}
	}
}

// TestStreamOnEpochAndValidation covers the epoch callback contract and
// the new config guards.
func TestStreamOnEpochAndValidation(t *testing.T) {
	sessions := fleetSessions(t, 12)
	cfg := fleetConfig(3)
	var infos []EpochInfo
	cfg.OnEpoch = func(e EpochInfo) { infos = append(infos, e) }
	res, err := Run(context.Background(), cfg, sessions, defaultFactory)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != res.Fleet.Epochs {
		t.Fatalf("%d callbacks for %d epochs", len(infos), res.Fleet.Epochs)
	}
	for i, e := range infos {
		if e.Epoch != i || e.UptoSlot != (i+1)*cfg.EpochSlots {
			t.Fatalf("epoch %d: %+v", i, e)
		}
	}
	last := infos[len(infos)-1]
	if last.ActiveSites != 0 || last.CompletedSites != len(cfg.Sites) {
		t.Fatalf("final epoch: %+v", last)
	}

	bad := fleetConfig(2)
	bad.EpochSlots = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative EpochSlots accepted")
	}
}

// TestStreamCancellation: a cancelled context aborts the epoch loop with
// an error rather than hanging or returning partial fleet metrics.
func TestStreamCancellation(t *testing.T) {
	sessions := fleetSessions(t, 12)
	cfg := fleetConfig(3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, cfg, sessions, defaultFactory); err == nil {
		t.Fatal("cancelled fleet run succeeded")
	}
}
