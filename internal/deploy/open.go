package deploy

import (
	"context"
	"errors"
	"fmt"

	"jointstream/internal/cell"
	"jointstream/internal/pool"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// This file runs the fleet in open-system mode: every site serves a
// cell.OpenSim, sessions arrive by a stochastic arrival process over an
// unbounded horizon, are placed under the deployment's attachment
// policy, and leave by completing, abandoning (a departure process), or
// being refused admission. Cells advance in the same epoch-clocked
// lockstep as the streaming runner — including the epoch watchdog — and
// a session refused by its preferred site spills to the remaining sites
// in index order before counting as a fleet-level rejection.

// OpenFleetConfig parameterizes an open-system fleet run.
type OpenFleetConfig struct {
	// Deploy supplies the sites, attachment policy, worker budget,
	// epoch size and epoch watchdog. Its Stream, Outages and
	// MisassignedSlots machinery do not apply to open-system runs.
	Deploy Config
	// Open is the per-site open-system template: session caps, headroom,
	// tile and window shapes. Its Cell field is ignored — each site's
	// own cell config is used, forced to the unbounded-horizon shape
	// (RunFullHorizon, no per-user slot recording).
	Open cell.OpenConfig
	// Churn draws the session population (sizes, rates, signal shape).
	Churn workload.Config
	// Arrivals is the inter-arrival law; arrivals occur in slots
	// [0, ArrivalSlots).
	Arrivals workload.ArrivalProcess
	// ArrivalSlots bounds the arrival window.
	ArrivalSlots int
	// Stays, when set with AbandonFrac > 0, gives that fraction of
	// admitted sessions a finite stay after which they abandon (depart
	// mid-stream) if still in service.
	Stays       workload.DepartureProcess
	AbandonFrac float64
	// MaxSlots hard-stops the drain phase (0 = 8 × ArrivalSlots). A run
	// reaching it reports Drained=false with the leftovers in InService.
	MaxSlots int
	// Seed drives the arrival, stay and session draws.
	Seed uint64
}

// OpenFleetResult aggregates an open-system fleet run.
type OpenFleetResult struct {
	// PerSite holds each site's final open-engine stats (after every
	// leftover session was folded). Per-site Rejected counts every
	// refused admission attempt, including spill probes.
	PerSite []cell.OpenStats
	// Epochs counts lockstep epochs; Slots the final fleet clock.
	Epochs, Slots int
	// Drained reports whether every admitted session ended before
	// MaxSlots.
	Drained bool
	// Admitted counts sessions placed somewhere; Spilled those placed on
	// a site other than their policy's first choice; Rejected sessions
	// refused by every site.
	Admitted, Spilled, Rejected int
	// Completed, Departed and InService partition the admitted sessions
	// at the end of the run.
	Completed, Departed, InService int
	// Energy, Rebuffer and DeliveredKB are fleet totals over ended
	// sessions, folded per site and summed in site index order.
	Energy      units.MJ
	Rebuffer    units.Seconds
	DeliveredKB units.KB
}

// Validate checks the open-fleet configuration.
func (c OpenFleetConfig) Validate() error {
	if err := c.Deploy.Validate(); err != nil {
		return err
	}
	if c.Arrivals == nil {
		return fmt.Errorf("deploy: open fleet needs an arrival process")
	}
	if c.ArrivalSlots <= 0 {
		return fmt.Errorf("deploy: non-positive arrival window %d", c.ArrivalSlots)
	}
	if c.AbandonFrac < 0 || c.AbandonFrac > 1 {
		return fmt.Errorf("deploy: abandon fraction %v outside [0, 1]", c.AbandonFrac)
	}
	if c.AbandonFrac > 0 && c.Stays == nil {
		return fmt.Errorf("deploy: abandon fraction %v without a departure process", c.AbandonFrac)
	}
	if c.MaxSlots < 0 {
		return fmt.Errorf("deploy: negative slot cap %d", c.MaxSlots)
	}
	return nil
}

// stay is one scheduled abandonment, serial-guarded against the site
// slot being reused by a later session.
type stay struct {
	site, idx int
	ser       uint64
	until     int
}

// RunOpenFleet serves churn across the fleet until the arrival window
// closes and the sites drain (or MaxSlots is hit). newSched must return
// a fresh scheduler per call — one per site.
func RunOpenFleet(ctx context.Context, cfg OpenFleetConfig, newSched func() (sched.Scheduler, error)) (*OpenFleetResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if newSched == nil {
		return nil, fmt.Errorf("deploy: nil scheduler factory")
	}
	epoch := cfg.Deploy.EpochSlots
	if epoch == 0 {
		epoch = DefaultEpochSlots
	}
	maxSlots := cfg.MaxSlots
	if maxSlots == 0 {
		maxSlots = 8 * cfg.ArrivalSlots
	}
	assess := cfg.Deploy.AssessSlots
	if assess == 0 {
		assess = 10
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	sims := make([]*cell.OpenSim, len(cfg.Deploy.Sites))
	// Quiesce every site's tile-compilation pipeline on the way out, so
	// an error return mid-run leaks no background goroutine (Stop is
	// idempotent; Finish below calls it too).
	defer func() {
		for _, sim := range sims {
			if sim != nil {
				sim.Stop()
			}
		}
	}()
	for si, site := range cfg.Deploy.Sites {
		s, err := newSched()
		if err != nil {
			return nil, err
		}
		oc := cfg.Open
		oc.Cell = site.Cell
		oc.Cell.RunFullHorizon = true
		oc.Cell.RecordPerUserSlots = false
		oc.Unbounded = true
		sim, err := cell.NewOpen(oc, nil, s)
		if err != nil {
			return nil, fmt.Errorf("site %d (%s): %w", si, site.Name, err)
		}
		if err := sim.Start(ctx); err != nil {
			return nil, err
		}
		sims[si] = sim
	}

	gen, err := workload.NewChurnGen(cfg.Churn, rng.New(cfg.Seed^0xA24BAED4963EE407))
	if err != nil {
		return nil, err
	}
	arrSrc := rng.New(cfg.Seed ^ 0x9FB21C651E98DF25)
	staySrc := rng.New(cfg.Seed ^ 0x285842851E1BC6D1)

	res := &OpenFleetResult{PerSite: make([]cell.OpenStats, len(sims))}
	var stays []stay
	uid := 0
	nextAt := cfg.Arrivals.NextGap(uid, arrSrc)
	for clock := 0; ; {
		// Abandonments due by now. A stay that lost the race against
		// natural completion (or whose slot was reused) is a clean no-op
		// thanks to the serial guard.
		keep := stays[:0]
		for _, st := range stays {
			if st.until <= clock {
				if _, err := sims[st.site].DepartSerial(st.idx, st.ser); err != nil {
					return nil, err
				}
				continue
			}
			keep = append(keep, st)
		}
		stays = keep

		// Admissions landing inside this epoch, placed serially so every
		// worker count sees the identical fleet history.
		upto := clock + epoch
		for nextAt < upto && nextAt < cfg.ArrivalSlots {
			sess, err := gen.Next(uid, nextAt)
			if err != nil {
				return nil, err
			}
			st, placed, err := admitFleet(cfg, sims, sess, assess)
			if err != nil {
				return nil, err
			}
			if placed >= 0 {
				res.Admitted++
				if placed != 0 {
					res.Spilled++
				}
				if cfg.AbandonFrac > 0 {
					if d := cfg.Stays.StaySlots(uid, staySrc); d > 0 && staySrc.Bool(cfg.AbandonFrac) {
						stays = append(stays, stay{site: st.site, idx: st.idx, ser: st.ser, until: nextAt + d})
					}
				}
			} else {
				res.Rejected++
			}
			uid++
			nextAt += cfg.Arrivals.NextGap(uid, arrSrc)
		}

		advErr := watchEpoch(cancel, cfg.Deploy.EpochTimeout, res.Epochs, upto, func() error {
			return pool.ForEachN(ctx, cfg.Deploy.Workers, len(sims), func(ctx context.Context, si int) error {
				_, err := sims[si].AdvanceTo(upto)
				return err
			})
		})
		if advErr != nil {
			return nil, advErr
		}
		res.Epochs++
		clock = upto

		inService := 0
		for _, sim := range sims {
			inService += sim.Stats().InService
		}
		if cfg.Deploy.OnEpoch != nil {
			activeSites := 0
			for _, sim := range sims {
				if sim.Stats().InService > 0 {
					activeSites++
				}
			}
			cfg.Deploy.OnEpoch(EpochInfo{Epoch: res.Epochs - 1, UptoSlot: upto, ActiveSites: activeSites})
		}
		if nextAt >= cfg.ArrivalSlots && inService == 0 {
			res.Drained = true
			break
		}
		if clock >= maxSlots {
			break
		}
	}

	// Finalize every site (folding sessions still in service) and merge
	// in site index order.
	for si, sim := range sims {
		sim.Finish()
		st := sim.Stats()
		res.PerSite[si] = st
		res.Completed += st.Completed
		res.Departed += st.Departed
		res.Energy += st.EndedEnergy
		res.Rebuffer += st.EndedRebuffer
		res.DeliveredKB += st.EndedDeliveredKB
		if st.Slot > res.Slots {
			res.Slots = st.Slot
		}
	}
	res.InService = res.Admitted - res.Completed - res.Departed
	return res, nil
}

// admitFleet places one session: its policy-preferred site first, then
// the remaining sites in index order (spill). It returns the stay
// coordinates of the admitted session and the preference rank it landed
// at, or rank -1 when every site refused. Only typed over-capacity
// refusals spill; any other admission error is fatal to the run.
func admitFleet(cfg OpenFleetConfig, sims []*cell.OpenSim, sess *workload.Session, assess int) (stay, int, error) {
	first := preferredSite(cfg, sims, sess, assess)
	order := make([]int, 0, len(sims))
	order = append(order, first)
	for si := range sims {
		if si != first {
			order = append(order, si)
		}
	}
	for rank, si := range order {
		clone := *sess
		clone.Signal = SiteTrace(sess, cfg.Deploy.Sites[si], si)
		idx, err := sims[si].Admit(&clone)
		if err != nil {
			if errors.Is(err, cell.ErrOverCapacity) {
				continue
			}
			// Non-capacity errors are configuration bugs, not load.
			return stay{}, -1, fmt.Errorf("site %d (%s): %w", si, cfg.Deploy.Sites[si].Name, err)
		}
		ser, _ := sims[si].Serial(idx)
		return stay{site: si, idx: idx, ser: ser}, rank, nil
	}
	return stay{}, -1, nil
}

// preferredSite applies the attachment policy to one arriving session.
func preferredSite(cfg OpenFleetConfig, sims []*cell.OpenSim, sess *workload.Session, assess int) int {
	site := 0
	switch cfg.Deploy.Policy {
	case RoundRobin:
		site = sess.ID % len(sims)
	case LeastLoaded:
		for si := 1; si < len(sims); si++ {
			if sims[si].Stats().DemandKBps < sims[site].Stats().DemandKBps {
				site = si
			}
		}
	case StrongestSignal:
		best := meanSignal(SiteTrace(sess, cfg.Deploy.Sites[0], 0), sess.StartSlot, assess)
		for si := 1; si < len(sims); si++ {
			m := meanSignal(SiteTrace(sess, cfg.Deploy.Sites[si], si), sess.StartSlot, assess)
			if m > best {
				best, site = m, si
			}
		}
	}
	return site
}
