package deploy

import (
	"context"
	"errors"
	"testing"
	"time"

	"jointstream/internal/cell"
	"jointstream/internal/sched"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// openFleetConfig is the base churn setup: two sites, Poisson arrivals
// over 300 slots, a third of the sessions abandoning.
func openFleetConfig() OpenFleetConfig {
	dep := twoSites()
	dep.EpochSlots = 32
	churn := workload.PaperDefaults(1)
	churn.SizeMin = 2 * units.Megabyte
	churn.SizeMax = 5 * units.Megabyte
	churn.Signal.PeriodSlots = 48
	return OpenFleetConfig{
		Deploy:       dep,
		Open:         cell.OpenConfig{MaxSessions: 24, WindowSlots: 64, Windows: 2},
		Churn:        churn,
		Arrivals:     workload.PoissonArrivals{MeanInterarrival: 10},
		ArrivalSlots: 300,
		Stays:        workload.ExpDepartures{MeanStaySlots: 120},
		AbandonFrac:  0.33,
		Seed:         77,
	}
}

func TestOpenFleetConfigValidate(t *testing.T) {
	if err := openFleetConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	muts := []func(*OpenFleetConfig){
		func(c *OpenFleetConfig) { c.Deploy.Sites = nil },
		func(c *OpenFleetConfig) { c.Arrivals = nil },
		func(c *OpenFleetConfig) { c.ArrivalSlots = 0 },
		func(c *OpenFleetConfig) { c.AbandonFrac = 1.5 },
		func(c *OpenFleetConfig) { c.Stays = nil }, // AbandonFrac > 0 without a law
		func(c *OpenFleetConfig) { c.MaxSlots = -1 },
	}
	for i, m := range muts {
		c := openFleetConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := RunOpenFleet(context.Background(), openFleetConfig(), nil); err == nil {
		t.Error("nil scheduler factory accepted")
	}
}

// TestOpenFleetChurn drives the full open-system fleet story: arrivals,
// placement, abandonment, drain — then audits the session ledger and
// pins determinism and worker-count invariance of the whole run.
func TestOpenFleetChurn(t *testing.T) {
	run := func(workers int) *OpenFleetResult {
		cfg := openFleetConfig()
		cfg.Deploy.Workers = workers
		res, err := RunOpenFleet(context.Background(), cfg, defaultFactory)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(1)
	if res.Admitted == 0 || res.Completed == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	if !res.Drained || res.InService != 0 {
		t.Fatalf("fleet did not drain: %+v", res)
	}
	if res.Admitted != res.Completed+res.Departed {
		t.Fatalf("session ledger leaks: %+v", res)
	}
	sumAdmitted := 0
	for si, st := range res.PerSite {
		if st.InService != 0 {
			t.Errorf("site %d still serving %d sessions", si, st.InService)
		}
		sumAdmitted += st.Admitted
	}
	if sumAdmitted != res.Admitted {
		t.Fatalf("per-site admissions %d != fleet %d", sumAdmitted, res.Admitted)
	}
	if res.Energy <= 0 || res.DeliveredKB <= 0 {
		t.Fatalf("no service delivered: %+v", res)
	}
	for _, workers := range []int{2, 4} {
		got := run(workers)
		same := got.Admitted == res.Admitted && got.Spilled == res.Spilled &&
			got.Rejected == res.Rejected && got.Completed == res.Completed &&
			got.Departed == res.Departed && got.Epochs == res.Epochs &&
			got.Slots == res.Slots && got.Energy == res.Energy &&
			got.Rebuffer == res.Rebuffer && got.DeliveredKB == res.DeliveredKB &&
			got.PerSite[0] == res.PerSite[0] && got.PerSite[1] == res.PerSite[1]
		if !same {
			t.Errorf("workers=%d: fleet result diverged:\n%+v\nvs\n%+v", workers, got, res)
		}
	}
}

// TestOpenFleetPolicies runs every attachment policy through the churn
// loop; the spreading policies must actually populate both sites.
func TestOpenFleetPolicies(t *testing.T) {
	for _, policy := range []Policy{StrongestSignal, RoundRobin, LeastLoaded} {
		cfg := openFleetConfig()
		cfg.Deploy.Policy = policy
		res, err := RunOpenFleet(context.Background(), cfg, defaultFactory)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if res.Admitted != res.Completed+res.Departed+res.InService {
			t.Fatalf("%v: ledger leaks: %+v", policy, res)
		}
		if policy != StrongestSignal {
			// Both spreading policies must actually use the weak site.
			if res.PerSite[0].Admitted == 0 || res.PerSite[1].Admitted == 0 {
				t.Errorf("%v: lopsided placement: %+v", policy, res.PerSite)
			}
		}
	}
}

// TestOpenFleetSpillAndReject squeezes the fleet: one-session sites and
// a dense arrival burst force spills to the second choice and, once
// every site is full, fleet-level rejections — while the ledger stays
// conserved.
func TestOpenFleetSpillAndReject(t *testing.T) {
	cfg := openFleetConfig()
	cfg.Open.MaxSessions = 1
	cfg.Arrivals = workload.PoissonArrivals{MeanInterarrival: 2}
	cfg.ArrivalSlots = 200
	cfg.AbandonFrac = 0
	cfg.Stays = nil
	res, err := RunOpenFleet(context.Background(), cfg, defaultFactory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spilled == 0 {
		t.Errorf("crowded fleet never spilled: %+v", res)
	}
	if res.Rejected == 0 {
		t.Errorf("full fleet never rejected: %+v", res)
	}
	if res.Admitted != res.Completed+res.Departed+res.InService {
		t.Fatalf("ledger leaks: %+v", res)
	}
	for si, st := range res.PerSite {
		if st.InService > cfg.Open.MaxSessions {
			t.Errorf("site %d exceeded its session cap: %+v", si, st)
		}
	}
}

// wedgedScheduler allocates normally until slot wedgeAt, then blocks
// forever — the failure mode the epoch watchdog exists for.
type wedgedScheduler struct {
	inner   sched.Scheduler
	wedgeAt int
}

func (w *wedgedScheduler) Name() string { return "wedged" }

func (w *wedgedScheduler) Allocate(slot *sched.Slot, alloc []int) {
	if slot.N >= w.wedgeAt {
		select {} // wedge: no context check, no return
	}
	w.inner.Allocate(slot, alloc)
}

// TestEpochWatchdogStalls: a scheduler that wedges mid-run trips the
// watchdog, which surfaces a typed *EpochStalledError instead of
// hanging the fleet.
func TestEpochWatchdogStalls(t *testing.T) {
	cfg := twoSites()
	cfg.Stream = true
	cfg.EpochSlots = 64
	cfg.EpochTimeout = 100 * time.Millisecond
	sessions := smallSessions(t, 6)
	_, err := Run(context.Background(), cfg, sessions, func() (sched.Scheduler, error) {
		return &wedgedScheduler{inner: sched.NewDefault(), wedgeAt: 5}, nil
	})
	var stalled *EpochStalledError
	if !errors.As(err, &stalled) {
		t.Fatalf("wedged run returned %v, want *EpochStalledError", err)
	}
	if stalled.Timeout != cfg.EpochTimeout || stalled.UptoSlot <= 0 {
		t.Fatalf("stall fields: %+v", stalled)
	}
}

// TestEpochWatchdogQuiescent: a healthy run under a generous watchdog
// finishes with metrics identical to the unwatched run.
func TestEpochWatchdogQuiescent(t *testing.T) {
	run := func(timeout time.Duration) *Result {
		cfg := twoSites()
		cfg.Stream = true
		cfg.EpochSlots = 128
		cfg.EpochTimeout = timeout
		res, err := Run(context.Background(), cfg, smallSessions(t, 6), defaultFactory)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, watched := run(0), run(time.Minute)
	if plain.Fleet.Energy != watched.Fleet.Energy ||
		plain.Fleet.Rebuffer != watched.Fleet.Rebuffer ||
		plain.Fleet.Users != watched.Fleet.Users ||
		plain.Fleet.Epochs != watched.Fleet.Epochs {
		t.Fatalf("watchdog perturbed the run:\n%+v\nvs\n%+v", plain.Fleet, watched.Fleet)
	}
}

// TestOpenFleetWatchdog: the watchdog also guards the open-system
// runner.
func TestOpenFleetWatchdog(t *testing.T) {
	cfg := openFleetConfig()
	cfg.Deploy.EpochTimeout = 100 * time.Millisecond
	res, err := RunOpenFleet(context.Background(), cfg, func() (sched.Scheduler, error) {
		return &wedgedScheduler{inner: sched.NewDefault(), wedgeAt: 5}, nil
	})
	var stalled *EpochStalledError
	if !errors.As(err, &stalled) {
		t.Fatalf("wedged open fleet returned (%+v, %v), want *EpochStalledError", res, err)
	}
}
