package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	if v := s.Float64(); v < 0 || v >= 1 {
		t.Errorf("zero-value Source Float64 = %v, want [0,1)", v)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(99)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(-110, -50)
		if v < -110 || v >= -50 {
			t.Fatalf("Uniform(-110,-50) = %v out of range", v)
		}
	}
}

func TestUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi < lo")
		}
	}()
	New(1).Uniform(5, 4)
}

func TestIntnRangeAndCoverage(t *testing.T) {
	s := New(11)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("Intn(10) never produced %d in 10000 draws", i)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(123)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestGaussianScaling(t *testing.T) {
	s := New(5)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Gaussian(-80, 30)
	}
	mean := sum / n
	if math.Abs(mean+80) > 0.5 {
		t.Errorf("Gaussian(-80,30) mean = %v, want ~-80", mean)
	}
}

func TestExpMean(t *testing.T) {
	s := New(9)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(2)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lambda <= 0")
		}
	}()
	New(1).Exp(0)
}

func TestBoolProbability(t *testing.T) {
	s := New(17)
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			count++
		}
	}
	p := float64(count) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v, want ~0.3", p)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(42)
	a := parent.Split()
	b := parent.Split()
	// Children must differ from each other and from the parent stream.
	matches := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Errorf("split children matched on %d of 100 draws", matches)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(42).Split()
	b := New(42).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestPerm(t *testing.T) {
	s := New(21)
	p := s.Perm(20)
	if len(p) != 20 {
		t.Fatalf("Perm(20) length = %d", len(p))
	}
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm(20) invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

// Property: Perm always returns a valid permutation.
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Uniform stays within bounds for arbitrary ranges.
func TestUniformProperty(t *testing.T) {
	f := func(seed uint64, a, b int16) bool {
		lo, hi := float64(a), float64(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		v := New(seed).Uniform(lo, hi)
		return v >= lo && (v < hi || lo == hi && v == lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Norm()
	}
}
