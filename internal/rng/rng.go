// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by every stochastic component of the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: the
// same seed must yield bit-identical runs so that paper figures can be
// regenerated and compared across machines. We therefore avoid math/rand's
// historically global, lock-guarded source and hand-roll a SplitMix64
// generator (Steele, Lea & Flood, OOPSLA 2014), which passes BigCrush,
// needs only 64 bits of state, and makes independent per-user streams
// trivial to derive.
package rng

import "math"

// Source is a deterministic SplitMix64 pseudo-random generator.
// The zero value is a valid generator seeded with 0. Source is not safe
// for concurrent use; derive one Source per goroutine with Split.
type Source struct {
	state uint64
	// Cached second Gaussian from the Box–Muller pair.
	gauss    float64
	hasGauss bool
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent child generator from s. The child's stream
// is decorrelated from the parent's by an extra mixing round, so per-user
// generators produced by successive Split calls behave independently.
func (s *Source) Split() *Source {
	return &Source{state: mix(s.Uint64())}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return mix(s.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	// 53 random mantissa bits, the standard conversion.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Hash3 mixes three words into one uniformly distributed word with the
// same SplitMix64 finalizer the sequential stream uses. It is the
// stateless counterpart of Source: a pure function of its inputs, so
// callers that need a reproducible draw addressed by coordinates (for
// example, forecast noise keyed by (seed, slot, user)) get determinism
// without carrying generator state. Each word is folded in with the
// golden-ratio increment before mixing so (a,b,c) permutations and
// nearby coordinates decorrelate.
func Hash3(a, b, c uint64) uint64 {
	h := mix(a + 0x9E3779B97F4A7C15)
	h = mix(h ^ (b + 0x9E3779B97F4A7C15))
	return mix(h ^ (c + 0x9E3779B97F4A7C15))
}

// HashFloat3 maps Hash3 onto a uniform float in [0, 1), with the same
// 53-bit conversion Float64 uses.
func HashFloat3(a, b, c uint64) float64 {
	return float64(Hash3(a, b, c)>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi). It panics if hi < lo.
func (s *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Uniform with hi < lo")
	}
	return lo + (hi-lo)*s.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be faster, but
	// modulo bias at n << 2^64 is far below anything observable here.
	return int(s.Uint64() % uint64(n))
}

// Norm returns a standard normal deviate (mean 0, stddev 1) using the
// Box–Muller transform; the second value of each pair is cached.
func (s *Source) Norm() float64 {
	if s.hasGauss {
		s.hasGauss = false
		return s.gauss
	}
	var u1 float64
	for u1 == 0 { // avoid log(0)
		u1 = s.Float64()
	}
	u2 := s.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	s.gauss = r * math.Sin(2*math.Pi*u2)
	s.hasGauss = true
	return r * math.Cos(2*math.Pi*u2)
}

// Gaussian returns a normal deviate with the given mean and stddev.
func (s *Source) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*s.Norm()
}

// Exp returns an exponentially distributed value with the given rate
// parameter lambda (mean 1/lambda). It panics if lambda <= 0.
func (s *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp with non-positive lambda")
	}
	var u float64
	for u == 0 {
		u = s.Float64()
	}
	return -math.Log(u) / lambda
}

// Bool returns true with probability p (clamped to [0,1]).
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) via Fisher–Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
