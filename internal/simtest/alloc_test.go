//go:build !race

// Steady-state allocation regression tests for the zero-copy tick loop.
// The race detector instruments allocations and would report nonsense
// counts, so the file is excluded from -race runs; the plain CI test job
// executes it.

package simtest

import (
	"context"
	"testing"

	"jointstream/internal/cell"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/workload"
)

const (
	allocUsers      = 10000
	allocShortSlots = 24
	allocLongSlots  = 56
	allocRuns       = 2
)

// allocSims prebuilds one simulator per AllocsPerRun invocation (runs+1,
// counting the warmup call) over a shared workload, so the measured
// closure contains nothing but Run. One-time costs inside Run — result
// buffers, pprof label contexts, shard scratch and scheduler state
// growing on the first slot — are identical between the two horizons and
// cancel in the difference.
func allocSims(t *testing.T, wl []*workload.Session, mk func() sched.Scheduler, maxSlots int) []*cell.Simulator {
	t.Helper()
	sims := make([]*cell.Simulator, allocRuns+1)
	for i := range sims {
		cfg := cell.PaperConfig()
		cfg.Capacity = 2000
		cfg.MaxSlots = maxSlots
		cfg.Workers = 1
		sim, err := cell.New(cfg, wl, mk())
		if err != nil {
			t.Fatal(err)
		}
		sims[i] = sim
	}
	return sims
}

// steadyAllocsPerSlot isolates the tick loop's steady-state allocation
// rate by differencing two horizons: allocations of a 56-slot run minus a
// 24-slot run, divided by the 32 extra slots. Simulator construction
// (link-table compile, trace memoization — both horizon-dependent) stays
// outside the measured closure; the workload is sized so no session can
// finish within the horizon, keeping the live set and shard layout fixed
// across the differenced slots.
func steadyAllocsPerSlot(t *testing.T, mk func() sched.Scheduler) float64 {
	wl, err := SmallWorkload(5, allocUsers)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(maxSlots int) float64 {
		sims := allocSims(t, wl, mk, maxSlots)
		i := 0
		return testing.AllocsPerRun(allocRuns, func() {
			sim := sims[i]
			i++
			if _, err := sim.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(allocShortSlots)
	long := measure(allocLongSlots)
	return (long - short) / float64(allocLongSlots-allocShortSlots)
}

// TestTickSteadyStateZeroAllocs pins the tentpole's zero-allocation
// guarantee: once the first slot has grown every buffer, the prepare →
// schedule → commit loop allocates nothing — for the incremental-sort
// RTMA, the DP-heavy EMA, and the lookahead Predictive (whose factory
// arm reads the interface forecast path) at N=10k.
func TestTickSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-user allocation measurement; skipped in -short")
	}
	for name, mk := range factories(t) {
		if name != "RTMA" && name != "EMA" && name != "Predictive" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			if got := steadyAllocsPerSlot(t, mk); got != 0 {
				t.Errorf("steady-state tick loop allocates %.2f objects/slot, want 0", got)
			}
		})
	}
}

// TestTickSteadyStatePredictiveWindowAllocs covers the branch the
// factory arm can't reach: a table-backed forecast routes Predictive
// through the SlotWindower fast path, whose per-slot window scratch is
// rebuilt every Allocate by re-aliasing the table's column slices. That
// rebuild must stay header-copy only — zero allocations per slot once
// the scratch has grown.
func TestTickSteadyStatePredictiveWindowAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-user allocation measurement; skipped in -short")
	}
	wl, err := SmallWorkload(5, allocUsers)
	if err != nil {
		t.Fatal(err)
	}
	// Compile once at the longer horizon; the forecast truncates itself
	// at the table edge, so the shorter measurement arm reads a prefix.
	cfg := cell.PaperConfig()
	cfg.Capacity = 2000
	cfg.MaxSlots = allocLongSlots
	cfg.Workers = 1
	lt, err := cell.CompileLink(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() sched.Scheduler {
		p, err := sched.NewPredictive(sched.PredictiveConfig{Lookahead: 6, Forecast: lt.Forecast()})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if got := steadyAllocsPerSlot(t, mk); got != 0 {
		t.Errorf("steady-state windowed Predictive tick allocates %.2f objects/slot, want 0", got)
	}
}

// TestTickSteadyStateChurnZeroAllocs extends the zero-allocation
// guarantee to the open-system churn steady state: once the session
// pools, free-list, pending storage, tile blocks and window-metric
// scratch have grown, a sustained admit → serve → depart cycle — tile
// window rollovers, pipelined recompiles and metric-window rotations
// included — allocates nothing per cycle.
func TestTickSteadyStateChurnZeroAllocs(t *testing.T) {
	cfg := cell.PaperConfig()
	cfg.Capacity = 2000
	cfg.MaxSlots = 64 // initial horizon only; extends on demand
	cfg.Workers = 1
	cfg.RunFullHorizon = true
	o, err := cell.NewOpen(cell.OpenConfig{
		Cell: cfg, Unbounded: true, MaxSessions: 48,
		TileSlots: 16, WindowSlots: 32, Windows: 2,
	}, nil, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One caller-owned template; Admit clones it into pooled storage.
	// The size is unreachable within the run, so occupancy is driven
	// purely by the explicit depart-one/admit-one cycle below.
	template := &workload.Session{
		Size:     1 << 20,
		BaseRate: 300,
		Signal:   signal.Constant(-60, signal.DefaultBounds),
	}
	var sers []uint64
	admit := func() {
		idx, err := o.Admit(template)
		if err != nil {
			t.Fatal(err)
		}
		ser, ok := o.Serial(idx)
		if !ok {
			t.Fatalf("no serial at slot %d", idx)
		}
		sers = append(sers, ser)
	}
	for i := 0; i < 24; i++ {
		admit()
	}
	cycle := func() {
		ok, err := o.DepartSerial(-1, sers[0])
		if err != nil || !ok {
			t.Fatalf("depart oldest: ok=%v err=%v", ok, err)
		}
		sers = append(sers[:0], sers[1:]...)
		admit()
		if _, err := o.AdvanceTo(o.Clock() + 8); err != nil {
			t.Fatal(err)
		}
	}
	// Warm every pool: enough cycles to cross several tile windows and
	// metric-window rotations and to fill the session/free-list pools.
	for i := 0; i < 40; i++ {
		cycle()
	}
	if got := testing.AllocsPerRun(50, cycle); got != 0 {
		t.Errorf("churn steady state allocates %.2f objects/cycle, want 0", got)
	}
}
