//go:build !race

// Steady-state allocation regression tests for the zero-copy tick loop.
// The race detector instruments allocations and would report nonsense
// counts, so the file is excluded from -race runs; the plain CI test job
// executes it.

package simtest

import (
	"testing"

	"jointstream/internal/cell"
	"jointstream/internal/sched"
	"jointstream/internal/workload"
)

const (
	allocUsers      = 10000
	allocShortSlots = 24
	allocLongSlots  = 56
	allocRuns       = 2
)

// allocSims prebuilds one simulator per AllocsPerRun invocation (runs+1,
// counting the warmup call) over a shared workload, so the measured
// closure contains nothing but Run. One-time costs inside Run — result
// buffers, pprof label contexts, shard scratch and scheduler state
// growing on the first slot — are identical between the two horizons and
// cancel in the difference.
func allocSims(t *testing.T, wl []*workload.Session, mk func() sched.Scheduler, maxSlots int) []*cell.Simulator {
	t.Helper()
	sims := make([]*cell.Simulator, allocRuns+1)
	for i := range sims {
		cfg := cell.PaperConfig()
		cfg.Capacity = 2000
		cfg.MaxSlots = maxSlots
		cfg.Workers = 1
		sim, err := cell.New(cfg, wl, mk())
		if err != nil {
			t.Fatal(err)
		}
		sims[i] = sim
	}
	return sims
}

// steadyAllocsPerSlot isolates the tick loop's steady-state allocation
// rate by differencing two horizons: allocations of a 56-slot run minus a
// 24-slot run, divided by the 32 extra slots. Simulator construction
// (link-table compile, trace memoization — both horizon-dependent) stays
// outside the measured closure; the workload is sized so no session can
// finish within the horizon, keeping the live set and shard layout fixed
// across the differenced slots.
func steadyAllocsPerSlot(t *testing.T, mk func() sched.Scheduler) float64 {
	wl, err := SmallWorkload(5, allocUsers)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(maxSlots int) float64 {
		sims := allocSims(t, wl, mk, maxSlots)
		i := 0
		return testing.AllocsPerRun(allocRuns, func() {
			sim := sims[i]
			i++
			if _, err := sim.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(allocShortSlots)
	long := measure(allocLongSlots)
	return (long - short) / float64(allocLongSlots-allocShortSlots)
}

// TestTickSteadyStateZeroAllocs pins the tentpole's zero-allocation
// guarantee: once the first slot has grown every buffer, the prepare →
// schedule → commit loop allocates nothing — for the incremental-sort
// RTMA, the DP-heavy EMA, and the lookahead Predictive (whose factory
// arm reads the interface forecast path) at N=10k.
func TestTickSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-user allocation measurement; skipped in -short")
	}
	for name, mk := range factories(t) {
		if name != "RTMA" && name != "EMA" && name != "Predictive" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			if got := steadyAllocsPerSlot(t, mk); got != 0 {
				t.Errorf("steady-state tick loop allocates %.2f objects/slot, want 0", got)
			}
		})
	}
}

// TestTickSteadyStatePredictiveWindowAllocs covers the branch the
// factory arm can't reach: a table-backed forecast routes Predictive
// through the SlotWindower fast path, whose per-slot window scratch is
// rebuilt every Allocate by re-aliasing the table's column slices. That
// rebuild must stay header-copy only — zero allocations per slot once
// the scratch has grown.
func TestTickSteadyStatePredictiveWindowAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-user allocation measurement; skipped in -short")
	}
	wl, err := SmallWorkload(5, allocUsers)
	if err != nil {
		t.Fatal(err)
	}
	// Compile once at the longer horizon; the forecast truncates itself
	// at the table edge, so the shorter measurement arm reads a prefix.
	cfg := cell.PaperConfig()
	cfg.Capacity = 2000
	cfg.MaxSlots = allocLongSlots
	cfg.Workers = 1
	lt, err := cell.CompileLink(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() sched.Scheduler {
		p, err := sched.NewPredictive(sched.PredictiveConfig{Lookahead: 6, Forecast: lt.Forecast()})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if got := steadyAllocsPerSlot(t, mk); got != 0 {
		t.Errorf("steady-state windowed Predictive tick allocates %.2f objects/slot, want 0", got)
	}
}
