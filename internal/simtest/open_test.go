package simtest

import (
	"context"
	"testing"

	"jointstream/internal/cell"
	"jointstream/internal/rng"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// runOpenFull drives an OpenSim over the whole configured horizon and
// finalizes it.
func runOpenFull(t *testing.T, o *cell.OpenSim, upto int) *cell.Result {
	t.Helper()
	if err := o.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AdvanceTo(upto); err != nil {
		t.Fatal(err)
	}
	return o.Finish()
}

// TestOpenMatchesRunAllSchedulers pins the closed-world equivalence
// claim across the whole scheduler matrix: with no churn and a finite
// horizon, the open-system engine — analytic columns or the open tile —
// returns a Result byte-identical to cell.Run on the same inputs, for
// every scheduler in the repo. The closed arm compiles its usual link
// table, so the pin also transitively re-asserts the LUT exactness
// property on the open path.
func TestOpenMatchesRunAllSchedulers(t *testing.T) {
	for name, mk := range factories(t) {
		t.Run(name, func(t *testing.T) {
			wl, err := StaggeredWorkload(41, 6, 8)
			if err != nil {
				t.Fatal(err)
			}
			closed, err := cell.New(engineCfg(), wl, mk())
			if err != nil {
				t.Fatal(err)
			}
			want, err := closed.Run()
			if err != nil {
				t.Fatal(err)
			}
			for _, tile := range []int{0, 24} {
				wl2, err := StaggeredWorkload(41, 6, 8)
				if err != nil {
					t.Fatal(err)
				}
				ocfg := cell.OpenConfig{Cell: engineCfg()}
				if tile > 0 {
					ocfg.TileSlots = tile
					ocfg.MaxSessions = len(wl2)
				}
				o, err := cell.NewOpen(ocfg, wl2, mk())
				if err != nil {
					t.Fatal(err)
				}
				got := runOpenFull(t, o, engineCfg().MaxSlots)
				if err := SameResults(want, got); err != nil {
					t.Errorf("tile=%d: open vs closed: %v", tile, err)
				}
			}
		})
	}
}

// TestOpenWorkerDeterminism: the open engine inherits the closed
// engine's worker-count invariance — byte-identical Results for any
// Workers over a many-shard run with churn.
func TestOpenWorkerDeterminism(t *testing.T) {
	run := func(workers int) (*cell.Result, cell.OpenStats) {
		cfg := engineCfg()
		cfg.Capacity = 8000
		cfg.MaxSlots = 100
		cfg.ShardSize = 8
		cfg.Workers = workers
		cfg.RecordPerUserSlots = false
		cfg.RunFullHorizon = true
		wl, err := StaggeredWorkload(13, 96, 1)
		if err != nil {
			t.Fatal(err)
		}
		o, err := cell.NewOpen(cell.OpenConfig{Cell: cfg}, wl, factories(t)["EMA"]())
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if _, err := o.AdvanceTo(8); err != nil {
			t.Fatal(err)
		}
		// Mid-run churn on every arm, identically: users 60 and 80 joined
		// with mean interarrival 1, so at slot 8 they are still pending or
		// freshly live — never already completed.
		if err := o.Depart(60); err != nil {
			t.Fatal(err)
		}
		if err := o.Depart(80); err != nil {
			t.Fatal(err)
		}
		g, err := workload.NewChurnGen(churnCfg(), rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 2; k++ {
			sess, err := g.Next(0, 42+k)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := o.Admit(sess); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := o.AdvanceTo(cfg.MaxSlots); err != nil {
			t.Fatal(err)
		}
		return o.Finish(), o.Stats()
	}
	base, baseStats := run(1)
	for _, w := range []int{2, 4, 8} {
		res, st := run(w)
		if err := SameResults(base, res); err != nil {
			t.Errorf("workers=%d: %v", w, err)
		}
		if st != baseStats {
			t.Errorf("workers=%d: stats %+v != %+v", w, st, baseStats)
		}
	}
}

// churnCfg is a small paper-shaped workload config for churn draws:
// stateless traces so sessions stay memory-bounded at any horizon.
func churnCfg() workload.Config {
	cfg := workload.PaperDefaults(1)
	cfg.SizeMin = 2 * units.Megabyte
	cfg.SizeMax = 5 * units.Megabyte
	cfg.Signal.PeriodSlots = 60
	return cfg
}

// TestOpenChurnAllSchedulers smoke-tests every scheduler under
// unbounded churn: Poisson arrivals, exponential stays (some sessions
// abandon), horizon extension, window rotation. Asserts conservation of
// the session ledger and determinism of the whole run per scheduler.
func TestOpenChurnAllSchedulers(t *testing.T) {
	for name, mk := range factories(t) {
		t.Run(name, func(t *testing.T) {
			run := func() (cell.OpenStats, []cell.WindowSnapshot) {
				cfg := engineCfg()
				cfg.RecordPerUserSlots = false
				cfg.RunFullHorizon = true
				cfg.MaxSlots = 64 // initial horizon; extends on demand
				o, err := cell.NewOpen(cell.OpenConfig{
					Cell: cfg, Unbounded: true,
					MaxSessions: 16, WindowSlots: 32, Windows: 3,
				}, nil, mk())
				if err != nil {
					t.Fatal(err)
				}
				if err := o.Start(context.Background()); err != nil {
					t.Fatal(err)
				}
				g, err := workload.NewChurnGen(churnCfg(), rng.New(1009))
				if err != nil {
					t.Fatal(err)
				}
				arr := workload.PoissonArrivals{MeanInterarrival: 12}
				dep := workload.ExpDepartures{MeanStaySlots: 90}
				src := rng.New(31)
				type stay struct {
					idx   int
					ser   uint64
					until int
				}
				var stays []stay
				slot, uid := 0, 0
				for slot < 600 {
					if _, err := o.AdvanceTo(slot + 25); err != nil {
						t.Fatal(err)
					}
					slot += 25
					// Abandonments whose stay expired — serial-guarded, so a
					// stay that lost the race against natural completion (or
					// whose slot was reused) is a clean no-op.
					keep := stays[:0]
					for _, s := range stays {
						if s.until <= slot {
							if _, err := o.DepartSerial(s.idx, s.ser); err != nil {
								t.Fatal(err)
							}
							continue
						}
						keep = append(keep, s)
					}
					stays = keep
					// One Poisson arrival per step.
					if slot < 400 {
						sess, err := g.Next(uid, slot+arr.NextGap(uid+1, src))
						if err != nil {
							t.Fatal(err)
						}
						uid++
						idx, err := o.Admit(sess)
						if err != nil {
							t.Fatal(err)
						}
						ser, ok := o.Serial(idx)
						if !ok {
							t.Fatalf("no serial for freshly admitted slot %d", idx)
						}
						if st := dep.StaySlots(idx, src); st > 0 && src.Bool(0.4) {
							stays = append(stays, stay{idx: idx, ser: ser, until: slot + st})
						}
					}
				}
				// Drain: stop admitting, serve until everyone finishes.
				for i := 0; i < 200; i++ {
					st := o.Stats()
					if st.InService == 0 {
						break
					}
					if _, err := o.AdvanceTo(o.Clock() + 50); err != nil {
						t.Fatal(err)
					}
				}
				st := o.Stats()
				return st, o.Snapshots()
			}
			st, snaps := run()
			if st.Admitted != st.Completed+st.Departed+st.InService {
				t.Fatalf("session ledger leaks: %+v", st)
			}
			// RTMA carries a finite lifetime energy budget: on an unbounded
			// horizon it legitimately stops serving once the budget is spent,
			// so full drain and completions can't be demanded of it.
			if name != "RTMA" {
				if st.InService != 0 {
					t.Fatalf("drain left %d sessions in service: %+v", st.InService, st)
				}
				if st.Completed == 0 {
					t.Fatalf("degenerate churn run: %+v", st)
				}
			}
			if st.Admitted == 0 {
				t.Fatalf("degenerate churn run: %+v", st)
			}
			if len(snaps) == 0 {
				t.Fatal("no window snapshots rotated")
			}
			// Determinism: the whole churn script replays identically.
			st2, snaps2 := run()
			if st != st2 {
				t.Fatalf("churn run not deterministic: %+v vs %+v", st, st2)
			}
			if len(snaps) != len(snaps2) || snaps[len(snaps)-1] != snaps2[len(snaps2)-1] {
				t.Fatal("window snapshots not deterministic")
			}
		})
	}
}
