package simtest

import (
	"fmt"

	"jointstream/internal/radio"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// RandomUser draws one scheduler-facing user view with the paper's 3G
// radio pricing its channel: signal uniform in [−110, −50] dBm, required
// rate uniform in [100, 700] KB/s, random buffer occupancy and RRC tail
// state. Roughly one user in eight is inactive (with a nonzero link
// bound, so "inactive ⇒ zero allocation" is actually exercised), and one
// in sixteen has a zero link bound.
func RandomUser(src *rng.Source, index int) sched.User {
	m := radio.Paper3G()
	sig := units.DBm(src.Uniform(-110, -50))
	link := m.Throughput.Throughput(sig)
	u := sched.User{
		Index:       index,
		Active:      true,
		Sig:         sig,
		LinkRate:    link,
		EnergyPerKB: m.Power.EnergyPerKB(sig),
		Rate:        units.KBps(src.Uniform(100, 700)),
		BufferSec:   units.Seconds(src.Uniform(0, 45)),
		NeverActive: true,
		MaxUnits:    1 + src.Intn(40),
	}
	if src.Bool(0.5) {
		u.NeverActive = false
		u.TailGap = units.Seconds(src.Uniform(0, 10))
	}
	if src.Bool(0.0625) {
		u.MaxUnits = 0
	}
	if src.Bool(0.125) {
		u.Active = false
	}
	u.RemainingKB = units.KB(float64(u.MaxUnits)*100 + src.Uniform(0, 1e6))
	return u
}

// RandomSlot draws a scheduling problem with n users and the given
// capacity in units (τ = 1 s, δ = 100 KB, the paper's defaults).
func RandomSlot(src *rng.Source, n, capacity int) *sched.Slot {
	s := &sched.Slot{
		Tau:           1,
		Unit:          100,
		CapacityUnits: capacity,
		Users:         make([]sched.User, n),
	}
	for i := range s.Users {
		s.Users[i] = RandomUser(src, i)
	}
	return s
}

// PermuteSlot returns the slot with users reordered by perm and Index
// fields relabeled to positions, exactly as the simulator would present
// the same physical users in a different order. perm must be a
// permutation of [0, len(slot.Users)).
func PermuteSlot(slot *sched.Slot, perm []int) (*sched.Slot, error) {
	if len(perm) != len(slot.Users) {
		return nil, fmt.Errorf("simtest: permutation length %d != %d users", len(perm), len(slot.Users))
	}
	seen := make([]bool, len(perm))
	out := &sched.Slot{
		N:             slot.N,
		Tau:           slot.Tau,
		Unit:          slot.Unit,
		CapacityUnits: slot.CapacityUnits,
		Users:         make([]sched.User, len(slot.Users)),
	}
	for pos, from := range perm {
		if from < 0 || from >= len(perm) || seen[from] {
			return nil, fmt.Errorf("simtest: invalid permutation %v", perm)
		}
		seen[from] = true
		out.Users[pos] = slot.Users[from]
		out.Users[pos].Index = pos
	}
	return out, nil
}

// SoACopy returns the column-view (struct-of-arrays) presentation of an
// AoS slot: the same scheduling problem with every user field copied into
// a fresh sched.Columns and Users detached, so the accessors route
// through the SoA path exactly as the production engine's zero-copy view
// does. The input slot must be in session order (Index == position),
// which both RandomSlot and PermuteSlot guarantee. The returned columns
// are owned by the caller — mutating them between Allocate calls models
// the engine refreshing its dynamic columns in place.
func SoACopy(slot *sched.Slot) *sched.Slot {
	n := len(slot.Users)
	cols := &sched.Columns{
		Active:      make([]bool, n),
		Sig:         make([]units.DBm, n),
		LinkRate:    make([]units.KBps, n),
		EnergyPerKB: make([]units.MJ, n),
		Rate:        make([]units.KBps, n),
		BufferSec:   make([]units.Seconds, n),
		RemainingKB: make([]units.KB, n),
		TailGap:     make([]units.Seconds, n),
		NeverActive: make([]bool, n),
		MaxUnits:    make([]int32, n),
	}
	for i := range slot.Users {
		u := &slot.Users[i]
		cols.Active[i] = u.Active
		cols.Sig[i] = u.Sig
		cols.LinkRate[i] = u.LinkRate
		cols.EnergyPerKB[i] = u.EnergyPerKB
		cols.Rate[i] = u.Rate
		cols.BufferSec[i] = u.BufferSec
		cols.RemainingKB[i] = u.RemainingKB
		cols.TailGap[i] = u.TailGap
		cols.NeverActive[i] = u.NeverActive
		cols.MaxUnits[i] = int32(u.MaxUnits)
	}
	out := *slot
	out.Users = nil
	out.Cols = cols
	return &out
}

// TotalUnits sums an allocation.
func TotalUnits(alloc []int) int {
	total := 0
	for _, a := range alloc {
		total += a
	}
	return total
}

// SmallWorkload generates a miniature but fully paper-shaped workload —
// sine channels with noise, uniform sizes and rates — scaled down so a
// full simulation finishes in milliseconds. Deterministic in seed.
func SmallWorkload(seed uint64, users int) ([]*workload.Session, error) {
	cfg := workload.PaperDefaults(users)
	cfg.SizeMin = 2 * units.Megabyte
	cfg.SizeMax = 5 * units.Megabyte
	cfg.Signal.PeriodSlots = 60
	return workload.Generate(cfg, rng.New(seed))
}

// StaggeredWorkload is SmallWorkload with Poisson arrivals: users join
// with exponential interarrival times of the given mean instead of all
// starting at slot 0, so runs exercise the engine's admission path and
// finish with staggered completions. Deterministic in seed.
func StaggeredWorkload(seed uint64, users int, meanInterarrival units.Seconds) ([]*workload.Session, error) {
	cfg := workload.PaperDefaults(users)
	cfg.SizeMin = 2 * units.Megabyte
	cfg.SizeMax = 5 * units.Megabyte
	cfg.Signal.PeriodSlots = 60
	cfg.MeanInterarrival = meanInterarrival
	return workload.Generate(cfg, rng.New(seed))
}
