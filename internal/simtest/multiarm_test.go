package simtest

import (
	"runtime"
	"sort"
	"testing"
	"testing/quick"

	"jointstream/internal/cell"
	"jointstream/internal/rng"
	"jointstream/internal/units"
)

// armModels are the trace models of the multi-arm matrix: the paper's
// all-start-at-zero arrivals, staggered late joiners (admission and
// retirement fire mid-run), and the staggered workload again on the
// interface link path (no compiled table), which forces the engine off
// the dense link kernels.
func armModels() []struct {
	name   string
	inter  units.Seconds
	noLink bool
} {
	return []struct {
		name   string
		inter  units.Seconds
		noLink bool
	}{
		{name: "zero-start"},
		{name: "staggered", inter: 8},
		{name: "nolink", inter: 8, noLink: true},
	}
}

// TestMultiArmMatchesSingle is the lockstep engine's differential gate:
// for every scheduler in the repo, every trace model, and worker counts
// 1, 4 and GOMAXPROCS, the Result an arm produces inside a RunArms
// group must be byte-identical to the Result the same configuration
// produces alone through RunCtx. The arms share the sessions and (when
// compiled) the link table, exactly like the experiment harness's
// batched dispatch.
func TestMultiArmMatchesSingle(t *testing.T) {
	fac := factories(t)
	names := make([]string, 0, len(fac))
	for name := range fac {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, model := range armModels() {
		wl, err := StaggeredWorkload(41, 6, model.inter)
		if err != nil {
			t.Fatalf("%s: workload: %v", model.name, err)
		}
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			cfg := engineCfg()
			cfg.Workers = workers
			if model.noLink {
				cfg.LinkTableMaxRows = -1
			}
			sims := make([]*cell.Simulator, len(names))
			for i, name := range names {
				if sims[i], err = cell.New(cfg, wl, fac[name]()); err != nil {
					t.Fatalf("%s/%s: New: %v", model.name, name, err)
				}
			}
			group, err := cell.RunArms(sims)
			if err != nil {
				t.Fatalf("%s/workers=%d: RunArms: %v", model.name, workers, err)
			}
			for i, name := range names {
				single, err := cell.New(cfg, wl, fac[name]())
				if err != nil {
					t.Fatalf("%s/%s: New: %v", model.name, name, err)
				}
				want, err := single.Run()
				if err != nil {
					t.Fatalf("%s/%s: Run: %v", model.name, name, err)
				}
				if err := SameResults(group[i], want); err != nil {
					t.Errorf("%s/workers=%d/%s: lockstep arm diverges from single run: %v",
						model.name, workers, name, err)
				}
			}
		}
	}
}

// TestRunArmsOrderInvariance is the arm-order property: permuting the
// arms of a RunArms group never changes any arm's Result. Each arm owns
// its state and executes the same per-slot sequence regardless of
// position, so the only way order could leak in is through unintended
// sharing — which this test would catch as a divergence.
func TestRunArmsOrderInvariance(t *testing.T) {
	fac := factories(t)
	names := make([]string, 0, len(fac))
	for name := range fac {
		names = append(names, name)
	}
	sort.Strings(names)

	f := func(seed uint64) bool {
		src := rng.New(seed)
		users := 2 + src.Intn(8)
		var inter units.Seconds
		if src.Bool(0.5) {
			inter = units.Seconds(src.Uniform(1, 10))
		}
		wl, err := StaggeredWorkload(seed, users, inter)
		if err != nil {
			t.Logf("seed %d: workload: %v", seed, err)
			return false
		}
		// Pick 2-5 arms and a random permutation of them.
		k := 2 + src.Intn(4)
		pick := src.Perm(len(names))[:k]
		picked := make([]string, k)
		for i, p := range pick {
			picked[i] = names[p]
		}
		perm := src.Perm(k)

		cfg := engineCfg()
		run := func(order []string) (map[string]*cell.Result, error) {
			sims := make([]*cell.Simulator, len(order))
			for i, name := range order {
				var err error
				if sims[i], err = cell.New(cfg, wl, fac[name]()); err != nil {
					return nil, err
				}
			}
			rs, err := cell.RunArms(sims)
			if err != nil {
				return nil, err
			}
			byName := make(map[string]*cell.Result, len(order))
			for i, name := range order {
				byName[name] = rs[i]
			}
			return byName, nil
		}

		base, err := run(picked)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		shuffled := make([]string, k)
		for i, p := range perm {
			shuffled[i] = picked[p]
		}
		got, err := run(shuffled)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, name := range picked {
			if err := SameResults(got[name], base[name]); err != nil {
				t.Logf("seed %d: arm %s changed under permutation %v: %v", seed, name, perm, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(8)); err != nil {
		t.Error(err)
	}
}
