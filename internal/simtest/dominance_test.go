package simtest

import (
	"fmt"
	"testing"

	"jointstream/internal/cell"
	"jointstream/internal/oracle"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// This file is the oracle-dominance property suite: every scheduler in
// the repo, run over randomized workloads from all three trace models,
// must land inside the certified energy bracket of internal/oracle:
//
//	LowerBoundDelivered(run) ≤ trans(S) ≤ total(S) ≤ WorstMJ
//
// The lower certificate prices the bytes the run *actually delivered*
// at each user's cheapest feasible slots, so it binds schedulers that
// finish and schedulers that stall out alike; the upper certificate
// prices every deliverable byte at the worst feasible slot plus a
// max-power tail every slot. A violation on either side means the
// engine's Eq. (3)–(5) accounting and the oracle's replay of the same
// link physics have diverged — the failure message carries the (model,
// seed, scheduler) triple to reproduce it.

// dominanceSeeds are the workload seeds swept per trace model (the
// fixed matrix seed plus fresh ones).
var dominanceSeeds = []uint64{7, 101, 9000}

// dominanceEps absorbs float accumulation differences between the
// engine's per-slot sums and the oracle's sorted fills.
const dominanceEps = 1e-6

// oracleCfgFor mirrors an engine configuration into the oracle's.
func oracleCfgFor(cfg cell.Config, lt *cell.LinkTable) oracle.Config {
	oc := oracle.Config{
		Tau:         cfg.Tau,
		Unit:        cfg.Unit,
		Capacity:    cfg.Capacity,
		Horizon:     cfg.MaxSlots,
		Radio:       cfg.Radio,
		RRC:         cfg.RRC,
		AccountTail: true,
	}
	if lt != nil {
		oc.Link = lt
	}
	return oc
}

// dominanceArms returns every scheduler the bracket is asserted over:
// the eight factory baselines plus the forecast-driven Predictive
// reading the run's own compiled link table.
func dominanceArms(t *testing.T, lt *cell.LinkTable) map[string]func() sched.Scheduler {
	arms := factories(t)
	arms["Predictive(table)"] = func() sched.Scheduler {
		p, err := sched.NewPredictive(sched.PredictiveConfig{Lookahead: 8, Forecast: lt.Forecast()})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	return arms
}

// TestOracleDominance asserts the bracket for all nine schedulers over
// randomized workloads across the three trace models.
func TestOracleDominance(t *testing.T) {
	for _, model := range traceModels {
		for _, seed := range dominanceSeeds {
			t.Run(fmt.Sprintf("%s/seed=%d", model, seed), func(t *testing.T) {
				cfg := engineCfg()
				// One compile serves the Predictive forecast, the engine's
				// tick path, and the oracle replay: all three read the same
				// columns, so the bracket compares like against like.
				lt, err := cell.CompileLink(cfg, traceSessionsSeed(t, model, 6, seed))
				if err != nil {
					t.Fatal(err)
				}
				cfg.Link = lt
				oCfg := oracleCfgFor(cfg, lt)
				bounds, err := oracle.Compute(oCfg, traceSessionsSeed(t, model, 6, seed))
				if err != nil {
					t.Fatal(err)
				}
				if bounds.LowerMJ > bounds.UpperMJ+dominanceEps {
					t.Errorf("model %s seed %d: oracle lower %v above upper %v", model, seed, bounds.LowerMJ, bounds.UpperMJ)
				}
				if bounds.UpperMJ > bounds.WorstMJ+dominanceEps {
					t.Errorf("model %s seed %d: oracle upper %v above the adversarial certificate %v", model, seed, bounds.UpperMJ, bounds.WorstMJ)
				}

				for name, mk := range dominanceArms(t, lt) {
					sessions := traceSessionsSeed(t, model, 6, seed)
					sim, err := cell.New(cfg, sessions, mk())
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					res, err := sim.Run()
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					var trans, total units.MJ
					delivered := make([]units.KB, len(res.Users))
					for i, u := range res.Users {
						trans += u.TransEnergy
						total += u.TransEnergy + u.TailEnergy
						delivered[i] = u.DeliveredKB
					}
					lower, err := oracle.LowerBoundDelivered(oCfg, sessions, delivered)
					if err != nil {
						t.Fatalf("%s: lower bound: %v", name, err)
					}
					eps := units.MJ(dominanceEps * (1 + float64(trans)))
					if lower > trans+eps {
						t.Errorf("model %s seed %d scheduler %s: delivered-bytes lower bound %v above measured transmission energy %v",
							model, seed, name, lower, trans)
					}
					if total > bounds.WorstMJ+eps {
						t.Errorf("model %s seed %d scheduler %s: total energy %v above the adversarial certificate %v",
							model, seed, name, total, bounds.WorstMJ)
					}
				}
			})
		}
	}
}

// TestOracleDominanceGeneratedWorkloads repeats the bracket over
// workload.Generate scenarios (the experiment harness's generator, with
// arrival stagger and rate jitter) rather than the matrix traces, so
// the certificate also covers the paper-shaped workload path.
func TestOracleDominanceGeneratedWorkloads(t *testing.T) {
	for _, seed := range []uint64{3, 44} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			mkSessions := func() []*workload.Session {
				wlCfg := workload.PaperDefaults(5).WithAvgSize(4000)
				wlCfg.Signal.PeriodSlots = 24
				wlCfg.RateJitterFrac = 0.2
				wlCfg.MeanInterarrival = 3
				sessions, err := workload.Generate(wlCfg, rng.New(seed))
				if err != nil {
					t.Fatal(err)
				}
				return sessions
			}
			cfg := engineCfg()
			lt, err := cell.CompileLink(cfg, mkSessions())
			if err != nil {
				t.Fatal(err)
			}
			cfg.Link = lt
			oCfg := oracleCfgFor(cfg, lt)
			bounds, err := oracle.Compute(oCfg, mkSessions())
			if err != nil {
				t.Fatal(err)
			}
			for name, mk := range dominanceArms(t, lt) {
				sessions := mkSessions()
				sim, err := cell.New(cfg, sessions, mk())
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				res, err := sim.Run()
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				var trans, total units.MJ
				delivered := make([]units.KB, len(res.Users))
				for i, u := range res.Users {
					trans += u.TransEnergy
					total += u.TransEnergy + u.TailEnergy
					delivered[i] = u.DeliveredKB
				}
				lower, err := oracle.LowerBoundDelivered(oCfg, sessions, delivered)
				if err != nil {
					t.Fatalf("%s: lower bound: %v", name, err)
				}
				eps := units.MJ(dominanceEps * (1 + float64(trans)))
				if lower > trans+eps {
					t.Errorf("seed %d scheduler %s: delivered-bytes lower bound %v above measured transmission energy %v",
						seed, name, lower, trans)
				}
				if total > bounds.WorstMJ+eps {
					t.Errorf("seed %d scheduler %s: total energy %v above the adversarial certificate %v",
						seed, name, total, bounds.WorstMJ)
				}
			}
		})
	}
}
