package simtest

import (
	"math"
	"testing"

	"jointstream/internal/cell"
	"jointstream/internal/radio"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/units"
)

// slotForecast is the synthetic channel forecast behind the factories'
// Predictive arm: a pure hash of the slot number through the paper's
// radio curves, deliberately independent of the user coordinate. The
// slot-level property suites present schedulers with permuted and
// relabeled user views of the same physical problem, and a per-user
// prediction would not survive the relabeling — a per-slot one makes
// every user's defer/transmit decision a function of its own view
// alone, which is exactly what the permutation-conservation metamorphic
// test requires. The engine-level suites use the real table forecasts
// instead (exact and noise-corrupted).
type slotForecast struct{ seed uint64 }

const slotForecastHorizon = 4096

// slotForecastRadio is built once: constructing the model per read
// would box its interface fields and show up as test-harness noise in
// the steady-state allocation measurements.
var slotForecastRadio = radio.Paper3G()

func (f slotForecast) HorizonSlots() int { return slotForecastHorizon }

// predictedSig draws the slot's predicted channel from the same signal
// range RandomUser samples, so predicted prices are commensurate with
// the slot views' current prices and both decide() branches fire.
func (f slotForecast) predictedSig(n int) units.DBm {
	return units.DBm(-110 + 60*rng.HashFloat3(f.seed, uint64(n), 0))
}

func (f slotForecast) PredictedEnergyPerKB(n, i int) units.MJ {
	return slotForecastRadio.Power.EnergyPerKB(f.predictedSig(n))
}

func (f slotForecast) PredictedLinkUnits(n, i int) int {
	// Occasionally predict a dead slot so the nonzero-link filter in the
	// lookahead scan is exercised.
	if rng.Hash3(f.seed, uint64(n), 1)%8 == 0 {
		return 0
	}
	return 1 + int(rng.Hash3(f.seed, uint64(n), 2)%40)
}

// FuzzForecastNoise pins the NoisyForecast contract on a compiled link
// table: every read is a pure function of (seed, slot, user) — two
// independently constructed forecasts with the same seed agree at every
// coordinate, in any read order — corrupted prices are never negative,
// corrupted link limits never leave [0, MaxLinkUnits], and a fully
// corrupted forecast (errFrac ≥ 1) reports a zero horizon, carrying no
// information at all.
//
// Run the smoke mode locally (CI runs it for 30 s) with:
//
//	go test -fuzz=FuzzForecastNoise -fuzztime=30s ./internal/simtest
func FuzzForecastNoise(f *testing.F) {
	cfg := engineCfg()
	sessions := traceSessions(f, "sine+wgn", 4)
	lt, err := cell.CompileLink(cfg, sessions)
	if err != nil {
		f.Fatal(err)
	}
	maxLU := lt.MaxLinkUnits()

	f.Add(uint64(1), uint8(0), uint16(0))
	f.Add(uint64(2), uint8(25), uint16(77))
	f.Add(uint64(3), uint8(99), uint16(500))
	f.Add(uint64(4), uint8(100), uint16(9))
	f.Add(uint64(5), uint8(255), uint16(1000))

	f.Fuzz(func(t *testing.T, seed uint64, errPct uint8, coord uint16) {
		errFrac := float64(errPct) / 100 // spans [0, 2.55]: both regimes
		a, err := cell.NewNoisyForecast(lt, seed, errFrac)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cell.NewNoisyForecast(lt, seed, errFrac)
		if err != nil {
			t.Fatal(err)
		}

		if errFrac >= 1 {
			if h := a.HorizonSlots(); h != 0 {
				t.Fatalf("errFrac %v: horizon %d, want 0 (no information)", errFrac, h)
			}
		} else if h := a.HorizonSlots(); h != lt.Slots() {
			t.Fatalf("errFrac %v: horizon %d, want table's %d", errFrac, h, lt.Slots())
		}

		// Walk a deterministic window of coordinates starting at coord,
		// reading b in reverse order: pure reads cannot care about order.
		users, slots := lt.Users(), lt.Slots()
		type read struct {
			n, i int
			p    units.MJ
			lu   int
		}
		var reads []read
		for k := 0; k < 16; k++ {
			idx := (int(coord) + 37*k) % (users * slots)
			n, i := idx/users, idx%users
			reads = append(reads, read{n: n, i: i, p: a.PredictedEnergyPerKB(n, i), lu: a.PredictedLinkUnits(n, i)})
		}
		for k := len(reads) - 1; k >= 0; k-- {
			r := reads[k]
			if p := b.PredictedEnergyPerKB(r.n, r.i); p != r.p {
				t.Fatalf("(%d,%d): price %v != %v from an identically seeded forecast", r.n, r.i, p, r.p)
			}
			if lu := b.PredictedLinkUnits(r.n, r.i); lu != r.lu {
				t.Fatalf("(%d,%d): link units %d != %d from an identically seeded forecast", r.n, r.i, lu, r.lu)
			}
			if r.p < 0 {
				t.Fatalf("(%d,%d): negative predicted price %v", r.n, r.i, r.p)
			}
			if r.lu < 0 || r.lu > maxLU {
				t.Fatalf("(%d,%d): predicted link units %d outside [0, %d]", r.n, r.i, r.lu, maxLU)
			}
		}
	})
}

// TestNoisyForecastZeroErrorIsExact pins the noise model's identity
// mode: at errFrac 0 the corruption factor is exactly 1, so every read
// matches the table bitwise.
func TestNoisyForecastZeroErrorIsExact(t *testing.T) {
	cfg := engineCfg()
	sessions := traceSessions(t, "randomwalk", 4)
	lt, err := cell.CompileLink(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	nf, err := cell.NewNoisyForecast(lt, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	exact := lt.Forecast()
	for n := 0; n < lt.Slots(); n += 7 {
		for i := 0; i < lt.Users(); i++ {
			if got, want := nf.PredictedEnergyPerKB(n, i), exact.PredictedEnergyPerKB(n, i); got != want {
				t.Fatalf("(%d,%d): zero-error price %v != table %v", n, i, got, want)
			}
			if got, want := nf.PredictedLinkUnits(n, i), exact.PredictedLinkUnits(n, i); got != want {
				t.Fatalf("(%d,%d): zero-error link units %d != table %d", n, i, got, want)
			}
		}
	}
}

// TestNoisyForecastValidation pins the constructor's argument checks.
func TestNoisyForecastValidation(t *testing.T) {
	cfg := engineCfg()
	lt, err := cell.CompileLink(cfg, traceSessions(t, "sine+wgn", 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cell.NewNoisyForecast(nil, 1, 0.1); err == nil {
		t.Error("nil table accepted")
	}
	for _, bad := range []float64{-0.1, math.Inf(1), math.NaN()} {
		if _, err := cell.NewNoisyForecast(lt, 1, bad); err == nil {
			t.Errorf("error level %v accepted", bad)
		}
	}
	if _, err := sched.NewPredictive(sched.PredictiveConfig{Lookahead: -1}); err == nil {
		t.Error("negative lookahead accepted")
	}
	if _, err := sched.NewPredictive(sched.PredictiveConfig{SafetySec: -1}); err == nil {
		t.Error("negative safety floor accepted")
	}
}
