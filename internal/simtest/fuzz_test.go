package simtest

import (
	"testing"

	"jointstream/internal/rng"
	"jointstream/internal/rrc"
	"jointstream/internal/sched"
	"jointstream/internal/units"
)

// FuzzEMAAllocate fuzzes the EMA scheduler's per-slot decision: from an
// arbitrary (slot, queue, V) state the deque DP must not panic, must
// return a feasible allocation, must advance the virtual queues per
// Eq. (16), and must match the paper-literal reference DP's objective.
//
// Run the 30-second smoke mode locally with:
//
//	go test -fuzz=FuzzEMAAllocate -fuzztime=30s ./internal/simtest
func FuzzEMAAllocate(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint16(10), int64(0))
	f.Add(uint64(2), uint8(1), uint16(0), int64(30))
	f.Add(uint64(3), uint8(40), uint16(205), int64(-12))
	f.Add(uint64(99), uint8(16), uint16(511), int64(500))

	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, capRaw uint16, queueBias int64) {
		n := 1 + int(nRaw%40)
		capacity := int(capRaw % 512)
		src := rng.New(seed)
		slot := RandomSlot(src, n, capacity)

		v := 0.01 + src.Float64()*4
		newEMA := func() *sched.EMA {
			e, err := sched.NewEMA(sched.EMAConfig{V: v, RRC: rrc.Paper3G()})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		fast, ref, frozen := newEMA(), newEMA(), newEMA()
		bias := float64(queueBias % 1000)
		for i := 0; i < n; i++ {
			q := units.Seconds(src.Uniform(-100, 100) + bias)
			fast.SetQueue(i, q)
			ref.SetQueue(i, q)
			frozen.SetQueue(i, q)
		}

		before := QueueSnapshot(fast, slot)
		fastAlloc := make([]int, n)
		fast.Allocate(slot, fastAlloc)
		if err := CheckAllocation(slot, fastAlloc); err != nil {
			t.Fatalf("fast path: %v", err)
		}
		if err := CheckEq16(fast, before, slot, fastAlloc); err != nil {
			t.Fatalf("fast path: %v", err)
		}

		refAlloc := make([]int, n)
		ref.AllocateRef(slot, refAlloc)
		if err := CheckAllocation(slot, refAlloc); err != nil {
			t.Fatalf("reference path: %v", err)
		}

		got := EMAObjective(frozen, slot, fastAlloc)
		want := EMAObjective(frozen, slot, refAlloc)
		if !SameObjective(got, want) {
			t.Fatalf("objective mismatch: fast %v (alloc %v) vs ref %v (alloc %v)",
				got, fastAlloc, want, refAlloc)
		}
	})
}
