package simtest

import (
	"fmt"
	"testing"

	"jointstream/internal/cell"
	"jointstream/internal/oracle"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// This file pins the Predictive scheduler's degeneration and ordering
// contracts at full-simulation granularity:
//
//   - Every configuration that carries no usable future information —
//     K = 0, a nil forecast, or a fully corrupted one — must reproduce
//     the myopic Default baseline's physics byte-for-byte.
//   - The SoA engine and the AoS reference agree on forecast-driven
//     runs (exact and noise-corrupted), across worker counts.
//   - With an exact forecast and no contention pressure, more lookahead
//     never hurts: the oracle gap is non-increasing in K.

// predictiveRunTotal runs one full simulation and returns the result
// plus summed (trans+tail) energy.
func predictiveRunTotal(t *testing.T, cfg cell.Config, sessions []*workload.Session, s sched.Scheduler) (*cell.Result, units.MJ) {
	t.Helper()
	sim, err := cell.New(cfg, sessions, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	var total units.MJ
	for _, u := range res.Users {
		total += u.TransEnergy + u.TailEnergy
	}
	return res, total
}

// TestPredictiveMyopicDegeneration is the differential parity matrix:
// three informationless Predictive arms against the Default baseline,
// across every trace model and worker count. SamePhysics (SameResults
// minus the scheduler name) must hold — the arms differ only in how
// they conclude there is nothing to predict.
func TestPredictiveMyopicDegeneration(t *testing.T) {
	arms := []struct {
		name  string
		build func(t *testing.T, lt *cell.LinkTable) sched.Scheduler
	}{
		{"K=0", func(t *testing.T, lt *cell.LinkTable) sched.Scheduler {
			p, err := sched.NewPredictive(sched.PredictiveConfig{Lookahead: 0, Forecast: lt.Forecast()})
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
		{"nil-forecast", func(t *testing.T, lt *cell.LinkTable) sched.Scheduler {
			p, err := sched.NewPredictive(sched.PredictiveConfig{Lookahead: 8})
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
		{"err=100%", func(t *testing.T, lt *cell.LinkTable) sched.Scheduler {
			nf, err := cell.NewNoisyForecast(lt, 5, 1.0)
			if err != nil {
				t.Fatal(err)
			}
			p, err := sched.NewPredictive(sched.PredictiveConfig{Lookahead: 8, Forecast: nf})
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
	}
	for _, model := range traceModels {
		for _, workers := range []int{1, 4, 0} {
			for _, arm := range arms {
				t.Run(fmt.Sprintf("%s/workers=%d/%s", model, workers, arm.name), func(t *testing.T) {
					cfg := engineCfg()
					cfg.Workers = workers
					lt, err := cell.CompileLink(cfg, traceSessions(t, model, 6))
					if err != nil {
						t.Fatal(err)
					}
					cfg.Link = lt
					ref, _ := predictiveRunTotal(t, cfg, traceSessions(t, model, 6), sched.NewDefault())
					got, _ := predictiveRunTotal(t, cfg, traceSessions(t, model, 6), arm.build(t, lt))
					if err := SamePhysics(got, ref); err != nil {
						t.Errorf("model %s workers %d arm %s diverged from Default: %v", model, workers, arm.name, err)
					}
				})
			}
		}
	}
}

// TestEngineMatrixPredictiveForecast extends the SoA-vs-reference
// acceptance matrix to the forecast-driven configurations the factories
// can't express (they need a compiled table): exact table forecasts and
// noise-corrupted ones, across trace models and worker counts.
func TestEngineMatrixPredictiveForecast(t *testing.T) {
	for _, model := range traceModels {
		for _, errFrac := range []float64{0, 0.3} {
			for _, workers := range []int{1, 4, 0} {
				t.Run(fmt.Sprintf("%s/err=%g/workers=%d", model, errFrac, workers), func(t *testing.T) {
					build := func() (*cell.Simulator, error) {
						cfg := engineCfg()
						cfg.Workers = workers
						sessions := traceSessions(t, model, 6)
						lt, err := cell.CompileLink(cfg, sessions)
						if err != nil {
							return nil, err
						}
						cfg.Link = lt
						var fc sched.Forecast = lt.Forecast()
						if errFrac > 0 {
							if fc, err = cell.NewNoisyForecast(lt, 23, errFrac); err != nil {
								return nil, err
							}
						}
						p, err := sched.NewPredictive(sched.PredictiveConfig{Lookahead: 8, Forecast: fc})
						if err != nil {
							return nil, err
						}
						return cell.New(cfg, sessions, p)
					}
					if err := CheckEngineEquivalence(true, build); err != nil {
						t.Error(err)
					}
				})
			}
		}
	}
}

// monotoneSessions builds the clean scenario for the lookahead-ordering
// test: noiseless sine channels (the price landscape is a smooth wave,
// so a deeper window always sees a weakly better minimum) and finite
// clips small enough to finish well inside the horizon.
func monotoneSessions(t *testing.T, users int) []*workload.Session {
	t.Helper()
	sessions := make([]*workload.Session, users)
	for i := range sessions {
		tr, err := signal.NewSine(signal.SineConfig{
			Bounds:      signal.DefaultBounds,
			PeriodSlots: 40,
			Phase:       1.3 * float64(i),
		}, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = &workload.Session{
			ID: i, Size: 3000, BaseRate: 300, Signal: tr,
		}
	}
	return sessions
}

// TestOracleGapMonotoneInK asserts the ordering property behind the
// ExtPredictive figure: with an exact forecast and no capacity
// contention, total energy — hence the gap to the (fixed) oracle lower
// bound — is non-increasing as the lookahead K grows. The property is
// not universal: greedy deferral can lose to a shallower window when a
// deep minimum sits just past what the buffer can wait out (the
// NeedUnits survival branch buys at the current price instead of the
// nearer dip), and under contention deferring users re-collide at
// shared minima — the quick-scale sweep and a phase-3.9 single user
// both show the wiggle. So the test pins the chains where the ordering
// does hold, and any regression in the defer rule that breaks them is
// a real behavior change.
func TestOracleGapMonotoneInK(t *testing.T) {
	for _, users := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("users=%d", users), func(t *testing.T) {
			cfg := cell.PaperConfig()
			cfg.Capacity = 100_000 // ≫ any slot's demand: no contention
			cfg.MaxSlots = 300
			lt, err := cell.CompileLink(cfg, monotoneSessions(t, users))
			if err != nil {
				t.Fatal(err)
			}
			cfg.Link = lt
			bounds, err := oracle.Compute(oracle.Config{
				Tau: cfg.Tau, Unit: cfg.Unit, Capacity: cfg.Capacity,
				Horizon: cfg.MaxSlots, Radio: cfg.Radio, RRC: cfg.RRC,
				AccountTail: true, Link: lt,
			}, monotoneSessions(t, users))
			if err != nil {
				t.Fatal(err)
			}
			prev := units.MJ(0)
			for ki, k := range []int{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64} {
				p, err := sched.NewPredictive(sched.PredictiveConfig{Lookahead: k, Forecast: lt.Forecast()})
				if err != nil {
					t.Fatal(err)
				}
				_, total := predictiveRunTotal(t, cfg, monotoneSessions(t, users), p)
				if total < bounds.LowerMJ {
					t.Errorf("users %d K=%d: total %v below the oracle lower bound %v", users, k, total, bounds.LowerMJ)
				}
				if ki > 0 && total > prev {
					t.Errorf("users %d K=%d: total energy %v rose above the previous lookahead's %v — gap not monotone",
						users, k, total, prev)
				}
				prev = total
			}
		})
	}
}
