package simtest

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"jointstream/internal/cell"
	"jointstream/internal/radio"
	"jointstream/internal/rng"
	"jointstream/internal/rrc"
	"jointstream/internal/sched"
	"jointstream/internal/units"
)

// factories builds one fresh instance of every scheduler in the repo:
// the paper's two algorithms, the adaptive extension, and all baselines.
func factories(t testing.TB) map[string]func() sched.Scheduler {
	t.Helper()
	must := func(s sched.Scheduler, err error) sched.Scheduler {
		if err != nil {
			t.Fatalf("scheduler construction: %v", err)
		}
		return s
	}
	return map[string]func() sched.Scheduler{
		"Default":    func() sched.Scheduler { return sched.NewDefault() },
		"Throttling": func() sched.Scheduler { return must(sched.NewThrottling(1.25)) },
		"ON-OFF":     func() sched.Scheduler { return must(sched.NewOnOff(10, 40)) },
		"SALSA":      func() sched.Scheduler { return must(sched.NewSALSA(5, 0.3)) },
		"EStreamer":  func() sched.Scheduler { return must(sched.NewEStreamer(40, 5)) },
		"RTMA": func() sched.Scheduler {
			return must(sched.NewRTMA(sched.RTMAConfig{
				Budget: 500, Radio: radio.Paper3G(), RRC: rrc.Paper3G(),
			}))
		},
		"EMA": func() sched.Scheduler {
			return must(sched.NewEMA(sched.EMAConfig{V: 0.2, RRC: rrc.Paper3G()}))
		},
		"AdaptiveEMA": func() sched.Scheduler {
			return must(sched.NewAdaptiveEMA(sched.AdaptiveEMAConfig{
				Omega: 0.05, RRC: rrc.Paper3G(),
			}))
		},
		// The slot-level suites drive Predictive through the synthetic
		// per-slot forecast (see slotForecast); the engine matrix and
		// dominance suites rebuild it against real link-table forecasts.
		"Predictive": func() sched.Scheduler {
			return must(sched.NewPredictive(sched.PredictiveConfig{
				Lookahead: 6, Forecast: slotForecast{seed: 17},
			}))
		},
	}
}

// quickCfg returns a deterministic testing/quick configuration: the
// default Config seeds from the wall clock, which would make failures
// unreproducible.
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(7))}
}

// TestSchedulerFeasibilityProperty drives every scheduler — as a single
// persistent instance, so internal state (virtual queues, hysteresis,
// EWMAs) evolves across calls — over random slots and asserts the
// feasibility invariants hold without the simulator's clamp.
func TestSchedulerFeasibilityProperty(t *testing.T) {
	for name, mk := range factories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			f := func(seed uint64) bool {
				src := rng.New(seed)
				slot := RandomSlot(src, 1+src.Intn(14), src.Intn(260))
				alloc := make([]int, len(slot.Users))
				s.Allocate(slot, alloc)
				if err := CheckAllocation(slot, alloc); err != nil {
					t.Logf("seed %d: %v", seed, err)
					return false
				}
				return true
			}
			if err := quick.Check(f, quickCfg(80)); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSchedulerPermutationConservation is the metamorphic property: the
// set of users a base station serves must not depend on the order the
// Information Collector happens to list them in. Presenting the same
// physical users permuted (to a fresh scheduler instance) must conserve
// the total units allocated.
func TestSchedulerPermutationConservation(t *testing.T) {
	for name, mk := range factories(t) {
		t.Run(name, func(t *testing.T) {
			f := func(seed uint64) bool {
				src := rng.New(seed)
				n := 2 + src.Intn(10)
				slot := RandomSlot(src, n, src.Intn(120))
				perm := src.Perm(n)
				permuted, err := PermuteSlot(slot, perm)
				if err != nil {
					t.Fatal(err)
				}

				a1 := make([]int, n)
				mk().Allocate(slot, a1)
				a2 := make([]int, n)
				mk().Allocate(permuted, a2)

				if TotalUnits(a1) != TotalUnits(a2) {
					t.Logf("seed %d perm %v: total %d != %d (alloc %v vs %v)",
						seed, perm, TotalUnits(a1), TotalUnits(a2), a1, a2)
					return false
				}
				return true
			}
			if err := quick.Check(f, quickCfg(60)); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestEMAQueueRecursionProperty checks Eq. (16) across random slots for a
// persistent EMA whose queues wander positive and negative.
func TestEMAQueueRecursionProperty(t *testing.T) {
	e, err := sched.NewEMA(sched.EMAConfig{V: 0.2, RRC: rrc.Paper3G()})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		src := rng.New(seed)
		slot := RandomSlot(src, 1+src.Intn(10), src.Intn(200))
		before := QueueSnapshot(e, slot)
		alloc := make([]int, len(slot.Users))
		e.Allocate(slot, alloc)
		if err := CheckEq16(e, before, slot, alloc); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg(80)); err != nil {
		t.Error(err)
	}
}

// TestEMAFastRefDifferentialProperty is the black-box arm of the
// differential gate (the white-box sweep lives in internal/sched): from
// identical injected queue states, Allocate and AllocateRef must return
// feasible allocations with the same Eq. (21–22) objective.
func TestEMAFastRefDifferentialProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 1 + src.Intn(16)
		slot := RandomSlot(src, n, src.Intn(240))
		v := 0.05 + src.Float64()
		newEMA := func() *sched.EMA {
			e, err := sched.NewEMA(sched.EMAConfig{V: v, RRC: rrc.Paper3G()})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		// fast and ref take the slot; frozen keeps the pre-slot queues so
		// both resulting allocations can be priced under the same state.
		fast, ref, frozen := newEMA(), newEMA(), newEMA()
		for i := 0; i < n; i++ {
			q := units.Seconds(src.Uniform(-60, 60))
			fast.SetQueue(i, q)
			ref.SetQueue(i, q)
			frozen.SetQueue(i, q)
		}

		fastAlloc := make([]int, n)
		refAlloc := make([]int, n)
		fast.Allocate(slot, fastAlloc)
		ref.AllocateRef(slot, refAlloc)
		if err := CheckAllocation(slot, fastAlloc); err != nil {
			t.Logf("seed %d fast: %v", seed, err)
			return false
		}
		if err := CheckAllocation(slot, refAlloc); err != nil {
			t.Logf("seed %d ref: %v", seed, err)
			return false
		}
		got := EMAObjective(frozen, slot, fastAlloc)
		want := EMAObjective(frozen, slot, refAlloc)
		if !SameObjective(got, want) {
			t.Logf("seed %d: fast objective %v != ref %v (alloc %v vs %v)",
				seed, got, want, fastAlloc, refAlloc)
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg(100)); err != nil {
		t.Error(err)
	}
}

// TestSimulationResultInvariants runs full miniature simulations for every
// scheduler and checks the run-level invariants.
func TestSimulationResultInvariants(t *testing.T) {
	for name, mk := range factories(t) {
		t.Run(name, func(t *testing.T) {
			wl, err := SmallWorkload(11, 4)
			if err != nil {
				t.Fatal(err)
			}
			cfg := cell.PaperConfig()
			cfg.Capacity = 1200
			cfg.MaxSlots = 200
			cfg.RecordPerUserSlots = true
			cfg.Strict = true
			sim, err := cell.New(cfg, wl, mk())
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckResult(res); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestParallelDeterminism asserts DESIGN.md's determinism guarantee on
// the worker-pool path: the same seeded simulations produce identical
// results whether they run on 1 worker or many.
func TestParallelDeterminism(t *testing.T) {
	build := func(job int) (*cell.Simulator, error) {
		wl, err := SmallWorkload(uint64(100+job), 3)
		if err != nil {
			return nil, err
		}
		cfg := cell.PaperConfig()
		cfg.Capacity = 900
		cfg.MaxSlots = 150
		cfg.RecordPerUserSlots = true
		em, err := sched.NewEMA(sched.EMAConfig{V: 0.2, RRC: cfg.RRC})
		if err != nil {
			return nil, err
		}
		return cell.New(cfg, wl, em)
	}
	if err := CheckParallelDeterminism(context.Background(), []int{1, 4, 8}, 6, build); err != nil {
		t.Error(err)
	}
}
