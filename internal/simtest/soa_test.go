package simtest

import (
	"fmt"
	"slices"
	"testing"
	"testing/quick"

	"jointstream/internal/cell"
	"jointstream/internal/radio"
	"jointstream/internal/rng"
	"jointstream/internal/rrc"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// traceModels is the channel-model axis of the engine matrix: the paper's
// noisy sine plus the two stochastic generators, so the SoA engine is
// pinned against qualitatively different link dynamics (smooth periodic,
// diffusive, and bursty two-state).
var traceModels = []string{"sine+wgn", "randomwalk", "gilbert-elliott"}

// traceSessions builds a small deterministic workload whose channels come
// from the named generator. Sessions carry rate jitter (odd users) and a
// mild start stagger so the admission path fires; calling it twice with
// the same arguments yields identical workloads, which is what lets the
// differential harness build the two engine arms independently.
func traceSessions(t testing.TB, model string, users int) []*workload.Session {
	t.Helper()
	return traceSessionsSeed(t, model, users, uint64(31+len(model)))
}

// traceSessionsSeed is traceSessions with an explicit generator seed, so
// the dominance suite can sweep workloads beyond the matrix's fixed one.
func traceSessionsSeed(t testing.TB, model string, users int, seed uint64) []*workload.Session {
	t.Helper()
	src := rng.New(seed)
	mkTrace := func(i int) (signal.Trace, error) {
		switch model {
		case "sine+wgn":
			return signal.NewSine(signal.SineConfig{
				Bounds:      signal.DefaultBounds,
				PeriodSlots: 120,
				Phase:       float64(i),
				NoiseStdDBm: 10,
			}, src)
		case "randomwalk":
			return signal.NewRandomWalk(signal.RandomWalkConfig{
				Bounds:  signal.DefaultBounds,
				Start:   units.DBm(-80 - i),
				StepStd: 2.5,
			}, src)
		case "gilbert-elliott":
			return signal.NewGilbertElliott(signal.GilbertElliottConfig{
				Bounds: signal.DefaultBounds,
				Good:   -60, Bad: -100,
				PGoodToBad: 0.05, PBadToGood: 0.1,
				JitterStd: 3,
			}, src)
		}
		return nil, fmt.Errorf("unknown trace model %q", model)
	}
	sessions := make([]*workload.Session, users)
	for i := range sessions {
		tr, err := mkTrace(i)
		if err != nil {
			t.Fatalf("%s trace %d: %v", model, i, err)
		}
		sessions[i] = &workload.Session{
			ID:        i,
			Size:      units.KB(2000 + 600*i),
			BaseRate:  units.KBps(250 + 50*i),
			StartSlot: 2 * i,
			Signal:    tr,
		}
		if i%2 == 1 {
			sessions[i].RateJitter = 30
		}
	}
	return sessions
}

// TestEngineMatrixSoAvsReference is the full acceptance matrix of the
// zero-copy column view: every scheduler in the repo × every trace model
// × worker counts {1, 4, max}, production SoA engine (Run) against the
// AoS full-scan reference arm (RunReference), byte-identical Results.
// The workloads fit in a single shard, so equality is exact by
// construction — any deviation is a column-aliasing or ownership bug.
func TestEngineMatrixSoAvsReference(t *testing.T) {
	for name, mk := range factories(t) {
		for _, model := range traceModels {
			for _, workers := range []int{1, 4, 0} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", name, model, workers), func(t *testing.T) {
					build := func() (*cell.Simulator, error) {
						cfg := engineCfg()
						cfg.Workers = workers
						return cell.New(cfg, traceSessions(t, model, 6), mk())
					}
					if err := CheckEngineEquivalence(true, build); err != nil {
						t.Error(err)
					}
				})
			}
		}
	}
}

// TestSchedulerSoAEquivalence is the scheduler-level differential: the
// same random slot presented as AoS (Users) and as SoA (Cols) must yield
// identical allocations from fresh instances of every scheduler. This
// pins the accessor routing itself, independently of the engine.
func TestSchedulerSoAEquivalence(t *testing.T) {
	for name, mk := range factories(t) {
		t.Run(name, func(t *testing.T) {
			f := func(seed uint64) bool {
				src := rng.New(seed)
				n := 1 + src.Intn(14)
				aos := RandomSlot(src, n, src.Intn(260))
				soa := SoACopy(aos)
				a1 := make([]int, n)
				mk().Allocate(aos, a1)
				a2 := make([]int, n)
				mk().Allocate(soa, a2)
				if !slices.Equal(a1, a2) {
					t.Logf("seed %d: AoS alloc %v != SoA alloc %v", seed, a1, a2)
					return false
				}
				return true
			}
			if err := quick.Check(f, quickCfg(60)); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestColumnMutationObserved is the aliasing property: the SoA view is
// zero-copy, so a write through a column slice between two Allocate calls
// of the same scheduler instance must be observed by the second call —
// exactly as the engine refreshes dynamic columns in place each slot. A
// parallel AoS instance walks the same two-slot trajectory with the same
// mutation applied to its Users, so the test both proves the mutation is
// seen (the deactivated user gets nothing) and that it is seen as the
// equivalent AoS problem (no stale snapshot, no partial refresh).
func TestColumnMutationObserved(t *testing.T) {
	for name, mk := range factories(t) {
		t.Run(name, func(t *testing.T) {
			f := func(seed uint64) bool {
				src := rng.New(seed)
				n := 2 + src.Intn(12)
				cap := src.Intn(200)
				aos := RandomSlot(src, n, cap)
				soa := SoACopy(aos)
				soaSched, aosSched := mk(), mk()

				a1 := make([]int, n)
				soaSched.Allocate(soa, a1)
				warm := make([]int, n)
				aosSched.Allocate(aos, warm)

				// Mutate through the column slices: deactivate one user,
				// zero another's link bound, move a third's rate.
				i := src.Intn(n)
				j := (i + 1) % n
				k := (i + 2) % n
				soa.Cols.Active[i] = false
				soa.Cols.MaxUnits[j] = 0
				newRate := units.KBps(src.Uniform(100, 700))
				soa.Cols.Rate[k] = newRate
				aos.Users[i].Active = false
				aos.Users[j].MaxUnits = 0
				aos.Users[k].Rate = newRate

				a2 := make([]int, n)
				soaSched.Allocate(soa, a2)
				if a2[i] != 0 {
					t.Logf("seed %d: deactivation of user %d not observed (alloc %d)", seed, i, a2[i])
					return false
				}
				if a2[j] != 0 {
					t.Logf("seed %d: zeroed link bound of user %d not observed (alloc %d)", seed, j, a2[j])
					return false
				}
				ref := make([]int, n)
				aosSched.Allocate(aos, ref)
				if !slices.Equal(a2, ref) {
					t.Logf("seed %d: post-mutation SoA alloc %v != AoS alloc %v", seed, a2, ref)
					return false
				}
				return true
			}
			if err := quick.Check(f, quickCfg(40)); err != nil {
				t.Error(err)
			}
		})
	}
}

// newChurnRTMA builds an RTMA with the given incremental-order churn
// limit (0 = full sort on any churn, the reference arm; negative = the
// default threshold).
func newChurnRTMA(t testing.TB, limit int) *sched.RTMA {
	t.Helper()
	r, err := sched.NewRTMA(sched.RTMAConfig{
		Budget: 500, Radio: radio.Paper3G(), RRC: rrc.Paper3G(),
	})
	if err != nil {
		t.Fatal(err)
	}
	r.SetChurnLimit(limit)
	return r
}

// mutateChurn rewrites `churn` users' rate/admission fields in both
// column views identically, modelling the engine refreshing dynamic
// columns between slots. Rate changes invalidate the (rate, idx) sort
// key; Active flips add/remove candidates — together they drive the
// incremental order's repair-vs-resort decision.
func mutateChurn(src *rng.Source, a, b *sched.Columns, n, churn int) {
	for c := 0; c < churn; c++ {
		i := src.Intn(n)
		switch src.Intn(3) {
		case 0:
			r := units.KBps(src.Uniform(100, 700))
			a.Rate[i], b.Rate[i] = r, r
		case 1:
			act := src.Bool(0.8)
			a.Active[i], b.Active[i] = act, act
		default:
			m := int32(src.Intn(40))
			a.MaxUnits[i], b.MaxUnits[i] = m, m
			rem := units.KB(float64(m)*100 + src.Uniform(0, 1e6))
			a.RemainingKB[i], b.RemainingKB[i] = rem, rem
		}
	}
}

// FuzzRTMAChurn fuzzes the incremental smallest-rate-first order across
// the churn-threshold boundary: an RTMA with an arbitrary churn limit
// must allocate identically to the full-sort arm (limit 0) on every slot
// of a mutating sequence, because the (rate, idx) key is a strict total
// order and the repaired sequence is therefore unique. The seeds bracket
// the default threshold max(8, candidates/8) on both sides.
//
// Run the smoke mode locally with:
//
//	go test -fuzz=FuzzRTMAChurn -fuzztime=30s ./internal/simtest
func FuzzRTMAChurn(f *testing.F) {
	f.Add(uint64(1), int8(0), uint8(8))
	f.Add(uint64(2), int8(1), uint8(12))
	f.Add(uint64(3), int8(7), uint8(12))
	f.Add(uint64(4), int8(8), uint8(12))
	f.Add(uint64(5), int8(9), uint8(12))
	f.Add(uint64(6), int8(-1), uint8(16))
	f.Add(uint64(7), int8(127), uint8(20))

	f.Fuzz(func(t *testing.T, seed uint64, limit int8, nSlots uint8) {
		src := rng.New(seed)
		n := 4 + src.Intn(24)
		slots := 1 + int(nSlots)%24
		inc := newChurnRTMA(t, int(limit))
		ref := newChurnRTMA(t, 0)

		base := RandomSlot(src, n, src.Intn(220))
		slotA := SoACopy(base)
		slotB := SoACopy(base)
		a1 := make([]int, n)
		a2 := make([]int, n)
		for s := 0; s < slots; s++ {
			slotA.N, slotB.N = s, s
			inc.Allocate(slotA, a1)
			ref.Allocate(slotB, a2)
			if !slices.Equal(a1, a2) {
				t.Fatalf("slot %d (limit %d): incremental alloc %v != full-sort alloc %v", s, limit, a1, a2)
			}
			if err := CheckAllocation(slotA, a1); err != nil {
				t.Fatalf("slot %d: %v", s, err)
			}
			// Churn spans [0, n]: below, at, and above the default
			// threshold max(8, candidates/8).
			mutateChurn(src, slotA.Cols, slotB.Cols, n, src.Intn(n+1))
		}
	})
}
