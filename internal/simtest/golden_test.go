package simtest

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"jointstream/internal/cell"
	"jointstream/internal/sched"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace fixture from the current simulator output")

const goldenPath = "testdata/golden_trace.json"

// goldenRun is the pinned scenario: N = 5 paper-shaped users, 60 slots at
// a capacity tight enough (10 units/slot vs ~22 units/slot of demand)
// that EMA's DP makes real trade-offs every slot, with per-user-slot
// recording on and strict Eq. (1)/(2) checking.
func goldenRun(t *testing.T) *cell.Result {
	t.Helper()
	wl, err := SmallWorkload(42, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cell.PaperConfig()
	cfg.Capacity = 1000
	cfg.MaxSlots = 60
	cfg.RunFullHorizon = true
	cfg.RecordPerUserSlots = true
	cfg.Strict = true
	em, err := sched.NewEMA(sched.EMAConfig{V: 0.2, RRC: cfg.RRC})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cell.New(cfg, wl, em)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGoldenTrace locks the full simulator output — per-user totals,
// per-slot aggregates, and the raw per-user-slot series — byte-for-byte
// against the committed fixture, so performance work on the tick path or
// the EMA DP cannot silently drift the paper's figures. Regenerate
// deliberately with:
//
//	go test ./internal/simtest -run TestGoldenTrace -update
//
// The fixture pins amd64 float semantics (Go does not fuse multiply-adds
// there); on architectures where the compiler emits FMA the bytes may
// legitimately differ.
func TestGoldenTrace(t *testing.T) {
	res := goldenRun(t)
	if err := CheckResult(res); err != nil {
		t.Fatalf("golden run violates result invariants: %v", err)
	}
	got, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read fixture (run with -update to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("simulator output drifted from %s (got %d bytes, want %d).\n"+
			"If the change is intentional, regenerate with -update and explain the drift in the PR.",
			goldenPath, len(got), len(want))
	}
}

// TestGoldenTraceDeterminism reruns the pinned scenario and requires
// bit-identical results, independent of the fixture: determinism is a
// precondition for the byte-for-byte golden check to be meaningful.
func TestGoldenTraceDeterminism(t *testing.T) {
	a, b := goldenRun(t), goldenRun(t)
	if err := SameResults(a, b); err != nil {
		t.Fatal(err)
	}
}
