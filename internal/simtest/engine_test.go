package simtest

import (
	"testing"
	"testing/quick"

	"jointstream/internal/cell"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/units"
)

// engineCfg is the shared shape of the engine differential runs: strict
// mode re-validates the slot view (including the engine's ActiveList)
// every slot, and per-user-slot recording exercises the admission
// backfill and retirement padding paths.
func engineCfg() cell.Config {
	cfg := cell.PaperConfig()
	cfg.Capacity = 1000
	cfg.MaxSlots = 180
	cfg.RecordPerUserSlots = true
	cfg.Strict = true
	return cfg
}

// TestEngineMatchesReference pins the sharded engine to the full-scan
// reference arm bit for bit, for every scheduler in the repo, on a
// staggered workload whose users join late and finish at different
// slots (so admission, active-list maintenance and retirement all
// fire). The workloads fit in one shard, where equality is exact by
// construction — any deviation is an engine bug, not float noise.
func TestEngineMatchesReference(t *testing.T) {
	for name, mk := range factories(t) {
		t.Run(name, func(t *testing.T) {
			build := func() (*cell.Simulator, error) {
				wl, err := StaggeredWorkload(41, 6, 8)
				if err != nil {
					return nil, err
				}
				return cell.New(engineCfg(), wl, mk())
			}
			if err := CheckEngineEquivalence(true, build); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestEngineMatchesReferenceProperty widens the pin across random
// seeds, user counts and arrival patterns (including the paper's
// all-start-at-zero case when the interarrival draw is zero).
func TestEngineMatchesReferenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		users := 1 + src.Intn(12)
		var inter units.Seconds
		if src.Bool(0.7) {
			inter = units.Seconds(src.Uniform(1, 12))
		}
		build := func() (*cell.Simulator, error) {
			wl, err := StaggeredWorkload(seed, users, inter)
			if err != nil {
				return nil, err
			}
			// Schedulers are stateful, so each arm gets its own instance.
			em, err := sched.NewEMA(sched.EMAConfig{V: 0.2, RRC: engineCfg().RRC})
			if err != nil {
				return nil, err
			}
			return cell.New(engineCfg(), wl, em)
		}
		if err := CheckEngineEquivalence(true, build); err != nil {
			t.Logf("seed %d users %d inter %v: %v", seed, users, inter, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg(12)); err != nil {
		t.Error(err)
	}
}

// TestMultiShardMatchesReference forces many shards (ShardSize 8 over
// 48 users → 6 shards) and checks the engine still reproduces the
// reference up to the documented reassociation tolerance: per-user
// state exactly, slot aggregates to 1e-9 relative.
func TestMultiShardMatchesReference(t *testing.T) {
	build := func() (*cell.Simulator, error) {
		wl, err := StaggeredWorkload(77, 48, 2)
		if err != nil {
			return nil, err
		}
		cfg := engineCfg()
		cfg.Capacity = 4000
		cfg.MaxSlots = 120
		cfg.ShardSize = 8
		return cell.New(cfg, wl, sched.NewDefault())
	}
	if err := CheckEngineEquivalence(false, build); err != nil {
		t.Error(err)
	}
}

// TestShardedWorkerDeterminism asserts the tentpole guarantee of the
// sharded tick path: with the shard layout pinned (ShardSize 8 over 96
// users → 12 shards per full slot), every worker count produces a
// byte-identical Result.
func TestShardedWorkerDeterminism(t *testing.T) {
	build := func(workers int) (*cell.Simulator, error) {
		wl, err := StaggeredWorkload(13, 96, 1)
		if err != nil {
			return nil, err
		}
		cfg := engineCfg()
		cfg.Capacity = 8000
		cfg.MaxSlots = 100
		cfg.ShardSize = 8
		cfg.Workers = workers
		em, err := sched.NewEMA(sched.EMAConfig{V: 0.2, RRC: cfg.RRC})
		if err != nil {
			return nil, err
		}
		return cell.New(cfg, wl, em)
	}
	if err := CheckWorkerDeterminism([]int{1, 2, 4, 8}, build); err != nil {
		t.Error(err)
	}
}
