// Package simtest is the reusable correctness harness for the scheduling
// and simulation layers: invariant checkers, random slot/workload
// generators, and determinism helpers shared by the unit tests, the
// differential tests gating the EMA DP fast path, and the fuzz targets.
//
// The checkers deliberately re-derive every invariant from first
// principles instead of delegating to the code under test (e.g. they do
// not call sched.Slot.Validate), so a bug cannot hide by breaking the
// production check and the production path in the same way. The
// invariants covered:
//
//   - Feasibility (Eq. 1–2): Σϕ ≤ capacity, ϕ_i ≤ MaxUnits, ϕ_i ≥ 0, and
//     inactive users receive nothing (CheckAllocation).
//   - Virtual-queue recursion (Eq. 16): EMA's PC_i advances by τ − ϕδ/p
//     for active users and stays frozen for inactive ones (CheckEq16).
//   - Run sanity: energies and rebuffering non-negative, series lengths
//     consistent with the slot count (CheckResult).
//   - Determinism: identical seeds produce byte-identical results across
//     worker counts in the parallel paths (CheckParallelDeterminism).
package simtest

import (
	"context"
	"fmt"
	"math"
	"reflect"

	"jointstream/internal/cell"
	"jointstream/internal/pool"
	"jointstream/internal/sched"
	"jointstream/internal/units"
)

// CheckAllocation verifies the per-slot feasibility invariants of
// Eq. (1)/(2) plus the inactivity rule, independently of
// sched.Slot.Validate.
func CheckAllocation(slot *sched.Slot, alloc []int) error {
	if len(alloc) != slot.NumUsers() {
		return fmt.Errorf("simtest: allocation length %d != %d users", len(alloc), slot.NumUsers())
	}
	total := 0
	for i, a := range alloc {
		switch {
		case a < 0:
			return fmt.Errorf("simtest: user %d allocated %d < 0", i, a)
		case !slot.ActiveAt(i) && a != 0:
			return fmt.Errorf("simtest: inactive user %d allocated %d units", i, a)
		case a > slot.MaxUnitsAt(i):
			return fmt.Errorf("simtest: user %d allocated %d > link bound %d", i, a, slot.MaxUnitsAt(i))
		}
		total += a
	}
	if total > slot.CapacityUnits {
		return fmt.Errorf("simtest: total allocation %d > capacity %d", total, slot.CapacityUnits)
	}
	return nil
}

// QueueSnapshot captures EMA's virtual queues for the users of a slot,
// for a later CheckEq16 against the post-Allocate state.
func QueueSnapshot(e *sched.EMA, slot *sched.Slot) []units.Seconds {
	qs := make([]units.Seconds, slot.NumUsers())
	for i := range qs {
		qs[i] = e.Queue(slot.IndexAt(i))
	}
	return qs
}

// CheckEq16 verifies the virtual-queue recursion of Eq. (16) for one
// allocated slot: for every active user i,
//
//	PC_i' = PC_i + τ − ϕ_i·δ/p_i
//
// and inactive users' queues stay frozen. before must be a QueueSnapshot
// taken immediately before the Allocate that produced alloc.
func CheckEq16(e *sched.EMA, before []units.Seconds, slot *sched.Slot, alloc []int) error {
	if len(before) != slot.NumUsers() {
		return fmt.Errorf("simtest: snapshot length %d != %d users", len(before), slot.NumUsers())
	}
	for i := 0; i < slot.NumUsers(); i++ {
		active := slot.ActiveAt(i)
		want := float64(before[i])
		if active {
			t := 0.0
			if alloc[i] > 0 {
				t = float64(alloc[i]) * float64(slot.Unit) / float64(slot.RateAt(i))
			}
			want += float64(slot.Tau) - t
		}
		got := float64(e.Queue(slot.IndexAt(i)))
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			return fmt.Errorf("simtest: user %d queue %v after slot, want %v (Eq. 16, alloc=%d, active=%v)",
				i, got, want, alloc[i], active)
		}
	}
	return nil
}

// EMAObjective recomputes Σ_i f(i, ϕ_i) of Eq. (21–22) from public state:
// f = V·E(ϕ) + PC_i·(τ − ϕδ/p), with E the transmission energy for ϕ > 0
// and the slot's incremental tail energy for ϕ = 0. Call it BEFORE
// Allocate advances the queues. The differential tests use it to compare
// the deque DP against AllocateRef without reaching into unexported
// state.
func EMAObjective(e *sched.EMA, slot *sched.Slot, alloc []int) float64 {
	var sum float64
	for i := 0; i < slot.NumUsers(); i++ {
		var energy, t float64
		if alloc[i] > 0 {
			energy = float64(slot.EnergyPerKBAt(i)) * float64(alloc[i]) * float64(slot.Unit)
			t = float64(alloc[i]) * float64(slot.Unit) / float64(slot.RateAt(i))
		} else if !slot.NeverActiveAt(i) {
			energy = float64(e.RRC().TailIncrement(slot.TailGapAt(i), slot.Tau))
		}
		sum += e.V()*energy + float64(e.Queue(slot.IndexAt(i)))*(float64(slot.Tau)-t)
	}
	return sum
}

// SameObjective reports whether two Eq. (21–22) objective values agree up
// to floating-point reassociation noise (the deque DP groups the affine
// terms differently from the reference DP).
func SameObjective(got, want float64) bool {
	return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
}

// CheckResult verifies run-level sanity invariants of a simulation result:
// non-negative energy and rebuffering everywhere, and per-slot/per-user
// series lengths consistent with the recorded slot count.
func CheckResult(res *cell.Result) error {
	if res.Slots < 0 {
		return fmt.Errorf("simtest: negative slot count %d", res.Slots)
	}
	if len(res.PerSlot) != res.Slots {
		return fmt.Errorf("simtest: %d per-slot records for %d slots", len(res.PerSlot), res.Slots)
	}
	for i, u := range res.Users {
		if u.TransEnergy < 0 || u.TailEnergy < 0 {
			return fmt.Errorf("simtest: user %d negative energy (trans %v, tail %v)", i, u.TransEnergy, u.TailEnergy)
		}
		if u.Rebuffer < 0 {
			return fmt.Errorf("simtest: user %d negative rebuffering %v", i, u.Rebuffer)
		}
		if u.CompletionSlot >= res.Slots {
			return fmt.Errorf("simtest: user %d completed at slot %d of a %d-slot run", i, u.CompletionSlot, res.Slots)
		}
	}
	for n, st := range res.PerSlot {
		if st.Energy < 0 || st.Rebuffer < 0 || st.UsedUnits < 0 {
			return fmt.Errorf("simtest: slot %d negative aggregate %+v", n, st)
		}
		if st.Fairness < 0 || st.Fairness > 1+1e-9 || math.IsNaN(st.Fairness) {
			return fmt.Errorf("simtest: slot %d Jain index %v outside [0,1]", n, st.Fairness)
		}
	}
	for i := range res.RebufferSamples {
		if len(res.RebufferSamples[i]) != res.Slots || len(res.EnergySamples[i]) != res.Slots {
			return fmt.Errorf("simtest: user %d sample series length != %d slots", i, res.Slots)
		}
	}
	return nil
}

// SameResults reports the first difference between two simulation results,
// or nil when they are deeply equal. Used by the determinism checks.
func SameResults(a, b *cell.Result) error {
	if a.SchedulerName != b.SchedulerName {
		return fmt.Errorf("simtest: scheduler %q vs %q", a.SchedulerName, b.SchedulerName)
	}
	if a.Slots != b.Slots {
		return fmt.Errorf("simtest: slot count %d vs %d", a.Slots, b.Slots)
	}
	if !reflect.DeepEqual(a.Users, b.Users) {
		return fmt.Errorf("simtest: per-user totals diverged")
	}
	if !reflect.DeepEqual(a.PerSlot, b.PerSlot) {
		return fmt.Errorf("simtest: per-slot aggregates diverged")
	}
	if !reflect.DeepEqual(a.RebufferSamples, b.RebufferSamples) ||
		!reflect.DeepEqual(a.EnergySamples, b.EnergySamples) {
		return fmt.Errorf("simtest: per-user-slot samples diverged")
	}
	if a.ClampEvents != b.ClampEvents {
		return fmt.Errorf("simtest: clamp events %d vs %d", a.ClampEvents, b.ClampEvents)
	}
	return nil
}

// SamePhysics is SameResults without the scheduler-name comparison: two
// *different* schedulers produced what must be the same run. The
// myopic-degeneration differentials use it to pin Predictive's K=0 (and
// no-information) modes byte-for-byte against the Default baseline.
func SamePhysics(a, b *cell.Result) error {
	if a.Slots != b.Slots {
		return fmt.Errorf("simtest: slot count %d vs %d", a.Slots, b.Slots)
	}
	if !reflect.DeepEqual(a.Users, b.Users) {
		return fmt.Errorf("simtest: per-user totals diverged")
	}
	if !reflect.DeepEqual(a.PerSlot, b.PerSlot) {
		return fmt.Errorf("simtest: per-slot aggregates diverged")
	}
	if !reflect.DeepEqual(a.RebufferSamples, b.RebufferSamples) ||
		!reflect.DeepEqual(a.EnergySamples, b.EnergySamples) {
		return fmt.Errorf("simtest: per-user-slot samples diverged")
	}
	if a.ClampEvents != b.ClampEvents {
		return fmt.Errorf("simtest: clamp events %d vs %d", a.ClampEvents, b.ClampEvents)
	}
	return nil
}

// SameResultsApprox compares two simulation results allowing the slot
// aggregates to differ by floating-point reassociation: the sharded tick
// engine sums per-shard partials instead of a flat per-user loop, so
// with more than one shard the PerSlot energies, rebuffering and
// fairness regroup additions. Everything accumulated per user —
// per-user totals, per-user-slot samples — and every integer field must
// still match exactly.
func SameResultsApprox(a, b *cell.Result, rtol float64) error {
	if a.SchedulerName != b.SchedulerName {
		return fmt.Errorf("simtest: scheduler %q vs %q", a.SchedulerName, b.SchedulerName)
	}
	if a.Slots != b.Slots {
		return fmt.Errorf("simtest: slot count %d vs %d", a.Slots, b.Slots)
	}
	if !reflect.DeepEqual(a.Users, b.Users) {
		return fmt.Errorf("simtest: per-user totals diverged")
	}
	if !reflect.DeepEqual(a.RebufferSamples, b.RebufferSamples) ||
		!reflect.DeepEqual(a.EnergySamples, b.EnergySamples) {
		return fmt.Errorf("simtest: per-user-slot samples diverged")
	}
	if a.ClampEvents != b.ClampEvents {
		return fmt.Errorf("simtest: clamp events %d vs %d", a.ClampEvents, b.ClampEvents)
	}
	if len(a.PerSlot) != len(b.PerSlot) {
		return fmt.Errorf("simtest: per-slot lengths %d vs %d", len(a.PerSlot), len(b.PerSlot))
	}
	near := func(x, y float64) bool {
		return math.Abs(x-y) <= rtol*(1+math.Abs(y))
	}
	for n := range a.PerSlot {
		x, y := a.PerSlot[n], b.PerSlot[n]
		if x.UsedUnits != y.UsedUnits {
			return fmt.Errorf("simtest: slot %d used units %d vs %d", n, x.UsedUnits, y.UsedUnits)
		}
		if !near(float64(x.Energy), float64(y.Energy)) {
			return fmt.Errorf("simtest: slot %d energy %v vs %v", n, x.Energy, y.Energy)
		}
		if !near(float64(x.Rebuffer), float64(y.Rebuffer)) {
			return fmt.Errorf("simtest: slot %d rebuffer %v vs %v", n, x.Rebuffer, y.Rebuffer)
		}
		if !near(x.Fairness, y.Fairness) {
			return fmt.Errorf("simtest: slot %d fairness %v vs %v", n, x.Fairness, y.Fairness)
		}
	}
	return nil
}

// CheckWorkerDeterminism runs one simulation per worker count — each
// built fresh by build(workers), which must thread its argument into
// cell.Config.Workers — and verifies the Results are byte-identical.
// This is the executable form of Config.Workers' contract: the worker
// count parallelizes the tick path but may never change the physics,
// because the shard layout and the reduction order don't depend on it.
func CheckWorkerDeterminism(workerCounts []int, build func(workers int) (*cell.Simulator, error)) error {
	if len(workerCounts) < 2 {
		return fmt.Errorf("simtest: need at least two worker counts to compare")
	}
	run := func(workers int) (*cell.Result, error) {
		sim, err := build(workers)
		if err != nil {
			return nil, err
		}
		return sim.Run()
	}
	base, err := run(workerCounts[0])
	if err != nil {
		return fmt.Errorf("simtest: workers=%d: %w", workerCounts[0], err)
	}
	for _, w := range workerCounts[1:] {
		got, err := run(w)
		if err != nil {
			return fmt.Errorf("simtest: workers=%d: %w", w, err)
		}
		if err := SameResults(base, got); err != nil {
			return fmt.Errorf("simtest: result differs between workers=%d and workers=%d: %w",
				workerCounts[0], w, err)
		}
	}
	return nil
}

// CheckEngineEquivalence builds the same simulation twice and runs one
// copy through the sharded engine (Run) and the other through the
// full-scan reference arm (RunReference). With exact=true the Results
// must be byte-identical — guaranteed whenever the live-user count never
// exceeds one shard — otherwise the slot aggregates may differ by
// reassociation noise (SameResultsApprox at 1e-9).
func CheckEngineEquivalence(exact bool, build func() (*cell.Simulator, error)) error {
	refSim, err := build()
	if err != nil {
		return err
	}
	ref, err := refSim.RunReference()
	if err != nil {
		return fmt.Errorf("simtest: reference engine: %w", err)
	}
	sim, err := build()
	if err != nil {
		return err
	}
	got, err := sim.Run()
	if err != nil {
		return fmt.Errorf("simtest: sharded engine: %w", err)
	}
	if exact {
		if err := SameResults(got, ref); err != nil {
			return fmt.Errorf("simtest: sharded engine deviates from reference: %w", err)
		}
		return nil
	}
	if err := SameResultsApprox(got, ref, 1e-9); err != nil {
		return fmt.Errorf("simtest: sharded engine deviates from reference: %w", err)
	}
	return nil
}

// CheckParallelDeterminism runs `jobs` independent simulations — each
// built fresh by build(job) — through pool.Map once per worker count and
// verifies every job's result is identical across counts. It is the
// executable form of DESIGN.md's determinism guarantee: worker
// parallelism must never leak into the physics.
func CheckParallelDeterminism(ctx context.Context, workerCounts []int, jobs int, build func(job int) (*cell.Simulator, error)) error {
	if len(workerCounts) == 0 || jobs <= 0 {
		return fmt.Errorf("simtest: need at least one worker count and one job")
	}
	idx := make([]int, jobs)
	for i := range idx {
		idx[i] = i
	}
	run := func(workers int) ([]*cell.Result, error) {
		return pool.Map(ctx, workers, idx, func(_ context.Context, job int) (*cell.Result, error) {
			sim, err := build(job)
			if err != nil {
				return nil, err
			}
			return sim.Run()
		})
	}
	base, err := run(workerCounts[0])
	if err != nil {
		return fmt.Errorf("simtest: workers=%d: %w", workerCounts[0], err)
	}
	for _, w := range workerCounts[1:] {
		got, err := run(w)
		if err != nil {
			return fmt.Errorf("simtest: workers=%d: %w", w, err)
		}
		for j := range base {
			if err := SameResults(base[j], got[j]); err != nil {
				return fmt.Errorf("simtest: job %d differs between workers=%d and workers=%d: %w",
					j, workerCounts[0], w, err)
			}
		}
	}
	return nil
}
