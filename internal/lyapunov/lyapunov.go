// Package lyapunov implements the Lyapunov-optimization machinery behind
// the paper's EMA scheduler (§V): per-user virtual rebuffering queues
// (Eq. 16), the quadratic Lyapunov function (Eq. 17), the one-slot drift
// bound constant B (Eq. 18), and the Theorem-1 performance bounds
//
//	PE∞ ≤ E* + B/V          (energy optimality gap shrinks with V)
//	PC∞ ≤ (B + V·E*)/ε      (rebuffering backlog grows with V)
//
// The experiment harness uses these to sanity-check measured EMA runs
// against their theoretical envelopes and to illustrate the V trade-off.
package lyapunov

import (
	"fmt"

	"jointstream/internal/units"
)

// Queue is one user's virtual rebuffering-time queue PC_i. The zero value
// is an empty queue.
type Queue struct {
	value units.Seconds
}

// Value returns the current queue length (may be negative: buffered
// headroom).
func (q *Queue) Value() units.Seconds { return q.value }

// Update applies Eq. (16): PC(n+1) = PC(n) + τ − t, where t is the
// playback time of the data delivered this slot, and returns the new value.
func (q *Queue) Update(tau, t units.Seconds) units.Seconds {
	q.value += tau - t
	return q.value
}

// Reset empties the queue.
func (q *Queue) Reset() { q.value = 0 }

// Lyapunov returns the quadratic Lyapunov function of Eq. (17),
// L = ½ Σ PC_i², over a set of queue values.
func Lyapunov(queues []units.Seconds) float64 {
	var sum float64
	for _, v := range queues {
		sum += float64(v) * float64(v)
	}
	return sum / 2
}

// DriftBound returns the constant B of Eq. (18),
// B = ½ Σ_{i=1..N} (τ² + t_max²), where t_max bounds the playback time
// any one-slot shard can sustain for any user.
func DriftBound(n int, tau, tMax units.Seconds) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("lyapunov: non-positive user count %d", n)
	}
	if tau <= 0 {
		return 0, fmt.Errorf("lyapunov: non-positive slot length %v", tau)
	}
	if tMax < 0 {
		return 0, fmt.Errorf("lyapunov: negative t_max %v", tMax)
	}
	return 0.5 * float64(n) * (float64(tau)*float64(tau) + float64(tMax)*float64(tMax)), nil
}

// TMax computes the t_max entering B: the largest playback duration one
// slot's delivery can sustain, ⌊τ·v_max/δ⌋·δ/p_min — the biggest shard at
// the highest link rate divided by the lowest encoding rate.
func TMax(tau units.Seconds, vMax units.KBps, unit units.KB, pMin units.KBps) (units.Seconds, error) {
	if vMax <= 0 || unit <= 0 || pMin <= 0 {
		return 0, fmt.Errorf("lyapunov: non-positive parameter (vMax=%v unit=%v pMin=%v)", vMax, unit, pMin)
	}
	maxUnits := int(float64(vMax) * float64(tau) / float64(unit))
	return units.Seconds(float64(maxUnits) * float64(unit) / float64(pMin)), nil
}

// Bounds holds the Theorem-1 envelopes for one (V, E*, ε) configuration.
type Bounds struct {
	// EnergyBound is E* + B/V: an upper bound on the long-run average
	// energy per slot (summed over users, same unit as E*).
	EnergyBound float64
	// RebufferBound is (B + V·E*)/ε: an upper bound on the long-run
	// average total queue backlog.
	RebufferBound float64
}

// Theorem1 evaluates the bounds. eStar is the optimal (minimum achievable)
// average per-slot energy E*; epsilon is the slack with which a stationary
// policy can serve the demand (Eq. 25): E{τ − t} ≤ −... the paper requires
// ε > 0 for the backlog bound to be finite.
func Theorem1(b, v, eStar, epsilon float64) (Bounds, error) {
	if b < 0 {
		return Bounds{}, fmt.Errorf("lyapunov: negative B %v", b)
	}
	if v <= 0 {
		return Bounds{}, fmt.Errorf("lyapunov: non-positive V %v", v)
	}
	if eStar < 0 {
		return Bounds{}, fmt.Errorf("lyapunov: negative E* %v", eStar)
	}
	if epsilon <= 0 {
		return Bounds{}, fmt.Errorf("lyapunov: non-positive epsilon %v", epsilon)
	}
	return Bounds{
		EnergyBound:   eStar + b/v,
		RebufferBound: (b + v*eStar) / epsilon,
	}, nil
}
