package lyapunov

import (
	"math"
	"testing"
	"testing/quick"

	"jointstream/internal/units"
)

func TestQueueUpdateEq16(t *testing.T) {
	var q Queue
	// Slot with no delivery: grows by tau.
	if got := q.Update(1, 0); got != 1 {
		t.Errorf("Update(1,0) = %v, want 1", got)
	}
	// Slot delivering 3s of playback: shrinks by 2.
	if got := q.Update(1, 3); got != -1 {
		t.Errorf("queue = %v, want -1", got)
	}
	if q.Value() != -1 {
		t.Errorf("Value = %v", q.Value())
	}
	q.Reset()
	if q.Value() != 0 {
		t.Error("Reset failed")
	}
}

func TestLyapunovFunction(t *testing.T) {
	// L = ½(4 + 9) = 6.5
	if got := Lyapunov([]units.Seconds{2, -3}); got != 6.5 {
		t.Errorf("Lyapunov = %v, want 6.5", got)
	}
	if Lyapunov(nil) != 0 {
		t.Error("Lyapunov(nil) != 0")
	}
}

func TestDriftBound(t *testing.T) {
	// B = ½·N·(τ² + tmax²) = ½·10·(1+25) = 130
	b, err := DriftBound(10, 1, 5)
	if err != nil || b != 130 {
		t.Errorf("DriftBound = %v, %v; want 130", b, err)
	}
	if _, err := DriftBound(0, 1, 5); err == nil {
		t.Error("zero users accepted")
	}
	if _, err := DriftBound(10, 0, 5); err == nil {
		t.Error("zero tau accepted")
	}
	if _, err := DriftBound(10, 1, -1); err == nil {
		t.Error("negative tmax accepted")
	}
}

func TestTMax(t *testing.T) {
	// vMax=4277 KB/s, unit=100KB, tau=1: 42 units = 4200KB; pMin=300 KB/s
	// -> 14 s.
	got, err := TMax(1, 4277, 100, 300)
	if err != nil {
		t.Fatal(err)
	}
	if got != 14 {
		t.Errorf("TMax = %v, want 14", got)
	}
	if _, err := TMax(1, 0, 100, 300); err == nil {
		t.Error("zero vMax accepted")
	}
}

func TestTheorem1Bounds(t *testing.T) {
	b, err := Theorem1(130, 2, 50, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.EnergyBound-(50+65)) > 1e-12 {
		t.Errorf("EnergyBound = %v, want 115", b.EnergyBound)
	}
	if math.Abs(b.RebufferBound-(130+100)/0.5) > 1e-12 {
		t.Errorf("RebufferBound = %v, want 460", b.RebufferBound)
	}
}

func TestTheorem1Validation(t *testing.T) {
	cases := []struct {
		name                 string
		b, v, eStar, epsilon float64
	}{
		{"negative B", -1, 1, 1, 1},
		{"zero V", 1, 0, 1, 1},
		{"negative E*", 1, 1, -1, 1},
		{"zero epsilon", 1, 1, 1, 0},
	}
	for _, c := range cases {
		if _, err := Theorem1(c.b, c.v, c.eStar, c.epsilon); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

// Property: the V trade-off moves the two bounds in opposite directions.
func TestTheorem1TradeoffProperty(t *testing.T) {
	f := func(vRaw uint8) bool {
		v1 := float64(vRaw%100) + 1
		v2 := v1 * 2
		b1, err1 := Theorem1(100, v1, 50, 1)
		b2, err2 := Theorem1(100, v2, 50, 1)
		if err1 != nil || err2 != nil {
			return false
		}
		return b2.EnergyBound < b1.EnergyBound && b2.RebufferBound > b1.RebufferBound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: queue telescoping — after any update sequence the queue equals
// n·τ − Σt (Eq. 15/16 equivalence).
func TestQueueTelescopingProperty(t *testing.T) {
	f := func(ts []uint8) bool {
		var q Queue
		var sum float64
		for _, raw := range ts {
			tSec := float64(raw) / 16
			q.Update(1, units.Seconds(tSec))
			sum += tSec
		}
		want := float64(len(ts)) - sum
		return math.Abs(float64(q.Value())-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
