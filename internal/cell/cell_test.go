package cell

import (
	"math"
	"testing"

	"jointstream/internal/radio"
	"jointstream/internal/rng"
	"jointstream/internal/rrc"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// tinyConfig is a fast configuration for unit tests.
func tinyConfig() Config {
	cfg := PaperConfig()
	cfg.MaxSlots = 500
	return cfg
}

// tinySessions builds a small deterministic workload.
func tinySessions(t *testing.T, n int, sizeKB units.KB, rate units.KBps) []*workload.Session {
	t.Helper()
	sessions := make([]*workload.Session, n)
	for i := 0; i < n; i++ {
		sessions[i] = &workload.Session{
			ID:       i,
			Size:     sizeKB,
			BaseRate: rate,
			Signal:   signal.Constant(-60, signal.DefaultBounds),
		}
	}
	return sessions
}

func TestConfigValidate(t *testing.T) {
	good := PaperConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	mutations := []struct {
		name string
		f    func(*Config)
	}{
		{"tau", func(c *Config) { c.Tau = 0 }},
		{"unit", func(c *Config) { c.Unit = 0 }},
		{"capacity", func(c *Config) { c.Capacity = 0 }},
		{"slots", func(c *Config) { c.MaxSlots = 0 }},
		{"radio", func(c *Config) { c.Radio = radio.Model{} }},
		{"rrc", func(c *Config) { c.RRC = rrc.Profile{Pd: -1} }},
		{"workers", func(c *Config) { c.Workers = -1 }},
		{"shardsize", func(c *Config) { c.ShardSize = -4 }},
	}
	for _, m := range mutations {
		c := PaperConfig()
		m.f(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", m.name)
		}
	}
}

func TestNewValidation(t *testing.T) {
	cfg := tinyConfig()
	sessions := tinySessions(t, 2, 1000, 400)
	if _, err := New(cfg, sessions, nil); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := New(cfg, nil, sched.NewDefault()); err == nil {
		t.Error("empty sessions accepted")
	}
	bad := tinySessions(t, 2, 1000, 400)
	bad[1].ID = 7
	if _, err := New(cfg, bad, sched.NewDefault()); err == nil {
		t.Error("non-dense session IDs accepted")
	}
}

func TestSingleUserCompletesAndAccounts(t *testing.T) {
	cfg := tinyConfig()
	// 1 MB video at 400 KB/s: 2.5 s of content.
	sessions := tinySessions(t, 1, 1000, 400)
	sim, err := New(cfg, sessions, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	u := res.Users[0]
	if u.DeliveredKB != 1000 {
		t.Errorf("delivered %v, want exactly 1000 (last shard capped)", u.DeliveredKB)
	}
	if u.CompletionSlot < 0 {
		t.Error("playback never completed")
	}
	if u.TransEnergy <= 0 {
		t.Error("no transmission energy recorded")
	}
	if res.SchedulerName != "Default" {
		t.Errorf("scheduler name %q", res.SchedulerName)
	}
	// Run should stop shortly after completion, not at MaxSlots.
	if res.Slots >= cfg.MaxSlots {
		t.Errorf("run did not stop early: %d slots", res.Slots)
	}
}

func TestDeliveredNeverExceedsVideoSize(t *testing.T) {
	cfg := tinyConfig()
	sessions := tinySessions(t, 3, 1234, 400) // not a multiple of the 100KB unit
	sim, _ := New(cfg, sessions, sched.NewDefault())
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range res.Users {
		if u.DeliveredKB != 1234 {
			t.Errorf("user %d delivered %v, want exactly 1234", i, u.DeliveredKB)
		}
	}
}

func TestTailEnergyAfterCompletion(t *testing.T) {
	cfg := tinyConfig()
	cfg.RunFullHorizon = true
	cfg.MaxSlots = 60
	sessions := tinySessions(t, 1, 500, 400) // finishes quickly
	sim, _ := New(cfg, sessions, sched.NewDefault())
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// After the last transfer the radio must ride one full tail.
	wantTail := cfg.RRC.MaxTailEnergy()
	if math.Abs(float64(res.Users[0].TailEnergy-wantTail)) > 1e-6 {
		t.Errorf("tail energy %v, want one full tail %v", res.Users[0].TailEnergy, wantTail)
	}
	if res.Slots != 60 {
		t.Errorf("full horizon run stopped at %d", res.Slots)
	}
}

func TestStrictModeCatchesViolations(t *testing.T) {
	cfg := tinyConfig()
	cfg.Strict = true
	sessions := tinySessions(t, 1, 1000, 400)
	sim, _ := New(cfg, sessions, overAllocator{})
	if _, err := sim.Run(); err == nil {
		t.Error("strict mode missed an over-allocation")
	}
}

func TestClampMode(t *testing.T) {
	cfg := tinyConfig()
	sessions := tinySessions(t, 1, 1000, 400)
	sim, _ := New(cfg, sessions, overAllocator{})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ClampEvents == 0 {
		t.Error("clamp events not recorded")
	}
	if res.Users[0].DeliveredKB != 1000 {
		t.Errorf("clamped run delivered %v", res.Users[0].DeliveredKB)
	}
}

// overAllocator always requests more than permitted.
type overAllocator struct{}

func (overAllocator) Name() string { return "over" }
func (overAllocator) Allocate(slot *sched.Slot, alloc []int) {
	for i := range alloc {
		alloc[i] = slot.MaxUnitsAt(i)*2 + 10
	}
}

func TestCapacityContention(t *testing.T) {
	cfg := tinyConfig()
	cfg.Capacity = 1000 // 10 units/slot for everyone
	sessions := tinySessions(t, 4, 5000, 400)
	sim, _ := New(cfg, sessions, sched.NewDefault())
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.PerSlot {
		if st.UsedUnits > 10 {
			t.Fatalf("slot used %d units, capacity 10", st.UsedUnits)
		}
	}
	// Greedy default under contention: user 0 finishes first.
	if res.Users[0].CompletionSlot < 0 {
		t.Error("user 0 never completed")
	}
	if res.Users[0].CompletionSlot > res.Users[3].CompletionSlot && res.Users[3].CompletionSlot >= 0 {
		t.Error("greedy default should favor user 0")
	}
}

func TestFairnessIndexRange(t *testing.T) {
	cfg := tinyConfig()
	cfg.Capacity = 1000
	sessions := tinySessions(t, 4, 5000, 400)
	sim, _ := New(cfg, sessions, sched.NewDefault())
	res, _ := sim.Run()
	for i, st := range res.PerSlot {
		if st.Fairness < 0.2499 || st.Fairness > 1.0001 {
			t.Fatalf("slot %d fairness %v outside [1/N, 1]", i, st.Fairness)
		}
	}
}

func TestPerUserSlotRecording(t *testing.T) {
	cfg := tinyConfig()
	cfg.RecordPerUserSlots = true
	sessions := tinySessions(t, 2, 1000, 400)
	sim, _ := New(cfg, sessions, sched.NewDefault())
	res, _ := sim.Run()
	if len(res.RebufferSamples) != 2 || len(res.EnergySamples) != 2 {
		t.Fatal("per-user samples missing")
	}
	for i := range res.RebufferSamples {
		if len(res.RebufferSamples[i]) != res.Slots {
			t.Errorf("user %d has %d rebuffer samples, want %d", i, len(res.RebufferSamples[i]), res.Slots)
		}
	}
}

func TestMetricsAggregation(t *testing.T) {
	cfg := tinyConfig()
	sessions := tinySessions(t, 2, 1000, 400)
	sim, _ := New(cfg, sessions, sched.NewDefault())
	res, _ := sim.Run()

	var wantEnergy units.MJ
	var wantRebuffer units.Seconds
	for _, u := range res.Users {
		wantEnergy += u.Energy()
		wantRebuffer += u.Rebuffer
	}
	if res.TotalEnergy() != wantEnergy {
		t.Error("TotalEnergy mismatch")
	}
	if res.TotalRebuffer() != wantRebuffer {
		t.Error("TotalRebuffer mismatch")
	}
	n := float64(len(res.Users))
	gamma := float64(res.Slots)
	if math.Abs(float64(res.PE())-float64(wantEnergy)/(n*gamma)) > 1e-9 {
		t.Error("PE mismatch")
	}
	if math.Abs(float64(res.PC())-float64(wantRebuffer)/(n*gamma)) > 1e-9 {
		t.Error("PC mismatch")
	}
	if math.Abs(float64(res.MeanEnergyPerUser())-float64(wantEnergy)/n) > 1e-9 {
		t.Error("MeanEnergyPerUser mismatch")
	}
	if math.Abs(float64(res.MeanRebufferPerUser())-float64(wantRebuffer)/n) > 1e-9 {
		t.Error("MeanRebufferPerUser mismatch")
	}

	// Per-slot aggregates must sum to the user totals.
	var slotEnergy units.MJ
	var slotRebuffer units.Seconds
	for _, st := range res.PerSlot {
		slotEnergy += st.Energy
		slotRebuffer += st.Rebuffer
	}
	if math.Abs(float64(slotEnergy-wantEnergy)) > 1e-6 {
		t.Errorf("per-slot energy %v != user total %v", slotEnergy, wantEnergy)
	}
	if math.Abs(float64(slotRebuffer-wantRebuffer)) > 1e-6 {
		t.Errorf("per-slot rebuffer %v != user total %v", slotRebuffer, wantRebuffer)
	}
}

func TestEmptyResultMetrics(t *testing.T) {
	r := &Result{}
	if r.PE() != 0 || r.PC() != 0 || r.MeanEnergyPerUser() != 0 || r.MeanRebufferPerUser() != 0 {
		t.Error("empty result metrics should be zero")
	}
}

func TestStaggeredStartDelaysActivity(t *testing.T) {
	cfg := tinyConfig()
	sessions := tinySessions(t, 2, 1000, 400)
	sessions[1].StartSlot = 10
	cfg.RecordPerUserSlots = true
	sim, _ := New(cfg, sessions, sched.NewDefault())
	res, _ := sim.Run()
	// User 1 must not receive energy or rebuffer before slot 10.
	for n := 0; n < 10 && n < res.Slots; n++ {
		if res.EnergySamples[1][n] != 0 {
			t.Errorf("slot %d: user 1 consumed energy before start", n)
		}
		if res.RebufferSamples[1][n] != 0 {
			t.Errorf("slot %d: user 1 rebuffered before start", n)
		}
	}
}

func TestSimulatorSingleUse(t *testing.T) {
	// The engine consumes admission and retirement state, so a second run
	// on the same Simulator would silently simulate an empty cell. Both
	// entry points must refuse instead.
	cfg := tinyConfig()
	sim, err := New(cfg, tinySessions(t, 2, 1000, 400), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Error("second Run on a consumed simulator accepted")
	}
	if _, err := sim.RunReference(); err == nil {
		t.Error("RunReference on a consumed simulator accepted")
	}

	ref, err := New(cfg, tinySessions(t, 2, 1000, 400), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.RunReference(); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(); err == nil {
		t.Error("Run after RunReference accepted")
	}
}

func TestResultAccessorsMatchUncached(t *testing.T) {
	// The memoized aggregate the engine caches at Finalize must agree bit
	// for bit with the accessors' fallback scan over res.Users.
	cfg := tinyConfig()
	sim, err := New(cfg, tinySessions(t, 3, 1000, 400), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.agg == nil {
		t.Fatal("Run did not finalize the result")
	}
	type snap struct {
		pe, totalE, tailE, transPerSlot units.MJ
		pc, rebuffer                    units.Seconds
	}
	take := func() snap {
		return snap{
			pe: res.PE(), totalE: res.TotalEnergy(), tailE: res.TotalTailEnergy(),
			transPerSlot: res.TransEnergyPerActiveSlot(),
			pc:           res.PC(), rebuffer: res.TotalRebuffer(),
		}
	}
	cached := take()
	res.agg = nil // drop the memo; accessors fall back to scanning
	if uncached := take(); cached != uncached {
		t.Errorf("memoized accessors %+v != uncached scan %+v", cached, uncached)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() *Result {
		cfg := tinyConfig()
		cfg.MaxSlots = 300
		wl, err := workload.Generate(workload.PaperDefaults(5), rng.New(77))
		if err != nil {
			t.Fatal(err)
		}
		// Shrink videos so the run completes quickly.
		for _, s := range wl {
			s.Size = 20000
		}
		sim, err := New(cfg, wl, sched.NewDefault())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Slots != b.Slots || a.TotalEnergy() != b.TotalEnergy() || a.TotalRebuffer() != b.TotalRebuffer() {
		t.Error("same-seed runs diverged")
	}
}

// Sanity: RTMA yields higher fairness than Default under contention.
func TestRTMAFairerThanDefaultEndToEnd(t *testing.T) {
	mkSessions := func() []*workload.Session {
		wl, err := workload.Generate(workload.PaperDefaults(10), rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range wl {
			s.Size = 100000 // 100 MB to keep the test fast
		}
		return wl
	}
	cfg := tinyConfig()
	cfg.MaxSlots = 400
	cfg.Capacity = 3000 // heavy contention: demand ~4500 KB/s
	cfg.Strict = true

	runWith := func(s sched.Scheduler) *Result {
		sim, err := New(cfg, mkSessions(), s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	defRes := runWith(sched.NewDefault())
	rt, err := sched.NewRTMA(sched.RTMAConfig{Budget: 2000, Radio: cfg.Radio, RRC: cfg.RRC})
	if err != nil {
		t.Fatal(err)
	}
	rtRes := runWith(rt)

	meanFair := func(r *Result) float64 {
		var sum float64
		for _, st := range r.PerSlot {
			sum += st.Fairness
		}
		return sum / float64(len(r.PerSlot))
	}
	df, rf := meanFair(defRes), meanFair(rtRes)
	if rf <= df {
		t.Errorf("RTMA fairness %v not above Default %v", rf, df)
	}
	if rtRes.TotalRebuffer() >= defRes.TotalRebuffer() {
		t.Errorf("RTMA rebuffer %v not below Default %v",
			rtRes.TotalRebuffer(), defRes.TotalRebuffer())
	}
}

func TestEnergyBreakdownAccessors(t *testing.T) {
	cfg := tinyConfig()
	cfg.RunFullHorizon = true
	cfg.MaxSlots = 40
	sessions := tinySessions(t, 2, 1000, 400)
	sim, _ := New(cfg, sessions, sched.NewDefault())
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	var wantTail, wantTrans units.MJ
	active := 0
	for _, u := range res.Users {
		wantTail += u.TailEnergy
		wantTrans += u.TransEnergy
		active += u.ActiveSlots
	}
	if res.TotalTailEnergy() != wantTail {
		t.Errorf("TotalTailEnergy = %v, want %v", res.TotalTailEnergy(), wantTail)
	}
	if active == 0 {
		t.Fatal("no active slots")
	}
	want := wantTrans / units.MJ(active)
	if math.Abs(float64(res.TransEnergyPerActiveSlot()-want)) > 1e-9 {
		t.Errorf("TransEnergyPerActiveSlot = %v, want %v", res.TransEnergyPerActiveSlot(), want)
	}
	// A result with no active slots reports zero.
	empty := &Result{Users: []UserTotals{{}}}
	if empty.TransEnergyPerActiveSlot() != 0 {
		t.Error("no-active-slot result not zero")
	}
}

func TestMeanQualityZeroWhenNeverPlayed(t *testing.T) {
	u := UserTotals{}
	if u.MeanQuality() != 0 {
		t.Error("MeanQuality of fresh user not zero")
	}
}
