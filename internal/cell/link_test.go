package cell

import (
	"reflect"
	"testing"

	"jointstream/internal/radio"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// linkTestTraces builds one trace per stochastic generator so the
// flattening property is checked against qualitatively different
// channel dynamics, not just the paper's sine.
func linkTestTraces(t *testing.T, n int) map[string][]signal.Trace {
	t.Helper()
	src := rng.New(7)
	mk := func(name string, build func(i int) (signal.Trace, error)) []signal.Trace {
		out := make([]signal.Trace, n)
		for i := range out {
			tr, err := build(i)
			if err != nil {
				t.Fatalf("%s trace %d: %v", name, i, err)
			}
			out[i] = tr
		}
		return out
	}
	return map[string][]signal.Trace{
		"sine+wgn": mk("sine", func(i int) (signal.Trace, error) {
			return signal.NewSine(signal.SineConfig{
				Bounds:      signal.DefaultBounds,
				PeriodSlots: 120,
				Phase:       float64(i),
				NoiseStdDBm: 10,
			}, src)
		}),
		"randomwalk": mk("walk", func(i int) (signal.Trace, error) {
			return signal.NewRandomWalk(signal.RandomWalkConfig{
				Bounds:  signal.DefaultBounds,
				Start:   units.DBm(-80 - i),
				StepStd: 2.5,
			}, src)
		}),
		"gilbert-elliott": mk("ge", func(i int) (signal.Trace, error) {
			return signal.NewGilbertElliott(signal.GilbertElliottConfig{
				Bounds: signal.DefaultBounds,
				Good:   -60, Bad: -100,
				PGoodToBad: 0.05, PBadToGood: 0.1,
				JitterStd: 3,
			}, src)
		}),
	}
}

// TestLinkTableMatchesAnalytic is the flattening property: for every
// generator, every user, and every slot, the packed row equals what the
// uncompiled tick path would compute from the interfaces — signal,
// throughput, per-KB energy, required rate, and the floored Eq. (1)
// link limit. Equality is ==, not approximate.
func TestLinkTableMatchesAnalytic(t *testing.T) {
	const users, slots = 5, 400
	cfg := PaperConfig()
	cfg.MaxSlots = slots
	for name, traces := range linkTestTraces(t, users) {
		t.Run(name, func(t *testing.T) {
			sessions := make([]*workload.Session, users)
			for i := range sessions {
				sessions[i] = &workload.Session{
					ID: i, Size: 5000, BaseRate: units.KBps(300 + 50*i), Signal: traces[i],
				}
			}
			lt, err := CompileLink(cfg, sessions)
			if err != nil {
				t.Fatal(err)
			}
			if lt.Users() != users || lt.Slots() != slots {
				t.Fatalf("table shape %dx%d, want %dx%d", lt.Users(), lt.Slots(), users, slots)
			}
			tau, unit := float64(cfg.Tau), float64(cfg.Unit)
			for n := 0; n < slots; n++ {
				for i, sess := range sessions {
					idx := n*users + i
					sig := sess.Signal.At(n)
					if lt.sig[idx] != sig {
						t.Fatalf("user %d slot %d: sig %v != %v", i, n, lt.sig[idx], sig)
					}
					if v := cfg.Radio.Throughput.Throughput(sig); lt.link[idx] != v {
						t.Fatalf("user %d slot %d: link %v != %v", i, n, lt.link[idx], v)
					}
					if p := cfg.Radio.Power.EnergyPerKB(sig); lt.epkb[idx] != p {
						t.Fatalf("user %d slot %d: energy/KB %v != %v", i, n, lt.epkb[idx], p)
					}
					if rate := sess.RateAt(n); lt.rate[idx] != rate {
						t.Fatalf("user %d slot %d: rate %v != %v", i, n, lt.rate[idx], rate)
					}
					want := floorUnits(float64(cfg.Radio.Throughput.Throughput(sig))*tau, unit)
					if int(lt.linkUnits[idx]) != want {
						t.Fatalf("user %d slot %d: linkUnits %d != %d", i, n, lt.linkUnits[idx], want)
					}
				}
			}
		})
	}
}

// TestRunBitwiseEqualWithLinkTable runs the full engine with the table
// enabled and disabled and requires identical Results — flattening is
// plumbing, not physics.
func TestRunBitwiseEqualWithLinkTable(t *testing.T) {
	wl, err := workload.Generate(workload.PaperDefaults(8), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	base := PaperConfig()
	base.MaxSlots = 1500
	runWith := func(maxRows int) *Result {
		cfg := base
		cfg.LinkTableMaxRows = maxRows
		sim, err := New(cfg, wl, sched.NewDefault())
		if err != nil {
			t.Fatal(err)
		}
		if (maxRows >= 0) != (sim.link != nil) {
			t.Fatalf("maxRows=%d: link table presence %v", maxRows, sim.link != nil)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := runWith(0)     // auto-compiled table
	without := runWith(-1) // interface path
	if !reflect.DeepEqual(with, without) {
		t.Error("Result differs between link-table and analytic runs")
	}
}

// TestAutoLinkTableCap checks the size gate: a run over the row cap
// falls back to the interface path instead of allocating a huge table.
func TestAutoLinkTableCap(t *testing.T) {
	wl, err := workload.Generate(workload.PaperDefaults(4), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := PaperConfig()
	cfg.MaxSlots = 100
	cfg.LinkTableMaxRows = 4*100 - 1 // one row short of fitting
	sim, err := New(cfg, wl, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	if sim.link != nil {
		t.Error("over-cap run compiled a table")
	}
	cfg.LinkTableMaxRows = 4 * 100
	sim, err = New(cfg, wl, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	if sim.link == nil {
		t.Error("at-cap run skipped the table")
	}
}

// TestConfigLinkCompatibility rejects caller-supplied tables that do not
// match the run.
func TestConfigLinkCompatibility(t *testing.T) {
	wl, err := workload.Generate(workload.PaperDefaults(4), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := PaperConfig()
	cfg.MaxSlots = 100
	lt, err := CompileLink(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}

	good := cfg
	good.Link = lt
	if _, err := New(good, wl, sched.NewDefault()); err != nil {
		t.Fatalf("matching table rejected: %v", err)
	}

	short := cfg
	short.Link = lt
	short.MaxSlots = 101
	if _, err := New(short, wl, sched.NewDefault()); err == nil {
		t.Error("table with too few slots accepted")
	}

	grid := cfg
	grid.Link = lt
	grid.Tau = cfg.Tau * 2
	if _, err := New(grid, wl, sched.NewDefault()); err == nil {
		t.Error("table with mismatched slot grid accepted")
	}

	fewer, err := workload.Generate(workload.PaperDefaults(3), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	usersCfg := cfg
	usersCfg.Link = lt
	if _, err := New(usersCfg, fewer, sched.NewDefault()); err == nil {
		t.Error("table with wrong user count accepted")
	}

	// Same shape and slot grid, different radio model: the sampled-row
	// re-derivation must reject it instead of silently replaying the
	// wrong physics.
	model := cfg
	model.Link = lt
	model.Radio = radio.LTE()
	if _, err := New(model, wl, sched.NewDefault()); err == nil {
		t.Error("table compiled under a different radio model accepted")
	}

	// Same shape, grid, and model, different workload: the sampled rows'
	// signal/rate must disagree with the run's sessions.
	other, err := workload.Generate(workload.PaperDefaults(4), rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	wlCfg := cfg
	wlCfg.Link = lt
	if _, err := New(wlCfg, other, sched.NewDefault()); err == nil {
		t.Error("table compiled from a different workload accepted")
	}
}

// TestRunReferenceKeepsLinkTable pins that the reference arm bypasses the
// compiled table without mutating the Simulator: s.link survives the run,
// so nothing observing the Simulator concurrently can see it flip.
func TestRunReferenceKeepsLinkTable(t *testing.T) {
	wl, err := workload.Generate(workload.PaperDefaults(4), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := PaperConfig()
	cfg.MaxSlots = 200
	sim, err := New(cfg, wl, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	if sim.link == nil {
		t.Fatal("expected an auto-compiled link table")
	}
	if _, err := sim.RunReference(); err != nil {
		t.Fatal(err)
	}
	if sim.link == nil {
		t.Error("RunReference cleared the simulator's link table")
	}
}

// TestCompileLinkUsesLUTForPaperModel pins that the paper model goes
// through the exact quantized radio table (the devirtualized path) and
// that MemoryBytes reflects the packed layout.
func TestCompileLinkUsesLUTForPaperModel(t *testing.T) {
	wl, err := workload.Generate(workload.PaperDefaults(3), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := PaperConfig()
	cfg.MaxSlots = 50
	lt, err := CompileLink(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if !lt.ViaLUT() {
		t.Error("paper model did not compile through the exact LUT")
	}
	if got, want := lt.MemoryBytes(), int64(3*50)*linkRowBytes; got != want {
		t.Errorf("MemoryBytes %d, want %d", got, want)
	}
}
