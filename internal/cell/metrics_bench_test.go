package cell

import (
	"testing"

	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// BenchmarkResultMetrics compares the finalized (memoized) metric
// accessors against the per-call scan over res.Users they replace, on a
// paper-scale (N = 40) run. Callers that plot sweeps read PE/PC once
// per point; experiments and tests hammer every accessor per run, which
// is where the memo pays.
func BenchmarkResultMetrics(b *testing.B) {
	cfg := PaperConfig()
	cfg.MaxSlots = 300
	cfg.RunFullHorizon = true
	wl, err := workload.Generate(workload.PaperDefaults(40), rng.New(8))
	if err != nil {
		b.Fatal(err)
	}
	sim, err := New(cfg, wl, sched.NewDefault())
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		b.Fatal(err)
	}
	var sinkE units.MJ
	var sinkS units.Seconds
	readAll := func() {
		sinkE += res.PE() + res.TotalEnergy() + res.TotalTailEnergy() + res.TransEnergyPerActiveSlot()
		sinkS += res.PC() + res.TotalRebuffer()
	}
	b.Run("memoized", func(b *testing.B) {
		res.Finalize()
		for i := 0; i < b.N; i++ {
			readAll()
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res.agg = nil
			readAll()
		}
	})
	if sinkE < 0 || sinkS < 0 {
		b.Fatal("impossible negative totals")
	}
}
