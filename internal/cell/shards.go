package cell

import (
	"jointstream/internal/units"
)

// This file holds the sharded engine's per-shard bodies and the generic
// (gather-indexed) per-user commit. The bodies dispatch to the dense
// column kernels in kernels.go whenever a slot's live list is the
// identity [0, N); otherwise they walk the live list, whose indices are
// data-dependent and therefore inherently bounds-checked.

// prepareShardBody is the prepare phase for one shard: refresh the
// dynamic columns of the shard's live users for slot s.curSlot, zero
// their allocations, and collect the shard's active-index segment.
func (s *Simulator) prepareShardBody(sh int) {
	lo, hi := shardBounds(sh, s.curShards, len(s.curLive))
	act := s.shardAct[sh][:0]
	if s.curDense && s.colsTabled() && s.abrCtls == nil {
		act = s.prepareDenseLink(s.curSlot, lo, hi, act)
	} else {
		tabled := s.colsTabled()
		alloc := s.alloc
		for _, i := range s.curLive[lo:hi] {
			if s.prepareColsUser(tabled, s.curSlot, i) {
				act = append(act, i)
			}
			alloc[i] = 0
		}
	}
	s.shardAct[sh] = act
}

// commitShardBody is the plain commit phase for one shard (final slot of
// a run, where there is no next slot to fuse a prepare into).
func (s *Simulator) commitShardBody(sh int) {
	lo, hi := shardBounds(sh, s.curShards, len(s.curLive))
	acc := &s.shardAcc[sh]
	*acc = slotAccum{errUser: -1}
	res := s.curRes
	for _, i := range s.curLive[lo:hi] {
		if err := s.commitUserCols(s.curSlot, i, res, acc, s.cols.EnergyPerKB, s.cols.Rate); err != nil {
			acc.err = err
			acc.errUser = i
			return
		}
		if s.retireEligible(i) {
			s.users[i].retired = true
			acc.retires++
		}
	}
}

// fusedShardBody is the fused commit+prepare pass for one shard: each
// live user is committed for slot s.curSlot (priced with the pinned
// prevEpkb/prevRate columns — s.cols already aliases slot curSlot+1) and
// immediately prepared for slot curSlot+1. Per user the order is exactly
// commit-then-prepare, which matches the phase-separated engine because
// neither phase reads another user's state.
func (s *Simulator) fusedShardBody(sh int) {
	lo, hi := shardBounds(sh, s.curShards, len(s.curLive))
	acc := &s.shardAcc[sh]
	*acc = slotAccum{errUser: -1}
	act := s.shardAct[sh][:0]
	if s.curDense && s.colsTabled() && s.abrCtls == nil && !s.cfg.RecordPerUserSlots {
		act = s.fusedDenseLink(s.curSlot, lo, hi, act, acc)
	} else {
		res := s.curRes
		tabled := s.colsTabled()
		alloc := s.alloc
		next := s.curSlot + 1
		for _, i := range s.curLive[lo:hi] {
			if err := s.commitUserCols(s.curSlot, i, res, acc, s.prevEpkb, s.prevRate); err != nil {
				acc.err = err
				acc.errUser = i
				break
			}
			if s.retireEligible(i) {
				s.users[i].retired = true
				acc.retires++
			}
			if s.prepareColsUser(tabled, next, i) {
				act = append(act, i)
			}
			alloc[i] = 0
		}
	}
	s.shardAct[sh] = act
}

// commitUserCols applies slot slotIdx's allocation outcome to user i —
// energy per Eq. (5), RRC transition, buffer recursion Eq. (7), totals,
// samples — accumulating the slot-level aggregates into acc. It is the
// SoA engine's commit: the per-user view fields are read straight from
// the column arrays (epkbCol/rateCol are passed explicitly because the
// fused pass prices slot n with columns the view has already moved past).
// The math must mirror commitUser — the reference engine's accessor-based
// commit — operation for operation; the engine-vs-reference matrix tests
// in internal/simtest pin the two bit for bit.
func (s *Simulator) commitUserCols(slotIdx, i int, res *Result, acc *slotAccum, epkbCol []units.MJ, rateCol []units.KBps) error {
	u := &s.users[i]
	ru := &res.Users[i]
	granted := s.alloc[i]

	// Energy per Eq. (5): transmission when scheduled, tail when not.
	var deliveredKB units.KB
	var slotEnergy units.MJ
	if granted > 0 {
		deliveredKB = units.KB(float64(granted) * float64(s.cfg.Unit))
		// Cap the last shard at the true remainder so byte accounting
		// stays exact even though units are discrete.
		if rem := s.cols.RemainingKB[i]; deliveredKB > rem {
			deliveredKB = rem
		}
		slotEnergy = units.MJ(float64(epkbCol[i]) * float64(deliveredKB))
		ru.TransEnergy += slotEnergy
		ru.ActiveSlots++
		// Machine.Transfer: promote to DCH, reset the inactivity gap.
		u.everActive = true
		u.tailGap = 0
	} else {
		// Machine.IdleSlot: a device that has never transferred sits in
		// IDLE and neither burns tail energy nor ages a gap; otherwise the
		// slot burns E_tail(gap+τ) − E_tail(gap) per Eq. (4).
		if u.everActive {
			slotEnergy = s.cfg.RRC.TailIncrement(u.tailGap, s.cfg.Tau)
			u.tailGap += s.cfg.Tau
		}
		ru.TailEnergy += slotEnergy
	}
	ru.DeliveredKB += deliveredKB

	// Buffer dynamics only for users that have started.
	var c units.Seconds
	if slotIdx >= int(u.startSlot) {
		viewRate := rateCol[i]
		wasComplete := u.buf.PlaybackComplete()
		var err error
		c, err = u.buf.Advance(deliveredKB, viewRate, s.cfg.Tau)
		if err != nil {
			return err
		}
		if !wasComplete && u.buf.PlaybackComplete() {
			ru.CompletionSlot = slotIdx
			acc.completions++
		}
		if !wasComplete {
			ru.QualitySum += float64(viewRate)
			ru.QualitySlots++
			if u.prevRate != 0 && viewRate != u.prevRate {
				ru.QualitySwitches++
			}
			u.prevRate = viewRate
		}

		// Fairness sample F_i = delivered/needed for users with a need.
		if s.cols.Active[i] {
			needKB := float64(viewRate) * float64(s.cfg.Tau)
			if rem := float64(s.cols.RemainingKB[i]); needKB > rem {
				needKB = rem
			}
			if needKB > 0 {
				f := float64(deliveredKB) / needKB
				if f > 1 {
					f = 1
				}
				acc.fairNum += f
				acc.fairDen += f * f
				acc.fairCount++
			}
		}
	}
	ru.Rebuffer += c
	acc.rebuffer += c
	acc.energy += slotEnergy
	acc.usedUnits += granted

	if s.cfg.RecordPerUserSlots {
		res.RebufferSamples[i] = append(res.RebufferSamples[i], float64(c))
		res.EnergySamples[i] = append(res.EnergySamples[i], float64(slotEnergy))
	}
	return nil
}
