package cell

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"jointstream/internal/sched"
)

// runTiny executes one run of the given config over a fresh tiny
// workload and returns its result.
func runTiny(t *testing.T, cfg Config) *Result {
	t.Helper()
	sim, err := New(cfg, tinySessions(t, 3, 2000, 400), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOutageValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Outages = []Outage{{From: -1, To: 5}}
	if err := cfg.Validate(); err == nil {
		t.Error("negative outage start accepted")
	}
	cfg.Outages = []Outage{{From: 10, To: 5}}
	if err := cfg.Validate(); err == nil {
		t.Error("inverted outage window accepted")
	}
	cfg.Outages = []Outage{{From: 5, To: 5}}
	if err := cfg.Validate(); err != nil {
		t.Errorf("empty outage window rejected: %v", err)
	}
}

// TestOutageDegradesAndRecovers: a capacity-zero window mid-session must
// stall delivery (rebuffering accrues), keep every user admitted, and
// let the sessions finish once capacity returns.
func TestOutageDegradesAndRecovers(t *testing.T) {
	cfg := tinyConfig()
	// Throttle capacity so a 2000 KB video spans many slots and the
	// outage lands mid-session.
	cfg.Capacity = 400
	cfg.Outages = []Outage{{From: 2, To: 6}}
	res := runTiny(t, cfg)
	if res.DegradedSlots != 4 {
		t.Errorf("degraded slots = %d, want 4", res.DegradedSlots)
	}
	for i, u := range res.Users {
		if u.DeliveredKB != 2000 {
			t.Errorf("user %d delivered %v KB, want 2000 (survived the outage)", i, u.DeliveredKB)
		}
		if u.CompletionSlot < 0 {
			t.Errorf("user %d never completed", i)
		}
	}
	// Outage slots must carry zero allocation.
	for n := 2; n < 6; n++ {
		if res.PerSlot[n].UsedUnits != 0 {
			t.Errorf("slot %d used %d units during outage", n, res.PerSlot[n].UsedUnits)
		}
	}
	// The stall must cost rebuffering relative to the undisturbed run.
	base := runTiny(t, func() Config {
		c := tinyConfig()
		c.Capacity = 400
		return c
	}())
	if res.TotalRebuffer() <= base.TotalRebuffer() {
		t.Errorf("outage rebuffer %v not worse than baseline %v", res.TotalRebuffer(), base.TotalRebuffer())
	}
	if base.DegradedSlots != 0 {
		t.Errorf("baseline degraded slots = %d, want 0", base.DegradedSlots)
	}
}

// TestEmptyOutageListMatchesBaseline: a nil and an empty Outages list
// must reproduce the undisturbed run byte for byte.
func TestEmptyOutageListMatchesBaseline(t *testing.T) {
	base := runTiny(t, tinyConfig())
	empty := func() Config {
		c := tinyConfig()
		c.Outages = []Outage{}
		return c
	}()
	got := runTiny(t, empty)
	if !reflect.DeepEqual(base, got) {
		t.Error("empty outage list changed the result")
	}
}

// TestOutageReferenceParity: the production and reference engines must
// agree on a run with outage windows.
func TestOutageReferenceParity(t *testing.T) {
	cfg := tinyConfig()
	cfg.Capacity = 400
	cfg.Outages = []Outage{{From: 1, To: 3}, {From: 8, To: 9}}
	mk := func() *Simulator {
		sim, err := New(cfg, tinySessions(t, 3, 2000, 400), sched.NewDefault())
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	prod, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mk().RunReference()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(prod, ref) {
		t.Errorf("engines diverge under outages: prod %d slots/%d degraded, ref %d slots/%d degraded",
			prod.Slots, prod.DegradedSlots, ref.Slots, ref.DegradedSlots)
	}
}

// TestRunCtxCancellation: a cancelled context stops both engines
// promptly with ctx.Err() in the chain.
func TestRunCtxCancellation(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(*Simulator, context.Context) (*Result, error)
	}{
		{"Run", (*Simulator).RunCtx},
		{"RunReference", (*Simulator).RunReferenceCtx},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			sim, err := New(tinyConfig(), tinySessions(t, 2, 2000, 400), sched.NewDefault())
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			res, err := tc.run(sim, ctx)
			if res != nil || !errors.Is(err, context.Canceled) {
				t.Errorf("cancelled run returned (%v, %v)", res, err)
			}
			if el := time.Since(start); el > time.Second {
				t.Errorf("cancelled run took %v", el)
			}
		})
	}
}
