package cell

import (
	"context"
	"math"
	"reflect"
	"testing"

	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/workload"
)

// tiledWorkload draws a small but structurally rich workload: staggered
// arrivals (admission paths), VBR rates (rate columns vary per slot) and
// sizes small enough that sessions complete (retirement paths). Stateless
// traces keep it identical however the link rows are compiled or read.
func tiledWorkload(t *testing.T, users int) []*workload.Session {
	t.Helper()
	cfg := workload.Config{
		Users:            users,
		SizeMin:          1500,
		SizeMax:          6000,
		RateMin:          300,
		RateMax:          600,
		RateJitterFrac:   0.2,
		MeanInterarrival: 2,
		StatelessSignal:  true,
	}
	cfg.Signal = workload.PaperDefaults(users).Signal
	sessions, err := workload.Generate(cfg, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	return sessions
}

func tiledConfig() Config {
	cfg := PaperConfig()
	cfg.MaxSlots = 300
	// A few users per unit of capacity would never contend; shrink the
	// cell so scheduling decisions (and clamps) actually happen.
	cfg.Capacity = 3000
	return cfg
}

// TestTiledRowsMatchMonolithic is the tiling keystone: every slot's
// column window served by a tiled table — across window sizes that do and
// do not divide the horizon, including the degenerate window 1 — is
// byte-identical to the monolithic table's, in forward replay and after a
// backward jump (block recompilation both directions).
func TestTiledRowsMatchMonolithic(t *testing.T) {
	sessions := tiledWorkload(t, 6)
	cfg := tiledConfig()
	mono, err := CompileLink(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{1, 7, 64, 256} {
		tiled, err := CompileLinkTiled(cfg, sessions, window)
		if err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		if got := tiled.TileWindow(); got != window {
			t.Fatalf("window %d: TileWindow() = %d", window, got)
		}
		wantBytes := int64(len(sessions)) * int64(window) * linkRowBytes
		if got := tiled.MemoryBytes(); got != wantBytes {
			t.Fatalf("window %d: MemoryBytes() = %d, want %d", window, got, wantBytes)
		}
		slotsToCheck := make([]int, 0, cfg.MaxSlots+3)
		for n := 0; n < cfg.MaxSlots; n++ {
			slotsToCheck = append(slotsToCheck, n)
		}
		// Backward jumps force a re-residency of earlier blocks.
		slotsToCheck = append(slotsToCheck, 0, cfg.MaxSlots/2, cfg.MaxSlots-1)
		for _, n := range slotsToCheck {
			mSig, mLink, mEpkb, mRate, mLU := mono.slotColumns(n)
			tSig, tLink, tEpkb, tRate, tLU := tiled.slotColumns(n)
			for i := range mSig {
				if mSig[i] != tSig[i] || mLink[i] != tLink[i] || mEpkb[i] != tEpkb[i] ||
					mRate[i] != tRate[i] || mLU[i] != tLU[i] {
					t.Fatalf("window %d slot %d user %d: tiled row != monolithic row", window, n, i)
				}
			}
		}
	}
}

// TestTiledWindowAtLeastHorizonIsMonolithic pins the degenerate case: a
// window covering the horizon returns a plain monolithic (shareable)
// table, not a tiled one.
func TestTiledWindowAtLeastHorizonIsMonolithic(t *testing.T) {
	sessions := tiledWorkload(t, 3)
	cfg := tiledConfig()
	lt, err := CompileLinkTiled(cfg, sessions, cfg.MaxSlots)
	if err != nil {
		t.Fatal(err)
	}
	if lt.TileWindow() != 0 {
		t.Fatalf("window == horizon compiled a tiled table (window %d)", lt.TileWindow())
	}
	if _, err := CompileLinkTiled(cfg, sessions, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

// TestTiledRunByteIdentical runs the full engine over monolithic and
// tiled link tables (several windows, including window 1 where every
// fused pass crosses a tile) and requires reflect.DeepEqual Results —
// per-slot totals, per-user totals, recorded samples, everything.
func TestTiledRunByteIdentical(t *testing.T) {
	cases := []struct {
		name   string
		mut    func(*Config)
		record bool
	}{
		{"plain", func(*Config) {}, false},
		{"recorded", func(*Config) {}, true},
		{"outage", func(c *Config) { c.Outages = []Outage{{From: 40, To: 60}} }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sessions := tiledWorkload(t, 8)
			base := tiledConfig()
			base.RecordPerUserSlots = tc.record
			tc.mut(&base)
			run := func(cfg Config) *Result {
				t.Helper()
				// Sessions carry no memo state (stateless traces, but VBR
				// memos are shared pointers — prewarmed identically), so
				// reusing them across runs is safe.
				sim, err := New(cfg, sessions, sched.NewDefault())
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			want := run(base)
			if want.TotalEnergy() <= 0 || want.Slots == 0 {
				t.Fatal("degenerate baseline run")
			}
			for _, window := range []int{1, 7, 64} {
				cfg := base
				cfg.LinkTileSlots = window
				got := run(cfg)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("window %d: tiled Result differs from monolithic", window)
				}
			}
		})
	}
}

// TestSteppedRunMatchesRunCtx pins the Start/Advance/Finish contract:
// a run advanced in ragged epoch chunks produces a byte-identical Result
// to the one-shot RunCtx, tiled and monolithic alike.
func TestSteppedRunMatchesRunCtx(t *testing.T) {
	for _, window := range []int{0, 16} {
		sessions := tiledWorkload(t, 8)
		cfg := tiledConfig()
		cfg.LinkTileSlots = window

		simA, err := New(cfg, sessions, sched.NewDefault())
		if err != nil {
			t.Fatal(err)
		}
		want, err := simA.Run()
		if err != nil {
			t.Fatal(err)
		}

		simB, err := New(cfg, sessions, sched.NewDefault())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := simB.Advance(10); err == nil {
			t.Fatal("Advance before Start accepted")
		}
		if err := simB.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Ragged, tile-misaligned epochs, plus redundant calls at the end.
		done := false
		for upto := 13; !done; upto += 13 {
			var err error
			done, err = simB.Advance(upto)
			if err != nil {
				t.Fatal(err)
			}
		}
		if again, err := simB.Advance(math.MaxInt / 2); err != nil || !again {
			t.Fatalf("Advance after done: (%v, %v)", again, err)
		}
		got := simB.Finish()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("window %d: stepped Result differs from RunCtx", window)
		}
	}
}

// TestAdvanceCancellation: a cancelled Start context stops Advance within
// a slot, with RunCtx's error shape.
func TestAdvanceCancellation(t *testing.T) {
	sessions := tiledWorkload(t, 4)
	cfg := tiledConfig()
	sim, err := New(cfg, sessions, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := sim.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Advance(5); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := sim.Advance(cfg.MaxSlots); err == nil {
		t.Fatal("cancelled Advance succeeded")
	}
}

// TestTiledForecastMatchesMonolithic: the tiled table's computed forecast
// equals the monolithic table's column forecast at every coordinate, and
// reading it never disturbs the resident window the engine depends on.
func TestTiledForecastMatchesMonolithic(t *testing.T) {
	sessions := tiledWorkload(t, 5)
	cfg := tiledConfig()
	mono, err := CompileLink(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := CompileLinkTiled(cfg, sessions, 32)
	if err != nil {
		t.Fatal(err)
	}
	mf, tf := mono.Forecast(), tiled.Forecast()
	if mf.HorizonSlots() != tf.HorizonSlots() {
		t.Fatalf("horizons differ: %d vs %d", mf.HorizonSlots(), tf.HorizonSlots())
	}
	base := tiled.base
	for n := 0; n < cfg.MaxSlots; n += 17 {
		for i := 0; i < len(sessions); i++ {
			if mp, tp := mf.PredictedEnergyPerKB(n, i), tf.PredictedEnergyPerKB(n, i); mp != tp {
				t.Fatalf("slot %d user %d: price %v != %v", n, i, tp, mp)
			}
			if ml, tl := mf.PredictedLinkUnits(n, i), tf.PredictedLinkUnits(n, i); ml != tl {
				t.Fatalf("slot %d user %d: link units %d != %d", n, i, tl, ml)
			}
		}
	}
	if tiled.base != base {
		t.Fatal("forecast reads moved the resident window")
	}
	if _, ok := tf.(sched.SlotWindower); ok {
		t.Fatal("tiled forecast must not offer window views (tile advances invalidate them)")
	}
	if _, err := NewNoisyForecast(tiled, 1, 0.1); err == nil {
		t.Fatal("noisy forecast accepted a tiled table")
	}
	if _, err := NewNoisyForecast(mono, 1, 0.1); err != nil {
		t.Fatalf("noisy forecast rejected a monolithic table: %v", err)
	}
}

// TestTiledSlotViewsMatch: the exported per-slot column views are served
// identically (bitwise) by both table kinds.
func TestTiledSlotViewsMatch(t *testing.T) {
	sessions := tiledWorkload(t, 4)
	cfg := tiledConfig()
	mono, err := CompileLink(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := CompileLinkTiled(cfg, sessions, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 9, 10, 123, cfg.MaxSlots - 1, 5} {
		me, te := mono.SlotEnergyPerKB(n), tiled.SlotEnergyPerKB(n)
		ml, tl := mono.SlotLinkUnits(n), tiled.SlotLinkUnits(n)
		for i := range me {
			if me[i] != te[i] || ml[i] != tl[i] {
				t.Fatalf("slot %d user %d: slot views differ", n, i)
			}
		}
	}
}

// TestTiledTableNotShareable: a tiled table is single-owner mutable state
// and must be rejected by Config.Link's compatibility gate.
func TestTiledTableNotShareable(t *testing.T) {
	sessions := tiledWorkload(t, 4)
	cfg := tiledConfig()
	tiled, err := CompileLinkTiled(cfg, sessions, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Link = tiled
	if _, err := New(cfg, sessions, sched.NewDefault()); err == nil {
		t.Fatal("tiled table accepted via Config.Link")
	}
	bad := tiledConfig()
	bad.LinkTileSlots = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative LinkTileSlots accepted")
	}
}

// TestTiledPredictiveRunMatches runs the Predictive scheduler — the one
// consumer of Forecast — under both table kinds and requires identical
// results: the computed forecast must steer scheduling exactly like the
// compiled columns do.
func TestTiledPredictiveRunMatches(t *testing.T) {
	sessions := tiledWorkload(t, 6)
	base := tiledConfig()
	run := func(cfg Config) *Result {
		t.Helper()
		sim, err := New(cfg, sessions, sched.NewDefault())
		if err != nil {
			t.Fatal(err)
		}
		fc := sim.link.Forecast()
		pred, err := sched.NewPredictive(sched.PredictiveConfig{Forecast: fc, Lookahead: 8})
		if err != nil {
			t.Fatal(err)
		}
		sim.sched = pred
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(base)
	cfg := base
	cfg.LinkTileSlots = 16
	got := run(cfg)
	// The scheduler name differs only if construction differed; compare
	// the physics outcome.
	if !reflect.DeepEqual(want, got) {
		t.Fatal("predictive run under tiled table differs from monolithic")
	}
}
