// Package cell implements the slotted base-station simulator that drives
// the paper's evaluation: each slot it assembles the cross-layer view of
// every user (signal, throughput, per-byte price, required rate, buffer
// level, RRC tail state), asks the configured Scheduler for the data-unit
// allocation, applies the physics — transmission energy Eq. (3), tail
// energy Eq. (4), buffer recursion Eq. (7), rebuffering Eq. (8) — and
// accumulates per-slot and per-user records for the metrics layer.
package cell

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"jointstream/internal/abr"
	"jointstream/internal/playback"
	"jointstream/internal/radio"
	"jointstream/internal/rrc"
	"jointstream/internal/sched"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// Config parameterizes one simulation run.
type Config struct {
	// Tau is the slot length τ (1 s in the paper).
	Tau units.Seconds
	// Unit is the data-unit size δ in KB.
	Unit units.KB
	// Capacity is the base-station serving capacity S (20 MB/s in §VI).
	Capacity units.KBps
	// MaxSlots caps the run (10000 in §VI). The run ends earlier once
	// every user finished playback, unless RunFullHorizon is set.
	MaxSlots int
	// RunFullHorizon keeps simulating to MaxSlots even after all sessions
	// complete (matching a fixed Γ accounting).
	RunFullHorizon bool
	// Radio is the throughput/power model (Eq. 24).
	Radio radio.Model
	// RRC is the tail-energy profile (Eq. 4).
	RRC rrc.Profile
	// Strict makes the simulator fail the run if the scheduler violates
	// Eq. (1)/(2) instead of silently clamping. Tests enable it.
	Strict bool
	// RecordPerUserSlots retains the per-user per-slot series needed for
	// CDF figures (2, 3, 6, 7). Off for parameter sweeps to save memory.
	RecordPerUserSlots bool
	// ABR, when non-nil, replaces every session's fixed required rate
	// with a buffer-based adaptive-bitrate player (internal/abr): each
	// slot the player picks p_i(n) from its ladder based on buffer
	// occupancy, and the video becomes a fixed content duration rather
	// than a fixed byte size.
	ABR *abr.Config
	// Workers bounds the goroutines of the tick path's prepare and commit
	// phases (and of session prewarming): 0 selects GOMAXPROCS, 1 forces
	// the serial path. The phases reduce per-shard partial sums in shard
	// order, so any worker count produces a byte-identical Result — see
	// DESIGN.md §4, "Sharded tick path".
	Workers int
	// ShardSize overrides the per-shard user count of the tick path's
	// shard layout (0 selects the default of 256). The shard layout — a
	// function of the live-user count only, never of Workers — is the
	// only thing that affects floating-point summation grouping, so tests
	// shrink it to exercise multi-shard reduction at small N.
	ShardSize int
	// Link, when non-nil, is a precompiled link table (CompileLink) the
	// run reads instead of compiling its own — the experiment harness
	// compiles one per scenario and shares it across every scheduler run.
	// It must have been compiled from the same sessions, radio model and
	// slot grid; New rejects mismatched user counts, horizons and grids.
	Link *LinkTable
	// LinkTableMaxRows bounds the automatic link-table compilation in
	// New: 0 selects the DefaultLinkTableMaxRows 4M-row default (≈144 MB
	// at linkRowBytes = 36 B per row), negative disables compilation
	// entirely (the tick path then evaluates the radio model through the
	// interfaces, as before the link-table layer). A caller-supplied Link
	// is used regardless of this cap.
	LinkTableMaxRows int
	// LinkTileSlots, when positive, compiles a tiled link table
	// (CompileLinkTiled) holding only this many consecutive slots
	// resident instead of the whole horizon: the engine recompiles the
	// block in place as its slot clock advances, so link-state memory is
	// users × LinkTileSlots rows no matter the horizon — the fleet
	// runner's per-cell setting. Per-cell results are byte-identical to
	// the monolithic table's (differentially asserted). Ignored when a
	// caller-supplied Link is present; a value ≥ MaxSlots degenerates to
	// the monolithic table.
	LinkTileSlots int
	// Outages lists base-station outage windows: during each [From, To)
	// slot range the serving capacity is zero, no allocation happens, and
	// every session degrades gracefully (buffers drain, rebuffering and
	// tail energy accrue per the usual physics). Sessions are re-admitted
	// automatically when capacity returns — the engine's live list never
	// drops a user over an outage. Result.DegradedSlots counts the slots
	// the run actually spent inside a window.
	Outages []Outage
}

// Outage is one capacity-zero window over slots [From, To).
type Outage struct {
	From, To int
}

// Contains reports whether slot n falls inside the window.
func (o Outage) Contains(n int) bool { return n >= o.From && n < o.To }

// PaperConfig returns the §VI defaults: τ = 1 s, S = 20 MB/s, 10000-slot
// horizon, 3G radio and RRC models, δ = 100 KB.
func PaperConfig() Config {
	return Config{
		Tau:      1,
		Unit:     100,
		Capacity: 20 * units.KBps(units.Megabyte),
		MaxSlots: 10000,
		Radio:    radio.Paper3G(),
		RRC:      rrc.Paper3G(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Tau <= 0 {
		return fmt.Errorf("cell: non-positive slot length %v", c.Tau)
	}
	if c.Unit <= 0 {
		return fmt.Errorf("cell: non-positive unit size %v", c.Unit)
	}
	if c.Capacity <= 0 {
		return fmt.Errorf("cell: non-positive capacity %v", c.Capacity)
	}
	if c.MaxSlots <= 0 {
		return fmt.Errorf("cell: non-positive slot cap %d", c.MaxSlots)
	}
	if c.Radio.Throughput == nil || c.Radio.Power == nil {
		return fmt.Errorf("cell: radio model not fully specified")
	}
	if c.Workers < 0 {
		return fmt.Errorf("cell: negative worker count %d", c.Workers)
	}
	if c.ShardSize < 0 {
		return fmt.Errorf("cell: negative shard size %d", c.ShardSize)
	}
	if c.LinkTileSlots < 0 {
		return fmt.Errorf("cell: negative link tile window %d", c.LinkTileSlots)
	}
	if c.ABR != nil {
		if err := c.ABR.Validate(); err != nil {
			return err
		}
	}
	for i, o := range c.Outages {
		if o.From < 0 || o.To < o.From {
			return fmt.Errorf("cell: outage %d has invalid window [%d, %d)", i, o.From, o.To)
		}
	}
	return c.RRC.Validate()
}

// UserTotals aggregates one user's whole run.
type UserTotals struct {
	// DeliveredKB is the total data received.
	DeliveredKB units.KB
	// TransEnergy is Σ Eq. (3) over slots with a transfer.
	TransEnergy units.MJ
	// TailEnergy is Σ Eq. (4) increments over idle slots.
	TailEnergy units.MJ
	// Rebuffer is Σ c_i(n), the total stall time.
	Rebuffer units.Seconds
	// CompletionSlot is the slot at which playback finished, or -1.
	CompletionSlot int
	// ActiveSlots counts slots in which the user received data.
	ActiveSlots int
	// QualitySum accumulates the selected bitrate (KB/s) over the slots
	// in which the session was playing; with ABR enabled,
	// QualitySum/QualitySlots is the mean delivered quality.
	QualitySum   float64
	QualitySlots int
	// QualitySwitches counts slot-to-slot changes of the selected rate
	// while playing (nonzero only for ABR or VBR sessions).
	QualitySwitches int
}

// MeanQuality returns the average selected bitrate in KB/s (0 if the
// session never played).
func (u UserTotals) MeanQuality() units.KBps {
	if u.QualitySlots == 0 {
		return 0
	}
	return units.KBps(u.QualitySum / float64(u.QualitySlots))
}

// Energy returns the user's total energy (transmission + tail).
func (u UserTotals) Energy() units.MJ { return u.TransEnergy + u.TailEnergy }

// SlotTotals aggregates one slot across users.
type SlotTotals struct {
	// Fairness is the Jain index over the per-user satisfaction ratios
	// F_i = d_i/d_need (users with a need this slot only); NaN-free: 1.0
	// when no user had any need.
	Fairness float64
	// Energy is the total energy (trans+tail) across users this slot.
	Energy units.MJ
	// Rebuffer is Σ_i c_i(n).
	Rebuffer units.Seconds
	// UsedUnits is Σ_i ϕ_i(n).
	UsedUnits int
}

// Result is the outcome of one run.
type Result struct {
	// SchedulerName echoes the algorithm that produced the run.
	SchedulerName string
	// Slots is Γ, the number of simulated slots.
	Slots int
	// Users holds per-user totals.
	Users []UserTotals
	// PerSlot holds per-slot aggregates (always recorded).
	PerSlot []SlotTotals
	// RebufferSamples / EnergySamples / FairnessSamples are the raw
	// per-user-per-slot series for CDF figures; populated only when
	// Config.RecordPerUserSlots is set. RebufferSamples[i][n] is c_i(n).
	RebufferSamples [][]float64
	EnergySamples   [][]float64
	// ClampEvents counts scheduler outputs the simulator had to clamp to
	// satisfy Eq. (1)/(2); always 0 for the built-in schedulers.
	ClampEvents int
	// DegradedSlots counts slots the run spent inside a Config.Outages
	// window (serving capacity forced to zero). Omitted from JSON when
	// zero so outage-free serialized results (the golden trace, figure
	// baselines) are byte-identical to pre-outage builds.
	DegradedSlots int `json:",omitempty"`

	// agg caches the run-level totals behind the metric accessors so
	// repeated calls (the experiment harness reads PE/PC/TotalEnergy many
	// times per figure) stop re-scanning Users. Nil until Finalize runs;
	// the accessors fall back to a scan, so hand-built Results keep
	// working without it.
	agg *resultAgg
}

// resultAgg holds the Users-derived totals Finalize caches.
type resultAgg struct {
	energy      units.MJ
	tailEnergy  units.MJ
	transEnergy units.MJ
	rebuffer    units.Seconds
	activeSlots int
}

// aggregate scans Users once, accumulating each total in index order —
// the same addition sequence the unmemoized accessors used, so cached
// and scanned values are bit-identical.
func aggregate(users []UserTotals) resultAgg {
	var a resultAgg
	for _, u := range users {
		a.energy += u.Energy()
		a.tailEnergy += u.TailEnergy
		a.transEnergy += u.TransEnergy
		a.rebuffer += u.Rebuffer
		a.activeSlots += u.ActiveSlots
	}
	return a
}

// Finalize computes and caches the run-level totals the metric accessors
// serve. Run calls it on every result it returns; callers that build a
// Result by hand, or mutate Users afterwards, may call it (again) to
// refresh the cache.
func (r *Result) Finalize() {
	a := aggregate(r.Users)
	r.agg = &a
}

// totals returns the cached aggregate, or scans Users when Finalize has
// not run.
func (r *Result) totals() resultAgg {
	if r.agg != nil {
		return *r.agg
	}
	return aggregate(r.Users)
}

// PE returns the paper's average energy metric PE(Γ) = ΣΣE/(NΓ) in mJ.
func (r *Result) PE() units.MJ {
	if len(r.Users) == 0 || r.Slots == 0 {
		return 0
	}
	return r.totals().energy / units.MJ(len(r.Users)*r.Slots)
}

// PC returns the paper's average rebuffering metric PC(Γ) = ΣΣc/(NΓ) in
// seconds.
func (r *Result) PC() units.Seconds {
	if len(r.Users) == 0 || r.Slots == 0 {
		return 0
	}
	return r.totals().rebuffer / units.Seconds(float64(len(r.Users)*r.Slots))
}

// TotalEnergy returns the summed energy of all users (mJ).
func (r *Result) TotalEnergy() units.MJ {
	return r.totals().energy
}

// TotalTailEnergy returns the summed tail energy of all users (mJ).
func (r *Result) TotalTailEnergy() units.MJ {
	return r.totals().tailEnergy
}

// TransEnergyPerActiveSlot returns the mean transmission energy per
// user-slot that actually carried data, Σ E_trans / Σ active slots (mJ).
// The experiment harness uses it as the Eq. (12) reference energy
// E_Default when deriving RTMA's budget Φ = α·E_Default.
func (r *Result) TransEnergyPerActiveSlot() units.MJ {
	a := r.totals()
	if a.activeSlots == 0 {
		return 0
	}
	return a.transEnergy / units.MJ(a.activeSlots)
}

// TotalRebuffer returns the summed stall time of all users.
func (r *Result) TotalRebuffer() units.Seconds {
	return r.totals().rebuffer
}

// MeanRebufferPerUser returns TotalRebuffer / N.
func (r *Result) MeanRebufferPerUser() units.Seconds {
	if len(r.Users) == 0 {
		return 0
	}
	return r.TotalRebuffer() / units.Seconds(float64(len(r.Users)))
}

// MeanEnergyPerUser returns TotalEnergy / N in mJ.
func (r *Result) MeanEnergyPerUser() units.MJ {
	if len(r.Users) == 0 {
		return 0
	}
	return r.TotalEnergy() / units.MJ(len(r.Users))
}

// userState is the simulator's mutable per-user record. The playout
// buffer and RRC machine are embedded by value (initialized in place via
// their Init methods), so the whole per-user state lives in one flat
// array — no per-user heap objects for the garbage collector to chase and
// no pointer hop per field read in the tick path.
type userState struct {
	buf playback.Buffer
	// prevRate is the last playing slot's selected rate, for switch
	// counting; 0 until the first playing slot.
	prevRate units.KBps
	// tailGap and everActive are the user's RRC machine state, flattened
	// from rrc.Machine: the profile is shared by every user and lives once
	// in Config.RRC, so carrying a per-user copy would only bloat the
	// array. The commit phase applies exactly Machine's transitions —
	// Transfer resets the gap, an idle slot burns TailIncrement(gap, τ)
	// and advances the gap only once a transfer has ever happened.
	tailGap    units.Seconds
	everActive bool
	// startSlot caches session.StartSlot so the per-slot phases never
	// chase the session pointer for the one field they need every slot.
	startSlot int32
	// retired marks a user the engine has dropped from the live list:
	// playback and delivery are complete and the RRC tail is drained, so
	// every remaining slot would contribute exactly zero to every total.
	retired bool
}

// defaultShardSize is the tick path's per-shard user count when
// Config.ShardSize is zero: small enough to load-balance across workers
// at 10k+ users, large enough that the paper-scale runs (N ≤ 40) stay a
// single shard and therefore reproduce the historical serial summation
// bit for bit.
const defaultShardSize = 256

// Simulator runs one scheduler over one workload.
type Simulator struct {
	cfg   Config
	sched sched.Scheduler
	// users is the flat per-user mutable state. It is deliberately
	// pointer-free (the GC never scans it); the per-user pointers live in
	// the parallel sessions/abrCtls slices, which the hot phases touch
	// only on the cold paths.
	users    []userState
	sessions []*workload.Session
	abrCtls  []*abr.Controller // nil unless Config.ABR is set
	// tailDrained caches cfg.RRC.TailDrainedAfter() for the per-slot
	// retirement scan.
	tailDrained units.Seconds

	// Per-slot scratch, allocated once in New and reused by every tick:
	// the scheduler's cross-layer view and the allocation vector.
	slot  sched.Slot
	alloc []int

	// cols is the engine's struct-of-arrays slot view (RunCtx attaches it
	// as slot.Cols). The dynamic columns (Active, BufferSec, RemainingKB,
	// TailGap, NeverActive, MaxUnits) are engine-owned arrays refreshed in
	// place each slot; the static physics columns alias the link table's
	// slot windows (attachSlotColumns) when one is compiled, and are
	// engine-owned otherwise. With ABR the Rate column is always
	// engine-owned — the player picks rates per slot, and the shared
	// immutable table must never be written through.
	cols  sched.Columns
	luCol []int32 // slot's Eq. (1) link-unit column (link-table path only)

	// Engine state for the sharded active-list tick path (Run).
	workers   int        // resolved Config.Workers (0 → GOMAXPROCS)
	shardSize int        // resolved Config.ShardSize (0 → defaultShardSize)
	link      *LinkTable // flattened link view; nil → interface path
	// openTile, when non-nil, is the open-system engine's horizon-free
	// link window (open.go): an engine-owned slot-major block of analytic
	// physics rows the static columns alias exactly like a link table's
	// windows. Mutually exclusive with link; NewOpen installs it.
	openTile *openTile
	live     []int // started, unretired users, ascending index
	pending  []int // not-yet-started users, ordered by (StartSlot, index)
	// pendHead is the first undrained pending entry: admit advances it
	// instead of re-slicing pending's head, so the backing array never
	// creeps under churn (the open engine re-compacts before inserting).
	pendHead int
	// unfinished counts users that keep the run going: not started yet,
	// or started with playback incomplete. Zero means the old full-scan
	// loop's allDone condition holds.
	unfinished int
	shardAct   [][]int     // per-shard active-index segments (prepare output)
	shardAcc   []slotAccum // per-shard partial sums (commit output)
	activeBuf  []int       // backing for slot.ActiveList, rebuilt per slot
	consumed   bool        // Run/RunReference already executed
	// capUnits is the nominal per-slot capacity in units; the engines
	// restore it after every outage slot zeroes slot.CapacityUnits.
	capUnits int

	// Run-scoped state of the sharded engine, set by startRun and consumed
	// by tickSlot and the shard bodies (engine.go). The shard bodies are
	// method values bound once per run so the slot loop never allocates a
	// closure; they read the per-slot parameters from these fields.
	curRes    *Result
	curSlot   int
	curShards int
	curLive   []int
	// curDense marks a slot whose live list is the identity [0, N): the
	// shard bodies then run the dense kernels (kernels.go) over contiguous
	// index ranges instead of gathering through the live list.
	curDense bool
	// colsSlot is the slot whose dynamic columns and active list are
	// already prepared (by the previous slot's fused commit+prepare pass),
	// or -1 when the next slot must run a standalone prepare phase.
	colsSlot int
	// prevEpkb/prevRate pin the *previous* slot's static price and rate
	// columns across the fused pass: attachSlotColumns has already moved
	// s.cols on to the next slot's windows, but the commit half of the
	// pass must still price this slot's deliveries with this slot's
	// physics. With a link table these are zero-copy aliases of immutable
	// windows; without one they alias the engine-owned arrays and the
	// fused kernel relies on its per-user read-commit-then-write-prepare
	// order.
	prevEpkb []units.MJ
	prevRate []units.KBps
	// prevEpkbBuf/prevRateBuf are the copy fallback behind prevEpkb/
	// prevRate for tiled link tables: when attaching slot n+1 will
	// recompile the resident block (tile crossing), aliasing slot n's
	// windows would hand the fused pass freshly overwritten memory, so
	// pinPrevColumns copies the columns here first — an O(users) copy
	// once per tile, not per slot. Allocated on first use, reused after.
	prevEpkbBuf                            []units.MJ
	prevRateBuf                            []units.KBps
	prepFn                                 func(int)
	commFn                                 func(int)
	fusedFn                                func(int)
	lblPrep, lblSched, lblCommit, lblFused context.Context

	// Stepped-run state (Start/Advance/Finish): the context bound at
	// Start for per-slot cancellation checks, the next slot to tick, and
	// whether the run already hit its end condition.
	stepCtx  context.Context
	nextSlot int
	stepDone bool
}

// outageAt reports whether slot n falls inside any configured outage
// window. The window list is small (a handful per run), so a linear
// scan beats maintaining an index.
func (s *Simulator) outageAt(n int) bool {
	for _, o := range s.cfg.Outages {
		if o.Contains(n) {
			return true
		}
	}
	return false
}

// New builds a Simulator. The sessions' buffers and RRC machines are
// created fresh, so a Simulator must not be reused across runs — build a
// new one (schedulers with internal state must also be fresh).
func New(cfg Config, sessions []*workload.Session, s sched.Scheduler) (*Simulator, error) {
	return newSim(cfg, sessions, s, false)
}

// newSim is New's implementation; allowEmpty lets the open-system engine
// (NewOpen) start with zero sessions — an idle service admitting its
// whole population mid-run — which is never valid for a closed run.
func newSim(cfg Config, sessions []*workload.Session, s sched.Scheduler, allowEmpty bool) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("cell: nil scheduler")
	}
	if len(sessions) == 0 && !allowEmpty {
		return nil, fmt.Errorf("cell: no sessions")
	}
	sim := &Simulator{
		cfg: cfg, sched: s,
		users:    make([]userState, len(sessions)),
		sessions: sessions,
		// Config.Validate vetted the shared RRC profile above; every user
		// starts in IDLE with no transfer history (the rrc.Machine zero
		// state), which the zeroed users array already encodes.
		tailDrained: cfg.RRC.TailDrainedAfter(),
	}
	if cfg.ABR != nil {
		sim.abrCtls = make([]*abr.Controller, len(sessions))
	}
	for i, sess := range sessions {
		if sess.ID != i {
			return nil, fmt.Errorf("cell: session %d has ID %d; IDs must be dense", i, sess.ID)
		}
		u := &sim.users[i]
		u.startSlot = int32(sess.StartSlot)
		var err error
		if cfg.ABR != nil {
			err = u.buf.InitSeconds(sess.Duration())
		} else {
			err = u.buf.Init(sess.Size, sess.Duration())
		}
		if err != nil {
			return nil, fmt.Errorf("cell: user %d buffer: %w", i, err)
		}
		if cfg.ABR != nil {
			ctl, err := abr.NewController(*cfg.ABR)
			if err != nil {
				return nil, err
			}
			sim.abrCtls[i] = ctl
		}
	}
	sim.workers = cfg.Workers
	if sim.workers == 0 {
		sim.workers = runtime.GOMAXPROCS(0)
	}
	sim.shardSize = cfg.ShardSize
	if sim.shardSize == 0 {
		sim.shardSize = defaultShardSize
	}
	// Extend every session's lazily memoized stochastic sequences to the
	// slot horizon up front: the per-slot loop then reads them without
	// ever growing a memo (and without the append-doubling garbage), and
	// the sharded prepare phase can read them concurrently because no
	// memo grows mid-run.
	workload.PrewarmAll(sim.workers, sessions, cfg.MaxSlots)
	// Attach (or compile) the flattened link view the tick path reads in
	// place of the signal/radio interfaces. A caller-supplied table is
	// validated against this run's shape; otherwise one is compiled here
	// unless the run exceeds the memory cap or compilation is disabled.
	if cfg.Link != nil {
		if err := cfg.Link.compatible(cfg, sessions); err != nil {
			return nil, err
		}
		sim.link = cfg.Link
	} else if cfg.LinkTileSlots > 0 {
		lt, err := CompileLinkTiled(cfg, sessions, cfg.LinkTileSlots)
		if err != nil {
			return nil, err
		}
		sim.link = lt
	} else if cfg.LinkTableMaxRows >= 0 {
		maxRows := cfg.LinkTableMaxRows
		if maxRows == 0 {
			maxRows = DefaultLinkTableMaxRows
		}
		if int64(len(sessions))*int64(cfg.MaxSlots) <= int64(maxRows) {
			lt, err := CompileLink(cfg, sessions)
			if err != nil {
				return nil, err
			}
			sim.link = lt
		}
	}
	sim.slot = sched.Slot{
		Tau:           cfg.Tau,
		Unit:          cfg.Unit,
		CapacityUnits: floorUnits(float64(cfg.Capacity)*float64(cfg.Tau), float64(cfg.Unit)),
	}
	sim.capUnits = sim.slot.CapacityUnits
	// Column storage for the SoA slot view (RunCtx). Dynamic columns are
	// always engine-owned; the static physics columns are allocated only
	// when no link table backs them (attachSlotColumns aliases the table's
	// slot windows otherwise), and the Rate column additionally whenever
	// ABR overrides the workload rates.
	n := len(sessions)
	sim.cols = sched.Columns{
		Active:      make([]bool, n),
		BufferSec:   make([]units.Seconds, n),
		RemainingKB: make([]units.KB, n),
		TailGap:     make([]units.Seconds, n),
		NeverActive: make([]bool, n),
		MaxUnits:    make([]int32, n),
	}
	if sim.link == nil {
		sim.cols.Sig = make([]units.DBm, n)
		sim.cols.LinkRate = make([]units.KBps, n)
		sim.cols.EnergyPerKB = make([]units.MJ, n)
		sim.cols.Rate = make([]units.KBps, n)
	} else if cfg.ABR != nil {
		sim.cols.Rate = make([]units.KBps, n)
	}
	sim.alloc = make([]int, len(sessions))
	// Admission order: users enter the live list as the clock reaches
	// their StartSlot, ties resolved by index (the stable sort keeps the
	// generator's index order within a slot).
	sim.pending = make([]int, len(sessions))
	for i := range sim.pending {
		sim.pending[i] = i
	}
	sort.SliceStable(sim.pending, func(a, b int) bool {
		return sessions[sim.pending[a]].StartSlot < sessions[sim.pending[b]].StartSlot
	})
	sim.live = make([]int, 0, len(sessions))
	// Non-nil even when empty, so an all-idle slot still presents an
	// engine-maintained (empty) active list instead of the nil fallback.
	sim.activeBuf = make([]int, 0, len(sessions))
	sim.unfinished = len(sessions)
	sim.colsSlot = -1
	return sim, nil
}

// newResult allocates the result shell both engines fill in.
func (s *Simulator) newResult() *Result {
	n := len(s.users)
	res := &Result{
		SchedulerName: s.sched.Name(),
		Users:         make([]UserTotals, n),
		// Pre-size the per-slot series from the slot horizon: runs that
		// finish early waste a little capacity, runs that go the distance
		// never reallocate mid-tick. It is O(horizon), not O(users ×
		// horizon), so the fleet runner tolerates it.
		PerSlot: make([]SlotTotals, 0, s.cfg.MaxSlots),
	}
	for i := range res.Users {
		res.Users[i].CompletionSlot = -1
	}
	if s.cfg.RecordPerUserSlots {
		// Only the outer spines are pre-sized. Eagerly reserving MaxSlots
		// capacity per user is an O(users × horizon) allocation before the
		// first slot runs — the commit path appends lazily instead, so a
		// recorded run's sample memory grows with the slots it actually
		// simulates.
		res.RebufferSamples = make([][]float64, n)
		res.EnergySamples = make([][]float64, n)
	}
	return res
}

// begin guards against running a consumed Simulator: buffers, RRC
// machines and the engine's admission state are single-use.
func (s *Simulator) begin() error {
	if s.consumed {
		return fmt.Errorf("cell: simulator already ran; build a new one")
	}
	s.consumed = true
	return nil
}

// abrDemand picks user i's slot rate and remaining demand under ABR: the
// player selects p_i(n) from its ladder based on buffer occupancy, and
// the remainder is the undelivered content time priced at that rate,
// capped at the buffer-headroom request. Shared by both prepare paths.
func (s *Simulator) abrDemand(i int, u *userState, active bool) (units.KBps, units.KB) {
	ctl := s.abrCtls[i]
	var rate units.KBps
	if active {
		rate = ctl.Pick(u.buf.Occupancy())
	} else {
		rate = ctl.Current()
	}
	// The player requests at most its buffer-cap headroom of content per
	// slot (plus the slot being played), and never more than the
	// remaining video.
	wantSec := s.cfg.ABR.WantSeconds(u.buf.Occupancy()) + s.cfg.Tau
	if rem := u.buf.RemainingSeconds(); wantSec > rem {
		wantSec = rem
	}
	return rate, units.KB(float64(wantSec) * float64(rate))
}

// prepareUser fills user i's array-of-structs scheduler view for slot
// slotIdx and reports whether the user is active (wants data this slot).
// It is the reference engine's prepare: the signal and radio models are
// always evaluated analytically through the interfaces (never the link
// table), so the engine differential tests assert flattened == analytic.
// It writes only user-i state, so distinct users prepare concurrently.
func (s *Simulator) prepareUser(slotIdx, i int) bool {
	u := &s.users[i]
	sess := s.sessions[i]
	started := slotIdx >= sess.StartSlot
	active := started && !u.buf.DeliveryComplete()
	sig := sess.Signal.At(slotIdx)
	link := s.cfg.Radio.Throughput.Throughput(sig)
	epkb := s.cfg.Radio.Power.EnergyPerKB(sig)
	rate := sess.RateAt(slotIdx)
	linkUnits := floorUnits(float64(link)*float64(s.cfg.Tau), float64(s.cfg.Unit))
	// Remaining demand: fixed-rate sessions use the workload's rate and
	// byte remainder; ABR sessions pick the rate from the player's buffer.
	remainingKB := u.buf.RemainingBytes()
	if s.abrCtls != nil {
		rate, remainingKB = s.abrDemand(i, u, active)
	}
	maxUnits := linkUnits
	remUnits := ceilUnits(float64(remainingKB), float64(s.cfg.Unit))
	if maxUnits > remUnits {
		maxUnits = remUnits
	}
	if !active {
		maxUnits = 0
	}
	s.slot.Users[i] = sched.User{
		Index:       i,
		Active:      active,
		Sig:         sig,
		LinkRate:    link,
		EnergyPerKB: epkb,
		Rate:        rate,
		BufferSec:   u.buf.Occupancy(),
		RemainingKB: remainingKB,
		TailGap:     u.tailGap,
		NeverActive: !u.everActive,
		MaxUnits:    maxUnits,
	}
	return active
}

// attachSlotColumns points the SoA view's static physics columns at the
// link table's slot-n windows: zero-copy reslices of shared immutable
// memory, swapped per slot, never written through. Without a table the
// columns are engine-owned arrays and prepareColsUser refreshes them.
func (s *Simulator) attachSlotColumns(n int) {
	if s.link == nil && s.openTile == nil {
		return
	}
	var sig []units.DBm
	var link, rate []units.KBps
	var epkb []units.MJ
	var lu []int32
	if s.link != nil {
		// Restrict a tiled table's window recompiles to the rows the run
		// can still read: once every admission has happened, those are
		// exactly the live users (retired rows are never read again). With
		// admissions still pending the full block is compiled — a user
		// admitted later in the window must find its rows ready.
		if s.pendingCount() == 0 {
			s.link.setRows(s.live)
		} else {
			s.link.setRows(nil)
		}
		sig, link, epkb, rate, lu = s.link.slotColumns(n)
	} else {
		s.openTile.ensure(n)
		sig, link, epkb, rate, lu = s.openTile.slotColumns(n)
	}
	s.cols.Sig, s.cols.LinkRate, s.cols.EnergyPerKB = sig, link, epkb
	s.luCol = lu
	if s.cfg.ABR == nil {
		s.cols.Rate = rate
	}
}

// colsTabled reports whether the static physics columns are backed by a
// precompiled view (link table or open tile), so prepareColsUser reads
// them instead of evaluating the radio model.
func (s *Simulator) colsTabled() bool { return s.link != nil || s.openTile != nil }

// prepareColsUser refreshes user i's entries of the SoA slot view for
// slot slotIdx and reports whether the user is active. With a tabled
// view attached (link table or open tile) the static physics columns
// already alias the precompiled slot windows, so only the dynamic
// columns (activity, buffer, demand, tail) are written; otherwise the
// physics are evaluated through the interfaces into the engine-owned
// columns, bitwise-identically to prepareUser. Writes only user-i
// entries, so distinct users prepare concurrently.
func (s *Simulator) prepareColsUser(tabled bool, slotIdx, i int) bool {
	u := &s.users[i]
	started := slotIdx >= int(u.startSlot)
	active := started && !u.buf.DeliveryComplete()
	c := &s.cols
	var linkUnits int
	if tabled {
		linkUnits = int(s.luCol[i])
	} else {
		sess := s.sessions[i]
		sig := sess.Signal.At(slotIdx)
		link := s.cfg.Radio.Throughput.Throughput(sig)
		c.Sig[i] = sig
		c.LinkRate[i] = link
		c.EnergyPerKB[i] = s.cfg.Radio.Power.EnergyPerKB(sig)
		c.Rate[i] = sess.RateAt(slotIdx)
		linkUnits = floorUnits(float64(link)*float64(s.cfg.Tau), float64(s.cfg.Unit))
	}
	remainingKB := u.buf.RemainingBytes()
	if s.abrCtls != nil {
		// Rate is engine-owned under ABR (never the aliased table column).
		var rate units.KBps
		rate, remainingKB = s.abrDemand(i, u, active)
		c.Rate[i] = rate
	}
	maxUnits := linkUnits
	// The remaining-demand cap needs the ceiling division only when it can
	// bind: rem ≥ unit·linkUnits implies ⌈rem/unit⌉ ≥ linkUnits, so far-
	// from-done users (the common case) skip the division entirely.
	if float64(remainingKB) < float64(s.cfg.Unit)*float64(linkUnits) {
		if remUnits := ceilUnits(float64(remainingKB), float64(s.cfg.Unit)); maxUnits > remUnits {
			maxUnits = remUnits
		}
	}
	if !active {
		maxUnits = 0
	}
	c.Active[i] = active
	c.BufferSec[i] = u.buf.Occupancy()
	c.RemainingKB[i] = remainingKB
	c.TailGap[i] = u.tailGap
	c.NeverActive[i] = !u.everActive
	c.MaxUnits[i] = int32(maxUnits)
	return active
}

// slotAccum is one shard's contribution to a slot's aggregates. The
// engine reduces the partials in shard order, so the reduction — and
// therefore every floating-point rounding — depends only on the shard
// layout, never on which worker ran which shard.
type slotAccum struct {
	rebuffer    units.Seconds
	energy      units.MJ
	usedUnits   int
	fairNum     float64 // Jain index accumulators
	fairDen     float64
	fairCount   int
	completions int // playback-complete transitions this slot
	retires     int // users that became retirement-eligible this slot
	err         error
	errUser     int
}

// commitUser applies slot slotIdx's allocation outcome to user i —
// energy per Eq. (5), RRC transition, buffer recursion Eq. (7), totals,
// samples — accumulating the slot-level aggregates into acc. It writes
// only user-i state and acc, so distinct users commit concurrently as
// long as each shard owns its acc.
func (s *Simulator) commitUser(slotIdx, i int, res *Result, acc *slotAccum) error {
	u := &s.users[i]
	ru := &res.Users[i]
	// The slot accessors serve both view layouts, so one commit path
	// covers the SoA engine and the AoS reference identically. View fields
	// are read lazily: the ungranted majority touches none of them.
	view := &s.slot
	granted := s.alloc[i]

	// Energy per Eq. (5): transmission when scheduled, tail when not.
	// Eq. (3) reuses the per-KB price already materialized in the
	// scheduler view (P is a pure function of the slot's signal), so the
	// commit phase never re-enters the radio interfaces.
	var deliveredKB units.KB
	var slotEnergy units.MJ
	if granted > 0 {
		deliveredKB = units.KB(float64(granted) * float64(s.cfg.Unit))
		// Cap the last shard at the true remainder so byte accounting
		// stays exact even though units are discrete.
		if rem := view.RemainingKBAt(i); deliveredKB > rem {
			deliveredKB = rem
		}
		slotEnergy = units.MJ(float64(view.EnergyPerKBAt(i)) * float64(deliveredKB))
		ru.TransEnergy += slotEnergy
		ru.ActiveSlots++
		// Machine.Transfer: promote to DCH, reset the inactivity gap.
		u.everActive = true
		u.tailGap = 0
	} else {
		// Machine.IdleSlot: a device that has never transferred sits in
		// IDLE and neither burns tail energy nor ages a gap; otherwise the
		// slot burns E_tail(gap+τ) − E_tail(gap) per Eq. (4).
		if u.everActive {
			slotEnergy = s.cfg.RRC.TailIncrement(u.tailGap, s.cfg.Tau)
			u.tailGap += s.cfg.Tau
		}
		ru.TailEnergy += slotEnergy
	}
	ru.DeliveredKB += deliveredKB

	// Buffer dynamics only for users that have started.
	var c units.Seconds
	if slotIdx >= int(u.startSlot) {
		viewRate := view.RateAt(i)
		wasComplete := u.buf.PlaybackComplete()
		var err error
		c, err = u.buf.Advance(deliveredKB, viewRate, s.cfg.Tau)
		if err != nil {
			return err
		}
		if !wasComplete && u.buf.PlaybackComplete() {
			ru.CompletionSlot = slotIdx
			acc.completions++
		}
		if !wasComplete {
			ru.QualitySum += float64(viewRate)
			ru.QualitySlots++
			if u.prevRate != 0 && viewRate != u.prevRate {
				ru.QualitySwitches++
			}
			u.prevRate = viewRate
		}

		// Fairness sample F_i = delivered/needed for users with a need.
		// Activity implies a started user, so the check lives here.
		if view.ActiveAt(i) {
			needKB := float64(viewRate) * float64(s.cfg.Tau)
			if rem := float64(view.RemainingKBAt(i)); needKB > rem {
				needKB = rem
			}
			if needKB > 0 {
				f := float64(deliveredKB) / needKB
				if f > 1 {
					f = 1
				}
				acc.fairNum += f
				acc.fairDen += f * f
				acc.fairCount++
			}
		}
	}
	ru.Rebuffer += c
	acc.rebuffer += c
	acc.energy += slotEnergy
	acc.usedUnits += granted

	if s.cfg.RecordPerUserSlots {
		res.RebufferSamples[i] = append(res.RebufferSamples[i], float64(c))
		res.EnergySamples[i] = append(res.EnergySamples[i], float64(slotEnergy))
	}
	return nil
}

// enforce applies Eq. (1)/(2) clamping (or errors in Strict mode) and
// returns how many entries were clamped.
func (s *Simulator) enforce(slot *sched.Slot, alloc []int) (int, error) {
	if s.cfg.Strict {
		if err := slot.Validate(alloc); err != nil {
			return 0, err
		}
		return 0, nil
	}
	clamps := 0
	total := 0
	for i := range alloc {
		// A zero allocation can never violate Eq. (1)/(2) — MaxUnits is
		// never negative and zero adds nothing to the total — so the scan
		// skips the untouched majority without reading the view at all.
		if alloc[i] == 0 {
			continue
		}
		if alloc[i] < 0 {
			alloc[i] = 0
			clamps++
			continue
		}
		if !slot.ActiveAt(i) {
			alloc[i] = 0
			clamps++
			continue
		}
		if m := slot.MaxUnitsAt(i); alloc[i] > m {
			alloc[i] = m
			clamps++
		}
		total += alloc[i]
	}
	if total > slot.CapacityUnits {
		// Shed overflow from the highest indices (deterministic).
		over := total - slot.CapacityUnits
		for i := len(alloc) - 1; i >= 0 && over > 0; i-- {
			cut := alloc[i]
			if cut > over {
				cut = over
			}
			alloc[i] -= cut
			over -= cut
			if cut > 0 {
				clamps++
			}
		}
	}
	return clamps, nil
}

// jain computes the Jain fairness index (Σx)²/(n·Σx²) with the convention
// that an empty or all-zero sample is perfectly fair.
func jain(sum, sumSq float64, n int) float64 {
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

func floorUnits(amount, unit float64) int {
	if amount <= 0 {
		return 0
	}
	return int(amount / unit)
}

func ceilUnits(amount, unit float64) int {
	n := floorUnits(amount, unit)
	if float64(n)*unit < amount {
		n++
	}
	return n
}
