package cell

import (
	"jointstream/internal/units"
)

// This file holds ONLY the dense column kernels. They run whenever a
// slot's live list is the identity [0, N) — no late admissions pending,
// nobody retired — which is the steady state of large-N runs: they
// iterate contiguous index ranges over reslices of the column arrays, so
// the loop bodies inline, carry no per-user function-call overhead, and
// compile without per-element bounds checks.
//
// The bce-check CI job (scripts/bce_check.sh) builds this package with
// `-gcflags='-d=ssa/check_bce'` and fails if any per-element
// `Found IsInBounds` reappears in this file. The once-per-shard slice
// headers below may legitimately report IsSliceInBounds; the per-element
// loads are guarded by the `x = x[:len(anchor)]` length-equalizing
// reslices, which let the compiler prove every x[k] with k ranging over
// the anchor in range. Keep that structure when editing.

// prepareDenseLink is prepareColsUser specialized for the dense steady
// state on the link-table path without ABR: a contiguous [lo, hi) index
// range iterated over reslices of the column arrays. Bitwise-identical
// to the per-user path — same reads, same guards, same float ops.
func (s *Simulator) prepareDenseLink(slotIdx, lo, hi int, act []int) []int {
	lu := s.luCol[lo:hi]
	users := s.users[lo:hi]
	activeC := s.cols.Active[lo:hi]
	bufC := s.cols.BufferSec[lo:hi]
	remC := s.cols.RemainingKB[lo:hi]
	tailC := s.cols.TailGap[lo:hi]
	nevC := s.cols.NeverActive[lo:hi]
	maxC := s.cols.MaxUnits[lo:hi]
	alloc := s.alloc[lo:hi]
	// Length-equalizing reslices: pin every column to len(lu) so the
	// compiler can prove x[k] in range for k := range lu (BCE).
	users = users[:len(lu)]
	activeC = activeC[:len(lu)]
	bufC = bufC[:len(lu)]
	remC = remC[:len(lu)]
	tailC = tailC[:len(lu)]
	nevC = nevC[:len(lu)]
	maxC = maxC[:len(lu)]
	alloc = alloc[:len(lu)]
	unit := float64(s.cfg.Unit)
	for k := range lu {
		u := &users[k]
		started := slotIdx >= int(u.startSlot)
		active := started && !u.buf.DeliveryComplete()
		linkUnits := int(lu[k])
		remainingKB := u.buf.RemainingBytes()
		maxUnits := linkUnits
		// The remaining-demand cap needs the ceiling division only when it
		// can bind: rem ≥ unit·linkUnits implies ⌈rem/unit⌉ ≥ linkUnits.
		if float64(remainingKB) < unit*float64(linkUnits) {
			if remUnits := ceilUnits(float64(remainingKB), unit); maxUnits > remUnits {
				maxUnits = remUnits
			}
		}
		if !active {
			maxUnits = 0
		}
		activeC[k] = active
		bufC[k] = u.buf.Occupancy()
		remC[k] = remainingKB
		tailC[k] = u.tailGap
		nevC[k] = !u.everActive
		maxC[k] = int32(maxUnits)
		alloc[k] = 0
		if active {
			act = append(act, lo+k)
		}
	}
	return act
}

// fusedDenseLink is the fused commit+prepare kernel for the dense steady
// state (link table, no ABR, no per-user-slot recording): one pass over
// a contiguous [lo, hi) range that commits slot slotIdx — priced with
// the pinned prevEpkb/prevRate columns — and prepares slot slotIdx+1.
// Every per-user operation mirrors commitUserCols followed by
// prepareColsUser, in that order; the engine matrix tests pin it to the
// reference engine bit for bit.
func (s *Simulator) fusedDenseLink(slotIdx, lo, hi int, act []int, acc *slotAccum) []int {
	users := s.users[lo:hi]
	resUsers := s.curRes.Users[lo:hi]
	alloc := s.alloc[lo:hi]
	epkbC := s.prevEpkb[lo:hi]
	rateC := s.prevRate[lo:hi]
	lu := s.luCol[lo:hi] // already re-attached to slot slotIdx+1
	activeC := s.cols.Active[lo:hi]
	bufC := s.cols.BufferSec[lo:hi]
	remC := s.cols.RemainingKB[lo:hi]
	tailC := s.cols.TailGap[lo:hi]
	nevC := s.cols.NeverActive[lo:hi]
	maxC := s.cols.MaxUnits[lo:hi]
	// Length-equalizing reslices (see file comment): prove x[k] in range.
	users = users[:len(lu)]
	resUsers = resUsers[:len(lu)]
	alloc = alloc[:len(lu)]
	epkbC = epkbC[:len(lu)]
	rateC = rateC[:len(lu)]
	activeC = activeC[:len(lu)]
	bufC = bufC[:len(lu)]
	remC = remC[:len(lu)]
	tailC = tailC[:len(lu)]
	nevC = nevC[:len(lu)]
	maxC = maxC[:len(lu)]
	unit := float64(s.cfg.Unit)
	tau := s.cfg.Tau
	tauF := float64(tau)
	prof := &s.cfg.RRC
	tailDrained := s.tailDrained
	for k := range lu {
		u := &users[k]
		ru := &resUsers[k]
		granted := alloc[k]

		// --- commit slot slotIdx (mirrors commitUserCols; a dense slot
		// implies every user is live and therefore started, so the
		// startSlot guards of the general path are constant-true) ---
		var deliveredKB units.KB
		var slotEnergy units.MJ
		if granted > 0 {
			deliveredKB = units.KB(float64(granted) * unit)
			if rem := remC[k]; deliveredKB > rem {
				deliveredKB = rem
			}
			slotEnergy = units.MJ(float64(epkbC[k]) * float64(deliveredKB))
			ru.TransEnergy += slotEnergy
			ru.ActiveSlots++
			u.everActive = true
			u.tailGap = 0
		} else {
			if u.everActive {
				slotEnergy = prof.TailIncrement(u.tailGap, tau)
				u.tailGap += tau
			}
			ru.TailEnergy += slotEnergy
		}
		ru.DeliveredKB += deliveredKB

		viewRate := rateC[k]
		wasComplete := u.buf.PlaybackComplete()
		c, err := u.buf.Advance(deliveredKB, viewRate, tau)
		if err != nil {
			acc.err = err
			acc.errUser = lo + k
			return act
		}
		// Playback completeness is monotone, so one post-Advance check
		// serves the completion event, the quality accounting and the
		// retirement test (the general path re-derives it three times).
		nowComplete := wasComplete
		if !wasComplete {
			nowComplete = u.buf.PlaybackComplete()
			if nowComplete {
				ru.CompletionSlot = slotIdx
				acc.completions++
			}
			ru.QualitySum += float64(viewRate)
			ru.QualitySlots++
			if u.prevRate != 0 && viewRate != u.prevRate {
				ru.QualitySwitches++
			}
			u.prevRate = viewRate
		}
		if activeC[k] {
			if deliveredKB == 0 {
				// f = 0/needKB = +0 contributes nothing to the Jain sums;
				// only the sample count moves. Skipping the division is
				// bitwise-identical (the sums are never −0) and removes
				// a 100k-per-slot divide from the idle majority.
				if viewRate > 0 && remC[k] > 0 {
					acc.fairCount++
				}
			} else {
				needKB := float64(viewRate) * tauF
				if rem := float64(remC[k]); needKB > rem {
					needKB = rem
				}
				if needKB > 0 {
					f := float64(deliveredKB) / needKB
					if f > 1 {
						f = 1
					}
					acc.fairNum += f
					acc.fairDen += f * f
					acc.fairCount++
				}
			}
		}
		ru.Rebuffer += c
		acc.rebuffer += c
		acc.energy += slotEnergy
		acc.usedUnits += granted

		// --- retire check (mirrors retireEligible) ---
		if nowComplete && u.buf.DeliveryComplete() &&
			(!u.everActive || u.tailGap >= tailDrained) {
			u.retired = true
			acc.retires++
		}

		// --- prepare slot slotIdx+1 (mirrors prepareDenseLink) ---
		active := !u.buf.DeliveryComplete()
		linkUnits := int(lu[k])
		remainingKB := u.buf.RemainingBytes()
		maxUnits := linkUnits
		if float64(remainingKB) < unit*float64(linkUnits) {
			if remUnits := ceilUnits(float64(remainingKB), unit); maxUnits > remUnits {
				maxUnits = remUnits
			}
		}
		if !active {
			maxUnits = 0
		}
		activeC[k] = active
		bufC[k] = u.buf.Occupancy()
		remC[k] = remainingKB
		tailC[k] = u.tailGap
		nevC[k] = !u.everActive
		maxC[k] = int32(maxUnits)
		alloc[k] = 0
		if active {
			act = append(act, lo+k)
		}
	}
	return act
}
