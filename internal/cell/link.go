package cell

import (
	"fmt"
	"math"
	"runtime"
	"unsafe"

	"jointstream/internal/pool"
	"jointstream/internal/radio"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// This file implements the compiled link-table layer: after the sessions
// are prewarmed, every user's trace is flattened into contiguous
// slot-major struct-of-arrays columns of per-slot link values — signal,
// throughput, per-KB energy, required rate, and the Eq. (1) link limit in
// units. The tick path's prepare phase then aliases each slot's column
// window (a zero-copy reslice per column, never a copy) straight into the
// sched.Columns view instead of materializing per-user structs, and the
// radio curves are evaluated through a quantized radio.Table when (and
// only when) that table is bitwise-exact for the run's model, so
// flattening can never perturb the physics. RunReference deliberately
// ignores the table, which makes the engine differential tests assert
// flattened == analytic on every slot.

// linkRowBytes is the per-user-slot footprint across the parallel column
// arrays, so MemoryBytes (and the row-cap sizing math) track the layout.
const linkRowBytes = int64(unsafe.Sizeof(units.DBm(0)) + // sig
	unsafe.Sizeof(units.KBps(0)) + // link
	unsafe.Sizeof(units.MJ(0)) + // epkb
	unsafe.Sizeof(units.KBps(0)) + // rate
	unsafe.Sizeof(int32(0))) // linkUnits

// LinkTable is the flattened link view of one workload under one radio
// model and slot grid. A monolithic table (CompileLink) is immutable and
// safe to share across any number of concurrent Simulators (the
// experiment harness compiles one per scenario and hands it to every
// scheduler run); nothing in the engine writes to it — the engine only
// reslices the columns, so the slot views it hands to schedulers alias
// this shared memory read-only.
//
// A tiled table (CompileLinkTiled) keeps only a sliding window of slots
// resident and recompiles the block in place as the engine's slot clock
// advances past it, bounding the footprint at users × window rows instead
// of users × horizon. That makes it mutable and single-owner: it must not
// be shared across simulators (New rejects a tiled Config.Link), and the
// column views it returns are valid only until the next slot outside the
// resident window is requested. Every row a tiled table serves is
// bitwise-identical to the monolithic table's row for the same (slot,
// user) — see recompile for why — which the tiled differential tests
// assert end to end.
type LinkTable struct {
	users int
	slots int
	tau   units.Seconds
	unit  units.KB
	lut   bool // columns were produced through an exact radio.Table

	// Slot-major parallel columns, indexed by (n-base)*users+i (base is 0
	// and never moves for monolithic tables): the window
	// [(n-base)*users, (n-base+1)*users) is slot n's per-user column.
	sig  []units.DBm
	link []units.KBps
	epkb []units.MJ
	rate []units.KBps
	// linkUnits is ⌊τ·v(sig)/δ⌋, the Eq. (1) per-user limit before the
	// remaining-demand cap.
	linkUnits []int32

	// Tiling state; zero/nil for monolithic tables (window == 0).
	window   int         // resident slot capacity (0 = monolithic, all slots resident)
	base     int         // first resident slot
	resident int         // resident slot count: min(window, slots-base)
	src      *linkSource // retained compile inputs for window advances

	// rows, when non-nil, restricts recompile to those user rows (the
	// engine's live set): rows the engine will never read again — retired
	// users — keep stale values instead of being recomputed every window
	// crossing. nil means every row. The engine refreshes it per attach
	// (setRows) and only once no future admissions remain, so every row a
	// prepare or commit can read is always freshly compiled; direct
	// slotColumns users (tests, tools) leave it nil and get full blocks.
	rows []int
}

// linkSource retains what a tiled table needs to recompile a block: the
// prewarmed sessions, the radio model, the (exact-only) LUT and the
// worker bound. Monolithic tables drop all of it after compilation.
type linkSource struct {
	sessions []*workload.Session
	radio    radio.Model
	lutTab   *radio.Table // nil unless the LUT is provably exact
	workers  int
}

// linkTableBins is the quantizer resolution of the radio LUT used during
// flattening. For the paper's affine fits any bin count is exact; for
// generic models the compiler falls back to direct calls regardless.
const linkTableBins = 4096

// DefaultLinkTableMaxRows caps the automatic link-table compilation in
// New at users×MaxSlots rows (linkRowBytes each): 4M rows ≈ 144 MB with
// the current 36-byte column footprint. Larger runs fall back to the
// uncompiled prepare path; callers that want a bigger table compile one
// explicitly and pass it via Config.Link.
const DefaultLinkTableMaxRows = 4 << 20

// CompileLink flattens the sessions' per-slot link view for cfg's slot
// grid and radio model. It prewarms the sessions to cfg.MaxSlots first
// (idempotent if the caller already did), so the produced values are
// exactly the ones the uncompiled tick path would compute.
func CompileLink(cfg Config, sessions []*workload.Session) (*LinkTable, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sessions) == 0 {
		return nil, fmt.Errorf("cell: link table needs at least one session")
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	users, slots := len(sessions), cfg.MaxSlots
	workload.PrewarmAll(workers, sessions, slots)

	t := &LinkTable{
		users:     users,
		slots:     slots,
		tau:       cfg.Tau,
		unit:      cfg.Unit,
		sig:       make([]units.DBm, users*slots),
		link:      make([]units.KBps, users*slots),
		epkb:      make([]units.MJ, users*slots),
		rate:      make([]units.KBps, users*slots),
		linkUnits: make([]int32, users*slots),
	}

	// Pass A: flatten the stochastic per-user sequences (signal, rate)
	// and find the observed signal domain for the quantizer. Each shard
	// owns one user's column, so shards write disjoint entries.
	type sigRange struct{ lo, hi float64 }
	ranges := make([]sigRange, users)
	pool.Shard(workers, users, func(i int) {
		sess := sessions[i]
		lo, hi := math.Inf(1), math.Inf(-1)
		for n := 0; n < slots; n++ {
			sig := sess.Signal.At(n)
			t.sig[n*users+i] = sig
			t.rate[n*users+i] = sess.RateAt(n)
			if float64(sig) < lo {
				lo = float64(sig)
			}
			if float64(sig) > hi {
				hi = float64(sig)
			}
		}
		ranges[i] = sigRange{lo, hi}
	})
	lo, hi := ranges[0].lo, ranges[0].hi
	for _, r := range ranges[1:] {
		lo, hi = math.Min(lo, r.lo), math.Max(hi, r.hi)
	}

	// Pass B: evaluate the radio curves. The quantized LUT is used only
	// when it is provably bitwise-exact for this model; otherwise each
	// entry calls the analytic model directly (still once per user-slot,
	// still outside the tick path).
	lut, err := radio.NewTable(cfg.Radio, units.DBm(lo), units.DBm(hi), linkTableBins)
	if err != nil {
		return nil, err
	}
	t.lut = lut.Exact()
	tau, unit := float64(cfg.Tau), float64(cfg.Unit)
	pool.Shard(workers, users, func(i int) {
		for n := 0; n < slots; n++ {
			idx := n*users + i
			var v units.KBps
			var p units.MJ
			if t.lut {
				v, p = lut.Lookup(t.sig[idx])
			} else {
				v = cfg.Radio.Throughput.Throughput(t.sig[idx])
				p = cfg.Radio.Power.EnergyPerKB(t.sig[idx])
			}
			t.link[idx] = v
			t.epkb[idx] = p
			t.linkUnits[idx] = int32(floorUnits(float64(v)*tau, unit))
		}
	})
	return t, nil
}

// CompileLinkTiled builds a tiled link table: only `window` consecutive
// slots are resident at a time (users × window rows, linkRowBytes each),
// and requesting a slot outside the resident block recompiles the block
// in place starting at that slot. The engine's strictly advancing slot
// clock therefore pays one block recompilation every `window` slots and
// holds users × window rows of link state no matter how long the horizon
// is — the property the fleet runner's memory budget rests on.
//
// Every row served is bitwise-identical to CompileLink's row for the same
// (slot, user): the per-entry expressions are the same, and the radio LUT
// is consulted only when provably exact, in which case its output equals
// the analytic model's at every signal value regardless of the domain the
// quantizer was built over (each bin of an exact table carries the fit's
// own coefficients). A non-exact model evaluates analytically per entry,
// exactly as CompileLink does. Monolithic compilation observes the whole
// horizon's signal range before building its LUT; tiled compilation
// cannot, and does not need to — exactness is a property of the model,
// not the domain.
//
// A window ≥ cfg.MaxSlots degenerates to (and returns) the monolithic
// table. The returned tiled table is mutable single-owner state: attach
// it to exactly one Simulator (via Config.LinkTileSlots, which calls
// this), never via the shared Config.Link.
func CompileLinkTiled(cfg Config, sessions []*workload.Session, window int) (*LinkTable, error) {
	if window <= 0 {
		return nil, fmt.Errorf("cell: non-positive link tile window %d", window)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sessions) == 0 {
		return nil, fmt.Errorf("cell: link table needs at least one session")
	}
	if window >= cfg.MaxSlots {
		return CompileLink(cfg, sessions)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	users := len(sessions)
	// Prewarm to the horizon like CompileLink: a no-op for the stateless
	// traces fleet workloads use, and for memoizing traces it only
	// front-loads the memo fill the per-tile At calls would do anyway
	// (values are identical either way).
	workload.PrewarmAll(workers, sessions, cfg.MaxSlots)

	// Probe the model for LUT exactness over an arbitrary domain (the
	// paper's evaluation bounds); see the function comment for why the
	// domain is irrelevant to an exact table's output.
	lut, err := radio.NewTable(cfg.Radio, -110, -50, linkTableBins)
	if err != nil {
		return nil, err
	}
	t := &LinkTable{
		users:     users,
		slots:     cfg.MaxSlots,
		tau:       cfg.Tau,
		unit:      cfg.Unit,
		lut:       lut.Exact(),
		sig:       make([]units.DBm, users*window),
		link:      make([]units.KBps, users*window),
		epkb:      make([]units.MJ, users*window),
		rate:      make([]units.KBps, users*window),
		linkUnits: make([]int32, users*window),
		window:    window,
		src:       &linkSource{sessions: sessions, radio: cfg.Radio, workers: workers},
	}
	if t.lut {
		t.src.lutTab = lut
	}
	t.recompile(0)
	return t, nil
}

// ensureSlot makes slot n resident, recompiling the block to start at n
// when it is not. Monolithic tables keep every slot resident.
func (t *LinkTable) ensureSlot(n int) {
	if t.window == 0 || (n >= t.base && n < t.base+t.resident) {
		return
	}
	if n < 0 || n >= t.slots {
		panic(fmt.Sprintf("cell: link table slot %d outside horizon %d", n, t.slots))
	}
	t.recompile(n)
}

// willEvict reports whether making slot n resident would recompile the
// block, invalidating every column view previously returned. The engine
// consults it before the fused pass to know when the pinned previous-slot
// columns must be copied instead of aliased.
func (t *LinkTable) willEvict(n int) bool {
	return t.window > 0 && (n < t.base || n >= t.base+t.resident)
}

// recompile fills the resident block with slots [base, min(base+window,
// slots)). The per-entry expressions mirror CompileLink's two passes
// exactly — flatten sig/rate, then evaluate the radio curves through the
// exact LUT or the analytic interfaces — so each row is bitwise-identical
// to the monolithic table's. Shards own users (columns within the block),
// matching CompileLink's write-disjointness.
func (t *LinkTable) recompile(base int) {
	hi := base + t.window
	if hi > t.slots {
		hi = t.slots
	}
	src := t.src
	tau, unit := float64(t.tau), float64(t.unit)
	fill := func(i int) {
		sess := src.sessions[i]
		for n := base; n < hi; n++ {
			idx := (n-base)*t.users + i
			sig := sess.Signal.At(n)
			var v units.KBps
			var p units.MJ
			if t.lut {
				v, p = src.lutTab.Lookup(sig)
			} else {
				v = src.radio.Throughput.Throughput(sig)
				p = src.radio.Power.EnergyPerKB(sig)
			}
			t.sig[idx] = sig
			t.rate[idx] = sess.RateAt(n)
			t.link[idx] = v
			t.epkb[idx] = p
			t.linkUnits[idx] = int32(floorUnits(float64(v)*tau, unit))
		}
	}
	if rows := t.rows; rows != nil && len(rows) < t.users {
		// Live-row recompile: only the rows the engine can still read are
		// recomputed. The values written are identical to the full pass —
		// stale rows are exactly the ones no reader reaches — so a run's
		// Result is unchanged for any worker count.
		pool.Shard(src.workers, len(rows), func(j int) { fill(rows[j]) })
	} else {
		pool.Shard(src.workers, t.users, fill)
	}
	t.base = base
	t.resident = hi - base
}

// setRows installs the live-row set the next recompile is restricted to
// (nil = every row). The engine passes its live list only when no
// pending admissions remain, so no future reader can touch a skipped
// row; the slice is read synchronously inside the next slotColumns call
// and not retained beyond it in any way that outlives the caller's
// ownership.
func (t *LinkTable) setRows(rows []int) {
	if t.window > 0 {
		t.rows = rows
	}
}

// Users returns the user count the table was compiled for.
func (t *LinkTable) Users() int { return t.users }

// Slots returns the slot horizon the table covers.
func (t *LinkTable) Slots() int { return t.slots }

// Tau returns the slot length the table was compiled for.
func (t *LinkTable) Tau() units.Seconds { return t.tau }

// Unit returns the data-unit size δ the table was compiled for.
func (t *LinkTable) Unit() units.KB { return t.unit }

// ViaLUT reports whether the columns were produced through an exact
// quantized radio.Table (false means direct analytic evaluation).
func (t *LinkTable) ViaLUT() bool { return t.lut }

// TileWindow returns the resident slot window of a tiled table, or 0 for
// a monolithic table (every slot resident).
func (t *LinkTable) TileWindow() int { return t.window }

// MemoryBytes returns the resident size of the packed column arrays:
// users × horizon rows for a monolithic table, users × window for a
// tiled one (linkRowBytes per row either way).
func (t *LinkTable) MemoryBytes() int64 {
	slots := t.slots
	if t.window > 0 {
		slots = t.window
	}
	return int64(t.users) * int64(slots) * linkRowBytes
}

// slotColumns returns zero-copy views of slot n's per-user columns. The
// engine aliases these directly into the sched.Columns slot view; they
// must never be written through. For a monolithic table the views are
// shared immutable state valid forever; for a tiled table they alias the
// resident block (recompiled here if slot n is outside it) and are
// invalidated by the next slotColumns call that advances the window.
func (t *LinkTable) slotColumns(n int) (sig []units.DBm, link []units.KBps, epkb []units.MJ, rate []units.KBps, linkUnits []int32) {
	t.ensureSlot(n)
	lo := (n - t.base) * t.users
	hi := lo + t.users
	return t.sig[lo:hi:hi], t.link[lo:hi:hi], t.epkb[lo:hi:hi], t.rate[lo:hi:hi], t.linkUnits[lo:hi:hi]
}

// linkVerifySamples bounds the per-attach entry re-derivations performed
// by compatible: enough samples, spread across users and slots, to make a
// mismatched model or workload essentially certain to trip, while keeping
// the check O(1) relative to the table size.
const linkVerifySamples = 16

// compatible checks that a caller-supplied table matches the run it is
// being attached to. Shape and slot grid are compared exactly; because
// the radio model and sessions behind the columns cannot be compared
// through the interfaces, a deterministic sample of entries is then
// re-derived from cfg.Radio and the run's (already prewarmed) sessions
// and required to match bitwise — the flattening path evaluates the same
// floating-point expressions (the quantized LUT is used only when
// provably exact), so any divergence means the table was compiled under
// a different model or workload and would silently replay wrong physics.
func (t *LinkTable) compatible(cfg Config, sessions []*workload.Session) error {
	if t.window > 0 {
		return fmt.Errorf("cell: tiled link tables are mutable single-owner state and cannot be shared via Config.Link; set Config.LinkTileSlots to compile one per run")
	}
	if t.users != len(sessions) {
		return fmt.Errorf("cell: link table compiled for %d users, run has %d", t.users, len(sessions))
	}
	if t.slots < cfg.MaxSlots {
		return fmt.Errorf("cell: link table covers %d slots, run needs %d", t.slots, cfg.MaxSlots)
	}
	if t.tau != cfg.Tau || t.unit != cfg.Unit {
		return fmt.Errorf("cell: link table slot grid (tau=%v, unit=%v) != run (tau=%v, unit=%v)",
			t.tau, t.unit, cfg.Tau, cfg.Unit)
	}
	total := t.users * cfg.MaxSlots
	samples := linkVerifySamples
	if samples > total {
		samples = total
	}
	tau, unit := float64(cfg.Tau), float64(cfg.Unit)
	for k := 0; k < samples; k++ {
		// Evenly strided over the flat slot-major arrays: consecutive
		// samples land on different users and well-separated slots.
		idx := 0
		if samples > 1 {
			idx = k * (total - 1) / (samples - 1)
		}
		n, i := idx/t.users, idx%t.users
		sess := sessions[i]
		if sig := sess.Signal.At(n); t.sig[idx] != sig {
			return fmt.Errorf("cell: link table user %d slot %d: signal %v != session's %v (compiled from a different workload?)", i, n, t.sig[idx], sig)
		}
		if rate := sess.RateAt(n); t.rate[idx] != rate {
			return fmt.Errorf("cell: link table user %d slot %d: rate %v != session's %v (compiled from a different workload?)", i, n, t.rate[idx], rate)
		}
		if v := cfg.Radio.Throughput.Throughput(t.sig[idx]); t.link[idx] != v {
			return fmt.Errorf("cell: link table user %d slot %d: throughput %v != model's %v (compiled under a different radio model?)", i, n, t.link[idx], v)
		}
		if p := cfg.Radio.Power.EnergyPerKB(t.sig[idx]); t.epkb[idx] != p {
			return fmt.Errorf("cell: link table user %d slot %d: energy/KB %v != model's %v (compiled under a different radio model?)", i, n, t.epkb[idx], p)
		}
		if lu := int32(floorUnits(float64(t.link[idx])*tau, unit)); t.linkUnits[idx] != lu {
			return fmt.Errorf("cell: link table user %d slot %d: link units %d != derived %d", i, n, t.linkUnits[idx], lu)
		}
	}
	return nil
}
