package cell

// Dense open-tile compile kernel. When the live-row set is the identity
// prefix [0, m) — the open system's steady state between churn bursts,
// and always after resident-set compaction — window compilation shards
// over slots and each slot's rows are written through length-equalized
// reslices, so the column stores carry no per-element bounds checks.
// The bce-check CI job builds this file with -d=ssa/check_bce like
// kernels.go; keep the reslice structure when editing.

// fillTileSlot compiles one slot's physics rows for the dense prefix
// [0, m) into block b at slot offset off. The per-element expressions
// are exactly fillRowInto's — same reads, same float ops — so the dense
// and sparse compile paths stay bit-identical.
func (t *openTile) fillTileSlot(b *tileBlock, off, slot, m int) {
	k := off * t.cap
	sig := b.sig[k : k+m]
	linkR := b.linkR[k : k+m]
	epkb := b.epkb[k : k+m]
	rate := b.rate[k : k+m]
	lu := b.lu[k : k+m]
	sessions := t.sim.sessions[:m]
	// Length-equalizing reslices: pin every column to len(sessions) so
	// the compiler can prove x[i] in range for i := range sessions.
	sig = sig[:len(sessions)]
	linkR = linkR[:len(sessions)]
	epkb = epkb[:len(sessions)]
	rate = rate[:len(sessions)]
	lu = lu[:len(sessions)]
	thr, pow := t.radio.Throughput, t.radio.Power
	tau, unit := t.tau, t.unit
	for i, sess := range sessions {
		sv := sess.Signal.At(slot)
		link := thr.Throughput(sv)
		sig[i] = sv
		linkR[i] = link
		epkb[i] = pow.EnergyPerKB(sv)
		rate[i] = sess.RateAt(slot)
		lu[i] = int32(floorUnits(float64(link)*tau, unit))
	}
}
