package cell

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// openSessions builds a deterministic mixed workload: varying sizes,
// rates, signal levels and staggered starts, all on stateless traces.
func openSessions(n int) []*workload.Session {
	ss := make([]*workload.Session, n)
	for i := 0; i < n; i++ {
		ss[i] = &workload.Session{
			ID:        i,
			Size:      units.KB(800 + 150*i),
			BaseRate:  units.KBps(300 + 40*(i%3)),
			StartSlot: (i % 4) * 7,
			Signal:    signal.Constant(units.DBm(-55-float64(3*i)), signal.DefaultBounds),
		}
	}
	return ss
}

// close1 compares floats up to summation-order noise.
func close1(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if m := a; m > scale {
		scale = m
	}
	return d <= 1e-9*scale
}

func runOpen(t *testing.T, o *OpenSim, upto int) *Result {
	t.Helper()
	if err := o.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AdvanceTo(upto); err != nil {
		t.Fatal(err)
	}
	return o.Finish()
}

// With no churn and a finite horizon, the open engine must return a
// Result byte-identical to the closed Run on the same inputs — open mode
// drives the very same stepped engine.
func TestOpenClosedEquivalence(t *testing.T) {
	cfg := tinyConfig()
	closed, err := New(cfg, openSessions(6), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	want, err := closed.Run()
	if err != nil {
		t.Fatal(err)
	}

	o, err := NewOpen(OpenConfig{Cell: cfg}, openSessions(6), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	got := runOpen(t, o, cfg.MaxSlots)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("open result differs from closed run:\nclosed: %+v\nopen:   %+v", want.TotalEnergy(), got.TotalEnergy())
	}
	st := o.Stats()
	if st.Completed != 6 || st.InService != 0 || st.Admitted != 6 {
		t.Fatalf("stats after full run: %+v", st)
	}
	// Folded totals accumulate in completion order, the result totals in
	// user order: equal up to float summation order.
	if !close1(float64(st.EndedEnergy), float64(want.TotalEnergy())) ||
		!close1(float64(st.EndedRebuffer), float64(want.TotalRebuffer())) {
		t.Fatalf("folded totals (E=%v R=%v) differ from result totals (E=%v R=%v)",
			st.EndedEnergy, st.EndedRebuffer, want.TotalEnergy(), want.TotalRebuffer())
	}
}

// The open tile must be an invisible optimization: the same run with and
// without it, including mid-run churn, yields byte-identical results.
func TestOpenTileMatchesAnalytic(t *testing.T) {
	script := func(tileSlots int) (*Result, OpenStats) {
		cfg := tinyConfig()
		cfg.RunFullHorizon = true
		cfg.MaxSlots = 160
		o, err := NewOpen(OpenConfig{Cell: cfg, MaxSessions: 8, TileSlots: tileSlots}, openSessions(3), sched.NewDefault())
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if _, err := o.AdvanceTo(10); err != nil {
			t.Fatal(err)
		}
		late := openSessions(5)
		if _, err := o.Admit(late[3]); err != nil {
			t.Fatal(err)
		}
		if _, err := o.AdvanceTo(30); err != nil {
			t.Fatal(err)
		}
		idx, err := o.Admit(late[4])
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Depart(idx); err != nil {
			t.Fatal(err)
		}
		if _, err := o.AdvanceTo(cfg.MaxSlots); err != nil {
			t.Fatal(err)
		}
		return o.Finish(), o.Stats()
	}
	resA, stA := script(0)
	resB, stB := script(16)
	if !reflect.DeepEqual(resA, resB) {
		t.Fatalf("tiled open run differs from analytic:\nanalytic: %+v\ntiled:    %+v", resA.TotalEnergy(), resB.TotalEnergy())
	}
	if stA != stB {
		t.Fatalf("stats differ: analytic %+v, tiled %+v", stA, stB)
	}
}

func TestOpenSessionCap(t *testing.T) {
	cfg := tinyConfig()
	cfg.RunFullHorizon = true
	if _, err := NewOpen(OpenConfig{Cell: cfg, MaxSessions: 2}, openSessions(3), sched.NewDefault()); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("over-cap initial population: got %v, want ErrOverCapacity", err)
	}

	o, err := NewOpen(OpenConfig{Cell: cfg, MaxSessions: 2}, openSessions(2), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	extra := openSessions(3)[2]
	_, err = o.Admit(extra)
	var oc *OverCapacityError
	if !errors.As(err, &oc) || oc.Reason != "session-cap" {
		t.Fatalf("admit at cap: got %v, want session-cap OverCapacityError", err)
	}
	if st := o.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	// A departure frees a slot; the same session is then admissible.
	if err := o.Depart(0); err != nil {
		t.Fatal(err)
	}
	idx, err := o.Admit(extra)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("freed slot not reused: got index %d, want 0", idx)
	}
}

func TestOpenHeadroom(t *testing.T) {
	cfg := tinyConfig()
	cfg.RunFullHorizon = true
	cfg.Capacity = 1000
	ss := openSessions(2)
	ss[0].BaseRate = 400
	ss[1].BaseRate = 400
	// Limit 0.5 × 1000 = 500 KB/s: the first session fits, the second
	// would push demand to 800.
	o, err := NewOpen(OpenConfig{Cell: cfg, HeadroomFrac: 0.5}, ss[:1], sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, err = o.Admit(ss[1])
	var oc *OverCapacityError
	if !errors.As(err, &oc) || oc.Reason != "headroom" {
		t.Fatalf("got %v, want headroom OverCapacityError", err)
	}
	if oc.DemandKBps != 800 || oc.LimitKBps != 500 {
		t.Fatalf("headroom error fields: %+v", oc)
	}
	if !errors.Is(err, ErrOverCapacity) {
		t.Fatal("headroom error must match ErrOverCapacity")
	}
}

// Free-list discipline: freed table slots are reused lowest-first, and
// the per-user state of a reused slot belongs entirely to the new
// session.
func TestOpenFreelistReuse(t *testing.T) {
	cfg := tinyConfig()
	cfg.RunFullHorizon = true
	cfg.MaxSlots = 400
	o, err := NewOpen(OpenConfig{Cell: cfg}, openSessions(3), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	if err := o.Depart(2); err != nil {
		t.Fatal(err)
	}
	if err := o.Depart(0); err != nil {
		t.Fatal(err)
	}
	if err := o.Depart(0); err == nil {
		t.Fatal("double depart accepted")
	}
	ss := openSessions(5)
	idx, err := o.Admit(ss[3])
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("first admit after frees got slot %d, want 0", idx)
	}
	idx, err = o.Admit(ss[4])
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("second admit after frees got slot %d, want 2", idx)
	}
	// Table did not grow: three slots serve five lifetime sessions.
	st := o.Stats()
	if st.TableLen != 3 || st.Admitted != 5 || st.Departed != 2 || st.InService != 3 {
		t.Fatalf("stats: %+v", st)
	}
	if _, err := o.AdvanceTo(cfg.MaxSlots); err != nil {
		t.Fatal(err)
	}
	if st := o.Stats(); st.Completed != 3 || st.InService != 0 {
		t.Fatalf("end stats: %+v", st)
	}
}

func TestOpenWindowSnapshots(t *testing.T) {
	cfg := tinyConfig()
	cfg.RunFullHorizon = true
	cfg.MaxSlots = 80
	o, err := NewOpen(OpenConfig{Cell: cfg, WindowSlots: 16, Windows: 2}, openSessions(4), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	res := runOpen(t, o, cfg.MaxSlots)
	snaps := o.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("retained %d snapshots, want 2", len(snaps))
	}
	if snaps[0].FromSlot != 48 || snaps[0].ToSlot != 64 || snaps[1].FromSlot != 64 || snaps[1].ToSlot != 80 {
		t.Fatalf("snapshot bounds: %+v", snaps)
	}
	// Bounded mode keeps the full per-slot series: each snapshot's deltas
	// must equal the direct sums over its window.
	for _, sn := range snaps {
		var e units.MJ
		var r units.Seconds
		var u int
		for n := sn.FromSlot; n < sn.ToSlot; n++ {
			e += res.PerSlot[n].Energy
			r += res.PerSlot[n].Rebuffer
			u += res.PerSlot[n].UsedUnits
		}
		if e != sn.Energy || r != sn.Rebuffer || u != sn.UsedUnits {
			t.Fatalf("window [%d,%d): snapshot (E=%v R=%v U=%d) != per-slot sums (E=%v R=%v U=%d)",
				sn.FromSlot, sn.ToSlot, sn.Energy, sn.Rebuffer, sn.UsedUnits, e, r, u)
		}
	}
}

func TestOpenUnbounded(t *testing.T) {
	cfg := tinyConfig()
	cfg.RunFullHorizon = true
	cfg.MaxSlots = 32 // initial horizon only; the clock extends on demand
	o, err := NewOpen(OpenConfig{Cell: cfg, Unbounded: true, WindowSlots: 16, Windows: 2}, openSessions(2), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ss := openSessions(8)
	for upto, k := 64, 2; upto <= 512; upto += 64 {
		done, err := o.AdvanceTo(upto)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatalf("unbounded run reported done at slot %d", upto)
		}
		if o.Clock() != upto {
			t.Fatalf("clock %d, want %d", o.Clock(), upto)
		}
		// Keep churn flowing well past the initial horizon.
		if k < len(ss) {
			if _, err := o.Admit(ss[k]); err != nil {
				t.Fatal(err)
			}
			k++
		}
		// The per-slot series must stay bounded by the retained windows.
		if got := len(o.eng.curRes.PerSlot); got > 2*16 {
			t.Fatalf("per-slot series grew to %d entries at slot %d (bound 32)", got, upto)
		}
	}
	st := o.Stats()
	if st.Admitted != 8 || st.Completed != 8 || st.InService != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if q := o.RebufferQuantile(0.5); q < 0 {
		t.Fatalf("rebuffer p50 = %v", q)
	}
	if len(o.Snapshots()) != 2 {
		t.Fatalf("retained %d snapshots, want 2", len(o.Snapshots()))
	}
}

func TestOpenUnboundedRejectsUnboundedMemory(t *testing.T) {
	cfg := tinyConfig()
	cfg.RunFullHorizon = true

	// Memoizing signal traces grow with the horizon.
	sine, err := signal.NewSine(signal.SineConfig{Bounds: signal.DefaultBounds, PeriodSlots: 600}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	ss := openSessions(1)
	ss[0].Signal = sine
	if _, err := NewOpen(OpenConfig{Cell: cfg, Unbounded: true}, ss, sched.NewDefault()); err == nil {
		t.Fatal("memoizing trace accepted in unbounded mode")
	}

	// VBR rate memos grow with the horizon too.
	ss = openSessions(1)
	ss[0].RateJitter = 30
	if _, err := NewOpen(OpenConfig{Cell: cfg, Unbounded: true}, ss, sched.NewDefault()); err == nil {
		t.Fatal("VBR session accepted in unbounded mode")
	}

	// Unbounded requires the full-horizon engine.
	cfg2 := tinyConfig()
	if _, err := NewOpen(OpenConfig{Cell: cfg2, Unbounded: true}, openSessions(1), sched.NewDefault()); err == nil {
		t.Fatal("unbounded mode accepted without RunFullHorizon")
	}
}

func TestOpenValidation(t *testing.T) {
	cfg := tinyConfig()
	// Empty initial population needs the full-horizon engine.
	if _, err := NewOpen(OpenConfig{Cell: cfg}, nil, sched.NewDefault()); err == nil {
		t.Fatal("empty population accepted without RunFullHorizon")
	}
	cfgFH := tinyConfig()
	cfgFH.RunFullHorizon = true
	o, err := NewOpen(OpenConfig{Cell: cfgFH}, nil, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	// Admit/Depart before Start are errors.
	if _, err := o.Admit(openSessions(1)[0]); err == nil {
		t.Fatal("Admit before Start accepted")
	}
	if err := o.Depart(0); err == nil {
		t.Fatal("Depart before Start accepted")
	}
	if err := o.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A run started empty serves arrivals.
	if _, err := o.Admit(openSessions(1)[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AdvanceTo(cfgFH.MaxSlots); err != nil {
		t.Fatal(err)
	}
	if st := o.Stats(); st.Completed != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// The open tile needs a session cap to size its rows.
	if _, err := NewOpen(OpenConfig{Cell: cfgFH, TileSlots: 8}, openSessions(1), sched.NewDefault()); err == nil {
		t.Fatal("tile without session cap accepted")
	}
	// Mid-run admission cannot honor per-user slot recording.
	cfgRec := tinyConfig()
	cfgRec.RunFullHorizon = true
	cfgRec.RecordPerUserSlots = true
	o2, err := NewOpen(OpenConfig{Cell: cfgRec}, openSessions(1), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	if err := o2.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := o2.Admit(openSessions(2)[1]); err == nil {
		t.Fatal("mid-run admit accepted with RecordPerUserSlots")
	}
}

// Departing a session that never started (still pending) must keep the
// engine's unfinished bookkeeping right: the run still ends.
func TestOpenDepartPending(t *testing.T) {
	cfg := tinyConfig()
	ss := openSessions(2)
	ss[1].StartSlot = 300 // far in the future
	o, err := NewOpen(OpenConfig{Cell: cfg}, ss, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	if err := o.Depart(1); err != nil {
		t.Fatal(err)
	}
	done, err := o.AdvanceTo(cfg.MaxSlots)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("run did not finish")
	}
	res := o.Finish()
	// Without RunFullHorizon the engine early-exits once user 0 finishes —
	// long before the departed user's phantom start slot.
	if res.Slots >= 300 {
		t.Fatalf("run served %d slots; departure did not release the pending user", res.Slots)
	}
	st := o.Stats()
	if st.Completed != 1 || st.Departed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// The free-list's backing array must not creep: the old pop re-sliced
// the head, abandoning one slot of storage per reuse and forcing a
// reallocation every O(cap) churn cycles. The descending-sort/tail-pop
// discipline keeps the array anchored, so sustained admit/depart cycling
// holds its capacity flat after the first few cycles.
func TestOpenFreelistStableCapacity(t *testing.T) {
	cfg := tinyConfig()
	cfg.RunFullHorizon = true
	cfg.MaxSlots = 1 << 20
	initial := openSessions(4)
	for _, s := range initial {
		s.Size = 1 << 20 // never completes; only Depart frees slots
		s.StartSlot = 0
	}
	o, err := NewOpen(OpenConfig{Cell: cfg, Unbounded: true, MaxSessions: 8}, initial, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	template := openSessions(1)[0]
	template.Size = 1 << 20
	warmCap := -1
	for cycle := 0; cycle < 300; cycle++ {
		// Free two slots, reuse them, tick a little.
		if err := o.Depart(1); err != nil {
			t.Fatal(err)
		}
		if err := o.Depart(3); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 2; k++ {
			if _, err := o.Admit(template); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := o.AdvanceTo(o.Clock() + 2); err != nil {
			t.Fatal(err)
		}
		if cycle == 9 {
			warmCap = cap(o.freelist)
		}
		if cycle > 9 && cap(o.freelist) != warmCap {
			t.Fatalf("freelist capacity crept: %d after cycle %d, was %d after warmup", cap(o.freelist), cycle, warmCap)
		}
	}
	if st := o.Stats(); st.TableLen != 4 {
		t.Fatalf("table grew to %d slots under pure-reuse churn, want 4", st.TableLen)
	}
}

// Resident-set compaction: when churn empties most of the table in
// unbounded mode, live rows are packed down to an identity prefix. The
// move must be invisible — serial lookups keep working (DepartSerial
// included), the ledger conserves, and the tiled and analytic arms stay
// identical — while the table visibly shrinks.
func TestOpenCompactionChurn(t *testing.T) {
	run := func(tileSlots, workers int) (OpenStats, []WindowSnapshot, map[uint64]bool) {
		cfg := tinyConfig()
		cfg.RunFullHorizon = true
		cfg.MaxSlots = 64
		cfg.Workers = workers
		cfg.ShardSize = 16
		o, err := NewOpen(OpenConfig{
			Cell: cfg, Unbounded: true, MaxSessions: 256,
			TileSlots: tileSlots, WindowSlots: 32, Windows: 2,
		}, nil, sched.NewDefault())
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Fill well past the compaction floor.
		sers := make([]uint64, 0, 200)
		big := openSessions(1)[0]
		big.Size = 1 << 20 // never completes within the script
		for i := 0; i < 200; i++ {
			idx, err := o.Admit(big)
			if err != nil {
				t.Fatal(err)
			}
			ser, ok := o.Serial(idx)
			if !ok {
				t.Fatalf("no serial for fresh admit %d", idx)
			}
			sers = append(sers, ser)
		}
		if _, err := o.AdvanceTo(40); err != nil {
			t.Fatal(err)
		}
		grown := o.Stats().TableLen
		if grown != 200 {
			t.Fatalf("table length %d before churn, want 200", grown)
		}
		// Depart 180 of 200: live fraction 10% < 50% triggers compaction
		// on the next AdvanceTo.
		for _, ser := range sers[:180] {
			if ok, err := o.DepartSerial(-1, ser); err != nil || !ok {
				t.Fatalf("depart serial %d: ok=%v err=%v", ser, ok, err)
			}
		}
		if _, err := o.AdvanceTo(80); err != nil {
			t.Fatal(err)
		}
		if got := o.Stats().TableLen; got != 20 {
			t.Fatalf("table not compacted: length %d, want 20", got)
		}
		// Every survivor is still addressable by serial, and the slot the
		// ledger maps it to agrees with Serial.
		alive := make(map[uint64]bool)
		for _, ser := range sers[180:] {
			idx, ok := o.bySerial[ser]
			if !ok {
				t.Fatalf("serial %d lost by compaction", ser)
			}
			if got, ok := o.Serial(idx); !ok || got != ser {
				t.Fatalf("slot %d serial: got %d ok=%v, want %d", idx, got, ok, ser)
			}
			alive[ser] = true
		}
		// DepartSerial still lands after the move.
		if ok, err := o.DepartSerial(-1, sers[190]); err != nil || !ok {
			t.Fatalf("post-compaction DepartSerial: ok=%v err=%v", ok, err)
		}
		delete(alive, sers[190])
		// Admissions after compaction land in freed or appended slots and
		// the run keeps serving.
		if _, err := o.Admit(big); err != nil {
			t.Fatal(err)
		}
		if _, err := o.AdvanceTo(160); err != nil {
			t.Fatal(err)
		}
		st := o.Stats()
		if st.Admitted != st.Completed+st.Departed+st.InService {
			t.Fatalf("ledger leaks after compaction: %+v", st)
		}
		o.Finish()
		return st, o.Snapshots(), alive
	}
	base, baseSnaps, _ := run(0, 1)
	for _, arm := range []struct{ tile, workers int }{{16, 1}, {16, 4}, {0, 4}} {
		st, snaps, _ := run(arm.tile, arm.workers)
		if st != base {
			t.Errorf("tile=%d workers=%d: stats %+v != %+v", arm.tile, arm.workers, st, base)
		}
		if !reflect.DeepEqual(snaps, baseSnaps) {
			t.Errorf("tile=%d workers=%d: snapshots diverge", arm.tile, arm.workers)
		}
	}
}

// FuzzAdmitDepartSerial drives a random admit/depart/advance script
// against an unbounded, tiled, compacting OpenSim and asserts the
// serial ledger never tears: a departed or stale serial is a clean
// no-op, a live serial always resolves to a slot whose Serial agrees,
// and the session ledger conserves at every step.
func FuzzAdmitDepartSerial(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 0, 2, 1, 3, 2})
	f.Add([]byte{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}
		cfg := tinyConfig()
		cfg.RunFullHorizon = true
		cfg.MaxSlots = 64
		o, err := NewOpen(OpenConfig{
			Cell: cfg, Unbounded: true, MaxSessions: 96,
			TileSlots: 8, WindowSlots: 16, Windows: 2,
		}, nil, sched.NewDefault())
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		template := openSessions(1)[0]
		var live []uint64 // serials we admitted and have not departed
		for _, op := range script {
			switch op % 4 {
			case 0, 1: // admit
				idx, err := o.Admit(template)
				if errors.Is(err, ErrOverCapacity) {
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				ser, ok := o.Serial(idx)
				if !ok {
					t.Fatalf("fresh admit at slot %d has no serial", idx)
				}
				live = append(live, ser)
			case 2: // depart one of ours (may have completed naturally)
				if len(live) == 0 {
					continue
				}
				k := int(op) % len(live)
				ser := live[k]
				if _, err := o.DepartSerial(-1, ser); err != nil {
					t.Fatal(err)
				}
				// Departed either way now (by us or by natural completion):
				// the serial must no longer resolve.
				if _, ok := o.bySerial[ser]; ok {
					t.Fatalf("serial %d still resolves after depart", ser)
				}
				live = append(live[:k], live[k+1:]...)
			case 3: // advance (reaps, rotates, maybe compacts)
				if _, err := o.AdvanceTo(o.Clock() + int(op%32) + 1); err != nil {
					t.Fatal(err)
				}
			}
			// Ledger conservation and serial/slot agreement, every step.
			st := o.Stats()
			if st.Admitted != st.Completed+st.Departed+st.InService {
				t.Fatalf("ledger leaks: %+v", st)
			}
			for ser, idx := range o.bySerial {
				if got, ok := o.Serial(idx); !ok || got != ser {
					t.Fatalf("bySerial[%d]=%d but Serial(%d)=%d ok=%v", ser, idx, idx, got, ok)
				}
			}
		}
		o.Finish()
		if st := o.Stats(); st.InService != 0 {
			t.Fatalf("Finish left %d in service", st.InService)
		}
	})
}
