package cell

import (
	"fmt"
	"math"

	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/units"
)

// This file adapts the compiled LinkTable into the sched.Forecast the
// Predictive scheduler consumes. The exact view replays the table's
// slot-major windows as zero-copy column reslices — the same memory the
// engine's prepare phase aliases into sched.Columns, so prediction and
// physics can never disagree at zero error. NoisyForecast layers a
// seeded multiplicative error model on top, turning prediction quality
// into a sweepable scenario axis while keeping every read a pure
// function of (seed, slot, user).

// SlotEnergyPerKB returns slot n's per-user energy-price column as a
// zero-copy reslice of the table. Callers must never write through it.
// Monolithic tables return shared immutable state valid forever; tiled
// tables return a view of the resident block (recompiled if needed) that
// the next window advance invalidates.
func (t *LinkTable) SlotEnergyPerKB(n int) []units.MJ {
	t.ensureSlot(n)
	lo := (n - t.base) * t.users
	hi := lo + t.users
	return t.epkb[lo:hi:hi]
}

// SlotLinkUnits returns slot n's per-user Eq. (1) unit-limit column as a
// zero-copy reslice of the table, with the same validity rules as
// SlotEnergyPerKB.
func (t *LinkTable) SlotLinkUnits(n int) []int32 {
	t.ensureSlot(n)
	lo := (n - t.base) * t.users
	hi := lo + t.users
	return t.linkUnits[lo:hi:hi]
}

// MaxLinkUnits returns the largest Eq. (1) per-user unit limit anywhere
// in the table — the cap no honest or corrupted prediction of this
// table may exceed. Monolithic tables only: a tiled table holds one
// window, so the whole-horizon maximum is not available (NewNoisyForecast,
// the sole consumer, rejects tiled tables for this reason).
func (t *LinkTable) MaxLinkUnits() int {
	var m int32
	for _, lu := range t.linkUnits {
		if lu > m {
			m = lu
		}
	}
	return int(m)
}

// tableForecast is the exact future-channel view of a monolithic table:
// predictions are the compiled columns themselves.
type tableForecast struct{ t *LinkTable }

// Forecast returns the table's exact sched.Forecast view. A monolithic
// table's forecast also implements sched.SlotWindower, so the Predictive
// scheduler's window prefetch re-aliases the columns without copies. A
// tiled table returns a computed forecast instead: random-access reads
// re-derive each entry from the retained sessions and radio model through
// the identical expressions the compiled rows used — bitwise-equal values
// — rather than thrashing the resident window, and no SlotWindower is
// offered since a window view would be invalidated by the engine's own
// tile advances.
func (t *LinkTable) Forecast() sched.Forecast {
	if t.window > 0 {
		return computedForecast{t}
	}
	return tableForecast{t}
}

// computedForecast serves a tiled table's predictions by recomputation:
// each read evaluates the same signal/LUT-or-analytic/floor expressions
// recompile writes into the resident block, so predictions equal the
// monolithic table's columns bitwise without requiring residency.
type computedForecast struct{ t *LinkTable }

// HorizonSlots implements sched.Forecast.
func (f computedForecast) HorizonSlots() int { return f.t.slots }

// PredictedEnergyPerKB implements sched.Forecast.
func (f computedForecast) PredictedEnergyPerKB(n, i int) units.MJ {
	_, p := f.t.evalRow(n, i)
	return p
}

// PredictedLinkUnits implements sched.Forecast.
func (f computedForecast) PredictedLinkUnits(n, i int) int {
	v, _ := f.t.evalRow(n, i)
	return floorUnits(float64(v)*float64(f.t.tau), float64(f.t.unit))
}

// evalRow evaluates one (slot, user) link entry through the same
// expressions recompile uses for the resident block.
func (t *LinkTable) evalRow(n, i int) (units.KBps, units.MJ) {
	sig := t.src.sessions[i].Signal.At(n)
	if t.lut {
		return t.src.lutTab.Lookup(sig)
	}
	return t.src.radio.Throughput.Throughput(sig), t.src.radio.Power.EnergyPerKB(sig)
}

// HorizonSlots implements sched.Forecast.
func (f tableForecast) HorizonSlots() int { return f.t.slots }

// PredictedEnergyPerKB implements sched.Forecast.
func (f tableForecast) PredictedEnergyPerKB(n, i int) units.MJ {
	return f.t.epkb[n*f.t.users+i]
}

// PredictedLinkUnits implements sched.Forecast.
func (f tableForecast) PredictedLinkUnits(n, i int) int {
	return int(f.t.linkUnits[n*f.t.users+i])
}

// PredictedWindow implements sched.SlotWindower.
func (f tableForecast) PredictedWindow(n int) ([]units.MJ, []int32) {
	return f.t.SlotEnergyPerKB(n), f.t.SlotLinkUnits(n)
}

// NoisyForecast corrupts a link table's predictions with seeded
// multiplicative noise of relative level errFrac: each (slot, user)
// coordinate draws an independent factor uniform in [1−errFrac,
// 1+errFrac] for the price and another for the link limit. Draws are
// pure functions of (seed, slot, user) via rng.Hash3 — no generator
// state — so reads are deterministic, order-independent and identical
// across reconstructions with the same seed, which the FuzzForecastNoise
// target pins. Corrupted prices are clamped at zero and corrupted link
// limits to [0, MaxLinkUnits], so a prediction can never be negative
// nor exceed the best link the table ever offers.
//
// An error level of 1 or more means predictions carry no information
// about the channel at all; the forecast then reports a zero horizon,
// and a Predictive scheduler consulting it degenerates to its myopic
// baseline (the 100%-error differential test pins this byte-for-byte).
// NoisyForecast deliberately does not implement sched.SlotWindower:
// corruption happens per read, never by materializing windows.
type NoisyForecast struct {
	t       *LinkTable
	seed    uint64
	errFrac float64
	maxLU   int
}

// NewNoisyForecast wraps the table's forecast with the seeded error
// model. errFrac must be non-negative and finite.
func NewNoisyForecast(t *LinkTable, seed uint64, errFrac float64) (*NoisyForecast, error) {
	if t == nil {
		return nil, fmt.Errorf("cell: noisy forecast needs a link table")
	}
	if t.window > 0 {
		return nil, fmt.Errorf("cell: noisy forecast needs a monolithic link table (tiled tables cannot provide the whole-horizon MaxLinkUnits clamp)")
	}
	if math.IsNaN(errFrac) || math.IsInf(errFrac, 0) || errFrac < 0 {
		return nil, fmt.Errorf("cell: invalid forecast error level %v", errFrac)
	}
	return &NoisyForecast{t: t, seed: seed, errFrac: errFrac, maxLU: t.MaxLinkUnits()}, nil
}

// ErrFrac returns the configured relative error level.
func (f *NoisyForecast) ErrFrac() float64 { return f.errFrac }

// noiseSalt* separate the price and link-limit draw streams of one
// coordinate; without distinct salts the two corruptions would be
// perfectly correlated.
const (
	noiseSaltPrice = 0x70726963 // "pric"
	noiseSaltLink  = 0x6C696E6B // "link"
)

// factor returns the multiplicative corruption for one coordinate and
// stream: uniform in [1−errFrac, 1+errFrac].
func (f *NoisyForecast) factor(n, i int, salt uint64) float64 {
	u := rng.HashFloat3(f.seed^salt, uint64(n), uint64(i))
	return 1 + f.errFrac*(2*u-1)
}

// HorizonSlots implements sched.Forecast. A fully corrupted forecast
// (errFrac ≥ 1) predicts nothing.
func (f *NoisyForecast) HorizonSlots() int {
	if f.errFrac >= 1 {
		return 0
	}
	return f.t.slots
}

// PredictedEnergyPerKB implements sched.Forecast.
func (f *NoisyForecast) PredictedEnergyPerKB(n, i int) units.MJ {
	p := float64(f.t.epkb[n*f.t.users+i]) * f.factor(n, i, noiseSaltPrice)
	if p < 0 {
		p = 0
	}
	return units.MJ(p)
}

// PredictedLinkUnits implements sched.Forecast.
func (f *NoisyForecast) PredictedLinkUnits(n, i int) int {
	lu := int(math.Round(float64(f.t.linkUnits[n*f.t.users+i]) * f.factor(n, i, noiseSaltLink)))
	if lu < 0 {
		return 0
	}
	if lu > f.maxLU {
		return f.maxLU
	}
	return lu
}
