package cell

import (
	"context"
	"fmt"

	"jointstream/internal/sched"
)

// RunReference executes the simulation with the original full-scan
// serial engine: every slot prepares, schedules and commits all N users
// in index order, with flat (unsharded) accumulation. It is the
// reference arm of the engine differential tests in internal/simtest —
// Run must reproduce its Result bit for bit whenever the shard layout is
// a single shard (live users ≤ ShardSize), and match it up to float
// reassociation otherwise. Production callers use Run.
func (s *Simulator) RunReference() (*Result, error) {
	return s.RunReferenceCtx(context.Background())
}

// RunReferenceCtx is RunReference with the same per-slot cancellation
// checkpoint as RunCtx.
func (s *Simulator) RunReferenceCtx(ctx context.Context) (*Result, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	res := s.newResult()
	slot := &s.slot
	alloc := s.alloc
	slot.ActiveList = nil // schedulers exercise their full-scan fallback

	// The reference arm runs on the original array-of-structs view: a
	// materialized []sched.User rebuilt from scratch every slot, with the
	// column view detached so the accessors route to it. This is the
	// differential oracle the SoA engine must reproduce bit for bit.
	slot.Cols = nil
	if len(slot.Users) != len(s.users) {
		slot.Users = make([]sched.User, len(s.users))
		for i := range slot.Users {
			slot.Users[i].Index = i
		}
	}

	for slotIdx := 0; slotIdx < s.cfg.MaxSlots; slotIdx++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cell: run cancelled at slot %d: %w", slotIdx, err)
		}
		slot.N = slotIdx
		allDone := true
		for i := range s.users {
			u := &s.users[i]
			// Analytic-only prepare: the reference arm always evaluates the
			// signal and radio models through the interfaces, so the
			// differential tests assert the flattened table reproduces the
			// interface path bitwise. s.link itself is left untouched.
			s.prepareUser(slotIdx, i)
			if slotIdx < int(u.startSlot) || !u.buf.PlaybackComplete() {
				allDone = false
			}
			alloc[i] = 0
		}
		if allDone && !s.cfg.RunFullHorizon && slotIdx > 0 {
			break
		}

		// Outage slots mirror the production engine: zero capacity, no
		// Allocate call, degraded physics in the commit loop below.
		if s.outageAt(slotIdx) {
			slot.CapacityUnits = 0
			res.DegradedSlots++
		} else {
			slot.CapacityUnits = s.capUnits
			s.sched.Allocate(slot, alloc)
			clamps, err := s.enforce(slot, alloc)
			if err != nil {
				return nil, fmt.Errorf("cell: slot %d: %w", slotIdx, err)
			}
			res.ClampEvents += clamps
		}

		acc := slotAccum{errUser: -1}
		for i := range s.users {
			if err := s.commitUser(slotIdx, i, res, &acc); err != nil {
				return nil, fmt.Errorf("cell: user %d slot %d: %w", i, slotIdx, err)
			}
		}
		st := SlotTotals{
			Fairness:  jain(acc.fairNum, acc.fairDen, acc.fairCount),
			Energy:    acc.energy,
			Rebuffer:  acc.rebuffer,
			UsedUnits: acc.usedUnits,
		}
		res.PerSlot = append(res.PerSlot, st)
		res.Slots = slotIdx + 1
	}
	res.Finalize()
	return res, nil
}
