package cell

import (
	"testing"

	"jointstream/internal/abr"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

func abrConfig() Config {
	cfg := tinyConfig()
	a := abr.DefaultConfig()
	cfg.ABR = &a
	return cfg
}

func TestABRConfigValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.ABR = &abr.Config{} // invalid: empty ladder
	if err := cfg.Validate(); err == nil {
		t.Error("invalid ABR config accepted")
	}
}

func TestABRSessionCompletes(t *testing.T) {
	cfg := abrConfig()
	// 150-second video (content time derives from Size/BaseRate), long
	// enough to outlast the 60 s player buffer cap and let quality climb.
	sessions := tinySessions(t, 1, 60000, 400)
	sim, err := New(cfg, sessions, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	u := res.Users[0]
	if u.CompletionSlot < 0 {
		t.Fatal("ABR session never completed")
	}
	if u.MeanQuality() <= 0 {
		t.Error("no quality recorded")
	}
	// On a generous -60 dBm constant channel with ample capacity, the
	// player must climb above its lowest rung.
	if u.MeanQuality() <= 150 {
		t.Errorf("mean quality %v pinned at the lowest rung", u.MeanQuality())
	}
	// Delivered bytes must be consistent with the ladder span: between
	// duration x minRung and duration x maxRung.
	dur := 150.0
	if got := float64(u.DeliveredKB); got < dur*150*0.9 || got > dur*750*1.1 {
		t.Errorf("delivered %v KB outside ladder-implied range", got)
	}
}

func TestABRQualityDegradesUnderContention(t *testing.T) {
	run := func(capacity units.KBps) units.KBps {
		cfg := abrConfig()
		cfg.Capacity = capacity
		// Videos must outlast the player's 60 s buffer cap for quality to
		// have room to climb: ~90-110 s of content at the nominal rates.
		wl, err := workload.Generate(func() workload.Config {
			c := workload.PaperDefaults(6)
			c.SizeMin = 40 * units.Megabyte
			c.SizeMax = 50 * units.Megabyte
			c.Signal.PeriodSlots = 48
			return c
		}(), rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(cfg, wl, sched.NewDefault())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, u := range res.Users {
			sum += float64(u.MeanQuality())
		}
		return units.KBps(sum / float64(len(res.Users)))
	}
	rich := run(20000)
	poor := run(1200)
	if poor >= rich {
		t.Errorf("quality under contention (%v) not below uncontended (%v)", poor, rich)
	}
}

func TestABRWithEMA(t *testing.T) {
	cfg := abrConfig()
	em, err := sched.NewEMA(sched.EMAConfig{V: 0.1, RRC: cfg.RRC})
	if err != nil {
		t.Fatal(err)
	}
	sessions := tinySessions(t, 2, 12000, 400)
	sim, err := New(cfg, sessions, em)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range res.Users {
		if u.CompletionSlot < 0 {
			t.Errorf("ABR user %d never completed under EMA", i)
		}
	}
}

func TestFixedRateQualityEqualsBaseRate(t *testing.T) {
	cfg := tinyConfig()
	sessions := tinySessions(t, 1, 2000, 400)
	sim, _ := New(cfg, sessions, sched.NewDefault())
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Users[0].MeanQuality(); got != 400 {
		t.Errorf("fixed-rate quality = %v, want 400", got)
	}
}
