// Open-system serving mode: the churn-driven, unbounded-horizon face of
// the engine (ROADMAP item 2). OpenSim wraps the stepped Simulator
// (Start/Advance/Finish) and adds what a long-running service needs on
// top of a closed batch run:
//
//   - mid-run admission and departure: sessions/columns are allocated
//     from a free-list of table slots, departed or completed users are
//     folded into streaming aggregates and their slots compacted out for
//     reuse instead of lingering retired;
//   - an admission controller: a cap on concurrent sessions plus an
//     Eq.-1-style capacity headroom check (Σ required rates against a
//     fraction of the base station's serving capacity S), rejecting with
//     a typed *OverCapacityError instead of degrading everyone;
//   - an unbounded horizon: the slot clock extends on demand and the
//     per-slot series is trimmed to the retained metric windows, so
//     memory is bounded by the session table and the window span, never
//     by uptime;
//   - sliding-window metrics: per-session rebuffering and energy totals
//     land in windowed streaming histograms (metrics.WindowedHist) at
//     session end, and each window closes with a Result-delta snapshot,
//     so p50/p99 never require a finalized run;
//   - tiled link windows (openTile): an engine-owned slot-major block of
//     analytically computed physics rows the static columns alias
//     zero-copy, recompiled per window — the open-world replacement for
//     the horizon-shaped link table, feeding the same tabled prepare
//     path bit-identical values.
//
// Closed-world equivalence is pinned by construction and by test: with
// no mid-run Admit/Depart calls and a finite horizon, OpenSim drives the
// very same Simulator through the very same Advance loop, so Finish
// returns a Result byte-identical to RunCtx (internal/simtest's
// open-mode differential matrix asserts it across all nine schedulers).
package cell

import (
	"context"
	"errors"
	"fmt"

	"jointstream/internal/abr"
	"jointstream/internal/metrics"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// ErrOverCapacity is the sentinel every admission rejection matches via
// errors.Is; the concrete error is always a *OverCapacityError carrying
// which limit bound.
var ErrOverCapacity = errors.New("cell: over capacity")

// OverCapacityError reports an admission rejection: the session-table
// cap or the capacity headroom check refused a new session.
type OverCapacityError struct {
	// Reason is "session-cap" or "headroom".
	Reason string
	// InService and MaxSessions describe the session-cap rejection.
	InService, MaxSessions int
	// DemandKBps and LimitKBps describe the headroom rejection: the
	// would-be total required rate versus HeadroomFrac × Capacity.
	DemandKBps, LimitKBps units.KBps
}

func (e *OverCapacityError) Error() string {
	if e.Reason == "session-cap" {
		return fmt.Sprintf("cell: admission rejected: %d sessions in service at cap %d", e.InService, e.MaxSessions)
	}
	return fmt.Sprintf("cell: admission rejected: demand %v KB/s exceeds headroom %v KB/s", e.DemandKBps, e.LimitKBps)
}

// Is makes errors.Is(err, ErrOverCapacity) match.
func (e *OverCapacityError) Is(target error) bool { return target == ErrOverCapacity }

// OpenConfig parameterizes an open-system run.
type OpenConfig struct {
	// Cell is the engine configuration. Open mode always evaluates the
	// radio model analytically (or through the open tile below) — the
	// horizon-shaped link table cannot follow mid-run admissions — so
	// Link/LinkTileSlots/LinkTableMaxRows are overridden; the LUT
	// exactness property keeps results bit-identical to the tabled path.
	// For churn-driven runs set Cell.RunFullHorizon: without it the
	// engine's early exit declares the run over the moment every
	// *currently admitted* session finishes, wedging later arrivals.
	Cell Config
	// Unbounded serves indefinitely: AdvanceTo extends the slot horizon
	// on demand (Cell.MaxSlots only sets the initial clock) and the
	// per-slot series is trimmed to the retained metric windows. Requires
	// Cell.RunFullHorizon, forbids Cell.RecordPerUserSlots, and every
	// session must be memory-bounded: a stateless signal trace (no
	// signal.Prewarmer memo) and zero RateJitter.
	Unbounded bool
	// MaxSessions caps concurrent in-service sessions (the admission
	// controller's first check) and sizes the open tile. 0 means no cap
	// (and forbids TileSlots).
	MaxSessions int
	// HeadroomFrac enables the Eq.-1-style admission check: a new session
	// is rejected when the summed required rate of every in-service
	// session plus its own would exceed HeadroomFrac × Cell.Capacity.
	// 0 disables the check.
	HeadroomFrac float64
	// TileSlots, when positive, installs the open link tile: physics rows
	// for a TileSlots-slot window × MaxSessions users are computed per
	// window and aliased by the slot columns, so per-slot prepare skips
	// the radio interfaces exactly like the closed engine's link table.
	// Requires MaxSessions > 0. Values are bit-identical to the analytic
	// path by construction.
	TileSlots int
	// WindowSlots is the metric window length in slots (default 256).
	WindowSlots int
	// Windows is how many windows the sliding metrics retain (default 4).
	Windows int
	// HistBins and RebufferBinWidth/EnergyBinWidth parameterize the
	// windowed histograms (defaults: 64 bins, width max(Tau, 1) seconds
	// for rebuffering, 1024 mJ for energy; widths auto-widen).
	HistBins                         int
	RebufferBinWidth, EnergyBinWidth float64
}

// OpenStats are the open-system run's cumulative counters.
type OpenStats struct {
	// Slot is the next slot the engine will tick.
	Slot int
	// InService counts admitted sessions not yet ended (live + pending).
	InService int
	// TableLen and FreeSlots describe the session table: occupied slots
	// are TableLen − FreeSlots.
	TableLen, FreeSlots int
	// Admitted/Rejected/Departed/Completed count sessions over the whole
	// run: admissions (initial population included), typed over-capacity
	// rejections, explicit departures, and natural completions.
	Admitted, Rejected, Departed, Completed int
	// Ended totals fold every ended session's lifetime records — the
	// aggregates that survive slot compaction.
	EndedEnergy      units.MJ
	EndedRebuffer    units.Seconds
	EndedDeliveredKB units.KB
	// DemandKBps is the summed required rate of in-service sessions (the
	// headroom check's live side).
	DemandKBps units.KBps
}

// WindowSnapshot is one closed metric window: the Result delta over its
// slots plus the sliding-window session quantiles at close time.
type WindowSnapshot struct {
	// FromSlot/ToSlot bound the window [FromSlot, ToSlot).
	FromSlot, ToSlot int
	// Energy/Rebuffer/UsedUnits are the per-slot Result deltas summed
	// over the window.
	Energy    units.MJ
	Rebuffer  units.Seconds
	UsedUnits int
	// SessionsEnded counts sessions folded (completed or departed)
	// during the window.
	SessionsEnded int
	// RebufferP50/P99 and EnergyP50/P99 are session-lifetime quantiles
	// over every retained window at close time (the sliding view).
	RebufferP50, RebufferP99 float64
	EnergyP50, EnergyP99     float64
}

// OpenSim is the open-system engine. It is not safe for concurrent use;
// Admit/Depart mutate engine state and must only be called between
// AdvanceTo calls (slot boundaries), never concurrently with one.
type OpenSim struct {
	eng *Simulator
	cfg OpenConfig

	maxSessions int
	headroomKB  units.KBps // 0 = disabled
	unbounded   bool

	freelist []int    // freed table slots, ascending
	ended    []bool   // per table slot: session folded (completed/departed)
	serials  []uint64 // per table slot: admission serial of the resident session
	lastSer  uint64

	windowSlots int
	windows     int // retained metric windows (snapshots + hist span)
	windowStart int // first slot of the live window
	perSlotBase int // slot index PerSlot[0] corresponds to (trimming offset)
	endedInWin  int
	rebufHist   *metrics.WindowedHist
	energyHist  *metrics.WindowedHist
	snaps       []WindowSnapshot // retained closed windows, oldest first

	stats   OpenStats
	started bool
}

const (
	defaultWindowSlots = 256
	defaultWindows     = 4
	defaultHistBins    = 64
)

// NewOpen builds an open-system engine over the initial session
// population (which may be empty) and scheduler. The initial sessions
// are admitted through the same controller mid-run arrivals face, so an
// over-capacity initial population fails construction with the typed
// error.
func NewOpen(cfg OpenConfig, initial []*workload.Session, s sched.Scheduler) (*OpenSim, error) {
	cc := cfg.Cell
	// The horizon-shaped link table cannot cover sessions admitted later;
	// open mode runs the analytic path (or its own tile), bit-identical
	// by the LUT exactness property.
	cc.Link = nil
	cc.LinkTileSlots = 0
	cc.LinkTableMaxRows = -1
	if cfg.Unbounded {
		if !cc.RunFullHorizon {
			return nil, fmt.Errorf("cell: unbounded open mode requires RunFullHorizon")
		}
		if cc.RecordPerUserSlots {
			return nil, fmt.Errorf("cell: unbounded open mode cannot record per-user slot samples")
		}
	}
	if cfg.MaxSessions < 0 {
		return nil, fmt.Errorf("cell: negative session cap %d", cfg.MaxSessions)
	}
	if cfg.TileSlots < 0 {
		return nil, fmt.Errorf("cell: negative open tile window %d", cfg.TileSlots)
	}
	if cfg.TileSlots > 0 && cfg.MaxSessions == 0 {
		return nil, fmt.Errorf("cell: open tile requires a session cap (MaxSessions)")
	}
	if cfg.HeadroomFrac < 0 {
		return nil, fmt.Errorf("cell: negative headroom fraction %v", cfg.HeadroomFrac)
	}
	if len(initial) == 0 && !cc.RunFullHorizon {
		// With no sessions admitted the early exit would declare the run
		// over on the first tick, before any arrival gets in.
		return nil, fmt.Errorf("cell: an empty initial population requires RunFullHorizon")
	}
	o := &OpenSim{
		cfg:         cfg,
		maxSessions: cfg.MaxSessions,
		unbounded:   cfg.Unbounded,
		windowSlots: cfg.WindowSlots,
	}
	if o.windowSlots <= 0 {
		o.windowSlots = defaultWindowSlots
	}
	if cfg.HeadroomFrac > 0 {
		o.headroomKB = units.KBps(cfg.HeadroomFrac * float64(cc.Capacity))
	}
	o.windows = cfg.Windows
	if o.windows <= 0 {
		o.windows = defaultWindows
	}
	windows := o.windows
	bins := cfg.HistBins
	if bins <= 0 {
		bins = defaultHistBins
	}
	rbw := cfg.RebufferBinWidth
	if rbw <= 0 {
		rbw = float64(cc.Tau)
		if rbw < 1 {
			rbw = 1
		}
	}
	ebw := cfg.EnergyBinWidth
	if ebw <= 0 {
		ebw = 1024
	}
	var err error
	if o.rebufHist, err = metrics.NewWindowedHist(windows, bins, rbw); err != nil {
		return nil, err
	}
	if o.energyHist, err = metrics.NewWindowedHist(windows, bins, ebw); err != nil {
		return nil, err
	}

	// Vet the initial population through the same admission controller a
	// mid-run arrival faces.
	var demand units.KBps
	for i, sess := range initial {
		if err := o.admissible(i, demand, sess); err != nil {
			return nil, fmt.Errorf("cell: initial session %d: %w", i, err)
		}
		if err := o.vetSession(sess); err != nil {
			return nil, err
		}
		demand += sess.BaseRate
	}
	eng, err := newSim(cc, initial, s, true)
	if err != nil {
		return nil, err
	}
	o.eng = eng
	if cfg.TileSlots > 0 {
		eng.openTile = newOpenTile(eng, cfg.TileSlots, cfg.MaxSessions)
	}
	o.ended = make([]bool, len(initial))
	o.serials = make([]uint64, len(initial))
	for i := range o.serials {
		o.lastSer++
		o.serials[i] = o.lastSer
	}
	o.stats.Admitted = len(initial)
	o.stats.InService = len(initial)
	o.stats.DemandKBps = demand
	return o, nil
}

// admissible applies the admission controller against the given
// in-service count and demand.
func (o *OpenSim) admissible(inService int, demand units.KBps, sess *workload.Session) error {
	if o.maxSessions > 0 && inService >= o.maxSessions {
		return &OverCapacityError{Reason: "session-cap", InService: inService, MaxSessions: o.maxSessions}
	}
	if o.headroomKB > 0 && demand+sess.BaseRate > o.headroomKB {
		return &OverCapacityError{Reason: "headroom", DemandKBps: demand + sess.BaseRate, LimitKBps: o.headroomKB}
	}
	return nil
}

// vetSession enforces the unbounded mode's bounded-memory contract.
func (o *OpenSim) vetSession(sess *workload.Session) error {
	if !o.unbounded {
		return nil
	}
	if _, memoized := sess.Signal.(signal.Prewarmer); memoized {
		return fmt.Errorf("cell: unbounded open mode requires stateless signal traces (session %d has a memoizing trace)", sess.ID)
	}
	if sess.RateJitter != 0 {
		return fmt.Errorf("cell: unbounded open mode forbids VBR sessions (session %d has rate jitter)", sess.ID)
	}
	return nil
}

// Start begins the run. Like the closed engine, an OpenSim is
// single-use.
func (o *OpenSim) Start(ctx context.Context) error {
	if err := o.eng.Start(ctx); err != nil {
		return err
	}
	o.started = true
	return nil
}

// Clock returns the next slot the engine will tick.
func (o *OpenSim) Clock() int { return o.eng.nextSlot }

// Admit adds a session mid-run, allocating its table slot from the
// free-list (compacted departures) or growing the table. The session's
// StartSlot is clamped to the current clock — arrivals cannot start in
// the past — and may be in the future. Returns the assigned user index,
// or a typed *OverCapacityError (matching ErrOverCapacity) when the
// admission controller refuses. Call only between AdvanceTo calls.
func (o *OpenSim) Admit(sess *workload.Session) (int, error) {
	if !o.started {
		return 0, fmt.Errorf("cell: Admit before Start")
	}
	if o.eng.stepDone && !o.unbounded {
		return 0, fmt.Errorf("cell: engine finished (set RunFullHorizon for churn-driven runs)")
	}
	if o.eng.cfg.RecordPerUserSlots {
		return 0, fmt.Errorf("cell: mid-run admission is incompatible with RecordPerUserSlots (table slots are reused)")
	}
	if err := o.admissible(o.stats.InService, o.stats.DemandKBps, sess); err != nil {
		o.stats.Rejected++
		return 0, err
	}
	if err := o.vetSession(sess); err != nil {
		return 0, err
	}
	// Prefer a freed slot; when none is free and the table is at the
	// session cap, reap retired-but-unreclaimed sessions before growing.
	if len(o.freelist) == 0 && o.maxSessions > 0 && len(o.eng.users) >= o.maxSessions {
		o.reap()
	}
	s := o.eng
	start := sess.StartSlot
	if start < s.nextSlot {
		start = s.nextSlot
	}
	clone := *sess
	clone.StartSlot = start

	o.lastSer++
	var idx int
	if len(o.freelist) > 0 {
		idx = o.freelist[0]
		o.freelist = o.freelist[1:]
		o.reuseSlot(idx, &clone)
		o.serials[idx] = o.lastSer
	} else {
		if s.openTile != nil && len(s.users) >= o.maxSessions {
			// The tile's slot-major layout is sized for MaxSessions rows;
			// it cannot grow past the cap even transiently.
			o.stats.Rejected++
			return 0, &OverCapacityError{Reason: "session-cap", InService: o.stats.InService, MaxSessions: o.maxSessions}
		}
		idx = len(s.users)
		if err := o.appendSlot(&clone); err != nil {
			return 0, err
		}
		o.serials = append(o.serials, o.lastSer)
	}
	clone.ID = idx

	if !o.unbounded {
		// Bounded mode may carry memoized traces and VBR sessions: extend
		// their memos to the horizon like New does for the initial set.
		clone.Prewarm(s.cfg.MaxSlots)
	}
	if s.openTile != nil {
		s.openTile.fillUser(idx, &clone)
		if s.colsSlot == s.nextSlot {
			// The next slot's columns are already prepared (fused pass):
			// re-alias the static columns so they cover the grown table.
			s.attachSlotColumns(s.nextSlot)
		}
	}
	o.insertPending(idx, start)
	s.unfinished++
	o.stats.Admitted++
	o.stats.InService++
	o.stats.DemandKBps += clone.BaseRate
	return idx, nil
}

// reuseSlot resets table slot idx for a new session.
func (o *OpenSim) reuseSlot(idx int, sess *workload.Session) {
	s := o.eng
	s.sessions[idx] = sess
	s.users[idx] = userState{startSlot: int32(sess.StartSlot)}
	o.initBuffer(idx, sess)
	s.curRes.Users[idx] = UserTotals{CompletionSlot: -1}
	s.alloc[idx] = 0
	o.ended[idx] = false
	if s.abrCtls != nil {
		ctl, _ := abr.NewController(*s.cfg.ABR) // validated by Config.Validate
		s.abrCtls[idx] = ctl
	}
}

// appendSlot grows every per-user array for one more session.
func (o *OpenSim) appendSlot(sess *workload.Session) error {
	s := o.eng
	idx := len(s.users)
	s.sessions = append(s.sessions, sess)
	s.users = append(s.users, userState{startSlot: int32(sess.StartSlot)})
	o.initBuffer(idx, sess)
	s.alloc = append(s.alloc, 0)
	s.curRes.Users = append(s.curRes.Users, UserTotals{CompletionSlot: -1})
	o.ended = append(o.ended, false)
	c := &s.cols
	c.Active = append(c.Active, false)
	c.BufferSec = append(c.BufferSec, 0)
	c.RemainingKB = append(c.RemainingKB, 0)
	c.TailGap = append(c.TailGap, 0)
	c.NeverActive = append(c.NeverActive, false)
	c.MaxUnits = append(c.MaxUnits, 0)
	if s.openTile == nil {
		// Engine-owned static columns (analytic path).
		c.Sig = append(c.Sig, 0)
		c.LinkRate = append(c.LinkRate, 0)
		c.EnergyPerKB = append(c.EnergyPerKB, 0)
		c.Rate = append(c.Rate, 0)
	} else if s.cfg.ABR != nil {
		// Under ABR the Rate column stays engine-owned even when the
		// other static columns alias the tile.
		c.Rate = append(c.Rate, 0)
	}
	if s.abrCtls != nil {
		ctl, err := abr.NewController(*s.cfg.ABR)
		if err != nil {
			return err
		}
		s.abrCtls = append(s.abrCtls, ctl)
	}
	return nil
}

// initBuffer (re)initializes user idx's playout buffer for sess.
func (o *OpenSim) initBuffer(idx int, sess *workload.Session) {
	s := o.eng
	u := &s.users[idx]
	if s.cfg.ABR != nil {
		_ = u.buf.InitSeconds(sess.Duration())
	} else {
		_ = u.buf.Init(sess.Size, sess.Duration())
	}
}

// insertPending inserts idx into the pending list keeping the engine's
// (StartSlot, index) admission order.
func (o *OpenSim) insertPending(idx, start int) {
	s := o.eng
	pos := len(s.pending)
	for k, j := range s.pending {
		js := int(s.users[j].startSlot)
		if js > start || (js == start && j > idx) {
			pos = k
			break
		}
	}
	s.pending = append(s.pending, 0)
	copy(s.pending[pos+1:], s.pending[pos:])
	s.pending[pos] = idx
}

// Serial returns the admission serial of the session resident in table
// slot id, or ok=false when the slot is free or the session has ended.
// Table slots are reused, so a caller holding an index across AdvanceTo
// calls must compare serials before acting on it — the session it meant
// may have completed and the slot may now host a different one.
func (o *OpenSim) Serial(id int) (uint64, bool) {
	if id < 0 || id >= len(o.serials) || o.ended[id] || o.eng.sessions[id] == nil {
		return 0, false
	}
	return o.serials[id], true
}

// DepartSerial is Depart guarded against slot reuse: it departs table
// slot id only if it still hosts the session with admission serial ser.
// It reports whether a departure happened; a stale serial (the session
// already ended, and possibly a new one moved in) is a no-op, not an
// error — exactly what a churn driver wants when a planned abandonment
// races a natural completion.
func (o *OpenSim) DepartSerial(id int, ser uint64) (bool, error) {
	cur, ok := o.Serial(id)
	if !ok || cur != ser {
		return false, nil
	}
	if err := o.Depart(id); err != nil {
		return false, err
	}
	return true, nil
}

// Depart removes session id mid-run: its lifetime totals are folded into
// the streaming aggregates and its table slot is freed for reuse. Call
// only between AdvanceTo calls. Departing an already-ended session is an
// error.
func (o *OpenSim) Depart(id int) error {
	if !o.started {
		return fmt.Errorf("cell: Depart before Start")
	}
	s := o.eng
	if id < 0 || id >= len(s.users) || o.ended[id] || s.sessions[id] == nil {
		return fmt.Errorf("cell: depart of unknown or ended session %d", id)
	}
	u := &s.users[id]
	wasRetired := u.retired
	if !wasRetired {
		// An in-flight (or pending) session leaves: it will never finish.
		if !u.buf.PlaybackComplete() {
			s.unfinished--
		}
		s.pending = removeValue(s.pending, id)
		s.live = removeSortedValue(s.live, id)
		u.retired = true
		// Zero the dynamic columns and allocation so a stale Active flag
		// can never leak into a later slot (mirrors dropRetired).
		c := &s.cols
		c.Active[id] = false
		c.BufferSec[id] = 0
		c.RemainingKB[id] = 0
		c.TailGap[id] = 0
		c.NeverActive[id] = false
		c.MaxUnits[id] = 0
		s.alloc[id] = 0
		if s.colsSlot == s.nextSlot {
			// The fused pass prepared the next slot with this user possibly
			// active: splice it out of the prepared active list.
			s.activeBuf = removeSortedValue(s.activeBuf, id)
		}
	}
	// A session the engine already retired finished its work; departing
	// it merely reaps early, so it still counts as completed.
	o.fold(id, wasRetired)
	return nil
}

// fold records session id's lifetime totals into the streaming
// aggregates and frees its table slot. completed selects the natural-
// completion counters; otherwise the session is counted as departed.
func (o *OpenSim) fold(id int, completed bool) {
	s := o.eng
	ru := &s.curRes.Users[id]
	o.rebufHist.Observe(float64(ru.Rebuffer))
	o.energyHist.Observe(float64(ru.Energy()))
	o.stats.EndedEnergy += ru.Energy()
	o.stats.EndedRebuffer += ru.Rebuffer
	o.stats.EndedDeliveredKB += ru.DeliveredKB
	if completed {
		o.stats.Completed++
	} else {
		o.stats.Departed++
	}
	o.stats.InService--
	o.stats.DemandKBps -= s.sessions[id].BaseRate
	o.endedInWin++
	o.ended[id] = true
	s.sessions[id] = nil // occupancy signal for the tile; slot is reusable
	o.freelist = insertSorted(o.freelist, id)
	o.stats.FreeSlots = len(o.freelist)
}

// reap folds sessions the engine retired (playback + delivery complete,
// tail drained) since the last call, freeing their table slots.
func (o *OpenSim) reap() {
	s := o.eng
	for i := range s.users {
		if s.users[i].retired && !o.ended[i] && s.sessions[i] != nil {
			o.fold(i, true)
		}
	}
}

// AdvanceTo ticks the engine up to (but not including) slot upto,
// reaps completed sessions, and closes any metric windows the clock
// crossed. In unbounded mode the horizon extends automatically and done
// is never true; in bounded mode done reports the closed engine's
// condition (horizon reached, or — without RunFullHorizon — every
// session finished).
func (o *OpenSim) AdvanceTo(upto int) (bool, error) {
	if !o.started {
		return false, fmt.Errorf("cell: AdvanceTo before Start")
	}
	if o.unbounded && upto >= o.eng.cfg.MaxSlots {
		// Extend the horizon with a window of headroom. RunFullHorizon is
		// required in unbounded mode, so a stepDone here can only mean the
		// old horizon was reached — clear it and keep serving.
		o.eng.cfg.MaxSlots = upto + o.windowSlots
		o.eng.stepDone = false
	}
	done, err := o.eng.Advance(upto)
	if err != nil {
		return done, err
	}
	o.reap()
	o.rotateWindows()
	if o.unbounded {
		done = false
	}
	return done, nil
}

// rotateWindows closes every whole metric window the clock has passed:
// snapshot the window's Result delta, record the sliding quantiles, and
// (in unbounded mode) trim the per-slot series to the retained span.
func (o *OpenSim) rotateWindows() {
	s := o.eng
	for s.nextSlot >= o.windowStart+o.windowSlots {
		from, to := o.windowStart, o.windowStart+o.windowSlots
		snap := WindowSnapshot{FromSlot: from, ToSlot: to, SessionsEnded: o.endedInWin}
		for n := from; n < to; n++ {
			k := n - o.perSlotBase
			if k < 0 || k >= len(s.curRes.PerSlot) {
				continue // early-exit runs tick fewer slots than the clock
			}
			st := &s.curRes.PerSlot[k]
			snap.Energy += st.Energy
			snap.Rebuffer += st.Rebuffer
			snap.UsedUnits += st.UsedUnits
		}
		snap.RebufferP50 = o.rebufHist.Quantile(0.5)
		snap.RebufferP99 = o.rebufHist.Quantile(0.99)
		snap.EnergyP50 = o.energyHist.Quantile(0.5)
		snap.EnergyP99 = o.energyHist.Quantile(0.99)
		o.snaps = append(o.snaps, snap)
		if len(o.snaps) > o.windows {
			o.snaps = o.snaps[len(o.snaps)-o.windows:]
		}
		o.rebufHist.Rotate()
		o.energyHist.Rotate()
		o.endedInWin = 0
		o.windowStart = to
	}
	if o.unbounded {
		// Trim PerSlot to the retained window span so an indefinite run's
		// slot series stays bounded. Bounded runs keep the full series —
		// Finish must return the byte-identical closed-world Result.
		keepFrom := o.windowStart - (o.windows-1)*o.windowSlots
		if keepFrom > o.perSlotBase {
			drop := keepFrom - o.perSlotBase
			if drop > len(s.curRes.PerSlot) {
				drop = len(s.curRes.PerSlot)
			}
			s.curRes.PerSlot = s.curRes.PerSlot[drop:]
			o.perSlotBase += drop
		}
	}
}

// Snapshots returns a copy of the retained closed-window snapshots,
// oldest first.
func (o *OpenSim) Snapshots() []WindowSnapshot {
	out := make([]WindowSnapshot, len(o.snaps))
	copy(out, o.snaps)
	return out
}

// RebufferQuantile returns the q-th quantile of session-lifetime
// rebuffering over the retained windows (sessions ended in them).
func (o *OpenSim) RebufferQuantile(q float64) float64 { return o.rebufHist.Quantile(q) }

// EnergyQuantile returns the q-th quantile of session-lifetime energy
// over the retained windows.
func (o *OpenSim) EnergyQuantile(q float64) float64 { return o.energyHist.Quantile(q) }

// Stats returns the cumulative open-run counters.
func (o *OpenSim) Stats() OpenStats {
	st := o.stats
	st.Slot = o.eng.nextSlot
	st.TableLen = len(o.eng.users)
	st.FreeSlots = len(o.freelist)
	return st
}

// Finish folds every session still in service (a run can end with
// playback complete but RRC tails undrained, which never engine-retires
// the user — those count as completed; truly unfinished ones count as
// departed), then finalizes and returns the engine Result. In bounded
// mode with no mid-run churn the Result is byte-identical to RunCtx on
// the same inputs; in unbounded mode PerSlot holds only the retained
// window span (the trimmed prefix lives in the window snapshots) and
// per-user entries of reused table slots describe only their latest
// session.
func (o *OpenSim) Finish() *Result {
	s := o.eng
	for i := range s.users {
		if !o.ended[i] && s.sessions[i] != nil {
			o.fold(i, s.users[i].buf.PlaybackComplete())
		}
	}
	return s.Finish()
}

// removeValue deletes the first occurrence of v from xs (order kept).
func removeValue(xs []int, v int) []int {
	for k, x := range xs {
		if x == v {
			copy(xs[k:], xs[k+1:])
			return xs[:len(xs)-1]
		}
	}
	return xs
}

// removeSortedValue deletes v from ascending-sorted xs if present.
func removeSortedValue(xs []int, v int) []int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(xs) && xs[lo] == v {
		copy(xs[lo:], xs[lo+1:])
		return xs[:len(xs)-1]
	}
	return xs
}

// openTile is the open-system engine's horizon-free link window: a
// slot-major block of analytic physics rows (signal, throughput, energy
// price, required rate, Eq. (1) link units) covering `window` slots ×
// `cap` table rows, recompiled in place as the clock crosses window
// boundaries — ring-buffered link state whose memory never depends on
// uptime. attachSlotColumns aliases a slot's rows zero-copy, exactly
// like the closed engine's link-table windows; the values are computed
// with the same expressions prepareColsUser's analytic branch uses, so
// the tiled and analytic paths are bit-identical.
type openTile struct {
	sim    *Simulator
	window int
	cap    int
	base   int // first slot of the resident window; -1 = none

	sig   []units.DBm
	linkR []units.KBps
	epkb  []units.MJ
	rate  []units.KBps
	lu    []int32
}

func newOpenTile(sim *Simulator, window, capSessions int) *openTile {
	size := window * capSessions
	return &openTile{
		sim: sim, window: window, cap: capSessions, base: -1,
		sig:   make([]units.DBm, size),
		linkR: make([]units.KBps, size),
		epkb:  make([]units.MJ, size),
		rate:  make([]units.KBps, size),
		lu:    make([]int32, size),
	}
}

// willEvict reports whether attaching slot n recompiles the window.
func (t *openTile) willEvict(n int) bool {
	return t.base < 0 || n < t.base || n >= t.base+t.window
}

// ensure makes the resident window cover slot n, recompiling rows for
// every occupied table slot on a crossing. Windows are aligned to
// multiples of the window length so boundaries are stable.
func (t *openTile) ensure(n int) {
	if !t.willEvict(n) {
		return
	}
	t.base = n - n%t.window
	for i, sess := range t.sim.sessions {
		if sess != nil {
			t.fillUser(i, sess)
		}
	}
}

// fillUser (re)computes user i's rows for the resident window — called
// on window crossings and when a session is admitted mid-window.
func (t *openTile) fillUser(i int, sess *workload.Session) {
	if t.base < 0 {
		return
	}
	cfg := &t.sim.cfg
	tau, unit := float64(cfg.Tau), float64(cfg.Unit)
	for off := 0; off < t.window; off++ {
		slot := t.base + off
		sig := sess.Signal.At(slot)
		link := cfg.Radio.Throughput.Throughput(sig)
		k := off*t.cap + i
		t.sig[k] = sig
		t.linkR[k] = link
		t.epkb[k] = cfg.Radio.Power.EnergyPerKB(sig)
		t.rate[k] = sess.RateAt(slot)
		t.lu[k] = int32(floorUnits(float64(link)*tau, unit))
	}
}

// slotColumns returns slot n's rows as length-len(users) column slices.
func (t *openTile) slotColumns(n int) ([]units.DBm, []units.KBps, []units.MJ, []units.KBps, []int32) {
	off := (n - t.base) * t.cap
	m := len(t.sim.users)
	return t.sig[off : off+m], t.linkR[off : off+m], t.epkb[off : off+m], t.rate[off : off+m], t.lu[off : off+m]
}
