// Open-system serving mode: the churn-driven, unbounded-horizon face of
// the engine (ROADMAP item 2). OpenSim wraps the stepped Simulator
// (Start/Advance/Finish) and adds what a long-running service needs on
// top of a closed batch run:
//
//   - mid-run admission and departure: sessions/columns are allocated
//     from a free-list of table slots, departed or completed users are
//     folded into streaming aggregates and their slots compacted out for
//     reuse instead of lingering retired;
//   - an admission controller: a cap on concurrent sessions plus an
//     Eq.-1-style capacity headroom check (Σ required rates against a
//     fraction of the base station's serving capacity S), rejecting with
//     a typed *OverCapacityError instead of degrading everyone;
//   - an unbounded horizon: the slot clock extends on demand and the
//     per-slot series is trimmed to the retained metric windows, so
//     memory is bounded by the session table and the window span, never
//     by uptime;
//   - sliding-window metrics: per-session rebuffering and energy totals
//     land in windowed streaming histograms (metrics.WindowedHist) at
//     session end, and each window closes with a Result-delta snapshot,
//     so p50/p99 never require a finalized run;
//   - tiled link windows (openTile): an engine-owned slot-major block of
//     analytically computed physics rows the static columns alias
//     zero-copy, recompiled per window — the open-world replacement for
//     the horizon-shaped link table, feeding the same tabled prepare
//     path bit-identical values.
//
// Closed-world equivalence is pinned by construction and by test: with
// no mid-run Admit/Depart calls and a finite horizon, OpenSim drives the
// very same Simulator through the very same Advance loop, so Finish
// returns a Result byte-identical to RunCtx (internal/simtest's
// open-mode differential matrix asserts it across all nine schedulers).
package cell

import (
	"context"
	"errors"
	"fmt"

	"jointstream/internal/abr"
	"jointstream/internal/metrics"
	"jointstream/internal/pool"
	"jointstream/internal/radio"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// ErrOverCapacity is the sentinel every admission rejection matches via
// errors.Is; the concrete error is always a *OverCapacityError carrying
// which limit bound.
var ErrOverCapacity = errors.New("cell: over capacity")

// OverCapacityError reports an admission rejection: the session-table
// cap or the capacity headroom check refused a new session.
type OverCapacityError struct {
	// Reason is "session-cap" or "headroom".
	Reason string
	// InService and MaxSessions describe the session-cap rejection.
	InService, MaxSessions int
	// DemandKBps and LimitKBps describe the headroom rejection: the
	// would-be total required rate versus HeadroomFrac × Capacity.
	DemandKBps, LimitKBps units.KBps
}

func (e *OverCapacityError) Error() string {
	if e.Reason == "session-cap" {
		return fmt.Sprintf("cell: admission rejected: %d sessions in service at cap %d", e.InService, e.MaxSessions)
	}
	return fmt.Sprintf("cell: admission rejected: demand %v KB/s exceeds headroom %v KB/s", e.DemandKBps, e.LimitKBps)
}

// Is makes errors.Is(err, ErrOverCapacity) match.
func (e *OverCapacityError) Is(target error) bool { return target == ErrOverCapacity }

// OpenConfig parameterizes an open-system run.
type OpenConfig struct {
	// Cell is the engine configuration. Open mode always evaluates the
	// radio model analytically (or through the open tile below) — the
	// horizon-shaped link table cannot follow mid-run admissions — so
	// Link/LinkTileSlots/LinkTableMaxRows are overridden; the LUT
	// exactness property keeps results bit-identical to the tabled path.
	// For churn-driven runs set Cell.RunFullHorizon: without it the
	// engine's early exit declares the run over the moment every
	// *currently admitted* session finishes, wedging later arrivals.
	Cell Config
	// Unbounded serves indefinitely: AdvanceTo extends the slot horizon
	// on demand (Cell.MaxSlots only sets the initial clock) and the
	// per-slot series is trimmed to the retained metric windows. Requires
	// Cell.RunFullHorizon, forbids Cell.RecordPerUserSlots, and every
	// session must be memory-bounded: a stateless signal trace (no
	// signal.Prewarmer memo) and zero RateJitter.
	Unbounded bool
	// MaxSessions caps concurrent in-service sessions (the admission
	// controller's first check) and sizes the open tile. 0 means no cap
	// (and forbids TileSlots).
	MaxSessions int
	// HeadroomFrac enables the Eq.-1-style admission check: a new session
	// is rejected when the summed required rate of every in-service
	// session plus its own would exceed HeadroomFrac × Cell.Capacity.
	// 0 disables the check.
	HeadroomFrac float64
	// TileSlots, when positive, installs the open link tile: physics rows
	// for a TileSlots-slot window × MaxSessions users are computed per
	// window and aliased by the slot columns, so per-slot prepare skips
	// the radio interfaces exactly like the closed engine's link table.
	// Requires MaxSessions > 0. Values are bit-identical to the analytic
	// path by construction.
	TileSlots int
	// WindowSlots is the metric window length in slots (default 256).
	WindowSlots int
	// Windows is how many windows the sliding metrics retain (default 4).
	Windows int
	// HistBins and RebufferBinWidth/EnergyBinWidth parameterize the
	// windowed histograms (defaults: 64 bins, width max(Tau, 1) seconds
	// for rebuffering, 1024 mJ for energy; widths auto-widen).
	HistBins                         int
	RebufferBinWidth, EnergyBinWidth float64
}

// OpenStats are the open-system run's cumulative counters.
type OpenStats struct {
	// Slot is the next slot the engine will tick.
	Slot int
	// InService counts admitted sessions not yet ended (live + pending).
	InService int
	// TableLen and FreeSlots describe the session table: occupied slots
	// are TableLen − FreeSlots.
	TableLen, FreeSlots int
	// Admitted/Rejected/Departed/Completed count sessions over the whole
	// run: admissions (initial population included), typed over-capacity
	// rejections, explicit departures, and natural completions.
	Admitted, Rejected, Departed, Completed int
	// Ended totals fold every ended session's lifetime records — the
	// aggregates that survive slot compaction.
	EndedEnergy      units.MJ
	EndedRebuffer    units.Seconds
	EndedDeliveredKB units.KB
	// DemandKBps is the summed required rate of in-service sessions (the
	// headroom check's live side).
	DemandKBps units.KBps
}

// WindowSnapshot is one closed metric window: the Result delta over its
// slots plus the sliding-window session quantiles at close time.
type WindowSnapshot struct {
	// FromSlot/ToSlot bound the window [FromSlot, ToSlot).
	FromSlot, ToSlot int
	// Energy/Rebuffer/UsedUnits are the per-slot Result deltas summed
	// over the window.
	Energy    units.MJ
	Rebuffer  units.Seconds
	UsedUnits int
	// SessionsEnded counts sessions folded (completed or departed)
	// during the window.
	SessionsEnded int
	// RebufferP50/P99 and EnergyP50/P99 are session-lifetime quantiles
	// over every retained window at close time (the sliding view).
	RebufferP50, RebufferP99 float64
	EnergyP50, EnergyP99     float64
}

// OpenSim is the open-system engine. It is not safe for concurrent use;
// Admit/Depart mutate engine state and must only be called between
// AdvanceTo calls (slot boundaries), never concurrently with one.
type OpenSim struct {
	eng *Simulator
	cfg OpenConfig

	maxSessions int
	headroomKB  units.KBps // 0 = disabled
	unbounded   bool

	// freelist holds freed table slots sorted descending, so popping the
	// tail both reuses the lowest index first (stable, test-pinned
	// behaviour) and keeps the backing array anchored — the old
	// head-slicing pop made the array creep one slot per reuse and forced
	// a reallocation every O(cap) churn cycles.
	freelist []int
	ended    []bool   // per table slot: session folded (completed/departed)
	serials  []uint64 // per table slot: admission serial of the resident session
	lastSer  uint64
	bySerial map[uint64]int // admission serial → current table slot (live sessions)
	// owned marks table slots whose *workload.Session is an engine-owned
	// clone (mid-run admissions): those are recycled through sessPool at
	// fold time instead of garbage-collected, so the churn steady state
	// allocates no session per admit. Initial sessions are caller-owned.
	owned    []bool
	sessPool []*workload.Session
	remap    []int // compaction scratch: old table slot → new (-1 = freed)

	windowSlots int
	windows     int // retained metric windows (snapshots + hist span)
	windowStart int // first slot of the live window
	perSlotBase int // slot index PerSlot[0] corresponds to (trimming offset)
	endedInWin  int
	rebufHist   *metrics.WindowedHist
	energyHist  *metrics.WindowedHist
	snaps       []WindowSnapshot // retained closed windows, oldest first

	stats   OpenStats
	started bool
}

const (
	defaultWindowSlots = 256
	defaultWindows     = 4
	defaultHistBins    = 64
)

// NewOpen builds an open-system engine over the initial session
// population (which may be empty) and scheduler. The initial sessions
// are admitted through the same controller mid-run arrivals face, so an
// over-capacity initial population fails construction with the typed
// error.
func NewOpen(cfg OpenConfig, initial []*workload.Session, s sched.Scheduler) (*OpenSim, error) {
	cc := cfg.Cell
	// The horizon-shaped link table cannot cover sessions admitted later;
	// open mode runs the analytic path (or its own tile), bit-identical
	// by the LUT exactness property.
	cc.Link = nil
	cc.LinkTileSlots = 0
	cc.LinkTableMaxRows = -1
	if cfg.Unbounded {
		if !cc.RunFullHorizon {
			return nil, fmt.Errorf("cell: unbounded open mode requires RunFullHorizon")
		}
		if cc.RecordPerUserSlots {
			return nil, fmt.Errorf("cell: unbounded open mode cannot record per-user slot samples")
		}
	}
	if cfg.MaxSessions < 0 {
		return nil, fmt.Errorf("cell: negative session cap %d", cfg.MaxSessions)
	}
	if cfg.TileSlots < 0 {
		return nil, fmt.Errorf("cell: negative open tile window %d", cfg.TileSlots)
	}
	if cfg.TileSlots > 0 && cfg.MaxSessions == 0 {
		return nil, fmt.Errorf("cell: open tile requires a session cap (MaxSessions)")
	}
	if cfg.HeadroomFrac < 0 {
		return nil, fmt.Errorf("cell: negative headroom fraction %v", cfg.HeadroomFrac)
	}
	if len(initial) == 0 && !cc.RunFullHorizon {
		// With no sessions admitted the early exit would declare the run
		// over on the first tick, before any arrival gets in.
		return nil, fmt.Errorf("cell: an empty initial population requires RunFullHorizon")
	}
	o := &OpenSim{
		cfg:         cfg,
		maxSessions: cfg.MaxSessions,
		unbounded:   cfg.Unbounded,
		windowSlots: cfg.WindowSlots,
	}
	if o.windowSlots <= 0 {
		o.windowSlots = defaultWindowSlots
	}
	if cfg.HeadroomFrac > 0 {
		o.headroomKB = units.KBps(cfg.HeadroomFrac * float64(cc.Capacity))
	}
	o.windows = cfg.Windows
	if o.windows <= 0 {
		o.windows = defaultWindows
	}
	windows := o.windows
	bins := cfg.HistBins
	if bins <= 0 {
		bins = defaultHistBins
	}
	rbw := cfg.RebufferBinWidth
	if rbw <= 0 {
		rbw = float64(cc.Tau)
		if rbw < 1 {
			rbw = 1
		}
	}
	ebw := cfg.EnergyBinWidth
	if ebw <= 0 {
		ebw = 1024
	}
	var err error
	if o.rebufHist, err = metrics.NewWindowedHist(windows, bins, rbw); err != nil {
		return nil, err
	}
	if o.energyHist, err = metrics.NewWindowedHist(windows, bins, ebw); err != nil {
		return nil, err
	}

	// Vet the initial population through the same admission controller a
	// mid-run arrival faces.
	var demand units.KBps
	for i, sess := range initial {
		if err := o.admissible(i, demand, sess); err != nil {
			return nil, fmt.Errorf("cell: initial session %d: %w", i, err)
		}
		if err := o.vetSession(sess); err != nil {
			return nil, err
		}
		demand += sess.BaseRate
	}
	eng, err := newSim(cc, initial, s, true)
	if err != nil {
		return nil, err
	}
	o.eng = eng
	if cfg.TileSlots > 0 {
		eng.openTile = newOpenTile(eng, cfg.TileSlots, cfg.MaxSessions, cfg.Unbounded)
	}
	o.ended = make([]bool, len(initial))
	o.owned = make([]bool, len(initial))
	o.serials = make([]uint64, len(initial))
	o.bySerial = make(map[uint64]int, cfg.MaxSessions+len(initial))
	for i := range o.serials {
		o.lastSer++
		o.serials[i] = o.lastSer
		o.bySerial[o.lastSer] = i
	}
	o.stats.Admitted = len(initial)
	o.stats.InService = len(initial)
	o.stats.DemandKBps = demand
	return o, nil
}

// admissible applies the admission controller against the given
// in-service count and demand.
func (o *OpenSim) admissible(inService int, demand units.KBps, sess *workload.Session) error {
	if o.maxSessions > 0 && inService >= o.maxSessions {
		return &OverCapacityError{Reason: "session-cap", InService: inService, MaxSessions: o.maxSessions}
	}
	if o.headroomKB > 0 && demand+sess.BaseRate > o.headroomKB {
		return &OverCapacityError{Reason: "headroom", DemandKBps: demand + sess.BaseRate, LimitKBps: o.headroomKB}
	}
	return nil
}

// vetSession enforces the unbounded mode's bounded-memory contract.
func (o *OpenSim) vetSession(sess *workload.Session) error {
	if !o.unbounded {
		return nil
	}
	if _, memoized := sess.Signal.(signal.Prewarmer); memoized {
		return fmt.Errorf("cell: unbounded open mode requires stateless signal traces (session %d has a memoizing trace)", sess.ID)
	}
	if sess.RateJitter != 0 {
		return fmt.Errorf("cell: unbounded open mode forbids VBR sessions (session %d has rate jitter)", sess.ID)
	}
	return nil
}

// Start begins the run. Like the closed engine, an OpenSim is
// single-use.
func (o *OpenSim) Start(ctx context.Context) error {
	if err := o.eng.Start(ctx); err != nil {
		return err
	}
	o.started = true
	return nil
}

// Clock returns the next slot the engine will tick.
func (o *OpenSim) Clock() int { return o.eng.nextSlot }

// Admit adds a session mid-run, allocating its table slot from the
// free-list (compacted departures) or growing the table. The session's
// StartSlot is clamped to the current clock — arrivals cannot start in
// the past — and may be in the future. Returns the assigned user index,
// or a typed *OverCapacityError (matching ErrOverCapacity) when the
// admission controller refuses. Call only between AdvanceTo calls.
func (o *OpenSim) Admit(sess *workload.Session) (int, error) {
	if !o.started {
		return 0, fmt.Errorf("cell: Admit before Start")
	}
	if o.eng.stepDone && !o.unbounded {
		return 0, fmt.Errorf("cell: engine finished (set RunFullHorizon for churn-driven runs)")
	}
	if o.eng.cfg.RecordPerUserSlots {
		return 0, fmt.Errorf("cell: mid-run admission is incompatible with RecordPerUserSlots (table slots are reused)")
	}
	if err := o.admissible(o.stats.InService, o.stats.DemandKBps, sess); err != nil {
		o.stats.Rejected++
		return 0, err
	}
	if err := o.vetSession(sess); err != nil {
		return 0, err
	}
	// Prefer a freed slot; when none is free and the table is at the
	// session cap, reap retired-but-unreclaimed sessions before growing.
	if len(o.freelist) == 0 && o.maxSessions > 0 && len(o.eng.users) >= o.maxSessions {
		o.reap()
	}
	s := o.eng
	start := sess.StartSlot
	if start < s.nextSlot {
		start = s.nextSlot
	}
	// Clone into a pooled session (recycled at fold) so sustained churn
	// admits without allocating; the caller keeps ownership of sess.
	var clone *workload.Session
	if n := len(o.sessPool); n > 0 {
		clone = o.sessPool[n-1]
		o.sessPool = o.sessPool[:n-1]
	} else {
		clone = new(workload.Session)
	}
	*clone = *sess
	clone.StartSlot = start

	if s.openTile != nil {
		// Quiesce the background window compile before the session table
		// mutates under it (appendSlot re-slices arrays the fill reads).
		s.openTile.syncFill()
	}
	o.lastSer++
	var idx int
	if n := len(o.freelist); n > 0 {
		// The tail of the descending-sorted freelist is the lowest free
		// slot: lowest-first reuse without moving the array's head.
		idx = o.freelist[n-1]
		o.freelist = o.freelist[:n-1]
		o.reuseSlot(idx, clone)
		o.serials[idx] = o.lastSer
		o.owned[idx] = true
	} else {
		if s.openTile != nil && len(s.users) >= o.maxSessions {
			// The tile's slot-major layout is sized for MaxSessions rows;
			// it cannot grow past the cap even transiently.
			o.sessPool = append(o.sessPool, clone)
			o.stats.Rejected++
			return 0, &OverCapacityError{Reason: "session-cap", InService: o.stats.InService, MaxSessions: o.maxSessions}
		}
		idx = len(s.users)
		if err := o.appendSlot(clone); err != nil {
			o.sessPool = append(o.sessPool, clone)
			return 0, err
		}
		o.serials = append(o.serials, o.lastSer)
		o.owned = append(o.owned, true)
	}
	clone.ID = idx
	o.bySerial[o.lastSer] = idx

	if !o.unbounded {
		// Bounded mode may carry memoized traces and VBR sessions: extend
		// their memos to the horizon like New does for the initial set.
		clone.Prewarm(s.cfg.MaxSlots)
	}
	if s.openTile != nil {
		s.openTile.admitRow(idx, clone)
		if s.colsSlot == s.nextSlot {
			// The next slot's columns are already prepared (fused pass):
			// re-alias the static columns so they cover the grown table.
			s.attachSlotColumns(s.nextSlot)
		}
	}
	o.insertPending(idx, start)
	s.unfinished++
	o.stats.Admitted++
	o.stats.InService++
	o.stats.DemandKBps += clone.BaseRate
	return idx, nil
}

// reuseSlot resets table slot idx for a new session.
func (o *OpenSim) reuseSlot(idx int, sess *workload.Session) {
	s := o.eng
	s.sessions[idx] = sess
	s.users[idx] = userState{startSlot: int32(sess.StartSlot)}
	o.initBuffer(idx, sess)
	s.curRes.Users[idx] = UserTotals{CompletionSlot: -1}
	s.alloc[idx] = 0
	o.ended[idx] = false
	if s.abrCtls != nil {
		// Recycle the slot's controller: Reset returns it to NewController's
		// state (the rung index is the only mutable field), so reuse is
		// indistinguishable from a fresh allocation.
		if ctl := s.abrCtls[idx]; ctl != nil {
			ctl.Reset()
		} else {
			ctl, _ := abr.NewController(*s.cfg.ABR) // validated by Config.Validate
			s.abrCtls[idx] = ctl
		}
	}
}

// appendSlot grows every per-user array for one more session.
func (o *OpenSim) appendSlot(sess *workload.Session) error {
	s := o.eng
	idx := len(s.users)
	s.sessions = append(s.sessions, sess)
	s.users = append(s.users, userState{startSlot: int32(sess.StartSlot)})
	o.initBuffer(idx, sess)
	s.alloc = append(s.alloc, 0)
	s.curRes.Users = append(s.curRes.Users, UserTotals{CompletionSlot: -1})
	o.ended = append(o.ended, false)
	c := &s.cols
	c.Active = append(c.Active, false)
	c.BufferSec = append(c.BufferSec, 0)
	c.RemainingKB = append(c.RemainingKB, 0)
	c.TailGap = append(c.TailGap, 0)
	c.NeverActive = append(c.NeverActive, false)
	c.MaxUnits = append(c.MaxUnits, 0)
	if s.openTile == nil {
		// Engine-owned static columns (analytic path).
		c.Sig = append(c.Sig, 0)
		c.LinkRate = append(c.LinkRate, 0)
		c.EnergyPerKB = append(c.EnergyPerKB, 0)
		c.Rate = append(c.Rate, 0)
	} else if s.cfg.ABR != nil {
		// Under ABR the Rate column stays engine-owned even when the
		// other static columns alias the tile.
		c.Rate = append(c.Rate, 0)
	}
	if s.abrCtls != nil {
		ctl, err := abr.NewController(*s.cfg.ABR)
		if err != nil {
			return err
		}
		s.abrCtls = append(s.abrCtls, ctl)
	}
	return nil
}

// initBuffer (re)initializes user idx's playout buffer for sess.
func (o *OpenSim) initBuffer(idx int, sess *workload.Session) {
	s := o.eng
	u := &s.users[idx]
	if s.cfg.ABR != nil {
		_ = u.buf.InitSeconds(sess.Duration())
	} else {
		_ = u.buf.Init(sess.Size, sess.Duration())
	}
}

// compactPending rewinds the engine's pending list to the head of its
// backing array (admit drains it by advancing pendHead, not by
// re-slicing), so the open engine's inserts and removals below can treat
// it as a plain slice.
func (o *OpenSim) compactPending() {
	s := o.eng
	if s.pendHead > 0 {
		n := copy(s.pending, s.pending[s.pendHead:])
		s.pending = s.pending[:n]
		s.pendHead = 0
	}
}

// insertPending inserts idx into the pending list keeping the engine's
// (StartSlot, index) admission order.
func (o *OpenSim) insertPending(idx, start int) {
	o.compactPending()
	s := o.eng
	pos := len(s.pending)
	for k, j := range s.pending {
		js := int(s.users[j].startSlot)
		if js > start || (js == start && j > idx) {
			pos = k
			break
		}
	}
	s.pending = append(s.pending, 0)
	copy(s.pending[pos+1:], s.pending[pos:])
	s.pending[pos] = idx
}

// Serial returns the admission serial of the session resident in table
// slot id, or ok=false when the slot is free or the session has ended.
// Table slots are reused, so a caller holding an index across AdvanceTo
// calls must compare serials before acting on it — the session it meant
// may have completed and the slot may now host a different one.
func (o *OpenSim) Serial(id int) (uint64, bool) {
	if id < 0 || id >= len(o.serials) || o.ended[id] || o.eng.sessions[id] == nil {
		return 0, false
	}
	return o.serials[id], true
}

// DepartSerial is Depart guarded against slot reuse: it departs the
// session with admission serial ser if it is still in service. It
// reports whether a departure happened; a stale serial (the session
// already ended, and possibly a new one moved into its slot) is a
// no-op, not an error — exactly what a churn driver wants when a
// planned abandonment races a natural completion. The serial is looked
// up directly, so the call stays correct even after resident-set
// compaction moves the session to a different table slot; id is the
// caller's last known slot and is accepted for compatibility only.
func (o *OpenSim) DepartSerial(id int, ser uint64) (bool, error) {
	idx, ok := o.bySerial[ser]
	if !ok {
		return false, nil
	}
	_ = id
	if err := o.Depart(idx); err != nil {
		return false, err
	}
	return true, nil
}

// Depart removes session id mid-run: its lifetime totals are folded into
// the streaming aggregates and its table slot is freed for reuse. Call
// only between AdvanceTo calls. Departing an already-ended session is an
// error.
func (o *OpenSim) Depart(id int) error {
	if !o.started {
		return fmt.Errorf("cell: Depart before Start")
	}
	s := o.eng
	if id < 0 || id >= len(s.users) || o.ended[id] || s.sessions[id] == nil {
		return fmt.Errorf("cell: depart of unknown or ended session %d", id)
	}
	u := &s.users[id]
	wasRetired := u.retired
	if !wasRetired {
		// An in-flight (or pending) session leaves: it will never finish.
		if !u.buf.PlaybackComplete() {
			s.unfinished--
		}
		o.compactPending()
		s.pending = removeValue(s.pending, id)
		s.live = removeSortedValue(s.live, id)
		u.retired = true
		// Zero the dynamic columns and allocation so a stale Active flag
		// can never leak into a later slot (mirrors dropRetired).
		c := &s.cols
		c.Active[id] = false
		c.BufferSec[id] = 0
		c.RemainingKB[id] = 0
		c.TailGap[id] = 0
		c.NeverActive[id] = false
		c.MaxUnits[id] = 0
		s.alloc[id] = 0
		if s.colsSlot == s.nextSlot {
			// The fused pass prepared the next slot with this user possibly
			// active: splice it out of the prepared active list.
			s.activeBuf = removeSortedValue(s.activeBuf, id)
		}
	}
	// A session the engine already retired finished its work; departing
	// it merely reaps early, so it still counts as completed.
	o.fold(id, wasRetired)
	return nil
}

// fold records session id's lifetime totals into the streaming
// aggregates and frees its table slot. completed selects the natural-
// completion counters; otherwise the session is counted as departed.
func (o *OpenSim) fold(id int, completed bool) {
	s := o.eng
	ru := &s.curRes.Users[id]
	o.rebufHist.Observe(float64(ru.Rebuffer))
	o.energyHist.Observe(float64(ru.Energy()))
	o.stats.EndedEnergy += ru.Energy()
	o.stats.EndedRebuffer += ru.Rebuffer
	o.stats.EndedDeliveredKB += ru.DeliveredKB
	if completed {
		o.stats.Completed++
	} else {
		o.stats.Departed++
	}
	o.stats.InService--
	o.stats.DemandKBps -= s.sessions[id].BaseRate
	o.endedInWin++
	o.ended[id] = true
	delete(o.bySerial, o.serials[id])
	if o.owned[id] {
		// Engine-owned clone (mid-run admission): recycle it so the next
		// Admit reuses the storage instead of allocating.
		o.sessPool = append(o.sessPool, s.sessions[id])
		o.owned[id] = false
	}
	if s.openTile != nil {
		// Drop the row (and quiesce the background compile — it may be
		// reading sessions[id]) before the occupancy slot is cleared.
		s.openTile.removeRow(id)
	}
	s.sessions[id] = nil // occupancy signal for the tile; slot is reusable
	o.freelist = insertSortedDesc(o.freelist, id)
	o.stats.FreeSlots = len(o.freelist)
}

// reap folds sessions the engine retired (playback + delivery complete,
// tail drained) since the last call, freeing their table slots.
func (o *OpenSim) reap() {
	s := o.eng
	for i := range s.users {
		if s.users[i].retired && !o.ended[i] && s.sessions[i] != nil {
			o.fold(i, true)
		}
	}
}

// AdvanceTo ticks the engine up to (but not including) slot upto,
// reaps completed sessions, and closes any metric windows the clock
// crossed. In unbounded mode the horizon extends automatically and done
// is never true; in bounded mode done reports the closed engine's
// condition (horizon reached, or — without RunFullHorizon — every
// session finished).
func (o *OpenSim) AdvanceTo(upto int) (bool, error) {
	if !o.started {
		return false, fmt.Errorf("cell: AdvanceTo before Start")
	}
	if o.unbounded && upto >= o.eng.cfg.MaxSlots {
		// Extend the horizon with a window of headroom. RunFullHorizon is
		// required in unbounded mode, so a stepDone here can only mean the
		// old horizon was reached — clear it and keep serving.
		o.eng.cfg.MaxSlots = upto + o.windowSlots
		o.eng.stepDone = false
	}
	done, err := o.eng.Advance(upto)
	if err != nil {
		return done, err
	}
	o.reap()
	o.rotateWindows()
	o.maybeCompact()
	if o.unbounded {
		done = false
	}
	return done, nil
}

// rotateWindows closes every whole metric window the clock has passed:
// snapshot the window's Result delta, record the sliding quantiles, and
// (in unbounded mode) trim the per-slot series to the retained span.
func (o *OpenSim) rotateWindows() {
	s := o.eng
	for s.nextSlot >= o.windowStart+o.windowSlots {
		from, to := o.windowStart, o.windowStart+o.windowSlots
		snap := WindowSnapshot{FromSlot: from, ToSlot: to, SessionsEnded: o.endedInWin}
		for n := from; n < to; n++ {
			k := n - o.perSlotBase
			if k < 0 || k >= len(s.curRes.PerSlot) {
				continue // early-exit runs tick fewer slots than the clock
			}
			st := &s.curRes.PerSlot[k]
			snap.Energy += st.Energy
			snap.Rebuffer += st.Rebuffer
			snap.UsedUnits += st.UsedUnits
		}
		snap.RebufferP50 = o.rebufHist.Quantile(0.5)
		snap.RebufferP99 = o.rebufHist.Quantile(0.99)
		snap.EnergyP50 = o.energyHist.Quantile(0.5)
		snap.EnergyP99 = o.energyHist.Quantile(0.99)
		// Ring the retained snapshots in place: the append-then-reslice
		// idiom let the backing array creep one entry per window forever.
		if len(o.snaps) == o.windows {
			copy(o.snaps, o.snaps[1:])
			o.snaps[o.windows-1] = snap
		} else {
			o.snaps = append(o.snaps, snap)
		}
		o.rebufHist.Rotate()
		o.energyHist.Rotate()
		o.endedInWin = 0
		o.windowStart = to
	}
	if o.unbounded {
		// Trim PerSlot to the retained window span so an indefinite run's
		// slot series stays bounded. Bounded runs keep the full series —
		// Finish must return the byte-identical closed-world Result.
		keepFrom := o.windowStart - (o.windows-1)*o.windowSlots
		if keepFrom > o.perSlotBase {
			drop := keepFrom - o.perSlotBase
			if drop > len(s.curRes.PerSlot) {
				drop = len(s.curRes.PerSlot)
			}
			// Copy down instead of re-slicing the head: the head-slice trim
			// abandoned `drop` entries of backing array per rotation, forcing
			// a reallocation every few windows for the life of the run.
			n := copy(s.curRes.PerSlot, s.curRes.PerSlot[drop:])
			s.curRes.PerSlot = s.curRes.PerSlot[:n]
			o.perSlotBase += drop
		}
	}
}

// Snapshots returns a copy of the retained closed-window snapshots,
// oldest first.
func (o *OpenSim) Snapshots() []WindowSnapshot {
	out := make([]WindowSnapshot, len(o.snaps))
	copy(out, o.snaps)
	return out
}

// RebufferQuantile returns the q-th quantile of session-lifetime
// rebuffering over the retained windows (sessions ended in them).
func (o *OpenSim) RebufferQuantile(q float64) float64 { return o.rebufHist.Quantile(q) }

// EnergyQuantile returns the q-th quantile of session-lifetime energy
// over the retained windows.
func (o *OpenSim) EnergyQuantile(q float64) float64 { return o.energyHist.Quantile(q) }

// Stats returns the cumulative open-run counters.
func (o *OpenSim) Stats() OpenStats {
	st := o.stats
	st.Slot = o.eng.nextSlot
	st.TableLen = len(o.eng.users)
	st.FreeSlots = len(o.freelist)
	return st
}

// Finish folds every session still in service (a run can end with
// playback complete but RRC tails undrained, which never engine-retires
// the user — those count as completed; truly unfinished ones count as
// departed), then finalizes and returns the engine Result. In bounded
// mode with no mid-run churn the Result is byte-identical to RunCtx on
// the same inputs; in unbounded mode PerSlot holds only the retained
// window span (the trimmed prefix lives in the window snapshots) and
// per-user entries of reused table slots describe only their latest
// session.
func (o *OpenSim) Finish() *Result {
	o.Stop()
	s := o.eng
	for i := range s.users {
		if !o.ended[i] && s.sessions[i] != nil {
			o.fold(i, s.users[i].buf.PlaybackComplete())
		}
	}
	return s.Finish()
}

// Stop quiesces the tile's background compilation pipeline (idempotent,
// and a no-op without a tile). Finish calls it; drivers abandoning a
// sim on an error path should call it too so no goroutine outlives the
// run.
func (o *OpenSim) Stop() {
	if o.eng.openTile != nil {
		o.eng.openTile.stopBg()
	}
}

// compactMinTable is the smallest session table resident-set compaction
// bothers with: below it the dense kernels' serial cutoff makes the
// sparse path cheap anyway.
const compactMinTable = 64

// maybeCompact shrinks the session table when churn has left it mostly
// holes: with fewer than half the slots live, freed rows are compacted
// out so the resident set is an identity prefix again and the dense
// column kernels re-engage. Unbounded mode only — a bounded run's
// Result is indexed by table slot and must stay byte-identical to the
// closed engine's.
func (o *OpenSim) maybeCompact() {
	if !o.unbounded {
		return
	}
	n := len(o.eng.users)
	if n < compactMinTable || 2*(n-len(o.freelist)) >= n {
		return
	}
	o.compact()
}

// compact moves every live session down over the freed slots, keeping
// relative order (so the live and pending lists stay sorted under the
// monotone remap), truncates the per-user arrays, and invalidates the
// tile so its next window compiles over the dense identity row set.
func (o *OpenSim) compact() {
	s := o.eng
	if s.openTile != nil {
		s.openTile.syncFill()
	}
	o.compactPending()
	if cap(o.remap) < len(s.users) {
		o.remap = make([]int, len(s.users))
	}
	remap := o.remap[:len(s.users)]
	reattach := s.colsSlot == s.nextSlot
	c := &s.cols
	w := 0
	for i := range s.users {
		if s.sessions[i] == nil {
			remap[i] = -1
			continue
		}
		remap[i] = w
		if w != i {
			s.sessions[w] = s.sessions[i]
			s.sessions[w].ID = w
			s.users[w] = s.users[i]
			s.alloc[w] = s.alloc[i]
			s.curRes.Users[w] = s.curRes.Users[i]
			o.ended[w] = o.ended[i]
			o.serials[w] = o.serials[i]
			o.owned[w] = o.owned[i]
			c.Active[w] = c.Active[i]
			c.BufferSec[w] = c.BufferSec[i]
			c.RemainingKB[w] = c.RemainingKB[i]
			c.TailGap[w] = c.TailGap[i]
			c.NeverActive[w] = c.NeverActive[i]
			c.MaxUnits[w] = c.MaxUnits[i]
			if s.openTile == nil {
				c.Sig[w] = c.Sig[i]
				c.LinkRate[w] = c.LinkRate[i]
				c.EnergyPerKB[w] = c.EnergyPerKB[i]
				c.Rate[w] = c.Rate[i]
			} else if s.cfg.ABR != nil {
				c.Rate[w] = c.Rate[i]
			}
			if s.abrCtls != nil {
				s.abrCtls[w] = s.abrCtls[i]
			}
		}
		o.bySerial[o.serials[w]] = w
		w++
	}
	s.sessions = s.sessions[:w]
	s.users = s.users[:w]
	s.alloc = s.alloc[:w]
	s.curRes.Users = s.curRes.Users[:w]
	o.ended = o.ended[:w]
	o.serials = o.serials[:w]
	o.owned = o.owned[:w]
	c.Active = c.Active[:w]
	c.BufferSec = c.BufferSec[:w]
	c.RemainingKB = c.RemainingKB[:w]
	c.TailGap = c.TailGap[:w]
	c.NeverActive = c.NeverActive[:w]
	c.MaxUnits = c.MaxUnits[:w]
	if s.openTile == nil {
		c.Sig = c.Sig[:w]
		c.LinkRate = c.LinkRate[:w]
		c.EnergyPerKB = c.EnergyPerKB[:w]
		c.Rate = c.Rate[:w]
	} else if s.cfg.ABR != nil {
		c.Rate = c.Rate[:w]
	}
	if s.abrCtls != nil {
		s.abrCtls = s.abrCtls[:w]
	}
	o.freelist = o.freelist[:0]
	o.stats.FreeSlots = 0
	// The remap is monotone, so in-place rewrites keep both lists sorted
	// in the engine's (StartSlot, index) and ascending orders.
	for k, id := range s.live {
		s.live[k] = remap[id]
	}
	for k, id := range s.pending {
		s.pending[k] = remap[id]
	}
	if reattach {
		for k, id := range s.activeBuf {
			s.activeBuf[k] = remap[id]
		}
	} else {
		s.activeBuf = s.activeBuf[:0]
	}
	if s.openTile != nil {
		s.openTile.compactRows(w)
		if reattach {
			// The fused pass already prepared the next slot: re-alias the
			// static columns over the compacted (and freshly recompiled)
			// tile rows.
			s.attachSlotColumns(s.nextSlot)
		}
	}
}

// removeValue deletes the first occurrence of v from xs (order kept).
func removeValue(xs []int, v int) []int {
	for k, x := range xs {
		if x == v {
			copy(xs[k:], xs[k+1:])
			return xs[:len(xs)-1]
		}
	}
	return xs
}

// insertSortedDesc inserts v into descending-sorted xs.
func insertSortedDesc(xs []int, v int) []int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] > v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	xs = append(xs, 0)
	copy(xs[lo+1:], xs[lo:])
	xs[lo] = v
	return xs
}

// removeSortedValue deletes v from ascending-sorted xs if present.
func removeSortedValue(xs []int, v int) []int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(xs) && xs[lo] == v {
		copy(xs[lo:], xs[lo+1:])
		return xs[:len(xs)-1]
	}
	return xs
}

// tileBlock is one compiled window of the open tile: a slot-major block
// of analytic physics rows (signal, throughput, energy price, required
// rate, Eq. (1) link units) covering `window` slots × `cap` table rows.
type tileBlock struct {
	base  int // first slot the block covers; -1 = not compiled
	sig   []units.DBm
	linkR []units.KBps
	epkb  []units.MJ
	rate  []units.KBps
	lu    []int32
}

// openTile is the open-system engine's horizon-free link window:
// ring-buffered link state whose memory never depends on uptime.
// attachSlotColumns aliases a slot's rows zero-copy, exactly like the
// closed engine's link-table windows; the values are computed with the
// same expressions prepareColsUser's analytic branch uses, so the tiled
// and analytic paths are bit-identical.
//
// Two perf structures ride on top of the original single-block design:
//
//   - a live-row set (rows): compilation touches only resident sessions,
//     not all `cap` table rows, and when the set is an identity prefix
//     (rowsDense) the per-slot fill runs the dense tile kernel;
//   - a double-buffered pipeline (cur/next): after each window swap the
//     following window compiles on a background goroutine while the
//     current one ticks, so the rollover slot pays a swap, not a
//     compile. The engine's pinPrevColumns copies the evicted slot's
//     aliased rows *before* attach triggers the swap, which is what
//     makes refilling the outgoing block in the background safe.
//
// All mutation entry points (admitRow/removeRow/compactRows/ensure) call
// syncFill first, so the background worker is always quiescent — the
// channel handshake gives the happens-before edge — before rows or
// session state move under it.
type openTile struct {
	sim    *Simulator
	window int
	cap    int
	// horizon clamps background fills in bounded mode: slots at or past
	// it are never compiled, because bounded-mode sessions may carry
	// memoized signal traces that only cover [0, MaxSlots) and growing a
	// memo from two goroutines would race. -1 = unbounded (vetSession
	// enforces stateless traces, so any slot is safe to fill anywhere).
	horizon int
	// radio/tau/unit are copied out of the engine config at construction
	// so the background worker never reads cfg fields the unbounded
	// AdvanceTo mutates (MaxSlots shares the struct).
	radio radio.Model
	tau   float64
	unit  float64

	cur, next *tileBlock

	// rows is the ascending live-row set compilation covers; rowsDense
	// marks it an identity prefix [0, len(rows)).
	rows      []int
	rowsDense bool

	// Background pipeline state. kick carries the next block's base slot
	// to the worker; done signals its completion. inflight tracks an
	// outstanding fill, nextReady a completed one not yet swapped in.
	bg        bool
	kick      chan int
	done      chan struct{}
	inflight  bool
	nextReady bool
	stopped   bool

	// Fill-loop bindings: set before each Shard so the per-index bodies
	// are method values bound once at construction — no closure
	// allocation per window rollover.
	fillBlk    *tileBlock
	fillBase   int
	fillHi     int
	fillRowFn  func(int)
	fillSlotFn func(int)
}

func newOpenTile(sim *Simulator, window, capSessions int, unbounded bool) *openTile {
	size := window * capSessions
	newBlock := func() *tileBlock {
		return &tileBlock{
			base:  -1,
			sig:   make([]units.DBm, size),
			linkR: make([]units.KBps, size),
			epkb:  make([]units.MJ, size),
			rate:  make([]units.KBps, size),
			lu:    make([]int32, size),
		}
	}
	t := &openTile{
		sim: sim, window: window, cap: capSessions,
		horizon: sim.cfg.MaxSlots,
		radio:   sim.cfg.Radio,
		tau:     float64(sim.cfg.Tau),
		unit:    float64(sim.cfg.Unit),
		cur:     newBlock(),
		next:    newBlock(),
		rows:    make([]int, 0, capSessions),
		kick:    make(chan int, 1),
		done:    make(chan struct{}, 1),
	}
	if unbounded {
		t.horizon = -1
	}
	// Initial population occupies an identity prefix.
	for i := range sim.sessions {
		t.rows = append(t.rows, i)
	}
	t.rowsDense = true
	t.fillRowFn = t.fillRowBody
	t.fillSlotFn = t.fillSlotBody
	return t
}

// willEvict reports whether attaching slot n recompiles the window.
func (t *openTile) willEvict(n int) bool {
	return t.cur.base < 0 || n < t.cur.base || n >= t.cur.base+t.window
}

// ensure makes the resident window cover slot n. Windows are aligned to
// multiples of the window length so boundaries are stable. On the warm
// path (sequential clock, prefetch landed) the crossing is a pointer
// swap; the freshly evicted block immediately starts compiling the
// window after next in the background.
func (t *openTile) ensure(n int) {
	if !t.willEvict(n) {
		return
	}
	base := n - n%t.window
	t.syncFill()
	if t.nextReady && t.next.base == base {
		t.cur, t.next = t.next, t.cur
	} else {
		t.fillBlockInto(t.cur, base)
	}
	t.nextReady = false
	t.prefetch(base + t.window)
}

// prefetch kicks the background worker to compile the window starting
// at base into the spare block. Skipped past the bounded horizon and
// after stopBg.
func (t *openTile) prefetch(base int) {
	if t.stopped || (t.horizon >= 0 && base >= t.horizon) {
		return
	}
	if !t.bg {
		t.bg = true
		go t.bgLoop()
	}
	t.inflight = true
	t.kick <- base
}

// bgLoop is the background compiler: one fill per kick, completion
// signalled on done. It owns t.next exclusively between the two channel
// operations; syncFill's receive is the happens-before edge back.
func (t *openTile) bgLoop() {
	for base := range t.kick {
		t.fillBlockInto(t.next, base)
		t.done <- struct{}{}
	}
}

// syncFill drains an outstanding background fill, marking the spare
// block ready. Every caller that reads or mutates tile/session state
// shared with the worker must pass through here first.
func (t *openTile) syncFill() {
	if t.inflight {
		<-t.done
		t.inflight = false
		t.nextReady = true
	}
}

// stopBg quiesces and permanently stops the background worker
// (idempotent). Further window crossings compile synchronously.
func (t *openTile) stopBg() {
	t.syncFill()
	if t.bg {
		close(t.kick)
		t.bg = false
	}
	t.stopped = true
}

// fillBlockInto compiles the window starting at base into b, covering
// only the live rows — dense identity prefixes shard over slots and run
// the BCE-verified tile kernel, sparse sets shard over rows.
func (t *openTile) fillBlockInto(b *tileBlock, base int) {
	hi := base + t.window
	if t.horizon >= 0 && hi > t.horizon {
		hi = t.horizon
	}
	b.base = base
	if len(t.rows) == 0 || hi <= base {
		return
	}
	t.fillBlk, t.fillBase, t.fillHi = b, base, hi
	workers := t.sim.workers
	if len(t.rows) < smallNSerialCutoff {
		workers = 1
	}
	if t.rowsDense {
		pool.Shard(workers, t.window, t.fillSlotFn)
	} else {
		pool.Shard(workers, len(t.rows), t.fillRowFn)
	}
}

// fillRowBody compiles one live row across the bound window — the
// sparse-occupancy path, and the per-user path admitRow reuses.
func (t *openTile) fillRowBody(j int) {
	i := t.rows[j]
	t.fillRowInto(t.fillBlk, t.fillBase, t.fillHi, i, t.sim.sessions[i])
}

// fillSlotBody compiles one slot across the dense row prefix.
func (t *openTile) fillSlotBody(off int) {
	slot := t.fillBase + off
	if slot >= t.fillHi {
		return
	}
	t.fillTileSlot(t.fillBlk, off, slot, len(t.rows))
}

// fillRowInto (re)computes user i's rows for block b's window.
func (t *openTile) fillRowInto(b *tileBlock, base, hi, i int, sess *workload.Session) {
	for slot := base; slot < hi; slot++ {
		sig := sess.Signal.At(slot)
		link := t.radio.Throughput.Throughput(sig)
		k := (slot-base)*t.cap + i
		b.sig[k] = sig
		b.linkR[k] = link
		b.epkb[k] = t.radio.Power.EnergyPerKB(sig)
		b.rate[k] = sess.RateAt(slot)
		b.lu[k] = int32(floorUnits(float64(link)*t.tau, t.unit))
	}
}

// admitRow registers a newly admitted session and compiles its rows
// into the resident window (and the prefetched one, if landed) so the
// next attach reads correct values without a full recompile.
func (t *openTile) admitRow(i int, sess *workload.Session) {
	t.syncFill()
	t.rows = insertSorted(t.rows, i)
	t.rowsDense = t.rows[len(t.rows)-1] == len(t.rows)-1
	if t.cur.base >= 0 {
		hi := t.cur.base + t.window
		if t.horizon >= 0 && hi > t.horizon {
			hi = t.horizon
		}
		t.fillRowInto(t.cur, t.cur.base, hi, i, sess)
	}
	if t.nextReady {
		hi := t.next.base + t.window
		if t.horizon >= 0 && hi > t.horizon {
			hi = t.horizon
		}
		t.fillRowInto(t.next, t.next.base, hi, i, sess)
	}
}

// removeRow drops a folded session from the live-row set; its stale
// block values are unreachable (the slot is free until the next admit,
// which refills the row).
func (t *openTile) removeRow(i int) {
	t.syncFill()
	t.rows = removeSortedValue(t.rows, i)
	t.rowsDense = len(t.rows) == 0 || t.rows[len(t.rows)-1] == len(t.rows)-1
}

// compactRows resets the live-row set to the identity prefix [0, w)
// after resident-set compaction and invalidates both blocks — row
// indices moved, so the next attach recompiles (dense) from scratch.
func (t *openTile) compactRows(w int) {
	t.syncFill()
	t.nextReady = false
	t.cur.base = -1
	t.next.base = -1
	t.rows = t.rows[:0]
	for i := 0; i < w; i++ {
		t.rows = append(t.rows, i)
	}
	t.rowsDense = true
}

// slotColumns returns slot n's rows as length-len(users) column slices.
func (t *openTile) slotColumns(n int) ([]units.DBm, []units.KBps, []units.MJ, []units.KBps, []int32) {
	b := t.cur
	off := (n - b.base) * t.cap
	m := len(t.sim.users)
	return b.sig[off : off+m], b.linkR[off : off+m], b.epkb[off : off+m], b.rate[off : off+m], b.lu[off : off+m]
}
