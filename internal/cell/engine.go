package cell

import (
	"context"
	"fmt"
	"runtime/pprof"

	"jointstream/internal/pool"
)

// This file implements the production tick engine: each slot splits into
//
//	prepare  — build the scheduler's per-user views (sharded, parallel)
//	schedule — one Allocate call plus Eq. (1)/(2) enforcement (serial)
//	commit   — apply energy/buffer/RRC physics and totals (sharded)
//
// and iterates only the live users (started, not retired), so runs where
// most sessions finish early stop paying O(N) per slot. Determinism is
// preserved by construction: the shard layout is a function of the live
// count and Config.ShardSize only — never of Config.Workers — every
// shard confines its writes to its own users and accumulators, and the
// per-shard partial sums are reduced in shard order. Any worker count
// therefore produces a byte-identical Result; RunReference keeps the
// original full-scan serial loop as the differential reference.

// Run executes the simulation and returns the collected result.
func (s *Simulator) Run() (*Result, error) {
	return s.RunCtx(context.Background())
}

// RunCtx is Run with a cancellation checkpoint at the top of every slot:
// a cancelled context makes the run return ctx.Err() promptly — within
// one slot's work — instead of finishing the horizon. The partially
// filled Result is discarded; cancellation is not a valid run.
func (s *Simulator) RunCtx(ctx context.Context) (*Result, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	res := s.newResult()
	slot := &s.slot
	alloc := s.alloc
	link := s.link

	// The production engine runs on the zero-copy column view: schedulers
	// read through the Slot accessors, which route to s.cols whenever it is
	// attached. The AoS Users slice stays nil here — only RunReference
	// materializes it.
	slot.Cols = &s.cols
	slot.Users = nil

	// Phase attribution for -cpuprofile: one labeled context per phase,
	// created once outside the slot loop (pprof.Do would allocate per
	// call). SetGoroutineLabels is allocation-free, and pool.Shard spawns
	// its workers after the label is set, so shard goroutines inherit the
	// current phase label.
	prepareCtx := pprof.WithLabels(ctx, pprof.Labels("phase", "prepare"))
	scheduleCtx := pprof.WithLabels(ctx, pprof.Labels("phase", "schedule"))
	commitCtx := pprof.WithLabels(ctx, pprof.Labels("phase", "commit"))
	defer pprof.SetGoroutineLabels(ctx)

	// The shard bodies are built once and fed per-slot state through these
	// captured variables: a closure literal inside the loop would capture
	// slotIdx and allocate a fresh func value every slot, breaking the
	// steady-state zero-allocation guarantee.
	var (
		curSlot   int
		curShards int
		curLive   []int
	)
	prepareShard := func(sh int) {
		lo, hi := shardBounds(sh, curShards, len(curLive))
		act := s.shardAct[sh][:0]
		for _, i := range curLive[lo:hi] {
			if s.prepareColsUser(link, curSlot, i) {
				act = append(act, i)
			}
			alloc[i] = 0
		}
		s.shardAct[sh] = act
	}
	commitShard := func(sh int) {
		lo, hi := shardBounds(sh, curShards, len(curLive))
		acc := &s.shardAcc[sh]
		*acc = slotAccum{errUser: -1}
		for _, i := range curLive[lo:hi] {
			if err := s.commitUser(curSlot, i, res, acc); err != nil {
				acc.err = err
				acc.errUser = i
				return
			}
			if s.retireEligible(i) {
				s.users[i].retired = true
				acc.retires++
			}
		}
	}

	for slotIdx := 0; slotIdx < s.cfg.MaxSlots; slotIdx++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cell: run cancelled at slot %d: %w", slotIdx, err)
		}
		s.admit(slotIdx, res)
		if s.unfinished == 0 && !s.cfg.RunFullHorizon && slotIdx > 0 {
			break
		}
		slot.N = slotIdx
		shards := s.shardCount(len(s.live))
		s.ensureShardScratch(shards)
		curSlot, curShards, curLive = slotIdx, shards, s.live

		// Phase 1: prepare. Re-alias the static physics columns to this
		// slot's link-table window (three slice-header writes), then each
		// shard refreshes its users' dynamic columns in place and collects
		// its segment of the active list.
		pprof.SetGoroutineLabels(prepareCtx)
		s.attachSlotColumns(slotIdx)
		pool.Shard(s.workers, shards, prepareShard)
		s.activeBuf = s.activeBuf[:0]
		for sh := 0; sh < shards; sh++ {
			s.activeBuf = append(s.activeBuf, s.shardAct[sh]...)
		}
		slot.ActiveList = s.activeBuf

		pprof.SetGoroutineLabels(scheduleCtx)
		// Phase 2: schedule. One Allocate per slot, by contract serial.
		// An outage slot has zero capacity: the scheduler is not consulted
		// (alloc is already zeroed by prepare) and the commit phase applies
		// the degraded physics — buffers drain, rebuffering and tail energy
		// accrue. Users stay live, so service resumes by itself when the
		// window closes.
		if s.outageAt(slotIdx) {
			slot.CapacityUnits = 0
			res.DegradedSlots++
		} else {
			slot.CapacityUnits = s.capUnits
			s.sched.Allocate(slot, alloc)
			clamps, err := s.enforce(slot, alloc)
			if err != nil {
				return nil, fmt.Errorf("cell: slot %d: %w", slotIdx, err)
			}
			res.ClampEvents += clamps
		}

		// Phase 3: commit. Each shard applies the physics to its users and
		// accumulates partial sums; a shard stops at its first error.
		pprof.SetGoroutineLabels(commitCtx)
		pool.Shard(s.workers, shards, commitShard)

		// Reduce in shard order: identical addition sequence regardless of
		// worker count, and — with one shard — identical to the reference
		// engine's flat per-user accumulation.
		st := SlotTotals{}
		var fairNum, fairDen float64
		var fairCount, retires int
		for sh := 0; sh < shards; sh++ {
			acc := &s.shardAcc[sh]
			if acc.err != nil {
				return nil, fmt.Errorf("cell: user %d slot %d: %w", acc.errUser, slotIdx, acc.err)
			}
			st.Rebuffer += acc.rebuffer
			st.Energy += acc.energy
			st.UsedUnits += acc.usedUnits
			fairNum += acc.fairNum
			fairDen += acc.fairDen
			fairCount += acc.fairCount
			s.unfinished -= acc.completions
			retires += acc.retires
		}
		st.Fairness = jain(fairNum, fairDen, fairCount)
		res.PerSlot = append(res.PerSlot, st)
		res.Slots = slotIdx + 1
		if retires > 0 {
			s.dropRetired()
		}
	}
	s.padSamples(res)
	res.Finalize()
	return res, nil
}

// admit moves users whose StartSlot has arrived from pending onto the
// live list. Late joiners are backfilled with the zero samples the
// full-scan engine would have recorded for their pre-start slots.
func (s *Simulator) admit(slotIdx int, res *Result) {
	for len(s.pending) > 0 {
		i := s.pending[0]
		if int(s.users[i].startSlot) > slotIdx {
			break
		}
		s.pending = s.pending[1:]
		s.live = insertSorted(s.live, i)
		if s.cfg.RecordPerUserSlots {
			for len(res.RebufferSamples[i]) < slotIdx {
				res.RebufferSamples[i] = append(res.RebufferSamples[i], 0)
				res.EnergySamples[i] = append(res.EnergySamples[i], 0)
			}
		}
	}
}

// insertSorted inserts v into ascending-sorted xs, keeping order.
func insertSorted(xs []int, v int) []int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	xs = append(xs, 0)
	copy(xs[lo+1:], xs[lo:])
	xs[lo] = v
	return xs
}

// retireEligible reports whether user i can leave the live list: its
// playback and delivery are complete and its RRC tail is drained, so
// every future slot would add exactly zero energy, rebuffering and
// delivered bytes. Users with tail still burning stay live — the idle
// slots after completion are where the tail energy the paper studies
// accrues.
func (s *Simulator) retireEligible(i int) bool {
	u := &s.users[i]
	if !u.buf.PlaybackComplete() || !u.buf.DeliveryComplete() {
		return false
	}
	return !u.everActive || u.tailGap >= s.tailDrained
}

// dropRetired compacts the live list, zeroing retired users' dynamic
// columns and allocations so a stale Active flag can never leak into a
// later slot's scheduling. Only the engine-owned dynamic columns are
// touched — the static physics columns may alias the shared link table
// and must never be written through.
func (s *Simulator) dropRetired() {
	c := &s.cols
	w := 0
	for _, i := range s.live {
		if s.users[i].retired {
			c.Active[i] = false
			c.BufferSec[i] = 0
			c.RemainingKB[i] = 0
			c.TailGap[i] = 0
			c.NeverActive[i] = false
			c.MaxUnits[i] = 0
			s.alloc[i] = 0
			continue
		}
		s.live[w] = i
		w++
	}
	s.live = s.live[:w]
}

// padSamples extends every recorded series to the final slot count with
// the zeros the full-scan engine would have written for retired and
// never-started users.
func (s *Simulator) padSamples(res *Result) {
	if !s.cfg.RecordPerUserSlots {
		return
	}
	for i := range s.users {
		for len(res.RebufferSamples[i]) < res.Slots {
			res.RebufferSamples[i] = append(res.RebufferSamples[i], 0)
		}
		for len(res.EnergySamples[i]) < res.Slots {
			res.EnergySamples[i] = append(res.EnergySamples[i], 0)
		}
	}
}

// shardCount returns the slot's shard count: ⌈live/shardSize⌉. It is a
// function of the live-user count only, so worker count never changes
// the summation grouping.
func (s *Simulator) shardCount(live int) int {
	if live == 0 {
		return 0
	}
	return (live + s.shardSize - 1) / s.shardSize
}

// shardBounds returns shard sh's half-open [lo, hi) range over n live
// users, splitting as evenly as possible (the first n%shards shards get
// one extra user).
func shardBounds(sh, shards, n int) (int, int) {
	base, rem := n/shards, n%shards
	lo := sh*base + min(sh, rem)
	hi := lo + base
	if sh < rem {
		hi++
	}
	return lo, hi
}

// ensureShardScratch sizes the per-shard scratch for this slot.
func (s *Simulator) ensureShardScratch(shards int) {
	for len(s.shardAct) < shards {
		s.shardAct = append(s.shardAct, nil)
	}
	for len(s.shardAcc) < shards {
		s.shardAcc = append(s.shardAcc, slotAccum{})
	}
}
