package cell

import (
	"context"
	"fmt"
	"runtime/pprof"

	"jointstream/internal/pool"
)

// This file implements the production tick engine: each slot splits into
//
//	prepare  — build the scheduler's per-user views (sharded, parallel)
//	schedule — one Allocate call plus Eq. (1)/(2) enforcement (serial)
//	commit   — apply energy/buffer/RRC physics and totals (sharded)
//
// and iterates only the live users (started, not retired), so runs where
// most sessions finish early stop paying O(N) per slot. Determinism is
// preserved by construction: the shard layout is a function of the live
// count and Config.ShardSize only — never of Config.Workers — every
// shard confines its writes to its own users and accumulators, and the
// per-shard partial sums are reduced in shard order. Any worker count
// therefore produces a byte-identical Result; RunReference keeps the
// original full-scan serial loop as the differential reference.
//
// Two further structural optimizations live here (see DESIGN.md §10):
//
//   - Fused commit+prepare: commit of slot n and prepare of slot n+1 read
//     and write the same per-user state but have no cross-user
//     dependencies, so the engine runs them as one pass — each user is
//     committed for slot n and immediately prepared for slot n+1,
//     touching its state once per slot instead of twice. Per-user the
//     operation order is exactly commit(n);prepare(n+1), which equals the
//     phase-separated engine because neither phase reads another user's
//     state. Users admitted at n+1 (absent from slot n's live list) are
//     patched in by admit; users retired at n are prepared wastefully and
//     then re-zeroed by dropRetired, exactly as the phase-separated
//     engine leaves them.
//
//   - Multi-arm lockstep (RunArms): several simulators sharing one
//     workload and link table are ticked slot-by-slot in one loop, so a
//     slot's static physics windows stay cache-hot across all arms. Each
//     arm executes the identical per-slot sequence it would run alone,
//     which makes its Result byte-identical to a single-arm run by
//     construction (asserted by internal/simtest's multi-arm matrix).

// Run executes the simulation and returns the collected result.
func (s *Simulator) Run() (*Result, error) {
	return s.RunCtx(context.Background())
}

// RunCtx is Run with a cancellation checkpoint at the top of every slot:
// a cancelled context makes the run return ctx.Err() promptly — within
// one slot's work — instead of finishing the horizon. The partially
// filled Result is discarded; cancellation is not a valid run.
//
// RunCtx is exactly Start + Advance(MaxSlots) + Finish: the stepped API
// below runs the identical per-slot sequence, so a run advanced in
// epoch-sized chunks (the fleet runner) produces a byte-identical Result.
func (s *Simulator) RunCtx(ctx context.Context) (*Result, error) {
	if err := s.Start(ctx); err != nil {
		return nil, err
	}
	if _, err := s.Advance(s.cfg.MaxSlots); err != nil {
		return nil, err
	}
	return s.Finish(), nil
}

// Start begins a stepped run: the caller then drives the slot clock with
// Advance and collects the Result with Finish. The deploy package's
// epoch-clocked fleet runner uses this to tick hundreds of cells in
// lockstep without dedicating a goroutine (or a full-horizon loop) to
// each. Like Run, a Simulator is single-use: Start consumes it.
func (s *Simulator) Start(ctx context.Context) error {
	if err := s.begin(); err != nil {
		return err
	}
	s.startRun(ctx)
	s.stepCtx = ctx
	s.nextSlot = 0
	s.stepDone = false
	return nil
}

// Advance ticks the run up to (but not including) slot upto, clamped to
// the horizon, and reports whether the run is over — the horizon was
// reached or every session finished. It checks the Start context at the
// top of every slot, exactly as RunCtx does, and restores the caller's
// pprof labels before returning so epoch-driving goroutines don't keep a
// phase label between epochs. Calling Advance again after done=true is a
// no-op returning done=true.
func (s *Simulator) Advance(upto int) (bool, error) {
	if s.stepCtx == nil {
		return false, fmt.Errorf("cell: Advance without Start")
	}
	defer pprof.SetGoroutineLabels(s.stepCtx)
	if upto > s.cfg.MaxSlots {
		upto = s.cfg.MaxSlots
	}
	for !s.stepDone && s.nextSlot < upto {
		if err := s.stepCtx.Err(); err != nil {
			return false, fmt.Errorf("cell: run cancelled at slot %d: %w", s.nextSlot, err)
		}
		done, err := s.tickSlot(s.nextSlot)
		if err != nil {
			return false, err
		}
		if done {
			s.stepDone = true
			break
		}
		s.nextSlot++
	}
	if s.nextSlot >= s.cfg.MaxSlots {
		s.stepDone = true
	}
	return s.stepDone, nil
}

// Finish pads the recorded series, finalizes and returns the Result of a
// stepped run. Call it once Advance reports done (calling earlier
// finalizes the slots ticked so far, which is only meaningful for tests).
func (s *Simulator) Finish() *Result {
	res := s.finishRun()
	s.stepCtx = nil
	return res
}

// RunArms executes several simulators over a shared slot clock; see
// RunArmsCtx.
func RunArms(sims []*Simulator) ([]*Result, error) {
	return RunArmsCtx(context.Background(), sims)
}

// RunArmsCtx ticks all scheduler arms in lockstep: one slot loop, inside
// which every still-running arm executes its prepare/schedule/commit for
// that slot. The arms are expected to share a workload and a compiled
// link table (Config.Link) — that is what makes lockstep worthwhile,
// because each slot's static physics window is read by every arm while
// still cache-hot — but nothing is shared mutably: each arm owns its
// user state, columns and result, and executes exactly the per-slot
// sequence RunCtx would run for it alone. Every arm's Result is
// therefore byte-identical to its own single-arm run, for any worker
// count. Arms may have different horizons and finish (or early-exit) on
// different slots; results are returned in arm order. An error in any
// arm aborts the whole call.
func RunArmsCtx(ctx context.Context, sims []*Simulator) ([]*Result, error) {
	if len(sims) == 0 {
		return nil, fmt.Errorf("cell: no arms")
	}
	maxSlots := 0
	for k, sim := range sims {
		if sim == nil {
			return nil, fmt.Errorf("cell: arm %d is nil", k)
		}
		if err := sim.begin(); err != nil {
			return nil, fmt.Errorf("cell: arm %d: %w", k, err)
		}
		if sim.cfg.MaxSlots > maxSlots {
			maxSlots = sim.cfg.MaxSlots
		}
	}
	for _, sim := range sims {
		sim.startRun(ctx)
	}
	defer pprof.SetGoroutineLabels(ctx)

	done := make([]bool, len(sims))
	running := len(sims)
	for slotIdx := 0; slotIdx < maxSlots && running > 0; slotIdx++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cell: run cancelled at slot %d: %w", slotIdx, err)
		}
		for k, sim := range sims {
			if done[k] || slotIdx >= sim.cfg.MaxSlots {
				if !done[k] && slotIdx >= sim.cfg.MaxSlots {
					done[k] = true
					running--
				}
				continue
			}
			armDone, err := sim.tickSlot(slotIdx)
			if err != nil {
				return nil, fmt.Errorf("cell: arm %d (%s): %w", k, sim.sched.Name(), err)
			}
			if armDone {
				done[k] = true
				running--
			}
		}
	}
	results := make([]*Result, len(sims))
	for k, sim := range sims {
		results[k] = sim.finishRun()
	}
	return results, nil
}

// startRun initializes the run-scoped engine state: the result shell,
// the SoA slot view, the phase-label contexts for -cpuprofile
// attribution, and the shard bodies. The bodies are method values bound
// once here — a closure literal inside the slot loop would capture the
// slot index and allocate a fresh func value every slot, breaking the
// steady-state zero-allocation guarantee.
func (s *Simulator) startRun(ctx context.Context) {
	s.curRes = s.newResult()

	// The production engine runs on the zero-copy column view: schedulers
	// read through the Slot accessors, which route to s.cols whenever it is
	// attached. The AoS Users slice stays nil here — only RunReference
	// materializes it.
	s.slot.Cols = &s.cols
	s.slot.Users = nil
	s.colsSlot = -1

	// Phase attribution for -cpuprofile: one labeled context per phase,
	// created once per run (pprof.Do would allocate per call).
	// SetGoroutineLabels is allocation-free, and pool.Shard spawns its
	// workers after the label is set, so shard goroutines inherit the
	// current phase label. The fused pass gets its own label: its samples
	// are commit(n) and prepare(n+1) work combined.
	s.lblPrep = pprof.WithLabels(ctx, pprof.Labels("phase", "prepare"))
	s.lblSched = pprof.WithLabels(ctx, pprof.Labels("phase", "schedule"))
	s.lblCommit = pprof.WithLabels(ctx, pprof.Labels("phase", "commit"))
	s.lblFused = pprof.WithLabels(ctx, pprof.Labels("phase", "fused"))

	s.prepFn = s.prepareShardBody
	s.commFn = s.commitShardBody
	s.fusedFn = s.fusedShardBody
}

// finishRun pads the recorded series and finalizes the result.
func (s *Simulator) finishRun() *Result {
	res := s.curRes
	s.padSamples(res)
	res.Finalize()
	return res
}

// smallNSerialCutoff is the live-user count below which the tick phases
// run serially regardless of Config.Workers: dispatching goroutines
// through the shard pool costs more than the work itself (measured by
// BenchmarkShardCrossover in internal/pool — the goroutine handoff only
// amortizes in the thousands-of-users range). The shard *layout* is
// untouched, so the serial path reduces the identical partial sums and
// the Result stays byte-identical.
const smallNSerialCutoff = 2048

// runWorkers resolves the worker count for one slot's sharded phases.
func (s *Simulator) runWorkers(live int) int {
	if live < smallNSerialCutoff {
		return 1
	}
	return s.workers
}

// tickSlot advances the run by one slot: admission, the prepare phase
// (unless the previous slot's fused pass already prepared this slot),
// scheduling, the fused commit+prepare (or plain commit on the final
// slot), and the shard-ordered reduction. It returns done=true when the
// run is over (every session finished before this slot).
func (s *Simulator) tickSlot(slotIdx int) (bool, error) {
	res := s.curRes
	s.admit(slotIdx, res)
	if s.unfinished == 0 && !s.cfg.RunFullHorizon && slotIdx > 0 {
		return true, nil
	}
	s.slot.N = slotIdx
	shards := s.shardCount(len(s.live))
	s.ensureShardScratch(shards)
	s.curSlot, s.curShards, s.curLive = slotIdx, shards, s.live
	s.curDense = len(s.live) == len(s.users)
	workers := s.runWorkers(len(s.live))

	// Phase 1: prepare. Re-alias the static physics columns to this
	// slot's link-table window (three slice-header writes), then each
	// shard refreshes its users' dynamic columns in place and collects
	// its segment of the active list. Skipped entirely when the previous
	// slot's fused pass already prepared this slot.
	if s.colsSlot != slotIdx {
		pprof.SetGoroutineLabels(s.lblPrep)
		s.attachSlotColumns(slotIdx)
		pool.Shard(workers, shards, s.prepFn)
		s.collectActive(shards)
	}
	s.slot.ActiveList = s.activeBuf

	pprof.SetGoroutineLabels(s.lblSched)
	// Phase 2: schedule. One Allocate per slot, by contract serial.
	// An outage slot has zero capacity: the scheduler is not consulted
	// (alloc is already zeroed by prepare) and the commit phase applies
	// the degraded physics — buffers drain, rebuffering and tail energy
	// accrue. Users stay live, so service resumes by itself when the
	// window closes.
	if s.outageAt(slotIdx) {
		s.slot.CapacityUnits = 0
		res.DegradedSlots++
	} else {
		s.slot.CapacityUnits = s.capUnits
		s.sched.Allocate(&s.slot, s.alloc)
		clamps, err := s.enforce(&s.slot, s.alloc)
		if err != nil {
			return false, fmt.Errorf("cell: slot %d: %w", slotIdx, err)
		}
		res.ClampEvents += clamps
	}

	// Phase 3: commit — fused with the next slot's prepare whenever a
	// next slot exists. The previous static price/rate columns are pinned
	// first (the commit half prices this slot's deliveries with them),
	// then the column view moves on to slot n+1 and each shard commits
	// and re-prepares its users in one pass.
	if slotIdx+1 < s.cfg.MaxSlots {
		pprof.SetGoroutineLabels(s.lblFused)
		s.pinPrevColumns(slotIdx + 1)
		s.attachSlotColumns(slotIdx + 1)
		pool.Shard(workers, shards, s.fusedFn)
		s.collectActive(shards)
		s.colsSlot = slotIdx + 1
	} else {
		pprof.SetGoroutineLabels(s.lblCommit)
		pool.Shard(workers, shards, s.commFn)
	}

	// Reduce in shard order: identical addition sequence regardless of
	// worker count, and — with one shard — identical to the reference
	// engine's flat per-user accumulation.
	st := SlotTotals{}
	var fairNum, fairDen float64
	var fairCount, retires int
	for sh := 0; sh < shards; sh++ {
		acc := &s.shardAcc[sh]
		if acc.err != nil {
			return false, fmt.Errorf("cell: user %d slot %d: %w", acc.errUser, slotIdx, acc.err)
		}
		st.Rebuffer += acc.rebuffer
		st.Energy += acc.energy
		st.UsedUnits += acc.usedUnits
		fairNum += acc.fairNum
		fairDen += acc.fairDen
		fairCount += acc.fairCount
		s.unfinished -= acc.completions
		retires += acc.retires
	}
	st.Fairness = jain(fairNum, fairDen, fairCount)
	res.PerSlot = append(res.PerSlot, st)
	res.Slots = slotIdx + 1
	if retires > 0 {
		s.dropRetired()
	}
	return false, nil
}

// pinPrevColumns pins this slot's static price and rate columns for the
// fused pass before attachSlotColumns moves the view on to slot next.
// Normally the pins are zero-copy aliases of the current columns — with
// a monolithic link table those windows stay valid forever, and without
// a table the fused kernel's per-user read-commit-then-write-prepare
// order protects the engine-owned arrays. A tiled table breaks the
// aliasing case exactly when attaching slot next recompiles the resident
// block: the aliased windows would be overwritten with slot-next physics
// before the commit half reads them, so the columns are copied into
// engine scratch first. The copy happens once per tile crossing (an
// O(users) memmove every window slots) and copies values bitwise, so
// results are unchanged.
func (s *Simulator) pinPrevColumns(next int) {
	evict := (s.link != nil && s.link.willEvict(next)) ||
		(s.openTile != nil && s.openTile.willEvict(next))
	if evict {
		s.prevEpkbBuf = append(s.prevEpkbBuf[:0], s.cols.EnergyPerKB...)
		s.prevEpkb = s.prevEpkbBuf
		if s.cfg.ABR == nil {
			// Rate aliases the table only without ABR; under ABR it is an
			// engine-owned array the recompile never touches.
			s.prevRateBuf = append(s.prevRateBuf[:0], s.cols.Rate...)
			s.prevRate = s.prevRateBuf
		} else {
			s.prevRate = s.cols.Rate
		}
		return
	}
	s.prevEpkb, s.prevRate = s.cols.EnergyPerKB, s.cols.Rate
}

// collectActive concatenates the per-shard active segments into the
// slot's active list, in shard order — ascending user index, because the
// live list is sorted and shards cover consecutive ranges of it.
func (s *Simulator) collectActive(shards int) {
	s.activeBuf = s.activeBuf[:0]
	for sh := 0; sh < shards; sh++ {
		s.activeBuf = append(s.activeBuf, s.shardAct[sh]...)
	}
}

// admit moves users whose StartSlot has arrived from pending onto the
// live list. Late joiners are backfilled with the zero samples the
// full-scan engine would have recorded for their pre-start slots; when
// the slot's columns were already prepared by the previous slot's fused
// pass (which ran before these users were live), their column entries
// are patched in and the active list is spliced to stay sorted.
func (s *Simulator) admit(slotIdx int, res *Result) {
	for s.pendHead < len(s.pending) {
		i := s.pending[s.pendHead]
		if int(s.users[i].startSlot) > slotIdx {
			break
		}
		s.pendHead++
		s.live = insertSorted(s.live, i)
		if s.colsSlot == slotIdx {
			if s.prepareColsUser(s.colsTabled(), slotIdx, i) {
				s.activeBuf = insertSorted(s.activeBuf, i)
			}
			s.alloc[i] = 0
		}
		if s.cfg.RecordPerUserSlots {
			for len(res.RebufferSamples[i]) < slotIdx {
				res.RebufferSamples[i] = append(res.RebufferSamples[i], 0)
				res.EnergySamples[i] = append(res.EnergySamples[i], 0)
			}
		}
	}
	if s.pendHead == len(s.pending) && s.pendHead > 0 {
		// Drained: rewind to the array's head so the storage is reused.
		s.pending = s.pending[:0]
		s.pendHead = 0
	}
}

// pendingCount returns how many admitted-but-not-started users remain.
func (s *Simulator) pendingCount() int { return len(s.pending) - s.pendHead }

// insertSorted inserts v into ascending-sorted xs, keeping order.
func insertSorted(xs []int, v int) []int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	xs = append(xs, 0)
	copy(xs[lo+1:], xs[lo:])
	xs[lo] = v
	return xs
}

// retireEligible reports whether user i can leave the live list: its
// playback and delivery are complete and its RRC tail is drained, so
// every future slot would add exactly zero energy, rebuffering and
// delivered bytes. Users with tail still burning stay live — the idle
// slots after completion are where the tail energy the paper studies
// accrues.
func (s *Simulator) retireEligible(i int) bool {
	u := &s.users[i]
	if !u.buf.PlaybackComplete() || !u.buf.DeliveryComplete() {
		return false
	}
	return !u.everActive || u.tailGap >= s.tailDrained
}

// dropRetired compacts the live list, zeroing retired users' dynamic
// columns and allocations so a stale Active flag can never leak into a
// later slot's scheduling. Only the engine-owned dynamic columns are
// touched — the static physics columns may alias the shared link table
// and must never be written through.
func (s *Simulator) dropRetired() {
	c := &s.cols
	w := 0
	for _, i := range s.live {
		if s.users[i].retired {
			c.Active[i] = false
			c.BufferSec[i] = 0
			c.RemainingKB[i] = 0
			c.TailGap[i] = 0
			c.NeverActive[i] = false
			c.MaxUnits[i] = 0
			s.alloc[i] = 0
			continue
		}
		s.live[w] = i
		w++
	}
	s.live = s.live[:w]
}

// padSamples extends every recorded series to the final slot count with
// the zeros the full-scan engine would have written for retired and
// never-started users.
func (s *Simulator) padSamples(res *Result) {
	if !s.cfg.RecordPerUserSlots {
		return
	}
	for i := range s.users {
		for len(res.RebufferSamples[i]) < res.Slots {
			res.RebufferSamples[i] = append(res.RebufferSamples[i], 0)
		}
		for len(res.EnergySamples[i]) < res.Slots {
			res.EnergySamples[i] = append(res.EnergySamples[i], 0)
		}
	}
}

// shardCount returns the slot's shard count: ⌈live/shardSize⌉. It is a
// function of the live-user count only, so worker count never changes
// the summation grouping.
func (s *Simulator) shardCount(live int) int {
	if live == 0 {
		return 0
	}
	return (live + s.shardSize - 1) / s.shardSize
}

// shardBounds returns shard sh's half-open [lo, hi) range over n live
// users, splitting as evenly as possible (the first n%shards shards get
// one extra user).
func shardBounds(sh, shards, n int) (int, int) {
	base, rem := n/shards, n%shards
	lo := sh*base + min(sh, rem)
	hi := lo + base
	if sh < rem {
		hi++
	}
	return lo, hi
}

// ensureShardScratch sizes the per-shard scratch for this slot.
func (s *Simulator) ensureShardScratch(shards int) {
	for len(s.shardAct) < shards {
		s.shardAct = append(s.shardAct, nil)
	}
	for len(s.shardAcc) < shards {
		s.shardAcc = append(s.shardAcc, slotAccum{})
	}
}
