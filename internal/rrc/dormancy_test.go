package rrc

import (
	"math"
	"testing"
	"testing/quick"

	"jointstream/internal/units"
)

func TestFastDormancyTruncatesTail(t *testing.T) {
	base := Paper3G()
	fd := base.WithFastDormancy(1.5)
	if fd.Name != "3G+FD" {
		t.Errorf("name = %q", fd.Name)
	}
	// Within the dormancy window the tail matches the base profile.
	if got, want := fd.TailEnergy(1.0), base.TailEnergy(1.0); got != want {
		t.Errorf("pre-release tail %v != base %v", got, want)
	}
	// Beyond it, the tail saturates at the release point.
	want := base.TailEnergy(1.5)
	for _, gap := range []units.Seconds{1.5, 2, 5, 100} {
		if got := fd.TailEnergy(gap); math.Abs(float64(got-want)) > 1e-9 {
			t.Errorf("TailEnergy(%v) = %v, want truncated %v", gap, got, want)
		}
	}
}

func TestFastDormancyMaxTail(t *testing.T) {
	base := Paper3G()
	fd := base.WithFastDormancy(1.5)
	want := base.TailEnergy(1.5) // 1.5s of DCH
	if got := fd.MaxTailEnergy(); math.Abs(float64(got-want)) > 1e-9 {
		t.Errorf("MaxTailEnergy = %v, want %v", got, want)
	}
	// A dormancy delay longer than the full tail changes nothing.
	late := base.WithFastDormancy(100)
	if late.MaxTailEnergy() != base.MaxTailEnergy() {
		t.Error("late dormancy altered the max tail")
	}
}

func TestFastDormancyState(t *testing.T) {
	fd := Paper3G().WithFastDormancy(1.5)
	if got := fd.StateAfter(1.0); got != DCH {
		t.Errorf("StateAfter(1.0) = %v, want DCH", got)
	}
	if got := fd.StateAfter(1.5); got != Idle {
		t.Errorf("StateAfter(1.5) = %v, want IDLE", got)
	}
	if got := fd.StateAfter(5); got != Idle {
		t.Errorf("StateAfter(5) = %v, want IDLE", got)
	}
}

func TestFastDormancyValidation(t *testing.T) {
	p := Paper3G()
	p.Dormancy = -1
	if err := p.Validate(); err == nil {
		t.Error("negative dormancy accepted")
	}
}

func TestFastDormancyMachineIntegration(t *testing.T) {
	fd := Paper3G().WithFastDormancy(2)
	m, err := NewMachine(fd)
	if err != nil {
		t.Fatal(err)
	}
	m.Transfer()
	var sum units.MJ
	for i := 0; i < 10; i++ {
		sum += m.IdleSlot(1)
	}
	want := fd.MaxTailEnergy()
	if math.Abs(float64(sum-want)) > 1e-9 {
		t.Errorf("machine tail sum = %v, want %v", sum, want)
	}
	if m.State() != Idle {
		t.Errorf("state = %v, want IDLE", m.State())
	}
}

// Property: fast dormancy never increases tail energy, for any delay and
// gap, and the savings are monotone in the delay.
func TestFastDormancySavingsProperty(t *testing.T) {
	base := Paper3G()
	f := func(delayRaw, gapRaw uint16) bool {
		delay := units.Seconds(float64(delayRaw%100)/10) + 0.1
		gap := units.Seconds(float64(gapRaw%200) / 10)
		fd := base.WithFastDormancy(delay)
		if fd.TailEnergy(gap) > base.TailEnergy(gap)+1e-9 {
			return false
		}
		shorter := base.WithFastDormancy(delay / 2)
		return shorter.TailEnergy(gap) <= fd.TailEnergy(gap)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
