// Package rrc models the Radio Resource Control state machine of cellular
// user equipment and the "tail energy" it causes (paper §III-C, Eq. 4).
//
// In 3G/UMTS a device occupies CELL_DCH (high power) while transferring,
// demotes to CELL_FACH (medium power) after an inactivity timer T1, and to
// IDLE (negligible power in this model) after a further timer T2. LTE has
// the analogous RRC_CONNECTED/RRC_IDLE pair with its own timer and powers.
// Because the timers span several seconds, a device that receives nothing
// in a slot still burns "tail" power left over from its last transfer —
// the energy the paper's EMA scheduler explicitly trades against.
//
// The package provides both the closed-form cumulative tail energy of
// Eq. (4) and an incremental per-slot state Machine; tests cross-validate
// the two so either can be trusted in the simulator.
package rrc

import (
	"fmt"

	"jointstream/internal/units"
)

// State is an RRC power state.
type State int

// The power states, ordered from hottest to coldest. The 3G profile uses
// all three; the LTE profile maps CONNECTED onto DCH and never enters FACH.
const (
	DCH  State = iota // CELL_DCH / RRC_CONNECTED: high power
	FACH              // CELL_FACH: medium power (3G only)
	Idle              // CELL_IDLE / RRC_IDLE: radio effectively off
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case DCH:
		return "DCH"
	case FACH:
		return "FACH"
	case Idle:
		return "IDLE"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Profile holds the RRC parameters of one radio technology.
type Profile struct {
	Name string
	// Pd and Pf are the instantaneous powers in the high and medium states.
	Pd, Pf units.MW
	// T1 is the DCH→FACH inactivity timer; T2 the FACH→IDLE timer.
	// A profile with T2 == 0 (e.g. LTE) demotes straight to IDLE after T1.
	T1, T2 units.Seconds
	// Dormancy, when positive, enables Fast Dormancy (3GPP Release 8 /
	// the mechanism RadioJockey and TOP exploit): the device sends a
	// Signaling Connection Release after this many seconds of inactivity
	// and drops straight to IDLE, truncating the tail. Zero disables it.
	Dormancy units.Seconds
}

// WithFastDormancy returns a copy of the profile that releases the radio
// after the given inactivity delay.
func (p Profile) WithFastDormancy(after units.Seconds) Profile {
	p.Dormancy = after
	p.Name = p.Name + "+FD"
	return p
}

// Paper3G returns the 3G parameters the paper adopts from PerES (Cui et
// al., INFOCOM 2014): Pd = 732.83 mW, Pf = 388.88 mW, T1 = 3.29 s,
// T2 = 4.02 s.
func Paper3G() Profile {
	return Profile{Name: "3G", Pd: 732.83, Pf: 388.88, T1: 3.29, T2: 4.02}
}

// LTE returns an LTE profile: a single RRC_CONNECTED tail (Huang et al.,
// MobiSys 2012 measure ~11.6 s inactivity timer at ~1060 mW). T2 = 0
// expresses the missing FACH state.
func LTE() Profile {
	return Profile{Name: "LTE", Pd: 1060, Pf: 0, T1: 11.6, T2: 0}
}

// Validate reports whether the profile is physically sensible.
func (p Profile) Validate() error {
	if p.Pd < 0 || p.Pf < 0 {
		return fmt.Errorf("rrc: negative power in profile %q", p.Name)
	}
	if p.T1 < 0 || p.T2 < 0 {
		return fmt.Errorf("rrc: negative timer in profile %q", p.Name)
	}
	if p.Dormancy < 0 {
		return fmt.Errorf("rrc: negative fast-dormancy delay in profile %q", p.Name)
	}
	return nil
}

// TailEnergy is the closed form of Eq. (4): the cumulative energy spent in
// the tail during the first t seconds after a transfer ends.
//
//	E(t) = Pd·t                    0 ≤ t < T1
//	       Pd·T1 + Pf·(t−T1)       T1 ≤ t < T1+T2
//	       Pd·T1 + Pf·T2           t ≥ T1+T2
func (p Profile) TailEnergy(t units.Seconds) units.MJ {
	if t < 0 {
		panic(fmt.Sprintf("rrc: negative gap %v", t))
	}
	// Fast Dormancy truncates the tail: beyond the release delay the
	// radio is in IDLE and burns nothing more.
	if p.Dormancy > 0 && t > p.Dormancy {
		t = p.Dormancy
	}
	switch {
	case t < p.T1:
		return p.Pd.Energy(t)
	case t < p.T1+p.T2:
		return p.Pd.Energy(p.T1) + p.Pf.Energy(t-p.T1)
	default:
		return p.Pd.Energy(p.T1) + p.Pf.Energy(p.T2)
	}
}

// TailIncrement returns the tail energy burned between gap and gap+tau
// seconds after the last transfer: TailEnergy(gap+tau) − TailEnergy(gap).
// It short-circuits to zero once the tail is fully drained (gap beyond
// T1+T2, or beyond the Fast Dormancy release), which is the common case
// for long-idle radios and keeps hot-path callers (the simulator's
// Machine.IdleSlot, EMA's per-slot skip cost) off the closed form.
func (p Profile) TailIncrement(gap, tau units.Seconds) units.MJ {
	if gap < 0 {
		panic(fmt.Sprintf("rrc: negative gap %v", gap))
	}
	if tau < 0 {
		panic(fmt.Sprintf("rrc: negative slot length %v", tau))
	}
	if gap >= p.TailDrainedAfter() {
		return 0
	}
	return p.TailEnergy(gap+tau) - p.TailEnergy(gap)
}

// TailDrainedAfter returns the gap beyond which the tail burns no further
// energy: T1+T2, truncated by Fast Dormancy when enabled.
func (p Profile) TailDrainedAfter() units.Seconds {
	drained := p.T1 + p.T2
	if p.Dormancy > 0 && p.Dormancy < drained {
		drained = p.Dormancy
	}
	return drained
}

// MaxTailEnergy is the total energy of one complete tail (t → ∞ in Eq. 4),
// accounting for Fast Dormancy truncation if enabled.
func (p Profile) MaxTailEnergy() units.MJ {
	if p.Dormancy > 0 && p.Dormancy < p.T1+p.T2 {
		return p.TailEnergy(p.Dormancy)
	}
	return p.Pd.Energy(p.T1) + p.Pf.Energy(p.T2)
}

// StateAfter returns the RRC state a device occupies t seconds after its
// last transfer ended.
func (p Profile) StateAfter(t units.Seconds) State {
	if t < 0 {
		panic(fmt.Sprintf("rrc: negative gap %v", t))
	}
	if p.Dormancy > 0 && t >= p.Dormancy {
		return Idle
	}
	switch {
	case t < p.T1:
		return DCH
	case t < p.T1+p.T2:
		return FACH
	default:
		return Idle
	}
}

// Machine tracks one device's RRC state incrementally, slot by slot. The
// simulator calls exactly one of Transfer or IdleSlot per slot.
type Machine struct {
	profile Profile
	// gap is the time since the end of the last transfer; 0 while active.
	gap units.Seconds
	// everActive records whether any transfer has happened yet: a device
	// that has never transferred sits in IDLE and burns no tail energy.
	everActive bool
}

// Init resets m in place to a Machine in IDLE with no transfer history,
// without allocating.
func (m *Machine) Init(p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	*m = Machine{profile: p}
	return nil
}

// NewMachine returns a Machine in IDLE with no transfer history.
func NewMachine(p Profile) (*Machine, error) {
	m := new(Machine)
	if err := m.Init(p); err != nil {
		return nil, err
	}
	return m, nil
}

// Profile returns the machine's RRC parameters.
func (m *Machine) Profile() Profile { return m.profile }

// State returns the current RRC state.
func (m *Machine) State() State {
	if !m.everActive {
		return Idle
	}
	return m.profile.StateAfter(m.gap)
}

// Gap returns the time since the last transfer ended (0 while a slot with
// a transfer is the most recent slot).
func (m *Machine) Gap() units.Seconds { return m.gap }

// EverActive reports whether the machine has recorded any transfer.
func (m *Machine) EverActive() bool { return m.everActive }

// Transfer records that the device received data during a slot: the radio
// promotes to DCH and all inactivity timers reset. Tail energy for such a
// slot is zero — transmission energy (Eq. 3) is accounted separately by
// the radio model, exactly as in the paper's Eq. (5).
func (m *Machine) Transfer() {
	m.everActive = true
	m.gap = 0
}

// IdleSlot advances the machine through one slot of length tau with no
// transfer and returns the tail energy consumed during that slot:
// E_tail(gap+tau) − E_tail(gap) per Eq. (4). A device that has never
// transferred consumes nothing.
func (m *Machine) IdleSlot(tau units.Seconds) units.MJ {
	if tau < 0 {
		panic(fmt.Sprintf("rrc: negative slot length %v", tau))
	}
	if !m.everActive {
		return 0
	}
	inc := m.profile.TailIncrement(m.gap, tau)
	m.gap += tau
	return inc
}
