package rrc

import (
	"math"
	"testing"
	"testing/quick"

	"jointstream/internal/units"
)

func TestPaper3GConstants(t *testing.T) {
	p := Paper3G()
	if p.Pd != 732.83 || p.Pf != 388.88 {
		t.Errorf("powers = %v/%v, want 732.83/388.88", p.Pd, p.Pf)
	}
	if p.T1 != 3.29 || p.T2 != 4.02 {
		t.Errorf("timers = %v/%v, want 3.29/4.02", p.T1, p.T2)
	}
}

func TestTailEnergyEq4Segments(t *testing.T) {
	p := Paper3G()
	cases := []struct {
		t    units.Seconds
		want float64 // mJ
	}{
		{0, 0},
		{1, 732.83},
		{3.29, 732.83 * 3.29},                  // boundary T1
		{5, 732.83*3.29 + 388.88*(5-3.29)},     // inside FACH window
		{7.31, 732.83*3.29 + 388.88*4.02},      // boundary T1+T2
		{100, 732.83*3.29 + 388.88*4.02},       // long idle: saturated
		{2.5, 732.83 * 2.5},                    // inside DCH window
		{3.3, 732.83*3.29 + 388.88*(3.3-3.29)}, // just past T1
		{7.4, 732.83*3.29 + 388.88*4.02},       // just past T1+T2
	}
	for _, c := range cases {
		got := float64(p.TailEnergy(c.t))
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("TailEnergy(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestTailEnergyMonotoneNonDecreasing(t *testing.T) {
	p := Paper3G()
	prev := units.MJ(-1)
	for ti := units.Seconds(0); ti < 12; ti += 0.01 {
		e := p.TailEnergy(ti)
		if e < prev {
			t.Fatalf("tail energy decreased at t=%v", ti)
		}
		prev = e
	}
}

func TestMaxTailEnergy(t *testing.T) {
	p := Paper3G()
	want := 732.83*3.29 + 388.88*4.02
	if got := float64(p.MaxTailEnergy()); math.Abs(got-want) > 1e-9 {
		t.Errorf("MaxTailEnergy = %v, want %v", got, want)
	}
	if p.TailEnergy(1e9) != p.MaxTailEnergy() {
		t.Error("TailEnergy should saturate at MaxTailEnergy")
	}
}

func TestTailEnergyNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative gap")
		}
	}()
	Paper3G().TailEnergy(-1)
}

func TestStateAfter(t *testing.T) {
	p := Paper3G()
	cases := []struct {
		t    units.Seconds
		want State
	}{
		{0, DCH}, {3.28, DCH}, {3.29, FACH}, {7.30, FACH}, {7.31, Idle}, {100, Idle},
	}
	for _, c := range cases {
		if got := p.StateAfter(c.t); got != c.want {
			t.Errorf("StateAfter(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestLTEProfileSkipsFACH(t *testing.T) {
	p := LTE()
	if got := p.StateAfter(p.T1); got != Idle {
		t.Errorf("LTE StateAfter(T1) = %v, want IDLE (no FACH)", got)
	}
	if got := p.StateAfter(p.T1 - 0.01); got != DCH {
		t.Errorf("LTE StateAfter(T1-eps) = %v, want DCH", got)
	}
	want := float64(p.Pd) * float64(p.T1)
	if got := float64(p.MaxTailEnergy()); math.Abs(got-want) > 1e-9 {
		t.Errorf("LTE MaxTailEnergy = %v, want %v", got, want)
	}
}

func TestStateString(t *testing.T) {
	if DCH.String() != "DCH" || FACH.String() != "FACH" || Idle.String() != "IDLE" {
		t.Error("State.String() mismatch")
	}
	if State(42).String() != "State(42)" {
		t.Errorf("unknown state string = %q", State(42).String())
	}
}

func TestValidate(t *testing.T) {
	good := Paper3G()
	if err := good.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	bad := []Profile{
		{Name: "negP", Pd: -1},
		{Name: "negPf", Pf: -1},
		{Name: "negT1", T1: -1},
		{Name: "negT2", T2: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %q accepted, want error", p.Name)
		}
	}
}

func TestNewMachineRejectsInvalidProfile(t *testing.T) {
	if _, err := NewMachine(Profile{Pd: -5}); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestMachineNeverActiveBurnsNothing(t *testing.T) {
	m, err := NewMachine(Paper3G())
	if err != nil {
		t.Fatal(err)
	}
	if m.State() != Idle {
		t.Errorf("fresh machine state = %v, want IDLE", m.State())
	}
	for i := 0; i < 10; i++ {
		if e := m.IdleSlot(1); e != 0 {
			t.Fatalf("never-active machine burned %v", e)
		}
	}
}

func TestMachineTransferPromotesAndResets(t *testing.T) {
	m, _ := NewMachine(Paper3G())
	m.Transfer()
	if m.State() != DCH {
		t.Errorf("state after transfer = %v, want DCH", m.State())
	}
	m.IdleSlot(1)
	m.IdleSlot(1)
	if m.Gap() != 2 {
		t.Errorf("gap = %v, want 2", m.Gap())
	}
	m.Transfer()
	if m.Gap() != 0 {
		t.Errorf("gap after transfer = %v, want 0", m.Gap())
	}
	if m.State() != DCH {
		t.Errorf("state = %v, want DCH", m.State())
	}
}

func TestMachineWalksThroughStates(t *testing.T) {
	m, _ := NewMachine(Paper3G())
	m.Transfer()
	wantStates := []State{DCH, DCH, DCH, FACH, FACH, FACH, FACH, Idle, Idle}
	for i, want := range wantStates {
		m.IdleSlot(1)
		// After i+1 seconds of idle.
		if got := m.State(); got != want {
			t.Errorf("state after %ds idle = %v, want %v", i+1, got, want)
		}
	}
}

// Incremental per-slot tail energy must sum to the closed form of Eq. (4).
func TestMachineMatchesClosedForm(t *testing.T) {
	for _, p := range []Profile{Paper3G(), LTE()} {
		m, _ := NewMachine(p)
		m.Transfer()
		var sum units.MJ
		for i := 0; i < 30; i++ {
			sum += m.IdleSlot(1)
			want := p.TailEnergy(units.Seconds(i + 1))
			if math.Abs(float64(sum-want)) > 1e-6 {
				t.Fatalf("%s: cumulative slot energy after %ds = %v, closed form %v",
					p.Name, i+1, sum, want)
			}
		}
	}
}

// The same equivalence must hold for fractional slot lengths.
func TestMachineMatchesClosedFormFractionalTau(t *testing.T) {
	p := Paper3G()
	m, _ := NewMachine(p)
	m.Transfer()
	var sum units.MJ
	tau := units.Seconds(0.37)
	for i := 0; i < 50; i++ {
		sum += m.IdleSlot(tau)
	}
	want := p.TailEnergy(units.Seconds(50 * 0.37))
	if math.Abs(float64(sum-want)) > 1e-6 {
		t.Errorf("fractional-slot sum = %v, want %v", sum, want)
	}
}

func TestMachineIdleSlotNegativePanics(t *testing.T) {
	m, _ := NewMachine(Paper3G())
	m.Transfer()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative tau")
		}
	}()
	m.IdleSlot(-1)
}

func TestTailEnergySaturatesAfterFullTail(t *testing.T) {
	m, _ := NewMachine(Paper3G())
	m.Transfer()
	// Burn the whole tail.
	for i := 0; i < 10; i++ {
		m.IdleSlot(1)
	}
	// Further idle slots must be free.
	if e := m.IdleSlot(1); e != 0 {
		t.Errorf("post-tail idle slot burned %v, want 0", e)
	}
	if m.State() != Idle {
		t.Errorf("state = %v, want IDLE", m.State())
	}
}

// Property: for arbitrary (valid) profiles and gaps, the incremental
// machine agrees with the closed form, and energy is within [0, Max].
func TestMachineClosedFormProperty(t *testing.T) {
	f := func(pdRaw, pfRaw, t1Raw, t2Raw uint16, slots uint8) bool {
		p := Profile{
			Name: "prop",
			Pd:   units.MW(float64(pdRaw%2000) + 1),
			Pf:   units.MW(float64(pfRaw % 1000)),
			T1:   units.Seconds(float64(t1Raw%100) / 10),
			T2:   units.Seconds(float64(t2Raw%100) / 10),
		}
		m, err := NewMachine(p)
		if err != nil {
			return false
		}
		m.Transfer()
		var sum units.MJ
		n := int(slots%40) + 1
		for i := 0; i < n; i++ {
			e := m.IdleSlot(0.5)
			if e < 0 {
				return false
			}
			sum += e
		}
		want := p.TailEnergy(units.Seconds(float64(n) * 0.5))
		if math.Abs(float64(sum-want)) > 1e-6 {
			return false
		}
		return sum <= p.MaxTailEnergy()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a transfer in the middle of a tail restarts the full tail.
func TestTransferRestartsTailProperty(t *testing.T) {
	f := func(idleBefore uint8) bool {
		p := Paper3G()
		m, _ := NewMachine(p)
		m.Transfer()
		for i := 0; i < int(idleBefore%10); i++ {
			m.IdleSlot(1)
		}
		m.Transfer()
		var sum units.MJ
		for i := 0; i < 20; i++ {
			sum += m.IdleSlot(1)
		}
		return math.Abs(float64(sum-p.MaxTailEnergy())) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMachineProfileAndEverActive(t *testing.T) {
	m, _ := NewMachine(Paper3G())
	if m.Profile().Name != "3G" {
		t.Errorf("Profile().Name = %q", m.Profile().Name)
	}
	if m.EverActive() {
		t.Error("fresh machine reports activity")
	}
	m.Transfer()
	if !m.EverActive() {
		t.Error("machine not active after transfer")
	}
}
