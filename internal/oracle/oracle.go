// Package oracle computes offline bounds on the energy-minimization
// problem of the paper's Theorem 1. The Lyapunov bound PE∞ ≤ E* + B/V is
// stated against E*, the minimum achievable average energy of any policy;
// E* is unobservable online, but an offline relaxation gives a certified
// lower bound:
//
//   - drop the base-station capacity coupling (Eq. 2) and the rebuffering
//     constraint, keeping only the per-user link caps (Eq. 1);
//   - then each user independently buys its video's bytes at its
//     cheapest-priced slots over the horizon. Tail energy is ignored by
//     the lower bound — tails are non-negative, so it remains a valid
//     lower bound on total (transmission + tail) energy too.
//
// Every feasible schedule pays at least this much transmission energy, so
// the bound certifies how close EMA gets to optimal (the "oracle gap"
// reported by the experiment harness extension).
//
// The package also provides an omniscient heuristic *upper* bound: a
// future-aware schedule that respects Eq. (1)+(2) by buying globally
// cheapest (user, slot) units first. Between the two brackets lies E*.
// By default the upper bound counts transmission energy only; setting
// Config.AccountTail replays the greedy plan through the Eq. (4) RRC
// tail physics so UpperMJ is directly comparable to the engine's total
// Result energy.
//
// Finally, Bounds.WorstMJ is the adversarial end of the bracket: a
// certified upper bound on the total energy of ANY feasible schedule
// (every deliverable byte priced at the user's worst feasible slot,
// plus a full-horizon worst-case tail). Together with the per-run lower
// bound of LowerBoundDelivered this yields the dominance invariant the
// property suite asserts for every scheduler S:
//
//	LowerBoundDelivered(run) ≤ trans(S) ≤ total(S) ≤ WorstMJ
//
// Prices are normally re-derived from each session's signal trace and
// the radio model; setting Config.Link replays the compiled link
// table's slot-major windows instead, which is bitwise-identical (the
// table compiler is exactness-checked) and skips the per-slot model
// calls.
package oracle

import (
	"fmt"
	"sort"

	"jointstream/internal/radio"
	"jointstream/internal/rrc"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// LinkView is the slice of cell.LinkTable the oracle can replay instead
// of re-deriving prices analytically: zero-copy slot-major columns of
// the per-KB price and the Eq. (1) unit limit. cell.LinkTable satisfies
// it; the indirection keeps this package free of an engine dependency.
type LinkView interface {
	Users() int
	Slots() int
	Tau() units.Seconds
	Unit() units.KB
	SlotEnergyPerKB(n int) []units.MJ
	SlotLinkUnits(n int) []int32
}

// Config parameterizes the offline computation.
type Config struct {
	// Tau is the slot length.
	Tau units.Seconds
	// Unit is the data-unit size δ (KB).
	Unit units.KB
	// Capacity is the base-station budget S (KB/s); used only by the
	// upper bound.
	Capacity units.KBps
	// Horizon is the number of slots considered.
	Horizon int
	// Radio supplies v(sig) and P(sig).
	Radio radio.Model
	// RRC supplies the Eq. (4) tail physics for AccountTail and for the
	// tail term of WorstMJ. The zero profile burns nothing, so callers
	// that only want transmission bounds may leave it unset.
	RRC rrc.Profile
	// AccountTail, when set, adds the omniscient plan's replayed RRC
	// tail energy to UpperMJ (and reports it in Bounds.TailMJ), making
	// the bracket comparable to the engine's total Result energy. The
	// default preserves the legacy transmission-only upper bound.
	AccountTail bool
	// Link, when non-nil, supplies prices and link limits from the
	// compiled table's slot-major windows instead of Signal.At + radio
	// calls. It must cover the sessions and horizon on the same (τ, δ)
	// grid.
	Link LinkView
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Tau <= 0 || c.Unit <= 0 || c.Horizon <= 0 {
		return fmt.Errorf("oracle: non-positive tau/unit/horizon (%v/%v/%d)", c.Tau, c.Unit, c.Horizon)
	}
	if c.Capacity <= 0 {
		return fmt.Errorf("oracle: non-positive capacity %v", c.Capacity)
	}
	if c.Radio.Throughput == nil || c.Radio.Power == nil {
		return fmt.Errorf("oracle: radio model not fully specified")
	}
	if c.AccountTail {
		if err := c.RRC.Validate(); err != nil {
			return err
		}
	}
	if c.Link != nil {
		if c.Link.Slots() < c.Horizon {
			return fmt.Errorf("oracle: link view covers %d slots, horizon needs %d", c.Link.Slots(), c.Horizon)
		}
		if c.Link.Tau() != c.Tau || c.Link.Unit() != c.Unit {
			return fmt.Errorf("oracle: link view grid (tau=%v, unit=%v) != config (tau=%v, unit=%v)",
				c.Link.Tau(), c.Link.Unit(), c.Tau, c.Unit)
		}
	}
	return nil
}

// Bounds brackets the offline-optimal energy, and — through WorstMJ —
// the energy of every feasible schedule.
type Bounds struct {
	// LowerMJ is the capacity-relaxed per-user-independent optimum: no
	// feasible schedule delivering every byte can spend less
	// transmission energy.
	LowerMJ units.MJ
	// UpperMJ is the energy of the omniscient greedy schedule, which is
	// feasible under Eq. (1)+(2); the true offline optimum E* lies in
	// [LowerMJ, UpperMJ]. Transmission-only by default; with
	// Config.AccountTail it includes the plan's replayed tail energy.
	UpperMJ units.MJ
	// TailMJ is the RRC tail energy of the omniscient plan, included in
	// UpperMJ; zero unless Config.AccountTail is set.
	TailMJ units.MJ
	// WorstMJ is the adversarial certificate: no feasible schedule —
	// omniscient or otherwise — can spend more total energy than this
	// (worst-price delivery of every deliverable byte plus a
	// max-power tail burned every slot by every user). Deliberately
	// loose; its job is to close the dominance bracket, not to be
	// tight.
	WorstMJ units.MJ
	// Feasible reports whether the omniscient schedule managed to deliver
	// every byte within the horizon; if false, UpperMJ covers only the
	// delivered portion and the horizon should be extended.
	Feasible bool
}

// slotPrice is one (user, slot) opportunity.
type slotPrice struct {
	user    int
	slot    int
	price   float64 // mJ/KB
	maxUnit int     // Eq. (1) cap in units
}

// Plan is the omniscient greedy schedule behind the upper bound:
// Alloc[n][u] is the data-unit grant of user u in slot n. Feeding it back
// through the real simulator (sched.NewPlanned) measures what the
// clairvoyant energy plan does to playback — it ignores buffer dynamics
// entirely, so its rebuffering can be arbitrarily bad.
type Plan struct {
	Alloc  [][]int
	Bounds Bounds
}

// ComputePlan evaluates the bounds and returns the upper bound's schedule.
func ComputePlan(cfg Config, sessions []*workload.Session) (*Plan, error) {
	b, alloc, err := compute(cfg, sessions, true)
	if err != nil {
		return nil, err
	}
	return &Plan{Alloc: alloc, Bounds: b}, nil
}

// Compute evaluates both bounds for the given sessions.
func Compute(cfg Config, sessions []*workload.Session) (Bounds, error) {
	b, _, err := compute(cfg, sessions, false)
	return b, err
}

func compute(cfg Config, sessions []*workload.Session, wantPlan bool) (Bounds, [][]int, error) {
	prices, err := buildPrices(cfg, sessions)
	if err != nil {
		return Bounds{}, nil, err
	}

	demand := make([]float64, len(sessions))
	for ui, s := range sessions {
		demand[ui] = float64(s.Size)
	}
	lower, err := lowerFill(cfg, prices, demand)
	if err != nil {
		return Bounds{}, nil, err
	}
	// The tail replay needs the plan even when the caller doesn't.
	upper, feasible, alloc := upperBound(cfg, sessions, prices, wantPlan || cfg.AccountTail)
	b := Bounds{
		LowerMJ:  lower,
		UpperMJ:  upper,
		WorstMJ:  worstBound(cfg, sessions, prices),
		Feasible: feasible,
	}
	if cfg.AccountTail {
		b.TailMJ = planTail(cfg, alloc, len(sessions))
		b.UpperMJ += b.TailMJ
	}
	if !wantPlan {
		alloc = nil
	}
	return b, alloc, nil
}

// buildPrices precomputes the (user, slot) opportunities: per-KB price
// and Eq. (1) cap for every slot from the session's start with a
// nonzero link, either replayed from the compiled link view or derived
// from the signal trace and radio model.
func buildPrices(cfg Config, sessions []*workload.Session) ([][]slotPrice, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sessions) == 0 {
		return nil, fmt.Errorf("oracle: no sessions")
	}
	if cfg.Link != nil && cfg.Link.Users() != len(sessions) {
		return nil, fmt.Errorf("oracle: link view compiled for %d users, run has %d", cfg.Link.Users(), len(sessions))
	}
	prices := make([][]slotPrice, len(sessions))
	for ui, s := range sessions {
		prices[ui] = make([]slotPrice, 0, cfg.Horizon)
		for n := s.StartSlot; n < cfg.Horizon; n++ {
			var price float64
			var maxUnits int
			if cfg.Link != nil {
				maxUnits = int(cfg.Link.SlotLinkUnits(n)[ui])
				if maxUnits == 0 {
					continue
				}
				price = float64(cfg.Link.SlotEnergyPerKB(n)[ui])
			} else {
				sig := s.Signal.At(n)
				link := cfg.Radio.Throughput.Throughput(sig)
				maxUnits = int(float64(link) * float64(cfg.Tau) / float64(cfg.Unit))
				if maxUnits == 0 {
					continue
				}
				price = float64(cfg.Radio.Power.EnergyPerKB(sig))
			}
			prices[ui] = append(prices[ui], slotPrice{
				user:    ui,
				slot:    n,
				price:   price,
				maxUnit: maxUnits,
			})
		}
	}
	return prices, nil
}

// LowerBoundDelivered is the per-run certificate: the minimum
// transmission energy ANY schedule respecting Eq. (1) must pay to
// deliver the given per-user byte counts — the capacity-relaxed
// cheapest-slot fill, but for what a finished run actually delivered
// rather than the full video sizes. Every run's measured transmission
// energy (and a fortiori its total energy) dominates it, whether or not
// the run completed delivery.
func LowerBoundDelivered(cfg Config, sessions []*workload.Session, delivered []units.KB) (units.MJ, error) {
	if len(delivered) != len(sessions) {
		return 0, fmt.Errorf("oracle: %d delivered totals for %d sessions", len(delivered), len(sessions))
	}
	prices, err := buildPrices(cfg, sessions)
	if err != nil {
		return 0, err
	}
	demand := make([]float64, len(delivered))
	for ui, kb := range delivered {
		if kb < 0 {
			return 0, fmt.Errorf("oracle: user %d negative delivered %v", ui, kb)
		}
		demand[ui] = float64(kb)
	}
	return lowerFill(cfg, prices, demand)
}

// lowerFill relaxes Eq. (2): each user fills its demand (KB) from its
// own cheapest slots.
func lowerFill(cfg Config, prices [][]slotPrice, demand []float64) (units.MJ, error) {
	var total float64
	for ui := range prices {
		own := make([]slotPrice, len(prices[ui]))
		copy(own, prices[ui])
		sort.Slice(own, func(a, b int) bool { return own[a].price < own[b].price })
		remaining := demand[ui]
		for _, sp := range own {
			if remaining <= 0 {
				break
			}
			kb := float64(sp.maxUnit) * float64(cfg.Unit)
			if kb > remaining {
				kb = remaining
			}
			total += kb * sp.price
			remaining -= kb
		}
		if remaining > 0 {
			return 0, fmt.Errorf("oracle: user %d cannot deliver %.0f KB within horizon %d even uncapacitated",
				ui, remaining, cfg.Horizon)
		}
	}
	return units.MJ(total), nil
}

// upperBound buys globally cheapest units first while honouring per-slot
// capacity, yielding a feasible (future-aware) schedule. When wantPlan is
// set, the per-slot per-user unit grants are also returned.
func upperBound(cfg Config, sessions []*workload.Session, prices [][]slotPrice, wantPlan bool) (units.MJ, bool, [][]int) {
	all := make([]slotPrice, 0, 1024)
	for ui := range prices {
		all = append(all, prices[ui]...)
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].price != all[b].price {
			return all[a].price < all[b].price
		}
		if all[a].slot != all[b].slot {
			return all[a].slot < all[b].slot
		}
		return all[a].user < all[b].user
	})
	capPerSlot := int(float64(cfg.Capacity) * float64(cfg.Tau) / float64(cfg.Unit))
	slotUsed := make([]int, cfg.Horizon)
	remaining := make([]float64, len(sessions))
	for ui, s := range sessions {
		remaining[ui] = float64(s.Size)
	}
	var plan [][]int
	if wantPlan {
		plan = make([][]int, cfg.Horizon)
		for n := range plan {
			plan[n] = make([]int, len(sessions))
		}
	}
	var total float64
	for _, sp := range all {
		if remaining[sp.user] <= 0 {
			continue
		}
		free := capPerSlot - slotUsed[sp.slot]
		if free <= 0 {
			continue
		}
		unitsGranted := sp.maxUnit
		if unitsGranted > free {
			unitsGranted = free
		}
		kb := float64(unitsGranted) * float64(cfg.Unit)
		if kb > remaining[sp.user] {
			kb = remaining[sp.user]
			unitsGranted = int((kb + float64(cfg.Unit) - 1) / float64(cfg.Unit))
		}
		total += kb * sp.price
		remaining[sp.user] -= kb
		slotUsed[sp.slot] += unitsGranted
		if wantPlan {
			plan[sp.slot][sp.user] += unitsGranted
		}
	}
	feasible := true
	for _, r := range remaining {
		if r > 0 {
			feasible = false
			break
		}
	}
	return units.MJ(total), feasible, plan
}

// planTail replays a plan's per-user transfer pattern through the
// Eq. (4) tail physics exactly as the engine's commit phase would: an
// idle slot after the first transfer burns E(gap+τ) − E(gap) and ages
// the gap; a transfer resets it. Accrual runs to the horizon edge, not
// just to each user's last transfer: the engine keeps a user's radio
// state alive until playback completes — which trails delivery by at
// least the buffered content — so the post-transfer drain reaches the
// Result too. The increments self-cap at zero once the gap passes
// T1+T2, so the trailing term never exceeds one MaxTailEnergy per user.
func planTail(cfg Config, plan [][]int, users int) units.MJ {
	var total units.MJ
	for u := 0; u < users; u++ {
		first := -1
		for n := range plan {
			if plan[n][u] > 0 {
				first = n
				break
			}
		}
		if first < 0 {
			continue
		}
		var gap units.Seconds
		for n := first + 1; n < len(plan); n++ {
			if plan[n][u] > 0 {
				gap = 0
				continue
			}
			total += cfg.RRC.TailIncrement(gap, cfg.Tau)
			gap += cfg.Tau
		}
	}
	return total
}

// worstBound certifies the adversarial end of the bracket: a feasible
// schedule can deliver at most min(size, what the link ever carries)
// KB per user, each priced at worst at that user's most expensive
// feasible slot, and a radio can burn at most max(Pd, Pf)·τ of tail per
// slot (the per-slot Eq. (4) increment is an integral of instantaneous
// tail power, which never exceeds the hotter state's). Both ceilings
// are loose by design; nothing feasible can cross them.
func worstBound(cfg Config, sessions []*workload.Session, prices [][]slotPrice) units.MJ {
	var total float64
	for ui, s := range sessions {
		var maxPrice, deliverable float64
		for _, sp := range prices[ui] {
			if sp.price > maxPrice {
				maxPrice = sp.price
			}
			deliverable += float64(sp.maxUnit) * float64(cfg.Unit)
		}
		kb := float64(s.Size)
		if kb > deliverable {
			kb = deliverable
		}
		total += kb * maxPrice
	}
	tailPower := cfg.RRC.Pd
	if cfg.RRC.Pf > tailPower {
		tailPower = cfg.RRC.Pf
	}
	total += float64(len(sessions)) * float64(cfg.Horizon) * float64(tailPower.Energy(cfg.Tau))
	return units.MJ(total)
}
