// Package oracle computes offline bounds on the energy-minimization
// problem of the paper's Theorem 1. The Lyapunov bound PE∞ ≤ E* + B/V is
// stated against E*, the minimum achievable average energy of any policy;
// E* is unobservable online, but an offline relaxation gives a certified
// lower bound:
//
//   - drop the base-station capacity coupling (Eq. 2) and the rebuffering
//     constraint, keeping only the per-user link caps (Eq. 1);
//   - then each user independently buys its video's bytes at its
//     cheapest-priced slots over the horizon, and tail energy is ignored.
//
// Every feasible schedule pays at least this much transmission energy, so
// the bound certifies how close EMA gets to optimal (the "oracle gap"
// reported by the experiment harness extension).
//
// The package also provides an omniscient heuristic *upper* bound: a
// future-aware schedule that respects Eq. (1)+(2) by buying globally
// cheapest (user, slot) units first. Between the two brackets lies E*.
package oracle

import (
	"fmt"
	"sort"

	"jointstream/internal/radio"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// Config parameterizes the offline computation.
type Config struct {
	// Tau is the slot length.
	Tau units.Seconds
	// Unit is the data-unit size δ (KB).
	Unit units.KB
	// Capacity is the base-station budget S (KB/s); used only by the
	// upper bound.
	Capacity units.KBps
	// Horizon is the number of slots considered.
	Horizon int
	// Radio supplies v(sig) and P(sig).
	Radio radio.Model
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Tau <= 0 || c.Unit <= 0 || c.Horizon <= 0 {
		return fmt.Errorf("oracle: non-positive tau/unit/horizon (%v/%v/%d)", c.Tau, c.Unit, c.Horizon)
	}
	if c.Capacity <= 0 {
		return fmt.Errorf("oracle: non-positive capacity %v", c.Capacity)
	}
	if c.Radio.Throughput == nil || c.Radio.Power == nil {
		return fmt.Errorf("oracle: radio model not fully specified")
	}
	return nil
}

// Bounds brackets the offline-optimal transmission energy.
type Bounds struct {
	// LowerMJ is the capacity-relaxed per-user-independent optimum: no
	// feasible schedule can spend less transmission energy.
	LowerMJ units.MJ
	// UpperMJ is the energy of the omniscient greedy schedule, which is
	// feasible under Eq. (1)+(2); the true offline optimum E* (ignoring
	// tails) lies in [LowerMJ, UpperMJ].
	UpperMJ units.MJ
	// Feasible reports whether the omniscient schedule managed to deliver
	// every byte within the horizon; if false, UpperMJ covers only the
	// delivered portion and the horizon should be extended.
	Feasible bool
}

// slotPrice is one (user, slot) opportunity.
type slotPrice struct {
	user    int
	slot    int
	price   float64 // mJ/KB
	maxUnit int     // Eq. (1) cap in units
}

// Plan is the omniscient greedy schedule behind the upper bound:
// Alloc[n][u] is the data-unit grant of user u in slot n. Feeding it back
// through the real simulator (sched.NewPlanned) measures what the
// clairvoyant energy plan does to playback — it ignores buffer dynamics
// entirely, so its rebuffering can be arbitrarily bad.
type Plan struct {
	Alloc  [][]int
	Bounds Bounds
}

// ComputePlan evaluates the bounds and returns the upper bound's schedule.
func ComputePlan(cfg Config, sessions []*workload.Session) (*Plan, error) {
	b, alloc, err := compute(cfg, sessions, true)
	if err != nil {
		return nil, err
	}
	return &Plan{Alloc: alloc, Bounds: b}, nil
}

// Compute evaluates both bounds for the given sessions.
func Compute(cfg Config, sessions []*workload.Session) (Bounds, error) {
	b, _, err := compute(cfg, sessions, false)
	return b, err
}

func compute(cfg Config, sessions []*workload.Session, wantPlan bool) (Bounds, [][]int, error) {
	if err := cfg.Validate(); err != nil {
		return Bounds{}, nil, err
	}
	if len(sessions) == 0 {
		return Bounds{}, nil, fmt.Errorf("oracle: no sessions")
	}

	// Precompute prices and link caps for every (user, slot).
	prices := make([][]slotPrice, len(sessions))
	for ui, s := range sessions {
		prices[ui] = make([]slotPrice, 0, cfg.Horizon)
		for n := s.StartSlot; n < cfg.Horizon; n++ {
			sig := s.Signal.At(n)
			link := cfg.Radio.Throughput.Throughput(sig)
			maxUnits := int(float64(link) * float64(cfg.Tau) / float64(cfg.Unit))
			if maxUnits == 0 {
				continue
			}
			prices[ui] = append(prices[ui], slotPrice{
				user:    ui,
				slot:    n,
				price:   float64(cfg.Radio.Power.EnergyPerKB(sig)),
				maxUnit: maxUnits,
			})
		}
	}

	lower, err := lowerBound(cfg, sessions, prices)
	if err != nil {
		return Bounds{}, nil, err
	}
	upper, feasible, alloc := upperBound(cfg, sessions, prices, wantPlan)
	return Bounds{LowerMJ: lower, UpperMJ: upper, Feasible: feasible}, alloc, nil
}

// lowerBound relaxes Eq. (2): each user fills its demand from its own
// cheapest slots.
func lowerBound(cfg Config, sessions []*workload.Session, prices [][]slotPrice) (units.MJ, error) {
	var total float64
	for ui, s := range sessions {
		own := make([]slotPrice, len(prices[ui]))
		copy(own, prices[ui])
		sort.Slice(own, func(a, b int) bool { return own[a].price < own[b].price })
		remaining := float64(s.Size)
		for _, sp := range own {
			if remaining <= 0 {
				break
			}
			kb := float64(sp.maxUnit) * float64(cfg.Unit)
			if kb > remaining {
				kb = remaining
			}
			total += kb * sp.price
			remaining -= kb
		}
		if remaining > 0 {
			return 0, fmt.Errorf("oracle: user %d cannot deliver %.0f KB within horizon %d even uncapacitated",
				ui, remaining, cfg.Horizon)
		}
	}
	return units.MJ(total), nil
}

// upperBound buys globally cheapest units first while honouring per-slot
// capacity, yielding a feasible (future-aware) schedule. When wantPlan is
// set, the per-slot per-user unit grants are also returned.
func upperBound(cfg Config, sessions []*workload.Session, prices [][]slotPrice, wantPlan bool) (units.MJ, bool, [][]int) {
	all := make([]slotPrice, 0, 1024)
	for ui := range prices {
		all = append(all, prices[ui]...)
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].price != all[b].price {
			return all[a].price < all[b].price
		}
		if all[a].slot != all[b].slot {
			return all[a].slot < all[b].slot
		}
		return all[a].user < all[b].user
	})
	capPerSlot := int(float64(cfg.Capacity) * float64(cfg.Tau) / float64(cfg.Unit))
	slotUsed := make([]int, cfg.Horizon)
	remaining := make([]float64, len(sessions))
	for ui, s := range sessions {
		remaining[ui] = float64(s.Size)
	}
	var plan [][]int
	if wantPlan {
		plan = make([][]int, cfg.Horizon)
		for n := range plan {
			plan[n] = make([]int, len(sessions))
		}
	}
	var total float64
	for _, sp := range all {
		if remaining[sp.user] <= 0 {
			continue
		}
		free := capPerSlot - slotUsed[sp.slot]
		if free <= 0 {
			continue
		}
		unitsGranted := sp.maxUnit
		if unitsGranted > free {
			unitsGranted = free
		}
		kb := float64(unitsGranted) * float64(cfg.Unit)
		if kb > remaining[sp.user] {
			kb = remaining[sp.user]
			unitsGranted = int((kb + float64(cfg.Unit) - 1) / float64(cfg.Unit))
		}
		total += kb * sp.price
		remaining[sp.user] -= kb
		slotUsed[sp.slot] += unitsGranted
		if wantPlan {
			plan[sp.slot][sp.user] += unitsGranted
		}
	}
	feasible := true
	for _, r := range remaining {
		if r > 0 {
			feasible = false
			break
		}
	}
	return units.MJ(total), feasible, plan
}
