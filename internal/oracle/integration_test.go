package oracle

import (
	"math"
	"testing"

	"jointstream/internal/cell"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// Replaying the omniscient plan through the real simulator must reproduce
// the upper bound's transmission energy (the physics agree), while its
// playback-oblivious pacing shows up as heavy rebuffering compared to the
// buffer-aware schedulers — the reason the plan is a bound, not a policy.
func TestPlannedScheduleThroughSimulator(t *testing.T) {
	cellCfg := cell.PaperConfig()
	cellCfg.Capacity = 4000
	cellCfg.MaxSlots = 400
	cellCfg.RunFullHorizon = true

	wlCfg := workload.PaperDefaults(4)
	wlCfg.SizeMin = 8 * units.Megabyte
	wlCfg.SizeMax = 12 * units.Megabyte
	wlCfg.Signal.PeriodSlots = 48

	mkSessions := func() []*workload.Session {
		wl, err := workload.Generate(wlCfg, rng.New(31))
		if err != nil {
			t.Fatal(err)
		}
		return wl
	}

	plan, err := ComputePlan(Config{
		Tau:      cellCfg.Tau,
		Unit:     cellCfg.Unit,
		Capacity: cellCfg.Capacity,
		Horizon:  cellCfg.MaxSlots,
		Radio:    cellCfg.Radio,
	}, mkSessions())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Bounds.Feasible {
		t.Fatal("test premise: plan infeasible")
	}

	planned, err := sched.NewPlanned(plan.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cell.New(cellCfg, mkSessions(), planned)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}

	// 1. Everything delivered.
	for i, u := range res.Users {
		if u.CompletionSlot < 0 && u.DeliveredKB == 0 {
			t.Errorf("user %d received nothing", i)
		}
	}
	// 2. Transmission energy matches the bound (within the one-unit
	// rounding of final shards).
	var trans units.MJ
	for _, u := range res.Users {
		trans += u.TransEnergy
	}
	diff := math.Abs(float64(trans - plan.Bounds.UpperMJ))
	if diff > 0.02*float64(plan.Bounds.UpperMJ) {
		t.Errorf("simulated plan energy %v differs from bound %v", trans, plan.Bounds.UpperMJ)
	}
	// 3. The clairvoyant energy plan ignores buffers: it cannot match the
	// stall-minimizing RTMA on rebuffering (whether it beats EMA is
	// scenario-dependent — front-loading cheap slots sometimes feeds
	// buffers too).
	rt, err := sched.NewRTMA(sched.RTMAConfig{Budget: 2000, Radio: cellCfg.Radio, RRC: cellCfg.RRC})
	if err != nil {
		t.Fatal(err)
	}
	sim2, err := cell.New(cellCfg, mkSessions(), rt)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sim2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRebuffer() <= res2.TotalRebuffer() {
		t.Errorf("planned rebuffer %v not above RTMA %v — plan unexpectedly playback-optimal",
			res.TotalRebuffer(), res2.TotalRebuffer())
	}
}

// The compiled link table and the analytic signal-trace path evaluate
// the same floating-point expressions (the table's LUT is used only when
// provably exact), so replaying the table through Config.Link must
// reproduce every bound bitwise — not merely within tolerance.
func TestTableReplayMatchesAnalytic(t *testing.T) {
	cellCfg := cell.PaperConfig()
	cellCfg.Capacity = 4000
	cellCfg.MaxSlots = 400

	wlCfg := workload.PaperDefaults(4)
	wlCfg.SizeMin = 8 * units.Megabyte
	wlCfg.SizeMax = 12 * units.Megabyte
	wl, err := workload.Generate(wlCfg, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	lt, err := cell.CompileLink(cellCfg, wl)
	if err != nil {
		t.Fatal(err)
	}

	oCfg := Config{
		Tau:         cellCfg.Tau,
		Unit:        cellCfg.Unit,
		Capacity:    cellCfg.Capacity,
		Horizon:     cellCfg.MaxSlots,
		Radio:       cellCfg.Radio,
		RRC:         cellCfg.RRC,
		AccountTail: true,
	}
	analytic, err := Compute(oCfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	oCfg.Link = lt
	replayed, err := Compute(oCfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if analytic != replayed {
		t.Errorf("table replay diverged from analytic bounds:\n analytic %+v\n replayed %+v", analytic, replayed)
	}
}

// With AccountTail the upper bound prices the omniscient plan's idle
// gaps through the same Eq. (4) increments the engine commits, so the
// bound becomes comparable to the simulator's *total* energy — the
// replayed plan's trans+tail must land within the same few-percent shard
// rounding as the transmission-only comparison above, and the full
// dominance bracket must hold around it.
func TestTailAccountedUpperComparableToSimulator(t *testing.T) {
	cellCfg := cell.PaperConfig()
	cellCfg.Capacity = 4000
	cellCfg.MaxSlots = 400
	cellCfg.RunFullHorizon = true

	wlCfg := workload.PaperDefaults(4)
	wlCfg.SizeMin = 8 * units.Megabyte
	wlCfg.SizeMax = 12 * units.Megabyte
	wlCfg.Signal.PeriodSlots = 48

	mkSessions := func() []*workload.Session {
		wl, err := workload.Generate(wlCfg, rng.New(31))
		if err != nil {
			t.Fatal(err)
		}
		return wl
	}

	oCfg := Config{
		Tau:         cellCfg.Tau,
		Unit:        cellCfg.Unit,
		Capacity:    cellCfg.Capacity,
		Horizon:     cellCfg.MaxSlots,
		Radio:       cellCfg.Radio,
		RRC:         cellCfg.RRC,
		AccountTail: true,
	}
	plan, err := ComputePlan(oCfg, mkSessions())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Bounds.Feasible {
		t.Fatal("test premise: plan infeasible")
	}
	if plan.Bounds.TailMJ <= 0 {
		t.Fatal("test premise: omniscient plan has no idle gaps to charge")
	}

	planned, err := sched.NewPlanned(plan.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cell.New(cellCfg, mkSessions(), planned)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}

	var trans, total units.MJ
	for _, u := range res.Users {
		trans += u.TransEnergy
		total += u.TransEnergy + u.TailEnergy
	}
	diff := math.Abs(float64(total - plan.Bounds.UpperMJ))
	if diff > 0.02*float64(plan.Bounds.UpperMJ) {
		t.Errorf("simulated plan total energy %v differs from tail-accounted bound %v (tail %v)",
			total, plan.Bounds.UpperMJ, plan.Bounds.TailMJ)
	}
	// Dominance bracket around the simulated run.
	if plan.Bounds.LowerMJ > trans+units.MJ(diff) {
		t.Errorf("lower bound %v exceeds simulated transmission energy %v", plan.Bounds.LowerMJ, trans)
	}
	if total > plan.Bounds.WorstMJ {
		t.Errorf("simulated total %v exceeds the adversarial certificate %v", total, plan.Bounds.WorstMJ)
	}
}
