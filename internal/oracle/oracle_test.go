package oracle

import (
	"math"
	"testing"

	"jointstream/internal/radio"
	"jointstream/internal/rng"
	"jointstream/internal/rrc"
	"jointstream/internal/signal"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

func testConfig(horizon int) Config {
	return Config{
		Tau:      1,
		Unit:     100,
		Capacity: 5000,
		Horizon:  horizon,
		Radio:    radio.Paper3G(),
	}
}

func constSession(id int, size units.KB, sig units.DBm) *workload.Session {
	return &workload.Session{
		ID:       id,
		Size:     size,
		BaseRate: 400,
		Signal:   signal.Constant(sig, signal.DefaultBounds),
	}
}

func TestValidate(t *testing.T) {
	if err := testConfig(100).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Tau: 0, Unit: 100, Capacity: 1, Horizon: 1, Radio: radio.Paper3G()},
		{Tau: 1, Unit: 0, Capacity: 1, Horizon: 1, Radio: radio.Paper3G()},
		{Tau: 1, Unit: 100, Capacity: 0, Horizon: 1, Radio: radio.Paper3G()},
		{Tau: 1, Unit: 100, Capacity: 1, Horizon: 0, Radio: radio.Paper3G()},
		{Tau: 1, Unit: 100, Capacity: 1, Horizon: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Compute(testConfig(10), nil); err == nil {
		t.Error("empty sessions accepted")
	}
}

func TestConstantChannelExactEnergy(t *testing.T) {
	// One user on a constant channel: both bounds equal size × P(sig).
	cfg := testConfig(100)
	s := constSession(0, 2000, -60)
	b, err := Compute(cfg, []*workload.Session{s})
	if err != nil {
		t.Fatal(err)
	}
	perKB := float64(radio.Paper3G().Power.EnergyPerKB(-60))
	want := 2000 * perKB
	if math.Abs(float64(b.LowerMJ)-want) > 1e-6 {
		t.Errorf("lower = %v, want %v", b.LowerMJ, want)
	}
	if math.Abs(float64(b.UpperMJ)-want) > 1e-6 {
		t.Errorf("upper = %v, want %v", b.UpperMJ, want)
	}
	if !b.Feasible {
		t.Error("trivially feasible instance reported infeasible")
	}
}

func TestLowerNeverExceedsUpper(t *testing.T) {
	cfg := testConfig(400)
	wl, err := workload.Generate(workload.PaperDefaults(6), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range wl {
		s.Size = 30 * units.Megabyte
	}
	b, err := Compute(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if b.LowerMJ > b.UpperMJ+1e-6 {
		t.Errorf("lower %v exceeds upper %v", b.LowerMJ, b.UpperMJ)
	}
	if !b.Feasible {
		t.Error("expected feasible at this load")
	}
}

func TestCheapSlotsPreferred(t *testing.T) {
	// A two-phase channel: strong for the first 10 slots, weak after.
	// With a horizon that includes both phases and a small demand, the
	// bound must price everything at the strong phase.
	vals := make([]units.DBm, 40)
	for i := range vals {
		if i < 10 {
			vals[i] = -50
		} else {
			vals[i] = -110
		}
	}
	tr, err := signal.FromSlice(vals)
	if err != nil {
		t.Fatal(err)
	}
	s := &workload.Session{ID: 0, Size: 4000, BaseRate: 400, Signal: tr}
	b, err := Compute(testConfig(40), []*workload.Session{s})
	if err != nil {
		t.Fatal(err)
	}
	cheap := float64(radio.Paper3G().Power.EnergyPerKB(-50))
	want := 4000 * cheap
	if math.Abs(float64(b.LowerMJ)-want) > 1e-6 {
		t.Errorf("lower = %v, want all-cheap %v", b.LowerMJ, want)
	}
}

func TestCapacityCouplingRaisesUpper(t *testing.T) {
	// Two users share one brief cheap window that fits only one of them:
	// the relaxed lower bound prices both cheap; the feasible upper bound
	// must pay the expensive price for one.
	vals := make([]units.DBm, 20)
	for i := range vals {
		if i == 0 {
			vals[i] = -50
		} else {
			vals[i] = -110
		}
	}
	tr, err := signal.FromSlice(vals)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(20)
	cfg.Capacity = 2000 // 20 units per slot; each user wants 20 units
	mk := func(id int) *workload.Session {
		return &workload.Session{ID: id, Size: 2000, BaseRate: 400, Signal: tr}
	}
	b, err := Compute(cfg, []*workload.Session{mk(0), mk(1)})
	if err != nil {
		t.Fatal(err)
	}
	if b.UpperMJ <= b.LowerMJ {
		t.Errorf("expected capacity coupling to open a gap: lower %v upper %v", b.LowerMJ, b.UpperMJ)
	}
}

func TestInfeasibleHorizon(t *testing.T) {
	// Demand that cannot fit the horizon even uncapacitated errors on the
	// lower bound.
	s := constSession(0, 1e9, -110) // ~329 KB/s for 10 slots << 1 TB
	if _, err := Compute(testConfig(10), []*workload.Session{s}); err == nil {
		t.Error("impossible demand accepted")
	}
}

func TestUpperBoundInfeasibleFlag(t *testing.T) {
	// Feasible per-user (lower bound fine) but capacity-starved overall:
	// two users, each needs the whole capacity of every slot.
	cfg := testConfig(10)
	cfg.Capacity = 400              // 4 units/slot
	a := constSession(0, 4000, -60) // needs 40 units = all 10 slots alone
	b2 := constSession(1, 4000, -60)
	b, err := Compute(cfg, []*workload.Session{a, b2})
	if err != nil {
		t.Fatal(err)
	}
	if b.Feasible {
		t.Error("capacity-starved instance reported feasible")
	}
}

func TestStartSlotRespected(t *testing.T) {
	// A user starting mid-horizon cannot use earlier cheap slots.
	vals := make([]units.DBm, 20)
	for i := range vals {
		if i < 10 {
			vals[i] = -50
		} else {
			vals[i] = -110
		}
	}
	tr, _ := signal.FromSlice(vals)
	s := &workload.Session{ID: 0, Size: 1000, BaseRate: 400, Signal: tr, StartSlot: 10}
	b, err := Compute(testConfig(20), []*workload.Session{s})
	if err != nil {
		t.Fatal(err)
	}
	expensive := float64(radio.Paper3G().Power.EnergyPerKB(-110))
	want := 1000 * expensive
	if math.Abs(float64(b.LowerMJ)-want) > 1e-6 {
		t.Errorf("lower = %v, want all-expensive %v (start slot ignored?)", b.LowerMJ, want)
	}
}

func TestComputePlanMatchesBounds(t *testing.T) {
	cfg := testConfig(200)
	wl, err := workload.Generate(workload.PaperDefaults(4), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range wl {
		s.Size = 10 * units.Megabyte
	}
	plan, err := ComputePlan(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bounds != b {
		t.Errorf("plan bounds %+v != compute bounds %+v", plan.Bounds, b)
	}
	if len(plan.Alloc) != cfg.Horizon {
		t.Fatalf("plan horizon %d, want %d", len(plan.Alloc), cfg.Horizon)
	}
	// The plan must deliver each user's full demand and respect per-slot
	// capacity.
	capUnits := int(float64(cfg.Capacity) / float64(cfg.Unit))
	delivered := make([]float64, len(wl))
	for n, row := range plan.Alloc {
		total := 0
		for u, a := range row {
			if a < 0 {
				t.Fatalf("negative grant at slot %d", n)
			}
			total += a
			delivered[u] += float64(a) * float64(cfg.Unit)
		}
		if total > capUnits {
			t.Fatalf("slot %d over capacity: %d > %d", n, total, capUnits)
		}
	}
	for u, d := range delivered {
		// The last shard may overshoot by less than one unit.
		if d < float64(wl[u].Size) {
			t.Errorf("user %d plan delivers %v of %v KB", u, d, float64(wl[u].Size))
		}
	}
}

// TestTailAccountingModes pins the two tail modes of the upper bound
// against each other on a scenario whose omniscient plan provably idles
// exactly one slot: a single user whose channel is cheap at slots 0 and
// 2 only, with demand sized to exactly those two slots' link capacity.
// The legacy mode must ignore the idle slot; the accounting mode must
// charge it the closed-form Eq. (4) increment Pd·τ (τ < T1) plus the
// full post-transfer drain MaxTailEnergy (the horizon extends well past
// T1+T2, as the engine's playback lag does), and the lower bound must
// be identical in both modes.
func TestTailAccountingModes(t *testing.T) {
	vals := make([]units.DBm, 20)
	for i := range vals {
		vals[i] = -110
	}
	vals[0], vals[2] = -50, -50
	tr, err := signal.FromSlice(vals)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(20)
	cfg.Capacity = 50000 // never binding: the per-slot link cap decides
	prof := rrc.Paper3G()

	link := cfg.Radio.Throughput.Throughput(-50)
	mu := int(float64(link) * float64(cfg.Tau) / float64(cfg.Unit))
	if mu < 1 {
		t.Fatalf("test premise: cheap slot carries %d units", mu)
	}
	s := &workload.Session{
		ID: 0, BaseRate: 400, Signal: tr,
		Size: units.KB(float64(2*mu) * float64(cfg.Unit)),
	}

	ignore, err := Compute(cfg, []*workload.Session{s})
	if err != nil {
		t.Fatal(err)
	}
	acctCfg := cfg
	acctCfg.RRC = prof
	acctCfg.AccountTail = true
	account, err := Compute(acctCfg, []*workload.Session{s})
	if err != nil {
		t.Fatal(err)
	}

	if ignore.TailMJ != 0 {
		t.Errorf("legacy mode reports tail %v, want 0", ignore.TailMJ)
	}
	// One mid-gap idle slot plus the complete trailing drain.
	wantTail := float64(prof.Pd.Energy(cfg.Tau)) + float64(prof.MaxTailEnergy())
	if math.Abs(float64(account.TailMJ)-wantTail) > 1e-9 {
		t.Errorf("accounted tail = %v, want idle slot + drain = %v", account.TailMJ, wantTail)
	}
	if got, want := float64(account.UpperMJ), float64(ignore.UpperMJ)+wantTail; math.Abs(got-want) > 1e-9 {
		t.Errorf("accounted upper = %v, want transmission %v + tail %v", got, ignore.UpperMJ, wantTail)
	}
	if account.LowerMJ != ignore.LowerMJ {
		t.Errorf("lower bound moved with tail mode: %v vs %v", account.LowerMJ, ignore.LowerMJ)
	}
}

// TestWorstBoundDominates asserts the dominance certificate closes over
// the optimistic bracket on a random workload, in both tail modes.
func TestWorstBoundDominates(t *testing.T) {
	cfg := testConfig(400)
	wl, err := workload.Generate(workload.PaperDefaults(6), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range wl {
		s.Size = 20 * units.Megabyte
	}
	for _, accountTail := range []bool{false, true} {
		c := cfg
		if accountTail {
			c.RRC = rrc.Paper3G()
			c.AccountTail = true
		}
		b, err := Compute(c, wl)
		if err != nil {
			t.Fatal(err)
		}
		if b.WorstMJ < b.UpperMJ {
			t.Errorf("accountTail=%v: worst %v below upper %v", accountTail, b.WorstMJ, b.UpperMJ)
		}
		if b.WorstMJ < b.LowerMJ {
			t.Errorf("accountTail=%v: worst %v below lower %v", accountTail, b.WorstMJ, b.LowerMJ)
		}
	}
}

// TestLowerBoundDelivered checks the per-run certificate degenerates
// correctly: full delivery reproduces LowerMJ, partial delivery costs
// no more, zero delivery costs nothing, and shape mismatches error.
func TestLowerBoundDelivered(t *testing.T) {
	cfg := testConfig(400)
	wl, err := workload.Generate(workload.PaperDefaults(4), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range wl {
		s.Size = 10 * units.Megabyte
	}
	b, err := Compute(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}

	full := make([]units.KB, len(wl))
	half := make([]units.KB, len(wl))
	zero := make([]units.KB, len(wl))
	for i, s := range wl {
		full[i] = s.Size
		half[i] = s.Size / 2
	}
	gotFull, err := LowerBoundDelivered(cfg, wl, full)
	if err != nil {
		t.Fatal(err)
	}
	if gotFull != b.LowerMJ {
		t.Errorf("full delivery bound %v != LowerMJ %v", gotFull, b.LowerMJ)
	}
	gotHalf, err := LowerBoundDelivered(cfg, wl, half)
	if err != nil {
		t.Fatal(err)
	}
	if gotHalf <= 0 || gotHalf >= gotFull {
		t.Errorf("half delivery bound %v outside (0, %v)", gotHalf, gotFull)
	}
	gotZero, err := LowerBoundDelivered(cfg, wl, zero)
	if err != nil {
		t.Fatal(err)
	}
	if gotZero != 0 {
		t.Errorf("zero delivery bound %v, want 0", gotZero)
	}
	if _, err := LowerBoundDelivered(cfg, wl, full[:1]); err == nil {
		t.Error("mismatched delivered length accepted")
	}
	half[0] = -1
	if _, err := LowerBoundDelivered(cfg, wl, half); err == nil {
		t.Error("negative delivered accepted")
	}
}
