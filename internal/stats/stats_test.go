package stats

import (
	"math"
	"testing"
	"testing/quick"

	"jointstream/internal/rng"
)

func TestDescribe(t *testing.T) {
	s, err := Describe([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("sample = %+v", s)
	}
	// Unbiased variance: SS = 32, n-1 = 7.
	if math.Abs(s.Var-32.0/7) > 1e-12 {
		t.Errorf("Var = %v, want %v", s.Var, 32.0/7)
	}
	wantSE := math.Sqrt(32.0 / 7 / 8)
	if math.Abs(s.StdErr()-wantSE) > 1e-12 {
		t.Errorf("StdErr = %v, want %v", s.StdErr(), wantSE)
	}
	if math.Abs(s.CI95()-1.96*wantSE) > 1e-12 {
		t.Errorf("CI95 = %v", s.CI95())
	}
}

func TestDescribeValidation(t *testing.T) {
	if _, err := Describe(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := Describe([]float64{1}); err == nil {
		t.Error("single observation accepted")
	}
	if _, err := Describe([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := Describe([]float64{1, math.Inf(1)}); err == nil {
		t.Error("Inf accepted")
	}
}

func TestStudentTailKnownValues(t *testing.T) {
	// Compare against standard t-table values.
	cases := []struct {
		t, df, want float64
	}{
		{0, 10, 0.5},
		{1.812, 10, 0.05},  // one-sided 5% critical value at df=10
		{2.228, 10, 0.025}, // two-sided 5% critical value at df=10
		{1.96, 1e6, 0.025}, // normal limit
	}
	for _, c := range cases {
		got := studentTail(c.t, c.df)
		if math.Abs(got-c.want) > 0.002 {
			t.Errorf("studentTail(%v, %v) = %v, want %v", c.t, c.df, got, c.want)
		}
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Error("edge values wrong")
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	if got := regIncBeta(2.5, 4, 0.3) + regIncBeta(4, 2.5, 0.7); math.Abs(got-1) > 1e-10 {
		t.Errorf("symmetry violated: %v", got)
	}
}

func TestWelchDistinguishesClearDifference(t *testing.T) {
	a, _ := Describe([]float64{10.1, 10.2, 9.9, 10.0, 10.1})
	b, _ := Describe([]float64{12.0, 12.1, 11.9, 12.2, 12.0})
	res, err := Welch(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant {
		t.Errorf("clear difference not significant: %+v", res)
	}
	if res.T >= 0 {
		t.Errorf("T = %v, want negative (a < b)", res.T)
	}
	if res.P > 1e-6 {
		t.Errorf("P = %v, want tiny", res.P)
	}
}

func TestWelchSameDistribution(t *testing.T) {
	src := rng.New(7)
	draw := func() []float64 {
		xs := make([]float64, 10)
		for i := range xs {
			xs[i] = src.Gaussian(50, 5)
		}
		return xs
	}
	falsePositives := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		a, _ := Describe(draw())
		b, _ := Describe(draw())
		res, err := Welch(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant {
			falsePositives++
		}
	}
	// Expect ~5% type-I errors; allow generous slack.
	if falsePositives > 15 {
		t.Errorf("%d/%d false positives at alpha=0.05", falsePositives, trials)
	}
}

func TestWelchConstantSamples(t *testing.T) {
	a, _ := Describe([]float64{5, 5, 5})
	b, _ := Describe([]float64{5, 5, 5})
	res, err := Welch(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant || res.P != 1 {
		t.Errorf("identical constants flagged: %+v", res)
	}
	c, _ := Describe([]float64{6, 6, 6})
	res, err = Welch(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant || res.P != 0 {
		t.Errorf("deterministic difference not flagged: %+v", res)
	}
}

func TestWelchValidation(t *testing.T) {
	good, _ := Describe([]float64{1, 2, 3})
	if _, err := Welch(good, Sample{N: 1}); err == nil {
		t.Error("tiny sample accepted")
	}
}

// Property: the p-value is always in [0,1] and symmetric in the sample
// order.
func TestWelchSymmetryProperty(t *testing.T) {
	f := func(seedsA, seedsB [4]uint8) bool {
		xa := make([]float64, 4)
		xb := make([]float64, 4)
		for i := 0; i < 4; i++ {
			xa[i] = float64(seedsA[i]%100) + float64(i)*0.01
			xb[i] = float64(seedsB[i]%100) + float64(i)*0.013
		}
		a, err := Describe(xa)
		if err != nil {
			return false
		}
		b, err := Describe(xb)
		if err != nil {
			return false
		}
		ab, err := Welch(a, b)
		if err != nil {
			return false
		}
		ba, err := Welch(b, a)
		if err != nil {
			return false
		}
		if ab.P < 0 || ab.P > 1 {
			return false
		}
		return math.Abs(ab.P-ba.P) < 1e-9 && math.Abs(ab.T+ba.T) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
