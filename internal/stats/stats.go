// Package stats provides the small amount of inferential statistics the
// multi-seed robustness analysis needs: sample moments, Welch's unequal-
// variance t-test, and normal-approximation confidence intervals. It lets
// the harness say not just "EMA used less energy on 5 seeds" but whether
// that difference is distinguishable from seed noise.
package stats

import (
	"fmt"
	"math"
)

// Sample summarizes one group of observations.
type Sample struct {
	N    int
	Mean float64
	// Var is the unbiased (n−1) sample variance.
	Var float64
}

// Describe computes a Sample; it requires at least two observations so
// the variance is defined.
func Describe(xs []float64) (Sample, error) {
	if len(xs) < 2 {
		return Sample{}, fmt.Errorf("stats: need at least 2 observations, got %d", len(xs))
	}
	var mean float64
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Sample{}, fmt.Errorf("stats: non-finite observation %v", x)
		}
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return Sample{N: len(xs), Mean: mean, Var: ss / float64(len(xs)-1)}, nil
}

// StdErr returns the standard error of the mean.
func (s Sample) StdErr() float64 {
	return math.Sqrt(s.Var / float64(s.N))
}

// CI95 returns the normal-approximation 95% confidence half-width of the
// mean (seed counts are small, so this understates slightly versus a t
// interval; the harness treats it as indicative, not inferential).
func (s Sample) CI95() float64 { return 1.96 * s.StdErr() }

// TTest is the result of Welch's two-sample test.
type TTest struct {
	// T is the test statistic (a.Mean − b.Mean over the pooled stderr).
	T float64
	// DF is the Welch–Satterthwaite degrees of freedom.
	DF float64
	// P is the two-sided p-value.
	P float64
	// Significant reports P < 0.05.
	Significant bool
}

// Welch runs Welch's unequal-variance t-test on two samples.
func Welch(a, b Sample) (TTest, error) {
	if a.N < 2 || b.N < 2 {
		return TTest{}, fmt.Errorf("stats: samples too small (%d, %d)", a.N, b.N)
	}
	va := a.Var / float64(a.N)
	vb := b.Var / float64(b.N)
	se := math.Sqrt(va + vb)
	if se == 0 {
		// Identical constants: no evidence of difference unless the means
		// differ exactly, in which case the difference is deterministic.
		if a.Mean == b.Mean {
			return TTest{T: 0, DF: float64(a.N + b.N - 2), P: 1}, nil
		}
		return TTest{T: math.Inf(sign(a.Mean - b.Mean)), DF: float64(a.N + b.N - 2), P: 0, Significant: true}, nil
	}
	t := (a.Mean - b.Mean) / se
	df := (va + vb) * (va + vb) /
		(va*va/float64(a.N-1) + vb*vb/float64(b.N-1))
	p := 2 * studentTail(math.Abs(t), df)
	return TTest{T: t, DF: df, P: p, Significant: p < 0.05}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTail returns P(T > t) for Student's t with df degrees of freedom,
// via the regularized incomplete beta function:
// P(T > t) = ½ I_{df/(df+t²)}(df/2, ½).
func studentTail(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
