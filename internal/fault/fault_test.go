package fault

import (
	"io"
	"reflect"
	"testing"
	"time"

	"jointstream/internal/deploy"
	"jointstream/internal/gateway"
	"jointstream/internal/radio"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
)

func gwConfig() gateway.Config {
	return gateway.Config{
		Tau:      1,
		Unit:     100,
		Capacity: 5000,
		Radio:    radio.Paper3G(),
		QueueCap: 10000,
	}
}

// runPlan drives one gateway run with every user wrapped by the plan and
// returns the per-user stats and the gateway diagnostics.
func runPlan(t *testing.T, plan Plan, users int) ([]gateway.Stats, gateway.Diag) {
	t.Helper()
	g, err := gateway.New(gwConfig(), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < users; i++ {
		ep, err := gateway.NewLocalEndpoint(signal.Constant(-60, signal.DefaultBounds), 400, false)
		if err != nil {
			t.Fatal(err)
		}
		// Long sessions (many Deliver/Report calls) so probabilistic
		// faults actually fire.
		src, err := gateway.NewPatternSource(30000)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Attach(plan.WrapEndpoint(i, ep), plan.WrapSource(i, src)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500 && !g.AllDone(); i++ {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
	}
	stats := make([]gateway.Stats, users)
	for i := range stats {
		st, err := g.StatsFor(i)
		if err != nil {
			t.Fatal(err)
		}
		stats[i] = st
	}
	return stats, g.Diagnostics()
}

func TestZeroPlanReturnsInputsUnchanged(t *testing.T) {
	var plan Plan
	if !plan.Zero() {
		t.Fatal("zero value not Zero()")
	}
	ep, _ := gateway.NewLocalEndpoint(signal.Constant(-60, signal.DefaultBounds), 400, false)
	src, _ := gateway.NewPatternSource(1000)
	if got := plan.WrapEndpoint(0, ep); got != gateway.Endpoint(ep) {
		t.Error("zero plan wrapped the endpoint")
	}
	if got := plan.WrapSource(0, src); got != gateway.Source(src) {
		t.Error("zero plan wrapped the source")
	}
	if plan.SiteOutages() != nil {
		t.Error("zero plan produced site outages")
	}
}

// TestZeroPlanMatchesBaseline: a run through zero-plan wrappers must be
// byte-identical to the unwrapped baseline.
func TestZeroPlanMatchesBaseline(t *testing.T) {
	base, baseDiag := runPlan(t, Plan{Seed: 1}, 3) // zero faults, wrappers elided
	var zero Plan
	got, gotDiag := runPlan(t, zero, 3)
	if !reflect.DeepEqual(base, got) || baseDiag != gotDiag {
		t.Errorf("zero plan diverged from baseline:\nbase %+v %+v\ngot  %+v %+v", base, baseDiag, got, gotDiag)
	}
}

// TestSeedDeterminism: the same seed and plan over the same traffic must
// reproduce stats and diagnostics exactly; a different seed must inject a
// different fault sequence.
func TestSeedDeterminism(t *testing.T) {
	plan := Plan{
		Seed: 42,
		Endpoint: EndpointPlan{
			DropProb:       0.2,
			ReportLossProb: 0.1,
			FlapProb:       0.05,
			FlapSlots:      2,
		},
		Source: SourcePlan{SlowReadProb: 0.2, SlowReadMax: 50_000},
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	a, aDiag := runPlan(t, plan, 3)
	b, bDiag := runPlan(t, plan, 3)
	if !reflect.DeepEqual(a, b) || aDiag != bDiag {
		t.Errorf("same seed diverged:\nrun1 %+v %+v\nrun2 %+v %+v", a, aDiag, b, bDiag)
	}
	if aDiag.TransientErrors == 0 && aDiag.StaleSlots == 0 {
		t.Error("plan injected no observable faults; determinism test is vacuous")
	}
	other := plan
	other.Seed = 43
	_, cDiag := runPlan(t, other, 3)
	if aDiag == cDiag {
		t.Error("different seeds produced identical diagnostics (suspicious)")
	}
}

// TestStallInjection: injected stalls longer than the slot deadline must
// surface as missed deadlines under the async delivery path, and the run
// must still complete.
func TestStallInjection(t *testing.T) {
	plan := Plan{
		Seed:     7,
		Endpoint: EndpointPlan{StallProb: 0.9, StallFor: 50 * time.Millisecond},
	}
	cfg := gwConfig()
	// Small grants: the session spans several deliveries, so at 0.9 at
	// least one stall fires for any seed with overwhelming probability.
	cfg.Capacity = 500
	cfg.Policy = gateway.Policy{
		AsyncDelivery: true,
		SlotDeadline:  5 * time.Millisecond,
		// Stalls eventually succeed; keep the breaker from detaching the
		// user mid-test.
		BreakerTrips: -1,
	}
	g, err := gateway.New(cfg, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ep, _ := gateway.NewLocalEndpoint(signal.Constant(-60, signal.DefaultBounds), 400, false)
	src, _ := gateway.NewPatternSource(3000)
	if _, err := g.Attach(plan.WrapEndpoint(0, ep), src); err != nil {
		t.Fatal(err)
	}
	// Stalls resolve on the wall clock, so bound the loop by time, not
	// iterations.
	for start := time.Now(); !g.AllDone() && time.Since(start) < 30*time.Second; {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !g.AllDone() {
		t.Fatal("stalled run never completed")
	}
	if d := g.Diagnostics(); d.MissedDeadlines == 0 {
		t.Error("no missed deadlines despite injected stalls")
	}
	if got := ep.ReceivedBytes(); got != 3_000_000 {
		t.Errorf("received %d bytes, want 3000000 (stalls must not lose data)", got)
	}
}

// TestEOFEarlyTruncatesStream: an origin that ends early must yield a
// complete (short) session, not a wedged one.
func TestEOFEarlyTruncatesStream(t *testing.T) {
	plan := Plan{Seed: 3, Source: SourcePlan{EOFEarlyAfter: 1_200_000}}
	g, err := gateway.New(gwConfig(), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	ep, _ := gateway.NewLocalEndpoint(signal.Constant(-60, signal.DefaultBounds), 400, false)
	src, _ := gateway.NewPatternSource(3000)
	if _, err := g.Attach(ep, plan.WrapSource(0, src)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200 && !g.AllDone(); i++ {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !g.AllDone() {
		t.Fatal("truncated session never completed")
	}
	if got := ep.ReceivedBytes(); got != 1_200_000 {
		t.Errorf("received %d bytes, want exactly the truncation point 1200000", got)
	}
}

// TestSlowReadDelivery: slow reads stretch the session but every byte
// still arrives.
func TestSlowReadDelivery(t *testing.T) {
	plan := Plan{Seed: 9, Source: SourcePlan{SlowReadProb: 1, SlowReadMax: 10_000}}
	src, _ := gateway.NewPatternSource(100)
	wrapped := plan.WrapSource(0, src)
	var total int
	buf := make([]byte, 64_000)
	for {
		n, err := wrapped.Read(buf)
		if n > 10_000 {
			t.Fatalf("slow read returned %d bytes, cap is 10000", n)
		}
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != 100_000 {
		t.Errorf("read %d bytes total, want 100000", total)
	}
}

func TestSiteOutagesPassThrough(t *testing.T) {
	windows := []deploy.SiteOutage{{Site: 0, From: 5, To: 10}}
	plan := Plan{Seed: 1, Sites: windows}
	if plan.Zero() {
		t.Error("plan with site outages reported Zero")
	}
	if got := plan.SiteOutages(); !reflect.DeepEqual(got, windows) {
		t.Errorf("SiteOutages = %+v, want %+v", got, windows)
	}
}

func TestPlanValidate(t *testing.T) {
	bad := Plan{Endpoint: EndpointPlan{StallProb: 0.5}}
	if err := bad.Validate(); err == nil {
		t.Error("StallProb without StallFor accepted")
	}
	bad2 := Plan{Endpoint: EndpointPlan{DropProb: 1.5}}
	if err := bad2.Validate(); err == nil {
		t.Error("probability > 1 accepted")
	}
	good := Plan{Endpoint: EndpointPlan{StallProb: 0.1, StallFor: time.Millisecond}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}
