// Package fault is the seeded, deterministic fault-injection harness for
// the serving path. A Plan derives every fault decision from (Seed, user
// id, call index) through the repo's SplitMix64 generator, so the same
// plan over the same traffic produces the same fault sequence on every
// run — chaos experiments are replayable and their Results comparable
// byte for byte.
//
// Faults are composable wrappers: WrapEndpoint and WrapSource decorate a
// gateway.Endpoint / gateway.Source with the plan's endpoint and source
// faults, and SiteOutages maps the plan onto deploy.Config.Outages. A
// zero plan injects nothing and returns its inputs unchanged, so the
// wrapped system is bit-identical to the unwrapped baseline — the
// experiment harness relies on this to share one code path for faulted
// and clean arms.
package fault

import (
	"errors"
	"io"
	"sync"
	"time"

	"jointstream/internal/deploy"
	"jointstream/internal/gateway"
	"jointstream/internal/rng"
)

// Stream constants decorrelate the per-user fault streams (delivery,
// report, read) from one another and from the workload generators.
const (
	userMix    = 0xD1B54A32D192ED03
	deliverMix = 0x2545F4914F6CDD1D
	reportMix  = 0x9E3779B97F4A7C15
	readMix    = 0xBF58476D1CE4E5B9
)

// EndpointPlan schedules faults on the device side of the serving path.
type EndpointPlan struct {
	// StallProb is the per-delivery probability that Deliver blocks for
	// StallFor before succeeding — the slow-reader case the gateway's
	// slot deadline must absorb.
	StallProb float64
	// StallFor is the stall duration (required when StallProb > 0).
	StallFor time.Duration
	// DropProb is the per-delivery probability that Deliver fails with a
	// transient error (the frame is not absorbed; the gateway re-queues
	// and retries under backoff).
	DropProb float64
	// FlapProb is the per-report probability that the endpoint starts a
	// connectivity flap: this report and the next FlapSlots-1 are lost
	// (ok=false), then reports recover — exercising the stale-report
	// grace window and reattach path.
	FlapProb float64
	// FlapSlots is the length of one flap in reports (default 1).
	FlapSlots int
	// ReportLossProb is the per-report probability of one isolated lost
	// report.
	ReportLossProb float64
}

// zero reports whether the plan injects nothing.
func (p EndpointPlan) zero() bool {
	return p.StallProb <= 0 && p.DropProb <= 0 && p.FlapProb <= 0 && p.ReportLossProb <= 0
}

// SourcePlan schedules faults on the origin side of the serving path.
type SourcePlan struct {
	// SlowReadProb is the per-read probability that the origin returns at
	// most SlowReadMax bytes regardless of how much was asked for.
	SlowReadProb float64
	// SlowReadMax caps a slow read's size in bytes (default 1).
	SlowReadMax int
	// EOFEarlyAfter, when positive, truncates the stream: reads past this
	// many total bytes return io.EOF, simulating an origin that ends the
	// video early. The gateway treats the short stream as the whole
	// video.
	EOFEarlyAfter int64
}

// zero reports whether the plan injects nothing.
func (p SourcePlan) zero() bool {
	return p.SlowReadProb <= 0 && p.EOFEarlyAfter <= 0
}

// Plan is one deterministic fault schedule.
type Plan struct {
	// Seed roots every fault decision; two runs of the same plan over the
	// same traffic make identical decisions.
	Seed     uint64
	Endpoint EndpointPlan
	Source   SourcePlan
	// Sites lists deploy-level outage windows the plan imposes.
	Sites []deploy.SiteOutage
}

// Zero reports whether the plan injects no faults at all; a zero plan's
// wrappers return their inputs unchanged.
func (p Plan) Zero() bool {
	return p.Endpoint.zero() && p.Source.zero() && len(p.Sites) == 0
}

// Validate checks the plan.
func (p Plan) Validate() error {
	if p.Endpoint.StallProb > 0 && p.Endpoint.StallFor <= 0 {
		return errors.New("fault: StallProb set without StallFor")
	}
	for _, pr := range []float64{
		p.Endpoint.StallProb, p.Endpoint.DropProb, p.Endpoint.FlapProb,
		p.Endpoint.ReportLossProb, p.Source.SlowReadProb,
	} {
		if pr < 0 || pr > 1 {
			return errors.New("fault: probability outside [0, 1]")
		}
	}
	return nil
}

// draw returns the deterministic uniform [0,1) variate for call n of the
// given per-user stream: a pure function of its inputs, so wrappers need
// no generator state beyond a call counter.
func draw(seed, stream uint64, n int) float64 {
	return rng.New(seed ^ stream ^ uint64(n)*userMix).Float64()
}

// userSeed derives the per-user seed, decorrelating users from one
// another.
func (p Plan) userSeed(id int) uint64 {
	return p.Seed ^ uint64(id+1)*deliverMix
}

// WrapEndpoint decorates ep with the plan's endpoint faults for user id.
// A plan without endpoint faults returns ep itself.
func (p Plan) WrapEndpoint(id int, ep gateway.Endpoint) gateway.Endpoint {
	if p.Endpoint.zero() {
		return ep
	}
	flapSlots := p.Endpoint.FlapSlots
	if flapSlots <= 0 {
		flapSlots = 1
	}
	return &faultEndpoint{inner: ep, plan: p.Endpoint, flapSlots: flapSlots, seed: p.userSeed(id)}
}

// WrapSource decorates src with the plan's source faults for user id.
// A plan without source faults returns src itself.
func (p Plan) WrapSource(id int, src gateway.Source) gateway.Source {
	if p.Source.zero() {
		return src
	}
	max := p.Source.SlowReadMax
	if max <= 0 {
		max = 1
	}
	return &faultSource{inner: src, plan: p.Source, slowMax: max, seed: p.userSeed(id) ^ readMix}
}

// SiteOutages returns the plan's deploy-level outage windows (nil for a
// plan without site faults), ready for deploy.Config.Outages.
func (p Plan) SiteOutages() []deploy.SiteOutage { return p.Sites }

// faultEndpoint injects the EndpointPlan's faults around an inner
// endpoint. Decisions are functions of (seed, call index) only, so the
// fault sequence is independent of timing.
type faultEndpoint struct {
	inner     gateway.Endpoint
	plan      EndpointPlan
	flapSlots int
	seed      uint64

	mu       sync.Mutex
	deliverN int
	reportN  int
	flapLeft int
	// Diagnostics for tests and the chaos report.
	stalls, drops, lostReports int
}

// Report implements gateway.Endpoint.
func (e *faultEndpoint) Report() (gateway.Report, bool) {
	e.mu.Lock()
	n := e.reportN
	e.reportN++
	if e.flapLeft > 0 {
		e.flapLeft--
		e.lostReports++
		e.mu.Unlock()
		return gateway.Report{}, false
	}
	if e.plan.FlapProb > 0 && draw(e.seed, reportMix, n) < e.plan.FlapProb {
		e.flapLeft = e.flapSlots - 1
		e.lostReports++
		e.mu.Unlock()
		return gateway.Report{}, false
	}
	if e.plan.ReportLossProb > 0 && draw(e.seed, reportMix^userMix, n) < e.plan.ReportLossProb {
		e.lostReports++
		e.mu.Unlock()
		return gateway.Report{}, false
	}
	e.mu.Unlock()
	return e.inner.Report()
}

// Deliver implements gateway.Endpoint.
func (e *faultEndpoint) Deliver(p []byte) error {
	e.mu.Lock()
	n := e.deliverN
	e.deliverN++
	stall := e.plan.StallProb > 0 && draw(e.seed, deliverMix, n) < e.plan.StallProb
	drop := e.plan.DropProb > 0 && draw(e.seed, deliverMix^userMix, n) < e.plan.DropProb
	if stall {
		e.stalls++
	}
	if drop {
		e.drops++
	}
	e.mu.Unlock()
	if stall {
		time.Sleep(e.plan.StallFor)
	}
	if drop {
		return gateway.Transient(errors.New("fault: injected delivery drop"))
	}
	return e.inner.Deliver(p)
}

// Counts returns the faults injected so far (stalls, drops, lost
// reports).
func (e *faultEndpoint) Counts() (stalls, drops, lostReports int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stalls, e.drops, e.lostReports
}

// faultSource injects the SourcePlan's faults around an inner source.
type faultSource struct {
	inner   gateway.Source
	plan    SourcePlan
	slowMax int
	seed    uint64

	mu    sync.Mutex
	readN int
	total int64
}

// Read implements gateway.Source.
func (s *faultSource) Read(p []byte) (int, error) {
	s.mu.Lock()
	n := s.readN
	s.readN++
	if s.plan.EOFEarlyAfter > 0 && s.total >= s.plan.EOFEarlyAfter {
		s.mu.Unlock()
		return 0, io.EOF
	}
	limit := len(p)
	if s.plan.SlowReadProb > 0 && draw(s.seed, readMix, n) < s.plan.SlowReadProb && limit > s.slowMax {
		limit = s.slowMax
	}
	if s.plan.EOFEarlyAfter > 0 {
		if rem := s.plan.EOFEarlyAfter - s.total; int64(limit) > rem {
			limit = int(rem)
		}
	}
	s.mu.Unlock()

	got, err := s.inner.Read(p[:limit])

	s.mu.Lock()
	s.total += int64(got)
	early := s.plan.EOFEarlyAfter > 0 && s.total >= s.plan.EOFEarlyAfter
	s.mu.Unlock()
	if err == nil && early {
		err = io.EOF
	}
	return got, err
}
