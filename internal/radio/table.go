package radio

import (
	"fmt"
	"math"

	"jointstream/internal/units"
)

// Table is a compiled, quantized lookup table over a bounded dBm domain
// that evaluates both Eq. (24) curves — throughput v(sig) and per-byte
// energy P(sig) — without interface dispatch. The domain [Lo, Hi] is cut
// into equal-width bins; each bin carries affine coefficients for v, and
// the power curve is either replayed through the exact FittedPower
// formula (p = base + scale/v) or chord-approximated per bin.
//
// Exactness: when the model's curves are the paper's fits
// (LinearThroughput and FittedPower over a LinearThroughput), every bin
// stores the fit's own coefficients and Lookup evaluates the identical
// floating-point expressions, so the table is bitwise-identical to the
// analytic model at every signal value — not merely close. Exact()
// reports this. For other model shapes the bins hold sampled chords and
// the table is an approximation whose error shrinks with the bin count;
// the simulator's link-table compiler only consults a Table when Exact()
// holds, falling back to direct model calls otherwise, so quantization
// error can never leak into simulation results.
type Table struct {
	lo, hi float64 // domain bounds, dBm
	invW   float64 // bins / (hi - lo); 0 for a degenerate single-point domain
	exact  bool

	// Throughput: v = tSlope[k]·sig + tIntercept[k], floored at tFloor.
	tSlope, tIntercept []float64
	tFloor             float64

	// Power. fitted selects the exact FittedPower replay path: the power
	// model's own throughput curve w = vSlope[k]·sig + vIntercept[k]
	// (floored at vFloor), then p = pBase + pScale/w floored at zero.
	// Otherwise p = pSlope[k]·sig + pIntercept[k], floored at zero.
	fitted             bool
	pBase, pScale      float64
	vSlope, vIntercept []float64
	vFloor             float64
	pSlope, pIntercept []float64
}

// NewTable compiles m into a quantized table of `bins` equal-width bins
// over the signal domain [lo, hi]. Signals outside the domain are served
// by the edge bins' coefficients (exact for affine models, edge-chord
// extrapolation otherwise).
func NewTable(m Model, lo, hi units.DBm, bins int) (*Table, error) {
	if m.Throughput == nil || m.Power == nil {
		return nil, fmt.Errorf("radio: table needs a fully specified model")
	}
	if bins <= 0 {
		return nil, fmt.Errorf("radio: non-positive bin count %d", bins)
	}
	flo, fhi := float64(lo), float64(hi)
	if math.IsNaN(flo) || math.IsNaN(fhi) || fhi < flo {
		return nil, fmt.Errorf("radio: invalid table domain [%v, %v]", lo, hi)
	}
	t := &Table{
		lo: flo, hi: fhi,
		tSlope: make([]float64, bins), tIntercept: make([]float64, bins),
		tFloor: math.Inf(-1),
	}
	if fhi > flo {
		t.invW = float64(bins) / (fhi - flo)
	}

	thrExact := false
	if lin, ok := m.Throughput.(LinearThroughput); ok {
		thrExact = true
		t.tFloor = float64(lin.MinRate)
		for k := range t.tSlope {
			t.tSlope[k] = lin.Slope
			t.tIntercept[k] = lin.Intercept
		}
	} else {
		fillChords(t.tSlope, t.tIntercept, flo, fhi, bins, func(x float64) float64 {
			return float64(m.Throughput.Throughput(units.DBm(x)))
		})
	}

	powExact := false
	if fp, ok := m.Power.(FittedPower); ok {
		if lin, ok := fp.V.(LinearThroughput); ok {
			powExact = true
			t.fitted = true
			t.pBase, t.pScale = fp.Base, fp.Scale
			t.vFloor = float64(lin.MinRate)
			t.vSlope = make([]float64, bins)
			t.vIntercept = make([]float64, bins)
			for k := range t.vSlope {
				t.vSlope[k] = lin.Slope
				t.vIntercept[k] = lin.Intercept
			}
		}
	}
	if !powExact {
		t.pSlope = make([]float64, bins)
		t.pIntercept = make([]float64, bins)
		fillChords(t.pSlope, t.pIntercept, flo, fhi, bins, func(x float64) float64 {
			return float64(m.Power.EnergyPerKB(units.DBm(x)))
		})
	}
	t.exact = thrExact && powExact
	return t, nil
}

// fillChords stores per-bin chord coefficients: the affine interpolant of
// f between the bin's edges. A degenerate domain collapses to a constant.
func fillChords(slope, intercept []float64, lo, hi float64, bins int, f func(float64) float64) {
	if hi <= lo {
		c := f(lo)
		for k := range slope {
			slope[k], intercept[k] = 0, c
		}
		return
	}
	w := (hi - lo) / float64(bins)
	for k := range slope {
		x0 := lo + float64(k)*w
		x1 := x0 + w
		if k == bins-1 {
			x1 = hi // avoid accumulation drift past the domain edge
		}
		y0, y1 := f(x0), f(x1)
		s := (y1 - y0) / (x1 - x0)
		slope[k] = s
		intercept[k] = y0 - s*x0
	}
}

// Exact reports whether Lookup is bitwise-identical to the source model
// (true for the paper's LinearThroughput + FittedPower fits).
func (t *Table) Exact() bool { return t.exact }

// Bins returns the quantizer's bin count.
func (t *Table) Bins() int { return len(t.tSlope) }

// Domain returns the dBm range the table was compiled over.
func (t *Table) Domain() (lo, hi units.DBm) { return units.DBm(t.lo), units.DBm(t.hi) }

// Bin returns the quantized bin index for sig, clamped to the table.
// NaN maps to bin 0 so a corrupted signal can never index out of range.
// The bounds are compared before the float→int conversion because
// converting an out-of-range float64 (notably ±Inf) to int is
// implementation-specific in Go.
func (t *Table) Bin(sig units.DBm) int {
	x := float64(sig)
	if math.IsNaN(x) || x <= t.lo {
		return 0
	}
	if x >= t.hi {
		return len(t.tSlope) - 1
	}
	k := int((x - t.lo) * t.invW)
	if k >= len(t.tSlope) { // x infinitesimally below hi can round up
		return len(t.tSlope) - 1
	}
	return k
}

// Lookup evaluates both curves at sig through the quantized bins.
func (t *Table) Lookup(sig units.DBm) (units.KBps, units.MJ) {
	x := float64(sig)
	k := t.Bin(sig)
	v := t.tSlope[k]*x + t.tIntercept[k]
	if v < t.tFloor {
		v = t.tFloor
	}
	var p float64
	if t.fitted {
		w := t.vSlope[k]*x + t.vIntercept[k]
		if w < t.vFloor {
			w = t.vFloor
		}
		if w <= 0 {
			p = t.pScale
		} else {
			p = t.pBase + t.pScale/w
			if p < 0 {
				p = 0
			}
		}
	} else {
		p = t.pSlope[k]*x + t.pIntercept[k]
		if p < 0 {
			p = 0
		}
	}
	return units.KBps(v), units.MJ(p)
}

// Throughput implements ThroughputModel.
func (t *Table) Throughput(sig units.DBm) units.KBps {
	v, _ := t.Lookup(sig)
	return v
}

// EnergyPerKB implements PowerModel.
func (t *Table) EnergyPerKB(sig units.DBm) units.MJ {
	_, p := t.Lookup(sig)
	return p
}
