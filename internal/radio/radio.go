// Package radio models the physical-layer relationship between signal
// strength and both achievable throughput and per-byte energy cost.
//
// The paper adopts the numerically fitted curves of Suneja et al. (ENVI,
// 2013), reproduced as Eq. (24):
//
//	v(sig) = 65.8·sig + 7567.0        [KB/s], sig in dBm
//	P(sig) = −0.167 + 1560 / v(sig)   [mJ/KB]
//
// so a stronger (less negative) signal yields higher throughput and a lower
// per-byte energy price. Note the instantaneous radio power while receiving
// at full rate is P(sig)·v(sig) = −0.167·v + 1560 mW, i.e. weak-signal
// reception is the most power-hungry — the effect both RTMA's admission
// threshold and EMA's drift-plus-penalty exploit.
//
// The package exposes the models behind small interfaces so tests and
// ablations can substitute piecewise-linear or synthetic curves.
package radio

import (
	"fmt"
	"sort"

	"jointstream/internal/units"
)

// ThroughputModel maps signal strength to the maximum achievable
// application-layer data rate (Definition 3 in the paper).
type ThroughputModel interface {
	// Throughput returns the max rate at the given RSSI. Implementations
	// never return a negative rate.
	Throughput(sig units.DBm) units.KBps
}

// PowerModel maps signal strength to the energy cost of receiving one
// kilobyte (Definition 4 in the paper).
type PowerModel interface {
	// EnergyPerKB returns mJ consumed per KB received at the given RSSI.
	// Implementations never return a negative cost.
	EnergyPerKB(sig units.DBm) units.MJ
}

// Model bundles the two curves; the simulator carries one Model per run.
type Model struct {
	Throughput ThroughputModel
	Power      PowerModel
}

// LinearThroughput is the paper's linear throughput fit
// v(sig) = Slope·sig + Intercept, floored at MinRate to avoid non-physical
// zero/negative rates at the weak end of the clamped signal range.
type LinearThroughput struct {
	Slope     float64    // KB/s per dBm
	Intercept float64    // KB/s
	MinRate   units.KBps // floor; must be > 0 for a usable channel
}

// Throughput implements ThroughputModel.
func (m LinearThroughput) Throughput(sig units.DBm) units.KBps {
	v := units.KBps(m.Slope*float64(sig) + m.Intercept)
	if v < m.MinRate {
		return m.MinRate
	}
	return v
}

// FittedPower is the paper's per-byte energy fit
// P(sig) = Base + Scale / v(sig), with v supplied by a ThroughputModel.
// The result is floored at zero.
type FittedPower struct {
	Base  float64 // mJ/KB (negative in the paper's fit: −0.167)
	Scale float64 // mJ/s  (1560 in the paper's fit)
	V     ThroughputModel
}

// EnergyPerKB implements PowerModel.
func (m FittedPower) EnergyPerKB(sig units.DBm) units.MJ {
	v := float64(m.V.Throughput(sig))
	if v <= 0 {
		// Unreachable with a positive MinRate floor, but keep the model
		// total: an unusable channel has unbounded cost, represented as 0
		// throughput upstream and a huge (not infinite) price here.
		return units.MJ(m.Scale)
	}
	p := m.Base + m.Scale/v
	if p < 0 {
		return 0
	}
	return units.MJ(p)
}

// Paper3G returns the exact Eq. (24) model used in the paper's evaluation.
// At −50 dBm it yields ≈4277 KB/s at ≈0.20 mJ/KB; at −110 dBm,
// ≈329 KB/s at ≈4.57 mJ/KB.
func Paper3G() Model {
	v := LinearThroughput{Slope: 65.8, Intercept: 7567.0, MinRate: 1}
	return Model{
		Throughput: v,
		Power:      FittedPower{Base: -0.167, Scale: 1560, V: v},
	}
}

// LTE returns an LTE-flavored variant: the paper argues (§III, §VI) the
// same framework applies to LTE with different constants. We scale the 3G
// fit to LTE-class rates (Huang et al., MobiSys 2012 report ~3x downlink
// throughput and higher radio power), preserving the shape: linear rate in
// RSSI, per-byte price hyperbolic in rate.
func LTE() Model {
	v := LinearThroughput{Slope: 197.4, Intercept: 22701.0, MinRate: 1}
	return Model{
		Throughput: v,
		Power:      FittedPower{Base: -0.11, Scale: 3120, V: v},
	}
}

// TransmissionEnergy returns the energy to deliver k kilobytes at RSSI sig,
// the paper's Eq. (3): E_trans = P(sig) × data.
func (m Model) TransmissionEnergy(sig units.DBm, k units.KB) units.MJ {
	return units.MJ(float64(m.Power.EnergyPerKB(sig)) * float64(k))
}

// ReceivePower returns the instantaneous radio power while receiving at the
// full rate v(sig): P(sig)·v(sig) in mW.
func (m Model) ReceivePower(sig units.DBm) units.MW {
	return units.MW(float64(m.Power.EnergyPerKB(sig)) * float64(m.Throughput.Throughput(sig)))
}

// SignalForThroughput inverts a LinearThroughput: the weakest signal whose
// throughput is at least v. Used by RTMA to turn the Eq. (12) energy budget
// into a signal-strength admission threshold φ.
func (m LinearThroughput) SignalForThroughput(v units.KBps) units.DBm {
	if m.Slope == 0 {
		return 0
	}
	return units.DBm((float64(v) - m.Intercept) / m.Slope)
}

// PiecewiseLinear interpolates throughput between measured (sig, rate)
// breakpoints; outside the covered range it extends the edge values. It
// lets experiments replay arbitrary measured curves.
type PiecewiseLinear struct {
	points []Point // sorted by Sig ascending
}

// Point is one breakpoint of a piecewise-linear curve.
type Point struct {
	Sig  units.DBm
	Rate units.KBps
}

// NewPiecewiseLinear builds a curve from at least one breakpoint.
// Points may be supplied in any order; duplicate signal values are invalid.
func NewPiecewiseLinear(pts []Point) (*PiecewiseLinear, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("radio: piecewise curve needs at least one point")
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Sig < cp[j].Sig })
	for i := 1; i < len(cp); i++ {
		if cp[i].Sig == cp[i-1].Sig {
			return nil, fmt.Errorf("radio: duplicate breakpoint at %v", cp[i].Sig)
		}
	}
	for _, p := range cp {
		if p.Rate < 0 {
			return nil, fmt.Errorf("radio: negative rate %v at %v", p.Rate, p.Sig)
		}
	}
	return &PiecewiseLinear{points: cp}, nil
}

// Throughput implements ThroughputModel by linear interpolation.
func (m *PiecewiseLinear) Throughput(sig units.DBm) units.KBps {
	pts := m.points
	if sig <= pts[0].Sig {
		return pts[0].Rate
	}
	if sig >= pts[len(pts)-1].Sig {
		return pts[len(pts)-1].Rate
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Sig >= sig })
	a, b := pts[i-1], pts[i]
	frac := float64(sig-a.Sig) / float64(b.Sig-a.Sig)
	return a.Rate + units.KBps(frac*float64(b.Rate-a.Rate))
}
