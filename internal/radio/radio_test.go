package radio

import (
	"math"
	"testing"
	"testing/quick"

	"jointstream/internal/units"
)

func TestPaper3GThroughputMatchesEq24(t *testing.T) {
	m := Paper3G()
	cases := []struct {
		sig  units.DBm
		want float64 // KB/s
	}{
		{-50, 65.8*-50 + 7567},   // 4277
		{-80, 65.8*-80 + 7567},   // 2303
		{-110, 65.8*-110 + 7567}, // 329
	}
	for _, c := range cases {
		got := float64(m.Throughput.Throughput(c.sig))
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("v(%v) = %v, want %v", c.sig, got, c.want)
		}
	}
}

func TestPaper3GPowerMatchesEq24(t *testing.T) {
	m := Paper3G()
	for _, sig := range []units.DBm{-50, -70, -90, -110} {
		v := 65.8*float64(sig) + 7567
		want := -0.167 + 1560/v
		got := float64(m.Power.EnergyPerKB(sig))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("P(%v) = %v, want %v", sig, got, want)
		}
	}
}

func TestStrongerSignalFasterAndCheaper(t *testing.T) {
	m := Paper3G()
	prevV := units.KBps(-1)
	prevP := units.MJ(math.Inf(1))
	for sig := units.DBm(-110); sig <= -50; sig += 5 {
		v := m.Throughput.Throughput(sig)
		p := m.Power.EnergyPerKB(sig)
		if v <= prevV {
			t.Errorf("throughput not strictly increasing at %v", sig)
		}
		if p >= prevP {
			t.Errorf("per-KB energy not strictly decreasing at %v", sig)
		}
		prevV, prevP = v, p
	}
}

func TestThroughputFloor(t *testing.T) {
	m := LinearThroughput{Slope: 65.8, Intercept: 7567, MinRate: 1}
	if got := m.Throughput(-200); got != 1 {
		t.Errorf("Throughput(-200) = %v, want floor 1", got)
	}
}

func TestPowerFloorNonNegative(t *testing.T) {
	// A strong enough signal would push Base + Scale/v below zero if Base
	// is very negative; the model floors at 0.
	v := LinearThroughput{Slope: 65.8, Intercept: 7567, MinRate: 1}
	p := FittedPower{Base: -10, Scale: 1560, V: v}
	if got := p.EnergyPerKB(-50); got != 0 {
		t.Errorf("EnergyPerKB = %v, want floored 0", got)
	}
}

func TestTransmissionEnergyEq3(t *testing.T) {
	m := Paper3G()
	sig := units.DBm(-80)
	perKB := float64(m.Power.EnergyPerKB(sig))
	got := float64(m.TransmissionEnergy(sig, 500))
	if math.Abs(got-500*perKB) > 1e-9 {
		t.Errorf("TransmissionEnergy = %v, want %v", got, 500*perKB)
	}
}

func TestReceivePowerShape(t *testing.T) {
	m := Paper3G()
	// P(sig)*v(sig) = -0.167*v + 1560, so weaker signal => higher power.
	weak := float64(m.ReceivePower(-110))
	strong := float64(m.ReceivePower(-50))
	if weak <= strong {
		t.Errorf("receive power at weak signal (%v) should exceed strong (%v)", weak, strong)
	}
	wantWeak := -0.167*(65.8*-110+7567) + 1560
	if math.Abs(weak-wantWeak) > 1e-6 {
		t.Errorf("ReceivePower(-110) = %v, want %v", weak, wantWeak)
	}
}

func TestSignalForThroughputInverts(t *testing.T) {
	m := LinearThroughput{Slope: 65.8, Intercept: 7567, MinRate: 1}
	for _, v := range []units.KBps{400, 1000, 4000} {
		sig := m.SignalForThroughput(v)
		back := m.Throughput(sig)
		if math.Abs(float64(back-v)) > 1e-6 {
			t.Errorf("Throughput(SignalForThroughput(%v)) = %v", v, back)
		}
	}
}

func TestSignalForThroughputZeroSlope(t *testing.T) {
	m := LinearThroughput{Slope: 0, Intercept: 100, MinRate: 1}
	if got := m.SignalForThroughput(500); got != 0 {
		t.Errorf("zero-slope inverse = %v, want 0 sentinel", got)
	}
}

func TestLTEFasterThan3G(t *testing.T) {
	g3, lte := Paper3G(), LTE()
	for sig := units.DBm(-110); sig <= -50; sig += 10 {
		if lte.Throughput.Throughput(sig) <= g3.Throughput.Throughput(sig) {
			t.Errorf("LTE not faster than 3G at %v", sig)
		}
	}
}

func TestPiecewiseLinearInterpolation(t *testing.T) {
	pl, err := NewPiecewiseLinear([]Point{
		{Sig: -110, Rate: 300},
		{Sig: -80, Rate: 2000},
		{Sig: -50, Rate: 4300},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		sig  units.DBm
		want units.KBps
	}{
		{-110, 300},
		{-95, 1150}, // midway between 300 and 2000
		{-80, 2000},
		{-65, 3150},
		{-50, 4300},
		{-120, 300}, // below range: clamp
		{-40, 4300}, // above range: clamp
	}
	for _, c := range cases {
		got := pl.Throughput(c.sig)
		if math.Abs(float64(got-c.want)) > 1e-9 {
			t.Errorf("Throughput(%v) = %v, want %v", c.sig, got, c.want)
		}
	}
}

func TestPiecewiseLinearUnsortedInput(t *testing.T) {
	pl, err := NewPiecewiseLinear([]Point{
		{Sig: -50, Rate: 4300},
		{Sig: -110, Rate: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Throughput(-80); got != 2300 {
		t.Errorf("unsorted input midpoint = %v, want 2300", got)
	}
}

func TestPiecewiseLinearValidation(t *testing.T) {
	if _, err := NewPiecewiseLinear(nil); err == nil {
		t.Error("empty point set accepted")
	}
	if _, err := NewPiecewiseLinear([]Point{{-80, 100}, {-80, 200}}); err == nil {
		t.Error("duplicate breakpoints accepted")
	}
	if _, err := NewPiecewiseLinear([]Point{{-80, -5}}); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestPiecewiseLinearSinglePoint(t *testing.T) {
	pl, err := NewPiecewiseLinear([]Point{{Sig: -80, Rate: 1234}})
	if err != nil {
		t.Fatal(err)
	}
	for _, sig := range []units.DBm{-120, -80, -40} {
		if got := pl.Throughput(sig); got != 1234 {
			t.Errorf("single-point curve at %v = %v, want 1234", sig, got)
		}
	}
}

func TestPiecewiseLinearCopiesInput(t *testing.T) {
	pts := []Point{{Sig: -110, Rate: 300}, {Sig: -50, Rate: 4300}}
	pl, err := NewPiecewiseLinear(pts)
	if err != nil {
		t.Fatal(err)
	}
	pts[0].Rate = 99999
	if got := pl.Throughput(-110); got != 300 {
		t.Errorf("curve aliased caller slice: %v", got)
	}
}

// Property: piecewise interpolation is monotone if breakpoints are.
func TestPiecewiseMonotoneProperty(t *testing.T) {
	f := func(r1, r2, r3 uint16) bool {
		rates := []float64{float64(r1), float64(r1) + float64(r2), float64(r1) + float64(r2) + float64(r3)}
		pl, err := NewPiecewiseLinear([]Point{
			{Sig: -110, Rate: units.KBps(rates[0])},
			{Sig: -80, Rate: units.KBps(rates[1])},
			{Sig: -50, Rate: units.KBps(rates[2])},
		})
		if err != nil {
			return false
		}
		prev := units.KBps(-1)
		for sig := units.DBm(-115); sig <= -45; sig += 1 {
			v := pl.Throughput(sig)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for the paper model, energy for k KB is linear in k.
func TestTransmissionEnergyLinearProperty(t *testing.T) {
	m := Paper3G()
	f := func(sigRaw uint8, kRaw uint16) bool {
		sig := units.DBm(-110 + float64(sigRaw%61))
		k := units.KB(kRaw)
		e1 := float64(m.TransmissionEnergy(sig, k))
		e2 := float64(m.TransmissionEnergy(sig, 2*k))
		return math.Abs(e2-2*e1) < 1e-6*(1+e2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
