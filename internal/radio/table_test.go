package radio

import (
	"math"
	"testing"

	"jointstream/internal/units"
)

// sameFloat compares bitwise, treating any two NaNs as equal (the NaN
// produced by identical expression shapes is the same pattern anyway,
// but the property we guarantee is "NaN in, NaN out" not a bit pattern).
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

// TestTableExactForPaperFits is the central exactness guarantee: for the
// paper's affine fits the quantized table is bitwise-identical to the
// analytic model at every probed signal, inside and outside the domain.
func TestTableExactForPaperFits(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    Model
	}{{"Paper3G", Paper3G()}, {"LTE", LTE()}} {
		t.Run(tc.name, func(t *testing.T) {
			tab, err := NewTable(tc.m, -110, -50, 4096)
			if err != nil {
				t.Fatal(err)
			}
			if !tab.Exact() {
				t.Fatal("paper fit not recognized as exact")
			}
			// Dense in-domain grid plus out-of-domain and floor-hitting
			// probes (the 3G fit floors throughput below ≈ −115 dBm).
			for sig := -130.0; sig <= -30.0; sig += 0.003 {
				s := units.DBm(sig)
				wantV := tc.m.Throughput.Throughput(s)
				wantP := tc.m.Power.EnergyPerKB(s)
				gotV, gotP := tab.Lookup(s)
				if !sameFloat(float64(gotV), float64(wantV)) {
					t.Fatalf("throughput at %v: table %v, analytic %v", s, gotV, wantV)
				}
				if !sameFloat(float64(gotP), float64(wantP)) {
					t.Fatalf("energy at %v: table %v, analytic %v", s, gotP, wantP)
				}
			}
		})
	}
}

// TestTableChordApproximation checks the generic (non-exact) path: a
// piecewise-linear curve is reproduced within a tolerance that shrinks
// with bin count, and the table reports itself inexact.
func TestTableChordApproximation(t *testing.T) {
	pw, err := NewPiecewiseLinear([]Point{
		{Sig: -110, Rate: 300}, {Sig: -90, Rate: 900},
		{Sig: -70, Rate: 2500}, {Sig: -50, Rate: 4200},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Throughput: pw, Power: FittedPower{Base: -0.167, Scale: 1560, V: pw}}
	tab, err := NewTable(m, -110, -50, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Exact() {
		t.Fatal("piecewise model must not be exact")
	}
	for sig := -110.0; sig <= -50.0; sig += 0.01 {
		s := units.DBm(sig)
		wantV := float64(m.Throughput.Throughput(s))
		gotV, gotP := tab.Lookup(s)
		if rel := math.Abs(float64(gotV)-wantV) / wantV; rel > 1e-3 {
			t.Fatalf("throughput at %v: table %v vs %v (rel %g)", s, gotV, wantV, rel)
		}
		wantP := float64(m.Power.EnergyPerKB(s))
		if rel := math.Abs(float64(gotP)-wantP) / wantP; rel > 1e-3 {
			t.Fatalf("energy at %v: table %v vs %v (rel %g)", s, gotP, wantP, rel)
		}
	}
}

func TestTableDegenerateDomain(t *testing.T) {
	m := Paper3G()
	tab, err := NewTable(m, -80, -80, 64)
	if err != nil {
		t.Fatal(err)
	}
	gotV, gotP := tab.Lookup(-80)
	if gotV != m.Throughput.Throughput(-80) || gotP != m.Power.EnergyPerKB(-80) {
		t.Fatalf("degenerate domain lookup (%v, %v) mismatches model", gotV, gotP)
	}
}

func TestTableRejectsBadInputs(t *testing.T) {
	m := Paper3G()
	if _, err := NewTable(m, -110, -50, 0); err == nil {
		t.Error("accepted zero bins")
	}
	if _, err := NewTable(m, -50, -110, 64); err == nil {
		t.Error("accepted inverted domain")
	}
	if _, err := NewTable(m, units.DBm(math.NaN()), -50, 64); err == nil {
		t.Error("accepted NaN domain")
	}
	if _, err := NewTable(Model{}, -110, -50, 64); err == nil {
		t.Error("accepted empty model")
	}
}

func TestTableBinClamps(t *testing.T) {
	tab, err := NewTable(Paper3G(), -110, -50, 128)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[units.DBm]func(int) bool{
		-200:                       func(k int) bool { return k == 0 },
		-110:                       func(k int) bool { return k == 0 },
		-50:                        func(k int) bool { return k == 127 },
		0:                          func(k int) bool { return k == 127 },
		units.DBm(math.NaN()):      func(k int) bool { return k == 0 },
		units.DBm(math.Inf(1)):     func(k int) bool { return k == 127 },
		units.DBm(math.Inf(-1)):    func(k int) bool { return k == 0 },
		units.DBm(-80.00000000001): func(k int) bool { return k >= 0 && k < 128 },
	}
	for sig, ok := range cases {
		if k := tab.Bin(sig); !ok(k) {
			t.Errorf("Bin(%v) = %d out of expected range", sig, k)
		}
	}
}

// FuzzTableLookup drives the quantizer with arbitrary signals and
// domains: Bin must stay in range, and on the paper's exact fit Lookup
// must match the analytic model bitwise for every input — including
// infinities, NaN, and signals far outside the compiled domain.
func FuzzTableLookup(f *testing.F) {
	f.Add(-80.0, -110.0, -50.0)
	f.Add(-110.0, -110.0, -50.0)
	f.Add(-49.999999, -110.0, -50.0)
	f.Add(math.Inf(1), -110.0, -50.0)
	f.Add(math.NaN(), -90.0, -60.0)
	f.Add(0.0, -70.0, -70.0)
	m := Paper3G()
	f.Fuzz(func(t *testing.T, sig, lo, hi float64) {
		if math.IsNaN(lo) || math.IsNaN(hi) || hi < lo {
			return // rejected by NewTable; nothing to check
		}
		if math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return // infinite-width domains have no meaningful quantizer
		}
		tab, err := NewTable(m, units.DBm(lo), units.DBm(hi), 512)
		if err != nil {
			t.Fatalf("NewTable(%v, %v): %v", lo, hi, err)
		}
		s := units.DBm(sig)
		if k := tab.Bin(s); k < 0 || k >= tab.Bins() {
			t.Fatalf("Bin(%v) = %d outside [0, %d)", sig, k, tab.Bins())
		}
		gotV, gotP := tab.Lookup(s)
		wantV := m.Throughput.Throughput(s)
		wantP := m.Power.EnergyPerKB(s)
		if !sameFloat(float64(gotV), float64(wantV)) || !sameFloat(float64(gotP), float64(wantP)) {
			t.Fatalf("Lookup(%v) = (%v, %v), analytic (%v, %v)", sig, gotV, gotP, wantV, wantP)
		}
	})
}
