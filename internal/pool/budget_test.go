package pool

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// withBudget runs f under a temporary worker budget and restores the
// previous budget afterwards (tests must not leak tokens into each
// other — the budget is process-global).
func withBudget(t *testing.T, n int, f func()) {
	t.Helper()
	prev := SetWorkerBudget(n)
	defer SetWorkerBudget(prev)
	f()
}

// highWater tracks the peak number of concurrently running fn bodies.
type highWater struct {
	cur, peak atomic.Int64
}

func (h *highWater) enter() {
	c := h.cur.Add(1)
	for {
		p := h.peak.Load()
		if c <= p || h.peak.CompareAndSwap(p, c) {
			return
		}
	}
}

func (h *highWater) exit() { h.cur.Add(-1) }

func TestShardRespectsBudget(t *testing.T) {
	withBudget(t, 3, func() {
		var hw highWater
		const shards = 64
		done := make([]atomic.Int64, shards)
		Shard(16, shards, func(i int) {
			hw.enter()
			time.Sleep(time.Millisecond)
			done[i].Add(1)
			hw.exit()
		})
		if peak := hw.peak.Load(); peak > 3 {
			t.Errorf("peak concurrency %d exceeds budget 3", peak)
		}
		for i := range done {
			if got := done[i].Load(); got != 1 {
				t.Errorf("shard %d ran %d times, want 1", i, got)
			}
		}
	})
}

func TestShardBudgetOneRunsInline(t *testing.T) {
	withBudget(t, 1, func() {
		var hw highWater
		Shard(8, 32, func(int) {
			hw.enter()
			hw.exit()
		})
		if peak := hw.peak.Load(); peak != 1 {
			t.Errorf("peak concurrency %d with budget 1, want 1", peak)
		}
	})
}

func TestElasticMapRespectsBudget(t *testing.T) {
	withBudget(t, 2, func() {
		var hw highWater
		xs := make([]int, 32)
		got, err := Map(context.Background(), 0, xs, func(_ context.Context, x int) (int, error) {
			hw.enter()
			time.Sleep(time.Millisecond)
			hw.exit()
			return x + 1, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(xs) {
			t.Fatalf("got %d results, want %d", len(got), len(xs))
		}
		if peak := hw.peak.Load(); peak > 2 {
			t.Errorf("peak concurrency %d exceeds budget 2", peak)
		}
	})
}

// TestNestedFanoutSharesBudget is the composition case the budget
// exists for: an outer Map sweep whose jobs each run an inner Shard.
// The combined concurrency of inner bodies must stay within the budget
// instead of multiplying outer×inner.
func TestNestedFanoutSharesBudget(t *testing.T) {
	withBudget(t, 4, func() {
		var hw highWater
		xs := make([]int, 8)
		_, err := Map(context.Background(), 0, xs, func(context.Context, int) (struct{}, error) {
			Shard(8, 16, func(int) {
				hw.enter()
				time.Sleep(time.Millisecond)
				hw.exit()
			})
			return struct{}{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if peak := hw.peak.Load(); peak > 4 {
			t.Errorf("peak inner concurrency %d exceeds budget 4", peak)
		}
	})
}

// TestExplicitMapStarvesInnerShard pins the other half of the contract:
// an explicit Map worker request is honored as asked, debits the whole
// budget, and the Shards running inside its jobs fall back to inline.
func TestExplicitMapStarvesInnerShard(t *testing.T) {
	withBudget(t, 2, func() {
		var worstJobPeak atomic.Int64
		_, err := Map(context.Background(), 6, make([]int, 6), func(_ context.Context, _ int) (struct{}, error) {
			var local highWater
			Shard(8, 16, func(int) {
				local.enter()
				time.Sleep(time.Millisecond)
				local.exit()
			})
			p := local.peak.Load()
			for {
				w := worstJobPeak.Load()
				if p <= w || worstJobPeak.CompareAndSwap(w, p) {
					break
				}
			}
			return struct{}{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// With the whole budget debited by the explicit Map, each job's
		// Shard must have run inline (per-job peak 1), even though the
		// jobs themselves overlap.
		if got := worstJobPeak.Load(); got != 1 {
			t.Errorf("inner Shard peak %d under explicit Map, want 1 (inline)", got)
		}
	})
}

// TestBudgetTokensRestored asserts fan-outs return every token they
// took, including on the panic path.
func TestBudgetTokensRestored(t *testing.T) {
	withBudget(t, 5, func() {
		Shard(5, 16, func(int) {})
		if got := WorkerBudget(); got != 5 {
			t.Fatalf("budget %d after Shard, want 5", got)
		}
		func() {
			defer func() { recover() }()
			Shard(5, 16, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
		}()
		if got := WorkerBudget(); got != 5 {
			t.Fatalf("budget %d after panicking Shard, want 5", got)
		}
		if _, err := Map(context.Background(), 5, make([]int, 8), func(context.Context, int) (int, error) {
			return 0, nil
		}); err != nil {
			t.Fatal(err)
		}
		if got := WorkerBudget(); got != 5 {
			t.Fatalf("budget %d after Map, want 5", got)
		}
	})
}

func TestSetWorkerBudgetReturnsPrevious(t *testing.T) {
	prev := SetWorkerBudget(7)
	if got := SetWorkerBudget(prev); got != 7 {
		t.Errorf("SetWorkerBudget returned %d, want 7", got)
	}
	if got := WorkerBudget(); got != prev {
		t.Errorf("budget %d after restore, want %d", got, prev)
	}
	if def := SetWorkerBudget(0); def != prev {
		t.Errorf("reset returned %d, want %d", def, prev)
	}
	if got := WorkerBudget(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("budget %d after reset, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
}
