package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The worker budget is a process-global token pool that keeps nested
// fan-outs from oversubscribing the machine: the experiment harness runs
// figures in parallel with Map while every simulator inside a figure
// shards its tick phases with Shard, and without a shared budget a
// machine with P cores could end up with figures×shards runnable
// goroutines thrashing the scheduler. Each fan-out counts its calling
// goroutine as one worker for free and settles the rest with the
// budget, never blocking: elastic requests (Shard, workers<=0 Map)
// take whatever is available and run inline when nothing is, while an
// explicit Map worker count is honored as asked and debited — possibly
// into the negative — so elastic fan-outs beneath it yield. Tokens are
// returned when the call completes.
//
// The budget only ever changes how many goroutines execute a fan-out,
// never what it computes: Map preserves submission order, Shard requires
// shard-confined writes, and the simulator's results are byte-identical
// for any worker count, so throttling is invisible in the output.

var (
	budgetOnce  sync.Once
	extraTokens atomic.Int64 // workers available beyond the callers' own goroutines
)

func ensureBudget() {
	budgetOnce.Do(func() {
		extraTokens.Store(int64(runtime.GOMAXPROCS(0) - 1))
	})
}

// SetWorkerBudget sets the total number of pool workers the process may
// run concurrently (each Map/Shard call's own goroutine counts as one)
// and returns the previous budget. n <= 0 resets to GOMAXPROCS. It is
// meant for process startup or between runs; changing the budget while
// fan-outs are in flight skews the token count until they return their
// tokens.
func SetWorkerBudget(n int) int {
	ensureBudget()
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(extraTokens.Swap(int64(n-1))) + 1
}

// WorkerBudget returns the number of currently available pool workers,
// counting the would-be caller itself (so it is at least 1).
func WorkerBudget() int {
	ensureBudget()
	avail := extraTokens.Load()
	if avail < 0 {
		avail = 0
	}
	return int(avail) + 1
}

// acquireExtra takes up to want extra worker tokens from the budget,
// returning how many it got (possibly 0). Never blocks.
func acquireExtra(want int) int {
	ensureBudget()
	if want <= 0 {
		return 0
	}
	for {
		cur := extraTokens.Load()
		if cur <= 0 {
			return 0
		}
		take := int64(want)
		if take > cur {
			take = cur
		}
		if extraTokens.CompareAndSwap(cur, cur-take) {
			return int(take)
		}
	}
}

// debitExtra charges n tokens to the budget unconditionally, allowing
// the balance to go negative. Map uses it for explicit worker requests:
// the caller's count is honored, and the debt makes concurrent elastic
// fan-outs (Shard, workers<=0 Map) find nothing available and run
// inline, which is exactly the composition the budget exists for.
func debitExtra(n int) {
	ensureBudget()
	if n > 0 {
		extraTokens.Add(-int64(n))
	}
}

// releaseExtra returns tokens taken by acquireExtra or debitExtra.
func releaseExtra(n int) {
	if n > 0 {
		extraTokens.Add(int64(n))
	}
}
