package pool

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	xs := make([]int, 100)
	for i := range xs {
		xs[i] = i
	}
	got, err := Map(context.Background(), 8, xs, func(_ context.Context, x int) (int, error) {
		return x * x, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmptyInput(t *testing.T) {
	got, err := Map(context.Background(), 4, nil, func(_ context.Context, x int) (int, error) {
		return x, nil
	})
	if err != nil || got != nil {
		t.Errorf("empty input: %v, %v", got, err)
	}
}

func TestMapNilFunction(t *testing.T) {
	if _, err := Map[int, int](context.Background(), 1, []int{1}, nil); err == nil {
		t.Error("nil fn accepted")
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	got, err := Map(context.Background(), 0, []int{1, 2, 3}, func(_ context.Context, x int) (int, error) {
		return x + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != 4 {
		t.Errorf("got = %v", got)
	}
}

func TestMapActuallyParallel(t *testing.T) {
	// With 4 workers, 4 jobs that each wait for the others must finish:
	// sequential execution would deadlock (and the test would time out).
	var entered atomic.Int32
	release := make(chan struct{})
	xs := []int{0, 1, 2, 3}
	done := make(chan error, 1)
	go func() {
		_, err := Map(context.Background(), 4, xs, func(_ context.Context, x int) (int, error) {
			if entered.Add(1) == 4 {
				close(release)
			}
			select {
			case <-release:
				return x, nil
			case <-time.After(5 * time.Second):
				return 0, errors.New("parallelism timeout")
			}
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Map did not run jobs concurrently")
	}
}

func TestMapErrorCancelsRemaining(t *testing.T) {
	var ran atomic.Int32
	xs := make([]int, 1000)
	boom := errors.New("boom")
	_, err := Map(context.Background(), 2, xs, func(ctx context.Context, x int) (int, error) {
		n := ran.Add(1)
		if n == 3 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// Cancellation is asynchronous but must stop well short of all jobs.
	if ran.Load() > 900 {
		t.Errorf("ran %d jobs after error; cancellation ineffective", ran.Load())
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	_, err := Map(context.Background(), 2, []int{1, 2, 3}, func(_ context.Context, x int) (int, error) {
		if x == 2 {
			panic("kaboom")
		}
		return x, nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("panic not surfaced: %v", err)
	}
}

func TestMapRespectsCallerCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 2, []int{1, 2, 3}, func(ctx context.Context, x int) (int, error) {
		return x, nil
	})
	if err == nil {
		t.Error("pre-cancelled context accepted")
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	xs := []int64{1, 2, 3, 4, 5}
	if err := ForEach(context.Background(), 3, xs, func(_ context.Context, x int64) error {
		sum.Add(x)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 15 {
		t.Errorf("sum = %d", sum.Load())
	}
	boom := errors.New("x")
	if err := ForEach(context.Background(), 3, xs, func(_ context.Context, x int64) error {
		return boom
	}); !errors.Is(err, boom) {
		t.Errorf("ForEach error = %v", err)
	}
}

// Property: Map equals the sequential loop for pure functions, at any
// worker count.
func TestMapMatchesSequentialProperty(t *testing.T) {
	f := func(xs []int32, workersRaw uint8) bool {
		workers := int(workersRaw%8) + 1
		fn := func(x int32) int64 { return int64(x)*3 - 7 }
		got, err := Map(context.Background(), workers, xs, func(_ context.Context, x int32) (int64, error) {
			return fn(x), nil
		})
		if err != nil {
			return false
		}
		for i, x := range xs {
			if got[i] != fn(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMapOverhead(b *testing.B) {
	xs := make([]int, 64)
	for i := 0; i < b.N; i++ {
		_, err := Map(context.Background(), 8, xs, func(_ context.Context, x int) (int, error) {
			return x + 1, nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleMap() {
	squares, _ := Map(context.Background(), 4, []int{1, 2, 3, 4}, func(_ context.Context, x int) (int, error) {
		return x * x, nil
	})
	fmt.Println(squares)
	// Output: [1 4 9 16]
}

func TestForEachNCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 4, 0} {
		const n = 200
		var hits [n]int32
		err := ForEachN(context.Background(), workers, n, func(_ context.Context, i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachNErrorAndPanic(t *testing.T) {
	sentinel := errors.New("boom")
	err := ForEachN(context.Background(), 2, 50, func(_ context.Context, i int) error {
		if i == 7 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error not propagated: %v", err)
	}
	err = ForEachN(context.Background(), 1, 10, func(_ context.Context, i int) error {
		if i == 3 {
			panic("kaput")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not converted: %v", err)
	}
	if err := ForEachN(context.Background(), 1, 5, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
	if err := ForEachN(context.Background(), 1, 0, func(_ context.Context, _ int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachNRespectsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := ForEachN(ctx, 1, 100, func(_ context.Context, _ int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if err == nil {
		t.Fatal("cancelled context accepted")
	}
	if ran != 0 {
		t.Fatalf("ran %d jobs after cancellation", ran)
	}
}
