package pool

import (
	"sync"
	"sync/atomic"
)

// Shard runs fn(shard) for every shard index in [0, shards), fanning the
// calls across at most workers goroutines. It is the low-overhead sibling
// of Map for the simulator's per-slot tick path: no context, no error
// plumbing, no per-job channel send — shard indices are claimed from an
// atomic counter, so dispatching a slot's prepare or commit phase costs
// one goroutine spawn per worker and one atomic add per shard.
//
// fn must confine its writes to shard-local state; Shard returns only
// after every shard completed. workers <= 1 (or a single shard) runs the
// loop inline on the caller's goroutine, which the simulator relies on
// for its serial-equals-parallel determinism guarantee. A panic in fn is
// re-raised on the caller's goroutine once the remaining workers drain.
func Shard(workers, shards int, fn func(shard int)) {
	if shards <= 0 {
		return
	}
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for i := 0; i < shards; i++ {
			fn(i)
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicOnce.Do(func() { panicked = p })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= shards {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
