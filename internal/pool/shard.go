package pool

import (
	"sync"
	"sync/atomic"
)

// Shard runs fn(shard) for every shard index in [0, shards), fanning the
// calls across at most workers goroutines. It is the low-overhead sibling
// of Map for the simulator's per-slot tick path: no context, no error
// plumbing, no per-job channel send — shard indices are claimed from an
// atomic counter, so dispatching a slot's prepare or commit phase costs
// one goroutine spawn per worker and one atomic add per shard.
//
// fn must confine its writes to shard-local state; Shard returns only
// after every shard completed. workers <= 1 (or a single shard) runs the
// loop inline on the caller's goroutine, which the simulator relies on
// for its serial-equals-parallel determinism guarantee. A panic in fn is
// re-raised on the caller's goroutine once the remaining workers drain.
//
// The caller's goroutine always participates as one worker; the other
// workers-1 are requested from the process-wide worker budget (see
// SetWorkerBudget), so nested fan-outs — figure sweeps over sharded
// simulators — degrade to inline execution instead of oversubscribing
// the machine. Throttling never changes the result: shards write
// disjoint state regardless of which goroutine claims them.
func Shard(workers, shards int, fn func(shard int)) {
	if shards <= 0 {
		return
	}
	if workers > shards {
		workers = shards
	}
	extra := 0
	if workers > 1 {
		extra = acquireExtra(workers - 1)
		defer releaseExtra(extra)
	}
	if extra == 0 {
		for i := 0; i < shards; i++ {
			fn(i)
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	claim := func() {
		defer func() {
			if p := recover(); p != nil {
				panicOnce.Do(func() { panicked = p })
			}
		}()
		for {
			i := int(next.Add(1)) - 1
			if i >= shards {
				return
			}
			fn(i)
		}
	}
	wg.Add(extra)
	for w := 0; w < extra; w++ {
		go func() {
			defer wg.Done()
			claim()
		}()
	}
	claim() // caller is a worker too
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
