package pool

import (
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestShardCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		hits := make([]atomic.Int32, 100)
		Shard(workers, len(hits), func(i int) { hits[i].Add(1) })
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("workers=%d: shard %d ran %d times, want 1", workers, i, n)
			}
		}
	}
}

func TestShardZeroShards(t *testing.T) {
	called := false
	Shard(4, 0, func(int) { called = true })
	Shard(4, -3, func(int) { called = true })
	if called {
		t.Error("fn called with no shards")
	}
}

func TestShardSerialRunsInline(t *testing.T) {
	// workers <= 1 must run on the caller's goroutine in ascending order —
	// the simulator's determinism argument depends on it. Unsynchronized
	// writes to `order` would trip the race detector if a goroutine ran fn.
	var order []int
	Shard(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order = %v, want ascending", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d shards, want 5", len(order))
	}
}

func TestShardWorkersCappedAtShards(t *testing.T) {
	// More workers than shards must not deadlock or double-run shards.
	var runs atomic.Int32
	Shard(32, 3, func(int) { runs.Add(1) })
	if runs.Load() != 3 {
		t.Errorf("ran %d shards, want 3", runs.Load())
	}
}

func TestShardActuallyParallel(t *testing.T) {
	// Two shards that each wait for the other: sequential execution would
	// time out.
	var entered atomic.Int32
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		Shard(2, 2, func(int) {
			if entered.Add(1) == 2 {
				close(release)
			}
			select {
			case <-release:
			case <-time.After(5 * time.Second):
			}
		})
		close(done)
	}()
	select {
	case <-done:
		if entered.Load() != 2 {
			t.Fatalf("entered = %d", entered.Load())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shard did not run shards concurrently")
	}
}

func TestShardPanicPropagates(t *testing.T) {
	defer func() {
		if p := recover(); p != "shard boom" {
			t.Errorf("recovered %v, want the shard's panic value", p)
		}
	}()
	Shard(4, 8, func(i int) {
		if i == 3 {
			panic("shard boom")
		}
	})
	t.Error("panic not re-raised")
}

// Property: the per-shard partial sums reduced in shard order equal the
// serial sum, for any worker count.
func TestShardPartialSumsProperty(t *testing.T) {
	f := func(xs []int32, workersRaw, shardRaw uint8) bool {
		shards := int(shardRaw%8) + 1
		workers := int(workersRaw % 10)
		partial := make([]int64, shards)
		Shard(workers, shards, func(sh int) {
			lo := sh * len(xs) / shards
			hi := (sh + 1) * len(xs) / shards
			for _, x := range xs[lo:hi] {
				partial[sh] += int64(x)
			}
		})
		var got, want int64
		for _, p := range partial {
			got += p
		}
		for _, x := range xs {
			want += int64(x)
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkShardOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Shard(8, 64, func(int) {})
	}
}

// BenchmarkShardCrossover pins the serial-vs-parallel crossover behind
// the engine's smallNSerialCutoff: each tier sweeps one N with a
// per-user body of a few float ops (comparable to the tick kernels'
// per-user column work, ~256 users per shard) once inline (workers=1)
// and once through the goroutine fan-out. Below the crossover the
// handoff costs more than the work — the "parallel" arm loses or ties —
// so the engine runs those slots serially; the cutoff (2048) sits at
// the low end of where the fan-out starts to amortize on multicore
// boxes (on one core it never does, and the budget collapses both arms
// to the inline loop anyway).
func BenchmarkShardCrossover(b *testing.B) {
	const shardSize = 256
	for _, n := range []int{512, 1024, 2048, 4096, 16384} {
		shards := (n + shardSize - 1) / shardSize
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(i)
		}
		body := func(sh int) {
			lo, hi := sh*n/shards, (sh+1)*n/shards
			acc := 0.0
			for i := lo; i < hi; i++ {
				acc += data[i] * 1.0001
				data[i] = acc * 0.5
			}
		}
		for _, arm := range []struct {
			name    string
			workers int
		}{{"serial", 1}, {"parallel", 0}} {
			workers := arm.workers
			if workers == 0 {
				workers = shards
			}
			b.Run(fmt.Sprintf("N=%d/%s", n, arm.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					Shard(workers, shards, body)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/user")
			})
		}
	}
}
