package pool

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestShardCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		hits := make([]atomic.Int32, 100)
		Shard(workers, len(hits), func(i int) { hits[i].Add(1) })
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("workers=%d: shard %d ran %d times, want 1", workers, i, n)
			}
		}
	}
}

func TestShardZeroShards(t *testing.T) {
	called := false
	Shard(4, 0, func(int) { called = true })
	Shard(4, -3, func(int) { called = true })
	if called {
		t.Error("fn called with no shards")
	}
}

func TestShardSerialRunsInline(t *testing.T) {
	// workers <= 1 must run on the caller's goroutine in ascending order —
	// the simulator's determinism argument depends on it. Unsynchronized
	// writes to `order` would trip the race detector if a goroutine ran fn.
	var order []int
	Shard(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order = %v, want ascending", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d shards, want 5", len(order))
	}
}

func TestShardWorkersCappedAtShards(t *testing.T) {
	// More workers than shards must not deadlock or double-run shards.
	var runs atomic.Int32
	Shard(32, 3, func(int) { runs.Add(1) })
	if runs.Load() != 3 {
		t.Errorf("ran %d shards, want 3", runs.Load())
	}
}

func TestShardActuallyParallel(t *testing.T) {
	// Two shards that each wait for the other: sequential execution would
	// time out.
	var entered atomic.Int32
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		Shard(2, 2, func(int) {
			if entered.Add(1) == 2 {
				close(release)
			}
			select {
			case <-release:
			case <-time.After(5 * time.Second):
			}
		})
		close(done)
	}()
	select {
	case <-done:
		if entered.Load() != 2 {
			t.Fatalf("entered = %d", entered.Load())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shard did not run shards concurrently")
	}
}

func TestShardPanicPropagates(t *testing.T) {
	defer func() {
		if p := recover(); p != "shard boom" {
			t.Errorf("recovered %v, want the shard's panic value", p)
		}
	}()
	Shard(4, 8, func(i int) {
		if i == 3 {
			panic("shard boom")
		}
	})
	t.Error("panic not re-raised")
}

// Property: the per-shard partial sums reduced in shard order equal the
// serial sum, for any worker count.
func TestShardPartialSumsProperty(t *testing.T) {
	f := func(xs []int32, workersRaw, shardRaw uint8) bool {
		shards := int(shardRaw%8) + 1
		workers := int(workersRaw % 10)
		partial := make([]int64, shards)
		Shard(workers, shards, func(sh int) {
			lo := sh * len(xs) / shards
			hi := (sh + 1) * len(xs) / shards
			for _, x := range xs[lo:hi] {
				partial[sh] += int64(x)
			}
		})
		var got, want int64
		for _, p := range partial {
			got += p
		}
		for _, x := range xs {
			want += int64(x)
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkShardOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Shard(8, 64, func(int) {})
	}
}
