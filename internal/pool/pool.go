// Package pool provides a small, dependency-free worker pool for fanning
// independent jobs across CPUs: parameter sweeps in the experiment
// harness, per-cell simulations in multi-cell deployments, and multi-seed
// robustness runs. Results preserve submission order, errors cancel the
// remaining work, and panics in workers are converted to errors instead of
// crashing the process.
package pool

import (
	"context"
	"fmt"
	"sync"
)

// Map runs fn over every item of xs using at most workers goroutines and
// returns the results in input order. The first error (or worker panic)
// cancels the remaining jobs via the context passed to fn; already-running
// jobs finish. workers <= 0 selects the free worker budget (GOMAXPROCS
// by default).
//
// Map participates in the process-wide worker budget (see
// SetWorkerBudget) so concurrent fan-outs share the machine instead of
// each assuming it is alone. An explicit workers > 0 is honored exactly
// — callers ask for more than GOMAXPROCS when jobs block rather than
// burn CPU — and that many workers are debited from the budget, which
// starves nested elastic fan-outs (Shard, workers<=0 Map) into running
// inline rather than oversubscribing. workers <= 0 is the elastic
// request: it takes however many workers the budget has free (the
// budget defaults to GOMAXPROCS). Either way results are collected in
// input order, so the granted worker count never changes the output.
func Map[T, R any](ctx context.Context, workers int, xs []T, fn func(context.Context, T) (R, error)) ([]R, error) {
	if fn == nil {
		return nil, fmt.Errorf("pool: nil function")
	}
	n := len(xs)
	if n == 0 {
		return nil, nil
	}
	var extra int
	if workers <= 0 {
		extra = acquireExtra(n - 1) // the budget itself caps the take
	} else {
		if workers > n {
			workers = n
		}
		extra = workers - 1
		debitExtra(extra)
	}
	defer releaseExtra(extra)
	workers = 1 + extra

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Serial fast path: with no extra workers granted (budget exhausted,
	// workers=1, or a single job) the jobs run inline on the caller's
	// goroutine — no spawn, no channel sends. Semantics match the
	// fan-out path: jobs run in submission order, the first error or
	// panic stops the remaining jobs, cancellation is honored between
	// jobs (the concurrent path checks it between channel sends too).
	if extra == 0 {
		results := make([]R, n)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var err error
			func(i int) {
				defer func() {
					if p := recover(); p != nil {
						err = fmt.Errorf("pool: job %d panicked: %v", i, p)
					}
				}()
				var r R
				if r, err = fn(ctx, xs[i]); err != nil {
					err = fmt.Errorf("pool: job %d: %w", i, err)
					return
				}
				results[i] = r
			}(i)
			if err != nil {
				return nil, err
			}
		}
		return results, nil
	}

	results := make([]R, n)
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	worker := func() {
		defer wg.Done()
		for i := range jobs {
			func(i int) {
				defer func() {
					if p := recover(); p != nil {
						setErr(fmt.Errorf("pool: job %d panicked: %v", i, p))
					}
				}()
				r, err := fn(ctx, xs[i])
				if err != nil {
					setErr(fmt.Errorf("pool: job %d: %w", i, err))
					return
				}
				results[i] = r
			}(i)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}

feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// ForEach is Map without result collection.
func ForEach[T any](ctx context.Context, workers int, xs []T, fn func(context.Context, T) error) error {
	_, err := Map(ctx, workers, xs, func(ctx context.Context, x T) (struct{}, error) {
		return struct{}{}, fn(ctx, x)
	})
	return err
}

// ForEachN runs fn over the index range [0, n) with Map's scheduling,
// budget and error semantics, but without materializing an input slice
// or a result slice. It exists for hot repeated fan-outs — the fleet
// runner's per-epoch tick over hundreds of cells calls this once per
// epoch, and allocating an index slice plus a discarded result slice
// each time would be pure garbage-collector load.
func ForEachN(ctx context.Context, workers, n int, fn func(context.Context, int) error) error {
	if fn == nil {
		return fmt.Errorf("pool: nil function")
	}
	if n <= 0 {
		return nil
	}
	var extra int
	if workers <= 0 {
		extra = acquireExtra(n - 1)
	} else {
		if workers > n {
			workers = n
		}
		extra = workers - 1
		debitExtra(extra)
	}
	defer releaseExtra(extra)
	workers = 1 + extra

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Serial fast path, matching Map's: no extra workers granted means
	// jobs run inline in index order with no spawns or channel sends.
	if extra == 0 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			var err error
			func(i int) {
				defer func() {
					if p := recover(); p != nil {
						err = fmt.Errorf("pool: job %d panicked: %v", i, p)
					}
				}()
				if err = fn(ctx, i); err != nil {
					err = fmt.Errorf("pool: job %d: %w", i, err)
				}
			}(i)
			if err != nil {
				return err
			}
		}
		return nil
	}

	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	worker := func() {
		defer wg.Done()
		for i := range jobs {
			func(i int) {
				defer func() {
					if p := recover(); p != nil {
						setErr(fmt.Errorf("pool: job %d panicked: %v", i, p))
					}
				}()
				if err := fn(ctx, i); err != nil {
					setErr(fmt.Errorf("pool: job %d: %w", i, err))
				}
			}(i)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}
