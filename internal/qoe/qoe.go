// Package qoe scores streaming sessions with the standard linear
// quality-of-experience model used throughout the ABR literature (Yin et
// al., SIGCOMM 2015 — the "MPC" objective):
//
//	QoE = Σ q(R_k)  −  λ·Σ |q(R_{k+1}) − q(R_k)|  −  μ·T_rebuffer  −  μs·T_startup
//
// i.e. reward delivered quality, penalize quality flapping, stalls and
// startup delay. The paper under reproduction optimizes only the stall
// term; this package lets the extension experiments report how the
// schedulers trade the *other* QoE components too.
package qoe

import (
	"fmt"

	"jointstream/internal/cell"
	"jointstream/internal/units"
)

// Weights parameterizes the linear model. Quality enters normalized to
// the reference rate (so a session playing at RefRate scores 1 point per
// played slot before penalties).
type Weights struct {
	// RefRate normalizes quality: q(R) = R / RefRate.
	RefRate units.KBps
	// Lambda scales the quality-switch penalty.
	Lambda float64
	// Mu scales the rebuffering penalty in points per stalled second.
	Mu float64
	// MuStartup scales the startup-delay penalty in points per second.
	MuStartup float64
}

// DefaultWeights follows the common MPC parameterization: switches cost
// one quality unit, each stalled second costs as much as 3 s of
// reference-quality playback, startup half that.
func DefaultWeights(ref units.KBps) Weights {
	return Weights{RefRate: ref, Lambda: 1, Mu: 3, MuStartup: 1.5}
}

// Validate checks the weights.
func (w Weights) Validate() error {
	if w.RefRate <= 0 {
		return fmt.Errorf("qoe: non-positive reference rate %v", w.RefRate)
	}
	if w.Lambda < 0 || w.Mu < 0 || w.MuStartup < 0 {
		return fmt.Errorf("qoe: negative penalty weight")
	}
	return nil
}

// Session is the per-session input to the score.
type Session struct {
	// MeanQuality is the average selected bitrate while playing.
	MeanQuality units.KBps
	// PlayedSlots is the number of slots the session spent playing.
	PlayedSlots int
	// Switches counts quality changes.
	Switches int
	// Rebuffer is the total stall time (excluding startup).
	Rebuffer units.Seconds
	// Startup is the initial join delay.
	Startup units.Seconds
}

// Score evaluates the linear model for one session.
func (w Weights) Score(s Session) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if s.PlayedSlots < 0 || s.Switches < 0 || s.Rebuffer < 0 || s.Startup < 0 {
		return 0, fmt.Errorf("qoe: negative session component %+v", s)
	}
	quality := float64(s.MeanQuality) / float64(w.RefRate) * float64(s.PlayedSlots)
	score := quality -
		w.Lambda*float64(s.Switches) -
		w.Mu*float64(s.Rebuffer) -
		w.MuStartup*float64(s.Startup)
	return score, nil
}

// FromUser converts a simulator per-user record into a Session. The
// startup delay is approximated by the user's first-slot stall behaviour:
// the paper's model always stalls the very first slot (shards become
// playable one slot later), so one slot of the recorded rebuffering is
// attributed to startup when any rebuffering occurred.
func FromUser(u cell.UserTotals, tau units.Seconds) Session {
	startup := units.Seconds(0)
	reb := u.Rebuffer
	if reb >= tau {
		startup = tau
		reb -= tau
	}
	return Session{
		MeanQuality: u.MeanQuality(),
		PlayedSlots: u.QualitySlots,
		Switches:    u.QualitySwitches,
		Rebuffer:    reb,
		Startup:     startup,
	}
}

// MeanScore scores every user of a result and returns the average.
func MeanScore(w Weights, res *cell.Result, tau units.Seconds) (float64, error) {
	if res == nil || len(res.Users) == 0 {
		return 0, fmt.Errorf("qoe: empty result")
	}
	var sum float64
	for _, u := range res.Users {
		s, err := w.Score(FromUser(u, tau))
		if err != nil {
			return 0, err
		}
		sum += s
	}
	return sum / float64(len(res.Users)), nil
}
