package qoe

import (
	"math"
	"testing"

	"jointstream/internal/abr"
	"jointstream/internal/cell"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

func TestWeightsValidate(t *testing.T) {
	if err := DefaultWeights(450).Validate(); err != nil {
		t.Fatalf("default weights invalid: %v", err)
	}
	bad := []Weights{
		{RefRate: 0, Lambda: 1, Mu: 1},
		{RefRate: 450, Lambda: -1},
		{RefRate: 450, Mu: -1},
		{RefRate: 450, MuStartup: -1},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("bad weights %d accepted", i)
		}
	}
}

func TestScoreComponents(t *testing.T) {
	w := Weights{RefRate: 400, Lambda: 1, Mu: 3, MuStartup: 1.5}
	// 100 played slots at reference quality, 2 switches, 4 s stall, 1 s startup:
	// 100 - 2 - 12 - 1.5 = 84.5
	s := Session{MeanQuality: 400, PlayedSlots: 100, Switches: 2, Rebuffer: 4, Startup: 1}
	got, err := w.Score(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-84.5) > 1e-9 {
		t.Errorf("Score = %v, want 84.5", got)
	}
	// Higher quality scores proportionally higher.
	s.MeanQuality = 800
	got2, _ := w.Score(s)
	if math.Abs(got2-184.5) > 1e-9 {
		t.Errorf("Score(2x quality) = %v, want 184.5", got2)
	}
}

func TestScoreValidation(t *testing.T) {
	w := DefaultWeights(400)
	if _, err := w.Score(Session{PlayedSlots: -1}); err == nil {
		t.Error("negative slots accepted")
	}
	if _, err := (Weights{}).Score(Session{}); err == nil {
		t.Error("invalid weights accepted")
	}
}

func TestFromUserAttributesStartup(t *testing.T) {
	u := cell.UserTotals{Rebuffer: 5, QualitySum: 400 * 10, QualitySlots: 10, QualitySwitches: 3}
	s := FromUser(u, 1)
	if s.Startup != 1 || s.Rebuffer != 4 {
		t.Errorf("startup split wrong: %+v", s)
	}
	if s.MeanQuality != 400 || s.Switches != 3 {
		t.Errorf("components wrong: %+v", s)
	}
	// No stall at all: nothing attributed to startup.
	s2 := FromUser(cell.UserTotals{}, 1)
	if s2.Startup != 0 || s2.Rebuffer != 0 {
		t.Errorf("zero-stall split wrong: %+v", s2)
	}
}

func TestMeanScoreEndToEnd(t *testing.T) {
	cfg := cell.PaperConfig()
	cfg.Capacity = 4000
	cfg.MaxSlots = 600
	a := abr.DefaultConfig()
	cfg.ABR = &a
	wlCfg := workload.PaperDefaults(4)
	wlCfg.SizeMin = 30 * units.Megabyte
	wlCfg.SizeMax = 40 * units.Megabyte
	wlCfg.Signal.PeriodSlots = 48
	wl, err := workload.Generate(wlCfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cell.New(cfg, wl, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	w := DefaultWeights(450)
	score, err := MeanScore(w, res, cfg.Tau)
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 {
		t.Errorf("mean QoE = %v, want positive for a mostly-smooth run", score)
	}
	if _, err := MeanScore(w, &cell.Result{}, 1); err == nil {
		t.Error("empty result accepted")
	}
}

func TestMoreStallsLowerScore(t *testing.T) {
	w := DefaultWeights(400)
	base := Session{MeanQuality: 400, PlayedSlots: 100}
	s1, _ := w.Score(base)
	stalled := base
	stalled.Rebuffer = 10
	s2, _ := w.Score(stalled)
	if s2 >= s1 {
		t.Errorf("stalls did not lower QoE: %v vs %v", s2, s1)
	}
}
