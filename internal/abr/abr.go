// Package abr implements client-side adaptive-bitrate selection, the
// streaming behaviour the paper's introduction motivates (YouTube/Netflix
// players) but its model fixes to a constant required rate. The extension
// lets the evaluation ask how the gateway schedulers interact with a
// rate-adaptive player: the player picks each segment's bitrate from its
// buffer level, while the gateway decides how many units it receives.
//
// The controller is the buffer-based algorithm of Huang et al. (BBA,
// SIGCOMM 2014): below a reservoir of buffered playback the player pins
// the lowest rung; above a cushion it pins the highest; in between the
// rate rises linearly with the buffer. BBA needs no throughput prediction,
// which keeps the extension orthogonal to the gateway's own cross-layer
// machinery.
package abr

import (
	"fmt"
	"sort"

	"jointstream/internal/units"
)

// Ladder is the ascending set of available bitrates.
type Ladder []units.KBps

// NewLadder validates and sorts the rungs.
func NewLadder(rates ...units.KBps) (Ladder, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("abr: empty ladder")
	}
	l := make(Ladder, len(rates))
	copy(l, rates)
	sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	for i, r := range l {
		if r <= 0 {
			return nil, fmt.Errorf("abr: non-positive rung %v", r)
		}
		if i > 0 && l[i] == l[i-1] {
			return nil, fmt.Errorf("abr: duplicate rung %v", r)
		}
	}
	return l, nil
}

// Min and Max return the edge rungs.
func (l Ladder) Min() units.KBps { return l[0] }

// Max returns the top rung.
func (l Ladder) Max() units.KBps { return l[len(l)-1] }

// DefaultLadder mirrors a typical 2015-era mobile ladder spanning the
// paper's 300–600 KB/s demand range.
func DefaultLadder() Ladder {
	l, err := NewLadder(150, 300, 450, 600, 750)
	if err != nil {
		panic("abr: default ladder invalid: " + err.Error())
	}
	return l
}

// Config parameterizes the BBA map.
type Config struct {
	Ladder Ladder
	// ReservoirSec pins the minimum rate below this buffer level.
	ReservoirSec units.Seconds
	// CushionSec pins the maximum rate above this buffer level.
	CushionSec units.Seconds
	// MaxBufferSec caps how much playback the player will hold: requests
	// pause once the buffer reaches it (every real player bounds its
	// buffer; without the cap a fast link would prefetch the whole video
	// at startup quality before the adaptation loop can react).
	MaxBufferSec units.Seconds
}

// DefaultConfig returns BBA with a 10 s reservoir, 40 s cushion and a
// 60 s buffer cap.
func DefaultConfig() Config {
	return Config{Ladder: DefaultLadder(), ReservoirSec: 10, CushionSec: 40, MaxBufferSec: 60}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Ladder) == 0 {
		return fmt.Errorf("abr: empty ladder")
	}
	for i, r := range c.Ladder {
		if r <= 0 {
			return fmt.Errorf("abr: non-positive rung %v", r)
		}
		if i > 0 && c.Ladder[i] <= c.Ladder[i-1] {
			return fmt.Errorf("abr: ladder not strictly ascending at rung %d", i)
		}
	}
	if c.ReservoirSec < 0 || c.CushionSec <= c.ReservoirSec {
		return fmt.Errorf("abr: invalid reservoir/cushion %v/%v", c.ReservoirSec, c.CushionSec)
	}
	if c.MaxBufferSec < c.CushionSec {
		return fmt.Errorf("abr: buffer cap %v below cushion %v", c.MaxBufferSec, c.CushionSec)
	}
	return nil
}

// WantSeconds returns how much additional playback time the player is
// willing to request given its current buffer (zero at the cap).
func (c Config) WantSeconds(buffer units.Seconds) units.Seconds {
	want := c.MaxBufferSec - buffer
	if want < 0 {
		return 0
	}
	return want
}

// Controller holds one player's adaptation state.
type Controller struct {
	cfg Config
	// current is the last selected rung index; BBA's rate map plus
	// one-rung-per-decision smoothing avoids oscillation.
	current int
}

// NewController validates cfg and returns a controller starting at the
// lowest rung (conservative startup).
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// target returns the BBA map's raw rung index for a buffer level.
func (c *Controller) target(buffer units.Seconds) int {
	cfg := c.cfg
	switch {
	case buffer <= cfg.ReservoirSec:
		return 0
	case buffer >= cfg.CushionSec:
		return len(cfg.Ladder) - 1
	default:
		frac := float64(buffer-cfg.ReservoirSec) / float64(cfg.CushionSec-cfg.ReservoirSec)
		idx := int(frac * float64(len(cfg.Ladder)-1))
		if idx >= len(cfg.Ladder) {
			idx = len(cfg.Ladder) - 1
		}
		return idx
	}
}

// Pick selects the bitrate for the next slot given the current buffer
// occupancy. Transitions move at most one rung per call, the standard
// smoothing against quality flapping.
func (c *Controller) Pick(buffer units.Seconds) units.KBps {
	t := c.target(buffer)
	switch {
	case t > c.current:
		c.current++
	case t < c.current:
		c.current--
	}
	return c.cfg.Ladder[c.current]
}

// Current returns the last selected rate without advancing.
func (c *Controller) Current() units.KBps { return c.cfg.Ladder[c.current] }

// Reset returns the controller to its freshly-constructed state (the
// lowest rung). The open-system engine recycles one controller per table
// slot across admissions instead of allocating a new one per session;
// the only mutable state is the rung index, so a reset controller is
// indistinguishable from NewController's.
func (c *Controller) Reset() { c.current = 0 }
