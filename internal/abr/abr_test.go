package abr

import (
	"testing"
	"testing/quick"

	"jointstream/internal/units"
)

func TestNewLadder(t *testing.T) {
	l, err := NewLadder(600, 150, 300)
	if err != nil {
		t.Fatal(err)
	}
	if l.Min() != 150 || l.Max() != 600 {
		t.Errorf("ladder = %v", l)
	}
	if _, err := NewLadder(); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := NewLadder(100, 100); err == nil {
		t.Error("duplicate rung accepted")
	}
	if _, err := NewLadder(100, 0); err == nil {
		t.Error("zero rung accepted")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if DefaultLadder().Min() != 150 || DefaultLadder().Max() != 750 {
		t.Error("default ladder edges wrong")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Ladder: nil, ReservoirSec: 10, CushionSec: 40},
		{Ladder: Ladder{0, 100}, ReservoirSec: 10, CushionSec: 40},
		{Ladder: Ladder{100, 50}, ReservoirSec: 10, CushionSec: 40},
		{Ladder: DefaultLadder(), ReservoirSec: -1, CushionSec: 40},
		{Ladder: DefaultLadder(), ReservoirSec: 40, CushionSec: 40},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := NewController(cfg); err == nil {
			t.Errorf("NewController accepted bad config %d", i)
		}
	}
}

func TestStartsAtLowestRung(t *testing.T) {
	c, err := NewController(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Current() != 150 {
		t.Errorf("initial rate = %v, want lowest rung", c.Current())
	}
}

func TestReservoirPinsMinimum(t *testing.T) {
	c, _ := NewController(DefaultConfig())
	for i := 0; i < 10; i++ {
		if got := c.Pick(5); got != 150 {
			t.Fatalf("Pick(5s buffer) = %v, want 150", got)
		}
	}
}

func TestCushionClimbsToMaximum(t *testing.T) {
	c, _ := NewController(DefaultConfig())
	// One rung per decision: reaching the top from the bottom takes
	// len(ladder)-1 picks at a full cushion.
	var got units.KBps
	for i := 0; i < len(DefaultLadder()); i++ {
		got = c.Pick(60)
	}
	if got != 750 {
		t.Errorf("rate after climb = %v, want 750", got)
	}
}

func TestOneRungPerDecision(t *testing.T) {
	c, _ := NewController(DefaultConfig())
	first := c.Pick(60) // full cushion, but only one step up allowed
	if first != 300 {
		t.Errorf("first pick = %v, want one rung up (300)", first)
	}
	// Crash to an empty buffer: one step down at a time.
	down := c.Pick(0)
	if down != 150 {
		t.Errorf("downswitch = %v, want 150", down)
	}
}

func TestLinearRegionMonotone(t *testing.T) {
	cfg := DefaultConfig()
	c, _ := NewController(cfg)
	prevIdx := -1
	// With a steadily growing buffer, the selected rate never decreases.
	for b := units.Seconds(0); b <= 60; b += 2 {
		r := c.Pick(b)
		idx := 0
		for i, rung := range cfg.Ladder {
			if rung == r {
				idx = i
			}
		}
		if idx < prevIdx {
			t.Fatalf("rate decreased while buffer grew (buffer %v)", b)
		}
		prevIdx = idx
	}
}

// Property: Pick always returns a ladder rung, for any buffer level.
func TestPickAlwaysOnLadderProperty(t *testing.T) {
	cfg := DefaultConfig()
	onLadder := func(r units.KBps) bool {
		for _, rung := range cfg.Ladder {
			if rung == r {
				return true
			}
		}
		return false
	}
	f := func(levels []uint16) bool {
		c, err := NewController(cfg)
		if err != nil {
			return false
		}
		for _, lv := range levels {
			if !onLadder(c.Pick(units.Seconds(lv % 120))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWantSeconds(t *testing.T) {
	cfg := DefaultConfig() // cap 60 s
	if got := cfg.WantSeconds(0); got != 60 {
		t.Errorf("WantSeconds(0) = %v, want 60", got)
	}
	if got := cfg.WantSeconds(45); got != 15 {
		t.Errorf("WantSeconds(45) = %v, want 15", got)
	}
	if got := cfg.WantSeconds(60); got != 0 {
		t.Errorf("WantSeconds(60) = %v, want 0", got)
	}
	if got := cfg.WantSeconds(100); got != 0 {
		t.Errorf("WantSeconds(100) = %v, want 0 (over cap)", got)
	}
}
