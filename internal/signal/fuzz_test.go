package signal

import (
	"strings"
	"testing"
)

// FuzzReadTrace checks the trace parser never panics and that accepted
// traces respect the bounds.
func FuzzReadTrace(f *testing.F) {
	seeds := []string{
		"-80\n-85.5\n",
		"0,-60\n1,-70\n",
		"# comment\n\n-90\n",
		"x,-80\n",
		"0,-80\n2,-90\n",
		"1e308\n",
		strings.Repeat("-70\n", 100),
		"-80",
		",,\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadTrace(strings.NewReader(in), DefaultBounds)
		if err != nil {
			return
		}
		for n := 0; n < 16; n++ {
			v := tr.At(n)
			if v < DefaultBounds.Min || v > DefaultBounds.Max {
				t.Fatalf("accepted trace out of bounds at %d: %v", n, v)
			}
		}
	})
}
