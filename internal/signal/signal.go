// Package signal models per-user received signal strength (RSSI) over the
// slotted timeline of the simulator.
//
// The paper (§VI) drives its evaluation with a sine-shaped signal in
// [−110, −50] dBm plus 30 dBm white Gaussian noise, with a distinct phase
// shift per user. That model is implemented by Sine; additional generators
// (random walk, Gilbert–Elliott two-state Markov, constant, and replayed
// slices) are provided so that the algorithms can be exercised under
// qualitatively different channel dynamics.
//
// All generators are deterministic functions of their configuration and an
// explicit rng.Source, and all clamp their output to a configured dBm
// range, mirroring the bounded RSSI values a modem reports.
package signal

import (
	"fmt"
	"math"

	"jointstream/internal/rng"
	"jointstream/internal/units"
)

// Trace produces the signal strength of one user at each slot. At always
// returns a value within the trace's configured bounds. Implementations
// must be deterministic: calling At twice with the same slot returns the
// same value.
type Trace interface {
	// At returns the RSSI for slot n (n >= 0).
	At(n int) units.DBm
}

// Prewarmer is implemented by traces that memoize their stochastic
// sequence lazily. Prewarm(slots) extends the memo to cover slots
// [0, slots) with a single exactly-sized allocation, so hot callers (the
// simulator's per-slot loop) never pay the append-doubling churn of
// growing the memo one slot at a time. Prewarming never changes the
// values a trace returns — the sequence is generated in the same slot
// order either way.
type Prewarmer interface {
	Prewarm(slots int)
}

// Bounds is the inclusive dBm range to which generated signals are clamped.
type Bounds struct {
	Min, Max units.DBm
}

// DefaultBounds matches the paper's evaluation range of −110 to −50 dBm.
var DefaultBounds = Bounds{Min: -110, Max: -50}

func (b Bounds) clamp(v float64) units.DBm {
	if v < float64(b.Min) {
		return b.Min
	}
	if v > float64(b.Max) {
		return b.Max
	}
	return units.DBm(v)
}

// Mid returns the center of the range.
func (b Bounds) Mid() units.DBm { return (b.Min + b.Max) / 2 }

// Amplitude returns half the width of the range.
func (b Bounds) Amplitude() float64 { return float64(b.Max-b.Min) / 2 }

func (b Bounds) validate() error {
	if b.Max < b.Min {
		return fmt.Errorf("signal: bounds max %v < min %v", b.Max, b.Min)
	}
	return nil
}

// SineConfig parameterizes the paper's sine-plus-noise channel model.
type SineConfig struct {
	Bounds Bounds
	// PeriodSlots is the sine period in slots. The paper does not publish a
	// value; 600 slots (10 minutes at τ=1 s) gives a few full fades per
	// video session. Must be > 0.
	PeriodSlots int
	// Phase is the per-user phase shift in radians.
	Phase float64
	// NoiseStdDBm is the standard deviation of the additive white Gaussian
	// noise. The paper's "30 dBm white Gaussian noise intensity" is treated
	// as the noise amplitude; we use sigma = intensity/3 by convention so
	// ~99.7% of deviations stay within the stated intensity. Callers can
	// set any value, including 0 for a pure sine.
	NoiseStdDBm float64
}

// Sine is the paper's channel model: a clamped sine sweep across the dBm
// range with additive white Gaussian noise. The noise sequence is generated
// once (lazily, in slot order) so that At is a pure function of the slot.
type sineTrace struct {
	cfg   SineConfig
	noise *noiseSeq
	// vals memoizes the fully computed per-slot values for the prewarmed
	// prefix, so At on a prewarmed trace is an array read instead of a
	// math.Sin per call. Prewarm fills it with compute, the same
	// expression At's fallback evaluates, so the memo never changes the
	// values a trace returns.
	vals []units.DBm
}

// NewSine builds the sine channel model. An independent child of src seeds
// the trace's noise stream, so multiple traces built from one parent source
// have decorrelated noise.
func NewSine(cfg SineConfig, src *rng.Source) (Trace, error) {
	if err := cfg.Bounds.validate(); err != nil {
		return nil, err
	}
	if cfg.PeriodSlots <= 0 {
		return nil, fmt.Errorf("signal: sine period must be positive, got %d", cfg.PeriodSlots)
	}
	if cfg.NoiseStdDBm < 0 {
		return nil, fmt.Errorf("signal: negative noise stddev %v", cfg.NoiseStdDBm)
	}
	return &sineTrace{cfg: cfg, noise: newNoiseSeq(src.Split())}, nil
}

func (t *sineTrace) At(n int) units.DBm {
	if n < 0 {
		panic(fmt.Sprintf("signal: negative slot %d", n))
	}
	if n < len(t.vals) {
		return t.vals[n]
	}
	return t.compute(n)
}

// compute is the analytic evaluation shared by At's fallback and the
// Prewarm memo fill; a single code path keeps the two bitwise-identical.
func (t *sineTrace) compute(n int) units.DBm {
	b := t.cfg.Bounds
	base := float64(b.Mid()) + b.Amplitude()*math.Sin(2*math.Pi*float64(n)/float64(t.cfg.PeriodSlots)+t.cfg.Phase)
	return b.clamp(base + t.cfg.NoiseStdDBm*t.noise.at(n))
}

// noiseSeq memoizes a stream of standard normal deviates so that At(n) is
// repeatable regardless of call order.
type noiseSeq struct {
	src  *rng.Source
	vals []float64
}

func newNoiseSeq(src *rng.Source) *noiseSeq { return &noiseSeq{src: src} }

func (s *noiseSeq) at(n int) float64 {
	for len(s.vals) <= n {
		s.vals = append(s.vals, s.src.Norm())
	}
	return s.vals[n]
}

// grow extends the memo to n values with one exactly-sized allocation.
func (s *noiseSeq) grow(n int) {
	if n <= len(s.vals) {
		return
	}
	if cap(s.vals) < n {
		vals := make([]float64, len(s.vals), n)
		copy(vals, s.vals)
		s.vals = vals
	}
	s.at(n - 1)
}

// Prewarm implements Prewarmer. Beyond growing the noise memo it also
// memoizes the fully computed signal values, so every later At over the
// prewarmed prefix — simulator ticks, link-table compilation — is a pure
// array read with no trigonometry.
func (t *sineTrace) Prewarm(slots int) {
	t.noise.grow(slots)
	if slots <= len(t.vals) {
		return
	}
	vals := make([]units.DBm, slots)
	copy(vals, t.vals)
	for n := len(t.vals); n < slots; n++ {
		vals[n] = t.compute(n)
	}
	t.vals = vals
}

// RandomWalkConfig parameterizes a bounded random-walk channel, a common
// alternative mobility model: each slot the signal moves by a Gaussian
// step and reflects off the bounds.
type RandomWalkConfig struct {
	Bounds  Bounds
	Start   units.DBm
	StepStd float64 // dBm per slot
}

type randomWalkTrace struct {
	cfg  RandomWalkConfig
	src  *rng.Source
	vals []float64
}

// NewRandomWalk builds a reflected random-walk trace.
func NewRandomWalk(cfg RandomWalkConfig, src *rng.Source) (Trace, error) {
	if err := cfg.Bounds.validate(); err != nil {
		return nil, err
	}
	if cfg.StepStd < 0 {
		return nil, fmt.Errorf("signal: negative step stddev %v", cfg.StepStd)
	}
	start := float64(cfg.Bounds.clamp(float64(cfg.Start)))
	return &randomWalkTrace{cfg: cfg, src: src.Split(), vals: []float64{start}}, nil
}

func (t *randomWalkTrace) At(n int) units.DBm {
	if n < 0 {
		panic(fmt.Sprintf("signal: negative slot %d", n))
	}
	for len(t.vals) <= n {
		next := t.vals[len(t.vals)-1] + t.src.Gaussian(0, t.cfg.StepStd)
		// Reflect off the bounds instead of clamping so the walk does not
		// stick to an edge.
		lo, hi := float64(t.cfg.Bounds.Min), float64(t.cfg.Bounds.Max)
		for next < lo || next > hi {
			if next < lo {
				next = 2*lo - next
			}
			if next > hi {
				next = 2*hi - next
			}
		}
		t.vals = append(t.vals, next)
	}
	return units.DBm(t.vals[n])
}

// Prewarm implements Prewarmer.
func (t *randomWalkTrace) Prewarm(slots int) {
	if slots <= len(t.vals) {
		return
	}
	if cap(t.vals) < slots {
		vals := make([]float64, len(t.vals), slots)
		copy(vals, t.vals)
		t.vals = vals
	}
	t.At(slots - 1)
}

// GilbertElliottConfig parameterizes a two-state Markov channel: the user
// is either in a Good state (strong signal) or Bad state (weak signal),
// with per-slot transition probabilities, plus Gaussian jitter.
type GilbertElliottConfig struct {
	Bounds    Bounds
	Good, Bad units.DBm // state center levels
	PGoodToBad,
	PBadToGood float64 // per-slot transition probabilities
	JitterStd float64 // dBm
}

type gilbertElliottTrace struct {
	cfg    GilbertElliottConfig
	src    *rng.Source
	states []bool // true = good
	jitter *noiseSeq
}

// NewGilbertElliott builds the two-state Markov trace, starting in Good.
func NewGilbertElliott(cfg GilbertElliottConfig, src *rng.Source) (Trace, error) {
	if err := cfg.Bounds.validate(); err != nil {
		return nil, err
	}
	for _, p := range []float64{cfg.PGoodToBad, cfg.PBadToGood} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("signal: transition probability %v outside [0,1]", p)
		}
	}
	if cfg.JitterStd < 0 {
		return nil, fmt.Errorf("signal: negative jitter stddev %v", cfg.JitterStd)
	}
	child := src.Split()
	return &gilbertElliottTrace{
		cfg:    cfg,
		src:    child,
		states: []bool{true},
		jitter: newNoiseSeq(child.Split()),
	}, nil
}

func (t *gilbertElliottTrace) At(n int) units.DBm {
	if n < 0 {
		panic(fmt.Sprintf("signal: negative slot %d", n))
	}
	for len(t.states) <= n {
		cur := t.states[len(t.states)-1]
		if cur {
			cur = !t.src.Bool(t.cfg.PGoodToBad)
		} else {
			cur = t.src.Bool(t.cfg.PBadToGood)
		}
		t.states = append(t.states, cur)
	}
	level := t.cfg.Bad
	if t.states[n] {
		level = t.cfg.Good
	}
	return t.cfg.Bounds.clamp(float64(level) + t.cfg.JitterStd*t.jitter.at(n))
}

// Prewarm implements Prewarmer.
func (t *gilbertElliottTrace) Prewarm(slots int) {
	if slots > len(t.states) && cap(t.states) < slots {
		states := make([]bool, len(t.states), slots)
		copy(states, t.states)
		t.states = states
	}
	t.jitter.grow(slots)
	if slots > 0 {
		t.At(slots - 1)
	}
}

// Constant returns a trace pinned at the given level (clamped to b).
func Constant(level units.DBm, b Bounds) Trace {
	return constantTrace(b.clamp(float64(level)))
}

type constantTrace units.DBm

func (c constantTrace) At(int) units.DBm { return units.DBm(c) }

// FromSlice replays a recorded trace; slots beyond the end repeat the last
// value (an empty slice is invalid).
func FromSlice(vals []units.DBm) (Trace, error) {
	if len(vals) == 0 {
		return nil, fmt.Errorf("signal: empty trace")
	}
	cp := make([]units.DBm, len(vals))
	copy(cp, vals)
	return sliceTrace(cp), nil
}

type sliceTrace []units.DBm

func (s sliceTrace) At(n int) units.DBm {
	if n < 0 {
		panic(fmt.Sprintf("signal: negative slot %d", n))
	}
	if n >= len(s) {
		return s[len(s)-1]
	}
	return s[n]
}
