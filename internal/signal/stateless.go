package signal

import (
	"fmt"
	"math"

	"jointstream/internal/rng"
	"jointstream/internal/units"
)

// This file implements the memoless variant of the paper's sine channel.
// The memoizing sineTrace is the right default for figure-scale runs: a
// prewarmed memo turns every At into an array read. But the memo is
// O(horizon) per user — at fleet scale (10⁶ users × 10⁴ slots) that is
// tens of gigabytes of signal state before the simulator even starts, and
// it is exactly the O(users × horizon) footprint the tiled link tables
// exist to avoid. statelessSine trades the array read for a recompute:
// At is a pure function of (config, seed, slot) with zero retained state,
// so a million traces cost a million small structs, full stop.

// statelessSineSalt separates the trace's noise stream from other
// Hash3-keyed draw streams (forecast noise, site shadowing).
const statelessSineSalt = 0x73696E65 // "sine"

// statelessSine is the paper's sine-plus-noise channel as a pure function
// of (seed, slot): no memo, no generator state, O(1) memory regardless of
// horizon. The noise deviate for slot n is derived by keying a fresh
// SplitMix64 stream with rng.Hash3(seed, n, salt), so reads are
// deterministic and order-independent without retaining a sequence.
//
// The draws differ from the memoized sineTrace's sequential stream, so
// the two models produce different (equally valid) noise realizations;
// paper-figure workloads keep NewSine, fleet-scale workloads opt in via
// workload.Config.StatelessSignal.
type statelessSine struct {
	cfg  SineConfig
	seed uint64
}

// NewStatelessSine builds the memoless sine channel model. It validates
// the same configuration NewSine does. The returned trace deliberately
// does not implement Prewarmer: there is nothing to prewarm, which is
// what keeps a fleet-scale workload's memory independent of the horizon.
func NewStatelessSine(cfg SineConfig, seed uint64) (Trace, error) {
	if err := cfg.Bounds.validate(); err != nil {
		return nil, err
	}
	if cfg.PeriodSlots <= 0 {
		return nil, fmt.Errorf("signal: sine period must be positive, got %d", cfg.PeriodSlots)
	}
	if cfg.NoiseStdDBm < 0 {
		return nil, fmt.Errorf("signal: negative noise stddev %v", cfg.NoiseStdDBm)
	}
	return statelessSine{cfg: cfg, seed: seed}, nil
}

func (t statelessSine) At(n int) units.DBm {
	if n < 0 {
		panic(fmt.Sprintf("signal: negative slot %d", n))
	}
	b := t.cfg.Bounds
	base := float64(b.Mid()) + b.Amplitude()*math.Sin(2*math.Pi*float64(n)/float64(t.cfg.PeriodSlots)+t.cfg.Phase)
	if t.cfg.NoiseStdDBm > 0 {
		base += t.cfg.NoiseStdDBm * rng.New(rng.Hash3(t.seed, uint64(n), statelessSineSalt)).Norm()
	}
	return b.clamp(base)
}
