package signal

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"jointstream/internal/units"
)

// Trace file format: one dBm sample per line (optionally "slot,dBm" CSV
// pairs), '#' comments and blank lines ignored. This lets measured RSSI
// traces — e.g. exported from Android's TelephonyManager — drive the
// simulator in place of the synthetic models.

// WriteTrace exports the first n slots of a trace, one "slot,dBm" pair
// per line, with a descriptive header comment.
func WriteTrace(w io.Writer, tr Trace, n int) error {
	if tr == nil {
		return fmt.Errorf("signal: nil trace")
	}
	if n <= 0 {
		return fmt.Errorf("signal: non-positive sample count %d", n)
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# jointstream signal trace, %d slots, values in dBm\n", n); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(bw, "%d,%.2f\n", i, float64(tr.At(i))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace file. Lines may be either a bare dBm value or
// a "slot,dBm" pair; pairs must appear in slot order starting at 0 with
// no gaps. Values outside bounds are clamped. At least one sample is
// required.
func ReadTrace(r io.Reader, bounds Bounds) (Trace, error) {
	if err := bounds.validate(); err != nil {
		return nil, err
	}
	var vals []units.DBm
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var raw string
		if comma := strings.IndexByte(line, ','); comma >= 0 {
			slotStr := strings.TrimSpace(line[:comma])
			slot, err := strconv.Atoi(slotStr)
			if err != nil {
				return nil, fmt.Errorf("signal: line %d: bad slot %q", lineNo, slotStr)
			}
			if slot != len(vals) {
				return nil, fmt.Errorf("signal: line %d: slot %d out of order (want %d)", lineNo, slot, len(vals))
			}
			raw = strings.TrimSpace(line[comma+1:])
		} else {
			raw = line
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("signal: line %d: bad value %q", lineNo, raw)
		}
		vals = append(vals, bounds.clamp(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("signal: read trace: %w", err)
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("signal: empty trace file")
	}
	return sliceTrace(vals), nil
}
