package signal

import (
	"math"
	"testing"

	"jointstream/internal/units"
)

func statelessCfg() SineConfig {
	return SineConfig{
		Bounds:      DefaultBounds,
		PeriodSlots: 600,
		Phase:       0.7,
		NoiseStdDBm: 30,
	}
}

func TestStatelessSineDeterministicAnyOrder(t *testing.T) {
	tr, err := NewStatelessSine(statelessCfg(), 12345)
	if err != nil {
		t.Fatal(err)
	}
	// Forward pass, then a scrambled re-read: a pure function of the slot
	// must not care about query order or repetition.
	fwd := make([]units.DBm, 512)
	for n := range fwd {
		fwd[n] = tr.At(n)
	}
	for _, n := range []int{511, 0, 17, 17, 300, 1, 499} {
		if got := tr.At(n); got != fwd[n] {
			t.Fatalf("slot %d: re-read %v != first read %v", n, got, fwd[n])
		}
	}
	// A second trace with the same seed is the same function.
	tr2, err := NewStatelessSine(statelessCfg(), 12345)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 512; n++ {
		if got := tr2.At(n); got != fwd[n] {
			t.Fatalf("slot %d: rebuilt trace %v != original %v", n, got, fwd[n])
		}
	}
}

func TestStatelessSineBoundsAndSeeds(t *testing.T) {
	a, _ := NewStatelessSine(statelessCfg(), 1)
	b, _ := NewStatelessSine(statelessCfg(), 2)
	same := 0
	for n := 0; n < 1000; n++ {
		va, vb := a.At(n), b.At(n)
		for _, v := range []units.DBm{va, vb} {
			if v < DefaultBounds.Min || v > DefaultBounds.Max {
				t.Fatalf("slot %d: value %v outside bounds", n, v)
			}
		}
		if va == vb {
			same++
		}
	}
	// Distinct seeds must decorrelate; clamp saturation makes occasional
	// collisions legitimate, wholesale agreement is a broken hash.
	if same > 500 {
		t.Fatalf("seeds 1 and 2 agree on %d/1000 slots; streams not decorrelated", same)
	}
}

func TestStatelessSineZeroNoiseIsPureSine(t *testing.T) {
	cfg := statelessCfg()
	cfg.NoiseStdDBm = 0
	tr, err := NewStatelessSine(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	b := cfg.Bounds
	for n := 0; n < 100; n++ {
		want := b.clamp(float64(b.Mid()) + b.Amplitude()*math.Sin(2*math.Pi*float64(n)/float64(cfg.PeriodSlots)+cfg.Phase))
		if got := tr.At(n); got != want {
			t.Fatalf("slot %d: %v != analytic sine %v", n, got, want)
		}
	}
}

func TestStatelessSineHasNoMemo(t *testing.T) {
	tr, err := NewStatelessSine(statelessCfg(), 7)
	if err != nil {
		t.Fatal(err)
	}
	// The whole point of the stateless variant: nothing to prewarm, no
	// per-slot state to grow. Implementing Prewarmer would silently
	// reintroduce the O(horizon) memo at fleet scale.
	if _, ok := tr.(Prewarmer); ok {
		t.Fatal("stateless sine must not implement Prewarmer")
	}
}

func TestStatelessSineValidation(t *testing.T) {
	bad := statelessCfg()
	bad.PeriodSlots = 0
	if _, err := NewStatelessSine(bad, 1); err == nil {
		t.Fatal("zero period accepted")
	}
	bad = statelessCfg()
	bad.NoiseStdDBm = -1
	if _, err := NewStatelessSine(bad, 1); err == nil {
		t.Fatal("negative noise accepted")
	}
	bad = statelessCfg()
	bad.Bounds = Bounds{Min: -50, Max: -110}
	if _, err := NewStatelessSine(bad, 1); err == nil {
		t.Fatal("inverted bounds accepted")
	}
}
