package signal

import (
	"bytes"
	"strings"
	"testing"

	"jointstream/internal/rng"
	"jointstream/internal/units"
)

func TestWriteReadRoundTrip(t *testing.T) {
	tr, err := NewSine(SineConfig{Bounds: DefaultBounds, PeriodSlots: 50, NoiseStdDBm: 10}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, 100); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf, DefaultBounds)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 100; n++ {
		orig := float64(tr.At(n))
		got := float64(back.At(n))
		// Written with 2 decimals.
		if diff := orig - got; diff > 0.005 || diff < -0.005 {
			t.Fatalf("slot %d: %v vs %v", n, orig, got)
		}
	}
	// Beyond the recorded range the trace holds its last value.
	if back.At(500) != back.At(99) {
		t.Error("replayed trace does not hold last value")
	}
}

func TestWriteTraceValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil, 10); err == nil {
		t.Error("nil trace accepted")
	}
	if err := WriteTrace(&buf, Constant(-80, DefaultBounds), 0); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestReadTraceBareValues(t *testing.T) {
	in := "# comment\n-80\n-85.5\n\n-90\n"
	tr, err := ReadTrace(strings.NewReader(in), DefaultBounds)
	if err != nil {
		t.Fatal(err)
	}
	wants := []units.DBm{-80, -85.5, -90}
	for i, w := range wants {
		if got := tr.At(i); got != w {
			t.Errorf("At(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestReadTraceCSVPairs(t *testing.T) {
	in := "0,-60\n1,-70\n2,-80\n"
	tr, err := ReadTrace(strings.NewReader(in), DefaultBounds)
	if err != nil {
		t.Fatal(err)
	}
	if tr.At(1) != -70 {
		t.Errorf("At(1) = %v", tr.At(1))
	}
}

func TestReadTraceClamps(t *testing.T) {
	in := "-30\n-200\n"
	tr, err := ReadTrace(strings.NewReader(in), DefaultBounds)
	if err != nil {
		t.Fatal(err)
	}
	if tr.At(0) != -50 || tr.At(1) != -110 {
		t.Errorf("clamping failed: %v, %v", tr.At(0), tr.At(1))
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"only comments", "# nothing\n"},
		{"bad value", "abc\n"},
		{"bad slot", "x,-80\n"},
		{"out of order", "0,-80\n2,-90\n"},
		{"bad csv value", "0,notanumber\n"},
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c.in), DefaultBounds); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Invalid bounds also rejected.
	if _, err := ReadTrace(strings.NewReader("-80\n"), Bounds{Min: -50, Max: -110}); err == nil {
		t.Error("inverted bounds accepted")
	}
}
