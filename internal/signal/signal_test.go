package signal

import (
	"math"
	"testing"
	"testing/quick"

	"jointstream/internal/rng"
	"jointstream/internal/units"
)

func mustSine(t *testing.T, cfg SineConfig, seed uint64) Trace {
	t.Helper()
	tr, err := NewSine(cfg, rng.New(seed))
	if err != nil {
		t.Fatalf("NewSine: %v", err)
	}
	return tr
}

func TestSineWithinBounds(t *testing.T) {
	tr := mustSine(t, SineConfig{Bounds: DefaultBounds, PeriodSlots: 600, NoiseStdDBm: 10}, 1)
	for n := 0; n < 5000; n++ {
		v := tr.At(n)
		if v < -110 || v > -50 {
			t.Fatalf("At(%d) = %v outside [-110,-50]", n, v)
		}
	}
}

func TestSineNoNoiseIsPureSine(t *testing.T) {
	tr := mustSine(t, SineConfig{Bounds: DefaultBounds, PeriodSlots: 360}, 1)
	// At phase 0, slot 0 should be the midpoint.
	if got := tr.At(0); math.Abs(float64(got)-(-80)) > 1e-9 {
		t.Errorf("At(0) = %v, want -80", got)
	}
	// Quarter period: peak.
	if got := tr.At(90); math.Abs(float64(got)-(-50)) > 1e-9 {
		t.Errorf("At(90) = %v, want -50", got)
	}
	// Three-quarter period: trough.
	if got := tr.At(270); math.Abs(float64(got)-(-110)) > 1e-9 {
		t.Errorf("At(270) = %v, want -110", got)
	}
}

func TestSinePhaseShiftsDiffer(t *testing.T) {
	a := mustSine(t, SineConfig{Bounds: DefaultBounds, PeriodSlots: 600, Phase: 0}, 1)
	b := mustSine(t, SineConfig{Bounds: DefaultBounds, PeriodSlots: 600, Phase: math.Pi}, 1)
	if a.At(150) == b.At(150) {
		t.Error("phase-shifted traces should differ at quarter period")
	}
	// Opposite phases are mirror images around the midpoint.
	sum := float64(a.At(150)) + float64(b.At(150))
	if math.Abs(sum-(-160)) > 1e-9 {
		t.Errorf("antiphase traces should sum to 2*mid: got %v", sum)
	}
}

func TestSineRepeatable(t *testing.T) {
	tr := mustSine(t, SineConfig{Bounds: DefaultBounds, PeriodSlots: 600, NoiseStdDBm: 10}, 42)
	// Query out of order and repeat: must be a pure function of n.
	v100 := tr.At(100)
	v5 := tr.At(5)
	if tr.At(100) != v100 || tr.At(5) != v5 {
		t.Error("At is not repeatable across call orders")
	}
	tr2 := mustSine(t, SineConfig{Bounds: DefaultBounds, PeriodSlots: 600, NoiseStdDBm: 10}, 42)
	for n := 0; n < 200; n++ {
		if tr.At(n) != tr2.At(n) {
			t.Fatalf("same-seed traces diverge at slot %d", n)
		}
	}
}

func TestSineSeedsDecorrelated(t *testing.T) {
	cfg := SineConfig{Bounds: DefaultBounds, PeriodSlots: 600, NoiseStdDBm: 10}
	a := mustSine(t, cfg, 1)
	b := mustSine(t, cfg, 2)
	same := 0
	for n := 0; n < 100; n++ {
		if a.At(n) == b.At(n) {
			same++
		}
	}
	if same > 5 {
		t.Errorf("differently seeded noisy traces matched on %d/100 slots", same)
	}
}

func TestSineValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := NewSine(SineConfig{Bounds: Bounds{Min: -50, Max: -110}, PeriodSlots: 10}, src); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := NewSine(SineConfig{Bounds: DefaultBounds, PeriodSlots: 0}, src); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewSine(SineConfig{Bounds: DefaultBounds, PeriodSlots: 10, NoiseStdDBm: -1}, src); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestSineNegativeSlotPanics(t *testing.T) {
	tr := mustSine(t, SineConfig{Bounds: DefaultBounds, PeriodSlots: 600}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative slot")
		}
	}()
	tr.At(-1)
}

func TestRandomWalkWithinBounds(t *testing.T) {
	tr, err := NewRandomWalk(RandomWalkConfig{Bounds: DefaultBounds, Start: -80, StepStd: 5}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 5000; n++ {
		v := tr.At(n)
		if v < -110 || v > -50 {
			t.Fatalf("At(%d) = %v outside bounds", n, v)
		}
	}
}

func TestRandomWalkStartClamped(t *testing.T) {
	tr, err := NewRandomWalk(RandomWalkConfig{Bounds: DefaultBounds, Start: -30, StepStd: 1}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.At(0); got != -50 {
		t.Errorf("At(0) = %v, want clamped start -50", got)
	}
}

func TestRandomWalkMoves(t *testing.T) {
	tr, err := NewRandomWalk(RandomWalkConfig{Bounds: DefaultBounds, Start: -80, StepStd: 5}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	prev := tr.At(0)
	for n := 1; n < 50; n++ {
		if tr.At(n) != prev {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("random walk never moved in 50 slots")
	}
}

func TestGilbertElliottLevels(t *testing.T) {
	cfg := GilbertElliottConfig{
		Bounds: DefaultBounds, Good: -60, Bad: -100,
		PGoodToBad: 0.05, PBadToGood: 0.1,
	}
	tr, err := NewGilbertElliott(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	sawGood, sawBad := false, false
	for n := 0; n < 2000; n++ {
		v := tr.At(n)
		switch v {
		case -60:
			sawGood = true
		case -100:
			sawBad = true
		default:
			t.Fatalf("At(%d) = %v, want -60 or -100 (no jitter)", n, v)
		}
	}
	if !sawGood || !sawBad {
		t.Errorf("expected both states visited: good=%v bad=%v", sawGood, sawBad)
	}
}

func TestGilbertElliottStationaryFraction(t *testing.T) {
	cfg := GilbertElliottConfig{
		Bounds: DefaultBounds, Good: -60, Bad: -100,
		PGoodToBad: 0.1, PBadToGood: 0.1,
	}
	tr, err := NewGilbertElliott(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	good := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if tr.At(i) == -60 {
			good++
		}
	}
	frac := float64(good) / n
	// Symmetric transition probabilities give 50% stationary occupancy.
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("good-state fraction = %v, want ~0.5", frac)
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	src := rng.New(1)
	bad := GilbertElliottConfig{Bounds: DefaultBounds, Good: -60, Bad: -100, PGoodToBad: 1.5}
	if _, err := NewGilbertElliott(bad, src); err == nil {
		t.Error("probability > 1 accepted")
	}
	bad2 := GilbertElliottConfig{Bounds: DefaultBounds, Good: -60, Bad: -100, JitterStd: -2}
	if _, err := NewGilbertElliott(bad2, src); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestConstant(t *testing.T) {
	tr := Constant(-75, DefaultBounds)
	for _, n := range []int{0, 1, 99999} {
		if got := tr.At(n); got != -75 {
			t.Errorf("At(%d) = %v, want -75", n, got)
		}
	}
	clamped := Constant(-300, DefaultBounds)
	if got := clamped.At(0); got != -110 {
		t.Errorf("clamped constant = %v, want -110", got)
	}
}

func TestFromSlice(t *testing.T) {
	tr, err := FromSlice([]units.DBm{-60, -70, -80})
	if err != nil {
		t.Fatal(err)
	}
	wants := map[int]units.DBm{0: -60, 1: -70, 2: -80, 3: -80, 100: -80}
	for n, want := range wants {
		if got := tr.At(n); got != want {
			t.Errorf("At(%d) = %v, want %v", n, got, want)
		}
	}
	if _, err := FromSlice(nil); err == nil {
		t.Error("empty slice accepted")
	}
}

func TestFromSliceCopies(t *testing.T) {
	src := []units.DBm{-60, -70}
	tr, err := FromSlice(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = -110
	if got := tr.At(0); got != -60 {
		t.Errorf("trace aliased caller slice: At(0) = %v", got)
	}
}

func TestBoundsHelpers(t *testing.T) {
	b := DefaultBounds
	if b.Mid() != -80 {
		t.Errorf("Mid = %v, want -80", b.Mid())
	}
	if b.Amplitude() != 30 {
		t.Errorf("Amplitude = %v, want 30", b.Amplitude())
	}
}

// Property: every generator stays in bounds for arbitrary seeds.
func TestAllTracesBoundedProperty(t *testing.T) {
	f := func(seed uint64, phase uint8) bool {
		src := rng.New(seed)
		sine, err := NewSine(SineConfig{
			Bounds: DefaultBounds, PeriodSlots: 300,
			Phase: float64(phase), NoiseStdDBm: 30,
		}, src)
		if err != nil {
			return false
		}
		walk, err := NewRandomWalk(RandomWalkConfig{Bounds: DefaultBounds, Start: -80, StepStd: 10}, src)
		if err != nil {
			return false
		}
		ge, err := NewGilbertElliott(GilbertElliottConfig{
			Bounds: DefaultBounds, Good: -60, Bad: -100,
			PGoodToBad: 0.2, PBadToGood: 0.2, JitterStd: 15,
		}, src)
		if err != nil {
			return false
		}
		for n := 0; n < 300; n++ {
			for _, tr := range []Trace{sine, walk, ge} {
				v := tr.At(n)
				if v < -110 || v > -50 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
