// Package report renders regenerated experiment figures as a
// self-contained HTML document with inline SVG line charts — no external
// assets or JavaScript — so a full reproduction run can be inspected in a
// browser or attached to CI artifacts.
package report

import (
	"fmt"
	"html/template"
	"io"
	"math"
	"strings"

	"jointstream/internal/experiments"
)

// chart geometry (pixels).
const (
	chartW    = 640
	chartH    = 360
	padLeft   = 70
	padRight  = 24
	padTop    = 24
	padBottom = 56
)

// palette cycles through visually distinct series colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

// WriteHTML renders the figures into a single HTML page.
func WriteHTML(w io.Writer, title string, figs []*experiments.Figure) error {
	if title == "" {
		title = "jointstream experiment report"
	}
	type figView struct {
		ID    string
		Title string
		Notes []string
		SVG   template.HTML
	}
	views := make([]figView, 0, len(figs))
	for _, f := range figs {
		if f == nil {
			return fmt.Errorf("report: nil figure")
		}
		svg, err := renderSVG(f)
		if err != nil {
			return fmt.Errorf("report: %s: %w", f.ID, err)
		}
		views = append(views, figView{ID: f.ID, Title: f.Title, Notes: f.Notes, SVG: template.HTML(svg)})
	}
	return pageTmpl.Execute(w, struct {
		Title   string
		Figures []figView
	}{Title: title, Figures: views})
}

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 760px; color: #222; }
h1 { font-size: 1.4rem; }
h2 { font-size: 1.1rem; margin-top: 2.5rem; }
p.note { color: #555; font-size: 0.85rem; margin: 0.15rem 0; }
figure { margin: 0.75rem 0; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
{{range .Figures}}
<h2>{{.ID}} — {{.Title}}</h2>
{{range .Notes}}<p class="note">{{.}}</p>{{end}}
<figure>{{.SVG}}</figure>
{{end}}
</body>
</html>
`))

// renderSVG draws one figure as an SVG line chart.
func renderSVG(f *experiments.Figure) (string, error) {
	if len(f.Series) == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="200" height="40"><text x="8" y="24">(no data)</text></svg>`, nil
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("series %q: x/y length mismatch", s.Label)
		}
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return "", fmt.Errorf("no points in figure")
	}
	// Give flat data a visible band, and anchor y at 0 for magnitudes.
	if minY > 0 && minY < maxY*0.5 || minY == maxY {
		minY = math.Min(minY, 0)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	plotW := float64(chartW - padLeft - padRight)
	plotH := float64(chartH - padTop - padBottom)
	xpos := func(x float64) float64 { return float64(padLeft) + (x-minX)/(maxX-minX)*plotW }
	ypos := func(y float64) float64 { return float64(padTop) + plotH - (y-minY)/(maxY-minY)*plotH }

	var b strings.Builder
	legendRows := (len(f.Series) + 2) / 3
	height := chartH + legendRows*18
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="system-ui, sans-serif" font-size="11">`,
		chartW, height)

	// Axes and gridlines with tick labels.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="#fafafa" stroke="#ccc"/>`,
		padLeft, padTop, plotW, plotH)
	for i := 0; i <= 4; i++ {
		fy := minY + (maxY-minY)*float64(i)/4
		y := ypos(fy)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#e0e0e0"/>`,
			padLeft, y, float64(padLeft)+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" fill="#555">%s</text>`,
			padLeft-6, y+4, tickLabel(fy))
		fx := minX + (maxX-minX)*float64(i)/4
		x := xpos(fx)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" fill="#555">%s</text>`,
			x, float64(padTop)+plotH+16, tickLabel(fx))
	}
	// Axis titles.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" fill="#333">%s</text>`,
		float64(padLeft)+plotW/2, chartH-18, escape(f.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" text-anchor="middle" transform="rotate(-90 14 %.1f)" fill="#333">%s</text>`,
		float64(padTop)+plotH/2, float64(padTop)+plotH/2, escape(f.YLabel))

	// Series polylines with point markers.
	for si, s := range f.Series {
		color := palette[si%len(palette)]
		var pts strings.Builder
		for i := range s.X {
			fmt.Fprintf(&pts, "%.1f,%.1f ", xpos(s.X[i]), ypos(s.Y[i]))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`,
			strings.TrimSpace(pts.String()), color)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.4" fill="%s"/>`,
				xpos(s.X[i]), ypos(s.Y[i]), color)
		}
	}
	// Legend below the chart, three entries per row.
	for si, s := range f.Series {
		color := palette[si%len(palette)]
		lx := padLeft + (si%3)*190
		ly := chartH + (si/3)*18
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`, lx, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#333">%s</text>`, lx+17, ly+10, escape(s.Label))
	}
	b.WriteString(`</svg>`)
	return b.String(), nil
}

// tickLabel renders an axis tick value compactly.
func tickLabel(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	case v == 0:
		return "0"
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string { return template.HTMLEscapeString(s) }
