package report

import (
	"bytes"
	"strings"
	"testing"

	"jointstream/internal/experiments"
)

func sampleFigures() []*experiments.Figure {
	return []*experiments.Figure{
		{
			ID: "Fig. 1", Title: "demo", XLabel: "users", YLabel: "energy (J)",
			Notes: []string{"note one"},
			Series: []experiments.Series{
				{Label: "Default", X: []float64{20, 30, 40}, Y: []float64{200, 220, 250}},
				{Label: "EMA", X: []float64{20, 30, 40}, Y: []float64{180, 185, 190}},
			},
		},
		{
			ID: "Fig. 2", Title: "cdf", XLabel: "fairness", YLabel: "CDF",
			Series: []experiments.Series{
				{Label: "a", X: []float64{0, 0.5, 1}, Y: []float64{0, 0.5, 1}},
			},
		},
	}
}

func TestWriteHTMLStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHTML(&buf, "test report", sampleFigures()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"<title>test report</title>",
		"Fig. 1 — demo",
		"Fig. 2 — cdf",
		"note one",
		"<svg", "</svg>",
		"polyline",
		"Default", "EMA",
		"users", "energy (J)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in HTML output", want)
		}
	}
	if got := strings.Count(out, "<svg"); got != 2 {
		t.Errorf("got %d charts, want 2", got)
	}
	// Two series -> two polylines in the first chart plus one in the second.
	if got := strings.Count(out, "<polyline"); got != 3 {
		t.Errorf("got %d polylines, want 3", got)
	}
}

func TestWriteHTMLDefaultTitle(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHTML(&buf, "", sampleFigures()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "jointstream experiment report") {
		t.Error("default title missing")
	}
}

func TestWriteHTMLRejectsNilFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHTML(&buf, "t", []*experiments.Figure{nil}); err == nil {
		t.Error("nil figure accepted")
	}
}

func TestWriteHTMLRejectsMalformedSeries(t *testing.T) {
	var buf bytes.Buffer
	bad := []*experiments.Figure{{
		ID: "x", Series: []experiments.Series{{Label: "s", X: []float64{1, 2}, Y: []float64{1}}},
	}}
	if err := WriteHTML(&buf, "t", bad); err == nil {
		t.Error("mismatched series accepted")
	}
}

func TestWriteHTMLEmptyFigure(t *testing.T) {
	var buf bytes.Buffer
	figs := []*experiments.Figure{{ID: "empty", Title: "no data"}}
	if err := WriteHTML(&buf, "t", figs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(no data)") {
		t.Error("empty figure placeholder missing")
	}
}

func TestLabelsAreEscaped(t *testing.T) {
	var buf bytes.Buffer
	figs := []*experiments.Figure{{
		ID: "esc", Title: "t", XLabel: `<script>alert(1)</script>`, YLabel: "y",
		Series: []experiments.Series{
			{Label: `<b>bold</b>`, X: []float64{1, 2}, Y: []float64{1, 2}},
		},
	}}
	if err := WriteHTML(&buf, "t", figs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "<script>") || strings.Contains(out, "<b>bold") {
		t.Error("labels not escaped")
	}
	if !strings.Contains(out, "&lt;script&gt;") {
		t.Error("escaped x-label missing")
	}
}

func TestFlatSeriesRendered(t *testing.T) {
	// A constant series must not divide by zero or vanish.
	var buf bytes.Buffer
	figs := []*experiments.Figure{{
		ID: "flat", Title: "t", XLabel: "x", YLabel: "y",
		Series: []experiments.Series{
			{Label: "const", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}},
		},
	}}
	if err := WriteHTML(&buf, "t", figs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "polyline") {
		t.Error("flat series not drawn")
	}
}

func TestTickLabel(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"}, {0.05, "0.05"}, {2.5, "2.5"}, {150, "150"},
		{25000, "25k"}, {3.2e6, "3.2M"},
	}
	for _, c := range cases {
		if got := tickLabel(c.in); got != c.want {
			t.Errorf("tickLabel(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRealFigureRenders(t *testing.T) {
	r, err := experiments.NewRunner(experiments.QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	fig, err := r.Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHTML(&buf, "real", []*experiments.Figure{fig}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 4a") {
		t.Error("real figure missing from report")
	}
}
