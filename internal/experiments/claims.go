package experiments

import (
	"fmt"

	"jointstream/internal/metrics"
)

// Claim is one of the paper's quantitative headline claims, checked
// against a measured reproduction.
type Claim struct {
	// ID names the claim.
	ID string
	// Statement is the paper's wording.
	Statement string
	// PaperThreshold is the claimed minimum reduction (fraction).
	PaperThreshold float64
	// Measured is the reproduced reduction (fraction; negative means the
	// reproduction moved the other way).
	Measured float64
	// Met reports Measured ≥ PaperThreshold.
	Met bool
	// Context describes the scenario the measurement comes from.
	Context string
}

// Claims evaluates the paper's abstract/§VI headline claims at the largest
// user count of the sweep (the paper's most contended scenario):
//
//  1. "RTMA is able to reduce at least 68% rebuffering time ... compared
//     with Throttling, ON-OFF and the default strategy."
//  2. "EMA reduces at least 48% energy consumption compared with SALSA and
//     the default strategy."
//  3. "EMA achieves more than 27% energy reduction compared with
//     EStreamer."
func (r *Runner) Claims() ([]Claim, error) {
	n := r.opts.UserCounts[len(r.opts.UserCounts)-1]
	sc := scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}
	ctx := fmt.Sprintf("N=%d, avg %.0f MB, seed %d", n, r.opts.CDFAvgSizeMB, r.opts.Seed)

	def, err := r.defaultRun(sc)
	if err != nil {
		return nil, err
	}
	rtma, _, err := r.rtmaRun(sc, 1.0)
	if err != nil {
		return nil, err
	}
	thr, err := r.run(sc, throttlingBuilder())
	if err != nil {
		return nil, err
	}
	onoff, err := r.run(sc, onOffBuilder())
	if err != nil {
		return nil, err
	}
	salsa, err := r.run(sc, salsaBuilder())
	if err != nil {
		return nil, err
	}
	estr, err := r.run(sc, eStreamerBuilder())
	if err != nil {
		return nil, err
	}
	ema, _, err := r.emaRunOmegaEStreamer(n)
	if err != nil {
		return nil, err
	}

	var claims []Claim
	addReduction := func(id, statement string, threshold, baseline, got float64) error {
		red, err := metrics.Reduction(baseline, got)
		if err != nil {
			return fmt.Errorf("experiments: claim %s: %w", id, err)
		}
		claims = append(claims, Claim{
			ID: id, Statement: statement, PaperThreshold: threshold,
			Measured: red, Met: red >= threshold, Context: ctx,
		})
		return nil
	}

	rtmaReb := float64(rtma.MeanRebufferPerUser())
	for _, c := range []struct {
		id       string
		baseline float64
		vs       string
	}{
		{"rtma-vs-default", float64(def.MeanRebufferPerUser()), "Default"},
		{"rtma-vs-throttling", float64(thr.MeanRebufferPerUser()), "Throttling"},
		{"rtma-vs-onoff", float64(onoff.MeanRebufferPerUser()), "ON-OFF"},
	} {
		stmt := fmt.Sprintf("RTMA reduces at least 68%% rebuffering time vs %s", c.vs)
		if err := addReduction(c.id, stmt, 0.68, c.baseline, rtmaReb); err != nil {
			return nil, err
		}
	}

	emaEnergy := float64(ema.MeanEnergyPerUser())
	for _, c := range []struct {
		id        string
		baseline  float64
		vs        string
		threshold float64
	}{
		{"ema-vs-salsa", float64(salsa.MeanEnergyPerUser()), "SALSA", 0.48},
		{"ema-vs-default", float64(def.MeanEnergyPerUser()), "Default", 0.48},
		{"ema-vs-estreamer", float64(estr.MeanEnergyPerUser()), "EStreamer", 0.27},
	} {
		stmt := fmt.Sprintf("EMA reduces at least %.0f%% energy vs %s", c.threshold*100, c.vs)
		if err := addReduction(c.id, stmt, c.threshold, c.baseline, emaEnergy); err != nil {
			return nil, err
		}
	}
	return claims, nil
}
