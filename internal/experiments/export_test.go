package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	figs := []*Figure{
		{
			ID: "Fig. X", Title: "t", XLabel: "x", YLabel: "y",
			Notes: []string{"n1"},
			Series: []Series{
				{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}},
				{Label: "b", X: []float64{5}, Y: []float64{6}},
			},
		},
		{ID: "Fig. Y", Title: "u", XLabel: "x2", YLabel: "y2"},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, figs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("got %d figures", len(back))
	}
	if !reflect.DeepEqual(figs[0].Series, back[0].Series) {
		t.Errorf("series mismatch: %+v vs %+v", figs[0].Series, back[0].Series)
	}
	if back[0].ID != "Fig. X" || back[1].Title != "u" {
		t.Error("metadata mismatch")
	}
}

func TestWriteJSONRejectsNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Figure{nil}); err == nil {
		t.Error("nil figure accepted")
	}
}

func TestReadJSONRejectsBadInput(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	mismatch := `[{"id":"f","series":[{"label":"s","x":[1,2],"y":[1]}]}]`
	if _, err := ReadJSON(strings.NewReader(mismatch)); err == nil {
		t.Error("x/y length mismatch accepted")
	}
}

func TestJSONExportOfRealFigure(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Figure{fig}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"Fig. 4a"`) {
		t.Error("exported JSON missing figure ID")
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || len(back[0].Series) != len(fig.Series) {
		t.Error("round trip lost series")
	}
}

func TestRenderSeedStats(t *testing.T) {
	stats := []SeedStats{{
		Label: "EMA", Seeds: 5,
		RebufferMean: 12.3, RebufferStd: 1.2,
		EnergyMean: 200.5, EnergyStd: 8.7,
	}}
	var sb strings.Builder
	if err := RenderSeedStats(&sb, stats); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"EMA", "12.3 +/- 1.2", "200.5 +/- 8.7"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
