package experiments

import (
	"fmt"

	"jointstream/internal/cell"
	"jointstream/internal/oracle"
	"jointstream/internal/sched"
	"jointstream/internal/units"
)

// This file adds the lookahead sweep: the Predictive scheduler run
// against the scenario's compiled link table — exact or corrupted by
// the seeded cell.NoisyForecast error model — across a range of window
// depths K, bracketed by the offline oracle bounds. cmd/jstream-bench
// exposes it via -ext predictive.

// predictiveNoiseSeed decorrelates forecast corruption from workload
// generation: the same Options.Seed drives both, so the noise stream is
// salted before it reaches rng.Hash3.
const predictiveNoiseSeed = 0x666F7265 // "fore"

// predictiveBuilder keys a Predictive run by (K, errFrac) and builds
// the scheduler against the scenario's shared link table: errFrac 0
// reads the table exactly, anything else wraps it in the seeded noise
// model. Scenarios whose table exceeded the size cap cannot feed a
// forecast, so the builder rejects them rather than silently running
// myopic.
func (r *Runner) predictiveBuilder(k int, errFrac float64) schedBuilder {
	return schedBuilder{
		key: fmt.Sprintf("predictive(k=%d,err=%g)", k, errFrac),
		buildWith: func(sw *sharedWorkload) (sched.Scheduler, error) {
			if sw.link == nil {
				return nil, fmt.Errorf("experiments: predictive run needs a compiled link table (scenario exceeds the size cap)")
			}
			var f sched.Forecast
			if errFrac == 0 {
				f = sw.link.Forecast()
			} else {
				nf, err := cell.NewNoisyForecast(sw.link, r.opts.Seed^predictiveNoiseSeed, errFrac)
				if err != nil {
					return nil, err
				}
				f = nf
			}
			return sched.NewPredictive(sched.PredictiveConfig{Lookahead: k, Forecast: f})
		},
	}
}

// predictiveRun executes (or recalls) one Predictive simulation at the
// given lookahead and forecast-error level.
func (r *Runner) predictiveRun(sc scenario, k int, errFrac float64) (*cell.Result, error) {
	return r.run(sc, r.predictiveBuilder(k, errFrac))
}

// oracleBracket memoizes the tail-accounted oracle bounds for one
// scenario (the lookahead sweep evaluates one bracket against many K).
func (r *Runner) oracleBracket(sc scenario) (oracle.Bounds, error) {
	r.oracleMu.Lock()
	defer r.oracleMu.Unlock()
	key := fmt.Sprintf("n=%d|mb=%g", sc.users, sc.avgSizeMB)
	if b, ok := r.oracleCache[key]; ok {
		return b, nil
	}
	sw, err := r.workloadFor(sc)
	if err != nil {
		return oracle.Bounds{}, err
	}
	cfg := oracle.Config{
		Tau:         r.opts.Cell.Tau,
		Unit:        r.opts.Cell.Unit,
		Capacity:    r.opts.Cell.Capacity,
		Horizon:     r.opts.Cell.MaxSlots,
		Radio:       r.opts.Cell.Radio,
		RRC:         r.opts.Cell.RRC,
		AccountTail: true,
	}
	if sw.link != nil {
		cfg.Link = sw.link
	}
	b, err := oracle.Compute(cfg, sw.sessions)
	if err != nil {
		return oracle.Bounds{}, err
	}
	if r.oracleCache == nil {
		r.oracleCache = make(map[string]oracle.Bounds)
	}
	r.oracleCache[key] = b
	return b, nil
}

// predictiveLookaheads is the K axis of the sweep; the sentinel -1
// renders as the full horizon ("∞" — the forecast truncates at the
// table edge anyway).
var predictiveLookaheads = []int{0, 1, 5, 20, -1}

// predictiveErrLevels are the forecast corruption levels swept beside
// the exact table (relative error of the noise model).
var predictiveErrLevels = []float64{0, 0.3}

// ExtPredictive sweeps the Predictive scheduler's lookahead K at the
// CDF scenario, at the exact table and at each corrupted error level,
// against the RTMA (α=1) and EMA (β=1) baselines and the tail-accounted
// oracle bracket. K=0 is the myopic Default baseline by construction
// (the differential suite pins it byte-for-byte), so the leftmost point
// doubles as the Default reference.
func (r *Runner) ExtPredictive() (*Figure, error) {
	sc := scenario{users: r.opts.CDFUsers, avgSizeMB: r.opts.CDFAvgSizeMB}
	fullK := r.opts.Cell.MaxSlots
	fig := &Figure{
		ID:     "Ext. Predictive",
		Title:  "Lookahead-K predictive scheduling vs oracle bracket",
		XLabel: fmt.Sprintf("lookahead K (slots; %d = full horizon)", fullK),
		YLabel: "value per user",
		Notes: []string{
			fmt.Sprintf("N=%d users, avg video %.0f MB", sc.users, sc.avgSizeMB),
			"energy series are total (transmission + RRC tail) J/user",
			"oracle lower = capacity-relaxed transmission-only optimum; oracle upper = omniscient plan incl. replayed tail",
		},
	}

	bounds, err := r.oracleBracket(sc)
	if err != nil {
		return nil, err
	}
	if !bounds.Feasible {
		fig.Notes = append(fig.Notes, fmt.Sprintf("omniscient schedule infeasible within horizon %d", r.opts.Cell.MaxSlots))
	}
	rtma, _, err := r.rtmaRun(sc, 1.0)
	if err != nil {
		return nil, err
	}
	ema, _, err := r.emaRun(sc, 1.0)
	if err != nil {
		return nil, err
	}

	users := float64(sc.users)
	perUserJ := func(mj units.MJ) float64 { return float64(mj) / 1000 / users }
	xs := make([]float64, len(predictiveLookaheads))
	ks := make([]int, len(predictiveLookaheads))
	for i, k := range predictiveLookaheads {
		if k < 0 {
			k = fullK
		}
		ks[i] = k
		xs[i] = float64(k)
	}
	flat := func(label string, y float64) Series {
		s := Series{Label: label, X: xs, Y: make([]float64, len(xs))}
		for i := range s.Y {
			s.Y[i] = y
		}
		return s
	}
	fig.Series = append(fig.Series,
		flat("oracle lower (J)", perUserJ(bounds.LowerMJ)),
		flat("oracle upper (J)", perUserJ(bounds.UpperMJ)),
		flat("RTMA(alpha=1) energy (J)", float64(rtma.MeanEnergyPerUser())/1000),
		flat("EMA(beta=1) energy (J)", float64(ema.MeanEnergyPerUser())/1000),
	)

	for _, errFrac := range predictiveErrLevels {
		en := Series{Label: fmt.Sprintf("Predictive(err=%g) energy (J)", errFrac), X: xs}
		reb := Series{Label: fmt.Sprintf("Predictive(err=%g) rebuffer (s)", errFrac), X: xs}
		for i, k := range ks {
			res, err := r.predictiveRun(sc, k, errFrac)
			if err != nil {
				return nil, err
			}
			en.Y = append(en.Y, float64(res.MeanEnergyPerUser())/1000)
			reb.Y = append(reb.Y, float64(res.MeanRebufferPerUser()))
			if errFrac == 0 {
				var trans units.MJ
				for _, u := range res.Users {
					trans += u.TransEnergy
				}
				gap := 0.0
				if bounds.LowerMJ > 0 {
					gap = float64(trans-bounds.LowerMJ) / float64(bounds.LowerMJ)
				}
				fig.Notes = append(fig.Notes, fmt.Sprintf("K=%d: oracle gap %.1f%% (transmission energy vs lower bound)", predictiveK(predictiveLookaheads[i], fullK), gap*100))
			}
		}
		fig.Series = append(fig.Series, en, reb)
	}
	return fig, nil
}

// predictiveK renders the sweep's K axis value (the -1 sentinel is the
// full horizon).
func predictiveK(k, fullK int) int {
	if k < 0 {
		return fullK
	}
	return k
}
