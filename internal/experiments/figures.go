package experiments

import (
	"fmt"

	"jointstream/internal/cell"
)

// cdfPoints is the resolution of regenerated CDF curves.
const cdfPoints = 21

// cdfScenario is the N=40, 350 MB setting shared by Figs. 2, 3, 6, 7.
func (r *Runner) cdfScenario() scenario {
	return scenario{users: r.opts.CDFUsers, avgSizeMB: r.opts.CDFAvgSizeMB, recordCDF: true}
}

// Fig2 regenerates Figure 2: CDF of the per-slot Jain fairness index,
// RTMA (α = 1) versus Default, at the CDF scenario. The paper reports
// RTMA above 0.7 for more than 90% of slots while Default sits below 0.2
// for about half the slots.
func (r *Runner) Fig2() (*Figure, error) {
	sc := r.cdfScenario()
	def, err := r.defaultRun(sc)
	if err != nil {
		return nil, err
	}
	rtma, rt, err := r.rtmaRun(sc, 1.0)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Fig. 2",
		Title:  "Fairness CDF (RTMA vs Default)",
		XLabel: "Jain fairness index",
		YLabel: "CDF",
		Notes: []string{
			fmt.Sprintf("N=%d users, avg video %.0f MB", sc.users, sc.avgSizeMB),
			fmt.Sprintf("RTMA admission threshold phi=%.1f dBm", float64(rt.Threshold())),
		},
	}
	for _, p := range []struct {
		label string
		res   *cell.Result
	}{{"Default", def}, {"RTMA", rtma}} {
		s, err := cdfSeries(p.label, fairnessSamples(p.res), cdfPoints)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig3 regenerates Figure 3: CDF of per-user per-slot rebuffering time
// c_i(n), RTMA (α = 1) versus Default. The paper reports ~90% of RTMA
// slots under 1.5 s while >20% of Default users suffer >11 s stalls.
func (r *Runner) Fig3() (*Figure, error) {
	sc := r.cdfScenario()
	def, err := r.defaultRun(sc)
	if err != nil {
		return nil, err
	}
	rtma, _, err := r.rtmaRun(sc, 1.0)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Fig. 3",
		Title:  "Rebuffering time CDF (RTMA vs Default)",
		XLabel: "per-user rebuffering time in a slot window (s)",
		YLabel: "CDF",
		Notes:  []string{fmt.Sprintf("N=%d users, avg video %.0f MB", sc.users, sc.avgSizeMB)},
	}
	for _, p := range []struct {
		label string
		res   *cell.Result
	}{{"Default", def}, {"RTMA", rtma}} {
		// Aggregate each user's rebuffering over non-overlapping 10-slot
		// windows: per-slot stalls are mostly 0-or-τ, so windows expose
		// the distribution's tail the way the paper's Fig. 3 axis (0-11 s)
		// does.
		sample := windowedSums(p.res.RebufferSamples, 10)
		s, err := cdfSeries(p.label, sample, cdfPoints)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// windowedSums sums each user's per-slot series over fixed windows.
func windowedSums(perUser [][]float64, window int) []float64 {
	var out []float64
	for _, row := range perUser {
		for start := 0; start < len(row); start += window {
			end := start + window
			if end > len(row) {
				end = len(row)
			}
			sum := 0.0
			for _, v := range row[start:end] {
				sum += v
			}
			out = append(out, sum)
		}
	}
	return out
}

// Fig4a regenerates Figure 4(a): average total rebuffering time per user
// versus user number, Default against RTMA with α ∈ {0.8, 1, 1.2}.
func (r *Runner) Fig4a() (*Figure, error) {
	fig := &Figure{
		ID:     "Fig. 4a",
		Title:  "Rebuffering vs user number (RTMA alpha sweep)",
		XLabel: "users",
		YLabel: "total rebuffering time per user (s)",
	}
	def := Series{Label: "Default"}
	for _, n := range r.opts.UserCounts {
		res, err := r.defaultRun(scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB})
		if err != nil {
			return nil, err
		}
		def.X = append(def.X, float64(n))
		def.Y = append(def.Y, float64(res.MeanRebufferPerUser()))
	}
	fig.Series = append(fig.Series, def)
	for _, a := range r.opts.Alphas {
		s := Series{Label: fmt.Sprintf("RTMA alpha=%.1f", a)}
		for _, n := range r.opts.UserCounts {
			res, _, err := r.rtmaRun(scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}, a)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, float64(res.MeanRebufferPerUser()))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig4b regenerates Figure 4(b): rebuffering versus average video size.
func (r *Runner) Fig4b() (*Figure, error) {
	fig := &Figure{
		ID:     "Fig. 4b",
		Title:  "Rebuffering vs data amount (RTMA alpha sweep)",
		XLabel: "average video size (MB)",
		YLabel: "total rebuffering time per user (s)",
	}
	users := r.opts.CDFUsers
	def := Series{Label: "Default"}
	for _, mb := range r.opts.AvgSizesMB {
		res, err := r.defaultRun(scenario{users: users, avgSizeMB: mb})
		if err != nil {
			return nil, err
		}
		def.X = append(def.X, mb)
		def.Y = append(def.Y, float64(res.MeanRebufferPerUser()))
	}
	fig.Series = append(fig.Series, def)
	for _, a := range r.opts.Alphas {
		s := Series{Label: fmt.Sprintf("RTMA alpha=%.1f", a)}
		for _, mb := range r.opts.AvgSizesMB {
			res, _, err := r.rtmaRun(scenario{users: users, avgSizeMB: mb}, a)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, mb)
			s.Y = append(s.Y, float64(res.MeanRebufferPerUser()))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig5a regenerates Figure 5(a): average rebuffering per user versus user
// number for Default, Throttling, ON-OFF and RTMA (Φ = E_Default).
func (r *Runner) Fig5a() (*Figure, error) {
	fig := &Figure{
		ID:     "Fig. 5a",
		Title:  "Rebuffering comparison (RTMA vs baselines)",
		XLabel: "users",
		YLabel: "total rebuffering time per user (s)",
	}
	builders := []schedBuilder{
		defaultBuilder(),
		throttlingBuilder(),
		onOffBuilder(),
	}
	labels := []string{"Default", "Throttling", "ON-OFF"}
	for bi, sb := range builders {
		s := Series{Label: labels[bi]}
		for _, n := range r.opts.UserCounts {
			res, err := r.run(scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}, sb)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, float64(res.MeanRebufferPerUser()))
		}
		fig.Series = append(fig.Series, s)
	}
	s := Series{Label: "RTMA"}
	for _, n := range r.opts.UserCounts {
		res, _, err := r.rtmaRun(scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}, 1.0)
		if err != nil {
			return nil, err
		}
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, float64(res.MeanRebufferPerUser()))
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// Fig5b regenerates Figure 5(b): average energy per user for the same four
// schedulers, with a separate "(tail)" series mirroring the paper's black
// tail-energy bars.
func (r *Runner) Fig5b() (*Figure, error) {
	fig := &Figure{
		ID:     "Fig. 5b",
		Title:  "Energy comparison (RTMA vs baselines)",
		XLabel: "users",
		YLabel: "total energy per user (J)",
	}
	type row struct {
		label string
		get   func(n int) (*cell.Result, error)
	}
	rows := []row{
		{"Default", func(n int) (*cell.Result, error) {
			return r.defaultRun(scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB})
		}},
		{"Throttling", func(n int) (*cell.Result, error) {
			return r.run(scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}, throttlingBuilder())
		}},
		{"ON-OFF", func(n int) (*cell.Result, error) {
			return r.run(scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}, onOffBuilder())
		}},
		{"RTMA", func(n int) (*cell.Result, error) {
			res, _, err := r.rtmaRun(scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}, 1.0)
			return res, err
		}},
	}
	for _, rw := range rows {
		total := Series{Label: rw.label}
		tail := Series{Label: rw.label + " (tail)"}
		for _, n := range r.opts.UserCounts {
			res, err := rw.get(n)
			if err != nil {
				return nil, err
			}
			total.X = append(total.X, float64(n))
			total.Y = append(total.Y, float64(res.MeanEnergyPerUser())/1000)
			tail.X = append(tail.X, float64(n))
			tail.Y = append(tail.Y, float64(res.TotalTailEnergy())/1000/float64(n))
		}
		fig.Series = append(fig.Series, total, tail)
	}
	return fig, nil
}
