package experiments

import (
	"fmt"

	"jointstream/internal/cell"
	"jointstream/internal/sched"
)

// cdfPoints is the resolution of regenerated CDF curves.
const cdfPoints = 21

// cdfScenario is the N=40, 350 MB setting shared by Figs. 2, 3, 6, 7.
func (r *Runner) cdfScenario() scenario {
	return scenario{users: r.opts.CDFUsers, avgSizeMB: r.opts.CDFAvgSizeMB, recordCDF: true}
}

// cdfRTMAPair runs the Fig. 2/3 sample pair — Default and RTMA (α = 1)
// at the CDF scenario — as one lockstep arm group over the shared
// workload, after deriving RTMA's budget from the plain (non-recording)
// Default reference run. The rebuilt RTMA instance only exposes the
// threshold for figure notes; the simulation used the batched arm.
func (r *Runner) cdfRTMAPair() (def, rtma *cell.Result, rt *sched.RTMA, err error) {
	sc := r.cdfScenario()
	base, err := r.defaultRun(scenario{users: sc.users, avgSizeMB: sc.avgSizeMB})
	if err != nil {
		return nil, nil, nil, err
	}
	budget, err := sched.BudgetForAlpha(base.TransEnergyPerActiveSlot(), 1.0)
	if err != nil {
		return nil, nil, nil, err
	}
	sb := r.rtmaBuilderFor(1.0, budget)
	rs, err := r.runBatch(sc, []schedBuilder{defaultBuilder(), sb})
	if err != nil {
		return nil, nil, nil, err
	}
	s, err := sb.build()
	if err != nil {
		return nil, nil, nil, err
	}
	return rs[0], rs[1], s.(*sched.RTMA), nil
}

// Fig2 regenerates Figure 2: CDF of the per-slot Jain fairness index,
// RTMA (α = 1) versus Default, at the CDF scenario. The paper reports
// RTMA above 0.7 for more than 90% of slots while Default sits below 0.2
// for about half the slots.
func (r *Runner) Fig2() (*Figure, error) {
	sc := r.cdfScenario()
	def, rtma, rt, err := r.cdfRTMAPair()
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Fig. 2",
		Title:  "Fairness CDF (RTMA vs Default)",
		XLabel: "Jain fairness index",
		YLabel: "CDF",
		Notes: []string{
			fmt.Sprintf("N=%d users, avg video %.0f MB", sc.users, sc.avgSizeMB),
			fmt.Sprintf("RTMA admission threshold phi=%.1f dBm", float64(rt.Threshold())),
		},
	}
	for _, p := range []struct {
		label string
		res   *cell.Result
	}{{"Default", def}, {"RTMA", rtma}} {
		s, err := cdfSeries(p.label, fairnessSamples(p.res), cdfPoints)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig3 regenerates Figure 3: CDF of per-user per-slot rebuffering time
// c_i(n), RTMA (α = 1) versus Default. The paper reports ~90% of RTMA
// slots under 1.5 s while >20% of Default users suffer >11 s stalls.
func (r *Runner) Fig3() (*Figure, error) {
	sc := r.cdfScenario()
	def, rtma, _, err := r.cdfRTMAPair()
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Fig. 3",
		Title:  "Rebuffering time CDF (RTMA vs Default)",
		XLabel: "per-user rebuffering time in a slot window (s)",
		YLabel: "CDF",
		Notes:  []string{fmt.Sprintf("N=%d users, avg video %.0f MB", sc.users, sc.avgSizeMB)},
	}
	for _, p := range []struct {
		label string
		res   *cell.Result
	}{{"Default", def}, {"RTMA", rtma}} {
		// Aggregate each user's rebuffering over non-overlapping 10-slot
		// windows: per-slot stalls are mostly 0-or-τ, so windows expose
		// the distribution's tail the way the paper's Fig. 3 axis (0-11 s)
		// does.
		sample := windowedSums(p.res.RebufferSamples, 10)
		s, err := cdfSeries(p.label, sample, cdfPoints)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// windowedSums sums each user's per-slot series over fixed windows.
func windowedSums(perUser [][]float64, window int) []float64 {
	var out []float64
	for _, row := range perUser {
		for start := 0; start < len(row); start += window {
			end := start + window
			if end > len(row) {
				end = len(row)
			}
			sum := 0.0
			for _, v := range row[start:end] {
				sum += v
			}
			out = append(out, sum)
		}
	}
	return out
}

// Fig4a regenerates Figure 4(a): average total rebuffering time per user
// versus user number, Default against RTMA with α ∈ {0.8, 1, 1.2}.
func (r *Runner) Fig4a() (*Figure, error) {
	fig := &Figure{
		ID:     "Fig. 4a",
		Title:  "Rebuffering vs user number (RTMA alpha sweep)",
		XLabel: "users",
		YLabel: "total rebuffering time per user (s)",
	}
	def := Series{Label: "Default"}
	byAlpha := make([]Series, len(r.opts.Alphas))
	for i, a := range r.opts.Alphas {
		byAlpha[i] = Series{Label: fmt.Sprintf("RTMA alpha=%.1f", a)}
	}
	// Per scenario: the Default reference first (it sets every alpha's
	// budget), then all alpha arms as one lockstep group.
	for _, n := range r.opts.UserCounts {
		sc := scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}
		res, err := r.defaultRun(sc)
		if err != nil {
			return nil, err
		}
		def.X = append(def.X, float64(n))
		def.Y = append(def.Y, float64(res.MeanRebufferPerUser()))
		rs, err := r.rtmaBatch(sc, r.opts.Alphas)
		if err != nil {
			return nil, err
		}
		for i, ar := range rs {
			byAlpha[i].X = append(byAlpha[i].X, float64(n))
			byAlpha[i].Y = append(byAlpha[i].Y, float64(ar.MeanRebufferPerUser()))
		}
	}
	fig.Series = append(fig.Series, def)
	fig.Series = append(fig.Series, byAlpha...)
	return fig, nil
}

// Fig4b regenerates Figure 4(b): rebuffering versus average video size.
func (r *Runner) Fig4b() (*Figure, error) {
	fig := &Figure{
		ID:     "Fig. 4b",
		Title:  "Rebuffering vs data amount (RTMA alpha sweep)",
		XLabel: "average video size (MB)",
		YLabel: "total rebuffering time per user (s)",
	}
	users := r.opts.CDFUsers
	def := Series{Label: "Default"}
	byAlpha := make([]Series, len(r.opts.Alphas))
	for i, a := range r.opts.Alphas {
		byAlpha[i] = Series{Label: fmt.Sprintf("RTMA alpha=%.1f", a)}
	}
	for _, mb := range r.opts.AvgSizesMB {
		sc := scenario{users: users, avgSizeMB: mb}
		res, err := r.defaultRun(sc)
		if err != nil {
			return nil, err
		}
		def.X = append(def.X, mb)
		def.Y = append(def.Y, float64(res.MeanRebufferPerUser()))
		rs, err := r.rtmaBatch(sc, r.opts.Alphas)
		if err != nil {
			return nil, err
		}
		for i, ar := range rs {
			byAlpha[i].X = append(byAlpha[i].X, mb)
			byAlpha[i].Y = append(byAlpha[i].Y, float64(ar.MeanRebufferPerUser()))
		}
	}
	fig.Series = append(fig.Series, def)
	fig.Series = append(fig.Series, byAlpha...)
	return fig, nil
}

// Fig5a regenerates Figure 5(a): average rebuffering per user versus user
// number for Default, Throttling, ON-OFF and RTMA (Φ = E_Default).
func (r *Runner) Fig5a() (*Figure, error) {
	fig := &Figure{
		ID:     "Fig. 5a",
		Title:  "Rebuffering comparison (RTMA vs baselines)",
		XLabel: "users",
		YLabel: "total rebuffering time per user (s)",
	}
	builders := []schedBuilder{
		defaultBuilder(),
		throttlingBuilder(),
		onOffBuilder(),
	}
	labels := []string{"Default", "Throttling", "ON-OFF"}
	series := make([]Series, len(builders))
	for i, l := range labels {
		series[i] = Series{Label: l}
	}
	// All three independent baselines of a scenario run as one lockstep
	// group over its shared workload.
	for _, n := range r.opts.UserCounts {
		rs, err := r.runBatch(scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}, builders)
		if err != nil {
			return nil, err
		}
		for i, res := range rs {
			series[i].X = append(series[i].X, float64(n))
			series[i].Y = append(series[i].Y, float64(res.MeanRebufferPerUser()))
		}
	}
	fig.Series = append(fig.Series, series...)
	s := Series{Label: "RTMA"}
	for _, n := range r.opts.UserCounts {
		res, _, err := r.rtmaRun(scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}, 1.0)
		if err != nil {
			return nil, err
		}
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, float64(res.MeanRebufferPerUser()))
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// Fig5b regenerates Figure 5(b): average energy per user for the same four
// schedulers, with a separate "(tail)" series mirroring the paper's black
// tail-energy bars.
func (r *Runner) Fig5b() (*Figure, error) {
	fig := &Figure{
		ID:     "Fig. 5b",
		Title:  "Energy comparison (RTMA vs baselines)",
		XLabel: "users",
		YLabel: "total energy per user (J)",
	}
	type row struct {
		label string
		get   func(n int) (*cell.Result, error)
	}
	rows := []row{
		{"Default", func(n int) (*cell.Result, error) {
			return r.defaultRun(scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB})
		}},
		{"Throttling", func(n int) (*cell.Result, error) {
			return r.run(scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}, throttlingBuilder())
		}},
		{"ON-OFF", func(n int) (*cell.Result, error) {
			return r.run(scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}, onOffBuilder())
		}},
		{"RTMA", func(n int) (*cell.Result, error) {
			res, _, err := r.rtmaRun(scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}, 1.0)
			return res, err
		}},
	}
	for _, rw := range rows {
		total := Series{Label: rw.label}
		tail := Series{Label: rw.label + " (tail)"}
		for _, n := range r.opts.UserCounts {
			res, err := rw.get(n)
			if err != nil {
				return nil, err
			}
			total.X = append(total.X, float64(n))
			total.Y = append(total.Y, float64(res.MeanEnergyPerUser())/1000)
			tail.X = append(tail.X, float64(n))
			tail.Y = append(tail.Y, float64(res.TotalTailEnergy())/1000/float64(n))
		}
		fig.Series = append(fig.Series, total, tail)
	}
	return fig, nil
}
