package experiments

import (
	"fmt"
	"testing"
)

func TestExtLTE(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.ExtLTE()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 4) // (3G, LTE) x (rebuffer, energy)
	// The paper's §VI claim is "similar results in LTE networks": the
	// algorithms keep their qualitative advantage. Check RTMA still cuts
	// rebuffering versus Default under the LTE models (series Y order is
	// [Default, RTMA, EMA]).
	for _, s := range fig.Series {
		if s.Label == "LTE rebuffer" {
			if s.Y[1] >= s.Y[0] {
				t.Errorf("LTE: RTMA rebuffering %v not below Default %v", s.Y[1], s.Y[0])
			}
		}
	}
}

func TestExtVBR(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.ExtVBR()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
	if fig.ID != "Ext. VBR" {
		t.Errorf("ID = %q", fig.ID)
	}
}

func TestExtArrivals(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.ExtArrivals()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
}

func TestExtFastDormancy(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.ExtFastDormancy()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
	normal, fd := fig.Series[0], fig.Series[1]
	// Fast dormancy must never increase any scheduler's energy, and must
	// strictly help at least one of the gap-prone schedulers (ON-OFF or
	// EStreamer, indices 1 and 2).
	helped := false
	for i := range normal.Y {
		if fd.Y[i] > normal.Y[i]*1.0001 {
			t.Errorf("fast dormancy increased energy for algorithm %d: %v > %v", i, fd.Y[i], normal.Y[i])
		}
		if (i == 1 || i == 2) && fd.Y[i] < normal.Y[i]*0.999 {
			helped = true
		}
	}
	if !helped {
		t.Error("fast dormancy helped neither ON-OFF nor EStreamer")
	}
}

func TestExtOracleGap(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.ExtOracleGap()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 3)
	lower, ema, upper := fig.Series[0], fig.Series[1], fig.Series[2]
	for i := range lower.Y {
		if lower.Y[i] > upper.Y[i]+1e-9 {
			t.Errorf("point %d: oracle lower %v above upper %v", i, lower.Y[i], upper.Y[i])
		}
		// EMA is an online policy: it cannot beat the offline lower bound.
		if ema.Y[i] < lower.Y[i]-1e-9 {
			t.Errorf("point %d: EMA %v below the oracle lower bound %v", i, ema.Y[i], lower.Y[i])
		}
	}
}

func TestExtMultiSeed(t *testing.T) {
	r := quickRunner(t)
	stats, err := r.ExtMultiSeed(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("got %d rows", len(stats))
	}
	labels := map[string]bool{}
	for _, st := range stats {
		labels[st.Label] = true
		if st.Seeds != 3 {
			t.Errorf("%s: seeds = %d", st.Label, st.Seeds)
		}
		if st.RebufferMean < 0 || st.EnergyMean <= 0 {
			t.Errorf("%s: implausible means %+v", st.Label, st)
		}
		if st.RebufferStd < 0 || st.EnergyStd < 0 {
			t.Errorf("%s: negative std %+v", st.Label, st)
		}
	}
	for _, want := range []string{"Default", "RTMA", "EMA"} {
		if !labels[want] {
			t.Errorf("missing %s row", want)
		}
	}
}

func TestExtMultiSeedValidation(t *testing.T) {
	r := quickRunner(t)
	if _, err := r.ExtMultiSeed(1); err == nil {
		t.Error("single seed accepted")
	}
}

func TestExtABR(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.ExtABR()
	if err != nil {
		t.Fatal(err)
	}
	// Not checkFigure: the QoE series may legitimately go negative under
	// heavy stalling, which checkFigure treats as malformed.
	if len(fig.Series) != 4 {
		t.Fatalf("got %d series, want 4", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != 3 || len(s.Y) != 3 {
			t.Fatalf("%s: bad series lengths", s.Label)
		}
	}
	quality := fig.Series[2]
	for i, q := range quality.Y {
		if q < 150 || q > 750 {
			t.Errorf("algorithm %d mean quality %v outside the ladder", i, q)
		}
	}
}

func TestExtAdaptive(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.ExtAdaptive()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 4)
	// Both variants must save energy versus the Default reference at the
	// largest quick-scale N.
	def, err := r.defaultRun(scenario{users: r.opts.UserCounts[len(r.opts.UserCounts)-1], avgSizeMB: r.opts.CDFAvgSizeMB})
	if err != nil {
		t.Fatal(err)
	}
	defEn := float64(def.MeanEnergyPerUser()) / 1000
	for _, s := range fig.Series {
		if s.Label == "EMA energy (J)" || s.Label == "AdaptiveEMA energy (J)" {
			last := s.Y[len(s.Y)-1]
			if last >= defEn {
				t.Errorf("%s = %v not below Default %v", s.Label, last, defEn)
			}
		}
	}
}

func TestExtPredictive(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.ExtPredictive()
	if err != nil {
		t.Fatal(err)
	}
	// 4 flat reference series + (energy, rebuffer) per error level.
	checkFigure(t, fig, 4+2*len(predictiveErrLevels))
	byLabel := map[string]Series{}
	for _, s := range fig.Series {
		byLabel[s.Label] = s
	}
	lower, upper := byLabel["oracle lower (J)"], byLabel["oracle upper (J)"]
	if lower.Y[0] > upper.Y[0]+1e-9 {
		t.Errorf("oracle lower %v above upper %v", lower.Y[0], upper.Y[0])
	}
	// K=0 is the myopic Default baseline by construction: the leftmost
	// exact-forecast point must reproduce the Default run exactly, at
	// every error level (a zero-depth window reads no forecast at all).
	def, err := r.defaultRun(scenario{users: r.opts.CDFUsers, avgSizeMB: r.opts.CDFAvgSizeMB})
	if err != nil {
		t.Fatal(err)
	}
	defEn := float64(def.MeanEnergyPerUser()) / 1000
	for _, errFrac := range predictiveErrLevels {
		en := byLabel[fmt.Sprintf("Predictive(err=%g) energy (J)", errFrac)]
		if en.Y[0] != defEn {
			t.Errorf("err=%g: K=0 energy %v != Default %v", errFrac, en.Y[0], defEn)
		}
		// Every Predictive total energy dominates the transmission-only
		// oracle lower bound.
		for i, y := range en.Y {
			if y < lower.Y[i]-1e-9 {
				t.Errorf("err=%g K-point %d: energy %v below oracle lower %v", errFrac, i, y, lower.Y[i])
			}
		}
	}
	// The lookahead runs memoize like every other scheduler run: a second
	// sweep must add no simulations.
	before := r.cacheSize()
	if _, err := r.ExtPredictive(); err != nil {
		t.Fatal(err)
	}
	if after := r.cacheSize(); after != before {
		t.Errorf("second sweep grew the run cache %d -> %d", before, after)
	}
}
