package experiments

import (
	"strings"
	"testing"
)

func diffFigs() []*Figure {
	return []*Figure{
		{
			ID: "Fig. A",
			Series: []Series{
				{Label: "s1", X: []float64{1, 2}, Y: []float64{10, 20}},
				{Label: "s2", X: []float64{1, 2}, Y: []float64{5, 6}},
			},
		},
		{
			ID:     "Fig. B",
			Series: []Series{{Label: "only", X: []float64{0}, Y: []float64{0}}},
		},
	}
}

func TestDiffIdentical(t *testing.T) {
	diffs, err := Diff(diffFigs(), diffFigs(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Errorf("identical sets differ: %v", diffs)
	}
}

func TestDiffWithinTolerance(t *testing.T) {
	a := diffFigs()
	b := diffFigs()
	b[0].Series[0].Y[0] = 10.05 // 0.5% off
	diffs, err := Diff(a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Errorf("0.5%% drift flagged at 1%% tolerance: %v", diffs)
	}
}

func TestDiffBeyondTolerance(t *testing.T) {
	a := diffFigs()
	b := diffFigs()
	b[0].Series[0].Y[1] = 25 // 25% off
	diffs, err := Diff(a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 {
		t.Fatalf("got %d diffs, want 1: %v", len(diffs), diffs)
	}
	if !strings.Contains(diffs[0], "Fig. A/s1[1]") {
		t.Errorf("diff message %q missing location", diffs[0])
	}
}

func TestDiffMissingFigure(t *testing.T) {
	a := diffFigs()[:1]
	b := diffFigs()
	diffs, err := Diff(a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diffs {
		if strings.Contains(d, "Fig. B") && strings.Contains(d, "missing") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing-figure diff not reported: %v", diffs)
	}
	// Reverse direction: extra figure in the new run.
	diffs, err = Diff(b, a, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, d := range diffs {
		if strings.Contains(d, "Fig. B") && strings.Contains(d, "not in baseline") {
			found = true
		}
	}
	if !found {
		t.Errorf("extra-figure diff not reported: %v", diffs)
	}
}

func TestDiffSeriesMismatch(t *testing.T) {
	a := diffFigs()
	a[0].Series = a[0].Series[:1]
	diffs, err := Diff(a, diffFigs(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) == 0 || !strings.Contains(diffs[0], "s2") {
		t.Errorf("missing-series diff not reported: %v", diffs)
	}
}

func TestDiffLengthMismatch(t *testing.T) {
	a := diffFigs()
	a[0].Series[0].X = a[0].Series[0].X[:1]
	a[0].Series[0].Y = a[0].Series[0].Y[:1]
	diffs, err := Diff(a, diffFigs(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) == 0 || !strings.Contains(diffs[0], "points") {
		t.Errorf("length-mismatch diff not reported: %v", diffs)
	}
}

func TestDiffValidation(t *testing.T) {
	if _, err := Diff(diffFigs(), diffFigs(), -1); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := Diff([]*Figure{nil}, diffFigs(), 0.01); err == nil {
		t.Error("nil figure accepted")
	}
	dup := append(diffFigs(), diffFigs()[0])
	if _, err := Diff(dup, diffFigs(), 0.01); err == nil {
		t.Error("duplicate figure ID accepted")
	}
}

func TestDiffNearZeroValues(t *testing.T) {
	a := []*Figure{{ID: "z", Series: []Series{{Label: "s", X: []float64{0}, Y: []float64{0}}}}}
	b := []*Figure{{ID: "z", Series: []Series{{Label: "s", X: []float64{0}, Y: []float64{1e-12}}}}}
	diffs, err := Diff(a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Errorf("sub-epsilon difference flagged: %v", diffs)
	}
}
