package experiments

import (
	"fmt"
	"math"

	"jointstream/internal/abr"
	"jointstream/internal/cell"
	"jointstream/internal/oracle"
	"jointstream/internal/qoe"
	"jointstream/internal/radio"
	"jointstream/internal/rng"
	"jointstream/internal/rrc"
	"jointstream/internal/sched"
	"jointstream/internal/stats"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// This file contains extension experiments beyond the paper's Figs. 2–10:
// the LTE variant the paper argues for in §III/§VI, variable-bit-rate and
// staggered-arrival workloads, the Fast Dormancy ablation, the offline
// oracle energy gap for Theorem 1's E*, and multi-seed robustness
// statistics. cmd/jstream-bench exposes them via -ext.

// subRunner clones this runner with a modified configuration; the clone
// has its own memoization cache.
func (r *Runner) subRunner(mutate func(*Options)) (*Runner, error) {
	opts := r.opts
	mutate(&opts)
	return NewRunner(opts)
}

// ExtLTE compares Default, RTMA (α=1) and EMA (β=1) under the LTE radio
// and RRC models against the 3G baseline, at the CDF scenario. The paper
// (§VI) predicts "similar results in LTE networks".
func (r *Runner) ExtLTE() (*Figure, error) {
	fig := &Figure{
		ID:     "Ext. LTE",
		Title:  "3G vs LTE (Default / RTMA / EMA)",
		XLabel: "metric",
		YLabel: "value",
		Notes: []string{
			"rows: rebuffer/user (s) then energy/user (J)",
			fmt.Sprintf("N=%d users, avg video %.0f MB", r.opts.CDFUsers, r.opts.CDFAvgSizeMB),
		},
	}
	configs := []struct {
		label string
		radio radio.Model
		rrc   rrc.Profile
	}{
		{"3G", radio.Paper3G(), rrc.Paper3G()},
		{"LTE", radio.LTE(), rrc.LTE()},
	}
	sc := scenario{users: r.opts.CDFUsers, avgSizeMB: r.opts.CDFAvgSizeMB}
	for _, c := range configs {
		sub, err := r.subRunner(func(o *Options) {
			o.Cell.Radio = c.radio
			o.Cell.RRC = c.rrc
		})
		if err != nil {
			return nil, err
		}
		def, err := sub.defaultRun(sc)
		if err != nil {
			return nil, err
		}
		rtma, _, err := sub.rtmaRun(sc, 1.0)
		if err != nil {
			return nil, err
		}
		ema, _, err := sub.emaRun(sc, 1.0)
		if err != nil {
			return nil, err
		}
		reb := Series{Label: c.label + " rebuffer", X: []float64{0, 1, 2}}
		en := Series{Label: c.label + " energy", X: []float64{0, 1, 2}}
		for _, res := range []*cell.Result{def, rtma, ema} {
			reb.Y = append(reb.Y, float64(res.MeanRebufferPerUser()))
			en.Y = append(en.Y, float64(res.MeanEnergyPerUser())/1000)
		}
		fig.Series = append(fig.Series, reb, en)
	}
	fig.Notes = append(fig.Notes, "x: 0=Default, 1=RTMA(alpha=1), 2=EMA(beta=1)")
	return fig, nil
}

// ExtVBR repeats the Fig. 5a/9a style comparison with variable-bit-rate
// sessions (±30 % per-slot rate jitter), checking the algorithms tolerate
// the paper's "bit rate changes over time" model.
func (r *Runner) ExtVBR() (*Figure, error) {
	sub, err := r.subRunner(func(o *Options) { o.RateJitterFrac = 0.3 })
	if err != nil {
		return nil, err
	}
	return sub.comparisonAtScenario("Ext. VBR", "VBR sessions (±30% rate jitter)")
}

// ExtArrivals repeats the comparison with Poisson user arrivals (mean
// interarrival 10 s) instead of the paper's all-at-slot-0 start.
func (r *Runner) ExtArrivals() (*Figure, error) {
	sub, err := r.subRunner(func(o *Options) { o.MeanInterarrival = 10 })
	if err != nil {
		return nil, err
	}
	return sub.comparisonAtScenario("Ext. Arrivals", "Poisson arrivals (mean 10 s)")
}

// comparisonAtScenario runs Default/RTMA/EMA at the CDF scenario and
// reports both metrics.
func (r *Runner) comparisonAtScenario(id, title string) (*Figure, error) {
	sc := scenario{users: r.opts.CDFUsers, avgSizeMB: r.opts.CDFAvgSizeMB}
	def, err := r.defaultRun(sc)
	if err != nil {
		return nil, err
	}
	rtma, _, err := r.rtmaRun(sc, 1.0)
	if err != nil {
		return nil, err
	}
	ema, _, err := r.emaRun(sc, 1.0)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "algorithm (0=Default 1=RTMA 2=EMA)",
		YLabel: "value",
		Notes:  []string{fmt.Sprintf("N=%d users, avg video %.0f MB", sc.users, sc.avgSizeMB)},
	}
	reb := Series{Label: "rebuffer/user (s)", X: []float64{0, 1, 2}}
	en := Series{Label: "energy/user (J)", X: []float64{0, 1, 2}}
	for _, res := range []*cell.Result{def, rtma, ema} {
		reb.Y = append(reb.Y, float64(res.MeanRebufferPerUser()))
		en.Y = append(en.Y, float64(res.MeanEnergyPerUser())/1000)
	}
	fig.Series = append(fig.Series, reb, en)
	return fig, nil
}

// ExtABR repeats the Default/RTMA/EMA comparison with adaptive-bitrate
// players (BBA controllers, internal/abr) instead of fixed-rate sessions,
// reporting mean delivered quality alongside stalls and energy. The
// paper's model fixes p_i; this answers how the gateway schedulers
// interact with the rate adaptation its introduction motivates.
func (r *Runner) ExtABR() (*Figure, error) {
	abrCfg := abr.DefaultConfig()
	sub, err := r.subRunner(func(o *Options) { o.Cell.ABR = &abrCfg })
	if err != nil {
		return nil, err
	}
	sc := scenario{users: sub.opts.CDFUsers, avgSizeMB: sub.opts.CDFAvgSizeMB}
	def, err := sub.defaultRun(sc)
	if err != nil {
		return nil, err
	}
	// RTMA's Eq. (12) budget reflects radio economics, not player
	// behaviour: with ABR's buffer cap the Default run paces near the
	// selected bitrate, so its per-active-slot energy sits far below the
	// physical Eq. (12) band and would derive an admit-nobody threshold.
	// Use the fixed-rate reference run's energy instead (same radio, same
	// workload scale).
	fixedDef, err := r.defaultRun(scenario{users: sc.users, avgSizeMB: sc.avgSizeMB})
	if err != nil {
		return nil, err
	}
	budget, err := sched.BudgetForAlpha(fixedDef.TransEnergyPerActiveSlot(), 1.0)
	if err != nil {
		return nil, err
	}
	rtma, err := sub.run(sc, schedBuilder{
		key: "rtma(abr)",
		build: func() (sched.Scheduler, error) {
			return sched.NewRTMA(sched.RTMAConfig{
				Budget: budget, Radio: sub.opts.Cell.Radio, RRC: sub.opts.Cell.RRC,
			})
		},
	})
	if err != nil {
		return nil, err
	}
	ema, _, err := sub.emaRun(sc, 1.0)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Ext. ABR",
		Title:  "Adaptive-bitrate players (BBA) under each scheduler",
		XLabel: "algorithm (0=Default 1=RTMA 2=EMA)",
		YLabel: "value",
		Notes: []string{
			fmt.Sprintf("N=%d users, avg video %.0f MB, ladder %v-%v KB/s",
				sc.users, sc.avgSizeMB, float64(abrCfg.Ladder.Min()), float64(abrCfg.Ladder.Max())),
		},
	}
	reb := Series{Label: "rebuffer/user (s)", X: []float64{0, 1, 2}}
	en := Series{Label: "energy/user (J)", X: []float64{0, 1, 2}}
	q := Series{Label: "mean quality (KB/s)", X: []float64{0, 1, 2}}
	qoeS := Series{Label: "mean QoE (MPC model)", X: []float64{0, 1, 2}}
	weights := qoe.DefaultWeights(450)
	for _, res := range []*cell.Result{def, rtma, ema} {
		reb.Y = append(reb.Y, float64(res.MeanRebufferPerUser()))
		en.Y = append(en.Y, float64(res.MeanEnergyPerUser())/1000)
		var qs float64
		for _, u := range res.Users {
			qs += float64(u.MeanQuality())
		}
		q.Y = append(q.Y, qs/float64(len(res.Users)))
		score, err := qoe.MeanScore(weights, res, sub.opts.Cell.Tau)
		if err != nil {
			return nil, err
		}
		qoeS.Y = append(qoeS.Y, score)
	}
	fig.Series = append(fig.Series, reb, en, q, qoeS)
	return fig, nil
}

// ExtFastDormancy measures how much of each scheduler's energy the 3GPP
// Fast Dormancy mechanism (release after 0.5 s idle) would recover —
// the lever RadioJockey/TOP pull, which the paper's EMA makes largely
// unnecessary by avoiding idle gaps altogether.
func (r *Runner) ExtFastDormancy() (*Figure, error) {
	sc := scenario{users: r.opts.CDFUsers, avgSizeMB: r.opts.CDFAvgSizeMB}
	fig := &Figure{
		ID:     "Ext. FastDormancy",
		Title:  "Energy with vs without Fast Dormancy (release after 0.5 s)",
		XLabel: "algorithm (0=Default 1=ON-OFF 2=EStreamer 3=EMA)",
		YLabel: "energy/user (J)",
	}
	fdSub, err := r.subRunner(func(o *Options) {
		o.Cell.RRC = o.Cell.RRC.WithFastDormancy(0.5)
	})
	if err != nil {
		return nil, err
	}
	collect := func(sub *Runner, label string) error {
		s := Series{Label: label, X: []float64{0, 1, 2, 3}}
		def, err := sub.defaultRun(sc)
		if err != nil {
			return err
		}
		onoff, err := sub.run(sc, onOffBuilder())
		if err != nil {
			return err
		}
		estr, err := sub.run(sc, eStreamerBuilder())
		if err != nil {
			return err
		}
		ema, _, err := sub.emaRun(sc, 1.0)
		if err != nil {
			return err
		}
		for _, res := range []*cell.Result{def, onoff, estr, ema} {
			s.Y = append(s.Y, float64(res.MeanEnergyPerUser())/1000)
		}
		fig.Series = append(fig.Series, s)
		return nil
	}
	if err := collect(r, "normal"); err != nil {
		return nil, err
	}
	if err := collect(fdSub, "fast dormancy"); err != nil {
		return nil, err
	}
	return fig, nil
}

// ExtOracleGap brackets Theorem 1's E* with the offline oracle bounds of
// internal/oracle and places EMA's measured transmission energy inside
// the bracket, across the user sweep.
func (r *Runner) ExtOracleGap() (*Figure, error) {
	fig := &Figure{
		ID:     "Ext. OracleGap",
		Title:  "EMA vs offline oracle energy bounds (transmission energy)",
		XLabel: "users",
		YLabel: "transmission energy per user (J)",
		Notes: []string{
			"lower = capacity-relaxed offline optimum (no schedule can beat it)",
			"upper = omniscient greedy feasible schedule",
		},
	}
	lower := Series{Label: "oracle lower"}
	upper := Series{Label: "oracle upper"}
	emaS := Series{Label: "EMA (measured)"}
	for _, n := range r.opts.UserCounts {
		sc := scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}
		ema, _, err := r.emaRun(sc, 1.0)
		if err != nil {
			return nil, err
		}
		// Use the realized horizon so the oracle sees the same slots.
		wl, err := workload.Generate(sc.workload(r.opts), rng.New(r.opts.Seed))
		if err != nil {
			return nil, err
		}
		b, err := oracle.Compute(oracle.Config{
			Tau:      r.opts.Cell.Tau,
			Unit:     r.opts.Cell.Unit,
			Capacity: r.opts.Cell.Capacity,
			Horizon:  ema.Slots,
			Radio:    r.opts.Cell.Radio,
		}, wl)
		if err != nil {
			return nil, err
		}
		var trans units.MJ
		for _, u := range ema.Users {
			trans += u.TransEnergy
		}
		x := float64(n)
		lower.X = append(lower.X, x)
		lower.Y = append(lower.Y, float64(b.LowerMJ)/1000/float64(n))
		upper.X = append(upper.X, x)
		upper.Y = append(upper.Y, float64(b.UpperMJ)/1000/float64(n))
		emaS.X = append(emaS.X, x)
		emaS.Y = append(emaS.Y, float64(trans)/1000/float64(n))
		if !b.Feasible {
			fig.Notes = append(fig.Notes, fmt.Sprintf("N=%d: omniscient schedule infeasible within horizon %d", n, ema.Slots))
		}
	}
	fig.Series = append(fig.Series, lower, emaS, upper)
	return fig, nil
}

// ExtAdaptive compares the offline-calibrated EMA against the online
// AdaptiveEMA across the user sweep: both target the same Ω = R_Default,
// but AdaptiveEMA discovers its V during the run instead of via pilot
// bisection. The comparison quantifies what the online controller pays
// for not knowing V in advance.
func (r *Runner) ExtAdaptive() (*Figure, error) {
	fig := &Figure{
		ID:     "Ext. Adaptive",
		Title:  "Calibrated EMA vs online AdaptiveEMA (Omega = Default rebuffering)",
		XLabel: "users",
		YLabel: "value",
	}
	calReb := Series{Label: "EMA rebuffer (s)"}
	calEn := Series{Label: "EMA energy (J)"}
	adReb := Series{Label: "AdaptiveEMA rebuffer (s)"}
	adEn := Series{Label: "AdaptiveEMA energy (J)"}
	for _, n := range r.opts.UserCounts {
		sc := scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}
		def, err := r.defaultRun(sc)
		if err != nil {
			return nil, err
		}
		omega := def.PC()
		cal, _, err := r.emaRun(sc, 1.0)
		if err != nil {
			return nil, err
		}
		ad, err := r.run(sc, schedBuilder{
			key: fmt.Sprintf("adaptive-ema(omega=%.6g)", float64(omega)),
			build: func() (sched.Scheduler, error) {
				return sched.NewAdaptiveEMA(sched.AdaptiveEMAConfig{
					Omega: omega, RRC: r.opts.Cell.RRC,
				})
			},
		})
		if err != nil {
			return nil, err
		}
		x := float64(n)
		calReb.X = append(calReb.X, x)
		calReb.Y = append(calReb.Y, float64(cal.MeanRebufferPerUser()))
		calEn.X = append(calEn.X, x)
		calEn.Y = append(calEn.Y, float64(cal.MeanEnergyPerUser())/1000)
		adReb.X = append(adReb.X, x)
		adReb.Y = append(adReb.Y, float64(ad.MeanRebufferPerUser()))
		adEn.X = append(adEn.X, x)
		adEn.Y = append(adEn.Y, float64(ad.MeanEnergyPerUser())/1000)
	}
	fig.Series = append(fig.Series, calReb, adReb, calEn, adEn)
	return fig, nil
}

// SeedStats is the multi-seed summary of one scheduler at one scenario.
type SeedStats struct {
	Label                     string
	Seeds                     int
	RebufferMean, RebufferStd float64 // seconds per user
	EnergyMean, EnergyStd     float64 // joules per user
	// RebufferP and EnergyP are Welch two-sided p-values against the
	// Default strategy's per-seed samples (1 for Default itself).
	RebufferP, EnergyP float64
}

// ExtMultiSeed reruns Default, RTMA (α=1) and EMA (β=1) at the CDF
// scenario across `seeds` different workload seeds and reports mean ± std
// of both metrics — the robustness check the single-seed paper omits.
func (r *Runner) ExtMultiSeed(seeds int) ([]SeedStats, error) {
	if seeds < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 seeds, got %d", seeds)
	}
	type sample struct{ reb, en float64 }
	collected := map[string][]sample{}
	order := []string{"Default", "RTMA", "EMA"}
	for s := 0; s < seeds; s++ {
		sub, err := r.subRunner(func(o *Options) { o.Seed = r.opts.Seed + uint64(s)*1000003 })
		if err != nil {
			return nil, err
		}
		sc := scenario{users: sub.opts.CDFUsers, avgSizeMB: sub.opts.CDFAvgSizeMB}
		def, err := sub.defaultRun(sc)
		if err != nil {
			return nil, err
		}
		rtma, _, err := sub.rtmaRun(sc, 1.0)
		if err != nil {
			return nil, err
		}
		ema, _, err := sub.emaRun(sc, 1.0)
		if err != nil {
			return nil, err
		}
		for i, res := range []*cell.Result{def, rtma, ema} {
			collected[order[i]] = append(collected[order[i]], sample{
				reb: float64(res.MeanRebufferPerUser()),
				en:  float64(res.MeanEnergyPerUser()) / 1000,
			})
		}
	}
	out := make([]SeedStats, 0, len(order))
	defReb := extract(collected["Default"], func(s sample) float64 { return s.reb })
	defEn := extract(collected["Default"], func(s sample) float64 { return s.en })
	for _, label := range order {
		xs := collected[label]
		st := SeedStats{Label: label, Seeds: len(xs), RebufferP: 1, EnergyP: 1}
		st.RebufferMean, st.RebufferStd = meanStd(xs, func(s sample) float64 { return s.reb })
		st.EnergyMean, st.EnergyStd = meanStd(xs, func(s sample) float64 { return s.en })
		if label != "Default" {
			if p, err := welchP(extract(xs, func(s sample) float64 { return s.reb }), defReb); err == nil {
				st.RebufferP = p
			}
			if p, err := welchP(extract(xs, func(s sample) float64 { return s.en }), defEn); err == nil {
				st.EnergyP = p
			}
		}
		out = append(out, st)
	}
	return out, nil
}

func extract[T any](xs []T, get func(T) float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = get(x)
	}
	return out
}

// welchP runs Welch's t-test and returns the two-sided p-value.
func welchP(a, b []float64) (float64, error) {
	sa, err := stats.Describe(a)
	if err != nil {
		return 0, err
	}
	sb, err := stats.Describe(b)
	if err != nil {
		return 0, err
	}
	res, err := stats.Welch(sa, sb)
	if err != nil {
		return 0, err
	}
	return res.P, nil
}

func meanStd[T any](xs []T, get func(T) float64) (mean, std float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += get(x)
	}
	mean /= n
	for _, x := range xs {
		d := get(x) - mean
		std += d * d
	}
	return mean, math.Sqrt(std / n)
}
