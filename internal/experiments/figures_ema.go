package experiments

import (
	"context"
	"fmt"

	"jointstream/internal/cell"
	"jointstream/internal/pool"
)

// cdfEMAPair runs the Fig. 6/7 sample pair — Default and EMA (β = 1) at
// the CDF scenario — as one lockstep arm group. The calibration ladder
// stays sequential (each bisection step needs the previous step's
// measured PC), but it runs on the plain non-recording scenario; only
// the final recording pair is batched.
func (r *Runner) cdfEMAPair() (def, ema *cell.Result, v float64, err error) {
	sc := r.cdfScenario()
	plain := scenario{users: sc.users, avgSizeMB: sc.avgSizeMB}
	base, err := r.defaultRun(plain)
	if err != nil {
		return nil, nil, 0, err
	}
	omega := base.PC() // Ω = β·R_Default with β = 1
	v, err = r.calibrateV(plain, omega)
	if err != nil {
		return nil, nil, 0, err
	}
	rs, err := r.runBatch(sc, []schedBuilder{defaultBuilder(), r.emaBuilderFor(v)})
	if err != nil {
		return nil, nil, 0, err
	}
	return rs[0], rs[1], v, nil
}

// Fig6 regenerates Figure 6: CDF of the per-slot Jain fairness index,
// EMA (β = 1) versus Default.
func (r *Runner) Fig6() (*Figure, error) {
	sc := r.cdfScenario()
	def, ema, v, err := r.cdfEMAPair()
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Fig. 6",
		Title:  "Fairness CDF (EMA vs Default)",
		XLabel: "Jain fairness index",
		YLabel: "CDF",
		Notes: []string{
			fmt.Sprintf("N=%d users, avg video %.0f MB", sc.users, sc.avgSizeMB),
			fmt.Sprintf("EMA Lyapunov weight V=%.4g (calibrated for beta=1)", v),
		},
	}
	for _, p := range []struct {
		label string
		res   *cell.Result
	}{{"Default", def}, {"EMA", ema}} {
		s, err := cdfSeries(p.label, fairnessSamples(p.res), cdfPoints)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig7 regenerates Figure 7: CDF of the total per-slot energy across all
// users (J), EMA (β = 1) versus Default. The paper reports ~50% of EMA
// slots below 25 J.
func (r *Runner) Fig7() (*Figure, error) {
	sc := r.cdfScenario()
	def, ema, v, err := r.cdfEMAPair()
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Fig. 7",
		Title:  "Per-slot energy CDF (EMA vs Default)",
		XLabel: "total energy in a slot across users (J)",
		YLabel: "CDF",
		Notes: []string{
			fmt.Sprintf("N=%d users, avg video %.0f MB", sc.users, sc.avgSizeMB),
			fmt.Sprintf("EMA V=%.4g", v),
		},
	}
	for _, p := range []struct {
		label string
		res   *cell.Result
	}{{"Default", def}, {"EMA", ema}} {
		s, err := cdfSeries(p.label, perSlotTotalEnergyJ(p.res), cdfPoints)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig8a regenerates Figure 8(a): total energy per user versus user number,
// Default against EMA with β ∈ {0.8, 1, 1.2}.
func (r *Runner) Fig8a() (*Figure, error) {
	fig := &Figure{
		ID:     "Fig. 8a",
		Title:  "Energy vs user number (EMA beta sweep)",
		XLabel: "users",
		YLabel: "total energy per user (kJ)",
	}
	def := Series{Label: "Default"}
	for _, n := range r.opts.UserCounts {
		res, err := r.defaultRun(scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB})
		if err != nil {
			return nil, err
		}
		def.X = append(def.X, float64(n))
		def.Y = append(def.Y, float64(res.MeanEnergyPerUser())/1e6)
	}
	fig.Series = append(fig.Series, def)
	for _, b := range r.opts.Betas {
		s := Series{Label: fmt.Sprintf("EMA beta=%.1f", b)}
		for _, n := range r.opts.UserCounts {
			res, v, err := r.emaRun(scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}, b)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, float64(res.MeanEnergyPerUser())/1e6)
			if n == r.opts.UserCounts[len(r.opts.UserCounts)-1] {
				fig.Notes = append(fig.Notes, fmt.Sprintf("beta=%.1f: calibrated V=%.4g at N=%d", b, v, n))
			}
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig8b regenerates Figure 8(b): total energy per user versus average
// video size for the same β sweep.
func (r *Runner) Fig8b() (*Figure, error) {
	fig := &Figure{
		ID:     "Fig. 8b",
		Title:  "Energy vs data amount (EMA beta sweep)",
		XLabel: "average video size (MB)",
		YLabel: "total energy per user (J)",
	}
	users := r.opts.CDFUsers
	def := Series{Label: "Default"}
	for _, mb := range r.opts.AvgSizesMB {
		res, err := r.defaultRun(scenario{users: users, avgSizeMB: mb})
		if err != nil {
			return nil, err
		}
		def.X = append(def.X, mb)
		def.Y = append(def.Y, float64(res.MeanEnergyPerUser())/1000)
	}
	fig.Series = append(fig.Series, def)
	for _, b := range r.opts.Betas {
		s := Series{Label: fmt.Sprintf("EMA beta=%.1f", b)}
		for _, mb := range r.opts.AvgSizesMB {
			res, _, err := r.emaRun(scenario{users: users, avgSizeMB: mb}, b)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, mb)
			s.Y = append(s.Y, float64(res.MeanEnergyPerUser())/1000)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig9a regenerates Figure 9(a): average energy per user versus user
// number for EMA, EStreamer, SALSA and Default. Following the paper, EMA's
// rebuffering bound Ω is set to EStreamer's measured rebuffering.
func (r *Runner) Fig9a() (*Figure, error) {
	return r.fig9(true)
}

// Fig9b regenerates Figure 9(b): the rebuffering side of the same
// comparison.
func (r *Runner) Fig9b() (*Figure, error) {
	return r.fig9(false)
}

func (r *Runner) fig9(energy bool) (*Figure, error) {
	fig := &Figure{XLabel: "users"}
	if energy {
		fig.ID, fig.Title = "Fig. 9a", "Energy comparison (EMA vs baselines)"
		fig.YLabel = "total energy per user (J)"
	} else {
		fig.ID, fig.Title = "Fig. 9b", "Rebuffering comparison (EMA vs baselines)"
		fig.YLabel = "total rebuffering time per user (s)"
	}
	extract := func(res *cell.Result) float64 {
		if energy {
			return float64(res.MeanEnergyPerUser()) / 1000
		}
		return float64(res.MeanRebufferPerUser())
	}
	builders := []schedBuilder{defaultBuilder(), salsaBuilder(), eStreamerBuilder()}
	series := make([]Series, len(builders))
	for i, sb := range builders {
		series[i] = Series{Label: map[string]string{
			"default": "Default", "salsa": "SALSA", "estreamer": "EStreamer",
		}[sb.key]}
	}
	// The three independent baselines run as one lockstep group per
	// scenario; only EMA (whose Ω depends on EStreamer's measured
	// rebuffering) trails behind them.
	for _, n := range r.opts.UserCounts {
		rs, err := r.runBatch(scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}, builders)
		if err != nil {
			return nil, err
		}
		for i, res := range rs {
			series[i].X = append(series[i].X, float64(n))
			series[i].Y = append(series[i].Y, extract(res))
		}
	}
	fig.Series = append(fig.Series, series...)
	s := Series{Label: "EMA"}
	for _, n := range r.opts.UserCounts {
		res, v, err := r.emaRunOmegaEStreamer(n)
		if err != nil {
			return nil, err
		}
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, extract(res))
		if n == r.opts.UserCounts[0] {
			fig.Notes = append(fig.Notes, fmt.Sprintf("EMA Omega = EStreamer rebuffering; V=%.4g at N=%d", v, n))
		}
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// emaRunOmegaEStreamer calibrates EMA against EStreamer's measured
// rebuffering (the paper's Fig. 9 protocol).
func (r *Runner) emaRunOmegaEStreamer(n int) (*cell.Result, float64, error) {
	sc := scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}
	es, err := r.run(sc, eStreamerBuilder())
	if err != nil {
		return nil, 0, err
	}
	v, err := r.calibrateV(sc, es.PC())
	if err != nil {
		return nil, 0, err
	}
	res, err := r.emaRunWithV(sc, v)
	return res, v, err
}

// Fig10 regenerates Figure 10: the rebuffering–energy panel. Each series
// traces one scheduler across the user-count sweep with total energy per
// user on X and total rebuffering per user on Y.
func (r *Runner) Fig10() (*Figure, error) {
	fig := &Figure{
		ID:     "Fig. 10",
		Title:  "Rebuffering-energy tradeoff panel",
		XLabel: "total energy per user (J)",
		YLabel: "total rebuffering time per user (s)",
		Notes:  []string{"points along each curve correspond to the user-count sweep"},
	}
	def := Series{Label: "Default"}
	rtma := Series{Label: "RTMA alpha=1"}
	ema := Series{Label: "EMA beta=1"}
	for _, n := range r.opts.UserCounts {
		sc := scenario{users: n, avgSizeMB: r.opts.CDFAvgSizeMB}
		d, err := r.defaultRun(sc)
		if err != nil {
			return nil, err
		}
		def.X = append(def.X, float64(d.MeanEnergyPerUser())/1000)
		def.Y = append(def.Y, float64(d.MeanRebufferPerUser()))

		rt, _, err := r.rtmaRun(sc, 1.0)
		if err != nil {
			return nil, err
		}
		rtma.X = append(rtma.X, float64(rt.MeanEnergyPerUser())/1000)
		rtma.Y = append(rtma.Y, float64(rt.MeanRebufferPerUser()))

		em, _, err := r.emaRun(sc, 1.0)
		if err != nil {
			return nil, err
		}
		ema.X = append(ema.X, float64(em.MeanEnergyPerUser())/1000)
		ema.Y = append(ema.Y, float64(em.MeanRebufferPerUser()))
	}
	fig.Series = append(fig.Series, def, rtma, ema)
	return fig, nil
}

// namedFig pairs a figure function with its name for error reporting.
type namedFig struct {
	name string
	f    func() (*Figure, error)
}

func (r *Runner) allFigs() []namedFig {
	return []namedFig{
		{"Fig2", r.Fig2}, {"Fig3", r.Fig3},
		{"Fig4a", r.Fig4a}, {"Fig4b", r.Fig4b},
		{"Fig5a", r.Fig5a}, {"Fig5b", r.Fig5b},
		{"Fig6", r.Fig6}, {"Fig7", r.Fig7},
		{"Fig8a", r.Fig8a}, {"Fig8b", r.Fig8b},
		{"Fig9a", r.Fig9a}, {"Fig9b", r.Fig9b},
		{"Fig10", r.Fig10},
	}
}

// All runs every figure in order.
func (r *Runner) All() ([]*Figure, error) {
	figs := r.allFigs()
	out := make([]*Figure, 0, len(figs))
	for _, nf := range figs {
		fig, err := nf.f()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", nf.name, err)
		}
		out = append(out, fig)
	}
	return out, nil
}

// AllParallel runs every figure concurrently on the worker pool. The
// Runner's singleflight cache coalesces the shared Default reference and
// calibration runs, so the parallel suite performs the same simulations
// as the sequential one, just overlapped. Results keep All's order.
func (r *Runner) AllParallel(ctx context.Context, workers int) ([]*Figure, error) {
	figs := r.allFigs()
	defer r.setRunContext(ctx)()
	return pool.Map(ctx, workers, figs, func(ctx context.Context, nf namedFig) (*Figure, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fig, err := nf.f()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", nf.name, err)
		}
		return fig, nil
	})
}
