package experiments

// This file implements the chaos scenario: one clean baseline run plus
// one run per fault class (endpoint stall, delivery drop, connectivity
// flap, report loss, origin slow-read, origin early-EOF), all over the
// same seeded traffic, reporting how much rebuffering and device energy
// each fault class costs relative to the baseline — and how the
// degradation-tolerant gateway policy (slot deadlines, stale-report
// grace, backoff, breaker) absorbed it. A deploy-level row exercises a
// site outage window against the multi-cell runner.

import (
	"context"
	"fmt"
	"time"

	"jointstream/internal/cell"
	"jointstream/internal/deploy"
	"jointstream/internal/fault"
	"jointstream/internal/gateway"
	"jointstream/internal/radio"
	"jointstream/internal/rng"
	"jointstream/internal/rrc"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// ChaosOptions parameterizes the chaos scenario.
type ChaosOptions struct {
	// Seed roots both the fault plans and the deploy workload.
	Seed uint64
	// Users is the number of gateway sessions per run.
	Users int
	// VideoKB is each session's video size.
	VideoKB units.KB
	// MaxSlots bounds every gateway run.
	MaxSlots int
	// SlotDeadline is the async delivery deadline; stalls are injected an
	// order of magnitude longer, so a stalled endpoint deterministically
	// misses its slots.
	SlotDeadline time.Duration
}

// DefaultChaosOptions returns a scenario that completes in a few
// seconds.
func DefaultChaosOptions() ChaosOptions {
	return ChaosOptions{
		Seed:         42,
		Users:        4,
		VideoKB:      10000,
		MaxSlots:     600,
		SlotDeadline: 3 * time.Millisecond,
	}
}

// Validate checks the options.
func (o ChaosOptions) Validate() error {
	if o.Users <= 0 {
		return fmt.Errorf("experiments: chaos needs at least one user, got %d", o.Users)
	}
	if o.VideoKB <= 0 {
		return fmt.Errorf("experiments: non-positive chaos video size %v", o.VideoKB)
	}
	if o.MaxSlots <= 0 {
		return fmt.Errorf("experiments: non-positive chaos slot cap %d", o.MaxSlots)
	}
	if o.SlotDeadline <= 0 {
		return fmt.Errorf("experiments: non-positive chaos slot deadline %v", o.SlotDeadline)
	}
	return nil
}

// ChaosRow is one run's headline outcome.
type ChaosRow struct {
	// Fault names the injected fault class ("baseline" for the clean run).
	Fault string
	// EnergyMJ and RebufferSec total the per-user gateway accounting.
	EnergyMJ    float64
	RebufferSec float64
	// DeltaEnergyMJ and DeltaRebufferSec are this row minus the baseline.
	DeltaEnergyMJ    float64
	DeltaRebufferSec float64
	// Completed counts sessions that delivered their whole video;
	// Detached counts users removed by the fatal/breaker/stale policies.
	Completed int
	Detached  int
	// Diag is the gateway's degradation diagnostics for the run.
	Diag gateway.Diag
}

// SiteOutageRow is the deploy-level fault class: one site down for a
// window, versus the identical fleet undisturbed.
type SiteOutageRow struct {
	BaselineEnergyMJ    float64
	OutageEnergyMJ      float64
	BaselineRebufferSec float64
	OutageRebufferSec   float64
	// DegradedSlots is the fleet total reported by the outage run.
	DegradedSlots int
}

// ChaosReport is the full chaos scenario outcome.
type ChaosReport struct {
	Baseline   ChaosRow
	Rows       []ChaosRow
	SiteOutage SiteOutageRow
}

// chaosPlans returns the per-class fault plans, each rooted in the
// scenario seed.
func chaosPlans(o ChaosOptions) []struct {
	name string
	plan fault.Plan
} {
	return []struct {
		name string
		plan fault.Plan
	}{
		{"stall", fault.Plan{Seed: o.Seed, Endpoint: fault.EndpointPlan{
			StallProb: 0.25, StallFor: 10 * o.SlotDeadline,
		}}},
		{"drop", fault.Plan{Seed: o.Seed, Endpoint: fault.EndpointPlan{DropProb: 0.25}}},
		{"flap", fault.Plan{Seed: o.Seed, Endpoint: fault.EndpointPlan{
			FlapProb: 0.08, FlapSlots: 3,
		}}},
		{"report-loss", fault.Plan{Seed: o.Seed, Endpoint: fault.EndpointPlan{ReportLossProb: 0.25}}},
		{"slow-read", fault.Plan{Seed: o.Seed, Source: fault.SourcePlan{
			SlowReadProb: 0.5, SlowReadMax: 100_000,
		}}},
		{"eof-early", fault.Plan{Seed: o.Seed, Source: fault.SourcePlan{
			EOFEarlyAfter: int64(float64(o.VideoKB) * 1000 / 2),
		}}},
	}
}

// chaosGatewayRun drives one gateway run with every user wrapped by the
// plan and summarizes it as a row.
func chaosGatewayRun(o ChaosOptions, name string, plan fault.Plan) (ChaosRow, error) {
	cfg := gateway.Config{
		Tau:  1,
		Unit: 100,
		// Tight capacity: sessions span many slots, so probabilistic
		// faults fire and degradation is visible.
		Capacity: 2000,
		Radio:    radio.Paper3G(),
		RRC:      rrc.Paper3G(),
		QueueCap: 10000,
		Policy: gateway.Policy{
			AsyncDelivery: true,
			SlotDeadline:  o.SlotDeadline,
			// Stalls an order of magnitude past the deadline resolve
			// within tens of slots; a roomy breaker keeps transiently
			// stalled users attached while still bounding true loss.
			BreakerTrips: 50,
		},
	}
	g, err := gateway.New(cfg, sched.NewDefault())
	if err != nil {
		return ChaosRow{}, err
	}
	defer g.Close()
	for i := 0; i < o.Users; i++ {
		ep, err := gateway.NewLocalEndpoint(signal.Constant(-60, signal.DefaultBounds), 400, false)
		if err != nil {
			return ChaosRow{}, err
		}
		src, err := gateway.NewPatternSource(o.VideoKB)
		if err != nil {
			return ChaosRow{}, err
		}
		if _, err := g.Attach(plan.WrapEndpoint(i, ep), plan.WrapSource(i, src)); err != nil {
			return ChaosRow{}, err
		}
	}
	for n := 0; n < o.MaxSlots && !g.AllDone(); n++ {
		if _, err := g.Step(); err != nil {
			return ChaosRow{}, err
		}
		// Injected stalls resolve on the wall clock; idle slots (every
		// user in flight or backing off) must not spin past them.
		time.Sleep(o.SlotDeadline / 4)
	}
	row := ChaosRow{Fault: name, Diag: g.Diagnostics()}
	for i := 0; i < o.Users; i++ {
		st, err := g.StatsFor(i)
		if err != nil {
			return ChaosRow{}, err
		}
		row.EnergyMJ += float64(st.Energy())
		row.RebufferSec += float64(st.RebufferSec)
		if st.Done {
			row.Completed++
		}
		if st.Detached {
			row.Detached++
		}
	}
	return row, nil
}

// chaosDeployRun runs the two-site fleet with and without a mid-run
// outage of site 0.
func chaosDeployRun(o ChaosOptions) (SiteOutageRow, error) {
	siteCell := cell.PaperConfig()
	siteCell.Capacity = 3000
	siteCell.MaxSlots = 800
	mkCfg := func() deploy.Config {
		return deploy.Config{
			Sites: []deploy.Site{
				{Name: "north", Cell: siteCell},
				{Name: "south", Cell: siteCell, SignalOffset: -10},
			},
			Policy: deploy.RoundRobin,
		}
	}
	wlCfg := workload.PaperDefaults(6).WithAvgSize(8000)
	wlCfg.Signal.PeriodSlots = 24
	mkSessions := func() ([]*workload.Session, error) {
		return workload.Generate(wlCfg, rng.New(o.Seed))
	}
	factory := func() (sched.Scheduler, error) { return sched.NewDefault(), nil }

	base, err := mkSessions()
	if err != nil {
		return SiteOutageRow{}, err
	}
	baseRes, err := deploy.Run(context.Background(), mkCfg(), base, factory)
	if err != nil {
		return SiteOutageRow{}, err
	}
	plan := fault.Plan{Seed: o.Seed, Sites: []deploy.SiteOutage{{Site: 0, From: 5, To: 30}}}
	outCfg := mkCfg()
	outCfg.Outages = plan.SiteOutages()
	outSessions, err := mkSessions()
	if err != nil {
		return SiteOutageRow{}, err
	}
	outRes, err := deploy.Run(context.Background(), outCfg, outSessions, factory)
	if err != nil {
		return SiteOutageRow{}, err
	}
	return SiteOutageRow{
		BaselineEnergyMJ:    float64(baseRes.TotalEnergy()),
		OutageEnergyMJ:      float64(outRes.TotalEnergy()),
		BaselineRebufferSec: float64(baseRes.TotalRebuffer()),
		OutageRebufferSec:   float64(outRes.TotalRebuffer()),
		DegradedSlots:       outRes.DegradedSlots(),
	}, nil
}

// RunChaos executes the chaos scenario and returns the report.
func RunChaos(o ChaosOptions) (*ChaosReport, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	baseline, err := chaosGatewayRun(o, "baseline", fault.Plan{})
	if err != nil {
		return nil, err
	}
	rep := &ChaosReport{Baseline: baseline}
	for _, c := range chaosPlans(o) {
		if err := c.plan.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: chaos plan %s: %w", c.name, err)
		}
		row, err := chaosGatewayRun(o, c.name, c.plan)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos run %s: %w", c.name, err)
		}
		row.DeltaEnergyMJ = row.EnergyMJ - baseline.EnergyMJ
		row.DeltaRebufferSec = row.RebufferSec - baseline.RebufferSec
		rep.Rows = append(rep.Rows, row)
	}
	site, err := chaosDeployRun(o)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos site outage: %w", err)
	}
	rep.SiteOutage = site
	return rep, nil
}

// Render formats the report as an aligned text table.
func (r *ChaosReport) Render() string {
	out := fmt.Sprintf("%-12s %12s %12s %12s %12s %5s %5s %s\n",
		"fault", "energy(mJ)", "rebuf(s)", "Δenergy", "Δrebuf", "done", "det", "diagnostics")
	line := func(row ChaosRow) string {
		return fmt.Sprintf("%-12s %12.1f %12.1f %+12.1f %+12.1f %5d %5d trans=%d missed=%d stale=%d reattach=%d breaker=%d fatal=%d\n",
			row.Fault, row.EnergyMJ, row.RebufferSec, row.DeltaEnergyMJ, row.DeltaRebufferSec,
			row.Completed, row.Detached,
			row.Diag.TransientErrors, row.Diag.MissedDeadlines, row.Diag.StaleSlots,
			row.Diag.Reattaches, row.Diag.BreakerOpens, row.Diag.FatalErrors)
	}
	out += line(r.Baseline)
	for _, row := range r.Rows {
		out += line(row)
	}
	out += fmt.Sprintf("site-outage: energy %.1f -> %.1f mJ, rebuffer %.1f -> %.1f s, degraded slots %d\n",
		r.SiteOutage.BaselineEnergyMJ, r.SiteOutage.OutageEnergyMJ,
		r.SiteOutage.BaselineRebufferSec, r.SiteOutage.OutageRebufferSec,
		r.SiteOutage.DegradedSlots)
	return out
}
