package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Render writes a figure as an aligned ASCII table: one row per x value,
// one column per series. Series whose X axes differ (e.g. CDF curves) are
// rendered as side-by-side (x, y) column pairs instead.
func Render(w io.Writer, fig *Figure) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", fig.ID, fig.Title); err != nil {
		return err
	}
	for _, note := range fig.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", note); err != nil {
			return err
		}
	}
	if len(fig.Series) == 0 {
		_, err := fmt.Fprintln(w, "  (no series)")
		return err
	}
	if sharedAxis(fig.Series) {
		return renderShared(w, fig)
	}
	return renderPairs(w, fig)
}

// sharedAxis reports whether every series has the same X points.
func sharedAxis(series []Series) bool {
	first := series[0].X
	for _, s := range series[1:] {
		if len(s.X) != len(first) {
			return false
		}
		for i := range s.X {
			if s.X[i] != first[i] {
				return false
			}
		}
	}
	return true
}

func renderShared(w io.Writer, fig *Figure) error {
	headers := make([]string, 0, len(fig.Series)+1)
	headers = append(headers, fig.XLabel)
	for _, s := range fig.Series {
		headers = append(headers, s.Label)
	}
	rows := make([][]string, len(fig.Series[0].X))
	for i := range rows {
		row := make([]string, 0, len(headers))
		row = append(row, formatNum(fig.Series[0].X[i]))
		for _, s := range fig.Series {
			row = append(row, formatNum(s.Y[i]))
		}
		rows[i] = row
	}
	return writeTable(w, headers, rows)
}

func renderPairs(w io.Writer, fig *Figure) error {
	headers := make([]string, 0, 2*len(fig.Series))
	maxLen := 0
	for _, s := range fig.Series {
		headers = append(headers, s.Label+" "+fig.XLabel, s.Label+" "+fig.YLabel)
		if len(s.X) > maxLen {
			maxLen = len(s.X)
		}
	}
	rows := make([][]string, maxLen)
	for i := 0; i < maxLen; i++ {
		row := make([]string, 0, len(headers))
		for _, s := range fig.Series {
			if i < len(s.X) {
				row = append(row, formatNum(s.X[i]), formatNum(s.Y[i]))
			} else {
				row = append(row, "", "")
			}
		}
		rows[i] = row
	}
	return writeTable(w, headers, rows)
}

// writeTable prints an aligned table with a header separator.
func writeTable(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		return "  " + strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// formatNum renders a float compactly: integers without decimals, small
// magnitudes with enough precision to be useful.
func formatNum(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.1f", v)
	case v >= 1 || v <= -1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// RenderClaims writes the claims table.
func RenderClaims(w io.Writer, claims []Claim) error {
	headers := []string{"claim", "paper", "measured", "met", "context"}
	rows := make([][]string, len(claims))
	for i, c := range claims {
		met := "no"
		if c.Met {
			met = "yes"
		}
		rows[i] = []string{
			c.ID,
			fmt.Sprintf(">=%.0f%%", c.PaperThreshold*100),
			fmt.Sprintf("%.1f%%", c.Measured*100),
			met,
			c.Context,
		}
	}
	return writeTable(w, headers, rows)
}
