package experiments

import (
	"fmt"
	"math"
	"sort"
)

// Diff compares two figure sets (e.g. a fresh run against a checked-in
// JSON export) and returns a human-readable list of differences. Values
// are compared with the given relative tolerance (plus a tiny absolute
// floor for near-zero values); an empty result means the runs match.
// Use it to catch regressions in the reproduction across code changes.
func Diff(got, want []*Figure, relTol float64) ([]string, error) {
	if relTol < 0 {
		return nil, fmt.Errorf("experiments: negative tolerance %v", relTol)
	}
	var diffs []string
	byID := func(figs []*Figure) (map[string]*Figure, error) {
		m := make(map[string]*Figure, len(figs))
		for _, f := range figs {
			if f == nil {
				return nil, fmt.Errorf("experiments: nil figure in diff input")
			}
			if _, dup := m[f.ID]; dup {
				return nil, fmt.Errorf("experiments: duplicate figure %s", f.ID)
			}
			m[f.ID] = f
		}
		return m, nil
	}
	gm, err := byID(got)
	if err != nil {
		return nil, err
	}
	wm, err := byID(want)
	if err != nil {
		return nil, err
	}
	for id := range wm {
		if _, ok := gm[id]; !ok {
			diffs = append(diffs, fmt.Sprintf("%s: missing from new run", id))
		}
	}
	for id, g := range gm {
		w, ok := wm[id]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: not in baseline", id))
			continue
		}
		diffs = append(diffs, diffFigure(g, w, relTol)...)
	}
	sort.Strings(diffs)
	return diffs, nil
}

func diffFigure(got, want *Figure, relTol float64) []string {
	var diffs []string
	ws := make(map[string]*Series, len(want.Series))
	for i := range want.Series {
		ws[want.Series[i].Label] = &want.Series[i]
	}
	gs := make(map[string]*Series, len(got.Series))
	for i := range got.Series {
		gs[got.Series[i].Label] = &got.Series[i]
	}
	for label := range ws {
		if _, ok := gs[label]; !ok {
			diffs = append(diffs, fmt.Sprintf("%s/%s: series missing from new run", got.ID, label))
		}
	}
	for label, g := range gs {
		w, ok := ws[label]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s/%s: series not in baseline", got.ID, label))
			continue
		}
		if len(g.Y) != len(w.Y) {
			diffs = append(diffs, fmt.Sprintf("%s/%s: %d points vs baseline %d", got.ID, label, len(g.Y), len(w.Y)))
			continue
		}
		for i := range g.Y {
			if !approxEqual(g.Y[i], w.Y[i], relTol) || !approxEqual(g.X[i], w.X[i], relTol) {
				diffs = append(diffs, fmt.Sprintf("%s/%s[%d]: (%.6g, %.6g) vs baseline (%.6g, %.6g)",
					got.ID, label, i, g.X[i], g.Y[i], w.X[i], w.Y[i]))
			}
		}
	}
	return diffs
}

// approxEqual compares with relative tolerance and a 1e-9 absolute floor.
func approxEqual(a, b, relTol float64) bool {
	d := math.Abs(a - b)
	if d <= 1e-9 {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= relTol*scale
}
