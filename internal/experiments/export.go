package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonFigure is the stable wire format for exported figures.
type jsonFigure struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	XLabel string       `json:"x_label"`
	YLabel string       `json:"y_label"`
	Notes  []string     `json:"notes,omitempty"`
	Series []jsonSeries `json:"series"`
}

type jsonSeries struct {
	Label string    `json:"label"`
	X     []float64 `json:"x"`
	Y     []float64 `json:"y"`
}

// WriteJSON exports figures as a JSON array, for plotting outside Go.
func WriteJSON(w io.Writer, figs []*Figure) error {
	out := make([]jsonFigure, 0, len(figs))
	for _, f := range figs {
		if f == nil {
			return fmt.Errorf("experiments: nil figure in export")
		}
		jf := jsonFigure{
			ID: f.ID, Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel,
			Notes:  f.Notes,
			Series: make([]jsonSeries, 0, len(f.Series)),
		}
		for _, s := range f.Series {
			jf.Series = append(jf.Series, jsonSeries{Label: s.Label, X: s.X, Y: s.Y})
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses figures previously exported by WriteJSON, enabling
// diffing of runs across machines or versions.
func ReadJSON(r io.Reader) ([]*Figure, error) {
	var in []jsonFigure
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("experiments: decode figures: %w", err)
	}
	out := make([]*Figure, 0, len(in))
	for _, jf := range in {
		f := &Figure{
			ID: jf.ID, Title: jf.Title, XLabel: jf.XLabel, YLabel: jf.YLabel,
			Notes: jf.Notes,
		}
		for _, s := range jf.Series {
			if len(s.X) != len(s.Y) {
				return nil, fmt.Errorf("experiments: figure %s series %q: x/y length mismatch", jf.ID, s.Label)
			}
			f.Series = append(f.Series, Series(s))
		}
		out = append(out, f)
	}
	return out, nil
}

// RenderSeedStats writes the multi-seed robustness table, including the
// Welch p-values of each algorithm's metrics against Default.
func RenderSeedStats(w io.Writer, stats []SeedStats) error {
	headers := []string{"algorithm", "seeds", "rebuffer/user (s)", "p", "energy/user (J)", "p"}
	rows := make([][]string, len(stats))
	pval := func(label string, p float64) string {
		if label == "Default" {
			return "-"
		}
		if p < 0.001 {
			return "<0.001"
		}
		return fmt.Sprintf("%.3f", p)
	}
	for i, st := range stats {
		rows[i] = []string{
			st.Label,
			fmt.Sprintf("%d", st.Seeds),
			fmt.Sprintf("%.1f +/- %.1f", st.RebufferMean, st.RebufferStd),
			pval(st.Label, st.RebufferP),
			fmt.Sprintf("%.1f +/- %.1f", st.EnergyMean, st.EnergyStd),
			pval(st.Label, st.EnergyP),
		}
	}
	return writeTable(w, headers, rows)
}
