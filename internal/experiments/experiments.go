// Package experiments regenerates every figure of the paper's evaluation
// (§VI, Figs. 2–10). Each FigXX function runs the required simulations and
// returns a Figure: labeled series of (x, y) points that correspond to the
// paper's plotted curves, plus notes recording how derived parameters
// (RTMA's Φ, EMA's V) were obtained.
//
// The harness follows the paper's experimental protocol:
//
//   - The Default greedy strategy is run first; its measured energy and
//     rebuffering provide the reference values E_Default and R_Default.
//   - RTMA's budget is Φ = α·E_Default (E_Default measured as transmission
//     energy per radio-active user-slot, the Eq. 12 scale — see DESIGN.md).
//   - EMA's rebuffering bound is Ω = β·R_Default; the Lyapunov weight V is
//     calibrated by bisection so the measured PC meets Ω, since the paper
//     does not publish its Ω→V mapping.
//
// All runs are deterministic in Options.Seed. Results are memoized within
// a Runner so figures sharing a scenario (e.g. Figs. 2 and 3) reuse runs.
package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"jointstream/internal/cell"
	"jointstream/internal/metrics"
	"jointstream/internal/oracle"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// Options selects the workload scale of the experiment suite.
type Options struct {
	// Seed drives all workload generation.
	Seed uint64
	// Cell is the base simulator configuration.
	Cell cell.Config
	// UserCounts is the x-axis of the user-number sweeps (Figs. 4a, 5, 8a,
	// 9, 10).
	UserCounts []int
	// AvgSizesMB is the x-axis of the data-amount sweeps (Figs. 4b, 8b).
	AvgSizesMB []float64
	// CDFUsers and CDFAvgSizeMB configure the CDF figures (2, 3, 6, 7).
	CDFUsers     int
	CDFAvgSizeMB float64
	// Alphas and Betas are the constraint sweeps of Figs. 4 and 8.
	Alphas, Betas []float64
	// VCalibration bounds the bisection for EMA's Lyapunov weight.
	VMin, VMax float64
	// CalibrationSteps is the bisection depth for V (each step is one
	// simulation run).
	CalibrationSteps int
	// SignalPeriodSlots overrides the channel fade period (0 keeps the
	// workload default). Quick suites with short sessions scale it down
	// so every session still spans several fade cycles.
	SignalPeriodSlots int
	// RateJitterFrac makes sessions variable-bit-rate (extension
	// scenarios; the paper's evaluation is constant-rate).
	RateJitterFrac float64
	// MeanInterarrival staggers user arrivals with exponential gaps
	// (extension scenarios; the paper starts everyone at slot 0).
	MeanInterarrival units.Seconds
}

// PaperOptions returns the full §VI experiment scale: users 20–40, videos
// averaging 150–550 MB, CDFs at N=40 with 350 MB averages.
func PaperOptions() Options {
	return Options{
		Seed:             42,
		Cell:             cell.PaperConfig(),
		UserCounts:       []int{20, 25, 30, 35, 40},
		AvgSizesMB:       []float64{150, 250, 350, 450, 550},
		CDFUsers:         40,
		CDFAvgSizeMB:     350,
		Alphas:           []float64{0.8, 1.0, 1.2},
		Betas:            []float64{0.8, 1.0, 1.2},
		VMin:             0.005,
		VMax:             16,
		CalibrationSteps: 9,
	}
}

// QuickOptions returns a miniature suite (small videos, few users) that
// exercises every figure path in seconds; used by tests and CI.
func QuickOptions() Options {
	cfg := cell.PaperConfig()
	// 3.8 MB/s against ~3.6 MB/s of demand at 8 users: tight enough that
	// fairness differences between schedulers are visible without overload.
	cfg.Capacity = 3800
	cfg.MaxSlots = 2000
	return Options{
		Seed:              42,
		Cell:              cfg,
		UserCounts:        []int{4, 8},
		AvgSizesMB:        []float64{10, 20},
		CDFUsers:          8,
		CDFAvgSizeMB:      15,
		Alphas:            []float64{0.8, 1.0, 1.2},
		Betas:             []float64{0.8, 1.0, 1.2},
		VMin:              0.005,
		VMax:              16,
		CalibrationSteps:  6,
		SignalPeriodSlots: 24,
	}
}

// Validate checks the options.
func (o Options) Validate() error {
	if err := o.Cell.Validate(); err != nil {
		return err
	}
	if len(o.UserCounts) == 0 || len(o.AvgSizesMB) == 0 {
		return fmt.Errorf("experiments: empty sweep axes")
	}
	for _, n := range o.UserCounts {
		if n <= 0 {
			return fmt.Errorf("experiments: non-positive user count %d", n)
		}
	}
	for _, mb := range o.AvgSizesMB {
		if mb <= 0 {
			return fmt.Errorf("experiments: non-positive average size %v", mb)
		}
	}
	if o.CDFUsers <= 0 || o.CDFAvgSizeMB <= 0 {
		return fmt.Errorf("experiments: invalid CDF scenario (%d users, %v MB)", o.CDFUsers, o.CDFAvgSizeMB)
	}
	if len(o.Alphas) == 0 || len(o.Betas) == 0 {
		return fmt.Errorf("experiments: empty alpha/beta sweeps")
	}
	if o.VMin <= 0 || o.VMax <= o.VMin {
		return fmt.Errorf("experiments: invalid V range [%v, %v]", o.VMin, o.VMax)
	}
	if o.CalibrationSteps < 1 {
		return fmt.Errorf("experiments: need at least one calibration step")
	}
	return nil
}

// Series is one labeled curve of a figure.
type Series struct {
	Label string
	X, Y  []float64
}

// Figure is the regenerated content of one paper figure.
type Figure struct {
	ID     string // "Fig. 2", "Fig. 4a", ...
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Runner executes figures, memoizing simulation results by scenario so
// shared Default reference runs are computed once. Runner is safe for
// concurrent use: simultaneous requests for the same run coalesce onto a
// single simulation (singleflight), so AllParallel never duplicates work.
//
// Beneath the result cache sits a workload cache: every scenario's
// sessions are generated and prewarmed once, their link table compiled
// once, and the pair shared read-only by every scheduler run over that
// scenario (a (users, avgSize) scenario is simulated by up to eight
// schedulers plus the EMA calibration ladder). Sharing is safe because
// the workload leader fully prewarms the traces and compiles the table
// before publishing, after which every later Prewarm over the same
// horizon is a read-only no-op and nothing in the engine writes to
// sessions or table.
type Runner struct {
	opts Options

	mu       sync.Mutex
	cache    map[string]*cell.Result
	inflight map[string]chan struct{}

	wlMu       sync.Mutex
	wlCache    map[string]*sharedWorkload
	wlInflight map[string]chan struct{}
	wlHits     int64
	wlMisses   int64

	// oracleCache memoizes the tail-accounted oracle bracket per
	// scenario (the lookahead sweep prices many K against one bracket).
	oracleMu    sync.Mutex
	oracleCache map[string]oracle.Bounds

	// Multi-arm dispatch counters: armGroups is the number of
	// cell.RunArms lockstep groups executed, groupedRuns the total
	// simulations that ran inside one (always ≥ 2 per group; singleton
	// batches fall back to the plain single-arm path and count in
	// neither).
	armGroups   atomic.Int64
	groupedRuns atomic.Int64

	// runCtx holds the context the current parallel suite runs under;
	// simulate threads it into cell.RunCtx so a cancelled AllParallel
	// stops in-flight simulations within one slot instead of letting
	// them finish their horizon. Nil means context.Background().
	runCtx atomic.Pointer[context.Context]
}

// setRunContext installs the context every subsequent simulation is
// checked against. It returns a restore function (AllParallel defers it
// so sequential callers keep Background semantics).
func (r *Runner) setRunContext(ctx context.Context) func() {
	r.runCtx.Store(&ctx)
	return func() { r.runCtx.Store(nil) }
}

// runContext returns the context simulations should honor.
func (r *Runner) runContext() context.Context {
	if p := r.runCtx.Load(); p != nil {
		return *p
	}
	return context.Background()
}

// sharedWorkload is one scenario's immutable prewarmed workload plus its
// compiled link table (nil when the table would exceed the size cap).
type sharedWorkload struct {
	sessions []*workload.Session
	link     *cell.LinkTable
}

// NewRunner validates the options and returns a Runner.
func NewRunner(opts Options) (*Runner, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Runner{
		opts:       opts,
		cache:      make(map[string]*cell.Result),
		inflight:   make(map[string]chan struct{}),
		wlCache:    make(map[string]*sharedWorkload),
		wlInflight: make(map[string]chan struct{}),
	}, nil
}

// cacheSize reports the number of memoized runs (tests).
func (r *Runner) cacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}

// WorkloadCacheStats reports how often simulations reused an
// already-generated scenario workload: hits are runs that skipped both
// workload generation and link-table compilation; misses are the
// distinct scenarios actually built.
func (r *Runner) WorkloadCacheStats() (hits, misses int64) {
	r.wlMu.Lock()
	defer r.wlMu.Unlock()
	return r.wlHits, r.wlMisses
}

// MultiArmStats reports the multi-arm dispatch counters: groups is the
// number of lockstep cell.RunArms calls the figure sweeps issued, runs
// the total simulations executed inside them. runs/groups is the mean
// arm count per workload group.
func (r *Runner) MultiArmStats() (groups, runs int64) {
	return r.armGroups.Load(), r.groupedRuns.Load()
}

// Options returns the runner's options.
func (r *Runner) Options() Options { return r.opts }

// scenario identifies one workload setting.
type scenario struct {
	users     int
	avgSizeMB float64
	recordCDF bool
}

func (s scenario) workload(o Options) workload.Config {
	cfg := workload.PaperDefaults(s.users).WithAvgSize(units.KB(s.avgSizeMB * 1000))
	if o.SignalPeriodSlots > 0 {
		cfg.Signal.PeriodSlots = o.SignalPeriodSlots
	}
	cfg.RateJitterFrac = o.RateJitterFrac
	cfg.MeanInterarrival = o.MeanInterarrival
	return cfg
}

// schedBuilder constructs a fresh scheduler for a run. Schedulers carry
// per-run state, so every simulation gets a new instance. Builders that
// need the scenario's shared assets — the Predictive scheduler reads its
// forecast from the compiled link table — set buildWith instead of
// build; simulate resolves the workload first and passes it in.
type schedBuilder struct {
	key       string // cache key component
	build     func() (sched.Scheduler, error)
	buildWith func(*sharedWorkload) (sched.Scheduler, error)
}

// runKey is the result-cache key of one (scenario, scheduler) run. The
// single-arm and multi-arm paths share it, so a result computed by
// either satisfies later requests from both.
func runKey(sc scenario, sb schedBuilder) string {
	return fmt.Sprintf("%s|n=%d|mb=%g|cdf=%v", sb.key, sc.users, sc.avgSizeMB, sc.recordCDF)
}

// run executes (or recalls) one simulation. Concurrent callers asking
// for the same key block until the first caller's simulation finishes.
func (r *Runner) run(sc scenario, sb schedBuilder) (*cell.Result, error) {
	key := runKey(sc, sb)
	for {
		r.mu.Lock()
		if res, ok := r.cache[key]; ok {
			r.mu.Unlock()
			return res, nil
		}
		if wait, ok := r.inflight[key]; ok {
			r.mu.Unlock()
			<-wait
			continue // re-check: the leader stored a result or failed
		}
		done := make(chan struct{})
		r.inflight[key] = done
		r.mu.Unlock()

		res, err := r.simulate(sc, sb)

		r.mu.Lock()
		delete(r.inflight, key)
		if err == nil {
			r.cache[key] = res
		}
		r.mu.Unlock()
		close(done)
		return res, err
	}
}

// runBatch executes several scheduler arms over one scenario, in
// lockstep when possible. Arms already cached are returned from the
// cache; arms another caller is computing are waited on; the remaining
// arms are claimed under the singleflight map and dispatched as ONE
// cell.RunArms group over the scenario's shared workload and link
// table, so each slot's static physics window is read by every claimed
// arm while still cache-hot. Results come back in builder order. Every
// arm's Result is byte-identical to the single-arm r.run — RunArms
// guarantees it by construction and TestRunBatchMatchesSingle plus the
// internal/simtest multi-arm matrix pin it — so batched and unbatched
// sweeps fill the cache with interchangeable results.
func (r *Runner) runBatch(sc scenario, sbs []schedBuilder) ([]*cell.Result, error) {
	results := make([]*cell.Result, len(sbs))
	keys := make([]string, len(sbs))
	var mine []int // indices this caller claimed
	r.mu.Lock()
	for i, sb := range sbs {
		keys[i] = runKey(sc, sb)
		if res, ok := r.cache[keys[i]]; ok {
			results[i] = res
			continue
		}
		if _, busy := r.inflight[keys[i]]; busy {
			continue // some other caller leads this arm; wait below
		}
		r.inflight[keys[i]] = make(chan struct{})
		mine = append(mine, i)
	}
	r.mu.Unlock()

	if len(mine) > 0 {
		got, err := r.simulateArms(sc, sbs, mine)
		r.mu.Lock()
		for j, i := range mine {
			done := r.inflight[keys[i]]
			delete(r.inflight, keys[i])
			if err == nil {
				r.cache[keys[i]] = got[j]
				results[i] = got[j]
			}
			close(done)
		}
		r.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}

	// Arms led by concurrent callers (or raced into the cache between the
	// two critical sections): the plain singleflight path waits them out.
	for i, sb := range sbs {
		if results[i] != nil {
			continue
		}
		res, err := r.run(sc, sb)
		if err != nil {
			return nil, err
		}
		results[i] = res
	}
	return results, nil
}

// simulateArms builds one simulator per claimed arm over the scenario's
// shared workload and runs them: alone via the ordinary single-arm path,
// together via cell.RunArms lockstep.
func (r *Runner) simulateArms(sc scenario, sbs []schedBuilder, idx []int) ([]*cell.Result, error) {
	if len(idx) == 1 {
		res, err := r.simulate(sc, sbs[idx[0]])
		if err != nil {
			return nil, err
		}
		return []*cell.Result{res}, nil
	}
	cfg := r.opts.Cell
	cfg.RecordPerUserSlots = sc.recordCDF
	sw, err := r.workloadFor(sc)
	if err != nil {
		return nil, err
	}
	cfg.Link = sw.link
	sims := make([]*cell.Simulator, len(idx))
	for j, i := range idx {
		sb := sbs[i]
		var s sched.Scheduler
		if sb.buildWith != nil {
			s, err = sb.buildWith(sw)
		} else {
			s, err = sb.build()
		}
		if err != nil {
			return nil, err
		}
		if sims[j], err = cell.New(cfg, sw.sessions, s); err != nil {
			return nil, err
		}
	}
	r.armGroups.Add(1)
	r.groupedRuns.Add(int64(len(sims)))
	return cell.RunArmsCtx(r.runContext(), sims)
}

// workloadFor returns the scenario's shared workload, generating and
// compiling it on first request. The key deliberately omits recordCDF —
// recording per-user samples changes what a run collects, not the
// demand or the channel, so CDF and non-CDF runs share one workload.
// The per-Runner option knobs that shape generation (seed, signal
// period, jitter, interarrival) are constants of the Runner, so (users,
// avgSize) identifies the workload completely.
func (r *Runner) workloadFor(sc scenario) (*sharedWorkload, error) {
	key := fmt.Sprintf("n=%d|mb=%g", sc.users, sc.avgSizeMB)
	for {
		r.wlMu.Lock()
		if sw, ok := r.wlCache[key]; ok {
			r.wlHits++
			r.wlMu.Unlock()
			return sw, nil
		}
		if wait, ok := r.wlInflight[key]; ok {
			r.wlMu.Unlock()
			<-wait
			continue
		}
		done := make(chan struct{})
		r.wlInflight[key] = done
		r.wlMisses++
		r.wlMu.Unlock()

		sw, err := r.buildWorkload(sc)

		r.wlMu.Lock()
		delete(r.wlInflight, key)
		if err == nil {
			r.wlCache[key] = sw
		}
		r.wlMu.Unlock()
		close(done)
		return sw, err
	}
}

// buildWorkload generates, prewarms, and link-compiles one scenario
// workload. After it returns, the sessions' stochastic memos cover the
// full horizon, so sharing them across concurrent simulators is safe.
func (r *Runner) buildWorkload(sc scenario) (*sharedWorkload, error) {
	wl, err := workload.Generate(sc.workload(r.opts), rng.New(r.opts.Seed))
	if err != nil {
		return nil, err
	}
	// Prewarm before publishing, whether or not the link table compiles
	// below: concurrent simulators over the shared sessions re-Prewarm
	// them from cell.New, which is only a safe (read-only) no-op if the
	// stochastic memos already span the horizon. CompileLink prewarms
	// too, but it is skipped for over-cap or table-disabled runs.
	workers := r.opts.Cell.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workload.PrewarmAll(workers, wl, r.opts.Cell.MaxSlots)
	sw := &sharedWorkload{sessions: wl}
	maxRows := r.opts.Cell.LinkTableMaxRows
	if maxRows == 0 {
		maxRows = cell.DefaultLinkTableMaxRows
	}
	if maxRows > 0 && int64(len(wl))*int64(r.opts.Cell.MaxSlots) <= int64(maxRows) {
		lt, err := cell.CompileLink(r.opts.Cell, wl)
		if err != nil {
			return nil, err
		}
		sw.link = lt
	}
	return sw, nil
}

// simulate performs the actual run (no result caching; the scenario's
// workload and link table come from the shared workload cache).
func (r *Runner) simulate(sc scenario, sb schedBuilder) (*cell.Result, error) {
	cfg := r.opts.Cell
	cfg.RecordPerUserSlots = sc.recordCDF
	sw, err := r.workloadFor(sc)
	if err != nil {
		return nil, err
	}
	cfg.Link = sw.link
	var s sched.Scheduler
	if sb.buildWith != nil {
		s, err = sb.buildWith(sw)
	} else {
		s, err = sb.build()
	}
	if err != nil {
		return nil, err
	}
	sim, err := cell.New(cfg, sw.sessions, s)
	if err != nil {
		return nil, err
	}
	return sim.RunCtx(r.runContext())
}

func (r *Runner) defaultRun(sc scenario) (*cell.Result, error) {
	return r.run(sc, schedBuilder{key: "default", build: func() (sched.Scheduler, error) {
		return sched.NewDefault(), nil
	}})
}

// rtmaBuilder derives Φ = alpha·E_Default from the scenario's Default run.
func (r *Runner) rtmaRun(sc scenario, alpha float64) (*cell.Result, *sched.RTMA, error) {
	def, err := r.defaultRun(scenario{users: sc.users, avgSizeMB: sc.avgSizeMB})
	if err != nil {
		return nil, nil, err
	}
	eRef := def.TransEnergyPerActiveSlot()
	budget, err := sched.BudgetForAlpha(eRef, alpha)
	if err != nil {
		return nil, nil, err
	}
	var built *sched.RTMA
	res, err := r.run(sc, schedBuilder{
		key: fmt.Sprintf("rtma(a=%g)", alpha),
		build: func() (sched.Scheduler, error) {
			rt, err := sched.NewRTMA(sched.RTMAConfig{
				Budget: budget, Radio: r.opts.Cell.Radio, RRC: r.opts.Cell.RRC,
			})
			built = rt
			return rt, err
		},
	})
	if err != nil {
		return nil, nil, err
	}
	if built == nil {
		// Cached run: rebuild the scheduler just to expose its threshold.
		built, err = sched.NewRTMA(sched.RTMAConfig{
			Budget: budget, Radio: r.opts.Cell.Radio, RRC: r.opts.Cell.RRC,
		})
		if err != nil {
			return nil, nil, err
		}
	}
	return res, built, nil
}

// rtmaBuilderFor returns the builder for one RTMA budget; the key must
// match rtmaRun's so batched and single runs share cache entries.
func (r *Runner) rtmaBuilderFor(alpha float64, budget units.MJ) schedBuilder {
	return schedBuilder{
		key: fmt.Sprintf("rtma(a=%g)", alpha),
		build: func() (sched.Scheduler, error) {
			return sched.NewRTMA(sched.RTMAConfig{
				Budget: budget, Radio: r.opts.Cell.Radio, RRC: r.opts.Cell.RRC,
			})
		},
	}
}

// rtmaBatch runs RTMA at every alpha over one scenario as a lockstep arm
// group: the budgets all derive from the same Default reference run, so
// once that run exists every alpha arm is ready and they share the
// scenario's workload slot for slot. Results come back in alpha order.
func (r *Runner) rtmaBatch(sc scenario, alphas []float64) ([]*cell.Result, error) {
	def, err := r.defaultRun(scenario{users: sc.users, avgSizeMB: sc.avgSizeMB})
	if err != nil {
		return nil, err
	}
	eRef := def.TransEnergyPerActiveSlot()
	sbs := make([]schedBuilder, len(alphas))
	for i, a := range alphas {
		budget, err := sched.BudgetForAlpha(eRef, a)
		if err != nil {
			return nil, err
		}
		sbs[i] = r.rtmaBuilderFor(a, budget)
	}
	return r.runBatch(sc, sbs)
}

// emaBuilderFor returns the builder for one Lyapunov weight; single and
// batched EMA runs share cache entries through the identical key.
func (r *Runner) emaBuilderFor(v float64) schedBuilder {
	return schedBuilder{
		key: fmt.Sprintf("ema(v=%.6g)", v),
		build: func() (sched.Scheduler, error) {
			return sched.NewEMA(sched.EMAConfig{V: v, RRC: r.opts.Cell.RRC})
		},
	}
}

func (r *Runner) emaRunWithV(sc scenario, v float64) (*cell.Result, error) {
	return r.run(sc, r.emaBuilderFor(v))
}

// calibrateV finds the largest V in [VMin, VMax] whose measured average
// rebuffering PC stays within omega, by bisection on log V. PC(V) is
// monotonically non-decreasing in V (more energy bias defers more data),
// which the Theorem-1 bound PC ≤ (B + V·E*)/ε also reflects.
func (r *Runner) calibrateV(sc scenario, omega units.Seconds) (float64, error) {
	lo, hi := r.opts.VMin, r.opts.VMax
	pcAt := func(v float64) (units.Seconds, error) {
		res, err := r.emaRunWithV(sc, v)
		if err != nil {
			return 0, err
		}
		return res.PC(), nil
	}
	pcLo, err := pcAt(lo)
	if err != nil {
		return 0, err
	}
	if pcLo > omega {
		// Even the most rebuffering-averse setting misses the bound; use
		// the minimum V (the paper's EMA has no lower mechanism either).
		return lo, nil
	}
	pcHi, err := pcAt(hi)
	if err != nil {
		return 0, err
	}
	if pcHi <= omega {
		return hi, nil
	}
	for i := 0; i < r.opts.CalibrationSteps; i++ {
		mid := math.Sqrt(lo * hi) // geometric midpoint
		pc, err := pcAt(mid)
		if err != nil {
			return 0, err
		}
		if pc <= omega {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// emaRun calibrates V for Ω = beta·R_Default and runs EMA.
func (r *Runner) emaRun(sc scenario, beta float64) (*cell.Result, float64, error) {
	def, err := r.defaultRun(scenario{users: sc.users, avgSizeMB: sc.avgSizeMB})
	if err != nil {
		return nil, 0, err
	}
	omega := units.Seconds(float64(def.PC()) * beta)
	v, err := r.calibrateV(scenario{users: sc.users, avgSizeMB: sc.avgSizeMB}, omega)
	if err != nil {
		return nil, 0, err
	}
	// Calibration runs use recordCDF=false scenarios; this final run keys
	// on sc itself, so a CDF-recording variant re-simulates with samples.
	res, err := r.emaRunWithV(sc, v)
	if err != nil {
		return nil, 0, err
	}
	return res, v, nil
}

// Baseline builders shared by comparison figures. Watermarks follow common
// player configurations (see internal/sched).
func defaultBuilder() schedBuilder {
	return schedBuilder{key: "default", build: func() (sched.Scheduler, error) {
		return sched.NewDefault(), nil
	}}
}

func throttlingBuilder() schedBuilder {
	return schedBuilder{key: "throttling", build: func() (sched.Scheduler, error) {
		return sched.NewThrottling(1.25)
	}}
}

func onOffBuilder() schedBuilder {
	return schedBuilder{key: "onoff", build: func() (sched.Scheduler, error) {
		return sched.NewOnOff(10, 40)
	}}
}

func salsaBuilder() schedBuilder {
	return schedBuilder{key: "salsa", build: func() (sched.Scheduler, error) {
		return sched.NewSALSA(15, 0.3)
	}}
}

func eStreamerBuilder() schedBuilder {
	return schedBuilder{key: "estreamer", build: func() (sched.Scheduler, error) {
		return sched.NewEStreamer(30, 5)
	}}
}

// cdfSeries converts a sample into CDF curve points.
func cdfSeries(label string, sample []float64, points int) (Series, error) {
	c, err := metrics.NewCDF(sample)
	if err != nil {
		return Series{}, fmt.Errorf("experiments: %s: %w", label, err)
	}
	pts, err := c.Points(points)
	if err != nil {
		return Series{}, err
	}
	s := Series{Label: label, X: make([]float64, len(pts)), Y: make([]float64, len(pts))}
	for i, p := range pts {
		s.X[i] = p.X
		s.Y[i] = p.P
	}
	return s, nil
}

// fairnessSamples extracts the per-slot Jain fairness series of a run.
func fairnessSamples(res *cell.Result) []float64 {
	out := make([]float64, len(res.PerSlot))
	for i, st := range res.PerSlot {
		out[i] = st.Fairness
	}
	return out
}

// perSlotTotalEnergyJ returns the per-slot total energy across users in
// joules (Fig. 7's sample).
func perSlotTotalEnergyJ(res *cell.Result) []float64 {
	out := make([]float64, len(res.PerSlot))
	for i, st := range res.PerSlot {
		out[i] = float64(st.Energy) / 1000
	}
	return out
}
