package experiments

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

func chaosTestOptions() ChaosOptions {
	o := DefaultChaosOptions()
	o.Users = 3
	o.VideoKB = 5000
	o.MaxSlots = 400
	o.SlotDeadline = 2 * time.Millisecond
	return o
}

func TestRunChaos(t *testing.T) {
	rep, err := RunChaos(chaosTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The clean baseline must show no degradation at all.
	b := rep.Baseline
	if b.Diag.TransientErrors != 0 || b.Diag.StaleSlots != 0 || b.Diag.MissedDeadlines != 0 {
		t.Errorf("baseline shows degradation: %+v", b.Diag)
	}
	if b.Completed != 3 || b.Detached != 0 {
		t.Errorf("baseline completed=%d detached=%d, want 3/0", b.Completed, b.Detached)
	}
	want := []string{"stall", "drop", "flap", "report-loss", "slow-read", "eof-early"}
	if len(rep.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), len(want))
	}
	byName := map[string]ChaosRow{}
	for i, row := range rep.Rows {
		if row.Fault != want[i] {
			t.Errorf("row %d = %q, want %q", i, row.Fault, want[i])
		}
		byName[row.Fault] = row
	}
	if byName["stall"].Diag.MissedDeadlines == 0 {
		t.Error("stall row shows no missed deadlines")
	}
	if byName["drop"].Diag.TransientErrors == 0 {
		t.Error("drop row shows no transient errors")
	}
	if byName["flap"].Diag.StaleSlots == 0 && byName["report-loss"].Diag.StaleSlots == 0 {
		t.Error("report-fault rows show no stale slots")
	}
	// Faulted delivery paths must not lose sessions: drops re-queue and
	// retry, stalls resolve.
	for _, name := range []string{"drop", "slow-read"} {
		if row := byName[name]; row.Completed != 3 {
			t.Errorf("%s row completed %d/3 sessions", name, row.Completed)
		}
	}
	// Site outage: the window is [5, 30) on one site.
	if rep.SiteOutage.DegradedSlots != 25 {
		t.Errorf("site outage degraded slots = %d, want 25", rep.SiteOutage.DegradedSlots)
	}
	if rep.SiteOutage.OutageRebufferSec < rep.SiteOutage.BaselineRebufferSec {
		t.Errorf("site outage rebuffer %v below baseline %v",
			rep.SiteOutage.OutageRebufferSec, rep.SiteOutage.BaselineRebufferSec)
	}
	for _, part := range []string{"baseline", "stall", "site-outage", "diagnostics"} {
		if !strings.Contains(rep.Render(), part) {
			t.Errorf("rendered report missing %q", part)
		}
	}
}

func TestChaosOptionsValidate(t *testing.T) {
	for _, mutate := range []func(*ChaosOptions){
		func(o *ChaosOptions) { o.Users = 0 },
		func(o *ChaosOptions) { o.VideoKB = 0 },
		func(o *ChaosOptions) { o.MaxSlots = 0 },
		func(o *ChaosOptions) { o.SlotDeadline = 0 },
	} {
		o := DefaultChaosOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("invalid chaos options accepted: %+v", o)
		}
	}
}

// TestAllParallelCancellation: a cancelled context must abort the
// parallel suite promptly — in-flight simulations stop at their next
// slot checkpoint — and leave no worker goroutines behind.
func TestAllParallelCancellation(t *testing.T) {
	r, err := NewRunner(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	// Cancel up front: the quick suite can outrun any mid-flight cancel
	// on fast machines, making the test racy. (Mid-run cancellation of a
	// simulation is covered by cell.TestRunCtxCancellation.)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := r.AllParallel(ctx, 4)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled suite returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled AllParallel did not return")
	}
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("goroutines leaked: before %d, after %d", before, runtime.NumGoroutine())
		case <-time.After(10 * time.Millisecond):
		}
	}
}
