package experiments

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"jointstream/internal/cell"
	"jointstream/internal/sched"
)

func quickRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(QuickOptions())
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	return r
}

func TestOptionsValidate(t *testing.T) {
	good := QuickOptions()
	if err := good.Validate(); err != nil {
		t.Fatalf("quick options invalid: %v", err)
	}
	mutations := []struct {
		name string
		f    func(*Options)
	}{
		{"empty users", func(o *Options) { o.UserCounts = nil }},
		{"zero user count", func(o *Options) { o.UserCounts = []int{0} }},
		{"empty sizes", func(o *Options) { o.AvgSizesMB = nil }},
		{"negative size", func(o *Options) { o.AvgSizesMB = []float64{-1} }},
		{"zero cdf users", func(o *Options) { o.CDFUsers = 0 }},
		{"empty alphas", func(o *Options) { o.Alphas = nil }},
		{"bad v range", func(o *Options) { o.VMin, o.VMax = 2, 1 }},
		{"zero calibration", func(o *Options) { o.CalibrationSteps = 0 }},
	}
	for _, m := range mutations {
		o := QuickOptions()
		m.f(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
		if _, err := NewRunner(o); err == nil {
			t.Errorf("%s: NewRunner accepted", m.name)
		}
	}
}

func checkFigure(t *testing.T, fig *Figure, wantSeries int) {
	t.Helper()
	if fig == nil {
		t.Fatal("nil figure")
	}
	if len(fig.Series) != wantSeries {
		t.Fatalf("%s: got %d series, want %d", fig.ID, len(fig.Series), wantSeries)
	}
	for _, s := range fig.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			t.Errorf("%s/%s: bad series lengths x=%d y=%d", fig.ID, s.Label, len(s.X), len(s.Y))
		}
		for i, y := range s.Y {
			if y < 0 {
				t.Errorf("%s/%s: negative y[%d]=%v", fig.ID, s.Label, i, y)
			}
		}
	}
}

func TestFig2And3ShareRuns(t *testing.T) {
	r := quickRunner(t)
	f2, err := r.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f2, 2)
	runsAfterFig2 := r.cacheSize()
	f3, err := r.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f3, 2)
	if r.cacheSize() != runsAfterFig2 {
		t.Errorf("Fig3 re-simulated: cache grew %d -> %d", runsAfterFig2, r.cacheSize())
	}
	// CDF y-axes span [0, 1].
	for _, s := range f2.Series {
		if s.Y[0] != 0 || s.Y[len(s.Y)-1] != 1 {
			t.Errorf("Fig2/%s: CDF endpoints %v..%v", s.Label, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
}

func TestFig2FairnessSane(t *testing.T) {
	// The paper-scale fairness ordering (RTMA well above Default) only
	// emerges under heavy contention; see the contended end-to-end test in
	// internal/cell and the full-scale results in EXPERIMENTS.md. At the
	// quick scale we check the CDF is structurally sound and RTMA's median
	// fairness is decent in absolute terms.
	r := quickRunner(t)
	fig, err := r.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	med := func(s Series) float64 {
		for i, p := range s.Y {
			if p >= 0.5 {
				return s.X[i]
			}
		}
		return s.X[len(s.X)-1]
	}
	if m := med(fig.Series[1]); m < 0.5 {
		t.Errorf("RTMA median fairness %v below 0.5", m)
	}
	for _, s := range fig.Series {
		for _, x := range s.X {
			if x < 0 || x > 1+1e-9 {
				t.Errorf("%s: fairness sample %v outside [0,1]", s.Label, x)
			}
		}
	}
}

func TestFig4Sweeps(t *testing.T) {
	r := quickRunner(t)
	f4a, err := r.Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f4a, 1+len(r.opts.Alphas))
	if got := len(f4a.Series[0].X); got != len(r.opts.UserCounts) {
		t.Errorf("Fig4a x-axis has %d points", got)
	}
	f4b, err := r.Fig4b()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f4b, 1+len(r.opts.Alphas))
	if got := len(f4b.Series[0].X); got != len(r.opts.AvgSizesMB) {
		t.Errorf("Fig4b x-axis has %d points", got)
	}
}

func TestFig5Comparisons(t *testing.T) {
	r := quickRunner(t)
	f5a, err := r.Fig5a()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f5a, 4)
	f5b, err := r.Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f5b, 8) // four algorithms x (total, tail)
	// Tail series must not exceed the total series.
	for i := 0; i < len(f5b.Series); i += 2 {
		total, tail := f5b.Series[i], f5b.Series[i+1]
		if !strings.HasSuffix(tail.Label, "(tail)") {
			t.Fatalf("series %d not a tail series: %q", i+1, tail.Label)
		}
		for j := range total.Y {
			if tail.Y[j] > total.Y[j]+1e-9 {
				t.Errorf("%s: tail %v exceeds total %v", tail.Label, tail.Y[j], total.Y[j])
			}
		}
	}
}

func TestFig6And7(t *testing.T) {
	r := quickRunner(t)
	f6, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f6, 2)
	f7, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f7, 2)
}

func TestFig8Sweeps(t *testing.T) {
	r := quickRunner(t)
	f8a, err := r.Fig8a()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f8a, 1+len(r.opts.Betas))
	f8b, err := r.Fig8b()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f8b, 1+len(r.opts.Betas))
}

func TestFig9(t *testing.T) {
	r := quickRunner(t)
	f9a, err := r.Fig9a()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f9a, 4)
	f9b, err := r.Fig9b()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f9b, 4)
}

func TestFig10(t *testing.T) {
	r := quickRunner(t)
	f10, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f10, 3)
}

func TestClaims(t *testing.T) {
	r := quickRunner(t)
	claims, err := r.Claims()
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) != 6 {
		t.Fatalf("got %d claims, want 6", len(claims))
	}
	ids := map[string]bool{}
	for _, c := range claims {
		if c.ID == "" || c.Statement == "" || c.Context == "" {
			t.Errorf("claim %+v incomplete", c)
		}
		if ids[c.ID] {
			t.Errorf("duplicate claim ID %s", c.ID)
		}
		ids[c.ID] = true
		if c.Met != (c.Measured >= c.PaperThreshold) {
			t.Errorf("claim %s: Met flag inconsistent", c.ID)
		}
	}
}

func TestCalibrationMonotonicity(t *testing.T) {
	// PC(V) should be non-decreasing in V on the quick scenario.
	r := quickRunner(t)
	sc := scenario{users: r.opts.CDFUsers, avgSizeMB: r.opts.CDFAvgSizeMB}
	var prev float64 = -1
	for _, v := range []float64{0.01, 0.1, 1, 8} {
		res, err := r.emaRunWithV(sc, v)
		if err != nil {
			t.Fatal(err)
		}
		pc := float64(res.PC())
		if pc < prev-1e-9 {
			t.Errorf("PC(V=%v) = %v decreased from %v", v, pc, prev)
		}
		prev = pc
	}
}

func TestRenderFigure(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Render(&sb, fig); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig. 4a") {
		t.Error("missing figure ID in render")
	}
	if !strings.Contains(out, "Default") || !strings.Contains(out, "RTMA alpha=1.0") {
		t.Errorf("missing series headers:\n%s", out)
	}
}

func TestRenderPairsForCDF(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Render(&sb, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CDF") {
		t.Error("CDF render missing labels")
	}
}

func TestRenderClaims(t *testing.T) {
	claims := []Claim{{
		ID: "x", Statement: "s", PaperThreshold: 0.5, Measured: 0.6, Met: true, Context: "c",
	}}
	var sb strings.Builder
	if err := RenderClaims(&sb, claims); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, ">=50%") || !strings.Contains(out, "60.0%") || !strings.Contains(out, "yes") {
		t.Errorf("claims render wrong:\n%s", out)
	}
}

func TestRendersEmptyFigure(t *testing.T) {
	var sb strings.Builder
	if err := Render(&sb, &Figure{ID: "Fig. X", Title: "empty"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no series") {
		t.Error("empty figure not handled")
	}
}

func TestAllRunsEveryFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure suite in -short mode")
	}
	r := quickRunner(t)
	figs, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 13 {
		t.Fatalf("got %d figures, want 13", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if seen[f.ID] {
			t.Errorf("duplicate figure %s", f.ID)
		}
		seen[f.ID] = true
	}
}

func TestRunnerDeterministic(t *testing.T) {
	a := quickRunner(t)
	b := quickRunner(t)
	fa, err := a.Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	for i := range fa.Series {
		for j := range fa.Series[i].Y {
			if fa.Series[i].Y[j] != fb.Series[i].Y[j] {
				t.Fatalf("non-deterministic figure: %s series %d point %d", fa.ID, i, j)
			}
		}
	}
}

func TestAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel suite in -short mode")
	}
	seq := quickRunner(t)
	par := quickRunner(t)
	want, err := seq.All()
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.AllParallel(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d figures, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("figure order differs at %d: %s vs %s", i, got[i].ID, want[i].ID)
		}
		if len(got[i].Series) != len(want[i].Series) {
			t.Fatalf("%s: series count differs", got[i].ID)
		}
		for si := range want[i].Series {
			for pi := range want[i].Series[si].Y {
				if got[i].Series[si].Y[pi] != want[i].Series[si].Y[pi] {
					t.Fatalf("%s/%s point %d differs: %v vs %v",
						got[i].ID, got[i].Series[si].Label, pi,
						got[i].Series[si].Y[pi], want[i].Series[si].Y[pi])
				}
			}
		}
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	r := quickRunner(t)
	// Hammer the same run from many goroutines; the cache must end with
	// exactly one entry for it.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.defaultRun(scenario{users: r.opts.CDFUsers, avgSizeMB: r.opts.CDFAvgSizeMB}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := r.cacheSize(); got != 1 {
		t.Errorf("cache has %d entries, want 1", got)
	}
}

// TestWorkloadCacheShares asserts every run over one scenario reuses a
// single generated workload: one miss per distinct (users, avgSize)
// pair, hits for everything else, and pointer-identical sessions.
func TestWorkloadCacheShares(t *testing.T) {
	r := quickRunner(t)
	sc := scenario{users: r.opts.CDFUsers, avgSizeMB: r.opts.CDFAvgSizeMB}
	a, err := r.workloadFor(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.workloadFor(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same scenario returned distinct workloads")
	}
	// The CDF-recording variant shares the non-CDF workload too.
	c, err := r.workloadFor(scenario{users: sc.users, avgSizeMB: sc.avgSizeMB, recordCDF: true})
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Error("CDF scenario did not reuse the workload")
	}
	if hits, misses := r.WorkloadCacheStats(); misses != 1 || hits != 2 {
		t.Errorf("stats hits=%d misses=%d, want 2/1", hits, misses)
	}
	if a.link == nil {
		t.Fatal("quick scenario should compile a link table")
	}
	if a.link.Users() != sc.users {
		t.Errorf("link table users %d, want %d", a.link.Users(), sc.users)
	}
}

// TestWorkloadCacheMissPerScenario runs a figure that spans several
// scenarios and checks misses equal the distinct scenario count.
func TestWorkloadCacheMissPerScenario(t *testing.T) {
	r := quickRunner(t)
	if _, err := r.Fig4a(); err != nil {
		t.Fatal(err)
	}
	hits, misses := r.WorkloadCacheStats()
	if want := int64(len(r.opts.UserCounts)); misses != want {
		t.Errorf("misses %d, want one per user-count scenario (%d)", misses, want)
	}
	if hits == 0 {
		t.Error("no workload cache hits across a multi-scheduler figure")
	}
}

// TestWorkloadSharedWithoutLinkTable hammers one table-disabled scenario
// from concurrent simulators. buildWorkload must fully prewarm the
// sessions before publishing even when CompileLink is skipped (over-cap
// or disabled runs), otherwise the simulators' Prewarm calls grow the
// shared stochastic memos concurrently — a data race this test exposes
// under CI's -race job — and here every goroutine must also produce a
// byte-identical Result.
func TestWorkloadSharedWithoutLinkTable(t *testing.T) {
	opts := QuickOptions()
	opts.Cell.LinkTableMaxRows = -1 // skip link compilation entirely
	// A long horizon widens the prewarm race window: if the published
	// sessions are not already warm, every simulator below has tens of
	// thousands of memo entries left to grow concurrently.
	opts.Cell.MaxSlots = 60000
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	sc := scenario{users: r.opts.CDFUsers, avgSizeMB: r.opts.CDFAvgSizeMB}
	sw, err := r.workloadFor(sc)
	if err != nil {
		t.Fatal(err)
	}
	if sw.link != nil {
		t.Fatal("table-disabled scenario compiled a link table")
	}
	const runs = 8
	results := make([]*cell.Result, runs)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for k := 0; k < runs; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			<-start // all goroutines hit cell.New's Prewarm together
			res, err := r.simulate(sc, schedBuilder{key: "default", build: func() (sched.Scheduler, error) {
				return sched.NewDefault(), nil
			}})
			if err != nil {
				t.Error(err)
				return
			}
			results[k] = res
		}(k)
	}
	close(start)
	wg.Wait()
	for k := 1; k < runs; k++ {
		if !reflect.DeepEqual(results[0], results[k]) {
			t.Fatalf("concurrent run %d diverged from run 0", k)
		}
	}
}

// TestWorkloadCacheBitwiseNeutral regenerates a figure with the link
// table disabled and a cold workload per run (fresh runner each time)
// and requires byte-identical output: caching and flattening are pure
// plumbing, never physics.
func TestWorkloadCacheBitwiseNeutral(t *testing.T) {
	withTable := quickRunner(t)
	figA, err := withTable.Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	opts.Cell.LinkTableMaxRows = -1 // interface path in every simulator
	withoutTable, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	figB, err := withoutTable.Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(figA, figB) {
		t.Error("figure differs between link-table and analytic runs")
	}
	if a, _ := withTable.WorkloadCacheStats(); a == 0 {
		t.Error("link-table runner recorded no cache hits")
	}
}

// TestRunBatchMatchesSingle is the Runner-level differential gate for
// the multi-arm dispatch: every arm of a lockstep batch must return a
// Result byte-identical to the same scheduler's single-arm run on a
// fresh Runner. simtest.SameResults is not imported here (it would
// cycle); reflect.DeepEqual over the full Result struct is strictly
// stronger anyway.
func TestRunBatchMatchesSingle(t *testing.T) {
	sbs := []schedBuilder{
		defaultBuilder(), throttlingBuilder(), onOffBuilder(),
		salsaBuilder(), eStreamerBuilder(),
	}
	for _, recordCDF := range []bool{false, true} {
		rBatch := quickRunner(t)
		rSingle := quickRunner(t)
		sc := scenario{users: 4, avgSizeMB: 10, recordCDF: recordCDF}
		batch, err := rBatch.runBatch(sc, sbs)
		if err != nil {
			t.Fatalf("runBatch: %v", err)
		}
		groups, runs := rBatch.MultiArmStats()
		if groups != 1 || runs != int64(len(sbs)) {
			t.Errorf("cdf=%v: MultiArmStats = (%d, %d), want (1, %d)", recordCDF, groups, runs, len(sbs))
		}
		for i, sb := range sbs {
			single, err := rSingle.run(sc, sb)
			if err != nil {
				t.Fatalf("run(%s): %v", sb.key, err)
			}
			if !reflect.DeepEqual(batch[i], single) {
				t.Errorf("cdf=%v: arm %s diverges from its single-arm run", recordCDF, sb.key)
			}
		}
	}
}

// TestRunBatchReusesCache checks the batch path is cache-transparent:
// arms already computed singly are returned from the cache (no arm
// group forms for them), and a batch's results satisfy later single
// requests without re-simulation.
func TestRunBatchReusesCache(t *testing.T) {
	r := quickRunner(t)
	sc := scenario{users: 4, avgSizeMB: 10}
	def, err := r.run(sc, defaultBuilder())
	if err != nil {
		t.Fatal(err)
	}
	batch, err := r.runBatch(sc, []schedBuilder{defaultBuilder(), throttlingBuilder(), onOffBuilder()})
	if err != nil {
		t.Fatal(err)
	}
	if batch[0] != def {
		t.Error("batch re-simulated a cached arm")
	}
	if groups, runs := r.MultiArmStats(); groups != 1 || runs != 2 {
		t.Errorf("MultiArmStats = (%d, %d), want (1, 2): only the uncached arms group", groups, runs)
	}
	size := r.cacheSize()
	for _, sb := range []schedBuilder{throttlingBuilder(), onOffBuilder()} {
		if _, err := r.run(sc, sb); err != nil {
			t.Fatal(err)
		}
	}
	if r.cacheSize() != size {
		t.Errorf("single runs after a batch re-simulated: cache grew %d -> %d", size, r.cacheSize())
	}
	// A singleton batch takes the single-arm path: no group forms.
	if _, err := r.runBatch(sc, []schedBuilder{salsaBuilder()}); err != nil {
		t.Fatal(err)
	}
	if groups, _ := r.MultiArmStats(); groups != 1 {
		t.Errorf("singleton batch formed an arm group")
	}
}
