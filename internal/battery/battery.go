// Package battery converts the simulator's radio energy figures into the
// battery-life terms the paper's motivation is written in ("battery
// endurance", §I): given a device battery and a measured per-session radio
// energy, how much charge does a video cost, and how many hours of
// streaming does a full charge sustain?
//
// The model is deliberately simple — a battery is an energy reservoir
// (capacity_mAh × voltage), and the radio energy reported by the
// simulator is the marginal drain attributable to streaming. Baseline
// device drain (screen, SoC) can be added as a constant power so the
// projections stay honest about what share of battery life the radio
// actually governs.
package battery

import (
	"fmt"

	"jointstream/internal/units"
)

// Pack describes a device battery.
type Pack struct {
	// CapacitymAh is the rated charge capacity.
	CapacitymAh float64
	// Voltage is the nominal cell voltage.
	Voltage float64
	// BaselineMW is the non-radio device power draw while streaming
	// (screen + SoC + decode); 0 models radio-only accounting.
	BaselineMW units.MW
}

// Typical2015Phone matches the class of device the paper's measurements
// come from: a 2600 mAh, 3.8 V pack (e.g. Galaxy S4/S5 era) with ~1 W of
// screen+decode draw during video playback.
func Typical2015Phone() Pack {
	return Pack{CapacitymAh: 2600, Voltage: 3.8, BaselineMW: 1000}
}

// Validate checks the pack parameters.
func (p Pack) Validate() error {
	if p.CapacitymAh <= 0 {
		return fmt.Errorf("battery: non-positive capacity %v mAh", p.CapacitymAh)
	}
	if p.Voltage <= 0 {
		return fmt.Errorf("battery: non-positive voltage %v", p.Voltage)
	}
	if p.BaselineMW < 0 {
		return fmt.Errorf("battery: negative baseline power %v", p.BaselineMW)
	}
	return nil
}

// TotalMJ returns the pack's full-charge energy in millijoules:
// mAh × 3.6 (to coulombs) × V × 1000 (to mJ).
func (p Pack) TotalMJ() units.MJ {
	return units.MJ(p.CapacitymAh * 3.6 * p.Voltage * 1000)
}

// SessionCost describes what one streaming session costs.
type SessionCost struct {
	// RadioMJ is the radio energy (from the simulator).
	RadioMJ units.MJ
	// BaselineMJ is the non-radio drain over the session duration.
	BaselineMJ units.MJ
	// Percent is the share of a full charge consumed.
	Percent float64
}

// TotalMJ returns the session's combined energy.
func (c SessionCost) TotalMJ() units.MJ { return c.RadioMJ + c.BaselineMJ }

// Session computes the battery cost of one streaming session: radioMJ is
// the simulator's per-user energy, duration the session length.
func (p Pack) Session(radioMJ units.MJ, duration units.Seconds) (SessionCost, error) {
	if err := p.Validate(); err != nil {
		return SessionCost{}, err
	}
	if radioMJ < 0 {
		return SessionCost{}, fmt.Errorf("battery: negative radio energy %v", radioMJ)
	}
	if duration < 0 {
		return SessionCost{}, fmt.Errorf("battery: negative duration %v", duration)
	}
	cost := SessionCost{
		RadioMJ:    radioMJ,
		BaselineMJ: p.BaselineMW.Energy(duration),
	}
	cost.Percent = float64(cost.TotalMJ()) / float64(p.TotalMJ()) * 100
	return cost, nil
}

// StreamingHours projects how long a full charge sustains continuous
// streaming at the given average radio power (mJ per second = mW).
func (p Pack) StreamingHours(radioPower units.MW) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if radioPower < 0 {
		return 0, fmt.Errorf("battery: negative radio power %v", radioPower)
	}
	total := radioPower + p.BaselineMW
	if total == 0 {
		return 0, fmt.Errorf("battery: zero total draw, lifetime unbounded")
	}
	seconds := float64(p.TotalMJ()) / float64(total)
	return seconds / 3600, nil
}

// ExtraSessions converts an energy saving per session into "extra videos
// per charge": how many additional sessions of the improved cost fit into
// the budget the old cost implied.
func (p Pack) ExtraSessions(oldCost, newCost SessionCost) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if newCost.TotalMJ() <= 0 {
		return 0, fmt.Errorf("battery: non-positive session cost")
	}
	if oldCost.TotalMJ() < newCost.TotalMJ() {
		return 0, fmt.Errorf("battery: new cost exceeds old cost")
	}
	perCharge := float64(p.TotalMJ())
	return perCharge/float64(newCost.TotalMJ()) - perCharge/float64(oldCost.TotalMJ()), nil
}
