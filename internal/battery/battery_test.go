package battery

import (
	"math"
	"testing"
	"testing/quick"

	"jointstream/internal/units"
)

func TestValidate(t *testing.T) {
	if err := Typical2015Phone().Validate(); err != nil {
		t.Fatalf("typical pack invalid: %v", err)
	}
	bad := []Pack{
		{CapacitymAh: 0, Voltage: 3.8},
		{CapacitymAh: 2600, Voltage: 0},
		{CapacitymAh: 2600, Voltage: 3.8, BaselineMW: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad pack %d accepted", i)
		}
	}
}

func TestTotalMJ(t *testing.T) {
	// 2600 mAh * 3.6 C/mAh * 3.8 V = 35568 J = 3.5568e7 mJ.
	p := Typical2015Phone()
	want := 2600.0 * 3.6 * 3.8 * 1000
	if got := float64(p.TotalMJ()); math.Abs(got-want) > 1 {
		t.Errorf("TotalMJ = %v, want %v", got, want)
	}
}

func TestSessionCost(t *testing.T) {
	p := Pack{CapacitymAh: 1000, Voltage: 3.6, BaselineMW: 500}
	// Total pack: 1000*3.6*3.6*1000 = 1.296e7 mJ.
	// Session: 100 J radio + 500 mW * 1000 s = 500 J baseline = 600 J.
	cost, err := p.Session(100_000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if cost.RadioMJ != 100_000 || cost.BaselineMJ != 500_000 {
		t.Errorf("cost breakdown = %+v", cost)
	}
	wantPct := 600_000.0 / 1.296e7 * 100
	if math.Abs(cost.Percent-wantPct) > 1e-9 {
		t.Errorf("Percent = %v, want %v", cost.Percent, wantPct)
	}
	if _, err := p.Session(-1, 10); err == nil {
		t.Error("negative radio energy accepted")
	}
	if _, err := p.Session(1, -10); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestStreamingHours(t *testing.T) {
	p := Pack{CapacitymAh: 1000, Voltage: 3.6, BaselineMW: 0}
	// 1.296e7 mJ at 1000 mW -> 12960 s = 3.6 h.
	h, err := p.StreamingHours(1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-3.6) > 1e-9 {
		t.Errorf("StreamingHours = %v, want 3.6", h)
	}
	if _, err := p.StreamingHours(-1); err == nil {
		t.Error("negative power accepted")
	}
	zero := Pack{CapacitymAh: 1000, Voltage: 3.6}
	if _, err := zero.StreamingHours(0); err == nil {
		t.Error("zero draw accepted")
	}
	// Baseline power shortens life.
	withBase := Pack{CapacitymAh: 1000, Voltage: 3.6, BaselineMW: 1000}
	h2, _ := withBase.StreamingHours(1000)
	if h2 >= h {
		t.Errorf("baseline draw did not shorten life: %v vs %v", h2, h)
	}
}

func TestExtraSessions(t *testing.T) {
	p := Pack{CapacitymAh: 1000, Voltage: 3.6}
	old := SessionCost{RadioMJ: 1.296e6} // 10% of charge -> 10 sessions
	new_ := SessionCost{RadioMJ: 6.48e5} // 5% -> 20 sessions
	extra, err := p.ExtraSessions(old, new_)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(extra-10) > 1e-9 {
		t.Errorf("ExtraSessions = %v, want 10", extra)
	}
	if _, err := p.ExtraSessions(new_, old); err == nil {
		t.Error("regression (new > old) accepted")
	}
	if _, err := p.ExtraSessions(old, SessionCost{}); err == nil {
		t.Error("zero new cost accepted")
	}
}

// Property: session percent is linear in radio energy and always
// non-negative.
func TestSessionLinearityProperty(t *testing.T) {
	p := Typical2015Phone()
	f := func(mjRaw uint32, durRaw uint16) bool {
		mj := units.MJ(mjRaw % 1_000_000)
		dur := units.Seconds(durRaw % 3600)
		c1, err := p.Session(mj, dur)
		if err != nil || c1.Percent < 0 {
			return false
		}
		c2, err := p.Session(2*mj, dur)
		if err != nil {
			return false
		}
		// Doubling radio energy doubles the radio share exactly.
		return math.Abs(float64(c2.RadioMJ)-2*float64(c1.RadioMJ)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
