package sched

import "fmt"

// Planned replays a precomputed per-slot allocation plan — typically the
// omniscient schedule from internal/oracle — through the live simulator.
// Slots beyond the plan's horizon allocate nothing. Grants are clamped to
// the slot's Eq. (1)/(2) limits, so a plan computed against the same
// radio/capacity configuration replays exactly.
type Planned struct {
	plan [][]int
}

// NewPlanned validates and wraps a plan (slot-major, user-minor).
func NewPlanned(plan [][]int) (*Planned, error) {
	if len(plan) == 0 {
		return nil, fmt.Errorf("planned: empty plan")
	}
	for n, row := range plan {
		for u, a := range row {
			if a < 0 {
				return nil, fmt.Errorf("planned: negative grant at slot %d user %d", n, u)
			}
		}
	}
	return &Planned{plan: plan}, nil
}

// Name implements Scheduler.
func (*Planned) Name() string { return "Planned" }

// Allocate implements Scheduler.
func (p *Planned) Allocate(slot *Slot, alloc []int) {
	if slot.N < 0 || slot.N >= len(p.plan) {
		return
	}
	row := p.plan[slot.N]
	remaining := slot.CapacityUnits
	for i := range alloc {
		if i >= len(row) {
			break
		}
		a := row[i]
		if !slot.ActiveAt(i) {
			a = 0
		}
		if m := slot.MaxUnitsAt(i); a > m {
			a = m
		}
		if a > remaining {
			a = remaining
		}
		alloc[i] = a
		remaining -= a
	}
}

var _ Scheduler = (*Planned)(nil)
