package sched

import (
	"fmt"
	"math"

	"jointstream/internal/radio"
	"jointstream/internal/rrc"
	"jointstream/internal/units"
)

// RTMA is the paper's Rebuffering Time Minimization Algorithm (Alg. 1).
//
// Goal (Eq. 11): minimize the average rebuffering time PC(Γ) subject to the
// link constraint (Eq. 1), the capacity constraint (Eq. 2) and a per-user,
// per-slot energy budget Φ (Eq. 10). The energy budget is enforced through
// the signal-strength admission threshold φ of Eq. (12),
//
//	Φ = ½ [P(φ)·v(φ)·τ + τ·P_tail]
//
// i.e. Φ is read as the mean of the full-rate transmission energy and the
// tail energy of one slot; users whose signal is weaker than φ are not
// scheduled this slot (their per-byte price would be too high).
//
// Allocation itself is smallest-required-rate-first water-filling: users
// are sorted by p_i(n) ascending, each round every admitted user receives
// up to its per-slot need ϕ_need = ⌈τ·p_i/δ⌉, and rounds repeat (buffering
// ahead for future slots) until the capacity or every user's link bound is
// exhausted. The sorted order persists across slots and is repaired
// incrementally (see order.go): only users whose rate or admission actually
// changed pay sort work, with a full re-sort past a churn threshold.
type RTMA struct {
	budget    units.MJ // Φ: per-user per-slot energy budget
	threshold units.DBm
	// admitAll short-circuits the admission test when the budget is loose
	// enough that even the weakest representable signal satisfies it.
	admitAll bool

	// order maintains the (rate, index)-sorted candidate list across slots.
	order rtmaOrder

	// scratch reused across slots to avoid per-slot allocation.
	keys     []rtmaKey   // this slot's candidates, ascending user index
	work     []rtmaWork  // water-filling items (banked got/max state)
	liveWork []*rtmaWork // the rounds' compacting window into work
	zero []int     // admitted zero-need users, served from the spare-capacity drain
	act  []int     // ActiveIndices fallback scratch
}

// rtmaKey precomputes one candidate's sort key and per-slot need so the
// sort compares plain values (no closure, no double indirection into the
// slot) and the water-filling rounds never recompute ϕ_need. The (rate,
// index) key is a strict total order — index ties are impossible — so the
// sorted candidate sequence is unique and any repair strategy that
// reproduces the candidate set sorted by it is exactly the full sort.
type rtmaKey struct {
	rate units.KBps
	idx  int32
	need int32
}

// RTMAConfig configures RTMA.
type RTMAConfig struct {
	// Budget is Φ, the expected maximum per-user per-slot energy (mJ).
	// The paper sets Φ = α × (measured Default strategy energy).
	Budget units.MJ
	// Radio supplies v(sig) and P(sig) for deriving φ.
	Radio radio.Model
	// RRC supplies P_tail (the DCH power Pd) for Eq. (12).
	RRC rrc.Profile
	// SigMin and SigMax bound the bisection for φ; they default to the
	// paper's −110/−50 dBm when zero.
	SigMin, SigMax units.DBm
}

// NewRTMA derives the admission threshold φ from the energy budget via
// Eq. (12) and returns the scheduler.
func NewRTMA(cfg RTMAConfig) (*RTMA, error) {
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("rtma: non-positive energy budget %v", cfg.Budget)
	}
	if cfg.Radio.Throughput == nil || cfg.Radio.Power == nil {
		return nil, fmt.Errorf("rtma: radio model not fully specified")
	}
	lo, hi := cfg.SigMin, cfg.SigMax
	if lo == 0 && hi == 0 {
		lo, hi = -110, -50
	}
	if hi < lo {
		return nil, fmt.Errorf("rtma: signal bounds inverted [%v, %v]", lo, hi)
	}
	r := &RTMA{budget: cfg.Budget}
	r.order.limit = -1 // auto churn threshold; see SetChurnLimit
	r.threshold, r.admitAll = solveThreshold(cfg, lo, hi)
	return r, nil
}

// slotEnergyAt evaluates the Eq. (12) right-hand side at signal sig for a
// 1-second slot: ½(P(sig)·v(sig) + P_tail). The slot length τ cancels when
// the budget Φ is also expressed per slot of the same length, so the
// threshold is τ-independent.
//
// P_tail is taken as the mean power over one complete RRC tail,
// MaxTailEnergy/(T1+T2). The paper leaves P_tail unspecified; using the
// DCH power Pd instead would push the Eq. (12) band so high that any
// budget below ½(P(−50)·v(−50)+Pd) ≈ 789 mJ — including α = 0.8 of a
// typical measured default energy — would admit no user at all, which
// contradicts the α-sweep behaviour of Fig. 4. The tail-average keeps the
// same mechanism with a usable band (see DESIGN.md, Design choices).
func slotEnergyAt(cfg RTMAConfig, sig units.DBm) float64 {
	p := float64(cfg.Radio.Power.EnergyPerKB(sig))
	v := float64(cfg.Radio.Throughput.Throughput(sig))
	return 0.5 * (p*v + tailMeanPower(cfg.RRC))
}

// tailMeanPower returns the average power of one full RRC tail in mW.
func tailMeanPower(p rrc.Profile) float64 {
	span := float64(p.T1 + p.T2)
	if span <= 0 {
		return float64(p.Pd)
	}
	return float64(p.MaxTailEnergy()) / span
}

// solveThreshold finds the weakest signal φ with slotEnergyAt(φ) ≤ Φ by
// bisection. slotEnergyAt is monotonically non-increasing in sig for the
// paper's models (weak signal ⇒ expensive reception). Returns admitAll
// when even the weakest signal fits the budget, and φ just above SigMax
// (admit none) when even the strongest signal exceeds it.
func solveThreshold(cfg RTMAConfig, lo, hi units.DBm) (units.DBm, bool) {
	budget := float64(cfg.Budget)
	if slotEnergyAt(cfg, lo) <= budget {
		return lo, true
	}
	if slotEnergyAt(cfg, hi) > budget {
		// Even the best channel busts the budget: admit nobody. Encode as
		// a threshold above the physical range.
		return hi + 1, false
	}
	for i := 0; i < 64 && float64(hi-lo) > 1e-9; i++ {
		mid := (lo + hi) / 2
		if slotEnergyAt(cfg, mid) <= budget {
			hi = mid // mid satisfies the budget; weakest satisfying sig is ≤ mid
		} else {
			lo = mid
		}
	}
	return hi, false
}

// Threshold returns the derived admission threshold φ.
func (r *RTMA) Threshold() units.DBm { return r.threshold }

// Name implements Scheduler.
func (*RTMA) Name() string { return "RTMA" }

// SetChurnLimit overrides the incremental-order churn threshold: a slot
// whose candidate set changes by more than limit entries (removals plus
// insertions) re-sorts from scratch instead of repairing. limit = 0 forces
// a full sort on any churn (the reference arm of the differential and fuzz
// tests); a negative limit restores the default max(8, candidates/8).
func (r *RTMA) SetChurnLimit(limit int) { r.order.limit = limit }

// Allocate implements Scheduler following Alg. 1.
func (r *RTMA) Allocate(slot *Slot, alloc []int) {
	// Step 2: candidates by required data rate ascending. Keys and needs
	// are collected in user-index order once per slot; the persistent
	// sorted order is then repaired against them (order.go) so slots with
	// little rate/admission churn skip the full sort entirely.
	r.keys = r.keys[:0]
	r.zero = r.zero[:0]
	for _, i := range slot.ActiveIndices(&r.act) {
		if slot.MaxUnitsAt(i) == 0 {
			continue
		}
		// Step 6: admission by signal-strength limitation φ.
		if !r.admitAll && slot.SigAt(i) < r.threshold {
			continue
		}
		need := slot.NeedUnitsAt(i)
		if need == 0 {
			// A zero-rate user has no per-slot playback need; it only
			// soaks up capacity the needy users leave behind (the drain
			// below), a whole link's worth in one grant instead of one
			// unit per round.
			r.zero = append(r.zero, i)
			continue
		}
		r.keys = append(r.keys, rtmaKey{rate: slot.RateAt(i), idx: int32(i), need: int32(need)})
	}
	sorted := r.order.update(r.keys)

	remaining := slot.CapacityUnits
	// Steps 4–15: the water-filling rounds (rtma_kernel.go). Each
	// candidate's mutable state is banked into its work item — got seeds
	// from the caller's alloc and max caches the link bound — so the
	// rounds run over a compact struct slice with no indexed loads, and
	// the final grants scatter into alloc once. The kernel compacts its
	// own window, so it runs on a scratch copy — the persistent sorted
	// order must survive intact for the next slot's incremental repair.
	r.work = r.work[:0]
	for _, k := range sorted {
		i := int(k.idx)
		r.work = append(r.work, rtmaWork{
			idx: k.idx, need: k.need,
			got: int32(alloc[i]), max: int32(slot.MaxUnitsAt(i)),
		})
	}
	// The pointer window is built only after work stops growing (appends
	// may move the backing array).
	r.liveWork = r.liveWork[:0]
	for j := range r.work {
		r.liveWork = append(r.liveWork, &r.work[j])
	}
	remaining = waterfillRounds(r.liveWork, remaining)
	for _, k := range r.work {
		alloc[k.idx] = int(k.got)
	}
	// Spare-capacity drain: zero-need users absorb whatever the needy
	// ones left, in index order.
	for _, i := range r.zero {
		if remaining == 0 {
			break
		}
		grant := slot.MaxUnitsAt(i)
		if grant > remaining {
			grant = remaining
		}
		alloc[i] = grant
		remaining -= grant
	}
}

var _ Scheduler = (*RTMA)(nil)

// BudgetForAlpha is a convenience for the paper's Φ = α·E_Default setup:
// it scales a measured default per-user per-slot energy by α.
func BudgetForAlpha(defaultEnergy units.MJ, alpha float64) (units.MJ, error) {
	if defaultEnergy <= 0 {
		return 0, fmt.Errorf("rtma: non-positive default energy %v", defaultEnergy)
	}
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return 0, fmt.Errorf("rtma: invalid alpha %v", alpha)
	}
	return units.MJ(float64(defaultEnergy) * alpha), nil
}
