package sched

import (
	"fmt"
	"math"

	"jointstream/internal/rrc"
	"jointstream/internal/units"
)

// AdaptiveEMA is an extension of the paper's EMA that tunes the Lyapunov
// weight V online instead of requiring an offline Ω→V calibration run.
//
// The paper's Theorem 1 guarantees PC ≤ (B + V·E*)/ε for any fixed V but
// gives no way to pick V for a concrete rebuffering budget Ω; our
// experiment harness bisects over pilot simulations, which a deployed
// gateway cannot do. AdaptiveEMA closes the loop instead: it observes the
// per-slot stall pressure implied by the users' buffer levels and applies
// multiplicative-increase/decrease to V every adjustment window —
//
//	measured stall rate > Ω  ⇒  V ← V/γ  (spend energy, protect playback)
//	measured stall rate < Ω·margin ⇒ V ← V·γ  (harvest energy headroom)
//
// staying within [VMin, VMax]. The underlying per-slot decision remains
// Alg. 2's exact DP, so all Eq. (1)/(2) feasibility properties carry over.
type AdaptiveEMA struct {
	inner *EMA
	cfg   AdaptiveEMAConfig

	slotCount  int
	stallAccum float64 // Σ per-user estimated stall in the current window
	userSlots  int     // Σ active users over the window's slots
	act        []int   // ActiveIndices fallback scratch
}

// AdaptiveEMAConfig configures the controller.
type AdaptiveEMAConfig struct {
	// Omega is the target average rebuffering per user per slot (the
	// paper's PC(Γ) bound, Eq. 13).
	Omega units.Seconds
	// InitialV seeds the Lyapunov weight (default 0.1).
	InitialV float64
	// VMin and VMax bound the adaptation (defaults 0.001 and 64).
	VMin, VMax float64
	// Gamma is the multiplicative step (default 1.5; must be > 1).
	Gamma float64
	// AdjustEvery is the window length in slots (default 50).
	AdjustEvery int
	// Margin is the dead band below Omega within which V is left alone
	// (default 0.5: increase V only when stalls are under half the
	// budget).
	Margin float64
	// RRC supplies the tail model for the inner EMA.
	RRC rrc.Profile
}

func (c *AdaptiveEMAConfig) setDefaults() {
	if c.InitialV == 0 {
		c.InitialV = 0.1
	}
	if c.VMin == 0 {
		c.VMin = 0.001
	}
	if c.VMax == 0 {
		c.VMax = 64
	}
	if c.Gamma == 0 {
		c.Gamma = 1.5
	}
	if c.AdjustEvery == 0 {
		c.AdjustEvery = 50
	}
	if c.Margin == 0 {
		c.Margin = 0.5
	}
}

// NewAdaptiveEMA validates the configuration and builds the scheduler.
func NewAdaptiveEMA(cfg AdaptiveEMAConfig) (*AdaptiveEMA, error) {
	cfg.setDefaults()
	if cfg.Omega < 0 || math.IsNaN(float64(cfg.Omega)) {
		return nil, fmt.Errorf("adaptive-ema: invalid omega %v", cfg.Omega)
	}
	if cfg.VMin <= 0 || cfg.VMax <= cfg.VMin {
		return nil, fmt.Errorf("adaptive-ema: invalid V range [%v, %v]", cfg.VMin, cfg.VMax)
	}
	if cfg.InitialV < cfg.VMin || cfg.InitialV > cfg.VMax {
		return nil, fmt.Errorf("adaptive-ema: initial V %v outside [%v, %v]", cfg.InitialV, cfg.VMin, cfg.VMax)
	}
	if cfg.Gamma <= 1 {
		return nil, fmt.Errorf("adaptive-ema: gamma %v must exceed 1", cfg.Gamma)
	}
	if cfg.AdjustEvery < 1 {
		return nil, fmt.Errorf("adaptive-ema: adjust window %d < 1", cfg.AdjustEvery)
	}
	if cfg.Margin < 0 || cfg.Margin > 1 {
		return nil, fmt.Errorf("adaptive-ema: margin %v outside [0, 1]", cfg.Margin)
	}
	inner, err := NewEMA(EMAConfig{V: cfg.InitialV, RRC: cfg.RRC})
	if err != nil {
		return nil, err
	}
	return &AdaptiveEMA{inner: inner, cfg: cfg}, nil
}

// Name implements Scheduler.
func (*AdaptiveEMA) Name() string { return "AdaptiveEMA" }

// V returns the current Lyapunov weight.
func (a *AdaptiveEMA) V() float64 { return a.inner.V() }

// Allocate implements Scheduler: measure stall pressure, adapt V at
// window boundaries, then delegate to the inner EMA's exact DP.
func (a *AdaptiveEMA) Allocate(slot *Slot, alloc []int) {
	for _, i := range slot.ActiveIndices(&a.act) {
		a.userSlots++
		if buf := slot.BufferSecAt(i); buf < slot.Tau {
			// The slot will stall for the uncovered remainder (Eq. 8).
			a.stallAccum += float64(slot.Tau - buf)
		}
	}
	a.slotCount++
	if a.slotCount >= a.cfg.AdjustEvery {
		a.adapt()
	}
	a.inner.Allocate(slot, alloc)
}

// adapt applies the multiplicative update at a window boundary.
func (a *AdaptiveEMA) adapt() {
	defer func() {
		a.slotCount = 0
		a.stallAccum = 0
		a.userSlots = 0
	}()
	if a.userSlots == 0 {
		return
	}
	rate := a.stallAccum / float64(a.userSlots) // seconds of stall per user-slot
	v := a.inner.V()
	switch {
	case rate > float64(a.cfg.Omega):
		v /= a.cfg.Gamma
	case rate < float64(a.cfg.Omega)*a.cfg.Margin:
		v *= a.cfg.Gamma
	default:
		return
	}
	if v < a.cfg.VMin {
		v = a.cfg.VMin
	}
	if v > a.cfg.VMax {
		v = a.cfg.VMax
	}
	a.inner.v = v
}

var _ Scheduler = (*AdaptiveEMA)(nil)
