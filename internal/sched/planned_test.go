package sched

import "testing"

func TestNewPlannedValidation(t *testing.T) {
	if _, err := NewPlanned(nil); err == nil {
		t.Error("empty plan accepted")
	}
	if _, err := NewPlanned([][]int{{1, -2}}); err == nil {
		t.Error("negative grant accepted")
	}
}

func TestPlannedReplaysPlan(t *testing.T) {
	p, err := NewPlanned([][]int{
		{3, 0},
		{0, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "Planned" {
		t.Error("name mismatch")
	}
	slot := makeSlot(100, stdUser(400, -60, 10), stdUser(400, -60, 10))
	alloc := make([]int, 2)
	p.Allocate(slot, alloc)
	if alloc[0] != 3 || alloc[1] != 0 {
		t.Errorf("slot 0 alloc = %v, want [3 0]", alloc)
	}
	slot.N = 1
	alloc = make([]int, 2)
	p.Allocate(slot, alloc)
	if alloc[0] != 0 || alloc[1] != 5 {
		t.Errorf("slot 1 alloc = %v, want [0 5]", alloc)
	}
	// Beyond the horizon: nothing.
	slot.N = 2
	alloc = []int{9, 9}
	alloc[0], alloc[1] = 0, 0
	p.Allocate(slot, alloc)
	if alloc[0] != 0 || alloc[1] != 0 {
		t.Errorf("post-horizon alloc = %v", alloc)
	}
}

func TestPlannedClampsToSlotLimits(t *testing.T) {
	p, _ := NewPlanned([][]int{{50, 50}})
	// Link bound 10 each, capacity 15 total.
	slot := makeSlot(15, stdUser(400, -60, 10), stdUser(400, -60, 10))
	alloc := make([]int, 2)
	p.Allocate(slot, alloc)
	if err := slot.Validate(alloc); err != nil {
		t.Errorf("planned allocation violates constraints: %v", err)
	}
	if alloc[0] != 10 || alloc[1] != 5 {
		t.Errorf("alloc = %v, want [10 5]", alloc)
	}
}

func TestPlannedSkipsInactive(t *testing.T) {
	p, _ := NewPlanned([][]int{{4, 4}})
	u := stdUser(400, -60, 10)
	u.Active = false
	slot := makeSlot(100, u, stdUser(400, -60, 10))
	alloc := make([]int, 2)
	p.Allocate(slot, alloc)
	if alloc[0] != 0 {
		t.Errorf("inactive user allocated %d", alloc[0])
	}
}
