package sched

import (
	"fmt"
	"math"

	"jointstream/internal/units"
)

// DefaultPredictiveSafety is the rebuffer-safety floor used when
// PredictiveConfig.SafetySec is zero: a deferring user must keep at
// least this many seconds buffered beyond the wait it signs up for.
const DefaultPredictiveSafety units.Seconds = 4

// PredictiveConfig parameterizes the lookahead scheduler.
type PredictiveConfig struct {
	// Lookahead is K, the number of future slots the scheduler may
	// inspect through the forecast. Zero disables prediction entirely
	// and the scheduler degenerates to the myopic greedy baseline
	// (byte-identical to DefaultScheduler — the differential tests pin
	// this).
	Lookahead int
	// Forecast supplies the future-channel view. nil is allowed and,
	// like Lookahead 0, yields the myopic baseline; the engine-facing
	// constructor is cell.LinkTable.Forecast (exact) or
	// cell.NewNoisyForecast (error-corrupted).
	Forecast Forecast
	// SafetySec is the rebuffer-safety floor: a user may idle-wait for
	// a cheaper slot d slots ahead only while its playback buffer holds
	// at least d·τ + SafetySec seconds, so a perfectly wrong forecast
	// can cost energy but never force an immediate stall. Zero selects
	// DefaultPredictiveSafety; negative is invalid.
	SafetySec units.Seconds
}

// Predictive is the lookahead-K scheduler (ROADMAP item 3; cf.
// Abou-zeid et al., predictive green streaming): where every baseline in
// this package prices only the current slot, Predictive reads a K-slot
// window of future link prices from a Forecast and shifts each user's
// transmission toward the cheapest visible slot.
//
// Per active user, in index order (the Default scheduler's contention
// rule, so capacity clipping stays comparable):
//
//  1. Find the cheapest predicted slot with nonzero predicted link
//     capacity in the window (n, n+K], truncated at the forecast
//     horizon. Ties prefer the earliest slot.
//  2. If the current slot is at least as cheap — or no future slot is
//     visible (K = 0, nil forecast, table edge, or all-zero predicted
//     links) — transmit greedily now: the full Eq. (1) grant, exactly
//     like Default.
//  3. Otherwise a strictly cheaper slot lies d slots ahead. If the
//     playback buffer survives the wait with the safety floor intact
//     (r_i(n) ≥ d·τ + SafetySec), allocate nothing and let the radio
//     idle toward the cheaper slot. If the buffer is too shallow to
//     wait safely, allocate only ϕ_need (Eq. 7's smooth-playback
//     minimum) — the expensive slot is used for survival, not bulk.
//
// Every grant passes through MaxUnitsAt, so Eq. (1)+(2) hold without
// the engine's clamp; the property suite asserts it. Energy savings
// come from buying bytes at predicted price minima; the cost is tail
// energy across the idle gaps and exposure to forecast error, both of
// which the oracle-bracket experiments quantify.
type Predictive struct {
	k      int
	f      Forecast
	safety units.Seconds

	act []int // ActiveIndices fallback scratch

	// Per-slot window scratch for the SlotWindower fast path: entry d
	// aliases the forecast's columns for slot n+d (nil beyond the
	// horizon). Slice-header re-aliasing only — the steady-state
	// zero-alloc test covers this scheduler — and rewritten at the top
	// of every Allocate, so stale windows can never leak across slots.
	winEpkb [][]units.MJ
	winLU   [][]int32
	useWin  bool
}

// NewPredictive validates the configuration and returns the scheduler.
func NewPredictive(cfg PredictiveConfig) (*Predictive, error) {
	if cfg.Lookahead < 0 {
		return nil, fmt.Errorf("sched: negative lookahead %d", cfg.Lookahead)
	}
	if cfg.SafetySec < 0 {
		return nil, fmt.Errorf("sched: negative rebuffer-safety floor %v", cfg.SafetySec)
	}
	safety := cfg.SafetySec
	if safety == 0 {
		safety = DefaultPredictiveSafety
	}
	return &Predictive{k: cfg.Lookahead, f: cfg.Forecast, safety: safety}, nil
}

// Name implements Scheduler.
func (*Predictive) Name() string { return "Predictive" }

// Lookahead returns K.
func (p *Predictive) Lookahead() int { return p.k }

// Allocate implements Scheduler.
func (p *Predictive) Allocate(slot *Slot, alloc []int) {
	// maxD is the deepest visible lookahead distance this slot, after
	// truncating the window at the forecast horizon (the table edge).
	maxD := 0
	if p.k > 0 && p.f != nil {
		maxD = p.k
		if last := p.f.HorizonSlots() - 1 - slot.N; maxD > last {
			maxD = last
		}
		if maxD < 0 {
			maxD = 0
		}
	}
	p.useWin = false
	if maxD > 0 {
		if w, ok := p.f.(SlotWindower); ok {
			p.useWin = true
			if cap(p.winEpkb) < maxD+1 {
				p.winEpkb = make([][]units.MJ, maxD+1)
				p.winLU = make([][]int32, maxD+1)
			}
			p.winEpkb = p.winEpkb[:maxD+1]
			p.winLU = p.winLU[:maxD+1]
			for d := 1; d <= maxD; d++ {
				p.winEpkb[d], p.winLU[d] = w.PredictedWindow(slot.N + d)
			}
		}
	}

	remaining := slot.CapacityUnits
	for _, i := range slot.ActiveIndices(&p.act) {
		if remaining == 0 {
			break
		}
		a := slot.MaxUnitsAt(i)
		if maxD > 0 && a > 0 {
			a = p.decide(slot, i, a, maxD)
		}
		if a > remaining {
			a = remaining
		}
		alloc[i] = a
		remaining -= a
	}
}

// decide applies the lookahead rule for one user and returns its grant
// before capacity clipping. maxU is the user's Eq. (1) limit this slot.
func (p *Predictive) decide(slot *Slot, i, maxU, maxD int) int {
	idx := slot.IndexAt(i)
	best := math.Inf(1)
	bestDist := 0
	if p.useWin {
		for d := 1; d <= maxD; d++ {
			lu := p.winLU[d]
			if idx >= len(lu) || lu[idx] <= 0 {
				continue
			}
			if price := float64(p.winEpkb[d][idx]); price < best {
				best = price
				bestDist = d
			}
		}
	} else {
		for d := 1; d <= maxD; d++ {
			if p.f.PredictedLinkUnits(slot.N+d, idx) <= 0 {
				continue
			}
			if price := float64(p.f.PredictedEnergyPerKB(slot.N+d, idx)); price < best {
				best = price
				bestDist = d
			}
		}
	}
	if bestDist == 0 || float64(slot.EnergyPerKBAt(i)) <= best {
		// The current slot is the cheapest visible opportunity (or the
		// window is empty): transmit greedily, like Default.
		return maxU
	}
	wait := units.Seconds(float64(bestDist)) * slot.Tau
	if slot.BufferSecAt(i) >= wait+p.safety {
		// The buffer covers the wait with the safety floor to spare:
		// idle toward the cheaper slot.
		return 0
	}
	// Too shallow to wait: keep playback alive at the minimum rate, but
	// don't bulk-buy at a price the forecast says will improve.
	return slot.NeedUnitsAt(i)
}
