package sched

// This file holds the EMA DP's per-user inner kernel: a fused
// Van Herk–Gil-Werman sliding-window minimum that replaces the monotone
// deque of the original fast path. The deque is amortized O(1) per state
// but its pushes and evictions are data-dependent branches over
// data-dependent indices, which both mispredict and defeat bounds-check
// elimination. The fused kernel does the same O(states) work in
// branch-regular block-local loops: the window's prefix half is a pair of
// running scalars, the suffix half a ≤w-entry buffer recomputed per block
// (L1-resident), and the only full-width arrays touched per state are the
// DP rows themselves.
//
// The bce-check CI job (scripts/bce_check.sh) builds this package with
// `-gcflags='-d=ssa/check_bce'` and fails if any per-element
// `Found IsInBounds` reappears in this file; the once-per-block slice
// headers may report IsSliceInBounds. Keep every loop range-bounded when
// editing.
//
// Window semantics (see runDP's doc comment): for each state m the
// transition needs min over j ∈ [max(0, m−maxPhi), m−1] of
// g[j] = cost[j] − perUnit·j, argmin resolved to the LARGEST j (smallest
// ϕ), exactly matching the deque's ≥-eviction tie rule. With block width
// w = maxPhi and hi = m−1:
//
//   - block 0 (hi < w): the window is the prefix [0, hi], answered by the
//     running prefix min alone;
//   - later blocks, hi at the block end (k = w−1): the window is exactly
//     hi's full block, again the running prefix min alone;
//   - otherwise: the window spans a suffix of the previous block
//     (sufPrev[k+1]) plus the prefix [bs, hi] of the current one,
//     combined preferring the prefix — the larger-j side — on ties.
//
// Unreachable states carry cost = MaxFloat64; their g stays ≈MaxFloat64
// (perUnit·j is astronomically below one ULP of MaxFloat64), loses every
// min comparison against a finite g, and when every window entry is
// unreachable the MaxFloat64 candidate fails the strict `< best` test —
// bit-for-bit the deque's never-pushed semantics.

// emaBlockScratch is the kernel's reusable scratch, one instance per EMA.
// All four buffers are block-sized (≤ maxPhi+1 entries), not
// capacity-sized: they hold one block of g values and the suffix minima
// of the previous and current blocks.
type emaBlockScratch struct {
	g     []float64 // g values of the current block
	sufA  []float64 // suffix minima, previous block
	sufB  []float64 // suffix minima, current block (swapped into sufA)
	sufAJ []int32   // argmin (absolute j) for sufA
	sufBJ []int32   // argmin (absolute j) for sufB
}

func (b *emaBlockScratch) grow(w int) {
	// One spare entry past w: the k = w−1 (full-block) lane never reads
	// sufPrev, but sizing the buffers w+1 hands the bounds-check prover
	// the k+1 ≤ w < len fact without an extra branch.
	b.g = resize(b.g, w+1)
	b.sufA = resize(b.sufA, w+1)
	b.sufB = resize(b.sufB, w+1)
	b.sufAJ = resizeI32(b.sufAJ, w+1)
	b.sufBJ = resizeI32(b.sufBJ, w+1)
}

// emaUserPass runs one user's DP transition: given the incoming cost row,
// it fills next[m] for m ∈ [0, mHi] with the outgoing row and choice[m]
// with the units granted at each state. mHi is the caller's reachability
// bound: states above it are unreachable both before and after this user,
// so their row entries are already MaxFloat64 and stay untouched.
// Behaviorally identical — including every tie and every unreachable
// state — to the deque pass in runDPDeque and the quadratic pass in
// runDPRef.
func emaUserPass(cost, next []float64, choice []uint16, l userLine, b *emaBlockScratch, mHi int) {
	if mHi >= len(cost) {
		mHi = len(cost) - 1
	}
	if mHi < 0 {
		return
	}
	cost = cost[:mHi+1]
	next = next[:mHi+1]
	choice = choice[:mHi+1]
	w := l.maxPhi
	if w < 1 {
		// DP participants are filtered on MaxUnitsAt > 0, so maxPhi ≥ 1
		// always; the clamp is never taken and exists to hand the
		// bounds-check prover a w ≥ 1 fact for the loops below.
		w = 1
	}
	b.grow(w)
	gBuf := b.g[:w+1]
	sufPrev := b.sufA[:w+1]
	sufPrevJ := b.sufAJ[:w+1]
	sufCur := b.sufB[:w+1]
	sufCurJ := b.sufBJ[:w+1]

	next[0] = cost[0] + l.skip
	choice[0] = 0

	// preG/preJ: running minimum of g over [bs, hi], largest j on ties
	// (≤ keeps the later index) — the prefix half of every window.
	var preG float64
	var preJ int32

	for bs := 0; bs < mHi; bs += w {
		be := bs + w
		if be > mHi {
			be = mHi
		}
		// hi ∈ [bs, be), m = hi+1 ∈ [bs+1, be]; block-local k = hi−bs.
		blockLen := be - bs
		if blockLen > w {
			// Never taken (be ≤ bs+w by construction); hands the prover
			// the blockLen ≤ w fact directly.
			blockLen = w
		}
		gB := gBuf[:blockLen]
		costB := cost[bs:be]
		costB = costB[:len(gB)]
		costM := cost[bs+1 : be+1] // costM[k] = cost[m], m = hi+1
		costM = costM[:len(gB)]
		nextB := next[bs+1 : be+1]
		nextB = nextB[:len(gB)]
		choiceB := choice[bs+1 : be+1]
		choiceB = choiceB[:len(gB)]
		if bs == 0 {
			// Block 0: every window is the clamped prefix [0, hi].
			for k := range gB {
				hi := k
				g := costB[k] - l.perUnit*float64(hi)
				gB[k] = g
				if k == 0 || g <= preG {
					preG = g
					preJ = int32(hi)
				}
				m := hi + 1
				// ϕ = 0 branch. Unreachable states (cost = MaxFloat64)
				// keep their sentinel: |skip| is far below one ULP of
				// MaxFloat64, so the sum rounds back to exactly
				// MaxFloat64 — the value the deque pass assigns via its
				// explicit reachability guard.
				best := costM[k] + l.skip
				var bestPhi uint16
				if c := l.base + l.perUnit*float64(m) + preG; c < best {
					best = c
					bestPhi = uint16(int32(m) - preJ)
				}
				nextB[k] = best
				choiceB[k] = bestPhi
			}
		} else {
			// The suffix buffers are written pre-shifted (entry k holds
			// the previous block's suffix minimum from relative offset
			// k+1), so lane k reads sp[k] and reslicing to len(gB) makes
			// every access provably in range.
			sp := sufPrev[:len(gB)]
			spJ := sufPrevJ[:len(gB)]
			for k := range gB {
				hi := bs + k
				g := costB[k] - l.perUnit*float64(hi)
				gB[k] = g
				if k == 0 || g <= preG {
					preG = g
					preJ = int32(hi)
				}
				// Window [hi−w+1, hi]: prefix half [bs, hi] is the running
				// min; the suffix half [hi−w+1, bs−1] is the previous
				// block's pre-shifted suffix minimum sp[k] (empty exactly
				// when k = w−1, the full-block lane — pre wins there
				// because the full block IS the prefix). Strict < keeps
				// the pre — larger-j — side on ties.
				winG := preG
				winJ := preJ
				if k != w-1 {
					if sG := sp[k]; sG < winG {
						winG = sG
						winJ = spJ[k]
					}
				}
				m := hi + 1
				// ϕ = 0 branch: see block 0.
				best := costM[k] + l.skip
				var bestPhi uint16
				if c := l.base + l.perUnit*float64(m) + winG; c < best {
					best = c
					bestPhi = uint16(int32(m) - winJ)
				}
				nextB[k] = best
				choiceB[k] = bestPhi
			}
		}
		// Suffix minima of this block, consumed by the next one: backward
		// scan, largest j on ties (strict < keeps the earlier-seen,
		// larger index). Stored pre-shifted by one — entry k−1 holds the
		// minimum over relative offsets [k, blockLen) — because the next
		// block's lane k consumes the suffix starting at offset k+1
		// (offset 0 is never a window member there).
		if be < mHi {
			curG := 0.0
			curJ := int32(0)
			first := true
			sufB := sufCur[:len(gB)]
			sufBJ := sufCurJ[:len(gB)]
			for k := len(gB) - 1; k >= 0; k-- {
				if first || gB[k] < curG {
					curG = gB[k]
					curJ = int32(bs + k)
					first = false
				}
				if k > 0 {
					sufB[k-1] = curG
					sufBJ[k-1] = curJ
				}
			}
			sufPrev, sufCur = sufCur, sufPrev
			sufPrevJ, sufCurJ = sufCurJ, sufPrevJ
		}
	}
}
