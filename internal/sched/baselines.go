package sched

import (
	"fmt"

	"jointstream/internal/units"
)

// Throttling reimplements the server-side pacing baseline of Hoque et al.
// (MobiCom 2013), cited as [15]: the server "delivers the video contents
// at a rate that is lower than the bulk transfer capacity but higher than
// the encoding rate", keeping every user's transfer continuous. Each slot
// every active user receives ⌈factor·p_i·τ/δ⌉ units, clamped by link and
// capacity in index order.
type Throttling struct {
	factor float64
	act    []int // ActiveIndices fallback scratch
}

// NewThrottling builds the throttling baseline; factor must be ≥ 1 (the
// stream must at least keep up with the encoding rate). The classical
// YouTube-style setting is 1.25.
func NewThrottling(factor float64) (*Throttling, error) {
	if factor < 1 {
		return nil, fmt.Errorf("throttling: factor %v < 1 would starve playback", factor)
	}
	return &Throttling{factor: factor}, nil
}

// Name implements Scheduler.
func (*Throttling) Name() string { return "Throttling" }

// Allocate implements Scheduler.
func (t *Throttling) Allocate(slot *Slot, alloc []int) {
	remaining := slot.CapacityUnits
	for _, i := range slot.ActiveIndices(&t.act) {
		if remaining == 0 {
			break
		}
		want := ceilDiv(t.factor*float64(slot.RateAt(i))*float64(slot.Tau), float64(slot.Unit))
		if m := slot.MaxUnitsAt(i); want > m {
			want = m
		}
		if want > remaining {
			want = remaining
		}
		alloc[i] = want
		remaining -= want
	}
}

// OnOff reimplements the ON-OFF client behaviour of YouTube/Dailymotion/
// Vimeo Android players as dissected by Hoque et al. (WoWMoM 2013), cited
// as [14]: the player reads from the socket at full speed (ON) until the
// buffer reaches a high watermark, then stops reading (OFF) until the
// buffer drains to a low watermark. During OFF no data moves but the radio
// still rides its tail — the paper's canonical tail-energy waster.
type OnOff struct {
	lowSec, highSec units.Seconds
	on              []bool
	act             []int // ActiveIndices fallback scratch
}

// NewOnOff builds the ON-OFF baseline with the given buffer watermarks in
// playback seconds.
func NewOnOff(lowSec, highSec units.Seconds) (*OnOff, error) {
	if lowSec < 0 || highSec <= lowSec {
		return nil, fmt.Errorf("onoff: invalid watermarks low=%v high=%v", lowSec, highSec)
	}
	return &OnOff{lowSec: lowSec, highSec: highSec}, nil
}

// Name implements Scheduler.
func (*OnOff) Name() string { return "ON-OFF" }

// Allocate implements Scheduler.
func (o *OnOff) Allocate(slot *Slot, alloc []int) {
	for len(o.on) < slot.NumUsers() {
		o.on = append(o.on, true) // players start in ON
	}
	remaining := slot.CapacityUnits
	for _, i := range slot.ActiveIndices(&o.act) {
		// Hysteresis on the playback buffer.
		buf := slot.BufferSecAt(i)
		if o.on[i] && buf >= o.highSec {
			o.on[i] = false
		} else if !o.on[i] && buf <= o.lowSec {
			o.on[i] = true
		}
		if !o.on[i] || remaining == 0 {
			continue
		}
		a := slot.MaxUnitsAt(i)
		if a > remaining {
			a = remaining
		}
		alloc[i] = a
		remaining -= a
	}
}

// SALSA reimplements the energy-delay-tradeoff scheduler of Ra et al.
// (MobiSys 2010), cited as [17]: transfers are deferred until either the
// channel is good relative to its recent average (cheap bytes) or the
// backlog deadline pressure forces transmission. Following the paper's
// critique, SALSA ignores tail energy and per-user competition.
type SALSA struct {
	// urgentSec is the buffer level under which transmission is forced.
	urgentSec units.Seconds
	// ewma tracks each user's average link rate to judge "good" slots.
	ewma  []float64
	alpha float64
	act   []int // ActiveIndices fallback scratch
}

// NewSALSA builds the SALSA baseline. urgentSec is the buffer urgency
// threshold; ewmaAlpha ∈ (0,1] is the channel-average smoothing factor.
func NewSALSA(urgentSec units.Seconds, ewmaAlpha float64) (*SALSA, error) {
	if urgentSec <= 0 {
		return nil, fmt.Errorf("salsa: non-positive urgency threshold %v", urgentSec)
	}
	if ewmaAlpha <= 0 || ewmaAlpha > 1 {
		return nil, fmt.Errorf("salsa: smoothing factor %v outside (0,1]", ewmaAlpha)
	}
	return &SALSA{urgentSec: urgentSec, alpha: ewmaAlpha}, nil
}

// Name implements Scheduler.
func (*SALSA) Name() string { return "SALSA" }

// Allocate implements Scheduler.
func (s *SALSA) Allocate(slot *Slot, alloc []int) {
	for len(s.ewma) < slot.NumUsers() {
		s.ewma = append(s.ewma, 0)
	}
	remaining := slot.CapacityUnits
	for _, i := range slot.ActiveIndices(&s.act) {
		rate := float64(slot.LinkRateAt(i))
		if s.ewma[i] == 0 {
			s.ewma[i] = rate
		} else {
			s.ewma[i] = s.alpha*rate + (1-s.alpha)*s.ewma[i]
		}
		goodChannel := rate >= s.ewma[i]
		urgent := slot.BufferSecAt(i) < s.urgentSec
		if !goodChannel && !urgent {
			continue // defer: wait for a cheaper slot
		}
		if remaining == 0 {
			continue
		}
		// Send the playback need, doubled on good channels to exploit the
		// cheap bytes (the energy-delay "work ahead" lever).
		want := slot.NeedUnitsAt(i)
		if goodChannel {
			want *= 2
		}
		if m := slot.MaxUnitsAt(i); want > m {
			want = m
		}
		if want > remaining {
			want = remaining
		}
		alloc[i] = want
		remaining -= want
	}
}

// EStreamer reimplements the burst-shaped proxy delivery of Hoque et al.
// (ACM TOMCCAP 2014), cited as [16]: the proxy fills the client buffer in
// large bursts sized off the playback buffer, then goes silent until the
// buffer drains near empty. Bursts shorten radio-active time but the
// inter-burst gaps each pay a full RRC tail, and — per the paper's
// critique — signal strength is ignored when choosing burst timing.
type EStreamer struct {
	// burstSec is the buffer level a burst fills to.
	burstSec units.Seconds
	// resumeSec is the buffer level that triggers the next burst.
	resumeSec units.Seconds
	bursting  []bool
	act       []int // ActiveIndices fallback scratch
}

// NewEStreamer builds the EStreamer baseline.
func NewEStreamer(burstSec, resumeSec units.Seconds) (*EStreamer, error) {
	if resumeSec < 0 || burstSec <= resumeSec {
		return nil, fmt.Errorf("estreamer: invalid burst=%v resume=%v", burstSec, resumeSec)
	}
	return &EStreamer{burstSec: burstSec, resumeSec: resumeSec}, nil
}

// Name implements Scheduler.
func (*EStreamer) Name() string { return "EStreamer" }

// Allocate implements Scheduler.
func (e *EStreamer) Allocate(slot *Slot, alloc []int) {
	for len(e.bursting) < slot.NumUsers() {
		e.bursting = append(e.bursting, true)
	}
	remaining := slot.CapacityUnits
	for _, i := range slot.ActiveIndices(&e.act) {
		buf := slot.BufferSecAt(i)
		if e.bursting[i] && buf >= e.burstSec {
			e.bursting[i] = false
		} else if !e.bursting[i] && buf <= e.resumeSec {
			e.bursting[i] = true
		}
		if !e.bursting[i] || remaining == 0 {
			continue
		}
		// Burst: fill toward the target watermark at link speed.
		deficit := float64(e.burstSec-buf) * float64(slot.RateAt(i))
		want := ceilDiv(deficit, float64(slot.Unit))
		if m := slot.MaxUnitsAt(i); want > m {
			want = m
		}
		if want > remaining {
			want = remaining
		}
		alloc[i] = want
		remaining -= want
	}
}

var (
	_ Scheduler = (*Throttling)(nil)
	_ Scheduler = (*OnOff)(nil)
	_ Scheduler = (*SALSA)(nil)
	_ Scheduler = (*EStreamer)(nil)
)
