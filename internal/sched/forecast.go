package sched

import "jointstream/internal/units"

// Forecast is the future-channel view a predictive scheduler consults:
// for any (slot, user) coordinate inside its horizon it predicts the
// per-KB energy price P(sig_i(n)) and the Eq. (1) link limit ⌊τ·v/δ⌋.
// The production implementation (cell.LinkTable.Forecast) replays the
// compiled link table's slot-major windows exactly; cell.NoisyForecast
// wraps it with a seeded error model so prediction quality becomes a
// scenario axis.
//
// Coordinates are session indices (User.Index / Slot.IndexAt), not slot
// positions, and n is the absolute slot number — the same grid the
// engine drives Allocate with. Implementations must be pure reads: the
// scheduler may query any in-horizon coordinate any number of times and
// must always see the same value (determinism of the whole run depends
// on it).
type Forecast interface {
	// HorizonSlots is the exclusive upper bound on predictable slot
	// numbers: predictions exist for n in [0, HorizonSlots()). A
	// scheduler's lookahead window truncates here — the table edge —
	// rather than extrapolating.
	HorizonSlots() int
	// PredictedEnergyPerKB returns the predicted per-KB reception cost
	// of user i at slot n. n must be in [0, HorizonSlots()).
	PredictedEnergyPerKB(n, i int) units.MJ
	// PredictedLinkUnits returns the predicted Eq. (1) per-user unit
	// limit of user i at slot n. n must be in [0, HorizonSlots()).
	PredictedLinkUnits(n, i int) int
}

// SlotWindower is the optional zero-copy fast path of a Forecast: a
// forecast whose predictions are materialized slot-major columns (the
// exact link-table view) exposes whole per-slot windows so a scheduler
// can re-alias the column slices instead of paying one interface call
// per (slot, user) read. The returned slices are shared immutable state
// and must never be written through — the same aliasing contract as the
// engine's sched.Columns (DESIGN.md §7). Error-model wrappers that
// corrupt reads on the fly deliberately do not implement it.
type SlotWindower interface {
	// PredictedWindow returns slot n's per-user price and link-unit
	// columns. n must be in [0, HorizonSlots()).
	PredictedWindow(n int) (epkb []units.MJ, linkUnits []int32)
}
