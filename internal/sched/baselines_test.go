package sched

import (
	"testing"
	"testing/quick"

	"jointstream/internal/units"
)

func TestThrottlingValidation(t *testing.T) {
	if _, err := NewThrottling(0.9); err == nil {
		t.Error("factor < 1 accepted")
	}
	if _, err := NewThrottling(1); err != nil {
		t.Errorf("factor 1 rejected: %v", err)
	}
}

func TestThrottlingPacesAtFactor(t *testing.T) {
	th, _ := NewThrottling(1.25)
	slot := makeSlot(1000, stdUser(400, -60, 40))
	alloc := make([]int, 1)
	th.Allocate(slot, alloc)
	// ceil(1.25*400/100) = 5 units.
	if alloc[0] != 5 {
		t.Errorf("alloc = %d, want 5", alloc[0])
	}
}

func TestThrottlingClampsToLinkAndCapacity(t *testing.T) {
	th, _ := NewThrottling(1.25)
	slot := makeSlot(3, stdUser(400, -60, 2), stdUser(400, -60, 40))
	alloc := make([]int, 2)
	th.Allocate(slot, alloc)
	if alloc[0] != 2 {
		t.Errorf("link clamp failed: %d", alloc[0])
	}
	if alloc[1] != 1 {
		t.Errorf("capacity clamp failed: %d", alloc[1])
	}
	if err := slot.Validate(alloc); err != nil {
		t.Error(err)
	}
}

func TestThrottlingName(t *testing.T) {
	th, _ := NewThrottling(1.25)
	if th.Name() != "Throttling" {
		t.Error("name mismatch")
	}
}

func TestOnOffValidation(t *testing.T) {
	if _, err := NewOnOff(10, 5); err == nil {
		t.Error("high <= low accepted")
	}
	if _, err := NewOnOff(-1, 5); err == nil {
		t.Error("negative low accepted")
	}
}

func TestOnOffHysteresis(t *testing.T) {
	o, _ := NewOnOff(10, 40)
	// Starts ON: buffer low, fetch at full speed.
	u := stdUser(400, -60, 20)
	u.BufferSec = 0
	alloc := make([]int, 1)
	o.Allocate(makeSlot(1000, u), alloc)
	if alloc[0] != 20 {
		t.Errorf("ON phase alloc = %d, want 20", alloc[0])
	}
	// Buffer above high watermark: switches OFF.
	u.BufferSec = 45
	alloc[0] = 0
	o.Allocate(makeSlot(1000, u), alloc)
	if alloc[0] != 0 {
		t.Errorf("OFF phase alloc = %d, want 0", alloc[0])
	}
	// Buffer between watermarks while OFF: stays OFF.
	u.BufferSec = 25
	o.Allocate(makeSlot(1000, u), alloc)
	if alloc[0] != 0 {
		t.Errorf("mid-band (OFF) alloc = %d, want 0", alloc[0])
	}
	// Buffer at/below low watermark: back ON.
	u.BufferSec = 9
	o.Allocate(makeSlot(1000, u), alloc)
	if alloc[0] != 20 {
		t.Errorf("resumed ON alloc = %d, want 20", alloc[0])
	}
	// Between watermarks while ON: stays ON.
	u.BufferSec = 25
	alloc[0] = 0
	o.Allocate(makeSlot(1000, u), alloc)
	if alloc[0] != 20 {
		t.Errorf("mid-band (ON) alloc = %d, want 20", alloc[0])
	}
}

func TestOnOffName(t *testing.T) {
	o, _ := NewOnOff(10, 40)
	if o.Name() != "ON-OFF" {
		t.Error("name mismatch")
	}
}

func TestSALSAValidation(t *testing.T) {
	if _, err := NewSALSA(0, 0.3); err == nil {
		t.Error("zero urgency accepted")
	}
	if _, err := NewSALSA(10, 0); err == nil {
		t.Error("zero alpha accepted")
	}
	if _, err := NewSALSA(10, 1.5); err == nil {
		t.Error("alpha > 1 accepted")
	}
}

func TestSALSADefersOnBadChannelWithBuffer(t *testing.T) {
	s, _ := NewSALSA(15, 0.3)
	// Seed the EWMA with a strong slot.
	u := stdUser(400, -55, 40)
	u.BufferSec = 30
	alloc := make([]int, 1)
	s.Allocate(makeSlot(1000, u), alloc)
	// Now a weak slot with a comfortable buffer: defer.
	u2 := stdUser(400, -105, 40)
	u2.BufferSec = 30
	alloc[0] = 0
	s.Allocate(makeSlot(1000, u2), alloc)
	if alloc[0] != 0 {
		t.Errorf("SALSA sent %d on bad channel with buffer", alloc[0])
	}
}

func TestSALSAForcedByUrgency(t *testing.T) {
	s, _ := NewSALSA(15, 0.3)
	u := stdUser(400, -55, 40)
	u.BufferSec = 30
	alloc := make([]int, 1)
	s.Allocate(makeSlot(1000, u), alloc)
	// Bad channel but nearly empty buffer: must transmit the need.
	u2 := stdUser(400, -105, 40)
	u2.BufferSec = 2
	alloc[0] = 0
	s.Allocate(makeSlot(1000, u2), alloc)
	if alloc[0] == 0 {
		t.Error("SALSA deferred although the buffer was urgent")
	}
}

func TestSALSAWorksAheadOnGoodChannel(t *testing.T) {
	s, _ := NewSALSA(15, 0.3)
	u := stdUser(400, -55, 40)
	u.BufferSec = 30
	alloc := make([]int, 1)
	s.Allocate(makeSlot(1000, u), alloc)
	// First slot seeds EWMA to its own rate; rate >= ewma counts as good,
	// so it sends double need: 2*ceil(400/100) = 8.
	if alloc[0] != 8 {
		t.Errorf("good-channel alloc = %d, want 8", alloc[0])
	}
}

func TestSALSAName(t *testing.T) {
	s, _ := NewSALSA(15, 0.3)
	if s.Name() != "SALSA" {
		t.Error("name mismatch")
	}
}

func TestEStreamerValidation(t *testing.T) {
	if _, err := NewEStreamer(5, 10); err == nil {
		t.Error("burst <= resume accepted")
	}
	if _, err := NewEStreamer(30, -1); err == nil {
		t.Error("negative resume accepted")
	}
}

func TestEStreamerBurstCycle(t *testing.T) {
	e, _ := NewEStreamer(30, 5)
	// Starts bursting with empty buffer: fills toward 30s of playback.
	u := stdUser(400, -60, 200)
	u.BufferSec = 0
	alloc := make([]int, 1)
	e.Allocate(makeSlot(10000, u), alloc)
	// deficit = 30s * 400KB/s = 12000KB = 120 units.
	if alloc[0] != 120 {
		t.Errorf("burst alloc = %d, want 120", alloc[0])
	}
	// Buffer full: silent phase.
	u.BufferSec = 32
	alloc[0] = 0
	e.Allocate(makeSlot(10000, u), alloc)
	if alloc[0] != 0 {
		t.Errorf("silent phase alloc = %d, want 0", alloc[0])
	}
	// Stays silent until the resume watermark.
	u.BufferSec = 10
	e.Allocate(makeSlot(10000, u), alloc)
	if alloc[0] != 0 {
		t.Errorf("above-resume alloc = %d, want 0", alloc[0])
	}
	u.BufferSec = 4
	e.Allocate(makeSlot(10000, u), alloc)
	if alloc[0] == 0 {
		t.Error("EStreamer did not resume bursting at the low watermark")
	}
}

func TestEStreamerName(t *testing.T) {
	e, _ := NewEStreamer(30, 5)
	if e.Name() != "EStreamer" {
		t.Error("name mismatch")
	}
}

// Property: every baseline respects Eq. (1)/(2) on arbitrary slots.
func TestBaselinesConstraintsProperty(t *testing.T) {
	build := func() []Scheduler {
		th, _ := NewThrottling(1.25)
		oo, _ := NewOnOff(10, 40)
		sa, _ := NewSALSA(15, 0.3)
		es, _ := NewEStreamer(30, 5)
		return []Scheduler{NewDefault(), th, oo, sa, es}
	}
	schedulers := build()
	f := func(rates []uint16, sigs []uint8, bufs []uint8, capRaw uint16) bool {
		n := len(rates)
		if n == 0 || n > 10 {
			return true
		}
		if len(sigs) < n || len(bufs) < n {
			return true
		}
		users := make([]User, n)
		for i := range users {
			sig := units.DBm(-110 + float64(sigs[i]%61))
			users[i] = stdUser(units.KBps(rates[i]%600+100), sig, int(rates[i]%50))
			users[i].BufferSec = units.Seconds(bufs[i] % 60)
		}
		for _, s := range schedulers {
			slot := makeSlot(int(capRaw%300), users...)
			alloc := make([]int, n)
			s.Allocate(slot, alloc)
			if err := slot.Validate(alloc); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
