package sched

import (
	"testing"
	"testing/quick"

	"jointstream/internal/units"
)

func TestPropFairValidation(t *testing.T) {
	if _, err := NewProportionalFair(0.5); err == nil {
		t.Error("sub-slot time constant accepted")
	}
	if _, err := NewProportionalFair(1); err != nil {
		t.Errorf("tc=1 rejected: %v", err)
	}
}

func TestPropFairName(t *testing.T) {
	pf, _ := NewProportionalFair(100)
	if pf.Name() != "PropFair" {
		t.Error("name mismatch")
	}
}

func TestPropFairColdStartServesEveryone(t *testing.T) {
	pf, _ := NewProportionalFair(100)
	// Capacity for everyone: all unserved users have infinite priority and
	// each should get its link bound.
	slot := makeSlot(100, stdUser(400, -60, 10), stdUser(400, -70, 8))
	alloc := make([]int, 2)
	pf.Allocate(slot, alloc)
	if alloc[0] != 10 || alloc[1] != 8 {
		t.Errorf("cold-start alloc = %v, want [10 8]", alloc)
	}
}

func TestPropFairRotatesUnderContention(t *testing.T) {
	pf, _ := NewProportionalFair(10)
	// Two identical users, capacity for one: PF must alternate rather
	// than starve the second user.
	served := [2]int{}
	for n := 0; n < 20; n++ {
		slot := makeSlot(10, stdUser(400, -60, 10), stdUser(400, -60, 10))
		alloc := make([]int, 2)
		pf.Allocate(slot, alloc)
		for i, a := range alloc {
			if a > 0 {
				served[i]++
			}
		}
	}
	if served[0] == 0 || served[1] == 0 {
		t.Fatalf("PF starved a user: %v", served)
	}
	diff := served[0] - served[1]
	if diff < -4 || diff > 4 {
		t.Errorf("PF shares unevenly over 20 slots: %v", served)
	}
}

func TestPropFairPrefersGoodChannelAtEqualAverages(t *testing.T) {
	pf, _ := NewProportionalFair(1000)
	// Warm both users to identical averages.
	for n := 0; n < 5; n++ {
		slot := makeSlot(100, stdUser(400, -70, 10), stdUser(400, -70, 10))
		alloc := make([]int, 2)
		pf.Allocate(slot, alloc)
	}
	// Now user 1 has the better channel and only one grant fits.
	slot := makeSlot(10, stdUser(400, -90, 10), stdUser(400, -55, 10))
	alloc := make([]int, 2)
	pf.Allocate(slot, alloc)
	if alloc[1] == 0 {
		t.Errorf("PF ignored the better channel: %v", alloc)
	}
	if alloc[1] < alloc[0] {
		t.Errorf("better channel under-served: %v", alloc)
	}
}

func TestPropFairSkipsInactive(t *testing.T) {
	pf, _ := NewProportionalFair(100)
	u := stdUser(400, -60, 10)
	u.Active = false
	slot := makeSlot(100, u, stdUser(400, -60, 10))
	alloc := make([]int, 2)
	pf.Allocate(slot, alloc)
	if alloc[0] != 0 {
		t.Errorf("inactive user served: %v", alloc)
	}
}

// Property: PF never violates Eq. (1)/(2).
func TestPropFairConstraintsProperty(t *testing.T) {
	pf, _ := NewProportionalFair(50)
	f := func(rates []uint16, sigs []uint8, capRaw uint16) bool {
		n := len(rates)
		if n == 0 || n > 10 {
			return true
		}
		if len(sigs) < n {
			return true
		}
		users := make([]User, n)
		for i := range users {
			sig := units.DBm(-110 + float64(sigs[i]%61))
			users[i] = stdUser(units.KBps(rates[i]%600+100), sig, int(rates[i]%40))
		}
		slot := makeSlot(int(capRaw%250), users...)
		alloc := make([]int, n)
		pf.Allocate(slot, alloc)
		return slot.Validate(alloc) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
