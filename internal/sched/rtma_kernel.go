package sched

// This file holds RTMA's water-filling inner kernel. Alg. 1's rounds
// originally granted through alloc[k.idx] — a data-dependent scatter per
// grant, re-read every round — so each round paid a bounds check and a
// cache-line touch per live user across the whole alloc array. The
// kernel instead banks each candidate's mutable state (granted units and
// link cap) inside its 16-byte work item: the rounds iterate a compact
// contiguous struct slice with no indexed loads at all, and the caller
// scatters the final grants into alloc once after the rounds converge.
//
// The bce-check CI job (scripts/bce_check.sh) builds this package with
// `-gcflags='-d=ssa/check_bce'` and fails if any per-element
// `Found IsInBounds` reappears in this file. The single indexed write —
// the saturation compaction live[w] — is guarded by an unsigned
// `uint(w) < uint(len(live))` branch, which is always true (w advances
// at most once per iteration, so 0 ≤ w ≤ j < len(live)) and exists to
// hand the prover both bounds of the store directly; the once-per-round
// live[:w] reslice may report IsSliceInBounds.

// rtmaWork is one live candidate of the water-filling rounds: the
// persistent sort key's user index and per-slot need, plus the banked
// mutable state (units granted so far, link/station cap).
type rtmaWork struct {
	idx  int32 // user index, for the final scatter into alloc
	need int32 // step 9's need-sized increment
	got  int32 // units granted so far (seeded from the caller's alloc)
	max  int32 // ϕ_sup upper bound: MaxUnitsAt(idx)
}

// waterfillRounds runs Alg. 1 steps 4–15 over the live window: rounds of
// need-sized increments until the capacity or every per-user link bound
// is exhausted, with saturated items compacted out of the window so late
// rounds touch only users that can still grow. Every live item receives
// ≥ 1 unit per round (sup ≥ 1 whenever it stays live and remaining > 0),
// so the rounds always terminate. The window holds POINTERS into the
// caller's work array: grants accumulate through them, so an item's got
// stays authoritative after it leaves the window (the window compacts in
// place — a by-value window would overwrite saturated items' final
// state). Pointer dereferences carry no bounds checks, and the pointers
// walk one contiguous array in sorted order, so the access pattern is
// the same forward sweep the by-value loop had. The remaining capacity
// is returned. Operation-for-operation identical to the pre-kernel loop,
// which read and wrote alloc[i] in place — got mirrors alloc[i] exactly.
func waterfillRounds(live []*rtmaWork, remaining int) int {
	for remaining > 0 && len(live) > 0 {
		w := 0
		for j := 0; j < len(live); j++ {
			if remaining == 0 {
				break
			}
			k := live[j]
			// ϕ_sup: what the link and base station still support (step 7).
			sup := int(k.max) - int(k.got)
			if sup > remaining {
				sup = remaining
			}
			if sup <= 0 {
				continue
			}
			grant := int(k.need)
			if grant > sup {
				grant = sup // step 11: partial grant
			}
			k.got += int32(grant)
			remaining -= grant
			if k.got < k.max && uint(w) < uint(len(live)) {
				// w ≤ j < len(live) always. The unsigned compare proves
				// both bounds of the store at once; the prover does not
				// carry w ≥ 0 through the loop phi, so the plain signed
				// `w < len(live)` guard leaves the check in place.
				live[w] = k
				w++
			}
		}
		live = live[:w]
	}
	return remaining
}
