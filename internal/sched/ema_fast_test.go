package sched

import (
	"math"
	"testing"

	"jointstream/internal/rng"
	"jointstream/internal/rrc"
	"jointstream/internal/units"
)

// cloneEMA snapshots an EMA (weight, profile, queue state) so the fast and
// reference DPs can be run from identical state without interference.
func cloneEMA(e *EMA) *EMA {
	c := &EMA{v: e.v, rrc: e.rrc, tailDrained: e.tailDrained}
	c.queues = append(c.queues, e.queues...)
	return c
}

// randomSlotForDP builds a slot of n users with random channel, rate and
// tail state; roughly one user in eight is inactive to exercise the DP
// participant filter.
func randomSlotForDP(src *rng.Source, n, capacity int) *Slot {
	users := make([]User, n)
	for i := range users {
		sig := units.DBm(src.Uniform(-110, -50))
		u := stdUser(units.KBps(src.Uniform(300, 600)), sig, 1+src.Intn(12))
		if src.Bool(0.5) {
			u.NeverActive = false
			u.TailGap = units.Seconds(src.Uniform(0, 9))
		}
		if src.Bool(0.125) {
			u.Active = false
			u.MaxUnits = 0
		}
		users[i] = u
	}
	return makeSlot(capacity, users...)
}

// objective evaluates Σ f(i, ϕ_i) under e's current (pre-Allocate) queues.
func objective(e *EMA, slot *Slot, alloc []int) float64 {
	var sum float64
	for i := range slot.Users {
		sum += e.slotCost(slot, i, alloc[i])
	}
	return sum
}

func sameObjective(got, want float64) bool {
	return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
}

// TestEMAFastMatchesRef is the differential gate for the monotone-deque
// DP: across N ∈ {1..40}, capacity ∈ {1, 10, 205} and random seeds, the
// fast path must return allocations with the same objective value as the
// paper-literal runDPRef — and as the exhaustive BruteForceObjective on
// instances small enough to enumerate. Queues evolve across slots (driven
// by the fast path's decisions), so the sweep also covers negative and
// positive drift terms.
func TestEMAFastMatchesRef(t *testing.T) {
	for _, capacity := range []int{1, 10, 205} {
		for n := 1; n <= 40; n++ {
			src := rng.New(uint64(1000*capacity + n))
			e := newEMA(t, 0.05+src.Float64()*2)
			for step := 0; step < 6; step++ {
				slot := randomSlotForDP(src, n, capacity)

				ref := cloneEMA(e)
				fastAlloc := make([]int, n)
				refAlloc := make([]int, n)
				// Objectives must be read before Allocate advances queues.
				e.Allocate(slot, fastAlloc)
				ref.AllocateRef(slot, refAlloc)
				gotObj := objective(ref, slot, fastAlloc)
				wantObj := objective(ref, slot, refAlloc)

				if !sameObjective(gotObj, wantObj) {
					t.Fatalf("cap=%d n=%d step=%d: fast objective %v != ref %v (alloc %v vs %v)",
						capacity, n, step, gotObj, wantObj, fastAlloc, refAlloc)
				}
				if err := slot.Validate(fastAlloc); err != nil {
					t.Fatalf("cap=%d n=%d step=%d: fast allocation invalid: %v", capacity, n, step, err)
				}
				if err := slot.Validate(refAlloc); err != nil {
					t.Fatalf("cap=%d n=%d step=%d: ref allocation invalid: %v", capacity, n, step, err)
				}

				if n <= 4 && capacity <= 12 {
					maxUnits := make([]int, n)
					for i := range slot.Users {
						maxUnits[i] = slot.Users[i].MaxUnits
					}
					_, bruteObj := BruteForceObjective(maxUnits, capacity, func(i, phi int) float64 {
						return ref.slotCost(slot, i, phi)
					})
					if !sameObjective(gotObj, bruteObj) {
						t.Fatalf("cap=%d n=%d step=%d: fast objective %v != brute force %v",
							capacity, n, step, gotObj, bruteObj)
					}
				}
			}
		}
	}
}

// TestEMARefQueueParity checks that driving two schedulers — one per DP —
// through the same slot sequence keeps their virtual queues in lockstep:
// objective-identical decisions must induce identical Eq. (16) updates.
func TestEMARefQueueParity(t *testing.T) {
	src := rng.New(77)
	fast := newEMA(t, 0.3)
	ref := newEMA(t, 0.3)
	const n = 12
	for step := 0; step < 40; step++ {
		slot := randomSlotForDP(src, n, 1+src.Intn(30))
		fastAlloc := make([]int, n)
		refAlloc := make([]int, n)
		fast.Allocate(slot, fastAlloc)
		ref.AllocateRef(slot, refAlloc)
		for i := 0; i < n; i++ {
			if math.Abs(float64(fast.Queue(i)-ref.Queue(i))) > 1e-9 {
				t.Fatalf("step %d: queue %d diverged: fast %v ref %v (alloc %v vs %v)",
					step, i, fast.Queue(i), ref.Queue(i), fastAlloc, refAlloc)
			}
		}
	}
}

// TestEMATailIncrementMemo pins the memoized skip cost to the closed form
// and checks the memo stays bounded by the in-tail gap count.
func TestEMATailIncrementMemo(t *testing.T) {
	p := rrc.Paper3G()
	e := newEMA(t, 1)
	for _, gap := range []units.Seconds{0, 1, 2, 3, 3.29, 5, 7, 7.31, 8, 100} {
		want := float64(p.TailEnergy(gap+1) - p.TailEnergy(gap))
		if got := e.tailIncrement(gap, 1); math.Abs(got-want) > 1e-12 {
			t.Errorf("tailIncrement(%v) = %v, want %v", gap, got, want)
		}
	}
	// Drained gaps (≥ T1+T2) must not grow the memo.
	filled := 0
	for _, k := range e.tailKeys {
		if k >= 0 {
			filled++
		}
	}
	if filled > 8 {
		t.Errorf("memo grew to %d entries; drained gaps should bypass it", filled)
	}
	// Second pass hits the memo and must agree.
	for _, gap := range []units.Seconds{0, 1, 3.29, 7, 100} {
		want := float64(p.TailEnergy(gap+1) - p.TailEnergy(gap))
		if got := e.tailIncrement(gap, 1); math.Abs(got-want) > 1e-12 {
			t.Errorf("memoized tailIncrement(%v) = %v, want %v", gap, got, want)
		}
	}
}

func BenchmarkEMARef40Users(b *testing.B) {
	e, err := NewEMA(EMAConfig{V: 1, RRC: rrc.Paper3G()})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	users := make([]User, 40)
	for i := range users {
		users[i] = stdUser(units.KBps(src.Uniform(300, 600)), units.DBm(src.Uniform(-110, -50)), 20)
	}
	slot := makeSlot(205, users...)
	alloc := make([]int, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range alloc {
			alloc[j] = 0
		}
		e.AllocateRef(slot, alloc)
	}
}
