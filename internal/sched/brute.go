package sched

import "math"

// BruteForceObjective exhaustively minimizes Σ f(i, ϕ_i) over all feasible
// allocations (Σϕ ≤ capacity, ϕ_i ≤ max_i) for an arbitrary per-user cost
// function. It is exponential and exists only as a reference oracle for
// testing the EMA dynamic program on small instances.
//
// cost(i, phi) must be defined for every user index in users and every
// phi in [0, max_i]. Returns the minimizing allocation and its objective.
func BruteForceObjective(maxUnits []int, capacity int, cost func(i, phi int) float64) ([]int, float64) {
	n := len(maxUnits)
	best := make([]int, n)
	cur := make([]int, n)
	bestCost := math.Inf(1)

	// No branch-and-bound pruning: per-user costs may be negative (EMA's
	// drift term), so partial sums do not lower-bound completions.
	var rec func(i, used int, acc float64)
	rec = func(i, used int, acc float64) {
		if i == n {
			if acc < bestCost {
				bestCost = acc
				copy(best, cur)
			}
			return
		}
		hi := maxUnits[i]
		if hi > capacity-used {
			hi = capacity - used
		}
		for phi := 0; phi <= hi; phi++ {
			cur[i] = phi
			rec(i+1, used+phi, acc+cost(i, phi))
		}
		cur[i] = 0
	}
	rec(0, 0, 0)
	return best, bestCost
}
