package sched

import (
	"testing"

	"jointstream/internal/rrc"
)

func TestAdaptiveEMAValidation(t *testing.T) {
	base := AdaptiveEMAConfig{Omega: 0.05, RRC: rrc.Paper3G()}
	if _, err := NewAdaptiveEMA(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*AdaptiveEMAConfig){
		func(c *AdaptiveEMAConfig) { c.Omega = -1 },
		func(c *AdaptiveEMAConfig) { c.VMin, c.VMax = 2, 1 },
		func(c *AdaptiveEMAConfig) { c.InitialV = 1000 },
		func(c *AdaptiveEMAConfig) { c.Gamma = 0.5 },
		func(c *AdaptiveEMAConfig) { c.AdjustEvery = -1 },
		func(c *AdaptiveEMAConfig) { c.Margin = 2 },
		func(c *AdaptiveEMAConfig) { c.RRC = rrc.Profile{Pd: -1} },
	}
	for i, mut := range bad {
		cfg := base
		mut(&cfg)
		if _, err := NewAdaptiveEMA(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestAdaptiveEMAName(t *testing.T) {
	a, _ := NewAdaptiveEMA(AdaptiveEMAConfig{Omega: 0.05, RRC: rrc.Paper3G()})
	if a.Name() != "AdaptiveEMA" {
		t.Error("name mismatch")
	}
	if a.V() != 0.1 {
		t.Errorf("initial V = %v, want default 0.1", a.V())
	}
}

// Constant stall pressure above Omega must drive V down.
func TestAdaptiveEMALowersVUnderStalls(t *testing.T) {
	a, err := NewAdaptiveEMA(AdaptiveEMAConfig{
		Omega: 0.01, AdjustEvery: 10, RRC: rrc.Paper3G(),
	})
	if err != nil {
		t.Fatal(err)
	}
	v0 := a.V()
	for n := 0; n < 30; n++ {
		u := stdUser(400, -80, 10)
		u.BufferSec = 0        // permanently starved: stall rate ~1 s per slot
		slot := makeSlot(0, u) // zero capacity so the buffer never fills
		a.Allocate(slot, make([]int, 1))
	}
	if a.V() >= v0 {
		t.Errorf("V did not drop under stalls: %v -> %v", v0, a.V())
	}
}

// Comfortable buffers well under the stall budget must raise V.
func TestAdaptiveEMARaisesVWhenComfortable(t *testing.T) {
	a, err := NewAdaptiveEMA(AdaptiveEMAConfig{
		Omega: 0.5, AdjustEvery: 10, RRC: rrc.Paper3G(),
	})
	if err != nil {
		t.Fatal(err)
	}
	v0 := a.V()
	for n := 0; n < 30; n++ {
		u := stdUser(400, -60, 10)
		u.BufferSec = 30 // deep buffer: zero stall pressure
		slot := makeSlot(100, u)
		a.Allocate(slot, make([]int, 1))
	}
	if a.V() <= v0 {
		t.Errorf("V did not rise with headroom: %v -> %v", v0, a.V())
	}
}

func TestAdaptiveEMARespectsVBounds(t *testing.T) {
	a, err := NewAdaptiveEMA(AdaptiveEMAConfig{
		Omega: 0.01, AdjustEvery: 5, VMin: 0.05, VMax: 0.2, InitialV: 0.1,
		RRC: rrc.Paper3G(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 100; n++ {
		u := stdUser(400, -80, 10)
		u.BufferSec = 0
		a.Allocate(makeSlot(0, u), make([]int, 1))
	}
	if a.V() < 0.05 {
		t.Errorf("V %v fell below VMin", a.V())
	}
	b, _ := NewAdaptiveEMA(AdaptiveEMAConfig{
		Omega: 0.5, AdjustEvery: 5, VMin: 0.05, VMax: 0.2, InitialV: 0.1,
		RRC: rrc.Paper3G(),
	})
	for n := 0; n < 100; n++ {
		u := stdUser(400, -60, 10)
		u.BufferSec = 30
		b.Allocate(makeSlot(100, u), make([]int, 1))
	}
	if b.V() > 0.2 {
		t.Errorf("V %v rose above VMax", b.V())
	}
}

func TestAdaptiveEMADeadBandHoldsV(t *testing.T) {
	// Stall rate between Margin*Omega and Omega: V must not move.
	a, err := NewAdaptiveEMA(AdaptiveEMAConfig{
		Omega: 0.5, Margin: 0.5, AdjustEvery: 10, RRC: rrc.Paper3G(),
	})
	if err != nil {
		t.Fatal(err)
	}
	v0 := a.V()
	for n := 0; n < 30; n++ {
		u := stdUser(400, -60, 10)
		u.BufferSec = 0.7 // stall pressure 0.3 in (0.25, 0.5)
		a.Allocate(makeSlot(100, u), make([]int, 1))
	}
	if a.V() != v0 {
		t.Errorf("V moved inside the dead band: %v -> %v", v0, a.V())
	}
}

func TestAdaptiveEMAConstraints(t *testing.T) {
	a, _ := NewAdaptiveEMA(AdaptiveEMAConfig{Omega: 0.05, RRC: rrc.Paper3G()})
	slot := makeSlot(15,
		stdUser(300, -55, 40), stdUser(450, -70, 20), stdUser(600, -90, 12))
	alloc := make([]int, 3)
	a.Allocate(slot, alloc)
	if err := slot.Validate(alloc); err != nil {
		t.Errorf("AdaptiveEMA violated constraints: %v", err)
	}
}
