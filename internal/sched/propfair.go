package sched

import "fmt"

// ProportionalFair is the classic cellular downlink scheduler (Kelly 1997;
// deployed in HSDPA/LTE MACs): each slot users are ranked by the ratio of
// their instantaneous achievable rate to their exponentially averaged
// served throughput, and capacity is granted in that order. It maximizes
// Σ log(throughput) in the long run and is the natural "what the base
// station would do anyway" reference point between the paper's greedy
// Default and its fairness-aware RTMA; it is included as an extension
// baseline (not one of the paper's comparison set).
type ProportionalFair struct {
	// tc is the averaging time constant in slots (typically ~1000 ms/τ;
	// 3GPP implementations use 100 TTIs).
	tc float64
	// avg is the per-user average served rate in KB per slot.
	avg []float64

	// scratch reused across slots.
	cands []pfCand
	act   []int // ActiveIndices fallback scratch
}

// pfCand is one ranked candidate of a slot.
type pfCand struct {
	idx      int
	priority float64
}

// NewProportionalFair builds the scheduler with the given averaging time
// constant in slots (≥ 1).
func NewProportionalFair(tcSlots float64) (*ProportionalFair, error) {
	if tcSlots < 1 {
		return nil, fmt.Errorf("propfair: time constant %v < 1 slot", tcSlots)
	}
	return &ProportionalFair{tc: tcSlots}, nil
}

// Name implements Scheduler.
func (*ProportionalFair) Name() string { return "PropFair" }

// Allocate implements Scheduler.
func (p *ProportionalFair) Allocate(slot *Slot, alloc []int) {
	for len(p.avg) < slot.NumUsers() {
		p.avg = append(p.avg, 0)
	}
	// Rank active users by rate/average (Inf for never-served users, who
	// therefore go first — the standard cold-start behaviour).
	p.cands = p.cands[:0]
	for _, i := range slot.ActiveIndices(&p.act) {
		if slot.MaxUnitsAt(i) == 0 {
			continue
		}
		inst := float64(slot.LinkRateAt(i)) * float64(slot.Tau)
		pr := inst
		if p.avg[i] > 0 {
			pr = inst / p.avg[i]
		} else {
			pr = inst * 1e12 // effectively infinite priority
		}
		p.cands = append(p.cands, pfCand{idx: i, priority: pr})
	}
	// Insertion sort by priority descending (N is small; stable and
	// allocation-free).
	cands := p.cands
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].priority > cands[j-1].priority; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	remaining := slot.CapacityUnits
	for _, c := range cands {
		if remaining == 0 {
			break
		}
		a := slot.MaxUnitsAt(c.idx)
		if a > remaining {
			a = remaining
		}
		alloc[c.idx] = a
		remaining -= a
	}
	// Update the served-rate averages with this slot's outcome. This loop
	// deliberately stays a full scan: inactive users were served nothing,
	// so their averages keep decaying toward zero, exactly as a base
	// station's MAC would age out a silent bearer.
	w := 1 / p.tc
	for i, n := 0, slot.NumUsers(); i < n; i++ {
		served := float64(alloc[i]) * float64(slot.Unit)
		p.avg[i] = (1-w)*p.avg[i] + w*served
	}
}

var _ Scheduler = (*ProportionalFair)(nil)
