package sched

import (
	"slices"

	"jointstream/internal/units"
)

// rtmaOrder maintains RTMA's smallest-rate-first candidate order across
// slots. A full sort per slot is O(n log n) of pointer-chasing comparisons
// even though, between adjacent slots, most users keep their rate and
// admission status — only their per-slot need (which does not participate
// in the key) moves. rtmaOrder therefore keeps the previous slot's sorted
// sequence and repairs it:
//
//  1. one in-place sweep drops entries whose user left the candidate set
//     or changed rate (the sort key), patching the per-slot need of the
//     survivors;
//  2. candidates with no surviving entry are collected, sorted among
//     themselves (a small slice), and back-merged into the kept sequence
//     in a single linear pass.
//
// Because the (rate, index) key is a strict total order, the sorted
// candidate sequence is unique: the repaired order is *identical* to a
// full sort, not merely equivalent — which is what keeps RunCtx byte-exact
// against RunReference. When the churn (drops + insertions) exceeds a
// threshold the repair would approach full-sort cost with worse constants,
// so update falls back to sorting the fresh candidate list from scratch.
// The default threshold is max(8, candidates/8); see RTMA.SetChurnLimit.
type rtmaOrder struct {
	// keys is the persistent candidate sequence sorted by (rate, idx).
	keys []rtmaKey
	// ins collects candidates that need insertion this slot.
	ins []rtmaKey

	// Per-user-index lookup tables, generation-stamped so no per-slot
	// clearing is needed. candGen[i] == gen marks i a candidate this slot
	// with key candRate[i] and payload candNeed[i]; keptGen[i] == gen
	// marks that the repair sweep kept an entry for i.
	gen      uint32
	candGen  []uint32
	keptGen  []uint32
	candRate []units.KBps
	candNeed []int32

	// limit is the churn threshold: < 0 selects the default
	// max(8, candidates/8); 0 forces a full sort on any churn.
	limit int
}

// rtmaKeyLess is the strict (rate, idx) order shared by the full sort and
// the incremental merge.
func rtmaKeyLess(a, b rtmaKey) bool {
	if a.rate != b.rate {
		return a.rate < b.rate
	}
	return a.idx < b.idx
}

// sortRTMAKeys sorts keys by (rate, idx). slices.SortFunc keeps the hot
// path allocation-free (no sort.Interface boxing).
func sortRTMAKeys(keys []rtmaKey) {
	slices.SortFunc(keys, func(a, b rtmaKey) int {
		if a.rate < b.rate {
			return -1
		}
		if a.rate > b.rate {
			return 1
		}
		return int(a.idx - b.idx)
	})
}

// update absorbs this slot's candidate list (ascending user index, needs
// already fresh) into the persistent order and returns the sequence sorted
// by (rate, idx). The returned slice is owned by rtmaOrder and must not be
// reordered by the caller — water-filling runs on a copy.
func (o *rtmaOrder) update(cand []rtmaKey) []rtmaKey {
	o.gen++
	if o.gen == 0 { // generation wrap: stale stamps could collide, reset
		clear(o.candGen)
		clear(o.keptGen)
		o.gen = 1
	}
	if len(cand) == 0 {
		o.keys = o.keys[:0]
		return o.keys
	}
	// cand is ascending by index, so its last entry bounds the tables.
	if n := int(cand[len(cand)-1].idx) + 1; len(o.candGen) < n {
		o.grow(n)
	}
	for _, k := range cand {
		o.candGen[k.idx] = o.gen
		o.candRate[k.idx] = k.rate
		o.candNeed[k.idx] = k.need
	}
	limit := o.limit
	if limit < 0 {
		limit = len(cand) / 8
		if limit < 8 {
			limit = 8
		}
	}

	// Repair sweep: compact the kept entries in place (dropping never
	// reorders), refresh their needs, and stamp them so the insertion scan
	// below can tell which candidates are already placed.
	w := 0
	for _, k := range o.keys {
		if o.candGen[k.idx] != o.gen || o.candRate[k.idx] != k.rate {
			continue // user left the candidate set or re-keyed: churn
		}
		k.need = o.candNeed[k.idx]
		o.keys[w] = k
		w++
		o.keptGen[k.idx] = o.gen
	}
	churn := len(o.keys) - w
	o.keys = o.keys[:w]

	o.ins = o.ins[:0]
	for _, k := range cand {
		if o.keptGen[k.idx] != o.gen {
			o.ins = append(o.ins, k)
		}
	}
	churn += len(o.ins)

	if churn > limit {
		// Past the threshold the repair no longer beats a fresh sort.
		o.keys = append(o.keys[:0], cand...)
		sortRTMAKeys(o.keys)
		return o.keys
	}
	if len(o.ins) == 0 {
		return o.keys
	}
	sortRTMAKeys(o.ins)
	// Back-merge the sorted insertions into the kept sequence: extend,
	// then fill from the tail so every element is read before its slot is
	// overwritten. Kept reads (index a) always trail the write cursor t.
	o.keys = append(o.keys, o.ins...)
	a, b := w-1, len(o.ins)-1
	for t := len(o.keys) - 1; b >= 0; t-- {
		if a >= 0 && rtmaKeyLess(o.ins[b], o.keys[a]) {
			o.keys[t] = o.keys[a]
			a--
		} else {
			o.keys[t] = o.ins[b]
			b--
		}
	}
	return o.keys
}

// grow extends the per-index lookup tables to cover n users.
func (o *rtmaOrder) grow(n int) {
	candGen := make([]uint32, n)
	copy(candGen, o.candGen)
	o.candGen = candGen
	keptGen := make([]uint32, n)
	copy(keptGen, o.keptGen)
	o.keptGen = keptGen
	candRate := make([]units.KBps, n)
	copy(candRate, o.candRate)
	o.candRate = candRate
	candNeed := make([]int32, n)
	copy(candNeed, o.candNeed)
	o.candNeed = candNeed
}
