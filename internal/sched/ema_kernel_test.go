package sched

import (
	"testing"

	"jointstream/internal/rng"
	"jointstream/internal/rrc"
)

// TestEMABlockMatchesDeque is the bit-for-bit gate for the block-minima
// kernel: across user counts, capacities (including capacity < maxPhi,
// capacity equal to one block, and capacities that leave partial blocks)
// and random queue evolutions, the block solver must return the EXACT
// allocation the monotone-deque solver returns — not merely the same
// objective — so swapping the kernel can never move a checked-in figure.
// Queues are advanced by the block path's own decisions and mirrored into
// the deque clone each step, so both solvers always see identical state.
func TestEMABlockMatchesDeque(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 7, 10, 64, 205} {
		for n := 1; n <= 24; n++ {
			src := rng.New(uint64(9000*capacity + n))
			e := newEMA(t, 0.05+src.Float64()*2)
			for step := 0; step < 8; step++ {
				slot := randomSlotForDP(src, n, capacity)

				dq := cloneEMA(e)
				blockAlloc := make([]int, n)
				dequeAlloc := make([]int, n)
				e.Allocate(slot, blockAlloc)
				dq.AllocateDeque(slot, dequeAlloc)

				for i := range blockAlloc {
					if blockAlloc[i] != dequeAlloc[i] {
						t.Fatalf("cap=%d n=%d step=%d: allocations diverge at user %d: block %v deque %v",
							capacity, n, step, i, blockAlloc, dequeAlloc)
					}
				}
				for i := 0; i < n; i++ {
					if e.Queue(i) != dq.Queue(i) {
						t.Fatalf("cap=%d n=%d step=%d: queue %d diverged: block %v deque %v",
							capacity, n, step, i, e.Queue(i), dq.Queue(i))
					}
				}
			}
		}
	}
}

// TestEMABlockMatchesDequeAdversarial drives the same identity through
// tie-heavy instances: clusters of users sharing identical rate/signal
// (equal perUnit lines collide in the window minima) and tiny windows
// (maxPhi = 1) where every state sits on a block boundary.
func TestEMABlockMatchesDequeAdversarial(t *testing.T) {
	src := rng.New(4242)
	for trial := 0; trial < 60; trial++ {
		capacity := 1 + src.Intn(40)
		n := 2 + src.Intn(12)
		users := make([]User, n)
		proto := stdUser(400, -80, 1+src.Intn(4))
		for i := range users {
			users[i] = proto // identical lines → maximal tie pressure
			if src.Bool(0.25) {
				users[i].MaxUnits = 1
			}
		}
		slot := makeSlot(capacity, users...)

		e := newEMA(t, 0.5)
		dq := cloneEMA(e)
		blockAlloc := make([]int, n)
		dequeAlloc := make([]int, n)
		e.Allocate(slot, blockAlloc)
		dq.AllocateDeque(slot, dequeAlloc)
		for i := range blockAlloc {
			if blockAlloc[i] != dequeAlloc[i] {
				t.Fatalf("trial %d cap=%d n=%d: allocations diverge at user %d: block %v deque %v",
					trial, capacity, n, i, blockAlloc, dequeAlloc)
			}
		}
	}
}

// BenchmarkEMADP compares the per-slot DP cost of the block kernel
// against the deque it replaced at the paper-scale shape (capacity 205).
func BenchmarkEMADP(b *testing.B) {
	src := rng.New(7)
	const n, capacity = 30, 205
	slot := randomSlotForDP(src, n, capacity)
	alloc := make([]int, n)
	b.Run("block", func(b *testing.B) {
		e, err := NewEMA(EMAConfig{V: 0.5, RRC: rrc.Paper3G()})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range alloc {
				alloc[j] = 0
			}
			e.Allocate(slot, alloc)
		}
	})
	b.Run("deque", func(b *testing.B) {
		e, err := NewEMA(EMAConfig{V: 0.5, RRC: rrc.Paper3G()})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range alloc {
				alloc[j] = 0
			}
			e.AllocateDeque(slot, alloc)
		}
	})
}
