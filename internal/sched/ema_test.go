package sched

import (
	"math"
	"testing"
	"testing/quick"

	"jointstream/internal/rng"
	"jointstream/internal/rrc"
	"jointstream/internal/units"
)

func newEMA(t *testing.T, v float64) *EMA {
	t.Helper()
	e, err := NewEMA(EMAConfig{V: v, RRC: rrc.Paper3G()})
	if err != nil {
		t.Fatalf("NewEMA: %v", err)
	}
	return e
}

func TestEMAValidation(t *testing.T) {
	if _, err := NewEMA(EMAConfig{V: 0, RRC: rrc.Paper3G()}); err == nil {
		t.Error("zero V accepted")
	}
	if _, err := NewEMA(EMAConfig{V: math.NaN(), RRC: rrc.Paper3G()}); err == nil {
		t.Error("NaN V accepted")
	}
	if _, err := NewEMA(EMAConfig{V: 1, RRC: rrc.Profile{Pd: -1}}); err == nil {
		t.Error("invalid RRC profile accepted")
	}
}

func TestEMAName(t *testing.T) {
	if newEMA(t, 1).Name() != "EMA" {
		t.Error("name mismatch")
	}
	if newEMA(t, 2.5).V() != 2.5 {
		t.Error("V accessor mismatch")
	}
}

func TestEMARespectsConstraints(t *testing.T) {
	e := newEMA(t, 1)
	slot := makeSlot(15,
		stdUser(300, -55, 40), stdUser(450, -70, 20), stdUser(600, -90, 12))
	alloc := make([]int, 3)
	e.Allocate(slot, alloc)
	if err := slot.Validate(alloc); err != nil {
		t.Errorf("EMA violated constraints: %v", err)
	}
}

func TestEMASkipsInactive(t *testing.T) {
	e := newEMA(t, 1)
	inactive := stdUser(400, -60, 40)
	inactive.Active = false
	slot := makeSlot(100, inactive, stdUser(400, -60, 10))
	alloc := make([]int, 2)
	e.Allocate(slot, alloc)
	if alloc[0] != 0 {
		t.Errorf("inactive user allocated %d", alloc[0])
	}
}

// The DP must match the brute-force optimum of Σ f(i, ϕ_i).
func TestEMADPMatchesBruteForce(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, seed := range seeds {
		src := rng.New(seed)
		e := newEMA(t, 0.5+src.Float64()*3)
		n := 2 + src.Intn(3)
		users := make([]User, n)
		for i := range users {
			sig := units.DBm(src.Uniform(-110, -50))
			users[i] = stdUser(units.KBps(src.Uniform(300, 600)), sig, 1+src.Intn(5))
			if src.Bool(0.5) {
				users[i].NeverActive = false
				users[i].TailGap = units.Seconds(src.Uniform(0, 8))
			}
		}
		capacity := 1 + src.Intn(8)
		slot := makeSlot(capacity, users...)

		// Pre-warm queues so f has nontrivial drift terms.
		warm := makeSlot(0, users...)
		e.Allocate(warm, make([]int, n)) // capacity 0: everyone skipped, queues += tau
		for i := 0; i < int(seed%3); i++ {
			e.Allocate(warm, make([]int, n))
		}

		// Capture cost table via slotCost before Allocate mutates queues.
		maxUnits := make([]int, n)
		costs := make([][]float64, n)
		for i := range users {
			u := slot.Users[i]
			maxUnits[i] = u.MaxUnits
			costs[i] = make([]float64, u.MaxUnits+1)
			for phi := 0; phi <= u.MaxUnits; phi++ {
				costs[i][phi] = e.slotCost(slot, i, phi)
			}
		}
		wantAlloc, wantCost := BruteForceObjective(maxUnits, capacity, func(i, phi int) float64 {
			return costs[i][phi]
		})

		alloc := make([]int, n)
		e.Allocate(slot, alloc)
		var gotCost float64
		for i := range alloc {
			gotCost += costs[i][alloc[i]]
		}
		if math.Abs(gotCost-wantCost) > 1e-9*(1+math.Abs(wantCost)) {
			t.Errorf("seed %d: DP cost %v != brute force %v (alloc %v vs %v)",
				seed, gotCost, wantCost, alloc, wantAlloc)
		}
		if err := slot.Validate(alloc); err != nil {
			t.Errorf("seed %d: invalid DP allocation: %v", seed, err)
		}
	}
}

func TestEMAQueueRecursionEq16(t *testing.T) {
	e := newEMA(t, 1)
	u := stdUser(500, -60, 10)
	slot := makeSlot(100, u)
	alloc := make([]int, 1)
	e.Allocate(slot, alloc)
	// Eq. (16): PC(1) = PC(0) + tau - t(0), t = alloc*unit/rate.
	want := 1.0 - float64(alloc[0])*100/500
	if math.Abs(float64(e.Queue(0))-want) > 1e-9 {
		t.Errorf("queue = %v, want %v (alloc=%d)", e.Queue(0), want, alloc[0])
	}
}

func TestEMAQueueFrozenForInactive(t *testing.T) {
	e := newEMA(t, 1)
	u := stdUser(500, -60, 10)
	u.Active = false
	slot := makeSlot(100, u)
	e.Allocate(slot, make([]int, 1))
	if e.Queue(0) != 0 {
		t.Errorf("inactive user's queue advanced to %v", e.Queue(0))
	}
	if e.Queue(99) != 0 {
		t.Error("out-of-range queue not zero")
	}
}

// Starving a user grows its queue until EMA must serve it: the queue
// mechanism enforces long-run rebuffering control.
func TestEMAEventuallyServesBackloggedUser(t *testing.T) {
	// V = 0.01 with a weak −105 dBm channel: one unit costs
	// V·E ≈ 0.01·220 mJ ≈ 2.2, while each skipped slot adds τ = 1 s of
	// queue pressure worth PC·t ≈ 0.25·PC per unit; EMA must flip to
	// serving within ~10 slots.
	e := newEMA(t, 0.01)
	served := -1
	for n := 0; n < 200; n++ {
		u := stdUser(400, -105, 10) // weak, expensive channel
		u.NeverActive = false
		u.TailGap = 100 // tail fully drained: skipping is energy-free
		slot := makeSlot(100, u)
		alloc := make([]int, 1)
		e.Allocate(slot, alloc)
		if alloc[0] > 0 {
			served = n
			break
		}
	}
	if served < 0 {
		t.Fatal("EMA never served a backlogged user in 200 slots")
	}
	if served == 0 {
		t.Error("EMA served at queue 0; drift term should not reward that")
	}
}

// With a huge V, EMA should defer transmission on expensive channels when
// the buffer is comfortable (negative queue).
func TestEMADefersOnExpensiveChannelWhenBuffered(t *testing.T) {
	e := newEMA(t, 0.05)
	// Build queue pressure with a few capacity-0 slots, then offer a cheap
	// channel: EMA should over-deliver (work ahead), driving the queue
	// negative.
	for i := 0; i < 5; i++ {
		starved := stdUser(400, -50, 40)
		e.Allocate(makeSlot(0, starved), make([]int, 1))
	}
	rich := stdUser(400, -50, 40)
	slot := makeSlot(100, rich)
	alloc := make([]int, 1)
	e.Allocate(slot, alloc)
	if alloc[0] == 0 {
		t.Fatal("EMA refused cheap bytes under queue pressure")
	}
	if e.Queue(0) >= 0 {
		t.Fatalf("queue should be negative after working ahead: %v (alloc=%d)", e.Queue(0), alloc[0])
	}
	// Now the channel turns expensive; with buffered headroom (negative
	// queue) and no pending tail, EMA skips the slot.
	poor := stdUser(400, -110, 40)
	poor.NeverActive = false
	poor.TailGap = 100 // tail already drained: skipping is energy-free
	slot2 := makeSlot(100, poor)
	alloc2 := make([]int, 1)
	e.Allocate(slot2, alloc2)
	if alloc2[0] != 0 {
		t.Errorf("EMA transmitted %d units on an expensive channel with buffered headroom", alloc2[0])
	}
}

// Tail awareness: if skipping this slot burns almost as much tail energy
// as transmitting would cost, EMA should prefer to transmit (the ON-OFF
// pathology it is designed to avoid). We construct costs accordingly.
func TestEMATailAwareness(t *testing.T) {
	e := newEMA(t, 1)
	u := stdUser(400, -50, 4) // cheap channel: 4 units = 400KB ≈ 0.2 mJ/KB · 400 = ~80 mJ
	u.NeverActive = false
	u.TailGap = 0 // skipping burns Pd·τ ≈ 733 mJ of tail
	slot := makeSlot(100, u)
	alloc := make([]int, 1)
	e.Allocate(slot, alloc)
	if alloc[0] == 0 {
		t.Error("EMA skipped although the tail made skipping costlier than sending")
	}
}

// Property: EMA allocations always satisfy Eq. (1)/(2) across random slots
// and evolving queues.
func TestEMAConstraintsProperty(t *testing.T) {
	e := newEMA(t, 2)
	f := func(rates []uint16, sigs []uint8, capRaw uint16) bool {
		n := len(rates)
		if n == 0 || n > 10 {
			return true
		}
		if len(sigs) < n {
			return true
		}
		users := make([]User, n)
		for i := range users {
			sig := units.DBm(-110 + float64(sigs[i]%61))
			users[i] = stdUser(units.KBps(rates[i]%600+100), sig, int(rates[i]%30))
		}
		slot := makeSlot(int(capRaw%200), users...)
		alloc := make([]int, n)
		e.Allocate(slot, alloc)
		return slot.Validate(alloc) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEMA40Users(b *testing.B) {
	e, err := NewEMA(EMAConfig{V: 1, RRC: rrc.Paper3G()})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	users := make([]User, 40)
	for i := range users {
		users[i] = stdUser(units.KBps(src.Uniform(300, 600)), units.DBm(src.Uniform(-110, -50)), 20)
	}
	slot := makeSlot(200, users...)
	alloc := make([]int, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range alloc {
			alloc[j] = 0
		}
		e.Allocate(slot, alloc)
	}
}
