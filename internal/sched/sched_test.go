package sched

import (
	"testing"

	"jointstream/internal/units"
)

// makeSlot builds a synthetic slot with the given per-user parameters.
// All users are active with generous remaining bytes unless modified.
func makeSlot(capacityUnits int, users ...User) *Slot {
	s := &Slot{
		N:             0,
		Tau:           1,
		Unit:          100,
		CapacityUnits: capacityUnits,
		Users:         users,
	}
	for i := range s.Users {
		s.Users[i].Index = i
	}
	return s
}

// stdUser returns an active user with sensible defaults.
func stdUser(rate units.KBps, sig units.DBm, maxUnits int) User {
	return User{
		Active:      true,
		Sig:         sig,
		LinkRate:    units.KBps(65.8*float64(sig) + 7567),
		EnergyPerKB: units.MJ(-0.167 + 1560/(65.8*float64(sig)+7567)),
		Rate:        rate,
		RemainingKB: 1e9,
		MaxUnits:    maxUnits,
		NeverActive: true,
	}
}

func TestNeedUnits(t *testing.T) {
	u := User{Rate: 450, MaxUnits: 100}
	// ceil(450*1/100) = 5
	if got := u.NeedUnits(1, 100); got != 5 {
		t.Errorf("NeedUnits = %d, want 5", got)
	}
	u.Rate = 400
	if got := u.NeedUnits(1, 100); got != 4 {
		t.Errorf("NeedUnits(400) = %d, want 4", got)
	}
	u.MaxUnits = 2
	if got := u.NeedUnits(1, 100); got != 2 {
		t.Errorf("NeedUnits capped = %d, want 2", got)
	}
	u.Rate = 0
	u.MaxUnits = 100
	if got := u.NeedUnits(1, 100); got != 0 {
		t.Errorf("NeedUnits(0) = %d, want 0", got)
	}
}

func TestCeilFloorDiv(t *testing.T) {
	if ceilDiv(450, 100) != 5 || ceilDiv(400, 100) != 4 || ceilDiv(0, 100) != 0 {
		t.Error("ceilDiv mismatch")
	}
	if floorDiv(450, 100) != 4 || floorDiv(400, 100) != 4 || floorDiv(-5, 100) != 0 {
		t.Error("floorDiv mismatch")
	}
}

func TestCeilDivPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ceilDiv(1, 0)
}

func TestValidateAllocation(t *testing.T) {
	slot := makeSlot(10, stdUser(400, -70, 6), stdUser(400, -70, 6))
	if err := slot.Validate([]int{4, 4}); err != nil {
		t.Errorf("valid allocation rejected: %v", err)
	}
	cases := []struct {
		name  string
		alloc []int
	}{
		{"wrong length", []int{4}},
		{"negative", []int{-1, 4}},
		{"over per-user", []int{7, 0}},
		{"over capacity", []int{6, 6}},
	}
	for _, c := range cases {
		if err := slot.Validate(c.alloc); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	// Inactive user with allocation.
	slot.Users[1].Active = false
	if err := slot.Validate([]int{4, 1}); err == nil {
		t.Error("inactive allocation accepted")
	}
}

func TestDefaultGreedyOrder(t *testing.T) {
	d := NewDefault()
	slot := makeSlot(10, stdUser(400, -70, 8), stdUser(400, -70, 8), stdUser(400, -70, 8))
	alloc := make([]int, 3)
	d.Allocate(slot, alloc)
	if err := slot.Validate(alloc); err != nil {
		t.Fatalf("Default violated constraints: %v", err)
	}
	// Greedy: user 0 gets its full link bound, user 1 the rest, user 2 nothing.
	if alloc[0] != 8 || alloc[1] != 2 || alloc[2] != 0 {
		t.Errorf("alloc = %v, want [8 2 0]", alloc)
	}
}

func TestDefaultSkipsInactive(t *testing.T) {
	d := NewDefault()
	u0 := stdUser(400, -70, 8)
	u0.Active = false
	slot := makeSlot(10, u0, stdUser(400, -70, 8))
	alloc := make([]int, 2)
	d.Allocate(slot, alloc)
	if alloc[0] != 0 {
		t.Errorf("inactive user allocated %d", alloc[0])
	}
	if alloc[1] != 8 {
		t.Errorf("active user allocated %d, want 8", alloc[1])
	}
}

func TestDefaultName(t *testing.T) {
	if NewDefault().Name() != "Default" {
		t.Error("name mismatch")
	}
}
