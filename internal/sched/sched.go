// Package sched defines the per-slot scheduling contract of the paper's
// gateway framework and implements the two proposed algorithms — RTMA
// (Alg. 1) and EMA (Alg. 2) — together with the five comparison schedulers
// of the evaluation: Default, Throttling, ON-OFF, SALSA and EStreamer.
//
// Each slot the simulator presents a Slot snapshot: the base station's
// capacity in data units (Definition 1: one unit is δ kilobytes) and one
// User view per session carrying the cross-layer parameters the paper's
// Information Collector gathers — signal strength, achievable throughput
// v(sig), per-byte energy price P(sig), required bit-rate p_i(n), buffer
// occupancy and RRC tail state. A Scheduler fills in the per-user unit
// allocation ϕ_i(n), subject to
//
//	ϕ_i(n) ≤ ⌊τ·v(sig_i(n))/δ⌋        (Eq. 1, per-user link limit)
//	Σ_i ϕ_i(n) ≤ ⌊τ·S(n)/δ⌋          (Eq. 2, base-station capacity)
//
// The simulator additionally clamps allocations to these constraints, so a
// buggy scheduler cannot corrupt the physics; tests assert the built-in
// schedulers never rely on that clamp.
package sched

import (
	"fmt"

	"jointstream/internal/units"
)

// User is the per-session view handed to a Scheduler each slot. The
// engine normally fills the physics fields (Sig, LinkRate,
// EnergyPerKB, Rate, MaxUnits) from its precompiled per-slot link table
// (cell.LinkTable) rather than live model calls; both paths are
// bitwise-identical, so schedulers never need to care which one fed
// them.
type User struct {
	// Index identifies the session; stable across the whole run.
	Index int
	// Active reports whether the user currently wants data: the session
	// has started and its video is not yet fully delivered. Inactive
	// users must receive zero allocation.
	Active bool
	// Sig is the slot's signal strength (constant within a slot, §III-B).
	Sig units.DBm
	// LinkRate is v(sig), the maximum achievable throughput this slot.
	LinkRate units.KBps
	// EnergyPerKB is P(sig), the per-kilobyte reception cost this slot.
	EnergyPerKB units.MJ
	// Rate is p_i(n), the required video data rate this slot.
	Rate units.KBps
	// BufferSec is r_i(n), the playback seconds buffered at slot start.
	BufferSec units.Seconds
	// RemainingKB is the undelivered remainder of the video.
	RemainingKB units.KB
	// TailGap is the time since the user's radio last transferred;
	// meaningful only when NeverActive is false.
	TailGap units.Seconds
	// NeverActive reports that the radio has not transferred yet, so no
	// tail energy is pending regardless of TailGap.
	NeverActive bool

	// MaxUnits is the binding per-user limit for this slot, already
	// combining Eq. (1) with the remaining video size:
	// min(⌊τ·v/δ⌋, ⌈remaining/δ⌉). Allocations above it are clamped.
	MaxUnits int
}

// NeedUnits returns ϕ_need(i) = ⌈τ·p_i(n)/δ⌉, the minimum allocation that
// sustains one slot of smooth playback (RTMA step 3), capped at MaxUnits.
func (u *User) NeedUnits(tau units.Seconds, unit units.KB) int {
	need := ceilDiv(float64(u.Rate)*float64(tau), float64(unit))
	if need > u.MaxUnits {
		return u.MaxUnits
	}
	return need
}

// Columns is the struct-of-arrays form of the per-user views: one column
// slice per User field, all indexed by the user index. The simulator's
// engine presents slots this way so the prepare phase refreshes a few
// contiguous arrays in place instead of materializing one 88-byte User
// struct per user per slot; the static physics columns (Sig, LinkRate,
// EnergyPerKB, Rate) alias the precompiled cell.LinkTable rows for the
// slot directly — zero-copy reslices, never copies.
//
// Aliasing rules (see DESIGN.md §7): columns are written only by the
// engine's prepare/commit phases, never by schedulers, and the LinkTable-
// backed columns are immutable shared state — the engine swaps the slice
// headers each slot rather than writing through them. Schedulers read the
// columns through the Slot accessors (ActiveAt, RateAt, ...), which fall
// back to the Users array when Cols is nil, so hand-built array-of-structs
// slots and the engine's SoA slots exercise identical scheduler code.
type Columns struct {
	Active      []bool
	Sig         []units.DBm
	LinkRate    []units.KBps
	EnergyPerKB []units.MJ
	Rate        []units.KBps
	BufferSec   []units.Seconds
	RemainingKB []units.KB
	TailGap     []units.Seconds
	NeverActive []bool
	// MaxUnits is stored as int32 (like the link table's unit limits) to
	// halve the per-slot write bandwidth of the hottest dynamic column.
	MaxUnits []int32
}

// Slot is the full scheduling problem for one time slot.
type Slot struct {
	// N is the slot index.
	N int
	// Tau is the slot length τ.
	Tau units.Seconds
	// Unit is the data-unit (shard) size δ in KB.
	Unit units.KB
	// CapacityUnits is ⌊τ·S(n)/δ⌋, the total units the base station can
	// move this slot (Eq. 2).
	CapacityUnits int
	// Users holds one view per session, indexed by User.Index. It may be
	// nil when Cols carries the views instead; use the accessors (or
	// NumUsers) rather than touching either representation directly.
	Users []User
	// Cols, when non-nil, is the struct-of-arrays form of the user views
	// and takes precedence over Users. All column slices must have equal
	// length; the engine guarantees it.
	Cols *Columns
	// ActiveList, when non-nil, holds the indices of the active users in
	// ascending order. The simulator's engine maintains it so schedulers
	// iterate only the users that want data instead of scanning all of
	// Users each slot; hand-built slots may leave it nil and schedulers
	// fall back to the scan (see ActiveIndices). An empty non-nil list
	// means no user is active.
	ActiveList []int
}

// NumUsers returns the number of per-user views in the slot, whichever
// representation carries them.
func (s *Slot) NumUsers() int {
	if s.Cols != nil {
		return len(s.Cols.MaxUnits)
	}
	return len(s.Users)
}

// IndexAt returns user i's session index. The SoA view is always stored
// in session order, so the position is the index; hand-built AoS slots
// (e.g. permuted test slots) may carry an arbitrary Index per view.
func (s *Slot) IndexAt(i int) int {
	if s.Cols != nil {
		return i
	}
	return s.Users[i].Index
}

// ActiveAt reports whether user i wants data this slot.
func (s *Slot) ActiveAt(i int) bool {
	if c := s.Cols; c != nil {
		return c.Active[i]
	}
	return s.Users[i].Active
}

// SigAt returns user i's signal strength this slot.
func (s *Slot) SigAt(i int) units.DBm {
	if c := s.Cols; c != nil {
		return c.Sig[i]
	}
	return s.Users[i].Sig
}

// LinkRateAt returns v(sig_i(n)), user i's achievable throughput.
func (s *Slot) LinkRateAt(i int) units.KBps {
	if c := s.Cols; c != nil {
		return c.LinkRate[i]
	}
	return s.Users[i].LinkRate
}

// EnergyPerKBAt returns P(sig_i(n)), user i's per-kilobyte reception cost.
func (s *Slot) EnergyPerKBAt(i int) units.MJ {
	if c := s.Cols; c != nil {
		return c.EnergyPerKB[i]
	}
	return s.Users[i].EnergyPerKB
}

// RateAt returns p_i(n), user i's required video data rate.
func (s *Slot) RateAt(i int) units.KBps {
	if c := s.Cols; c != nil {
		return c.Rate[i]
	}
	return s.Users[i].Rate
}

// BufferSecAt returns r_i(n), user i's buffered playback seconds.
func (s *Slot) BufferSecAt(i int) units.Seconds {
	if c := s.Cols; c != nil {
		return c.BufferSec[i]
	}
	return s.Users[i].BufferSec
}

// RemainingKBAt returns the undelivered remainder of user i's video.
func (s *Slot) RemainingKBAt(i int) units.KB {
	if c := s.Cols; c != nil {
		return c.RemainingKB[i]
	}
	return s.Users[i].RemainingKB
}

// TailGapAt returns the time since user i's radio last transferred.
func (s *Slot) TailGapAt(i int) units.Seconds {
	if c := s.Cols; c != nil {
		return c.TailGap[i]
	}
	return s.Users[i].TailGap
}

// NeverActiveAt reports that user i's radio has not transferred yet.
func (s *Slot) NeverActiveAt(i int) bool {
	if c := s.Cols; c != nil {
		return c.NeverActive[i]
	}
	return s.Users[i].NeverActive
}

// MaxUnitsAt returns user i's binding per-slot unit limit
// min(⌊τ·v/δ⌋, ⌈remaining/δ⌉), zero when inactive.
func (s *Slot) MaxUnitsAt(i int) int {
	if c := s.Cols; c != nil {
		return int(c.MaxUnits[i])
	}
	return s.Users[i].MaxUnits
}

// NeedUnitsAt returns ϕ_need(i) = ⌈τ·p_i(n)/δ⌉ capped at MaxUnitsAt(i),
// the slot-level form of User.NeedUnits.
func (s *Slot) NeedUnitsAt(i int) int {
	need := ceilDiv(float64(s.RateAt(i))*float64(s.Tau), float64(s.Unit))
	if m := s.MaxUnitsAt(i); need > m {
		return m
	}
	return need
}

// ActiveIndices returns the indices of the active users in ascending
// order: ActiveList when the engine provided it, otherwise a scan of
// Users collected into *scratch (grown as needed and written back, so
// repeat callers stay allocation-free). scratch may be nil for one-shot
// callers.
func (s *Slot) ActiveIndices(scratch *[]int) []int {
	if s.ActiveList != nil {
		return s.ActiveList
	}
	var buf []int
	if scratch != nil {
		buf = (*scratch)[:0]
	}
	for i, n := 0, s.NumUsers(); i < n; i++ {
		if s.ActiveAt(i) {
			buf = append(buf, i)
		}
	}
	if scratch != nil {
		*scratch = buf
	}
	return buf
}

// Scheduler decides the per-slot allocation. Implementations may keep
// internal per-user state (virtual queues, hysteresis); the simulator
// guarantees Allocate is called exactly once per slot, in slot order, with
// len(alloc) == len(slot.Users), alloc zeroed.
type Scheduler interface {
	// Name identifies the algorithm in results and tables.
	Name() string
	// Allocate writes the data-unit allocation ϕ_i(n) into alloc.
	Allocate(slot *Slot, alloc []int)
}

// ceilDiv returns ⌈a/b⌉ for positive b, as used by ϕ_need.
func ceilDiv(a, b float64) int {
	if b <= 0 {
		panic(fmt.Sprintf("sched: ceilDiv by non-positive %v", b))
	}
	if a <= 0 {
		return 0
	}
	n := int(a / b)
	if float64(n)*b < a {
		n++
	}
	return n
}

// floorDiv returns ⌊a/b⌋ for positive b, clamped at 0.
func floorDiv(a, b float64) int {
	if b <= 0 {
		panic(fmt.Sprintf("sched: floorDiv by non-positive %v", b))
	}
	if a <= 0 {
		return 0
	}
	return int(a / b)
}

// Validate checks a finished allocation against Eq. (1) and Eq. (2) and
// the inactivity rule. The simulator uses it in strict mode; tests use it
// to prove schedulers respect the constraints without clamping.
func (s *Slot) Validate(alloc []int) error {
	n := s.NumUsers()
	if len(alloc) != n {
		return fmt.Errorf("sched: allocation length %d != %d users", len(alloc), n)
	}
	total := 0
	for i, a := range alloc {
		if a < 0 {
			return fmt.Errorf("sched: user %d negative allocation %d", i, a)
		}
		if !s.ActiveAt(i) && a > 0 {
			return fmt.Errorf("sched: user %d inactive but allocated %d units", i, a)
		}
		if m := s.MaxUnitsAt(i); a > m {
			return fmt.Errorf("sched: user %d allocation %d exceeds per-user limit %d", i, a, m)
		}
		total += a
	}
	if total > s.CapacityUnits {
		return fmt.Errorf("sched: total allocation %d exceeds capacity %d units", total, s.CapacityUnits)
	}
	if s.ActiveList != nil {
		// An engine-maintained active list must mirror the Active flags
		// exactly, in ascending order — a stale entry would let a
		// scheduler serve (or skip) the wrong user.
		j := 0
		for i := 0; i < n; i++ {
			if !s.ActiveAt(i) {
				continue
			}
			if j >= len(s.ActiveList) || s.ActiveList[j] != i {
				return fmt.Errorf("sched: active list %v inconsistent with Active flags at user %d", s.ActiveList, i)
			}
			j++
		}
		if j != len(s.ActiveList) {
			return fmt.Errorf("sched: active list has %d entries for %d active users", len(s.ActiveList), j)
		}
	}
	return nil
}
